examples/hybrid_island.mli:
