examples/legacy_interop.ml: Asn Dbgp_bgp Dbgp_core Dbgp_netsim Dbgp_types Format Ipv4 Island_id List Prefix Protocol_id String
