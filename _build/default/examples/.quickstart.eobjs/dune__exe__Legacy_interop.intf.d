examples/legacy_interop.mli:
