examples/miro_discovery.mli:
