examples/pathlet_across_gulf.ml: Asn Dbgp_bgp Dbgp_core Dbgp_netsim Dbgp_protocols Dbgp_types Format Island_id List Prefix String
