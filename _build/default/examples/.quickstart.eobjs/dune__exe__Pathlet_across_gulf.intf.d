examples/pathlet_across_gulf.mli:
