examples/quickstart.ml: Asn Dbgp_bgp Dbgp_core Dbgp_dataplane Dbgp_netsim Dbgp_types Engine Format Forwarder Header Ipv4 List Packet Prefix
