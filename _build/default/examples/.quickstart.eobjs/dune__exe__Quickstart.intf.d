examples/quickstart.mli:
