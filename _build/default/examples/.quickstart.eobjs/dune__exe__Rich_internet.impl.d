examples/rich_internet.ml: Dbgp_core Dbgp_eval Format String
