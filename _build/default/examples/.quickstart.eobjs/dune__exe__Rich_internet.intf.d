examples/rich_internet.mli:
