examples/scion_multipath.ml: Asn Dbgp_bgp Dbgp_core Dbgp_dataplane Dbgp_netsim Dbgp_protocols Dbgp_types Engine Format Forwarder Header Island_id List Packet Prefix String
