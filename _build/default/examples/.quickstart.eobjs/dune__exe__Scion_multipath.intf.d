examples/scion_multipath.mli:
