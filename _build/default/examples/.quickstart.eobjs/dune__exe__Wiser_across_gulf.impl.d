examples/wiser_across_gulf.ml: Asn Dbgp_bgp Dbgp_core Dbgp_netsim Dbgp_protocols Dbgp_types Format Ipv4 Island_id List Path_elem Prefix
