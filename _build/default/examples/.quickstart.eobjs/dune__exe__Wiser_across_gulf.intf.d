examples/wiser_across_gulf.mli:
