(* A hybrid link-state / path-vector island (HLP-like) behind an island
   ID — why D-BGP's path vector admits island-ID entries at all.

     dune exec examples/hybrid_island.exe

   The island routes internally by link state (Dijkstra over LSAs); its
   interior cannot be expressed as a path vector, so its egress abstracts
   the member ASes behind the island ID (Section 3.2).  The advertised
   HLP cost accumulates the interior shortest-path distance. *)

open Dbgp_types
module Speaker = Dbgp_core.Speaker
module Ia = Dbgp_core.Ia
module Network = Dbgp_netsim.Network
module Ls = Dbgp_topology.Link_state
module Hlp = Dbgp_protocols.Hlp_like

let asn = Asn.of_int
let prefix = Prefix.of_string "131.7.0.0/24"

let () =
  (* The island's interior: a small weighted router graph. *)
  let db = Ls.create () in
  List.iter
    (fun l ->
      match Ls.install db l with
      | `Installed -> ()
      | `Stale -> assert false)
    [ Ls.lsa ~router:"in" ~seq:1 [ ("r1", 1); ("r2", 4) ];
      Ls.lsa ~router:"r1" ~seq:1 [ ("in", 1); ("out", 2) ];
      Ls.lsa ~router:"r2" ~seq:1 [ ("in", 4); ("out", 1) ];
      Ls.lsa ~router:"out" ~seq:1 [ ("r1", 2); ("r2", 1) ] ];
  ( match Ls.shortest_path db ~src:"in" ~dst:"out" with
    | Some (path, cost) ->
      Format.printf "island interior: in->out via [%s], cost %d@."
        (String.concat " -> " path) cost
    | None -> Format.printf "island partitioned?!@." );
  (* The island as one centralized speaker behind its ID. *)
  let net = Network.create () in
  let isl = Island_id.named "HYBRID" in
  let add ?island ?island_members ?hide n =
    let s =
      Speaker.create
        (Speaker.config ?island ?island_members
           ?hide_island_interior:hide ~asn:(asn n)
           ~addr:(Network.speaker_addr (asn n)) ())
    in
    Network.add_speaker net s;
    s
  in
  ignore (add 1) (* origin *);
  let h = add ~island:isl ~island_members:[ asn 2 ] ~hide:true 2 in
  ignore (add 3) (* downstream observer *);
  Speaker.add_module h
    (Hlp.decision_module
       { Hlp.my_island = isl; lsdb = db; ingress = "in"; egress = "out";
         peering_cost = 1 });
  Speaker.set_active h prefix Hlp.protocol;
  Network.link net ~a:(asn 1) ~b:(asn 2) ~b_is:Dbgp_bgp.Policy.To_provider ();
  Network.link net ~a:(asn 2) ~b:(asn 3) ~b_is:Dbgp_bgp.Policy.To_provider ();
  Network.originate net (asn 1)
    (Ia.originate ~prefix ~origin_asn:(asn 1)
       ~next_hop:(Network.speaker_addr (asn 1)) ());
  ignore (Network.run net);
  match Speaker.best (Network.speaker net (asn 3)) prefix with
  | None -> Format.printf "no route at the observer@."
  | Some chosen ->
    let ia = chosen.Speaker.candidate.Dbgp_core.Decision_module.ia in
    Format.printf "@.what AS 3 sees:@.%a@." Ia.pp ia;
    Format.printf
      "@.the path vector names the island, not its routers; the HLP cost (%s)@."
      ( match Hlp.cost_of ia with
        | Some c -> string_of_int c ^ " = interior 3 + peering 1"
        | None -> "missing!" );
    Format.printf "carries the interior's link-state distance across the gulf.@."
