(* D-BGP over legacy BGP-4: the transitional deployment of Section 3.5.

     dune exec examples/legacy_interop.exe

   Two routers bring up a real BGP session — FSM handshake, OPEN
   capability exchange, KEEPALIVEs — and exchange an integrated
   advertisement packed into an optional transitive attribute of a plain
   UPDATE message.  A legacy router that scrubs unknown attributes
   degrades the IA to plain BGP, exactly like a D-BGP speaker's
   capability-based downgrade. *)

open Dbgp_types
module Eq = Dbgp_netsim.Event_queue
module Session = Dbgp_netsim.Session
module Fsm = Dbgp_bgp.Fsm
module Message = Dbgp_bgp.Message
module Ia = Dbgp_core.Ia
module Legacy = Dbgp_core.Legacy

let cfg n id : Fsm.config =
  { Fsm.my_asn = Asn.of_int n; my_id = Ipv4.of_string id; hold_time = 90;
    capabilities = [ Message.capability_dbgp ] }

let () =
  let q = Eq.create () in
  let a, b = Session.create q ~a:(cfg 65001 "10.0.0.1") ~b:(cfg 65002 "10.0.0.2") () in
  Session.set_callbacks b
    { Session.null_callbacks with
      Session.on_established =
        (fun o ->
          Format.printf "session up: peer %a advertises capabilities %s@."
            Asn.pp o.Message.my_asn
            (String.concat ","
               (List.map string_of_int o.Message.capabilities)));
      Session.on_update =
        (fun u ->
          match Legacy.of_update u with
          | Some ia ->
            Format.printf "@.received over the legacy session:@.%a@." Ia.pp ia
          | None -> Format.printf "undecodable update@.") };
  Session.start a;
  Session.start b;
  ignore (Eq.run ~max_events:50 q);
  Format.printf "states: a=%a b=%a@." Fsm.pp_state (Session.state a)
    Fsm.pp_state (Session.state b);
  (* A D-BGP-rich IA travels as a plain UPDATE. *)
  let ia =
    Ia.originate
      ~prefix:(Prefix.of_string "203.0.113.0/24")
      ~origin_asn:(Asn.of_int 65001)
      ~next_hop:(Ipv4.of_string "10.0.0.1") ()
    |> Ia.set_path_descriptor ~owners:[ Protocol_id.wiser ]
         ~field:"wiser-cost" (Dbgp_core.Value.Int 12)
    |> Ia.add_island_descriptor ~island:(Island_id.named "W")
         ~proto:Protocol_id.wiser ~field:"wiser-portal"
         (Dbgp_core.Value.Addr (Ipv4.of_string "172.16.0.1"))
  in
  let update = Legacy.to_update ia in
  Format.printf "@.the UPDATE carries %d optional transitive attribute(s) (type 0x%X)@."
    ( match update.Message.attrs with
      | Some attrs -> List.length attrs.Dbgp_bgp.Attr.unknowns
      | None -> 0 )
    Legacy.attr_type_code;
  Session.send_update a update;
  ignore (Eq.run ~max_events:20 q);
  (* What a scrubbing legacy router would leave behind. *)
  let scrubbed =
    match update.Message.attrs with
    | Some attrs ->
      { update with
        Message.attrs = Some { attrs with Dbgp_bgp.Attr.unknowns = [] } }
    | None -> update
  in
  ( match Legacy.of_update scrubbed with
    | Some plain ->
      Format.printf
        "@.after an attribute-scrubbing legacy router, only plain BGP remains:@.%a@."
        Ia.pp plain
    | None -> Format.printf "scrubbed update undecodable@." );
  Format.printf "@.wire cost so far: %d messages, %d bytes from a@."
    (Session.messages_sent a) (Session.bytes_sent a)
