(* Discovering and buying a MIRO island's alternate-path service across
   a gulf — the paper's Figure 2 scenario plus the Section 3.4 workflow.

     dune exec examples/miro_discovery.exe

   Topology: D -> X -> T is the default path; M hangs off X and sells
   alternate paths.  With D-BGP, M's island descriptor (service portal +
   path count) passes through the gulf, so T discovers the service
   off-path, negotiates out-of-band, and tunnels its traffic. *)

open Dbgp_types
module Speaker = Dbgp_core.Speaker
module Ia = Dbgp_core.Ia
module Network = Dbgp_netsim.Network
module Lookup = Dbgp_netsim.Lookup_service
module Miro = Dbgp_protocols.Miro
module Portal_io = Dbgp_protocols.Portal_io

let asn = Asn.of_int
let service_prefix = Prefix.of_string "173.82.2.0/24"
let dest_prefix = Prefix.of_string "131.9.0.0/24"

let () =
  let net = Network.create () in
  let island_m = Island_id.named "M" in
  let portal = Ipv4.of_string "172.16.1.1" in
  let miro =
    Miro.create
      { Miro.my_island = island_m;
        portal;
        offers =
          [ { Miro.dest = dest_prefix; via = "low-latency"; price = 25;
              tunnel_endpoint = Ipv4.of_string "173.82.2.1" };
            { Miro.dest = dest_prefix; via = "bulk"; price = 8;
              tunnel_endpoint = Ipv4.of_string "173.82.2.2" } ] }
  in
  (* The portal lives on the out-of-band lookup service. *)
  Lookup.register_handler (Network.lookup net) ~portal ~service:Miro.service
    (Miro.serve miro);
  let add ?island n =
    let s =
      Speaker.create
        (Speaker.config ?island ~asn:(asn n) ~addr:(Network.speaker_addr (asn n)) ())
    in
    Network.add_speaker net s;
    s
  in
  ignore (add 1) (* D *);
  ignore (add 2) (* X, the gulf *);
  let t = add 3 in
  ignore (add ~island:island_m 4) (* M *);
  let cust a b =
    Network.link net ~a:(asn a) ~b:(asn b) ~b_is:Dbgp_bgp.Policy.To_provider ()
  in
  cust 1 2; cust 2 3; cust 4 2;
  (* M advertises its service prefix with the MIRO descriptors. *)
  Network.originate net (asn 4)
    (Miro.advertise miro
       (Ia.originate ~prefix:service_prefix ~origin_asn:(asn 4)
          ~next_hop:(Network.speaker_addr (asn 4)) ()));
  Network.originate net (asn 1)
    (Ia.originate ~prefix:dest_prefix ~origin_asn:(asn 1)
       ~next_hop:(Network.speaker_addr (asn 1)) ());
  ignore (Network.run net);
  (* T inspects the IA for M's prefix: off-path discovery. *)
  match Speaker.best t service_prefix with
  | None -> Format.printf "T never heard about M's prefix@."
  | Some chosen ->
    let ia = chosen.Speaker.candidate.Dbgp_core.Decision_module.ia in
    ( match Miro.discover ia with
      | [] -> Format.printf "no MIRO service in the IA (plain BGP would do this)@."
      | svc :: _ ->
        Format.printf "T discovered a MIRO service: island %a, portal %a, %d alt paths@."
          Island_id.pp svc.Miro.island Ipv4.pp svc.Miro.portal_addr svc.Miro.n_paths;
        (* Negotiate out-of-band through the lookup service. *)
        let io =
          { Portal_io.post = (fun ~portal ~service ~key v ->
                Lookup.post (Network.lookup net) ~portal ~service ~key v);
            fetch = (fun ~portal ~service ~key ->
                Lookup.fetch (Network.lookup net) ~portal ~service ~key);
            rpc = (fun ~portal ~service req ->
                Lookup.rpc (Network.lookup net) ~portal ~service req) }
        in
        match
          Miro.negotiate ~io ~portal:svc.Miro.portal_addr ~dest:dest_prefix ~budget:20
        with
        | Some (via, endpoint) ->
          Format.printf "negotiated path %S within budget; tunnel endpoint %a@."
            via Ipv4.pp endpoint;
          Format.printf "(the \"low-latency\" offer at 25 was over our budget of 20)@."
        | None -> Format.printf "no offer within budget@." )
