(* Deploying Pathlet Routing (a replacement protocol) across a gulf —
   the paper's Figure 8 experiment.

     dune exec examples/pathlet_across_gulf.exe

   Island A disseminates one-hop pathlets internally; its border A2
   composes two of them into a two-hop pathlet and translates everything
   into an IA that crosses the BGP gulf; border A3 does the same for its
   own pathlets.  Island B's border ingests the pathlets from every IA
   it receives and the source S can compose end-to-end routes. *)

open Dbgp_types
module Speaker = Dbgp_core.Speaker
module Ia = Dbgp_core.Ia
module Network = Dbgp_netsim.Network
module Pathlet = Dbgp_protocols.Pathlet

let asn = Asn.of_int
let prefix = Prefix.of_string "131.1.0.0/24"

let () =
  let net = Network.create () in
  let island_a = Island_id.named "A" and island_b = Island_id.named "B" in
  let add ?island n =
    let s =
      Speaker.create
        (Speaker.config ?island ~asn:(asn n) ~addr:(Network.speaker_addr (asn n)) ())
    in
    Network.add_speaker net s;
    s
  in
  (* Island A's within-island pathlets. *)
  let deliver = Pathlet.Deliver prefix in
  let p1 = Pathlet.make ~fid:1 [ Pathlet.Router "ar2"; Pathlet.Router "arm" ] in
  let p2 = Pathlet.make ~fid:2 [ Pathlet.Router "arm"; deliver ] in
  let p3 = Pathlet.make ~fid:3 [ Pathlet.Router "ar2"; Pathlet.Router "ar1" ] in
  let p4 = Pathlet.make ~fid:4 [ Pathlet.Router "ar1"; deliver ] in
  let p5 = Pathlet.make ~fid:5 [ Pathlet.Router "ar3"; Pathlet.Router "arx" ] in
  let p6 = Pathlet.make ~fid:6 [ Pathlet.Router "arx"; deliver ] in
  let two_hop = Pathlet.compose ~fid:10 p1 p2 in
  Format.printf "A2 composed %a and %a into %a@.@." Pathlet.pp p1 Pathlet.pp p2
    Pathlet.pp two_hop;
  let a1 = add ~island:island_a 101 in
  let a2 = add ~island:island_a 102 in
  let a3 = add ~island:island_a 103 in
  ignore (add 201) (* gulf *);
  ignore (add 202) (* gulf *);
  let b1 = add ~island:island_b 301 in
  ignore (add ~island:island_b 302) (* S *);
  let attach sp island pathlets =
    Speaker.add_module sp
      (Pathlet.decision_module ~island ~exported:(fun () -> pathlets));
    Speaker.set_active sp prefix Pathlet.protocol
  in
  attach a1 island_a [];
  attach a2 island_a [ two_hop; p3; p4 ];
  attach a3 island_a [ p5; p6 ];
  attach b1 island_b [];
  let cust a b =
    Network.link net ~a:(asn a) ~b:(asn b) ~b_is:Dbgp_bgp.Policy.To_provider ()
  in
  cust 101 102; cust 101 103;
  cust 102 201; cust 201 301;
  cust 103 202; cust 202 301;
  cust 301 302;
  Network.originate net (asn 101)
    (Ia.originate ~prefix ~origin_asn:(asn 101)
       ~next_hop:(Network.speaker_addr (asn 101)) ());
  ignore (Network.run net);
  (* Island B's ingress translation: harvest pathlets from every IA the
     border received, as a real deployment would feed them into the
     island-internal pathlet protocol. *)
  let translation =
    Pathlet.translation ~island:island_b ~origin_asn:(asn 301)
      ~next_hop:(Network.speaker_addr (asn 301))
  in
  let store = Pathlet.Store.create () in
  List.iter
    (fun (_, ia) ->
      match translation.Dbgp_core.Translation.ingress ia with
      | Some ps -> List.iter (Pathlet.Store.add store) ps
      | None -> ())
    (Speaker.candidates_for b1 prefix);
  Format.printf "pathlets known at S (expected 5):@.";
  List.iter (fun p -> Format.printf "  %a@." Pathlet.pp p) (Pathlet.Store.all store);
  let routes = Pathlet.Store.routes_to store ~from:"ar2" ~dest:prefix in
  Format.printf "@.end-to-end FID routes from ar2 to %a:@." Prefix.pp prefix;
  List.iter
    (fun route ->
      Format.printf "  [%s]@."
        (String.concat "; "
           (List.map (fun (p : Pathlet.pathlet) -> string_of_int p.Pathlet.fid) route)))
    routes
