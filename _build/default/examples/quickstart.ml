(* Quickstart: build a four-AS Internet, originate a prefix, watch the
   integrated advertisement travel, and forward a packet along the
   resulting routes.

     dune exec examples/quickstart.exe

   Topology (arrows = advertisement flow, customer to provider):

     AS 1 (origin) -> AS 2 -> AS 3 -> AS 4                              *)

open Dbgp_types
module Speaker = Dbgp_core.Speaker
module Ia = Dbgp_core.Ia
module Network = Dbgp_netsim.Network

let asn = Asn.of_int
let prefix = Prefix.of_string "203.0.113.0/24"

let () =
  let net = Network.create () in
  (* One D-BGP speaker per AS.  [passthrough:true] is the default: these
     routers carry any protocol's control information. *)
  List.iter
    (fun n ->
      Network.add_speaker net
        (Speaker.create
           (Speaker.config ~asn:(asn n) ~addr:(Network.speaker_addr (asn n)) ())))
    [ 1; 2; 3; 4 ];
  (* Business relationships: each AS is the customer of the next, so the
     origin's advertisement is exported all the way up. *)
  List.iter
    (fun (a, b) ->
      Network.link net ~a:(asn a) ~b:(asn b) ~b_is:Dbgp_bgp.Policy.To_provider ())
    [ (1, 2); (2, 3); (3, 4) ];
  (* AS 1 originates its prefix. *)
  Network.originate net (asn 1)
    (Ia.originate ~prefix ~origin_asn:(asn 1)
       ~next_hop:(Network.speaker_addr (asn 1)) ());
  let stats = Network.run net in
  Format.printf "converged after %d control messages (%d bytes of IAs)@."
    stats.Network.messages stats.Network.announce_bytes;
  (* Inspect what AS 4 learned. *)
  ( match Speaker.best (Network.speaker net (asn 4)) prefix with
    | Some chosen ->
      Format.printf "@.AS 4's selected route:@.%a@." Ia.pp
        chosen.Speaker.candidate.Dbgp_core.Decision_module.ia
    | None -> Format.printf "AS 4 has no route?!@." );
  (* The control plane fills FIBs; drive a packet from AS 4 to AS 1. *)
  let open Dbgp_dataplane in
  let engine = Engine.create () in
  List.iter
    (fun n ->
      let s = Network.speaker net (asn n) in
      let f = Forwarder.create ~me:(asn n) () in
      List.iter
        (fun (p, (chosen : Speaker.chosen)) ->
          match chosen.Speaker.candidate.Dbgp_core.Decision_module.from_peer with
          | Some nbr ->
            Forwarder.set_ip_route f p (Forwarder.To_as nbr.Dbgp_core.Peer.asn)
          | None -> Forwarder.set_ip_route f p Forwarder.Local)
        (Speaker.best_routes s);
      Engine.add engine f)
    [ 1; 2; 3; 4 ];
  let pkt =
    Packet.make
      ~headers:
        [ Header.Ipv4_hdr
            { src = Network.speaker_addr (asn 4);
              dst = Ipv4.of_string "203.0.113.50" } ]
      ~payload:"hello, D-BGP" ()
  in
  Format.printf "@.forwarding a packet from AS 4: %a@." Engine.pp_outcome
    (Engine.route engine ~from:(asn 4) pkt)
