(* The rich, evolvable Internet of the paper's Figures 6 and 7: five
   different protocols coexisting in one integrated advertisement.

     dune exec examples/rich_internet.exe

   A prefix served by a Pathlet island (D) crosses a BGP gulf (AS 14), a
   SCION island (F), a Wiser//MIRO island (11), and a second Pathlet
   island (G) before reaching plain AS 8.  The printed IA is this
   reproduction's version of the paper's Figure 7. *)

let () =
  let ia, checks = Dbgp_eval.Rich_world.run () in
  ( match ia with
    | Some ia ->
      Format.printf "The IA island G disseminates to AS 8 (compare with Figure 7):@.@.%a@."
        Dbgp_core.Ia.pp ia
    | None -> Format.printf "route did not propagate!@." );
  Format.printf "@.What survived the trip:@.";
  Format.printf "  Wiser path cost:            %s@."
    ( match checks.Dbgp_eval.Rich_world.wiser_cost with
      | Some c -> string_of_int c
      | None -> "lost" );
  Format.printf "  Wiser cost-exchange portal: %b@."
    checks.Dbgp_eval.Rich_world.wiser_portal_11;
  Format.printf "  MIRO service portal:        %b@."
    checks.Dbgp_eval.Rich_world.miro_portal_11;
  Format.printf "  island D pathlets:          %d@."
    checks.Dbgp_eval.Rich_world.pathlets_d;
  Format.printf "  island G pathlets:          %d@."
    checks.Dbgp_eval.Rich_world.pathlets_g;
  Format.printf "  island F SCION paths:       %d@."
    checks.Dbgp_eval.Rich_world.scion_paths_f;
  Format.printf "  islands on the path:        %s@."
    (String.concat ", " checks.Dbgp_eval.Rich_world.islands_on_path);
  Format.printf "  protocols in the IA:        %s@."
    (String.concat ", " checks.Dbgp_eval.Rich_world.protocols_in_ia);
  Format.printf "@.everything Figure 7 shows is present: %b@."
    (Dbgp_eval.Rich_world.expected_ok checks)
