(* A SCION-like path-based island advertising multiple within-island
   paths across a gulf — the paper's Figure 3 problem and its Section
   3.4 resolution, driven down to the data plane.

     dune exec examples/scion_multipath.exe

   Island A exposes two within-island paths to D.  BGP can redistribute
   only one; the D-BGP island descriptor carries both, and the receiving
   SCION island encodes the extra one in a packet header, encapsulated
   in IPv4 to cross the gulf. *)

open Dbgp_types
module Speaker = Dbgp_core.Speaker
module Ia = Dbgp_core.Ia
module Network = Dbgp_netsim.Network
module Scion = Dbgp_protocols.Scion_like
open Dbgp_dataplane

let asn = Asn.of_int
let prefix = Prefix.of_string "131.5.0.0/24"
let paths = [ [ "arin"; "ard" ]; [ "arin"; "armid"; "ard" ] ]

let () =
  let net = Network.create () in
  let island_a = Island_id.named "A" and island_b = Island_id.named "B" in
  let add ?island n =
    let s =
      Speaker.create
        (Speaker.config ?island ~asn:(asn n) ~addr:(Network.speaker_addr (asn n)) ())
    in
    Network.add_speaker net s;
    s
  in
  let _a1 = add ~island:island_a 1 in
  let a2 = add ~island:island_a 2 in
  ignore (add 3) (* the gulf *);
  ignore (add ~island:island_b 4);
  let s = add ~island:island_b 5 in
  Speaker.add_module a2 (Scion.decision_module ~island:island_a ~exported:(fun () -> paths));
  Speaker.set_active a2 prefix Scion.protocol;
  let cust a b =
    Network.link net ~a:(asn a) ~b:(asn b) ~b_is:Dbgp_bgp.Policy.To_provider ()
  in
  cust 1 2; cust 2 3; cust 3 4; cust 4 5;
  Network.originate net (asn 1)
    (Ia.originate ~prefix ~origin_asn:(asn 1)
       ~next_hop:(Network.speaker_addr (asn 1)) ());
  ignore (Network.run net);
  match Speaker.best s prefix with
  | None -> Format.printf "S has no route@."
  | Some chosen ->
    let ia = chosen.Speaker.candidate.Dbgp_core.Decision_module.ia in
    let seen = Scion.extract ~island:island_a ia in
    Format.printf "S sees %d within-island paths (BGP alone would carry 1 redistributed route):@."
      (List.length seen);
    List.iter (fun p -> Format.printf "  [%s]@." (String.concat " -> " p)) seen;
    (* Pick the extra (longer) path and actually forward on it. *)
    let extra = List.nth seen 1 in
    Format.printf "@.forwarding on the extra path [%s]:@." (String.concat " -> " extra);
    let engine = Engine.create () in
    let fwd n = Forwarder.create ~me:(asn n) () in
    let f1 = fwd 1 and f2 = fwd 2 and f3 = fwd 3 and f4 = fwd 4 and f5 = fwd 5 in
    let ingress = Network.speaker_addr (asn 2) in
    (* IPv4 routes toward island A's ingress for the gulf crossing. *)
    List.iter
      (fun (f, next) -> Forwarder.set_ip_route f (Prefix.make ingress 32) (Forwarder.To_as (asn next)))
      [ (f5, 4); (f4, 3); (f3, 2) ];
    Forwarder.add_local_addr f2 ingress;
    (* SCION router topology inside island A. *)
    Forwarder.claim_router f2 ~router:"arin";
    Forwarder.set_router_port f2 ~router:"armid" (Forwarder.To_as (asn 1));
    Forwarder.claim_router f1 ~router:"armid";
    Forwarder.claim_router f1 ~router:"ard";
    Forwarder.set_ip_route f1 prefix Forwarder.Local;
    List.iter (Engine.add engine) [ f1; f2; f3; f4; f5 ];
    let pkt =
      Packet.make
        ~headers:
          [ Header.Tunnel_hdr { endpoint = ingress };
            Header.Scion_hdr { path = extra; pos = 0 };
            Header.Ipv4_hdr
              { src = Network.speaker_addr (asn 5);
                dst = Prefix.network prefix } ]
        ~payload:"multi-network-protocol headers at work" ()
    in
    Format.printf "  %a@." Engine.pp_outcome (Engine.route engine ~from:(asn 5) pkt)
