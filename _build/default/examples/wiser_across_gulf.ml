(* Wiser across a BGP gulf — the paper's Figure 1 / Section 3.4 story.

     dune exec examples/wiser_across_gulf.exe

   An island runs Wiser (a critical fix that disseminates path costs so
   ASes can steer traffic away from expensive ingresses).  The island's
   two egresses advertise the same destination at different costs:

                 .---- E1 (cost 100) -- G1 ----.
     D (island W)                               S (island B, Wiser)
                 '---- E2 (cost 10) -- G2 - G3 '

   With plain BGP the gulf strips Wiser's control information and S
   picks the shorter, expensive path.  With D-BGP pass-through S sees
   both costs and picks the longer, cheap one. *)

open Dbgp_types
module Speaker = Dbgp_core.Speaker
module Ia = Dbgp_core.Ia
module Network = Dbgp_netsim.Network
module Wiser = Dbgp_protocols.Wiser
module Portal_io = Dbgp_protocols.Portal_io

let asn = Asn.of_int
let prefix = Prefix.of_string "128.6.0.0/24"

let build ~passthrough_gulf =
  let net = Network.create () in
  let island_w = Island_id.named "W" and island_b = Island_id.named "B" in
  let add ?island ?(passthrough = true) n =
    let s =
      Speaker.create
        (Speaker.config ?island ~passthrough ~asn:(asn n)
           ~addr:(Network.speaker_addr (asn n)) ())
    in
    Network.add_speaker net s;
    s
  in
  let d = add ~island:island_w 1 in
  let e1 = add ~island:island_w 2 in
  let e2 = add ~island:island_w 3 in
  ignore (add ~passthrough:passthrough_gulf 4) (* G1 *);
  ignore (add ~passthrough:passthrough_gulf 5) (* G2 *);
  ignore (add ~passthrough:passthrough_gulf 6) (* G3 *);
  let s = add ~island:island_b 10 in
  (* Wiser instances: the per-AS internal cost is the knob operators use
     to limit ingress traffic. *)
  let wiser_at island cost portal =
    let w =
      Wiser.create
        { Wiser.my_island = island; internal_cost = cost;
          portal = Ipv4.of_string portal; io = Portal_io.null }
    in
    w
  in
  List.iter
    (fun (sp, w) ->
      Speaker.add_module sp (Wiser.decision_module w);
      Speaker.set_active sp prefix Wiser.protocol)
    [ (d, wiser_at island_w 0 "172.16.0.1");
      (e1, wiser_at island_w 100 "172.16.0.1");
      (e2, wiser_at island_w 10 "172.16.0.1");
      (s, wiser_at island_b 1 "172.16.0.2") ];
  let cust a b =
    Network.link net ~a:(asn a) ~b:(asn b) ~b_is:Dbgp_bgp.Policy.To_provider ()
  in
  cust 1 2; cust 1 3;          (* D to its egresses *)
  cust 2 4; cust 4 10;         (* short path: E1 - G1 - S *)
  cust 3 5; cust 5 6; cust 6 10; (* long path: E2 - G2 - G3 - S *)
  Network.originate net (asn 1)
    (Ia.originate ~prefix ~origin_asn:(asn 1)
       ~next_hop:(Network.speaker_addr (asn 1)) ());
  ignore (Network.run net);
  s

let report label s =
  match Speaker.best s prefix with
  | None -> Format.printf "%s: no route!@." label
  | Some chosen ->
    let ia = chosen.Speaker.candidate.Dbgp_core.Decision_module.ia in
    Format.printf "%s@.  path: %a@.  Wiser cost visible: %s@.  chose the cheap long path: %b@.@."
      label Path_elem.pp_path ia.Ia.path_vector
      ( match Wiser.cost_of ia with
        | Some c -> string_of_int c
        | None -> "no (stripped)" )
      (List.mem (asn 3) (Ia.asns_on_path ia))

let () =
  Format.printf "=== D-BGP baseline (gulf passes Wiser's costs through) ===@.";
  report "S's selected route" (build ~passthrough_gulf:true);
  Format.printf "=== Plain-BGP baseline (gulf strips unknown protocols) ===@.";
  report "S's selected route" (build ~passthrough_gulf:false)
