lib/bgp/attr.ml: Asn Dbgp_types Dbgp_wire Format Ipv4 List Option Printf
