lib/bgp/attr.mli: Dbgp_types Dbgp_wire Format
