lib/bgp/decision.ml: Asn Attr Bool Dbgp_types Int Ipv4 List Option
