lib/bgp/decision.mli: Attr Dbgp_types
