lib/bgp/fsm.ml: Dbgp_types Format Message Option
