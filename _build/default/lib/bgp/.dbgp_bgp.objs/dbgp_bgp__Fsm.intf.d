lib/bgp/fsm.mli: Dbgp_types Format Message
