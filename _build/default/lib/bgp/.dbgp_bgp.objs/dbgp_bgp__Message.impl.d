lib/bgp/message.ml: Asn Attr Dbgp_types Dbgp_wire Format Ipv4 List Prefix Printf String
