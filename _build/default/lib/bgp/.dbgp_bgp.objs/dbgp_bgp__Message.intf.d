lib/bgp/message.mli: Attr Dbgp_types Format
