lib/bgp/policy.ml: Asn Attr Dbgp_types List Prefix
