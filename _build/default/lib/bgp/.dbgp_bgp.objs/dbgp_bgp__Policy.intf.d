lib/bgp/policy.mli: Attr Dbgp_types
