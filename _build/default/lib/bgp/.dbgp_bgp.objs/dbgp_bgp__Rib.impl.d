lib/bgp/rib.ml: Dbgp_trie Dbgp_types Hashtbl Ipv4 List Option Prefix
