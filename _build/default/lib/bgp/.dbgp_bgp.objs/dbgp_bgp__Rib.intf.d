lib/bgp/rib.mli: Dbgp_types
