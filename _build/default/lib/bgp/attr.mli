(** BGPv4 path attributes (RFC 4271, with 4-byte AS paths per RFC 6793).

    The baseline protocol's control information.  D-BGP's integrated
    advertisements embed these as the "shared" fields that BGP and its
    critical fixes have in common (Section 3.2: origin, next hop, and the
    path vector are listed once for Wiser, BGP and BGPSec).

    Unknown optional-transitive attributes are preserved verbatim —
    BGP's own limited pass-through mechanism, which Section 2.6 contrasts
    with D-BGP's systematized support. *)

type origin = Igp | Egp | Incomplete

type segment =
  | Seq of Dbgp_types.Asn.t list  (** AS_SEQUENCE: ordered *)
  | Set of Dbgp_types.Asn.t list  (** AS_SET: unordered, from aggregation *)

type as_path = segment list

type community = int
(** 32-bit community value, conventionally [asn:value]. *)

(** A raw attribute we do not interpret; [transitive] controls whether it
    propagates through speakers that don't recognize it. *)
type unknown = { type_code : int; transitive : bool; body : string }

type t = {
  origin : origin;
  as_path : as_path;
  next_hop : Dbgp_types.Ipv4.t;
  med : int option;               (** MULTI_EXIT_DISC *)
  local_pref : int option;        (** set on import policy; iBGP scope *)
  atomic_aggregate : bool;
  aggregator : (Dbgp_types.Asn.t * Dbgp_types.Ipv4.t) option;
  communities : community list;
  unknowns : unknown list;        (** optional attributes passed through *)
}

val make :
  ?origin:origin ->
  ?med:int ->
  ?local_pref:int ->
  ?atomic_aggregate:bool ->
  ?aggregator:Dbgp_types.Asn.t * Dbgp_types.Ipv4.t ->
  ?communities:community list ->
  ?unknowns:unknown list ->
  as_path:as_path ->
  next_hop:Dbgp_types.Ipv4.t ->
  unit ->
  t

val community : asn:int -> value:int -> community
val pp_community : Format.formatter -> community -> unit

val as_path_length : as_path -> int
(** AS_SET segments count as one hop (RFC 4271 section 9.1.2.2 a). *)

val as_path_asns : as_path -> Dbgp_types.Asn.t list
(** Every ASN mentioned, in order of appearance. *)

val as_path_contains : Dbgp_types.Asn.t -> as_path -> bool
(** The loop-detection test. *)

val prepend : Dbgp_types.Asn.t -> as_path -> as_path
(** Prepend an ASN, merging into a leading AS_SEQUENCE if present. *)

val strip_non_transitive : t -> t
(** What crosses an eBGP boundary: drops LOCAL_PREF and non-transitive
    unknowns. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val encode : Dbgp_wire.Writer.t -> t -> unit
val decode : Dbgp_wire.Reader.t -> t
(** @raise Dbgp_wire.Reader.Error on malformed input. *)
