open Dbgp_types

type candidate = {
  attrs : Attr.t;
  from_peer : Ipv4.t;
  from_asn : Asn.t;
  ebgp : bool;
}

let origin_rank = function Attr.Igp -> 0 | Attr.Egp -> 1 | Attr.Incomplete -> 2

(* Each step returns >0 if [a] wins; fall through on ties. *)
let compare a b =
  let lp c = Option.value c.attrs.Attr.local_pref ~default:100 in
  let steps =
    [ (fun () -> Int.compare (lp a) (lp b));
      (fun () ->
        Int.compare
          (Attr.as_path_length b.attrs.Attr.as_path)
          (Attr.as_path_length a.attrs.Attr.as_path));
      (fun () ->
        Int.compare (origin_rank b.attrs.Attr.origin) (origin_rank a.attrs.Attr.origin));
      (fun () ->
        (* MED comparable only between routes from the same neighbor AS;
           missing MED is best (treated as 0 per common practice). *)
        if Asn.equal a.from_asn b.from_asn then
          let med c = Option.value c.attrs.Attr.med ~default:0 in
          Int.compare (med b) (med a)
        else 0);
      (fun () -> Bool.compare a.ebgp b.ebgp);
      (fun () -> Ipv4.compare b.from_peer a.from_peer) ]
  in
  let rec go = function
    | [] -> 0
    | step :: rest -> ( match step () with 0 -> go rest | c -> c )
  in
  go steps

let best = function
  | [] -> None
  | c :: rest ->
    Some (List.fold_left (fun acc x -> if compare x acc > 0 then x else acc) c rest)

let rank cands = List.sort (fun a b -> compare b a) cands
