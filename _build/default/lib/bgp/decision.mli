(** The BGPv4 decision process (RFC 4271 section 9.1).

    Ranks candidate routes for one prefix: highest LOCAL_PREF, shortest
    AS path, lowest ORIGIN, lowest MED (between routes from the same
    neighboring AS), eBGP over iBGP, lowest peer BGP identifier.  This is
    the path-selection algorithm that lives inside D-BGP's BGP decision
    module; critical fixes either extend it (Wiser) or replace it
    entirely (archetype modules). *)

type candidate = {
  attrs : Attr.t;
  from_peer : Dbgp_types.Ipv4.t;   (** peer BGP identifier *)
  from_asn : Dbgp_types.Asn.t;     (** neighboring AS the route came from *)
  ebgp : bool;                     (** learned over an external session? *)
}

val compare : candidate -> candidate -> int
(** [compare a b > 0] iff [a] is preferred. Total order (final tie-break
    on peer id makes it antisymmetric). *)

val best : candidate list -> candidate option
(** The most-preferred candidate, [None] on the empty list. *)

val rank : candidate list -> candidate list
(** All candidates, most-preferred first. *)
