type state = Idle | Connect | Open_sent | Open_confirm | Established

type config = {
  my_asn : Dbgp_types.Asn.t;
  my_id : Dbgp_types.Ipv4.t;
  hold_time : int;
  capabilities : int list;
}

type t = { cfg : config; st : state; peer : Message.open_msg option }

type event =
  | Manual_start
  | Manual_stop
  | Tcp_established
  | Tcp_failed
  | Recv of Message.t
  | Hold_timer_expired
  | Keepalive_timer_expired

type action =
  | Send of Message.t
  | Connect_tcp
  | Close_tcp
  | Session_up of Message.open_msg
  | Session_down
  | Deliver_update of Message.update
  | Start_hold_timer of int
  | Start_keepalive_timer of int

let create cfg = { cfg; st = Idle; peer = None }
let state t = t.st
let config t = t.cfg
let peer_open t = t.peer

let negotiated_hold_time t =
  Option.map (fun (o : Message.open_msg) -> min o.hold_time t.cfg.hold_time) t.peer

let my_open cfg : Message.open_msg =
  { version = 4;
    my_asn = cfg.my_asn;
    hold_time = cfg.hold_time;
    bgp_id = cfg.my_id;
    capabilities = cfg.capabilities }

let notif code sub =
  Message.Notification { error_code = code; error_subcode = sub; data = "" }

let reset t actions = ({ t with st = Idle; peer = None }, actions)

let timers t =
  match negotiated_hold_time t with
  | Some h when h > 0 -> [ Start_hold_timer h; Start_keepalive_timer (h / 3) ]
  | _ -> []

let handle t ev =
  match (t.st, ev) with
  | Idle, Manual_start -> ({ t with st = Connect }, [ Connect_tcp ])
  | Idle, _ -> (t, [])
  | _, Manual_stop -> reset t [ Send (notif 6 2 (* Cease/shutdown *)); Close_tcp; Session_down ]
  | Connect, Tcp_established ->
    ({ t with st = Open_sent }, [ Send (Message.Open (my_open t.cfg)) ])
  | Connect, Tcp_failed -> reset t []
  | Connect, _ -> (t, [])
  | Open_sent, Recv (Message.Open o) ->
    if o.version <> 4 then
      reset t [ Send (notif 2 1 (* OPEN error / unsupported version *)); Close_tcp ]
    else
      let t = { t with st = Open_confirm; peer = Some o } in
      (t, [ Send Message.Keepalive ])
  | Open_sent, (Tcp_failed | Recv (Message.Notification _)) -> reset t [ Close_tcp ]
  | Open_sent, Hold_timer_expired -> reset t [ Send (notif 4 0); Close_tcp ]
  | Open_sent, _ -> reset t [ Send (notif 5 0 (* FSM error *)); Close_tcp ]
  | Open_confirm, Recv Message.Keepalive ->
    let t = { t with st = Established } in
    let up = match t.peer with Some o -> [ Session_up o ] | None -> [] in
    (t, up @ timers t)
  | Open_confirm, (Tcp_failed | Recv (Message.Notification _)) ->
    reset t [ Close_tcp ]
  | Open_confirm, Hold_timer_expired -> reset t [ Send (notif 4 0); Close_tcp ]
  | Open_confirm, Keepalive_timer_expired -> (t, [ Send Message.Keepalive ])
  | Open_confirm, _ -> reset t [ Send (notif 5 0); Close_tcp ]
  | Established, Recv (Message.Update u) ->
    let restart =
      match negotiated_hold_time t with
      | Some h when h > 0 -> [ Start_hold_timer h ]
      | _ -> []
    in
    (t, Deliver_update u :: restart)
  | Established, Recv Message.Keepalive ->
    let restart =
      match negotiated_hold_time t with
      | Some h when h > 0 -> [ Start_hold_timer h ]
      | _ -> []
    in
    (t, restart)
  | Established, Keepalive_timer_expired ->
    let again =
      match negotiated_hold_time t with
      | Some h when h > 0 -> [ Start_keepalive_timer (h / 3) ]
      | _ -> []
    in
    (t, (Send Message.Keepalive :: again))
  | Established, Hold_timer_expired ->
    reset t [ Send (notif 4 0); Close_tcp; Session_down ]
  | Established, (Tcp_failed | Recv (Message.Notification _)) ->
    reset t [ Close_tcp; Session_down ]
  | Established, Recv (Message.Open _) ->
    reset t [ Send (notif 5 0); Close_tcp; Session_down ]
  | Established, (Manual_start | Tcp_established) -> (t, [])

let pp_state ppf st =
  Format.pp_print_string ppf
    ( match st with
      | Idle -> "Idle"
      | Connect -> "Connect"
      | Open_sent -> "OpenSent"
      | Open_confirm -> "OpenConfirm"
      | Established -> "Established" )
