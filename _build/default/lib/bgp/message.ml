open Dbgp_types
module W = Dbgp_wire.Writer
module R = Dbgp_wire.Reader

type open_msg = {
  version : int;
  my_asn : Asn.t;
  hold_time : int;
  bgp_id : Ipv4.t;
  capabilities : int list;
}

type update = {
  withdrawn : Prefix.t list;
  attrs : Attr.t option;
  nlri : Prefix.t list;
}

type notification = { error_code : int; error_subcode : int; data : string }

type t =
  | Open of open_msg
  | Update of update
  | Keepalive
  | Notification of notification

let capability_dbgp = 0x79

let marker = String.make 16 '\xff'

let type_code = function
  | Open _ -> 1
  | Update _ -> 2
  | Notification _ -> 3
  | Keepalive -> 4

let encode_body = function
  | Open o ->
    let b = W.create () in
    W.u8 b o.version;
    W.asn b o.my_asn;
    W.u16 b o.hold_time;
    W.ipv4 b o.bgp_id;
    W.list b W.u8 o.capabilities;
    W.contents b
  | Update u ->
    let b = W.create () in
    W.list b W.prefix u.withdrawn;
    ( match u.attrs with
      | None -> W.u8 b 0
      | Some a ->
        W.u8 b 1;
        Attr.encode b a );
    W.list b W.prefix u.nlri;
    W.contents b
  | Keepalive -> ""
  | Notification n ->
    let b = W.create () in
    W.u8 b n.error_code;
    W.u8 b n.error_subcode;
    W.delimited b n.data;
    W.contents b

let encode t =
  let body = encode_body t in
  let total = 16 + 2 + 1 + String.length body in
  if total > 0xFFFF then invalid_arg "Message.encode: message too large"
  else begin
    let b = W.create ~capacity:total () in
    W.bytes b marker;
    W.u16 b total;
    W.u8 b (type_code t);
    W.bytes b body;
    W.contents b
  end

let decode s =
  let r = R.of_string s in
  let m = R.bytes r 16 in
  if m <> marker then raise (R.Error "bad marker");
  let len = R.u16 r in
  if len <> String.length s then
    raise (R.Error (Printf.sprintf "length field %d /= buffer %d" len (String.length s)));
  match R.u8 r with
  | 1 ->
    let version = R.u8 r in
    let my_asn = R.asn r in
    let hold_time = R.u16 r in
    let bgp_id = R.ipv4 r in
    let capabilities = R.list r R.u8 in
    Open { version; my_asn; hold_time; bgp_id; capabilities }
  | 2 ->
    let withdrawn = R.list r R.prefix in
    let attrs = match R.u8 r with 0 -> None | _ -> Some (Attr.decode r) in
    let nlri = R.list r R.prefix in
    Update { withdrawn; attrs; nlri }
  | 3 ->
    let error_code = R.u8 r in
    let error_subcode = R.u8 r in
    let data = R.delimited r in
    Notification { error_code; error_subcode; data }
  | 4 -> Keepalive
  | n -> raise (R.Error (Printf.sprintf "bad message type %d" n))

let pp ppf = function
  | Open o ->
    Format.fprintf ppf "OPEN v%d %a hold=%d id=%a" o.version Asn.pp o.my_asn
      o.hold_time Ipv4.pp o.bgp_id
  | Update u ->
    Format.fprintf ppf "UPDATE withdrawn=%d nlri=[%a]%a"
      (List.length u.withdrawn)
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " ")
         Prefix.pp)
      u.nlri
      (fun ppf -> function
        | None -> ()
        | Some a -> Format.fprintf ppf " %a" Attr.pp a)
      u.attrs
  | Keepalive -> Format.pp_print_string ppf "KEEPALIVE"
  | Notification n ->
    Format.fprintf ppf "NOTIFICATION %d/%d" n.error_code n.error_subcode
