(** BGPv4 messages (RFC 4271 section 4): OPEN, UPDATE, KEEPALIVE and
    NOTIFICATION, with a binary codec framed by the standard 16-byte
    marker + length + type header.  D-BGP reuses this session layer
    unchanged and extends only the advertisement contents (Section 3). *)

type open_msg = {
  version : int;                (** 4 *)
  my_asn : Dbgp_types.Asn.t;
  hold_time : int;              (** seconds; 0 disables keepalives *)
  bgp_id : Dbgp_types.Ipv4.t;   (** router ID *)
  capabilities : int list;      (** advertised capability codes *)
}

type update = {
  withdrawn : Dbgp_types.Prefix.t list;
  attrs : Attr.t option;        (** [None] iff the update only withdraws *)
  nlri : Dbgp_types.Prefix.t list;
}

type notification = {
  error_code : int;
  error_subcode : int;
  data : string;
}

type t =
  | Open of open_msg
  | Update of update
  | Keepalive
  | Notification of notification

val capability_dbgp : int
(** The capability code Beagle advertises to signal IA support; legacy
    peers that do not echo it receive plain BGP UPDATEs (Section 3.5,
    deployment of D-BGP itself). *)

val encode : t -> string
(** Serializes with header.  @raise Invalid_argument if the message
    exceeds the 64 KiB length field. *)

val decode : string -> t
(** @raise Dbgp_wire.Reader.Error on malformed input (bad marker, bad
    type, truncation). *)

val pp : Format.formatter -> t -> unit
