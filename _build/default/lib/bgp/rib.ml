open Dbgp_types
module Trie = Dbgp_trie.Prefix_trie

type peer_id = Ipv4.t

(* Keys of the hashtables are peer ids as raw ints (Ipv4.to_int). *)
type 'route t = {
  adj_in : (int, 'route Trie.t) Hashtbl.t;
  mutable loc : 'route Trie.t;
  adj_out : (int, 'route Trie.t) Hashtbl.t;
}

let create () =
  { adj_in = Hashtbl.create 8; loc = Trie.empty; adj_out = Hashtbl.create 8 }

let key p = Ipv4.to_int p

let table tbl peer = Option.value (Hashtbl.find_opt tbl (key peer)) ~default:Trie.empty

let adj_in_set t ~peer p r =
  Hashtbl.replace t.adj_in (key peer) (Trie.add p r (table t.adj_in peer))

let adj_in_del t ~peer p =
  Hashtbl.replace t.adj_in (key peer) (Trie.remove p (table t.adj_in peer))

let adj_in_get t ~peer p = Trie.find p (table t.adj_in peer)

let adj_in_candidates t p =
  Hashtbl.fold
    (fun peer trie acc ->
      match Trie.find p trie with
      | None -> acc
      | Some r -> (Ipv4.of_int peer, r) :: acc)
    t.adj_in []
  |> List.sort (fun (a, _) (b, _) -> Ipv4.compare a b)

let drop_peer t ~peer =
  let affected =
    Trie.fold (fun p _ acc -> p :: acc) (table t.adj_in peer) []
  in
  Hashtbl.remove t.adj_in (key peer);
  Hashtbl.remove t.adj_out (key peer);
  List.rev affected

let loc_set t p r = t.loc <- Trie.add p r t.loc
let loc_del t p = t.loc <- Trie.remove p t.loc
let loc_get t p = Trie.find p t.loc
let loc_lookup t addr = Trie.longest_match addr t.loc
let loc_bindings t = Trie.bindings t.loc
let loc_size t = Trie.cardinal t.loc

let adj_out_set t ~peer p r =
  Hashtbl.replace t.adj_out (key peer) (Trie.add p r (table t.adj_out peer))

let adj_out_del t ~peer p =
  Hashtbl.replace t.adj_out (key peer) (Trie.remove p (table t.adj_out peer))

let adj_out_get t ~peer p = Trie.find p (table t.adj_out peer)

let prefixes t =
  let acc =
    Hashtbl.fold
      (fun _ trie acc -> Trie.fold (fun p _ s -> Prefix.Set.add p s) trie acc)
      t.adj_in Prefix.Set.empty
  in
  Trie.fold (fun p _ s -> Prefix.Set.add p s) t.loc acc
