(** BGP routing information bases.

    The three RIBs of RFC 4271: per-peer Adj-RIB-In (what each peer
    advertised), the Loc-RIB (selected best routes), and per-peer
    Adj-RIB-Out (what we advertised to each peer).  Mutable, as a speaker
    owns exactly one; snapshots of the Loc-RIB are cheap because the
    underlying trie is persistent. *)

type peer_id = Dbgp_types.Ipv4.t

type 'route t

val create : unit -> 'route t

(** {1 Adj-RIB-In} *)

val adj_in_set : 'r t -> peer:peer_id -> Dbgp_types.Prefix.t -> 'r -> unit
val adj_in_del : 'r t -> peer:peer_id -> Dbgp_types.Prefix.t -> unit
val adj_in_get : 'r t -> peer:peer_id -> Dbgp_types.Prefix.t -> 'r option

val adj_in_candidates : 'r t -> Dbgp_types.Prefix.t -> (peer_id * 'r) list
(** Every peer's current route for the prefix. *)

val drop_peer : 'r t -> peer:peer_id -> Dbgp_types.Prefix.t list
(** Session loss: clears the peer's Adj-RIB-In and Adj-RIB-Out and
    returns the prefixes whose candidate sets changed. *)

(** {1 Loc-RIB} *)

val loc_set : 'r t -> Dbgp_types.Prefix.t -> 'r -> unit
val loc_del : 'r t -> Dbgp_types.Prefix.t -> unit
val loc_get : 'r t -> Dbgp_types.Prefix.t -> 'r option
val loc_lookup : 'r t -> Dbgp_types.Ipv4.t -> (Dbgp_types.Prefix.t * 'r) option
(** Longest-prefix match against the Loc-RIB. *)

val loc_bindings : 'r t -> (Dbgp_types.Prefix.t * 'r) list
val loc_size : 'r t -> int

(** {1 Adj-RIB-Out} *)

val adj_out_set : 'r t -> peer:peer_id -> Dbgp_types.Prefix.t -> 'r -> unit
val adj_out_del : 'r t -> peer:peer_id -> Dbgp_types.Prefix.t -> unit
val adj_out_get : 'r t -> peer:peer_id -> Dbgp_types.Prefix.t -> 'r option

val prefixes : 'r t -> Dbgp_types.Prefix.Set.t
(** Every prefix appearing in any Adj-RIB-In or the Loc-RIB. *)
