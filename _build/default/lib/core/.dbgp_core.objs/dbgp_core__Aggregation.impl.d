lib/core/aggregation.ml: Asn Dbgp_types Hashtbl Ia List Option Path_elem Prefix Protocol_id Value
