lib/core/aggregation.mli: Dbgp_types Ia
