lib/core/codec.ml: Dbgp_types Dbgp_wire Ia Island_id List Path_elem Printf Protocol_id String Value
