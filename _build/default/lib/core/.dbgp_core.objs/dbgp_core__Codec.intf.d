lib/core/codec.mli: Ia
