lib/core/decision_module.ml: Asn Dbgp_types Filters Ia Int List Option Peer Prefix Protocol_id Value
