lib/core/decision_module.mli: Dbgp_types Filters Ia Peer
