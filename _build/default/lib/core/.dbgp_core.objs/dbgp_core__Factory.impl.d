lib/core/factory.ml: Filters Ia List
