lib/core/factory.mli: Dbgp_types Ia
