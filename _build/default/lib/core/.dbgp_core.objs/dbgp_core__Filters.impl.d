lib/core/filters.ml: Codec Dbgp_types Ia List Option Protocol_id
