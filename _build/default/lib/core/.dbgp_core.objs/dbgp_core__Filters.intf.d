lib/core/filters.mli: Dbgp_types Ia
