lib/core/ia.ml: Asn Dbgp_types Format Hashtbl Island_id List Option Path_elem Prefix Protocol_id Value
