lib/core/ia.mli: Dbgp_types Format Value
