lib/core/ia_db.ml: Dbgp_types Ia List Option Peer Prefix
