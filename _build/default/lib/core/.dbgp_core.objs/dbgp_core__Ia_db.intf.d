lib/core/ia_db.mli: Dbgp_types Ia Peer
