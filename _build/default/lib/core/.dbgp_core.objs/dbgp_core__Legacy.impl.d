lib/core/legacy.ml: Asn Codec Dbgp_bgp Dbgp_types Dbgp_wire Ia Ipv4 List Option Path_elem Protocol_id Value
