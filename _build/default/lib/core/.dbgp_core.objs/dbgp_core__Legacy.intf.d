lib/core/legacy.mli: Dbgp_bgp Dbgp_types Ia
