lib/core/peer.ml: Asn Dbgp_types Format Ipv4 Map Set
