lib/core/peer.mli: Dbgp_types Format Map Set
