lib/core/speaker.ml: Asn Dbgp_bgp Dbgp_trie Dbgp_types Decision_module Factory Filters Hashtbl Ia Ia_db Ipv4 Island_id List Logs Option Path_elem Peer Prefix Protocol_id
