lib/core/speaker.mli: Dbgp_bgp Dbgp_types Decision_module Filters Ia Peer
