lib/core/translation.ml: Dbgp_types Ia
