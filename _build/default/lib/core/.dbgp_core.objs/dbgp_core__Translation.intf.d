lib/core/translation.mli: Dbgp_types Ia
