lib/core/value.ml: Asn Dbgp_types Dbgp_wire Format Int Ipv4 List Prefix Printf String
