lib/core/value.mli: Dbgp_types Dbgp_wire Format
