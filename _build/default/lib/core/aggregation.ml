open Dbgp_types

type merge_rule = Cannot_aggregate | Take_worst | Take_min | Must_be_equal

let rules : (int * string, merge_rule) Hashtbl.t = Hashtbl.create 16

let register_rule ~proto ~field rule =
  Hashtbl.replace rules (Protocol_id.to_int proto, field) rule

let rule_for ~proto ~field =
  Option.value
    (Hashtbl.find_opt rules (Protocol_id.to_int proto, field))
    ~default:Cannot_aggregate

(* Built-in rules reflecting the paper's analysis: plain BGP fields merge
   conservatively; everything else defaults to Cannot_aggregate. *)
let () =
  register_rule ~proto:Protocol_id.bgp ~field:Ia.field_origin Take_worst;
  register_rule ~proto:Protocol_id.bgp ~field:Ia.field_next_hop Must_be_equal;
  register_rule ~proto:Protocol_id.eq_bgp ~field:"eqbgp-bw" Take_min

let siblings a b =
  Prefix.length a > 0
  && Prefix.length a = Prefix.length b
  && (not (Prefix.equal a b))
  &&
  let parent = Prefix.make (Prefix.network a) (Prefix.length a - 1) in
  Prefix.subsumes parent b

let parent_of a = Prefix.make (Prefix.network a) (Prefix.length a - 1)

let merged_path_vector (a : Ia.t) (b : Ia.t) =
  (* BGP-style aggregation: the union of both paths as one AS_SET (we do
     not attempt to find a common SEQUENCE head — ATOMIC_AGGREGATE
     semantics). *)
  let asns = List.sort_uniq Asn.compare (Ia.asns_on_path a @ Ia.asns_on_path b) in
  [ Path_elem.as_set asns ]

let descriptor_rule (d : Ia.path_descriptor) =
  (* A shared descriptor aggregates only if every owner's rule agrees;
     the most restrictive wins. *)
  List.fold_left
    (fun acc proto ->
      match (acc, rule_for ~proto ~field:d.Ia.field) with
      | Cannot_aggregate, _ | _, Cannot_aggregate -> Cannot_aggregate
      | Must_be_equal, _ | _, Must_be_equal -> Must_be_equal
      | Take_worst, Take_min | Take_min, Take_worst -> Cannot_aggregate
      | Take_worst, Take_worst -> Take_worst
      | Take_min, Take_min -> Take_min)
    (rule_for ~proto:(List.hd d.Ia.owners) ~field:d.Ia.field)
    (List.tl d.Ia.owners)

let merge_values rule va vb =
  match rule with
  | Cannot_aggregate -> None
  | Must_be_equal -> if Value.equal va vb then Some va else None
  | Take_worst -> (
    match (Value.as_int va, Value.as_int vb) with
    | Some x, Some y -> Some (Value.Int (max x y))
    | _ -> None )
  | Take_min -> (
    match (Value.as_int va, Value.as_int vb) with
    | Some x, Some y -> Some (Value.Int (min x y))
    | _ -> None )

let aggregate (a : Ia.t) (b : Ia.t) =
  if not (siblings a.Ia.prefix b.Ia.prefix) then None
  else begin
    let path_descriptors =
      List.filter_map
        (fun (da : Ia.path_descriptor) ->
          List.find_map
            (fun (db : Ia.path_descriptor) ->
              if da.Ia.field = db.Ia.field && da.Ia.owners = db.Ia.owners then
                Option.map
                  (fun v -> { da with Ia.value = v })
                  (merge_values (descriptor_rule da) da.Ia.value db.Ia.value)
              else None)
            b.Ia.path_descriptors)
        a.Ia.path_descriptors
    in
    let island_descriptors =
      List.filter
        (fun (da : Ia.island_descriptor) ->
          List.exists (fun db -> da = db) b.Ia.island_descriptors)
        a.Ia.island_descriptors
    in
    Some
      { Ia.prefix = parent_of a.Ia.prefix;
        path_vector = merged_path_vector a b;
        membership = [];
        path_descriptors;
        island_descriptors }
  end

let aggregable_fraction (ia : Ia.t) =
  match ia.Ia.path_descriptors with
  | [] -> 1.
  | ds ->
    let ok =
      List.length (List.filter (fun d -> descriptor_rule d <> Cannot_aggregate) ds)
    in
    float_of_int ok /. float_of_int (List.length ds)
