(** Prefix aggregation for IAs — and why D-BGP mostly cannot use it.

    Section 3.5: the initial D-BGP design supported proxy aggregation
    but it was removed, because aggregation is barely used today (0.1%%
    of paths) and most analyzed protocols cannot aggregate their control
    information — "BGPSec's attestations cannot be aggregated and it is
    not clear how to aggregate Wiser's path costs".  This module makes
    that concrete: per-protocol {!merge_rule}s say how (or whether) a
    descriptor survives aggregation, and {!aggregate} combines two
    sibling IAs into one covering advertisement, path vectors merged
    BGP-style into an AS_SET with ATOMIC_AGGREGATE semantics. *)

(** How one protocol's path descriptor aggregates. *)
type merge_rule =
  | Cannot_aggregate      (** descriptor dropped (BGPSec attestations) *)
  | Take_worst            (** keep the max of two ints (conservative QoS) *)
  | Take_min              (** keep the min (bottleneck bandwidth) *)
  | Must_be_equal         (** keep iff both sides agree *)

val register_rule :
  proto:Dbgp_types.Protocol_id.t -> field:string -> merge_rule -> unit
(** Process-global registry; later registrations override. *)

val rule_for :
  proto:Dbgp_types.Protocol_id.t -> field:string -> merge_rule
(** [Cannot_aggregate] when nothing is registered — the safe default the
    paper's analysis implies. *)

val aggregate : Ia.t -> Ia.t -> Ia.t option
(** [aggregate a b] combines two IAs whose prefixes are siblings (the
    two halves of a covering prefix) into one IA for the covering
    prefix: path vectors merged into an AS_SET, descriptors merged per
    rule (dropped under [Cannot_aggregate]), island descriptors kept
    only when identical on both sides.  [None] if the prefixes are not
    siblings. *)

val aggregable_fraction : Ia.t -> float
(** The fraction of an IA's path descriptors that would survive
    aggregation — the quantitative form of the Section 3.5 argument. *)
