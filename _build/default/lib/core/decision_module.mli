(** Decision modules (Figure 5).

    A decision module encapsulates one protocol's path-selection
    algorithm and its protocol-specific import/export filters.  Exactly
    one module is active per address range at a time; the speaker routes
    extracted control information to the active module and hands its
    chosen best path to the IA factory.

    Modules are first-class values: protocol implementations (Wiser,
    Pathlet Routing, archetypes...) construct them with closures over
    whatever private state they need (RIBs beyond the speaker's, scaling
    factors, portals). *)

type candidate = {
  from_peer : Peer.t option;  (** [None] for locally originated routes. *)
  ia : Ia.t;                  (** post-import-filter integrated advertisement *)
}

type t = {
  protocol : Dbgp_types.Protocol_id.t;
  import_filter : Filters.t;
  (** Protocol-specific import processing (stage 3), e.g. Wiser's cost
      scaling.  May modify only this protocol's control information. *)
  export_filter : Filters.t;
  (** Protocol-specific export processing (stage 5). *)
  select : prefix:Dbgp_types.Prefix.t -> candidate list -> candidate option;
  (** The path-selection algorithm (stage 4). *)
  contribute : me:Dbgp_types.Asn.t -> Ia.t -> Ia.t;
  (** Update this protocol's control information in the outgoing IA for
      the selected best path (stage 5-6), e.g. add my internal cost to
      the Wiser path cost, or append my attestation. *)
}

val bgp : unit -> t
(** The baseline's decision module: prefers the shortest path vector,
    then the lowest origin, then the lowest advertising peer — BGP's
    decision process restated over IAs (local preference is applied by
    per-neighbor import filters upstream). *)

val candidate_path_length : candidate -> int
val compare_tiebreak : candidate -> candidate -> int
(** The deterministic last-resort tie-break every module should fall
    back on: lowest advertising peer, locally-originated first.  Keeps
    selection stable across runs. *)
