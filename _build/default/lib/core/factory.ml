let build ~passthrough ~supported ~me ~my_addr ~contributions incoming =
  let ia =
    if passthrough then incoming
    else
      match Filters.keep_only supported incoming with
      | Some ia -> ia
      | None -> incoming (* keep_only never drops *)
  in
  let ia = List.fold_left (fun ia f -> f ia) ia contributions in
  ia |> Ia.prepend_as me |> Ia.with_next_hop my_addr
