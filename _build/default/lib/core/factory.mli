(** The IA factory (Figure 5, stage 6).

    Creates the new IA for a selected best path.  Pass-through lives
    here: the factory starts from the {e incoming} IA for the chosen
    path, so every protocol's control information survives by default;
    the active module's [contribute] then updates its own fields, the
    factory prepends this AS to the path vector and rewrites the
    next hop.

    [passthrough:false] is the plain-BGP baseline (and the ablation used
    by the Section 6.3 comparisons): control information of protocols
    this speaker does not support is stripped before re-advertisement. *)

val build :
  passthrough:bool ->
  supported:Dbgp_types.Protocol_id.Set.t ->
  me:Dbgp_types.Asn.t ->
  my_addr:Dbgp_types.Ipv4.t ->
  contributions:(Ia.t -> Ia.t) list ->
  Ia.t ->
  Ia.t
(** [build ~passthrough ~supported ~me ~my_addr ~contributions incoming]
    is the IA this speaker advertises after selecting [incoming]'s path.
    [contributions] are the supported modules' [contribute ~me] updates,
    applied in order after the stripping decision. *)
