open Dbgp_types

type t = Ia.t -> Ia.t option

let accept ia = Some ia
let reject _ = None
let compose f g ia = Option.bind (f ia) g
let chain fs = List.fold_left compose accept fs
let reject_loops ia = if Ia.has_loop ia then None else Some ia
let drop_protocol p ia = Some (Ia.remove_protocol p ia)

let keep_only keep ia =
  let drop = Protocol_id.Set.diff (Ia.protocols ia) keep in
  Some (Protocol_id.Set.fold Ia.remove_protocol drop ia)

let strip_island_descriptors (ia : Ia.t) =
  Some { ia with island_descriptors = [] }

let prepend_as a ia = Some (Ia.prepend_as a ia)
let abstract_island ~island ~members ia = Some (Ia.abstract_island ~island ~members ia)

let declare_membership ~island ~members ia =
  Some (Ia.declare_membership ~island ~members ia)

let max_size budget ia = if Codec.size ia > budget then None else Some ia
let when_ pred f ia = if pred ia then f ia else Some ia
