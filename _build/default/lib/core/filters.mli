(** Global import/export filters (Figure 5, stages 1 and 7).

    A filter transforms an IA or drops it.  Global filters apply to all
    protocols in an IA — they are how gulf operators assert control
    (e.g. removing a problematic protocol knowing only its ID) and how
    islands state membership or abstract away their interior at their
    egresses. *)

type t = Ia.t -> Ia.t option

val accept : t
val reject : t

val compose : t -> t -> t
(** [compose f g] applies [f] then [g]; a drop short-circuits. *)

val chain : t list -> t

val reject_loops : t
(** The loop-detection stage: drops any IA whose path vector repeats an
    AS or island (G-R5).  Installed at ingress by every speaker. *)

val drop_protocol : Dbgp_types.Protocol_id.t -> t
(** Remove one protocol's control information, keep the IA. *)

val keep_only : Dbgp_types.Protocol_id.Set.t -> t
(** Remove every protocol not in the set.  [keep_only {bgp}] is the
    legacy-BGP downgrade applied when speaking to a peer that did not
    advertise the D-BGP capability (Section 3.5). *)

val strip_island_descriptors : t

val prepend_as : Dbgp_types.Asn.t -> t
(** Egress: prepend my AS number to the path vector. *)

val abstract_island :
  island:Dbgp_types.Island_id.t -> members:Dbgp_types.Asn.t list -> t
(** Egress for islands hiding their interior. *)

val declare_membership :
  island:Dbgp_types.Island_id.t -> members:Dbgp_types.Asn.t list -> t
(** Egress for islands exposing member ASes. *)

val max_size : int -> t
(** Drop IAs whose encoding exceeds a byte budget (operator safety
    valve against descriptor bloat). *)

val when_ : (Ia.t -> bool) -> t -> t
(** Apply the filter only when the predicate holds. *)
