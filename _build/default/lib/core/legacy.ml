open Dbgp_types
module Attr = Dbgp_bgp.Attr
module Message = Dbgp_bgp.Message

let attr_type_code = 0xDB

let as_path_of_pv pv =
  (* Legacy AS_PATH: AS-number entries only; island IDs are elided here
     and restored from the extras attribute. *)
  let segs =
    List.filter_map
      (function
        | Path_elem.As a -> Some (Attr.Seq [ a ])
        | Path_elem.As_set s -> Some (Attr.Set s)
        | Path_elem.Island _ -> None)
      pv
  in
  (* Merge consecutive Seq segments for a tidy wire form. *)
  List.fold_right
    (fun seg acc ->
      match (seg, acc) with
      | Attr.Seq a, Attr.Seq b :: rest -> Attr.Seq (a @ b) :: rest
      | _ -> seg :: acc)
    segs []

let to_update (ia : Ia.t) =
  let origin =
    match
      Option.bind
        (Ia.find_path_descriptor ~proto:Protocol_id.bgp ~field:Ia.field_origin ia)
        Value.as_int
    with
    | Some 1 -> Attr.Egp
    | Some 2 | None -> Attr.Incomplete
    | Some _ -> Attr.Igp
  in
  let med =
    Option.bind
      (Ia.find_path_descriptor ~proto:Protocol_id.bgp ~field:Ia.field_med ia)
      Value.as_int
  in
  let attrs =
    Attr.make ~origin ?med
      ~unknowns:
        [ { Attr.type_code = attr_type_code;
            transitive = true;
            body = Codec.encode ia } ]
      ~as_path:(as_path_of_pv ia.Ia.path_vector)
      ~next_hop:(Option.value (Ia.next_hop ia) ~default:Ipv4.any)
      ()
  in
  { Message.withdrawn = []; attrs = Some attrs; nlri = [ ia.Ia.prefix ] }

let of_update (u : Message.update) =
  match (u.Message.attrs, u.Message.nlri) with
  | Some attrs, prefix :: _ -> (
    let extras =
      List.find_opt
        (fun (x : Attr.unknown) -> x.Attr.type_code = attr_type_code)
        attrs.Attr.unknowns
    in
    match extras with
    | Some x -> (
      match Codec.decode x.Attr.body with
      | ia -> Some ia
      | exception Dbgp_wire.Reader.Error _ -> None )
    | None ->
      (* Legacy origination: synthesize a plain-BGP IA. *)
      let pv =
        List.concat_map
          (function
            | Attr.Seq asns -> List.map (fun a -> Path_elem.As a) asns
            | Attr.Set asns -> [ Path_elem.as_set asns ])
          attrs.Attr.as_path
      in
      let base =
        { Ia.prefix;
          path_vector = pv;
          membership = [];
          path_descriptors = [];
          island_descriptors = [] }
      in
      let base =
        Ia.set_path_descriptor ~owners:[ Protocol_id.bgp ]
          ~field:Ia.field_origin
          (Value.Int
             ( match attrs.Attr.origin with
               | Attr.Igp -> 0
               | Attr.Egp -> 1
               | Attr.Incomplete -> 2 ))
          base
        |> Ia.with_next_hop attrs.Attr.next_hop
      in
      Some
        ( match attrs.Attr.med with
          | Some m ->
            Ia.set_path_descriptor ~owners:[ Protocol_id.bgp ]
              ~field:Ia.field_med (Value.Int m) base
          | None -> base ) )
  | _ -> None

let as_trans = Asn.of_int 23456

let to_update_two_byte (ia : Ia.t) =
  let u = to_update ia in
  match u.Message.attrs with
  | None -> u
  | Some attrs ->
    let squash seg =
      let sub a = if Asn.to_int a > 0xFFFF then as_trans else a in
      match seg with
      | Attr.Seq asns -> Attr.Seq (List.map sub asns)
      | Attr.Set asns -> Attr.Set (List.map sub asns)
    in
    { u with
      Message.attrs =
        Some { attrs with Attr.as_path = List.map squash attrs.Attr.as_path } }

let reconstruct_path (u : Message.update) =
  match of_update u with
  | Some ia -> (
    match Ia.asns_on_path ia with [] -> None | asns -> Some asns )
  | None -> None

let roundtrips ia =
  match of_update (to_update ia) with
  | Some ia' -> Ia.equal ia ia'
  | None -> false
