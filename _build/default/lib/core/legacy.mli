(** Transporting IAs over legacy BGP-4 (Section 3.5, "Deployment of
    D-BGP itself", and Section 7's observation that optional transitive
    attributes are BGP's existing pass-through mechanism).

    During the transitional phase, D-BGP speakers peer with legacy BGP-4
    routers.  This module maps an integrated advertisement onto a plain
    BGP UPDATE: the baseline information becomes ordinary path
    attributes, and everything D-BGP adds — island membership, path and
    island descriptors — rides in a single {e optional transitive}
    attribute (type code 0xDB).  Legacy routers that do not understand
    the attribute propagate it untouched (RFC 4271 semantics), which is
    exactly how 4-byte AS numbers were deployed; routers that have been
    configured to scrub unknown attributes degrade the IA to plain BGP,
    matching {!Speaker}'s capability-based downgrade. *)

val attr_type_code : int
(** 0xDB — the optional transitive attribute carrying D-BGP extras. *)

val to_update : Ia.t -> Dbgp_bgp.Message.update
(** Encode.  The AS path keeps only AS-number entries (island IDs cannot
    be expressed in a legacy AS_PATH; their full fidelity lives in the
    extras attribute, from which {!of_update} restores them). *)

val of_update : Dbgp_bgp.Message.update -> Ia.t option
(** Decode.  With the extras attribute present, the original IA is
    reconstructed exactly; without it (scrubbed or never attached), a
    plain-BGP IA is synthesized from the standard attributes.  [None]
    for withdraw-only updates or updates without NLRI. *)

val roundtrips : Ia.t -> bool
(** [of_update (to_update ia) = Some ia] — holds for every IA whose path
    vector the legacy AS_PATH can carry. *)

(** {1 Two-byte peers}

    Section 3.5: during transition, D-BGP "could translate between
    D-BGP's path vector and BGP's path vector (which only allows 2 bytes
    per entry) using techniques similar to how 4-byte-per-entry path
    vectors are being deployed today" — i.e. RFC 6793's AS_TRANS
    mechanism. *)

val as_trans : Dbgp_types.Asn.t
(** ASN 23456, substituted for any ASN that does not fit 16 bits. *)

val to_update_two_byte : Ia.t -> Dbgp_bgp.Message.update
(** Like {!to_update}, but the legacy AS_PATH is 2-byte-safe: oversized
    ASNs appear as {!as_trans} while the true 4-byte path rides in the
    extras attribute (the AS4_PATH role). *)

val reconstruct_path :
  Dbgp_bgp.Message.update -> Dbgp_types.Asn.t list option
(** The true path of a two-byte update: from the extras attribute when
    present, else the legacy AS_PATH itself.  [None] for updates without
    a path. *)
