open Dbgp_types

type t = { asn : Asn.t; addr : Ipv4.t }

let make ~asn ~addr = { asn; addr }

let compare a b =
  match Asn.compare a.asn b.asn with
  | 0 -> Ipv4.compare a.addr b.addr
  | c -> c

let equal a b = compare a b = 0
let pp ppf t = Format.fprintf ppf "%a@%a" Asn.pp t.asn Ipv4.pp t.addr

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Map = Map.Make (Ord)
module Set = Set.Make (Ord)
