(** Identity of a D-BGP peering neighbor. *)

type t = {
  asn : Dbgp_types.Asn.t;
  addr : Dbgp_types.Ipv4.t;  (** the neighbor's router / speaker address *)
}

val make : asn:Dbgp_types.Asn.t -> addr:Dbgp_types.Ipv4.t -> t
val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

module Map : Map.S with type key = t
module Set : Set.S with type elt = t
