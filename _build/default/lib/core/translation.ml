type 'adv t = {
  protocol : Dbgp_types.Protocol_id.t;
  ingress : Ia.t -> 'adv option;
  egress : 'adv -> Ia.t -> Ia.t;
  redistribute : 'adv -> Ia.t option;
}

let make ~protocol ~ingress ~egress ~redistribute =
  { protocol; ingress; egress; redistribute }
