(** Translation and redistribution for replacement protocols (Section 3.3,
    "Supporting islands running replacement protocols").

    A replacement protocol (Pathlet Routing, SCION, ...) speaks its own
    advertisement format within its island and D-BGP only at the island's
    borders.  It supplies three pieces:

    - an {b ingress translation module}, mapping incoming IAs to
      within-island advertisements while preserving the D-BGP path
      vector;
    - an {b egress translation module}, encoding within-island state
      into IAs that cross gulfs;
    - a {b redistribution module}, producing baseline (plain-BGP)
      routes for within-island destinations so gulf ASes retain basic
      connectivity. *)

type 'adv t = {
  protocol : Dbgp_types.Protocol_id.t;
  ingress : Ia.t -> 'adv option;
  (** IA arriving at the island border -> internal advertisement.
      Must preserve the IA's path vector for loop detection; [None]
      rejects. *)
  egress : 'adv -> Ia.t -> Ia.t;
  (** Fold within-island state into the IA leaving the island (typically
      as island descriptors). *)
  redistribute : 'adv -> Ia.t option;
  (** A plain-BGP IA for the internal route, or [None] if this route is
      not to be redistributed. *)
}

val make :
  protocol:Dbgp_types.Protocol_id.t ->
  ingress:(Ia.t -> 'adv option) ->
  egress:('adv -> Ia.t -> Ia.t) ->
  redistribute:('adv -> Ia.t option) ->
  'adv t
