(** Typed values carried in IA descriptors.

    Every protocol encodes its control information as values of this
    small structural type, so the IA factory, filters, and the wire codec
    can carry, copy and measure information for protocols they do not
    understand — the essence of pass-through support. *)

type t =
  | Int of int              (** non-negative integer (costs, bandwidths, IDs) *)
  | Str of string           (** text (names, negotiation hints) *)
  | Bytes of string         (** opaque binary (signatures, attestations) *)
  | Addr of Dbgp_types.Ipv4.t   (** portal / gateway addresses *)
  | Pfx of Dbgp_types.Prefix.t
  | Asn of Dbgp_types.Asn.t
  | List of t list          (** paths, pathlets, alternatives *)
  | Pair of t * t

val int : int -> t
val str : string -> t
val bytes : string -> t
val addr : Dbgp_types.Ipv4.t -> t
val pair : t -> t -> t
val list : t list -> t

val as_int : t -> int option
val as_str : t -> string option
val as_bytes : t -> string option
val as_addr : t -> Dbgp_types.Ipv4.t option
val as_list : t -> t list option
val as_pair : t -> (t * t) option
val as_asn : t -> Dbgp_types.Asn.t option

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit

val encode : Dbgp_wire.Writer.t -> t -> unit
val decode : Dbgp_wire.Reader.t -> t
(** @raise Dbgp_wire.Reader.Error on malformed input. *)

val wire_size : t -> int
(** Exact encoded size in bytes, used by the overhead accounting. *)
