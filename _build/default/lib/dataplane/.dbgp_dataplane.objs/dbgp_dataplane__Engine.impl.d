lib/dataplane/engine.ml: Asn Dbgp_types Format Forwarder Hashtbl Header List Packet Printf
