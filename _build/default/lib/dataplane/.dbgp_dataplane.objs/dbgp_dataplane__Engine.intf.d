lib/dataplane/engine.mli: Dbgp_types Format Forwarder Packet
