lib/dataplane/forwarder.ml: Asn Dbgp_trie Dbgp_types Hashtbl Ipv4 Option
