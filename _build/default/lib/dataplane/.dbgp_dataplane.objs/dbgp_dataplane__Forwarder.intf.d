lib/dataplane/forwarder.mli: Dbgp_types
