lib/dataplane/header.ml: Dbgp_types Format Ipv4 List String
