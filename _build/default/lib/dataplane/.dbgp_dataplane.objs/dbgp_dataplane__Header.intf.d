lib/dataplane/header.mli: Dbgp_types Format
