lib/dataplane/packet.ml: Format Header String
