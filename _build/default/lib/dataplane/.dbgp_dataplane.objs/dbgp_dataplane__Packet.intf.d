lib/dataplane/packet.mli: Format Header
