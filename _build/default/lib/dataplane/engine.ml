open Dbgp_types

type t = { forwarders : (int, Forwarder.t) Hashtbl.t }

type outcome =
  | Delivered of { at : Asn.t; path : Asn.t list }
  | Dropped of { at : Asn.t; reason : string }

let create () = { forwarders = Hashtbl.create 32 }

let add t f = Hashtbl.replace t.forwarders (Asn.to_int (Forwarder.me f)) f

let forwarder t a =
  match Hashtbl.find_opt t.forwarders (Asn.to_int a) with
  | Some f -> f
  | None -> raise Not_found

(* One forwarding decision at AS [at]: either the packet moves to another
   AS (with a possibly rewritten header stack), terminates here, or is
   dropped. *)
type step =
  | Move of Asn.t * Header.stack
  | Done
  | Drop of string

let rec decide f (headers : Header.stack) budget =
  if budget <= 0 then Drop "header-processing loop"
  else
    match headers with
    | [] -> Done
    | Header.Tunnel_hdr { endpoint } :: inner ->
      if Forwarder.is_local_addr f endpoint then decide f inner (budget - 1)
      else (
        match Forwarder.ip_lookup f endpoint with
        | Some (Forwarder.To_as next) -> Move (next, headers)
        | Some Forwarder.Local -> decide f inner (budget - 1)
        | None -> Drop "no route to tunnel endpoint" )
    | Header.Ipv4_hdr { dst; _ } :: inner ->
      if Forwarder.is_local_addr f dst then
        match inner with [] -> Done | _ -> decide f inner (budget - 1)
      else (
        match Forwarder.ip_lookup f dst with
        | Some (Forwarder.To_as next) -> Move (next, headers)
        | Some Forwarder.Local -> ( match inner with
                                    | [] -> Done
                                    | _ -> decide f inner (budget - 1) )
        | None -> Drop "no IPv4 route" )
    | Header.Pathlet_hdr { fids = [] } :: inner ->
      ( match inner with [] -> Done | _ -> decide f inner (budget - 1) )
    | Header.Pathlet_hdr { fids = fid :: rest } :: inner -> (
      match Forwarder.pathlet_lookup f ~fid with
      | None -> Drop (Printf.sprintf "unknown FID %d" fid)
      | Some (port, consume) ->
        let fids' = if consume then rest else fid :: rest in
        let headers' = Header.Pathlet_hdr { fids = fids' } :: inner in
        ( match port with
          | Forwarder.To_as next -> Move (next, headers')
          | Forwarder.Local -> decide f headers' (budget - 1) ) )
    | Header.Scion_hdr { path; pos } :: inner ->
      if pos >= List.length path then
        match inner with [] -> Done | _ -> decide f inner (budget - 1)
      else
        let current = List.nth path pos in
        if Forwarder.owns_router f ~router:current then
          decide f (Header.Scion_hdr { path; pos = pos + 1 } :: inner) (budget - 1)
        else (
          match Forwarder.router_lookup f ~router:current with
          | Some (Forwarder.To_as next) -> Move (next, headers)
          | Some Forwarder.Local ->
            decide f (Header.Scion_hdr { path; pos = pos + 1 } :: inner) (budget - 1)
          | None -> Drop (Printf.sprintf "no port for router %s" current) )

let route t ~from pkt =
  let rec go at (pkt : Packet.t) trail =
    let f =
      match Hashtbl.find_opt t.forwarders (Asn.to_int at) with
      | Some f -> f
      | None -> raise Not_found
    in
    match decide f pkt.Packet.headers 64 with
    | Done -> Delivered { at; path = List.rev (at :: trail) }
    | Drop reason -> Dropped { at; reason }
    | Move (next, headers) -> (
      match Packet.decrement_ttl { pkt with Packet.headers } with
      | None -> Dropped { at; reason = "TTL expired" }
      | Some pkt -> go next pkt (at :: trail) )
  in
  go from pkt []

let pp_outcome ppf = function
  | Delivered { at; path } ->
    Format.fprintf ppf "delivered at %a via [%a]" Asn.pp at
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " ")
         Asn.pp)
      path
  | Dropped { at; reason } ->
    Format.fprintf ppf "dropped at %a: %s" Asn.pp at reason
