(** Whole-network packet forwarding.

    Executes a packet's header stack across per-AS {!Forwarder}s:
    hop-based IPv4 forwarding, pathlet FID forwarding, SCION-style path
    forwarding, and tunnel decapsulation — including transitions between
    them at island borders (encapsulation is the sender's/border's job;
    the engine processes whatever stack it is given).  Loops are bounded
    by the packet TTL. *)

type t

type outcome =
  | Delivered of { at : Dbgp_types.Asn.t; path : Dbgp_types.Asn.t list }
      (** [path] includes source and destination ASes, in travel order. *)
  | Dropped of { at : Dbgp_types.Asn.t; reason : string }

val create : unit -> t
val add : t -> Forwarder.t -> unit
val forwarder : t -> Dbgp_types.Asn.t -> Forwarder.t
(** @raise Not_found for an unknown AS. *)

val route : t -> from:Dbgp_types.Asn.t -> Packet.t -> outcome
val pp_outcome : Format.formatter -> outcome -> unit
