open Dbgp_types
module Trie = Dbgp_trie.Prefix_trie

type port = To_as of Asn.t | Local

type t = {
  me : Asn.t;
  mutable fib : port Trie.t;
  locals : (int, unit) Hashtbl.t;
  pathlets : (int, port * bool) Hashtbl.t;
  routers : (string, port) Hashtbl.t;
  owned_routers : (string, unit) Hashtbl.t;
}

let create ~me () =
  { me;
    fib = Trie.empty;
    locals = Hashtbl.create 4;
    pathlets = Hashtbl.create 8;
    routers = Hashtbl.create 8;
    owned_routers = Hashtbl.create 4 }

let me t = t.me
let set_ip_route t p port = t.fib <- Trie.add p port t.fib
let ip_lookup t addr = Option.map snd (Trie.longest_match addr t.fib)
let add_local_addr t a = Hashtbl.replace t.locals (Ipv4.to_int a) ()
let is_local_addr t a = Hashtbl.mem t.locals (Ipv4.to_int a)

let set_pathlet_hop t ~fid port ~consume =
  Hashtbl.replace t.pathlets fid (port, consume)

let pathlet_lookup t ~fid = Hashtbl.find_opt t.pathlets fid
let set_router_port t ~router port = Hashtbl.replace t.routers router port
let router_lookup t ~router = Hashtbl.find_opt t.routers router
let owns_router t ~router = Hashtbl.mem t.owned_routers router
let claim_router t ~router = Hashtbl.replace t.owned_routers router ()
