(** Per-AS forwarding state: the data-plane complement of a speaker.

    Holds an IPv4 FIB (longest-prefix match), a pathlet forwarding table
    (FID to port, as installed by Pathlet Routing), a border-router port
    map (for SCION-style path headers), and the set of local addresses
    (which terminate tunnels and deliver IPv4 traffic). *)

(** Where a packet goes next. *)
type port =
  | To_as of Dbgp_types.Asn.t  (** hand off to a neighboring AS *)
  | Local                      (** deliver to this AS *)

type t

val create : me:Dbgp_types.Asn.t -> unit -> t
val me : t -> Dbgp_types.Asn.t

val set_ip_route : t -> Dbgp_types.Prefix.t -> port -> unit
val ip_lookup : t -> Dbgp_types.Ipv4.t -> port option

val add_local_addr : t -> Dbgp_types.Ipv4.t -> unit
val is_local_addr : t -> Dbgp_types.Ipv4.t -> bool

val set_pathlet_hop : t -> fid:int -> port -> consume:bool -> unit
(** [consume] pops the FID when the pathlet segment completes at this
    hop. *)

val pathlet_lookup : t -> fid:int -> (port * bool) option

val set_router_port : t -> router:string -> port -> unit
(** Which port a SCION path hop naming [router] leads to. *)

val router_lookup : t -> router:string -> port option

val owns_router : t -> router:string -> bool
(** Whether the named border router belongs to this AS. *)

val claim_router : t -> router:string -> unit
