open Dbgp_types

type t =
  | Ipv4_hdr of { src : Ipv4.t; dst : Ipv4.t }
  | Scion_hdr of { path : string list; pos : int }
  | Pathlet_hdr of { fids : int list }
  | Tunnel_hdr of { endpoint : Ipv4.t }

type stack = t list

let pp ppf = function
  | Ipv4_hdr { src; dst } -> Format.fprintf ppf "IP(%a->%a)" Ipv4.pp src Ipv4.pp dst
  | Scion_hdr { path; pos } ->
    Format.fprintf ppf "SCION(%s@%d)" (String.concat "," path) pos
  | Pathlet_hdr { fids } ->
    Format.fprintf ppf "PATHLET(%s)"
      (String.concat "," (List.map string_of_int fids))
  | Tunnel_hdr { endpoint } -> Format.fprintf ppf "TUN(%a)" Ipv4.pp endpoint

let pp_stack ppf stack =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "|")
    pp ppf stack

let wire_size = function
  | Ipv4_hdr _ -> 20
  | Scion_hdr { path; _ } -> 8 + (4 * List.length path)
  | Pathlet_hdr { fids } -> 4 + (4 * List.length fids)
  | Tunnel_hdr _ -> 20

let stack_size stack = List.fold_left (fun acc h -> acc + wire_size h) 0 stack
