(** Multi-network-protocol packet headers (Section 2).

    Traffic crossing gulfs in an evolvable Internet may need several
    network protocols' headers stacked: a SCION path header encapsulated
    in IPv4 to cross a BGP gulf, a pathlet FID list, a tunnel header for
    MIRO-style services.  The stack is outermost-first; forwarding
    always acts on the head. *)

type t =
  | Ipv4_hdr of { src : Dbgp_types.Ipv4.t; dst : Dbgp_types.Ipv4.t }
  | Scion_hdr of { path : string list; pos : int }
      (** source-selected border-router path; [pos] = current hop *)
  | Pathlet_hdr of { fids : int list }
      (** remaining forwarding IDs, current first *)
  | Tunnel_hdr of { endpoint : Dbgp_types.Ipv4.t }
      (** decapsulated when the endpoint is reached *)

type stack = t list

val pp : Format.formatter -> t -> unit
val pp_stack : Format.formatter -> stack -> unit

val wire_size : t -> int
(** Approximate on-the-wire size in bytes (IPv4 = 20, SCION = 8 +
    4/hop, pathlets = 4/FID + 4, tunnel = 20), for overhead
    accounting. *)

val stack_size : stack -> int
