type t = { headers : Header.stack; payload : string; ttl : int }

let make ?(ttl = 64) ~headers ~payload () =
  if headers = [] then invalid_arg "Packet.make: empty header stack"
  else if ttl <= 0 then invalid_arg "Packet.make: TTL must be positive"
  else { headers; payload; ttl }

let decrement_ttl t = if t.ttl <= 1 then None else Some { t with ttl = t.ttl - 1 }

let size t = Header.stack_size t.headers + String.length t.payload

let pp ppf t =
  Format.fprintf ppf "[%a ttl=%d |%d bytes]" Header.pp_stack t.headers t.ttl
    (String.length t.payload)
