(** Data-plane packets: a header stack, a payload, and a TTL bounding
    forwarding loops. *)

type t = {
  headers : Header.stack;
  payload : string;
  ttl : int;
}

val make : ?ttl:int -> headers:Header.stack -> payload:string -> unit -> t
(** Default TTL 64.  @raise Invalid_argument on an empty header stack or
    non-positive TTL. *)

val decrement_ttl : t -> t option
(** [None] when the TTL expires. *)

val size : t -> int
val pp : Format.formatter -> t -> unit
