lib/eval/benefits.ml: Array Dbgp_topology Dbgp_types Format Fun Hashtbl Int List Option Printf Prng
