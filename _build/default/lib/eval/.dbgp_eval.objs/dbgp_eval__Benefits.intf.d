lib/eval/benefits.mli: Dbgp_topology Format
