lib/eval/convergence.ml: Asn Dbgp_bgp Dbgp_core Dbgp_netsim Dbgp_topology Dbgp_types Format Fun Harness Ipv4 List Prefix Prng Protocol_id String Workload
