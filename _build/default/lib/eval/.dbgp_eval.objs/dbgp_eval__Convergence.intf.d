lib/eval/convergence.mli: Format
