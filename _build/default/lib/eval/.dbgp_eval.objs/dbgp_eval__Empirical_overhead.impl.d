lib/eval/empirical_overhead.ml: Asn Dbgp_core Dbgp_types Format Ipv4 Island_id List Overhead Prefix Printf Protocol_id String
