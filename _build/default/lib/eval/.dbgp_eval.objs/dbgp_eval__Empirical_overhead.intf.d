lib/eval/empirical_overhead.mli: Dbgp_core Format Overhead
