lib/eval/harness.ml: Asn Dbgp_bgp Dbgp_core Dbgp_netsim Dbgp_protocols Dbgp_types
