lib/eval/harness.mli: Dbgp_core Dbgp_netsim Dbgp_protocols Dbgp_types
