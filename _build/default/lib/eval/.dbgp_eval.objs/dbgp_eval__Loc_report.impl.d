lib/eval/loc_report.ml: Filename Format List String
