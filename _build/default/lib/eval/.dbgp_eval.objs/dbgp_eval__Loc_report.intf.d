lib/eval/loc_report.mli: Format
