lib/eval/overhead.ml: Format
