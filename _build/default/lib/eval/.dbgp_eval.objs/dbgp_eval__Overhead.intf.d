lib/eval/overhead.mli: Format
