lib/eval/rich_world.ml: Asn Dbgp_bgp Dbgp_core Dbgp_netsim Dbgp_protocols Dbgp_types Harness Ipv4 Island_id List Option Prefix Protocol_id
