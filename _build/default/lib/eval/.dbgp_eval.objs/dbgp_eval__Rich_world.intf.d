lib/eval/rich_world.mli: Dbgp_core
