lib/eval/scenarios.ml: Asn Dbgp_bgp Dbgp_core Dbgp_dataplane Dbgp_netsim Dbgp_protocols Dbgp_types Engine Forwarder Harness Header Ipv4 Island_id List Option Packet Prefix
