lib/eval/scenarios.mli: Dbgp_types
