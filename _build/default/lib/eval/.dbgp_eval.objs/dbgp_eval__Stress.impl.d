lib/eval/stress.ml: Asn Dbgp_bgp Dbgp_core Dbgp_types Format Gc Ipv4 List Printf String Unix Workload
