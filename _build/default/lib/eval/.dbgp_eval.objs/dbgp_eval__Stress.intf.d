lib/eval/stress.mli: Format
