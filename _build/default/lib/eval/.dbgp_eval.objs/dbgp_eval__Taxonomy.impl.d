lib/eval/taxonomy.ml: Dbgp_types List Protocol_id
