lib/eval/taxonomy.mli: Dbgp_types
