lib/eval/workload.ml: Asn Dbgp_bgp Dbgp_core Dbgp_types Ipv4 List Path_elem Prefix Printf Prng Protocol_id String
