lib/eval/workload.mli: Dbgp_bgp Dbgp_core
