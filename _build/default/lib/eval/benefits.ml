open Dbgp_types
module Graph = Dbgp_topology.As_graph
module Brite = Dbgp_topology.Brite

type baseline = Bgp_baseline | Dbgp_baseline

type config = {
  brite : Brite.params;
  trials : int;
  adoption_levels : int list;
  max_paths : int;
  bw_lo : int;
  bw_hi : int;
  dest_sample : int;
  seed : int;
}

let default =
  { brite = Brite.default;
    trials = 9;
    adoption_levels = [ 10; 20; 30; 40; 50; 60; 70; 80; 90; 100 ];
    max_paths = 10;
    bw_lo = 10;
    bw_hi = 1024;
    dest_sample = 120;
    seed = 42 }

type point = { adoption_pct : int; mean : float; ci95 : float }

type series = {
  archetype : string;
  baseline : baseline;
  status_quo : float;
  best_case : float;
  points : point list;
}

let baseline_name = function
  | Bgp_baseline -> "BGP baseline"
  | Dbgp_baseline -> "D-BGP baseline"

(* Route classes, by preference-free export semantics only:
   0 = origin, 1 = learned from customer, 2 = from peer, 3 = from provider. *)
let k_origin = 0
and k_customer = 1
and k_peer = 2
and k_provider = 3

let exportable k (view_of_receiver : Graph.view) =
  k = k_origin || k = k_customer
  || ( match view_of_receiver with
       | Graph.Customer_of_me -> true
       | Graph.Provider_of_me | Graph.Peer_of_me -> false )

let klass_of_view = function
  | Graph.Customer_of_me -> k_customer
  | Graph.Peer_of_me -> k_peer
  | Graph.Provider_of_me -> k_provider

(* Per-destination propagation state; [info.(v)] is the archetype's
   advertised control information (-1 = absent, i.e. dropped or never
   attached). *)
type state = {
  reach : bool array;
  klass : int array;
  parent : int array;
  plen : int array;
  info : int array;
  upc : int array;  (* upgraded ASes on the chosen path *)
}

let fresh_state n =
  { reach = Array.make n false;
    klass = Array.make n k_origin;
    parent = Array.make n (-1);
    plen = Array.make n 0;
    info = Array.make n (-1);
    upc = Array.make n 0 }

let on_path st ~dest v u =
  (* Is v on u's chosen path?  Walk the parent chain. *)
  let rec go x steps =
    if steps > 64 then true (* defensive: treat runaway chains as loops *)
    else if x = v then true
    else if x = dest || x < 0 then false
    else go st.parent.(x) (steps + 1)
  in
  go u 0

type archetype_hooks = {
  name : string;
  (* Given the selected candidate's advertised info and the list of all
     candidates' (neighbor, effective info) pairs, the info this AS
     advertises (-1 = none) when it IS upgraded... *)
  upgraded_info : selected_info:int -> all_infos:int list -> me:int -> int;
  (* ...and the preference key an upgraded AS maximizes for a candidate
     (higher better; first component of lexicographic order before
     shorter-path and lower-id tie-breaks).  [plen] and [upc] let
     additive objectives estimate the unexposed remainder of the path. *)
  upgraded_pref : info:int -> plen:int -> upc:int -> int;
}

(* One destination's converged routing under the given upgrade set.
   [threshold]: Section 3.5's mitigation — an upgraded AS applies the
   archetype's preference only to candidates whose paths already carry
   at least that many upgraded ASes, falling back to shortest-path
   otherwise. *)
let propagate ?threshold g ~dest ~upgraded ~baseline ~hooks st =
  let n = Graph.size g in
  let nbrs = Array.init n (fun v -> Graph.neighbors g v) in
  Array.fill st.reach 0 n false;
  Array.fill st.info 0 n (-1);
  st.reach.(dest) <- true;
  st.klass.(dest) <- k_origin;
  st.parent.(dest) <- -1;
  st.plen.(dest) <- 0;
  st.info.(dest) <- (if upgraded.(dest) then hooks.upgraded_info ~selected_info:(-1) ~all_infos:[] ~me:dest else -1);
  st.upc.(dest) <- (if upgraded.(dest) then 1 else 0);
  let changed = ref true in
  let rounds = ref 0 in
  (* Buffers for the synchronous round update. *)
  let n_reach = Array.make n false
  and n_klass = Array.make n 0
  and n_parent = Array.make n (-1)
  and n_plen = Array.make n 0
  and n_info = Array.make n (-1)
  and n_upc = Array.make n 0 in
  while !changed && !rounds < 60 do
    incr rounds;
    changed := false;
    Array.blit st.reach 0 n_reach 0 n;
    Array.blit st.klass 0 n_klass 0 n;
    Array.blit st.parent 0 n_parent 0 n;
    Array.blit st.plen 0 n_plen 0 n;
    Array.blit st.info 0 n_info 0 n;
    Array.blit st.upc 0 n_upc 0 n;
    for v = 0 to n - 1 do
      if v <> dest then begin
        (* Collect valley-free, loop-free candidates from the previous
           round's state. *)
        let best_u = ref (-1)
        and best_k = ref 0
        and best_plen = ref max_int
        and best_info = ref (-1)
        and best_pref = ref min_int
        and infos = ref [] in
        List.iter
          (fun (u, view_of_u) ->
            if st.reach.(u) then begin
              let view_of_v_from_u =
                match view_of_u with
                | Graph.Customer_of_me -> Graph.Provider_of_me
                | Graph.Provider_of_me -> Graph.Customer_of_me
                | Graph.Peer_of_me -> Graph.Peer_of_me
              in
              if
                exportable st.klass.(u) view_of_v_from_u
                && not (on_path st ~dest v u)
              then begin
                let cand_info = st.info.(u) in
                infos := cand_info :: !infos;
                let cand_plen = st.plen.(u) + 1 in
                let gated =
                  (* threshold = required percentage of the candidate
                     path's ASes that are upgraded (path = u's chosen
                     nodes plus u itself = plen + 1 ASes). *)
                  match threshold with
                  | Some pct -> st.upc.(u) * 100 >= pct * (st.plen.(u) + 1)
                  | None -> true
                in
                let better =
                  if upgraded.(v) && gated then begin
                    let pref =
                      hooks.upgraded_pref ~info:cand_info ~plen:cand_plen
                        ~upc:st.upc.(u)
                    in
                    (* Archetype-preferred candidates always beat
                       ungated ones (rank 1 vs 0 below). *)
                    !best_pref = min_int
                    || pref > !best_pref
                    || (pref = !best_pref && cand_plen < !best_plen)
                    || (pref = !best_pref && cand_plen = !best_plen && (!best_u < 0 || u < !best_u))
                  end
                  else if upgraded.(v) && !best_pref > min_int then
                    (* an archetype-gated best already exists; an
                       ungated candidate never displaces it *)
                    false
                  else
                    cand_plen < !best_plen
                    || (cand_plen = !best_plen && (!best_u < 0 || u < !best_u))
                in
                if better then begin
                  best_u := u;
                  best_k := klass_of_view view_of_u;
                  best_plen := cand_plen;
                  best_info := cand_info;
                  best_pref :=
                    ( if upgraded.(v) && gated then
                        hooks.upgraded_pref ~info:cand_info ~plen:cand_plen
                          ~upc:st.upc.(u)
                      else min_int )
                end
              end
            end)
          nbrs.(v);
        if !best_u < 0 then begin
          if n_reach.(v) then changed := true;
          n_reach.(v) <- false;
          n_info.(v) <- -1
        end
        else begin
          let info =
            if upgraded.(v) then
              hooks.upgraded_info ~selected_info:!best_info ~all_infos:!infos
                ~me:v
            else
              match baseline with
              | Dbgp_baseline -> !best_info (* pass-through *)
              | Bgp_baseline -> -1 (* stripped before re-advertisement *)
          in
          let upc = st.upc.(!best_u) + (if upgraded.(v) then 1 else 0) in
          if
            (not n_reach.(v))
            || n_parent.(v) <> !best_u
            || n_klass.(v) <> !best_k
            || n_plen.(v) <> !best_plen
            || n_info.(v) <> info
            || n_upc.(v) <> upc
          then changed := true;
          n_reach.(v) <- true;
          n_parent.(v) <- !best_u;
          n_klass.(v) <- !best_k;
          n_plen.(v) <- !best_plen;
          n_info.(v) <- info;
          n_upc.(v) <- upc
        end
      end
    done;
    Array.blit n_reach 0 st.reach 0 n;
    Array.blit n_klass 0 st.klass 0 n;
    Array.blit n_parent 0 st.parent 0 n;
    Array.blit n_plen 0 st.plen 0 n;
    Array.blit n_info 0 st.info 0 n;
    Array.blit n_upc 0 st.upc 0 n
  done

let mean_ci values =
  match values with
  | [] -> (0., 0.)
  | _ ->
    let n = float_of_int (List.length values) in
    let mean = List.fold_left ( +. ) 0. values /. n in
    if List.length values < 2 then (mean, 0.)
    else begin
      let var =
        List.fold_left (fun acc v -> acc +. ((v -. mean) ** 2.)) 0. values
        /. (n -. 1.)
      in
      (mean, 1.96 *. sqrt (var /. n))
    end

type adoption_order = Random_order | Core_first | Edge_first

let pick_upgraded ?(order = Random_order) ~g rng n pct =
  let upgraded = Array.make n false in
  let k = n * pct / 100 in
  (* Always draw the random sample so every order consumes the same PRNG
     stream — keeps destination sampling paired across ablation arms. *)
  let chosen = Prng.sample rng k (Array.init n Fun.id) in
  ( match order with
    | Random_order -> Array.iter (fun v -> upgraded.(v) <- true) chosen
    | Core_first | Edge_first ->
      let by_degree =
        List.init n Fun.id
        |> List.sort (fun a b ->
               let c = Int.compare (Graph.degree g a) (Graph.degree g b) in
               match order with
               | Core_first -> if c <> 0 then -c else Int.compare a b
               | Edge_first | Random_order -> if c <> 0 then c else Int.compare a b)
      in
      List.iteri (fun i v -> if i < k then upgraded.(v) <- true) by_degree );
  upgraded

(* Benefit of one (topology, upgrade set, baseline) configuration:
   [measure] maps converged per-destination state to the per-AS benefit,
   which we sum over sampled destinations (scaled to all destinations)
   and average over the measured population. *)
let run_config ?threshold g ~rng ~upgraded ~baseline ~hooks ~dest_sample ~population
    ~measure st =
  let n = Dbgp_topology.As_graph.size g in
  let sample = min dest_sample n in
  let dests = Prng.sample rng sample (Array.init n Fun.id) in
  let scale = float_of_int (n - 1) /. float_of_int sample in
  let totals = Array.make n 0. in
  Array.iter
    (fun dest ->
      propagate ?threshold g ~dest ~upgraded ~baseline ~hooks st;
      for v = 0 to n - 1 do
        if v <> dest && st.reach.(v) then totals.(v) <- totals.(v) +. measure st ~dest v
      done)
    dests;
  let members = List.filter population (List.init n Fun.id) in
  match members with
  | [] -> None
  | _ ->
    let sum =
      List.fold_left (fun acc v -> acc +. (totals.(v) *. scale)) 0. members
    in
    Some (sum /. float_of_int (List.length members))

let run_archetype ?threshold ?order cfg baseline ~hooks ~measure ~population_of =
  let n = cfg.brite.Brite.n in
  let st = fresh_state n in
  let levels = cfg.adoption_levels in
  let per_level = Hashtbl.create 16 in
  let status_quo_vals = ref [] and best_vals = ref [] in
  for trial = 0 to cfg.trials - 1 do
    let rng = Prng.create (cfg.seed + (trial * 7919)) in
    let g = Brite.generate rng cfg.brite in
    let extra = Prng.split rng in
    (* Status quo: nobody upgraded; population = everyone. *)
    let nobody = Array.make n false in
    ( match
        run_config g ~rng:(Prng.split extra) ~upgraded:nobody ~baseline ~hooks
          ~dest_sample:cfg.dest_sample
          ~population:(fun _ -> true)
          ~measure:(measure ~upgraded:nobody ~g) st
      with
      | Some v -> status_quo_vals := v :: !status_quo_vals
      | None -> () );
    List.iter
      (fun pct ->
        let upgraded = pick_upgraded ?order ~g extra n pct in
        let population = population_of ~g ~upgraded in
        match
          run_config ?threshold g ~rng:(Prng.split extra) ~upgraded ~baseline ~hooks
            ~dest_sample:cfg.dest_sample ~population
            ~measure:(measure ~upgraded ~g) st
        with
        | Some v ->
          Hashtbl.replace per_level pct
            (v :: Option.value (Hashtbl.find_opt per_level pct) ~default:[])
        | None -> ())
      levels;
    if not (List.mem 100 levels) then begin
      let all = Array.make n true in
      match
        run_config g ~rng:(Prng.split extra) ~upgraded:all ~baseline ~hooks
          ~dest_sample:cfg.dest_sample
          ~population:(fun _ -> true)
          ~measure:(measure ~upgraded:all ~g) st
      with
      | Some v -> best_vals := v :: !best_vals
      | None -> ()
    end
  done;
  let points =
    List.map
      (fun pct ->
        let vals = Option.value (Hashtbl.find_opt per_level pct) ~default:[] in
        let mean, ci95 = mean_ci vals in
        { adoption_pct = pct; mean; ci95 })
      levels
  in
  let status_quo, _ = mean_ci !status_quo_vals in
  let best_case =
    if List.mem 100 levels then
      match List.rev points with [] -> 0. | p :: _ -> p.mean
    else fst (mean_ci !best_vals)
  in
  (points, status_quo, best_case)

let extra_paths ?order cfg baseline =
  let cap = cfg.max_paths in
  let hooks =
    { name = "extra-paths";
      upgraded_info =
        (fun ~selected_info ~all_infos ~me:_ ->
          (* Described (protocol-usable) paths: the sum of candidates'
             advertised counts, plus the single default path when the
             selected candidate carries no protocol information. *)
          let described =
            List.fold_left
              (fun acc i -> if i >= 0 then acc + i else acc)
              0 all_infos
          in
          let total = described + (if selected_info < 0 then 1 else 0) in
          min cap (max 1 total));
      upgraded_pref = (fun ~info ~plen:_ ~upc:_ -> if info < 0 then 1 else info) }
  in
  let measure ~upgraded ~g:_ st ~dest:_ v =
    if upgraded.(v) && st.info.(v) >= 0 then float_of_int st.info.(v) else 1.
  in
  let population_of ~g ~upgraded =
    let stub_set = Graph.stubs g in
    fun v -> upgraded.(v) && List.mem v stub_set
  in
  let points, status_quo, best_case =
    run_archetype ?order cfg baseline ~hooks ~measure ~population_of
  in
  let tag =
    match order with
    | Some Core_first -> " (core-first adoption)"
    | Some Edge_first -> " (edge-first adoption)"
    | Some Random_order | None -> ""
  in
  { archetype = "extra-paths" ^ tag; baseline; status_quo; best_case; points }

let bottleneck_bandwidth_hooks cfg bw =
  ignore cfg;
  { name = "bottleneck-bandwidth";
    upgraded_info =
      (fun ~selected_info ~all_infos:_ ~me ->
        if selected_info < 0 then bw.(me) else min selected_info bw.(me));
    upgraded_pref = (fun ~info ~plen:_ ~upc:_ -> info) }

let bottleneck_bandwidth cfg baseline =
  let n = cfg.brite.Brite.n in
  (* Bandwidths are a property of the topology trial, but hooks close over
     one shared array refreshed per trial via the PRNG stream: we derive
     them deterministically from the AS id and the seed instead, which
     keeps them stable across baselines (paired comparison, like the
     paper's shared seeds). *)
  let bw = Array.make n 0 in
  let fill_bw seed =
    let rng = Prng.create (seed * 104729) in
    for v = 0 to n - 1 do
      bw.(v) <- Prng.int_in rng cfg.bw_lo cfg.bw_hi
    done
  in
  fill_bw cfg.seed;
  let hooks = bottleneck_bandwidth_hooks cfg bw in
  let measure ~upgraded:_ ~g:_ st ~dest v =
    (* True bottleneck: minimum ingress bandwidth over every AS the
       chosen path traverses after v. *)
    let rec walk x acc steps =
      if x < 0 || steps > 64 then acc
      else if x = dest then min acc bw.(x)
      else walk st.parent.(x) (min acc bw.(x)) (steps + 1)
    in
    float_of_int (walk st.parent.(v) max_int 0)
  in
  let population_of ~g:_ ~upgraded v = upgraded.(v) in
  let points, status_quo, best_case =
    run_archetype cfg baseline ~hooks ~measure ~population_of
  in
  { archetype = "bottleneck-bandwidth"; baseline; status_quo; best_case; points }

let bottleneck_bandwidth_threshold cfg ~coverage_pct baseline =
  let threshold = coverage_pct in
  let n = cfg.brite.Brite.n in
  let bw = Array.make n 0 in
  let rng = Prng.create (cfg.seed * 104729) in
  for v = 0 to n - 1 do
    bw.(v) <- Prng.int_in rng cfg.bw_lo cfg.bw_hi
  done;
  let hooks = bottleneck_bandwidth_hooks cfg bw in
  let measure ~upgraded:_ ~g:_ st ~dest v =
    let rec walk x acc steps =
      if x < 0 || steps > 64 then acc
      else if x = dest then min acc bw.(x)
      else walk st.parent.(x) (min acc bw.(x)) (steps + 1)
    in
    float_of_int (walk st.parent.(v) max_int 0)
  in
  let population_of ~g:_ ~upgraded v = upgraded.(v) in
  let points, status_quo, best_case =
    run_archetype ~threshold cfg baseline ~hooks ~measure ~population_of
  in
  { archetype =
      Printf.sprintf "bottleneck-bandwidth (>=%d%%%% upgraded coverage)" coverage_pct;
    baseline; status_quo; best_case; points }

let end_to_end_latency cfg baseline =
  (* Section 6.3's aside: protocols optimizing an additive objective like
     end-to-end latency "would see higher rates of incremental benefits"
     than the bottleneck archetype, because every exposed AS improves the
     estimate instead of one bottleneck dominating.  Advertised info is
     the accumulated latency over exposed (upgraded) ASes; selection
     minimizes it; the benefit metric is the TRUE path latency (lower is
     better, so the series stores its negation to keep "higher = better"
     uniform across archetypes). *)
  let n = cfg.brite.Brite.n in
  let lat = Array.make n 0 in
  let rng = Prng.create (cfg.seed * 7717) in
  for v = 0 to n - 1 do
    lat.(v) <- Prng.int_in rng 1 100
  done;
  let hooks =
    { name = "end-to-end-latency";
      upgraded_info =
        (fun ~selected_info ~all_infos:_ ~me ->
          (if selected_info < 0 then 0 else selected_info) + lat.(me));
      upgraded_pref =
        (fun ~info ~plen ~upc ->
          (* Estimated total latency: exposed sum plus the expected
             latency (midpoint ~50) of every unexposed AS on the path. *)
          let exposed = if info < 0 then 0 else info in
          let unexposed = max 0 (plen + 1 - upc) in
          -(exposed + (50 * unexposed))) }
  in
  let measure ~upgraded:_ ~g:_ st ~dest v =
    let rec walk x acc steps =
      if x < 0 || steps > 64 then acc
      else if x = dest then acc + lat.(x)
      else walk st.parent.(x) (acc + lat.(x)) (steps + 1)
    in
    -. float_of_int (walk st.parent.(v) 0 0)
  in
  let population_of ~g:_ ~upgraded v = upgraded.(v) in
  let points, status_quo, best_case =
    run_archetype cfg baseline ~hooks ~measure ~population_of
  in
  { archetype = "end-to-end latency (negated: higher is better)";
    baseline; status_quo; best_case; points }

let crossover s =
  (* The first adoption level from which the benefit stays above the
     status quo — a sustained crossing, robust to noise at low levels. *)
  let rec scan = function
    | [] -> None
    | p :: rest ->
      if p.mean > s.status_quo && List.for_all (fun q -> q.mean > s.status_quo) rest
      then Some p.adoption_pct
      else scan rest
  in
  scan s.points

let pp_series ppf s =
  Format.fprintf ppf "@[<v>%s (%s)@," s.archetype (baseline_name s.baseline);
  Format.fprintf ppf "status quo: %.1f   best case: %.1f@," s.status_quo
    s.best_case;
  List.iter
    (fun p ->
      Format.fprintf ppf "%3d%%  %10.1f  +/- %.1f@," p.adoption_pct p.mean
        p.ci95)
    s.points;
  Format.fprintf ppf "@]"
