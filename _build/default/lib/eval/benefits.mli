(** The incremental-benefit simulations of Section 6.3 (Figures 9, 10).

    Simulates protocol archetypes' path choices on a BRITE/Waxman
    AS-level topology in which a growing random fraction of ASes has
    adopted the archetype and the rest select shortest valley-free
    paths, comparing two baselines:

    - {b BGP baseline}: archetype control information is dropped when a
      non-upgraded AS re-advertises a route (no pass-through);
    - {b D-BGP baseline}: the information passes through gulfs.

    Two archetypes, as in the paper:

    - {e extra paths} (SCION / NIRA / Pathlet-like): advertisements
      carry the number of paths they represent (cap 10); upgraded ASes
      select the candidate with the most paths and can themselves use
      every candidate, so their own count is the capped sum.  Benefit at
      an upgraded stub = total paths available, summed over
      destinations.
    - {e bottleneck bandwidth} (EQ-BGP-like): only upgraded ASes expose
      their ingress bandwidth (uniform in [10, 1024]); upgraded ASes
      select the widest advertised bottleneck, while the benefit metric
      is the {e true} bottleneck over every AS on the chosen path —
      which is why ill-informed choices initially underperform the
      status quo. *)

type baseline = Bgp_baseline | Dbgp_baseline

type config = {
  brite : Dbgp_topology.Brite.params;
  trials : int;                (** independent topologies+upgrade draws *)
  adoption_levels : int list;  (** percents, e.g. [10; 20; ...; 100] *)
  max_paths : int;             (** Figure 9's per-advertisement cap *)
  bw_lo : int;
  bw_hi : int;                 (** Figure 10's bandwidth range *)
  dest_sample : int;           (** destinations sampled per trial *)
  seed : int;
}

val default : config
(** The paper's setup: 1000 ASes, Waxman alpha 0.15 / beta 0.25, nine
    trials, adoption steps of 10%%, cap 10, bandwidths U[10,1024]. *)

type point = {
  adoption_pct : int;
  mean : float;   (** benefit averaged over trials *)
  ci95 : float;   (** 95%% confidence half-interval over trials *)
}

type series = {
  archetype : string;
  baseline : baseline;
  status_quo : float;  (** benefit of shortest-path routing at 0%% adoption *)
  best_case : float;   (** benefit at 100%% adoption *)
  points : point list;
}

(** Who upgrades first.  The paper deploys randomly ("reflecting the
    ideal case of providing ASes the flexibility to deploy a new protocol
    independently of their neighbors"); the ordered variants ablate that
    choice — tier-1-led versus edge-led rollouts. *)
type adoption_order = Random_order | Core_first | Edge_first

val extra_paths : ?order:adoption_order -> config -> baseline -> series
val bottleneck_bandwidth : config -> baseline -> series

val bottleneck_bandwidth_threshold :
  config -> coverage_pct:int -> baseline -> series
(** Section 3.5's mitigation for compliance-sensitive protocols: an
    upgraded AS applies the archetype's selection only to candidate
    paths whose ASes are at least [coverage_pct]%% upgraded (their
    advertised bottleneck is then trustworthy), and routes by shortest
    path otherwise — trading early benefits for avoiding the
    below-status-quo dip. *)

val end_to_end_latency : config -> baseline -> series
(** The additive-objective archetype of Section 6.3's aside ("some other
    protocols that aim to optimize a global objective, such as
    end-to-end latency, would see higher rates of incremental
    benefits").  Benefit values are negated true path latencies so that
    higher still means better, uniformly with the other archetypes. *)

val crossover : series -> int option
(** First adoption level from which the mean benefit {e stays} above the
    status quo — the "minimum participation" threshold discussed around
    Figure 10. *)

val pp_series : Format.formatter -> series -> unit
val baseline_name : baseline -> string
