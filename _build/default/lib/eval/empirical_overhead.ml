open Dbgp_types
module Ia = Dbgp_core.Ia
module Value = Dbgp_core.Value
module Codec = Dbgp_core.Codec

type comparison = {
  label : string;
  modeled_bytes : int;
  measured_bytes : int;
  ratio : float;
}

let fix_protocols k =
  List.init k (fun i ->
      Protocol_id.register ~kind:Protocol_id.Critical_fix
        (Printf.sprintf "emp-fix-%d" i))

let cr_protocols k =
  List.init k (fun i ->
      Protocol_id.register ~kind:Protocol_id.Replacement
        (Printf.sprintf "emp-repl-%d" i))

let base_ia () =
  Ia.originate
    ~prefix:(Prefix.of_string "198.51.100.0/24")
    ~origin_asn:(Asn.of_int 64501)
    ~next_hop:(Ipv4.of_string "10.0.0.1")
    ()
  |> Ia.prepend_as (Asn.of_int 64502)
  |> Ia.prepend_as (Asn.of_int 64503)

let build_ia (p : Overhead.params) =
  let fixes = fix_protocols p.Overhead.cf_per_path in
  let shared_bytes =
    int_of_float (float_of_int p.Overhead.ci_per_cf *. (1. -. p.Overhead.cf_unique_frac))
  in
  let unique_bytes =
    int_of_float (float_of_int p.Overhead.ci_per_cf *. p.Overhead.cf_unique_frac)
  in
  let ia =
    (* One descriptor shared by every fix on the path (and BGP). *)
    Ia.set_path_descriptor
      ~owners:(Protocol_id.bgp :: fixes)
      ~field:"shared-control-info"
      (Value.Bytes (String.make shared_bytes 's'))
      (base_ia ())
  in
  let ia =
    (* Each fix's unique fraction. *)
    List.fold_left
      (fun ia fix ->
        Ia.set_path_descriptor ~owners:[ fix ]
          ~field:(Protocol_id.name fix ^ "-unique")
          (Value.Bytes (String.make unique_bytes 'u'))
          ia)
      ia fixes
  in
  (* Custom/replacement protocols: island descriptors of CI/CR bytes. *)
  List.fold_left
    (fun (ia, i) cr ->
      ( Ia.add_island_descriptor
          ~island:(Island_id.named (Printf.sprintf "isl-%d" i))
          ~proto:cr ~field:"control-info"
          (Value.Bytes (String.make p.Overhead.ci_per_cr 'r'))
          ia,
        i + 1 ))
    (ia, 0)
    (cr_protocols p.Overhead.cr_per_path)
  |> fst

let compare_at ~label (p : Overhead.params) =
  let modeled =
    (Overhead.plus_sharing p).Overhead.ia_cf_bytes
    + (Overhead.plus_sharing p).Overhead.ia_cr_bytes
  in
  let ia = build_ia p in
  let measured = Codec.size ia - Codec.size (base_ia ()) in
  { label;
    modeled_bytes = modeled;
    measured_bytes = measured;
    ratio = float_of_int measured /. float_of_int (max 1 modeled) }

let mid : Overhead.params =
  { Overhead.lo with
    Overhead.cf_per_path = 4;
    ci_per_cf = 64 * 1024;
    cf_unique_frac = 0.2;
    cr_per_path = 4;
    ci_per_cr = 4 * 1024 }

let run () =
  [ compare_at ~label:"lo corner" Overhead.lo;
    compare_at ~label:"mid point" mid;
    compare_at ~label:"hi corner" Overhead.hi ]

let pp ppf c =
  Format.fprintf ppf "%-10s modeled %8d B, measured %8d B, ratio %.3f"
    c.label c.modeled_bytes c.measured_bytes c.ratio
