(** Empirical validation of the Table 3 overhead model.

    The analytic model estimates IA sizes from parameter ranges; here we
    {e construct} real IAs at a parameter point — the configured number
    of critical fixes per path sharing the configured fraction of their
    control information, plus custom/replacement island descriptors —
    encode them with the actual codec, and compare measured bytes with
    the model's prediction.  Framing (owner lists, field names, varints)
    makes the measured size slightly larger; the point is that the two
    agree to within a small factor and move together across parameter
    points. *)

type comparison = {
  label : string;
  modeled_bytes : int;   (** the model's CF + CR contribution *)
  measured_bytes : int;  (** actual encoded size minus the base IA *)
  ratio : float;         (** measured / modeled *)
}

val build_ia : Overhead.params -> Dbgp_core.Ia.t
(** An IA realizing the parameter point: [cf_per_path] critical fixes
    (one shared descriptor carrying the common [1 - cf_unique_frac]
    fraction, plus per-fix unique descriptors), and [cr_per_path] island
    descriptors of [ci_per_cr] bytes each. *)

val compare_at : label:string -> Overhead.params -> comparison

val run : unit -> comparison list
(** The model's lo and hi corners plus a mid point. *)

val pp : Format.formatter -> comparison -> unit
