open Dbgp_types
module Speaker = Dbgp_core.Speaker
module Network = Dbgp_netsim.Network
module Lookup = Dbgp_netsim.Lookup_service

let add_as net ?island ?(passthrough = true) asn_int =
  let asn = Asn.of_int asn_int in
  let s =
    Speaker.create
      (Speaker.config ?island ~passthrough ~asn ~addr:(Network.speaker_addr asn)
         ())
  in
  Network.add_speaker net s;
  s

let cust net a b =
  Network.link net ~a:(Asn.of_int a) ~b:(Asn.of_int b)
    ~b_is:Dbgp_bgp.Policy.To_provider ()

let io_of net =
  let lookup = Network.lookup net in
  { Dbgp_protocols.Portal_io.post =
      (fun ~portal ~service ~key v -> Lookup.post lookup ~portal ~service ~key v);
    fetch = (fun ~portal ~service ~key -> Lookup.fetch lookup ~portal ~service ~key);
    rpc = (fun ~portal ~service req -> Lookup.rpc lookup ~portal ~service req) }
