(** Shared plumbing for building scenario topologies on the simulator. *)

val add_as :
  Dbgp_netsim.Network.t ->
  ?island:Dbgp_types.Island_id.t ->
  ?passthrough:bool ->
  int ->
  Dbgp_core.Speaker.t
(** Create a speaker for the AS number, register it, return it. *)

val cust : Dbgp_netsim.Network.t -> int -> int -> unit
(** [cust net a b]: [a] is the customer of [b], so advertisements flow
    [a] -> [b]. *)

val io_of : Dbgp_netsim.Network.t -> Dbgp_protocols.Portal_io.t
(** Portal access backed by the network's lookup service. *)
