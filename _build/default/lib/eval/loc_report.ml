type entry = {
  component : string;
  files : string list;
  loc : int;
  paper_loc : string;
}

let count_file path =
  match open_in path with
  | exception Sys_error _ -> 0
  | ic ->
    let count = ref 0 in
    ( try
        while true do
          let line = String.trim (input_line ic) in
          let is_comment =
            String.length line >= 2 && String.sub line 0 2 = "(*"
            && (String.length line < 2 || String.sub line (String.length line - 2) 2 = "*)")
          in
          if line <> "" && not is_comment then incr count
        done
      with End_of_file -> () );
    close_in ic;
    !count

let components =
  [ ("Wiser over D-BGP",
     [ "lib/protocols/wiser.ml" ],
     "109 basic + 255 across-gulf = 364");
    ("Pathlet Routing over D-BGP",
     [ "lib/protocols/pathlet.ml" ],
     "509 basic + 293 across-gulf = 802");
    ("SCION-like over D-BGP", [ "lib/protocols/scion_like.ml" ], "n/a");
    ("BGPSec-like over D-BGP", [ "lib/protocols/bgpsec_like.ml" ], "n/a");
    ("MIRO over D-BGP", [ "lib/protocols/miro.ml" ], "n/a");
    ("EQ-BGP over D-BGP", [ "lib/protocols/eqbgp.ml" ], "n/a");
    ("Beagle (D-BGP core: IA, filters, factory, speaker)",
     [ "lib/core/ia.ml"; "lib/core/codec.ml"; "lib/core/filters.ml";
       "lib/core/factory.ml"; "lib/core/speaker.ml"; "lib/core/ia_db.ml";
       "lib/core/decision_module.ml"; "lib/core/translation.ml" ],
     "769 (Quagga modifications)") ]

let report ?(root = ".") () =
  List.map
    (fun (component, files, paper_loc) ->
      let loc =
        List.fold_left
          (fun acc f -> acc + count_file (Filename.concat root f))
          0 files
      in
      { component; files; loc; paper_loc })
    components

let pp ppf entries =
  Format.fprintf ppf "@[<v>%-52s %8s  %s@," "component" "our LoC" "paper";
  List.iter
    (fun e ->
      Format.fprintf ppf "%-52s %8d  %s@," e.component e.loc e.paper_loc)
    entries;
  Format.fprintf ppf "@]"
