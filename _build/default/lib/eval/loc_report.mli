(** The Section 6.1 effort claim: deploying new protocols over D-BGP
    takes only a few hundred lines of per-protocol code.

    The paper reports 109 (Wiser basic) + 255 (across-gulf support),
    509 (Pathlet basic) + 293 (gulf), and 769 lines for Beagle itself.
    This module counts the corresponding implementation lines in this
    repository (non-blank, non-comment-only lines of the protocol
    modules) so the claim can be checked against our codebase. *)

type entry = {
  component : string;
  files : string list;   (** repository-relative paths *)
  loc : int;             (** 0 if the sources are not on disk *)
  paper_loc : string;    (** what the paper reported *)
}

val count_file : string -> int
(** Non-blank, non-comment-only lines of one file; 0 if unreadable. *)

val report : ?root:string -> unit -> entry list
(** [root] defaults to the current directory; pass the repository root
    when running from elsewhere. *)

val pp : Format.formatter -> entry list -> unit
