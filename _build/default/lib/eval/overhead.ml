type params = {
  prefixes : int;
  prefixes_dbgp : int;
  avg_path_len : int;
  critical_fixes : int;
  cf_per_path : int;
  ci_per_cf : int;
  cf_unique_frac : float;
  custom_replacements : int;
  cr_per_path : int;
  ci_per_cr : int;
}

let kib = 1024

let lo =
  { prefixes = 600_000;
    prefixes_dbgp = 625_000;
    avg_path_len = 3;
    critical_fixes = 10;
    cf_per_path = 3;
    ci_per_cf = 4 * kib;
    cf_unique_frac = 0.1;
    custom_replacements = 10;
    cr_per_path = 3;
    ci_per_cr = 100 }

let hi =
  { prefixes = 1_000_000;
    prefixes_dbgp = 1_050_000;
    avg_path_len = 5;
    critical_fixes = 100;
    cf_per_path = 5;
    ci_per_cf = 256 * kib;
    cf_unique_frac = 0.3;
    custom_replacements = 1_000;
    cr_per_path = 5;
    ci_per_cr = 10 * kib }

let table2 =
  [ ("# of prefixes", "P", "600,000 - 1,000,000",
     "600K prefixes in tier-1 ASes' tables today; allow room for growth");
    ("# of prefixes in D-BGP's Internet", "Pd", "625,000 - 1,050,000",
     "Allow for more prefixes to allow for off-path discovery");
    ("Avg. BGP path length", "PL", "3 - 5",
     "Derived from analysis of routing tables");
    ("# of critical fixes", "CFs", "10 - 100",
     "Assume governing body will limit total number");
    ("Critical fixes / path", "CFs/path", "3 - 5",
     "Assume one critical fix (or BGP) per hop on path");
    ("Control info / critical fix", "CI/CF", "4 KB - 256 KB",
     "4 KB is max size for BGP; up to 256 KB for future protocols");
    ("Unique control info / critical fix", "CFu", "0.1 - 0.3",
     "Most critical fixes share majority of control info w/each other");
    ("# of custom or replacements", "CRs", "10 - 1,000",
     "Many possible because large fraction need not be regulated");
    ("Custom or replacements / path", "CR/path", "3 - 5",
     "Assume one custom/replacement per hop on path");
    ("Ctrl info / custom or replacement", "CI/CR", "100 B - 10 KB",
     "Not much info needs to be disseminated outside islands") ]

type row = {
  name : string;
  ia_cf_bytes : int;
  ia_cr_bytes : int;
  advertisements : int;
  total_bytes : float;
}

let mk name cf cr advertisements =
  { name;
    ia_cf_bytes = cf;
    ia_cr_bytes = cr;
    advertisements;
    total_bytes = float_of_int advertisements *. float_of_int (cf + cr) }

let basic p =
  mk "Basic"
    (p.critical_fixes * p.ci_per_cf)
    (p.custom_replacements * p.ci_per_cr)
    p.prefixes_dbgp

let plus_path_lengths p =
  mk "+ Avg. path lengths"
    (p.cf_per_path * p.ci_per_cf)
    (p.cr_per_path * p.ci_per_cr)
    p.prefixes_dbgp

let plus_sharing p =
  (* Each of the CFs/path fixes contributes only its unique fraction; the
     shared majority is carried once. *)
  let cf =
    int_of_float
      ( (float_of_int p.cf_per_path
        *. float_of_int p.ci_per_cf *. p.cf_unique_frac)
      +. (float_of_int p.ci_per_cf *. (1. -. p.cf_unique_frac)) )
  in
  mk "+ Sharing" cf (p.cr_per_path * p.ci_per_cr) p.prefixes_dbgp

let single_protocol p = mk "Single protocol" p.ci_per_cf 0 p.prefixes

let table3 p = [ basic p; plus_path_lengths p; plus_sharing p; single_protocol p ]

let overhead_ratio p =
  (plus_sharing p).total_bytes /. (single_protocol p).total_bytes

let pp_bytes ppf b =
  let gib = 1024. *. 1024. *. 1024. in
  let mib = 1024. *. 1024. in
  if b >= gib then Format.fprintf ppf "%.1f GB" (b /. gib)
  else if b >= mib then Format.fprintf ppf "%.2f MB" (b /. mib)
  else if b >= 1024. then Format.fprintf ppf "%.1f KB" (b /. 1024.)
  else Format.fprintf ppf "%.0f B" b
