(** The control-plane overhead model of Section 6.2 (Tables 2 and 3).

    Estimates the size and number of IAs received at a tier-1 AS in an
    Internet running multiple inter-domain routing protocols over D-BGP,
    refined in three steps: {e Basic} (every IA carries every protocol),
    {e + Avg path lengths} (an IA only carries the protocols on its
    path), and {e + Sharing} (critical fixes share most control
    information with BGP).  The {e Single protocol} row is today's
    BGP-like baseline for comparison. *)

(** Table 2: parameters and the ranges considered. *)
type params = {
  prefixes : int;            (** P: prefixes in today's Internet *)
  prefixes_dbgp : int;       (** Pd: prefixes in D-BGP's Internet *)
  avg_path_len : int;        (** PL *)
  critical_fixes : int;      (** CFs *)
  cf_per_path : int;         (** CFs/path *)
  ci_per_cf : int;           (** CI/CF, bytes *)
  cf_unique_frac : float;    (** CFu: fraction of a fix's info that is unique *)
  custom_replacements : int; (** CRs *)
  cr_per_path : int;         (** CRs/path *)
  ci_per_cr : int;           (** CI/CR, bytes *)
}

val lo : params
(** The minimum of every Table 2 range. *)

val hi : params
(** The maximum of every Table 2 range. *)

val table2 : (string * string * string * string) list
(** Rows (parameter, variable, range, rationale) exactly as in Table 2. *)

(** One row of Table 3 evaluated at a parameter point. *)
type row = {
  name : string;
  ia_cf_bytes : int;      (** contribution to IA size by critical fixes *)
  ia_cr_bytes : int;      (** contribution by custom/replacement protocols *)
  advertisements : int;   (** number of IAs received *)
  total_bytes : float;    (** aggregate overhead *)
}

val basic : params -> row
val plus_path_lengths : params -> row
val plus_sharing : params -> row
val single_protocol : params -> row

val table3 : params -> row list
(** The four rows in Table 3 order. *)

val overhead_ratio : params -> float
(** (+ Sharing total) / (Single protocol total) — the paper's headline
    1.3x (min) to 2.5x (max). *)

val pp_bytes : Format.formatter -> float -> unit
(** Humanized (KB / MB / GB, binary units as the paper uses). *)
