open Dbgp_types
module Speaker = Dbgp_core.Speaker
module Ia = Dbgp_core.Ia
module Network = Dbgp_netsim.Network
module P = Dbgp_bgp.Policy
module Wiser = Dbgp_protocols.Wiser
module Pathlet = Dbgp_protocols.Pathlet
module Scion = Dbgp_protocols.Scion_like
module Miro = Dbgp_protocols.Miro

type checks = {
  wiser_cost : int option;
  wiser_portal_11 : bool;
  miro_portal_11 : bool;
  pathlets_d : int;
  pathlets_g : int;
  scion_paths_f : int;
  islands_on_path : string list;
  protocols_in_ia : string list;
}

let prefix = Prefix.of_string "131.4.0.0/24"

let empty_checks =
  { wiser_cost = None;
    wiser_portal_11 = false;
    miro_portal_11 = false;
    pathlets_d = 0;
    pathlets_g = 0;
    scion_paths_f = 0;
    islands_on_path = [];
    protocols_in_ia = [] }

let run () =
  let net = Network.create () in
  let isl_d = Island_id.named "D"
  and isl_f = Island_id.named "F"
  and isl_11 = Island_id.singleton (Asn.of_int 11)
  and isl_g = Island_id.named "G" in
  let add ?island ?passthrough n = Harness.add_as net ?island ?passthrough n in
  let d = add ~island:isl_d 20 in
  let gulf14 = add 14 in
  let f = add ~island:isl_f 13 in
  let eleven = add ~island:isl_11 11 in
  let g = add ~island:isl_g 12 in
  let eight = add 8 in
  ignore gulf14;
  (* Island D's pathlets (Figure 7: three composable fragments reaching
     the destination). *)
  let deliver = Pathlet.Deliver prefix in
  let d_pathlets =
    [ Pathlet.make ~fid:1 [ Pathlet.Router "dr1"; Pathlet.Router "dr2" ];
      Pathlet.make ~fid:5 [ Pathlet.Router "dr2"; Pathlet.Router "dr4" ];
      Pathlet.make ~fid:9 [ Pathlet.Router "dr4"; deliver ] ]
  in
  Speaker.add_module d
    (Pathlet.decision_module ~island:isl_d ~exported:(fun () -> d_pathlets));
  Speaker.set_active d prefix Pathlet.protocol;
  (* Island F: SCION with two within-island paths. *)
  let f_paths = [ [ "fr1"; "fr9"; "fr11"; "fr7" ]; [ "fr1"; "fr2"; "fr3"; "fr7" ] ] in
  Speaker.add_module f
    (Scion.decision_module ~island:isl_f ~exported:(fun () -> f_paths));
  Speaker.set_active f prefix Scion.protocol;
  (* Island 11: Wiser (cost 75) in parallel with a MIRO service. *)
  let wiser =
    Wiser.create
      { Wiser.my_island = isl_11;
        internal_cost = 75;
        portal = Ipv4.of_string "172.16.11.1";
        io = Dbgp_protocols.Portal_io.null }
  in
  Speaker.add_module eleven (Wiser.decision_module wiser);
  Speaker.set_active eleven prefix Wiser.protocol;
  let miro =
    Miro.create
      { Miro.my_island = isl_11;
        portal = Ipv4.of_string "172.16.11.2";
        offers =
          [ { Miro.dest = prefix;
              via = "premium";
              price = 42;
              tunnel_endpoint = Ipv4.of_string "172.16.11.3" } ] }
  in
  (* MIRO is coordinated out-of-band; its descriptors ride along via an
     export filter on island 11's session toward island G. *)
  let miro_filter ia = Some (Miro.advertise miro ia) in
  (* Island G: pathlets of its own, including the inter-island pathlet
     toward island D (Figure 7's (gr10, dr1)). *)
  let g_pathlets =
    [ Pathlet.make ~fid:1 [ Pathlet.Router "gr1"; Pathlet.Router "gr4" ];
      Pathlet.make ~fid:3 [ Pathlet.Router "gr4"; Pathlet.Router "gr10" ];
      Pathlet.make ~fid:6 [ Pathlet.Router "gr1"; Pathlet.Router "gr3" ];
      Pathlet.make ~fid:7 [ Pathlet.Router "gr3"; Pathlet.Router "gr10" ];
      Pathlet.make ~fid:8 [ Pathlet.Router "gr10"; Pathlet.Router "dr1" ] ]
  in
  Speaker.add_module g
    (Pathlet.decision_module ~island:isl_g ~exported:(fun () -> g_pathlets));
  Speaker.set_active g prefix Pathlet.protocol;
  (* Advertisement chain: D -> 14 -> F -> 11 -> G -> 8. *)
  let cust a b = Harness.cust net a b in
  cust 20 14;
  cust 14 13;
  cust 13 11;
  Network.link net ~a:(Asn.of_int 11) ~b:(Asn.of_int 12) ~b_is:P.To_provider
    ~a_export:miro_filter ();
  cust 12 8;
  (* The origin island attaches its own pathlets when creating the IA
     (contribution happens at re-advertisement, origination is direct). *)
  Network.originate net (Asn.of_int 20)
    (Pathlet.attach ~island:isl_d d_pathlets
       (Ia.originate ~prefix ~origin_asn:(Asn.of_int 20)
          ~next_hop:(Network.speaker_addr (Asn.of_int 20))
          ()));
  ignore (Network.run net);
  match Speaker.best eight prefix with
  | None -> (None, empty_checks)
  | Some chosen ->
    let ia = chosen.Speaker.candidate.Dbgp_core.Decision_module.ia in
    let pathlets_of isl =
      match List.assoc_opt isl (Pathlet.extract ia) with
      | Some ps -> List.length ps
      | None -> 0
    in
    let checks =
      { wiser_cost = Wiser.cost_of ia;
        wiser_portal_11 =
          Option.is_some
            (Ia.find_island_descriptor ~island:isl_11 ~proto:Wiser.protocol
               ~field:Wiser.field_portal ia);
        miro_portal_11 =
          List.exists
            (fun d -> Island_id.equal d.Miro.island isl_11)
            (Miro.discover ia);
        pathlets_d = pathlets_of isl_d;
        pathlets_g = pathlets_of isl_g;
        scion_paths_f = List.length (Scion.extract ~island:isl_f ia);
        islands_on_path = List.map Island_id.to_string (Ia.islands_on_path ia);
        protocols_in_ia =
          List.map Protocol_id.name
            (Protocol_id.Set.elements (Ia.protocols ia)) }
    in
    (Some ia, checks)

let expected_ok c =
  Option.is_some c.wiser_cost && c.wiser_portal_11 && c.miro_portal_11
  && c.pathlets_d >= 3 && c.pathlets_g >= 5 && c.scion_paths_f >= 2
