(** The rich, evolvable Internet of Figures 6 and 7.

    A chain of heterogeneous islands serves prefix 131.4.0.0/24 from a
    Pathlet-Routing island D through a BGP gulf (AS 14), a SCION island
    (F), a Wiser-//-MIRO island (11), and a second Pathlet island (G) to
    a plain AS 8.  Figure 7 is the IA disseminated by island G to island
    8 — this module rebuilds the topology on the simulator and checks
    that every piece of Figure 7 survives the trip. *)

type checks = {
  wiser_cost : int option;     (** island 11's contribution (Fig 7: 75) *)
  wiser_portal_11 : bool;      (** cost-exchange portal descriptor *)
  miro_portal_11 : bool;       (** MIRO service portal descriptor *)
  pathlets_d : int;            (** island D's pathlets carried *)
  pathlets_g : int;            (** island G's pathlets carried *)
  scion_paths_f : int;         (** island F's within-island paths *)
  islands_on_path : string list;
  protocols_in_ia : string list;
}

val run : unit -> Dbgp_core.Ia.t option * checks
(** The IA received by AS 8 and the extracted checks.  [None] IA (and
    all-empty checks) only if the route failed to propagate. *)

val expected_ok : checks -> bool
(** All Figure-7 content present: cost, both portals, pathlets from both
    pathlet islands, at least two SCION paths. *)
