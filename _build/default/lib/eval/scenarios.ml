open Dbgp_types
module Speaker = Dbgp_core.Speaker
module Ia = Dbgp_core.Ia
module Value = Dbgp_core.Value
module Network = Dbgp_netsim.Network
module Lookup = Dbgp_netsim.Lookup_service
module P = Dbgp_bgp.Policy
module Wiser = Dbgp_protocols.Wiser
module Pathlet = Dbgp_protocols.Pathlet
module Scion = Dbgp_protocols.Scion_like
module Miro = Dbgp_protocols.Miro
module Portal_io = Dbgp_protocols.Portal_io

let io_of = Harness.io_of
let add_as = Harness.add_as
let cust = Harness.cust

(* ------------------------------------------------------------------ *)
(* Figure 1 / Section 3.4: Wiser across a gulf                         *)
(* ------------------------------------------------------------------ *)

type wiser_result = {
  cost_seen : int option;
  chose_low_cost : bool;
  portal_seen : bool;
  cost_seen_bgp : int option;
  chose_low_cost_bgp : bool;
}

let wiser_prefix = Prefix.of_string "128.6.0.0/24"

(* D=1, E1=2 (cost 100), E2=3 (cost 10) form island W; G1=4, G2=5, G3=6
   are the gulf; S=10 is the upgraded source island.  The short path runs
   via E1/G1, the long cheap one via E2/G2/G3. *)
let run_wiser ~passthrough_gulf =
  let net = Network.create () in
  let island_w = Island_id.named "W" and island_b = Island_id.named "B" in
  let io = io_of net in
  let portal_w = Ipv4.of_string "172.16.0.1"
  and portal_b = Ipv4.of_string "172.16.0.2" in
  let wiser_at island portal cost =
    Wiser.create { Wiser.my_island = island; internal_cost = cost; portal; io }
  in
  let d = add_as net ~island:island_w 1 in
  let e1 = add_as net ~island:island_w 2 in
  let e2 = add_as net ~island:island_w 3 in
  let _g1 = add_as net ~passthrough:passthrough_gulf 4 in
  let _g2 = add_as net ~passthrough:passthrough_gulf 5 in
  let _g3 = add_as net ~passthrough:passthrough_gulf 6 in
  let s = add_as net ~island:island_b 10 in
  let instances =
    [ (d, wiser_at island_w portal_w 0);
      (e1, wiser_at island_w portal_w 100);
      (e2, wiser_at island_w portal_w 10);
      (s, wiser_at island_b portal_b 1) ]
  in
  List.iter
    (fun (sp, w) ->
      Speaker.add_module sp (Wiser.decision_module w);
      Speaker.set_active sp wiser_prefix Wiser.protocol)
    instances;
  cust net 1 2;
  cust net 1 3;
  cust net 2 4;
  cust net 4 10;
  cust net 3 5;
  cust net 5 6;
  cust net 6 10;
  Network.originate net (Asn.of_int 1)
    (Ia.originate ~prefix:wiser_prefix ~origin_asn:(Asn.of_int 1)
       ~next_hop:(Network.speaker_addr (Asn.of_int 1))
       ());
  ignore (Network.run net);
  match Speaker.best s wiser_prefix with
  | None -> (None, false, false)
  | Some chosen ->
    let ia = chosen.Speaker.candidate.Dbgp_core.Decision_module.ia in
    let via_e2 = List.mem (Asn.of_int 3) (Ia.asns_on_path ia) in
    let portal = Wiser.upstream_portal ~my_island:island_b ia in
    (Wiser.cost_of ia, via_e2, Option.is_some portal)

let wiser_across_gulf () =
  let cost_seen, chose_low_cost, portal_seen = run_wiser ~passthrough_gulf:true in
  let cost_seen_bgp, chose_low_cost_bgp, _ = run_wiser ~passthrough_gulf:false in
  { cost_seen; chose_low_cost; portal_seen; cost_seen_bgp; chose_low_cost_bgp }

(* ------------------------------------------------------------------ *)
(* Figure 8, Pathlet arm                                                *)
(* ------------------------------------------------------------------ *)

type pathlet_result = {
  expected : int;
  seen : int;
  seen_bgp : int;
  end_to_end : int;
}

let pathlet_prefix = Prefix.of_string "131.1.0.0/24"

(* Island A: A1=101 hosts the destination, borders A2=102 and A3=103.
   Gulf: G1=201, G2=202.  Island B: border B1=301, source S=302.

   One-hop pathlets inside island A (over routers named "ar..."):
     p1: ar2 -> arm        p2: arm -> deliver
     p3: ar2 -> ar1        p4: ar1 -> deliver
     p5: ar3 -> arx        p6: arx -> deliver
   A2 composes p1 o p2 into the two-hop pathlet P10 and advertises
   {P10, p3, p4}; A3 advertises {p5, p6}.  All five must reach S. *)
let run_pathlet ~passthrough_gulf =
  let net = Network.create () in
  let island_a = Island_id.named "A" and island_b = Island_id.named "B" in
  let deliver = Pathlet.Deliver pathlet_prefix in
  let p1 = Pathlet.make ~fid:1 [ Pathlet.Router "ar2"; Pathlet.Router "arm" ] in
  let p2 = Pathlet.make ~fid:2 [ Pathlet.Router "arm"; deliver ] in
  let p3 = Pathlet.make ~fid:3 [ Pathlet.Router "ar2"; Pathlet.Router "ar1" ] in
  let p4 = Pathlet.make ~fid:4 [ Pathlet.Router "ar1"; deliver ] in
  let p5 = Pathlet.make ~fid:5 [ Pathlet.Router "ar3"; Pathlet.Router "arx" ] in
  let p6 = Pathlet.make ~fid:6 [ Pathlet.Router "arx"; deliver ] in
  let p10 = Pathlet.compose ~fid:10 p1 p2 in
  let a1 = add_as net ~island:island_a 101 in
  let a2 = add_as net ~island:island_a 102 in
  let a3 = add_as net ~island:island_a 103 in
  let _g1 = add_as net ~passthrough:passthrough_gulf 201 in
  let _g2 = add_as net ~passthrough:passthrough_gulf 202 in
  let b1 = add_as net ~island:island_b 301 in
  let s = add_as net ~island:island_b 302 in
  let attach sp exported =
    Speaker.add_module sp
      (Pathlet.decision_module ~island:island_a ~exported:(fun () -> exported));
    Speaker.set_active sp pathlet_prefix Pathlet.protocol
  in
  attach a1 [];
  attach a2 [ p10; p3; p4 ];
  attach a3 [ p5; p6 ];
  (* Island B's border and source run Pathlet Routing too; they export
     nothing of their own for this prefix. *)
  List.iter
    (fun sp ->
      Speaker.add_module sp
        (Pathlet.decision_module ~island:island_b ~exported:(fun () -> []));
      Speaker.set_active sp pathlet_prefix Pathlet.protocol)
    [ b1; s ];
  cust net 101 102;
  cust net 101 103;
  cust net 102 201;
  cust net 201 301;
  cust net 103 202;
  cust net 202 301;
  cust net 301 302;
  Network.originate net (Asn.of_int 101)
    (Ia.originate ~prefix:pathlet_prefix ~origin_asn:(Asn.of_int 101)
       ~next_hop:(Network.speaker_addr (Asn.of_int 101))
       ());
  ignore (Network.run net);
  (* B1 is island B's border: its ingress translation module ingests
     pathlets from every IA it received, and island-internal
     dissemination carries them to S (modeled as a shared store). *)
  let translation =
    Pathlet.translation ~island:island_b ~origin_asn:(Asn.of_int 301)
      ~next_hop:(Network.speaker_addr (Asn.of_int 301))
  in
  let store = Pathlet.Store.create () in
  List.iter
    (fun (_, ia) ->
      match translation.Dbgp_core.Translation.ingress ia with
      | Some pathlets -> List.iter (Pathlet.Store.add store) pathlets
      | None -> ())
    (Speaker.candidates_for b1 pathlet_prefix);
  let seen = Pathlet.Store.size store in
  let end_to_end =
    List.length (Pathlet.Store.routes_to store ~from:"ar2" ~dest:pathlet_prefix)
  in
  (seen, end_to_end)

let pathlet_across_gulf () =
  let seen, end_to_end = run_pathlet ~passthrough_gulf:true in
  let seen_bgp, _ = run_pathlet ~passthrough_gulf:false in
  { expected = 5; seen; seen_bgp; end_to_end }

(* ------------------------------------------------------------------ *)
(* Figure 2: MIRO off-path discovery                                    *)
(* ------------------------------------------------------------------ *)

type miro_result = {
  discovered : bool;
  discovered_bgp : bool;
  negotiated : (string * Ipv4.t) option;
  tunnel_works : bool;
}

let miro_service_prefix = Prefix.of_string "173.82.2.0/24"

(* D=1 -> X=2 -> T=3 is the default path; M=4 hangs off X and sells
   alternate paths.  T must discover M's service although M is not on
   T's path to D. *)
let run_miro ~passthrough_gulf =
  let net = Network.create () in
  let island_m = Island_id.named "M" in
  let io = io_of net in
  let portal = Ipv4.of_string "172.16.1.1" in
  let tunnel_endpoint = Ipv4.of_string "173.82.2.1" in
  let miro =
    Miro.create
      { Miro.my_island = island_m;
        portal;
        offers =
          [ { Miro.dest = Prefix.of_string "131.9.0.0/24";
              via = "alt-1";
              price = 10;
              tunnel_endpoint } ] }
  in
  Lookup.register_handler (Network.lookup net) ~portal ~service:Miro.service
    (Miro.serve miro);
  let _d = add_as net 1 in
  let _x = add_as net ~passthrough:passthrough_gulf 2 in
  let t = add_as net 3 in
  let _m = add_as net ~island:island_m 4 in
  cust net 1 2;
  cust net 2 3;
  cust net 4 2;
  (* M originates its service prefix with the MIRO island descriptor. *)
  Network.originate net (Asn.of_int 4)
    (Miro.advertise miro
       (Ia.originate ~prefix:miro_service_prefix ~origin_asn:(Asn.of_int 4)
          ~next_hop:(Network.speaker_addr (Asn.of_int 4))
          ()));
  Network.originate net (Asn.of_int 1)
    (Ia.originate ~prefix:(Prefix.of_string "131.9.0.0/24")
       ~origin_asn:(Asn.of_int 1)
       ~next_hop:(Network.speaker_addr (Asn.of_int 1))
       ());
  ignore (Network.run net);
  match Speaker.best t miro_service_prefix with
  | None -> (false, None)
  | Some chosen ->
    let ia = chosen.Speaker.candidate.Dbgp_core.Decision_module.ia in
    ( match Miro.discover ia with
      | [] -> (false, None)
      | svc :: _ ->
        let deal =
          Miro.negotiate ~io ~portal:svc.Miro.portal_addr
            ~dest:(Prefix.of_string "131.9.0.0/24") ~budget:50
        in
        (true, deal) )

let miro_discovery () =
  let discovered, negotiated = run_miro ~passthrough_gulf:true in
  let discovered_bgp, _ = run_miro ~passthrough_gulf:false in
  let tunnel_works =
    match negotiated with
    | None -> false
    | Some (_, endpoint) ->
      (* Data plane: T tunnels toward the endpoint; M terminates it. *)
      let open Dbgp_dataplane in
      let engine = Engine.create () in
      let fwd asn = Forwarder.create ~me:(Asn.of_int asn) () in
      let ft = fwd 3 and fx = fwd 2 and fm = fwd 4 in
      Forwarder.set_ip_route ft miro_service_prefix
        (Forwarder.To_as (Asn.of_int 2));
      Forwarder.set_ip_route fx miro_service_prefix
        (Forwarder.To_as (Asn.of_int 4));
      Forwarder.add_local_addr fm endpoint;
      (* Inside M the decapsulated traffic enters the purchased alternate
         path; its continuation is M's business, modeled as local handoff. *)
      Forwarder.set_ip_route fm (Prefix.of_string "131.9.0.0/24")
        Forwarder.Local;
      List.iter (Engine.add engine) [ ft; fx; fm ];
      let pkt =
        Packet.make
          ~headers:
            [ Header.Tunnel_hdr { endpoint };
              Header.Ipv4_hdr
                { src = Network.speaker_addr (Asn.of_int 3);
                  dst = Prefix.network (Prefix.of_string "131.9.0.0/24") } ]
          ~payload:"hello" ()
      in
      ( match Engine.route engine ~from:(Asn.of_int 3) pkt with
        | Engine.Delivered { at; _ } -> Asn.equal at (Asn.of_int 4)
        | Engine.Dropped _ -> false )
  in
  { discovered; discovered_bgp; negotiated; tunnel_works }

(* ------------------------------------------------------------------ *)
(* Figure 3: SCION multipath across a gulf                              *)
(* ------------------------------------------------------------------ *)

type scion_result = {
  paths_seen : int;
  paths_seen_bgp : int;
  forwarded_on_extra : bool;
}

let scion_prefix = Prefix.of_string "131.5.0.0/24"

(* Island A (A1=1 origin, A2=2 border) exposes two within-island paths;
   G=3 is the gulf; island B (B1=4 border, S=5).  Path 1 = [arin; ard]
   is the redistributed one; path 2 = [arin; armid; ard] is the extra
   one BGP loses. *)
let scion_paths = [ [ "arin"; "ard" ]; [ "arin"; "armid"; "ard" ] ]

let run_scion ~passthrough_gulf =
  let net = Network.create () in
  let island_a = Island_id.named "A" and island_b = Island_id.named "B" in
  let a1 = add_as net ~island:island_a 1 in
  let a2 = add_as net ~island:island_a 2 in
  let _g = add_as net ~passthrough:passthrough_gulf 3 in
  let b1 = add_as net ~island:island_b 4 in
  let s = add_as net ~island:island_b 5 in
  let attach sp island paths =
    Speaker.add_module sp
      (Scion.decision_module ~island ~exported:(fun () -> paths));
    Speaker.set_active sp scion_prefix Scion.protocol
  in
  attach a1 island_a [];
  attach a2 island_a scion_paths;
  attach b1 island_b [];
  attach s island_b [];
  cust net 1 2;
  cust net 2 3;
  cust net 3 4;
  cust net 4 5;
  Network.originate net (Asn.of_int 1)
    (Ia.originate ~prefix:scion_prefix ~origin_asn:(Asn.of_int 1)
       ~next_hop:(Network.speaker_addr (Asn.of_int 1))
       ());
  ignore (Network.run net);
  match Speaker.best s scion_prefix with
  | None -> 0
  | Some chosen ->
    List.length
      (Scion.extract ~island:island_a
         chosen.Speaker.candidate.Dbgp_core.Decision_module.ia)

let scion_multipath () =
  let paths_seen = run_scion ~passthrough_gulf:true in
  let paths_seen_bgp = run_scion ~passthrough_gulf:false in
  let forwarded_on_extra =
    (* Drive the extra (three-hop) path through the data plane. *)
    let open Dbgp_dataplane in
    let engine = Engine.create () in
    let fwd asn = Forwarder.create ~me:(Asn.of_int asn) () in
    let fa1 = fwd 1 and fa2 = fwd 2 and fg = fwd 3 and fb1 = fwd 4 and fs = fwd 5 in
    (* IPv4 route toward island A's ingress address for gulf crossing. *)
    let ingress_addr = Network.speaker_addr (Asn.of_int 2) in
    Forwarder.set_ip_route fs scion_prefix (Forwarder.To_as (Asn.of_int 4));
    Forwarder.set_ip_route fb1 scion_prefix (Forwarder.To_as (Asn.of_int 3));
    Forwarder.set_ip_route fg scion_prefix (Forwarder.To_as (Asn.of_int 2));
    Forwarder.set_ip_route fs (Prefix.make ingress_addr 32)
      (Forwarder.To_as (Asn.of_int 4));
    Forwarder.set_ip_route fb1 (Prefix.make ingress_addr 32)
      (Forwarder.To_as (Asn.of_int 3));
    Forwarder.set_ip_route fg (Prefix.make ingress_addr 32)
      (Forwarder.To_as (Asn.of_int 2));
    Forwarder.add_local_addr fa2 ingress_addr;
    Forwarder.claim_router fa2 ~router:"arin";
    Forwarder.set_router_port fa2 ~router:"armid" (Forwarder.To_as (Asn.of_int 1));
    Forwarder.claim_router fa1 ~router:"armid";
    Forwarder.claim_router fa1 ~router:"ard";
    Forwarder.set_ip_route fa1 scion_prefix Forwarder.Local;
    List.iter (Engine.add engine) [ fa1; fa2; fg; fb1; fs ];
    let pkt =
      Packet.make
        ~headers:
          [ Header.Tunnel_hdr { endpoint = ingress_addr };
            Header.Scion_hdr { path = [ "arin"; "armid"; "ard" ]; pos = 0 };
            Header.Ipv4_hdr
              { src = Network.speaker_addr (Asn.of_int 5);
                dst = Prefix.network scion_prefix } ]
        ~payload:"data" ()
    in
    match Engine.route engine ~from:(Asn.of_int 5) pkt with
    | Engine.Delivered { at; path } ->
      Asn.equal at (Asn.of_int 1)
      && List.exists (Asn.equal (Asn.of_int 2)) path
    | Engine.Dropped _ -> false
  in
  { paths_seen; paths_seen_bgp; forwarded_on_extra }
