(** End-to-end deployment scenarios on the network simulator.

    Each function builds a concrete topology with real D-BGP speakers,
    runs it to convergence under both baselines (pass-through on = D-BGP,
    off = plain BGP), and reports what the interested AS could observe —
    the observables of the paper's motivating examples (Figures 1-3) and
    its MiniNeXT deployment experiments (Figure 8, Section 6.1). *)

(** Figure 1 / Section 3.4: Wiser across a gulf.  An island containing
    the destination has a cheap long egress (cost 10) and an expensive
    short one (cost 100); S supports Wiser on the far side of a BGP
    gulf. *)
type wiser_result = {
  cost_seen : int option;        (** Wiser cost visible at S with D-BGP *)
  chose_low_cost : bool;         (** S picked the longer, cheaper path *)
  portal_seen : bool;            (** the cost-exchange portal descriptor
                                     survived the gulf *)
  cost_seen_bgp : int option;    (** ... with plain BGP ([None] expected) *)
  chose_low_cost_bgp : bool;     (** BGP picks the short expensive path *)
}

val wiser_across_gulf : unit -> wiser_result

(** Figure 8, Pathlet arm: island A disseminates one-hop pathlets
    internally; border A2 composes a two-hop pathlet and advertises it
    plus its remaining one-hop pathlets across the gulf; border A3
    advertises its own.  S (in island B) must see all of them. *)
type pathlet_result = {
  expected : int;                (** pathlets that should reach S (5) *)
  seen : int;                    (** pathlets S saw with D-BGP *)
  seen_bgp : int;                (** with plain BGP (0 expected) *)
  end_to_end : int;              (** composable S->D routes from them *)
}

val pathlet_across_gulf : unit -> pathlet_result

(** Figure 2: off-path discovery of a MIRO island's service. *)
type miro_result = {
  discovered : bool;
  discovered_bgp : bool;
  negotiated : (string * Dbgp_types.Ipv4.t) option;
      (** path id and tunnel endpoint obtained from the portal *)
  tunnel_works : bool;
      (** data plane: traffic tunneled to the endpoint is delivered *)
}

val miro_discovery : unit -> miro_result

(** Figure 3: a SCION island exposes two within-island paths; only one
    survives redistribution into BGP, but the island descriptor carries
    both across the gulf. *)
type scion_result = {
  paths_seen : int;      (** within-island paths S sees with D-BGP (2) *)
  paths_seen_bgp : int;  (** with plain BGP (0: descriptor stripped) *)
  forwarded_on_extra : bool;
      (** data plane: S can actually use the non-redistributed path *)
}

val scion_multipath : unit -> scion_result
