open Dbgp_types

type scenario = Critical_fix | Custom_protocol | Replacement_protocol

type data_plane_need = Tunnels | Custom_headers | Multi_network_proto_headers

type entry = {
  name : string;
  protocol : Protocol_id.t;
  scenario : scenario;
  summary : string;
  control_info : string list;
  data_plane : data_plane_need list;
  implemented_by : string option;
}

let entries =
  [ { name = "BGPSec";
      protocol = Protocol_id.bgpsec;
      scenario = Critical_fix;
      summary = "Prevents path hijacking";
      control_info = [ "Path attestations" ];
      data_plane = [];
      implemented_by = Some "Dbgp_protocols.Bgpsec_like" };
    { name = "EQ-BGP";
      protocol = Protocol_id.eq_bgp;
      scenario = Critical_fix;
      summary = "Adds end-to-end QoS";
      control_info = [ "QoS metrics" ];
      data_plane = [];
      implemented_by = Some "Dbgp_protocols.Eqbgp" };
    { name = "Xiao et al.";
      protocol = Protocol_id.register ~kind:Protocol_id.Critical_fix "xiao-qos";
      scenario = Critical_fix;
      summary = "Adds end-to-end QoS";
      control_info = [ "QoS metrics" ];
      data_plane = [];
      implemented_by = Some "Dbgp_protocols.Eqbgp (same descriptor shape)" };
    { name = "LISP";
      protocol = Protocol_id.lisp;
      scenario = Critical_fix;
      summary = "Supports mobility";
      control_info = [ "Dest. ingress IDs" ];
      data_plane = [];
      implemented_by = Some "Dbgp_protocols.Lisp_like" };
    { name = "R-BGP";
      protocol = Protocol_id.r_bgp;
      scenario = Critical_fix;
      summary = "Enables quick failover";
      control_info = [ "Extra backup paths" ];
      data_plane = [];
      implemented_by = Some "Dbgp_protocols.Rbgp" };
    { name = "Wiser";
      protocol = Protocol_id.wiser;
      scenario = Critical_fix;
      summary = "Limits ingress traffic";
      control_info = [ "Path costs" ];
      data_plane = [];
      implemented_by = Some "Dbgp_protocols.Wiser" };
    { name = "MIRO";
      protocol = Protocol_id.miro;
      scenario = Custom_protocol;
      summary = "Exposes alt. paths";
      control_info = [ "Service's existence" ];
      data_plane = [ Tunnels ];
      implemented_by = Some "Dbgp_protocols.Miro" };
    { name = "Arrow";
      protocol = Protocol_id.arrow;
      scenario = Custom_protocol;
      summary = "Exposes alt. paths + intra-island QoS";
      control_info = [ "Service's existence" ];
      data_plane = [ Tunnels ];
      implemented_by = Some "Dbgp_protocols.Arrow" };
    { name = "RON";
      protocol = Protocol_id.ron;
      scenario = Custom_protocol;
      summary = "Creates low-latency paths";
      control_info = [ "Service's existence" ];
      data_plane = [ Tunnels ];
      implemented_by = Some "Dbgp_protocols.Ron" };
    { name = "NIRA";
      protocol = Protocol_id.nira;
      scenario = Replacement_protocol;
      summary = "Path-based routing";
      control_info = [ "Multiple paths" ];
      data_plane = [ Custom_headers; Multi_network_proto_headers ];
      implemented_by = None };
    { name = "SCION";
      protocol = Protocol_id.scion;
      scenario = Replacement_protocol;
      summary = "Path-based routing";
      control_info = [ "Multiple paths" ];
      data_plane = [ Custom_headers; Multi_network_proto_headers ];
      implemented_by = Some "Dbgp_protocols.Scion_like" };
    { name = "Pathlets";
      protocol = Protocol_id.pathlet;
      scenario = Replacement_protocol;
      summary = "Multi-hop routing";
      control_info = [ "Pathlets" ];
      data_plane = [ Custom_headers; Multi_network_proto_headers ];
      implemented_by = Some "Dbgp_protocols.Pathlet" };
    { name = "YAMR";
      protocol = Protocol_id.yamr;
      scenario = Replacement_protocol;
      summary = "Multi-hop routing";
      control_info = [ "Pathlets" ];
      data_plane = [ Custom_headers; Multi_network_proto_headers ];
      implemented_by = None };
    { name = "HLP";
      protocol = Protocol_id.hlp;
      scenario = Replacement_protocol;
      summary = "Hybrid PV/LS";
      control_info = [ "Path costs" ];
      data_plane = [];
      implemented_by = Some "Dbgp_protocols.Hlp_like (+ Dbgp_topology.Link_state)" } ]

let by_scenario s = List.filter (fun e -> e.scenario = s) entries

let scenario_name = function
  | Critical_fix -> "Baseline -> critical fix"
  | Custom_protocol -> "Baseline -> custom protocol"
  | Replacement_protocol -> "Baseline -> replacement protocol"

let consistent () =
  List.for_all
    (fun e ->
      match (e.scenario, Protocol_id.kind e.protocol) with
      | Critical_fix, Protocol_id.Critical_fix
      | Custom_protocol, Protocol_id.Custom
      | Replacement_protocol, Protocol_id.Replacement -> true
      | _ -> false)
    entries
