(** Table 1: the 14 analyzed protocols and their evolvability scenarios.

    Machine-checked rather than prose: every entry names the scenario it
    maps to, the extra control-plane information it must disseminate and
    the data-plane support it needs, and — where this reproduction
    implements the protocol — the module that realizes it. *)

type scenario =
  | Critical_fix          (** baseline -> baseline with critical fix *)
  | Custom_protocol       (** baseline -> baseline // custom protocol *)
  | Replacement_protocol  (** baseline -> replacement protocol *)

type data_plane_need =
  | Tunnels
  | Custom_headers
  | Multi_network_proto_headers

type entry = {
  name : string;
  protocol : Dbgp_types.Protocol_id.t;
  scenario : scenario;
  summary : string;
  control_info : string list;   (** the Table 1 star items *)
  data_plane : data_plane_need list;  (** the Table 1 diamond items *)
  implemented_by : string option;  (** module in this repository, if built *)
}

val entries : entry list
(** All 14, in Table 1 order. *)

val by_scenario : scenario -> entry list
val scenario_name : scenario -> string

val consistent : unit -> bool
(** Sanity: every entry's registered {!Dbgp_types.Protocol_id.kind}
    agrees with its scenario. *)
