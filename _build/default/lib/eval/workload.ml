open Dbgp_types
module Ia = Dbgp_core.Ia
module Value = Dbgp_core.Value

type spec = {
  advertisements : int;
  path_len_lo : int;
  path_len_hi : int;
  payload_bytes : int;
  n_extra_protocols : int;
  seed : int;
}

let spec ?(path_len_lo = 3) ?(path_len_hi = 5) ?(payload_bytes = 0)
    ?(n_extra_protocols = 3) ?(seed = 7) ~advertisements () =
  if advertisements < 0 then invalid_arg "Workload.spec: negative count";
  if path_len_lo < 1 || path_len_hi < path_len_lo then
    invalid_arg "Workload.spec: bad path length range";
  { advertisements; path_len_lo; path_len_hi; payload_bytes;
    n_extra_protocols; seed }

let nth_prefix i =
  (* Spread prefixes across 24-bit networks deterministically. *)
  let net = (i * 2654435761) land 0xFFFFFF in
  Prefix.make (Ipv4.of_int (net lsl 8)) 24

let random_path rng ~lo ~hi =
  let len = Prng.int_in rng lo hi in
  let rec distinct acc n =
    if n = 0 then acc
    else
      let a = Prng.int_in rng 1 64000 in
      if List.mem a acc then distinct acc n else distinct (a :: acc) (n - 1)
  in
  List.map (fun a -> Path_elem.As (Asn.of_int a)) (distinct [] len)

let payload_protocols k =
  List.init k (fun i ->
      Protocol_id.register ~kind:Protocol_id.Critical_fix
        (Printf.sprintf "stress-fix-%d" i))

let generate s =
  let rng = Prng.create s.seed in
  let protos = payload_protocols s.n_extra_protocols in
  let payload =
    if s.payload_bytes > 0 then Some (String.make s.payload_bytes 'x') else None
  in
  List.init s.advertisements (fun i ->
      let prefix = nth_prefix i in
      let path = random_path rng ~lo:s.path_len_lo ~hi:s.path_len_hi in
      let origin_asn =
        match List.rev path with
        | Path_elem.As a :: _ -> a
        | _ -> Asn.of_int 65000
      in
      let ia =
        Ia.originate ~prefix ~origin_asn
          ~next_hop:(Ipv4.of_octets 10 0 (i lsr 8 land 0xFF) (i land 0xFF))
          ()
      in
      let ia = { ia with Ia.path_vector = path } in
      match payload with
      | None -> ia
      | Some bytes ->
        Ia.set_path_descriptor ~owners:protos ~field:"stress-payload"
          (Value.Bytes bytes) ia)

let generate_updates s =
  let rng = Prng.create s.seed in
  List.init s.advertisements (fun i ->
      let prefix = nth_prefix i in
      let path =
        random_path rng ~lo:s.path_len_lo ~hi:s.path_len_hi
        |> List.filter_map (function
             | Path_elem.As a -> Some a
             | Path_elem.Island _ | Path_elem.As_set _ -> None)
      in
      let attrs =
        Dbgp_bgp.Attr.make
          ~as_path:[ Dbgp_bgp.Attr.Seq path ]
          ~next_hop:(Ipv4.of_octets 10 0 (i lsr 8 land 0xFF) (i land 0xFF))
          ()
      in
      { Dbgp_bgp.Message.withdrawn = []; attrs = Some attrs; nlri = [ prefix ] })
