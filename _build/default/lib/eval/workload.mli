(** Synthetic advertisement workloads.

    The paper's Section 5 stress test replays 150,000 advertisements per
    peer collected from RIPE RIS.  RIPE data is unavailable offline, so
    this generator synthesizes traces with the relevant distributional
    properties: distinct prefixes drawn across the address space,
    AS-path lengths in the 3-5 range typical of tier-1 tables, and an
    optional payload of extra per-protocol control information to sweep
    IA sizes (the 32 KB / 256 KB points of the paper's experiment). *)

type spec = {
  advertisements : int;
  path_len_lo : int;
  path_len_hi : int;
  payload_bytes : int;
  (** extra critical-fix control information attached to each IA;
      0 = BGP-only advertisements *)
  n_extra_protocols : int;
  (** how many critical fixes share that payload *)
  seed : int;
}

val spec :
  ?path_len_lo:int ->
  ?path_len_hi:int ->
  ?payload_bytes:int ->
  ?n_extra_protocols:int ->
  ?seed:int ->
  advertisements:int ->
  unit ->
  spec

val generate : spec -> Dbgp_core.Ia.t list
(** Deterministic in [seed].  Every IA has a distinct prefix, a
    loop-free path vector, BGP origin/next-hop descriptors and — when
    [payload_bytes > 0] — a shared-ownership descriptor of that size. *)

val generate_updates : spec -> Dbgp_bgp.Message.update list
(** The same workload as plain BGP UPDATE messages, for the
    Quagga-equivalent (BGP-only) arm of the stress test. *)
