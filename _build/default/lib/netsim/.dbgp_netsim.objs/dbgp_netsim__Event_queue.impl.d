lib/netsim/event_queue.ml: Float Int Map
