lib/netsim/lookup_service.ml: Dbgp_core Dbgp_types Hashtbl Ipv4 List String
