lib/netsim/lookup_service.mli: Dbgp_core Dbgp_types
