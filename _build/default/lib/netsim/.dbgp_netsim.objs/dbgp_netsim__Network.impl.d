lib/netsim/network.ml: Asn Dbgp_bgp Dbgp_core Dbgp_types Event_queue Hashtbl Ipv4 Island_id List Lookup_service Option Prefix
