lib/netsim/network.mli: Dbgp_bgp Dbgp_core Dbgp_types Event_queue Lookup_service
