lib/netsim/session.ml: Dbgp_bgp Dbgp_core Event_queue List Option String
