lib/netsim/session.mli: Dbgp_bgp Dbgp_core Event_queue
