module Key = struct
  type t = float * int

  let compare (t1, s1) (t2, s2) =
    match Float.compare t1 t2 with 0 -> Int.compare s1 s2 | c -> c
end

module M = Map.Make (Key)

type t = {
  mutable events : (unit -> unit) M.t;
  mutable clock : float;
  mutable seq : int;
}

let create () = { events = M.empty; clock = 0.; seq = 0 }
let now t = t.clock

let schedule_at t ~time f =
  if time < t.clock then invalid_arg "Event_queue.schedule_at: time in the past"
  else begin
    t.events <- M.add (time, t.seq) f t.events;
    t.seq <- t.seq + 1
  end

let schedule t ~delay f =
  if delay < 0. then invalid_arg "Event_queue.schedule: negative delay"
  else schedule_at t ~time:(t.clock +. delay) f

let is_empty t = M.is_empty t.events
let pending t = M.cardinal t.events

let step t =
  match M.min_binding_opt t.events with
  | None -> false
  | Some (((time, _) as key), f) ->
    t.events <- M.remove key t.events;
    t.clock <- time;
    f ();
    true

let run ?(max_events = 10_000_000) t =
  let executed = ref 0 in
  while !executed < max_events && step t do
    incr executed
  done;
  !executed
