open Dbgp_types

type endpoint = int * string (* portal address, service name *)

type t = {
  store : (endpoint * string, Dbgp_core.Value.t) Hashtbl.t;
  handlers : (endpoint, Dbgp_core.Value.t -> Dbgp_core.Value.t option) Hashtbl.t;
  mutable accesses : int;
}

let create () =
  { store = Hashtbl.create 64; handlers = Hashtbl.create 16; accesses = 0 }

let ep ~portal ~service = (Ipv4.to_int portal, service)

let post t ~portal ~service ~key v =
  t.accesses <- t.accesses + 1;
  Hashtbl.replace t.store (ep ~portal ~service, key) v

let fetch t ~portal ~service ~key =
  t.accesses <- t.accesses + 1;
  Hashtbl.find_opt t.store (ep ~portal ~service, key)

let keys t ~portal ~service =
  let target = ep ~portal ~service in
  Hashtbl.fold
    (fun (e, k) _ acc -> if e = target then k :: acc else acc)
    t.store []
  |> List.sort String.compare

let register_handler t ~portal ~service f =
  Hashtbl.replace t.handlers (ep ~portal ~service) f

let rpc t ~portal ~service req =
  t.accesses <- t.accesses + 1;
  match Hashtbl.find_opt t.handlers (ep ~portal ~service) with
  | None -> None
  | Some f -> f req

let accesses t = t.accesses
let reset_accesses t = t.accesses <- 0
