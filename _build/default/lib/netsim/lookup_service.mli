(** The out-of-band lookup service.

    Beagle "disseminates IAs out-of-band by storing them in a lookup
    service" and uses the same service as the cost-exchange portal for
    Wiser and the service portal for MIRO (Section 5, Figure 8).  We
    model it as an addressable key-value store plus registered RPC
    handlers: a portal is an (address, service-name) pair; islands post
    and fetch typed values, and custom protocols register negotiation
    endpoints. *)

type t

val create : unit -> t

(** {1 Key-value portal} *)

val post :
  t -> portal:Dbgp_types.Ipv4.t -> service:string -> key:string ->
  Dbgp_core.Value.t -> unit

val fetch :
  t -> portal:Dbgp_types.Ipv4.t -> service:string -> key:string ->
  Dbgp_core.Value.t option

val keys : t -> portal:Dbgp_types.Ipv4.t -> service:string -> string list

(** {1 RPC endpoints} *)

val register_handler :
  t -> portal:Dbgp_types.Ipv4.t -> service:string ->
  (Dbgp_core.Value.t -> Dbgp_core.Value.t option) -> unit
(** Replaces any existing handler at that endpoint. *)

val rpc :
  t -> portal:Dbgp_types.Ipv4.t -> service:string ->
  Dbgp_core.Value.t -> Dbgp_core.Value.t option
(** [None] if no handler is registered or the handler declines. *)

(** {1 Accounting} *)

val accesses : t -> int
(** Total posts + fetches + rpcs so far — the "external accesses on the
    critical path" cost the paper's CF-R2 discussion attributes to
    out-of-band dissemination. *)

val reset_accesses : t -> unit
