open Dbgp_types
module Speaker = Dbgp_core.Speaker
module Peer = Dbgp_core.Peer

type stats = {
  messages : int;
  announce_bytes : int;
  withdrawals : int;
  events : int;
  converged_at : float;
}

type t = {
  q : Event_queue.t;
  lookup : Lookup_service.t;
  speakers : (int, Speaker.t) Hashtbl.t;     (* by ASN *)
  by_addr : (int, int) Hashtbl.t;            (* speaker addr -> ASN *)
  latencies : (int * int, float) Hashtbl.t;  (* by ASN pair, a < b *)
  mutable mrai : float;
  (* Per (src, dst) directed pair: the latest pending message per prefix
     plus whether a flush is already scheduled. *)
  pending : (int * int, (Prefix.t, Speaker.msg) Hashtbl.t * bool ref) Hashtbl.t;
  mutable messages : int;
  mutable announce_bytes : int;
  mutable withdrawals : int;
}

let create () =
  { q = Event_queue.create ();
    lookup = Lookup_service.create ();
    speakers = Hashtbl.create 64;
    by_addr = Hashtbl.create 64;
    latencies = Hashtbl.create 64;
    mrai = 0.;
    pending = Hashtbl.create 64;
    messages = 0;
    announce_bytes = 0;
    withdrawals = 0 }

let lookup t = t.lookup
let queue t = t.q

let speaker_addr a =
  let n = Asn.to_int a in
  Ipv4.of_octets 10 ((n lsr 16) land 0xFF) ((n lsr 8) land 0xFF) (n land 0xFF)

let add_speaker t s =
  let addr = Ipv4.to_int (Speaker.addr s) in
  if Hashtbl.mem t.by_addr addr then
    invalid_arg "Network.add_speaker: duplicate speaker address"
  else begin
    Hashtbl.replace t.speakers (Asn.to_int (Speaker.asn s)) s;
    Hashtbl.replace t.by_addr addr (Asn.to_int (Speaker.asn s))
  end

let speaker t a =
  match Hashtbl.find_opt t.speakers (Asn.to_int a) with
  | Some s -> s
  | None -> raise Not_found

let peer_of t a =
  let s = speaker t a in
  Peer.make ~asn:(Speaker.asn s) ~addr:(Speaker.addr s)

let lat_key a b =
  let a = Asn.to_int a and b = Asn.to_int b in
  if a < b then (a, b) else (b, a)

let latency t a b =
  Option.value (Hashtbl.find_opt t.latencies (lat_key a b)) ~default:1.0

let prefix_of_msg = function
  | Speaker.Announce ia -> ia.Dbgp_core.Ia.prefix
  | Speaker.Withdraw p -> p

let rec dispatch t ~from outbox =
  List.iter
    (fun ((peer : Peer.t), msg) ->
      match Hashtbl.find_opt t.by_addr (Ipv4.to_int peer.Peer.addr) with
      | None -> () (* neighbor not simulated; drop *)
      | Some dst_asn ->
        let dst = Asn.of_int dst_asn in
        let delay = latency t from dst in
        if Hashtbl.mem t.latencies (lat_key from dst) then
          if t.mrai <= 0. then
            Event_queue.schedule t.q ~delay (fun () -> deliver t ~from ~to_:dst msg)
          else begin
            (* MRAI batching: keep only the latest state per prefix and
               flush the whole batch once per interval. *)
            let key = (Asn.to_int from, dst_asn) in
            let batch, scheduled =
              match Hashtbl.find_opt t.pending key with
              | Some entry -> entry
              | None ->
                let entry = (Hashtbl.create 8, ref false) in
                Hashtbl.replace t.pending key entry;
                entry
            in
            Hashtbl.replace batch (prefix_of_msg msg) msg;
            if not !scheduled then begin
              scheduled := true;
              Event_queue.schedule t.q ~delay:(t.mrai +. delay) (fun () ->
                  scheduled := false;
                  let msgs = Hashtbl.fold (fun _ m acc -> m :: acc) batch [] in
                  Hashtbl.reset batch;
                  List.iter (fun m -> deliver t ~from ~to_:dst m) msgs)
            end
          end)
    outbox

and deliver t ~from ~to_ msg =
  t.messages <- t.messages + 1;
  ( match msg with
    | Speaker.Announce ia ->
      t.announce_bytes <- t.announce_bytes + Dbgp_core.Codec.size ia
    | Speaker.Withdraw _ -> t.withdrawals <- t.withdrawals + 1 );
  let s = speaker t to_ in
  let outbox = Speaker.receive s ~from:(peer_of t from) msg in
  dispatch t ~from:to_ outbox

let inverse : Dbgp_bgp.Policy.relationship -> Dbgp_bgp.Policy.relationship =
  function
  | Dbgp_bgp.Policy.To_customer -> Dbgp_bgp.Policy.To_provider
  | Dbgp_bgp.Policy.To_provider -> Dbgp_bgp.Policy.To_customer
  | Dbgp_bgp.Policy.To_peer -> Dbgp_bgp.Policy.To_peer

let link t ?(latency = 1.0) ?(a_import = Dbgp_core.Filters.accept)
    ?(a_export = Dbgp_core.Filters.accept)
    ?(b_import = Dbgp_core.Filters.accept)
    ?(b_export = Dbgp_core.Filters.accept) ?(a_dbgp = true) ?(b_dbgp = true)
    ~a ~b ~b_is () =
  let sa = speaker t a and sb = speaker t b in
  Hashtbl.replace t.latencies (lat_key a b) latency;
  (* Island co-membership: compare outgoing IA treatment by checking the
     speakers' configured islands via a probe neighbor; the Speaker API
     exposes islands only through config, so we thread it via best-effort
     equality of their egress behaviour.  Simpler and robust: compare the
     islands recorded at construction time. *)
  let same_island =
    match (Speaker.island_of sa, Speaker.island_of sb) with
    | Some ia, Some ib -> Island_id.equal ia ib
    | _ -> false
  in
  Speaker.add_neighbor sa
    (Speaker.neighbor ~import:a_import ~export:a_export ~dbgp_capable:b_dbgp
       ~same_island ~relationship:b_is (peer_of t b));
  Speaker.add_neighbor sb
    (Speaker.neighbor ~import:b_import ~export:b_export ~dbgp_capable:a_dbgp
       ~same_island ~relationship:(inverse b_is) (peer_of t a))

let fail_link t a b =
  Hashtbl.remove t.latencies (lat_key a b);
  let sa = speaker t a and sb = speaker t b in
  let out_a = Speaker.peer_down sa (peer_of t b) in
  let out_b = Speaker.peer_down sb (peer_of t a) in
  Event_queue.schedule t.q ~delay:0. (fun () -> dispatch t ~from:a out_a);
  Event_queue.schedule t.q ~delay:0. (fun () -> dispatch t ~from:b out_b)

let originate t a ia =
  Event_queue.schedule t.q ~delay:0. (fun () ->
      let outbox = Speaker.originate (speaker t a) ia in
      dispatch t ~from:a outbox)

let inject t ~from ~to_ msg =
  Event_queue.schedule t.q ~delay:0. (fun () ->
      t.messages <- t.messages + 1;
      let s = speaker t to_ in
      let outbox = Speaker.receive s ~from msg in
      dispatch t ~from:(Speaker.asn s) outbox)

let set_mrai t v =
  if v < 0. then invalid_arg "Network.set_mrai: negative interval" else t.mrai <- v

let run ?max_events t =
  let events = Event_queue.run ?max_events t.q in
  { messages = t.messages;
    announce_bytes = t.announce_bytes;
    withdrawals = t.withdrawals;
    events;
    converged_at = Event_queue.now t.q }

let asns t =
  Hashtbl.fold (fun a _ acc -> Asn.of_int a :: acc) t.speakers []
  |> List.sort Asn.compare
