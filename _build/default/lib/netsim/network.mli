(** The network simulator: our MiniNeXT substitute.

    Hosts one {!Dbgp_core.Speaker} per AS, delivers control-plane
    messages over configured links with latency through the shared
    {!Event_queue}, and accounts message counts and bytes.  The
    Figure-8 deployment experiments, the motivating-scenario tests and
    the rich-world reproduction all execute on this harness.

    Neighbor policy lives on the speakers (configure with
    {!Dbgp_core.Speaker.add_neighbor} or the {!link} convenience); the
    network only knows connectivity and latency. *)

type t

type stats = {
  messages : int;        (** control messages delivered *)
  announce_bytes : int;  (** encoded IA bytes carried *)
  withdrawals : int;
  events : int;          (** total simulator events executed *)
  converged_at : float;  (** simulated time the network went quiet *)
}

val create : unit -> t
val lookup : t -> Lookup_service.t
val queue : t -> Event_queue.t

val speaker_addr : Dbgp_types.Asn.t -> Dbgp_types.Ipv4.t
(** Deterministic address for an AS's speaker: 10.0.0.0/8 carved by AS
    number. *)

val add_speaker : t -> Dbgp_core.Speaker.t -> unit
(** @raise Invalid_argument if a speaker with the same address exists. *)

val speaker : t -> Dbgp_types.Asn.t -> Dbgp_core.Speaker.t
(** @raise Not_found if the AS is not in the network. *)

val peer_of : t -> Dbgp_types.Asn.t -> Dbgp_core.Peer.t

val link :
  t ->
  ?latency:float ->
  ?a_import:Dbgp_core.Filters.t ->
  ?a_export:Dbgp_core.Filters.t ->
  ?b_import:Dbgp_core.Filters.t ->
  ?b_export:Dbgp_core.Filters.t ->
  ?a_dbgp:bool ->
  ?b_dbgp:bool ->
  a:Dbgp_types.Asn.t ->
  b:Dbgp_types.Asn.t ->
  b_is:Dbgp_bgp.Policy.relationship ->
  unit ->
  unit
(** Connects two registered speakers. [b_is] is the relationship of [b]
    seen from [a] ([To_customer] = b is a's customer); the inverse side
    is derived.  [same_island] is inferred by comparing the speakers'
    configured islands. *)

val fail_link : t -> Dbgp_types.Asn.t -> Dbgp_types.Asn.t -> unit
(** Takes the link down: both speakers drop the session and re-converge. *)

val set_mrai : t -> float -> unit
(** Minimum route-advertisement interval: with a positive MRAI, messages
    to each neighbor are batched per prefix and only the latest state is
    delivered every interval — BGP's standard churn dampener, and the
    "flexibility in choosing the rate at which to disseminate
    advertisements" Section 3.5 leans on.  Default 0 (immediate).
    @raise Invalid_argument on negative values. *)

val originate : t -> Dbgp_types.Asn.t -> Dbgp_core.Ia.t -> unit
(** Locally originate a route at the AS and schedule its announcements. *)

val inject : t -> from:Dbgp_core.Peer.t -> to_:Dbgp_types.Asn.t ->
  Dbgp_core.Speaker.msg -> unit
(** Deliver an arbitrary message as if [from] had sent it (attack and
    fault-injection tests). *)

val run : ?max_events:int -> t -> stats
(** Run to quiescence. *)

val asns : t -> Dbgp_types.Asn.t list
