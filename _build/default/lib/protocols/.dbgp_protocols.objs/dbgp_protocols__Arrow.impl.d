lib/protocols/arrow.ml: Dbgp_core Dbgp_dataplane Dbgp_types Ipv4 Island_id List Option Portal_io Protocol_id
