lib/protocols/arrow.mli: Dbgp_core Dbgp_dataplane Dbgp_types Portal_io
