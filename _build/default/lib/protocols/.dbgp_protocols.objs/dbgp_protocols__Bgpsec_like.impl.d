lib/protocols/bgpsec_like.ml: Asn Char Dbgp_core Dbgp_types Int Int64 List Path_elem Prefix Printf Protocol_id String
