lib/protocols/bgpsec_like.mli: Dbgp_core Dbgp_types
