lib/protocols/eqbgp.ml: Dbgp_core Dbgp_types Int List Option Protocol_id
