lib/protocols/eqbgp.mli: Dbgp_core Dbgp_types
