lib/protocols/header_builder.ml: Dbgp_core Dbgp_dataplane Dbgp_types Ipv4 Island_id List Option Pathlet Scion_like String
