lib/protocols/header_builder.mli: Dbgp_core Dbgp_dataplane Dbgp_types
