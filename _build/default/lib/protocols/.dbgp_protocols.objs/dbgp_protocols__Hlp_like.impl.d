lib/protocols/hlp_like.ml: Dbgp_core Dbgp_topology Dbgp_types Int Island_id List Option Protocol_id
