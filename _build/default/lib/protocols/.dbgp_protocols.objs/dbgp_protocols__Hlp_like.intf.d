lib/protocols/hlp_like.mli: Dbgp_core Dbgp_topology Dbgp_types
