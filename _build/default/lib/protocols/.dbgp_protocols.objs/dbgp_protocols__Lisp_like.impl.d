lib/protocols/lisp_like.ml: Dbgp_core Dbgp_types Ipv4 Island_id List Option Portal_io Prefix Protocol_id
