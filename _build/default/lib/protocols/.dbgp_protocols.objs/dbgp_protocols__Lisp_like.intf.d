lib/protocols/lisp_like.mli: Dbgp_core Dbgp_types Portal_io
