lib/protocols/miro.ml: Dbgp_core Dbgp_types Int Ipv4 Island_id List Option Portal_io Prefix Protocol_id
