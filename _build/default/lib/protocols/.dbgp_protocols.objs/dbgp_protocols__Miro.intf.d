lib/protocols/miro.mli: Dbgp_core Dbgp_types Portal_io
