lib/protocols/pathlet.ml: Dbgp_core Dbgp_types Format Hashtbl Int List Option Prefix Protocol_id
