lib/protocols/pathlet.mli: Dbgp_core Dbgp_types Format
