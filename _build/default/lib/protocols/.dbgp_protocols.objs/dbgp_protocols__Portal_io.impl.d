lib/protocols/portal_io.ml: Dbgp_core Dbgp_types Hashtbl Ipv4
