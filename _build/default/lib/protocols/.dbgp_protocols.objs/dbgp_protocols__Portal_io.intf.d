lib/protocols/portal_io.mli: Dbgp_core Dbgp_types
