lib/protocols/rbgp.ml: Asn Dbgp_core Dbgp_types Hashtbl Island_id List Path_elem Prefix Protocol_id
