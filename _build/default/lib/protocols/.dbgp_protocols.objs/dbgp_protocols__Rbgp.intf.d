lib/protocols/rbgp.mli: Dbgp_core Dbgp_types
