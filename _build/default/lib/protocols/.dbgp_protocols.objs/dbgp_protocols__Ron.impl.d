lib/protocols/ron.ml: Dbgp_core Dbgp_dataplane Dbgp_types Hashtbl Ipv4 List Option Protocol_id
