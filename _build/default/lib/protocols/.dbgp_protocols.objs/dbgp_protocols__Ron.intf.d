lib/protocols/ron.mli: Dbgp_core Dbgp_dataplane Dbgp_types
