lib/protocols/scion_like.ml: Dbgp_core Dbgp_types Int List Protocol_id String
