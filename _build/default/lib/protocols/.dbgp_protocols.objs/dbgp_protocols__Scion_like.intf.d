lib/protocols/scion_like.mli: Dbgp_core Dbgp_types
