lib/protocols/wiser.ml: Dbgp_core Dbgp_types Float Hashtbl Int Ipv4 Island_id List Option Path_elem Portal_io Protocol_id
