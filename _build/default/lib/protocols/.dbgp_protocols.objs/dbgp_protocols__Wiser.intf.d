lib/protocols/wiser.mli: Dbgp_core Dbgp_types Portal_io
