open Dbgp_types
module Ia = Dbgp_core.Ia
module Value = Dbgp_core.Value
module Header = Dbgp_dataplane.Header

let protocol = Protocol_id.arrow
let field_portal = "arrow-portal"
let field_guarantee = "arrow-guarantee"
let service = "arrow"

type segment = { ingress : Ipv4.t; egress : Ipv4.t; bandwidth : int }

type config = {
  my_island : Island_id.t;
  portal : Ipv4.t;
  guarantee : int;
  segment : segment;
}

type t = { cfg : config; mutable sold : int }

let create cfg = { cfg; sold = 0 }

let advertise t ia =
  ia
  |> Ia.add_island_descriptor ~island:t.cfg.my_island ~proto:protocol
       ~field:field_portal (Value.Addr t.cfg.portal)
  |> Ia.add_island_descriptor ~island:t.cfg.my_island ~proto:protocol
       ~field:field_guarantee (Value.Int t.cfg.guarantee)

let serve t = function
  | Value.Int min_bandwidth when t.cfg.guarantee >= min_bandwidth ->
    t.sold <- t.sold + 1;
    Some
      (Value.Pair
         ( Value.Pair (Value.Addr t.cfg.segment.ingress, Value.Addr t.cfg.segment.egress),
           Value.Int t.cfg.segment.bandwidth ))
  | _ -> None

let sold t = t.sold

type discovered = {
  island : Island_id.t;
  portal_addr : Ipv4.t;
  guarantee : int;
}

let discover ia =
  Ia.find_island_descriptors ~proto:protocol ia
  |> List.filter_map (fun (d : Ia.island_descriptor) ->
         if d.Ia.ifield = field_portal then
           Option.map
             (fun portal_addr ->
               let guarantee =
                 match
                   Ia.find_island_descriptor ~island:d.Ia.island ~proto:protocol
                     ~field:field_guarantee ia
                 with
                 | Some (Value.Int g) -> g
                 | _ -> 0
               in
               { island = d.Ia.island; portal_addr; guarantee })
             (Value.as_addr d.Ia.ivalue)
         else None)

let buy ~io ~portal ~min_bandwidth =
  match io.Portal_io.rpc ~portal ~service (Value.Int min_bandwidth) with
  | Some (Value.Pair (Value.Pair (Value.Addr ingress, Value.Addr egress), Value.Int bandwidth)) ->
    Some { ingress; egress; bandwidth }
  | _ -> None

let stitch ~segments ~dst ~src =
  List.map (fun s -> Header.Tunnel_hdr { endpoint = s.ingress }) segments
  @ [ Header.Ipv4_hdr { src; dst } ]

let effective_bandwidth = function
  | [] -> None
  | segments ->
    Some (List.fold_left (fun acc s -> min acc s.bandwidth) max_int segments)
