(** An Arrow-like custom protocol: guaranteed-QoS transit segments
    (Peter et al., SIGCOMM '14, "One Tunnel is (Often) Enough" —
    Table 1's "alt. paths + intra-island QoS").

    Participating islands sell {e segments}: tunneled transit through
    their island with a bandwidth guarantee.  Like MIRO, the service is
    discovered via island descriptors passed through gulfs; unlike MIRO,
    a customer can {e stitch} several islands' segments into one
    end-to-end path, encoded as nested tunnel headers (the "one tunnel"
    observation being that a single well-placed segment usually
    suffices). *)

val protocol : Dbgp_types.Protocol_id.t

val field_portal : string
val field_guarantee : string
(** Island descriptor: the bandwidth the island will guarantee. *)

val service : string

type segment = {
  ingress : Dbgp_types.Ipv4.t;   (** tunnel entry into the island *)
  egress : Dbgp_types.Ipv4.t;    (** where traffic re-emerges *)
  bandwidth : int;               (** guaranteed, in the island *)
}

type config = {
  my_island : Dbgp_types.Island_id.t;
  portal : Dbgp_types.Ipv4.t;
  guarantee : int;
  segment : segment;             (** what this island sells *)
}

type t

val create : config -> t
val advertise : t -> Dbgp_core.Ia.t -> Dbgp_core.Ia.t

val serve : t -> Dbgp_core.Value.t -> Dbgp_core.Value.t option
(** Portal handler.  Request: [Int min_bandwidth]; response: the segment
    as [Pair (Pair (ingress, egress), Int bandwidth)] when the guarantee
    suffices. *)

val sold : t -> int
(** Segments sold so far. *)

(** {1 Customer side} *)

type discovered = {
  island : Dbgp_types.Island_id.t;
  portal_addr : Dbgp_types.Ipv4.t;
  guarantee : int;
}

val discover : Dbgp_core.Ia.t -> discovered list

val buy :
  io:Portal_io.t ->
  portal:Dbgp_types.Ipv4.t ->
  min_bandwidth:int ->
  segment option

val stitch :
  segments:segment list ->
  dst:Dbgp_types.Ipv4.t ->
  src:Dbgp_types.Ipv4.t ->
  Dbgp_dataplane.Header.stack
(** Nested tunnel headers entering each purchased segment in order,
    with the plain IPv4 header innermost.  The effective end-to-end
    guarantee is the minimum over the segments (see
    {!effective_bandwidth}). *)

val effective_bandwidth : segment list -> int option
(** [None] on the empty list. *)
