open Dbgp_types
module Ia = Dbgp_core.Ia
module Value = Dbgp_core.Value
module Dm = Dbgp_core.Decision_module

let protocol = Protocol_id.eq_bgp
let field_bandwidth = "eqbgp-bw"

let bandwidth_of ia =
  Option.bind
    (Ia.find_path_descriptor ~proto:protocol ~field:field_bandwidth ia)
    Value.as_int

type config = { ingress_bandwidth : int }

let decision_module cfg =
  let bw c = Option.value (bandwidth_of c.Dm.ia) ~default:(-1) in
  let better a b =
    match Int.compare (bw a) (bw b) with
    | 0 -> (
      match
        Int.compare (Dm.candidate_path_length b) (Dm.candidate_path_length a)
      with
      | 0 -> Dm.compare_tiebreak a b
      | c -> c )
    | c -> c
  in
  let select ~prefix:_ = function
    | [] -> None
    | c :: rest ->
      Some
        (List.fold_left (fun acc x -> if better x acc > 0 then x else acc) c rest)
  in
  let contribute ~me:_ ia =
    let bottleneck =
      match bandwidth_of ia with
      | None -> cfg.ingress_bandwidth
      | Some b -> min b cfg.ingress_bandwidth
    in
    Ia.set_path_descriptor ~owners:[ protocol ] ~field:field_bandwidth
      (Value.Int bottleneck) ia
  in
  { Dm.protocol;
    import_filter = Dbgp_core.Filters.accept;
    export_filter = Dbgp_core.Filters.accept;
    select;
    contribute }
