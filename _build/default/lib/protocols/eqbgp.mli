(** EQ-BGP-style QoS-aware critical fix (Beben '06).

    Disseminates an end-to-end QoS metric — here bottleneck bandwidth —
    as a path descriptor.  Each upgraded AS narrows the bottleneck by its
    own ingress bandwidth and selects the widest path.  This is also the
    decision-module form of the paper's {e bottleneck-bandwidth
    archetype} (Section 6.3): its benefits depend on a single AS's
    bandwidth that may sit inside a gulf, making it one of the hardest
    objective functions to satisfy incrementally. *)

val protocol : Dbgp_types.Protocol_id.t

val field_bandwidth : string
(** Path descriptor: bottleneck bandwidth of the path so far (only
    upgraded ASes contribute theirs). *)

val bandwidth_of : Dbgp_core.Ia.t -> int option

type config = { ingress_bandwidth : int }

val decision_module : config -> Dbgp_core.Decision_module.t
(** Select: the greatest advertised bottleneck (missing = unknown,
    ranked below any known bandwidth), then shortest path.  Contribute:
    bottleneck := min(bottleneck, my ingress bandwidth). *)
