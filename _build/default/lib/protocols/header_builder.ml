open Dbgp_types
module Ia = Dbgp_core.Ia
module Header = Dbgp_dataplane.Header

type island_plan = {
  island : Island_id.t;
  header : Header.t option;
  tunnel : Ipv4.t option;
}

let scion_header ia island =
  match Scion_like.choose_path (Scion_like.extract ~island ia) with
  | Some path -> Some (Header.Scion_hdr { path; pos = 0 })
  | None -> None

let pathlet_header ia island =
  match List.assoc_opt island (Pathlet.extract ia) with
  | None | Some [] -> None
  | Some pathlets -> (
    let store = Pathlet.Store.create () in
    List.iter (Pathlet.Store.add store) pathlets;
    (* Entry router: the first router any of the island's pathlets
       starts at, in FID order — the island's advertised entry. *)
    let entries =
      List.filter_map
        (fun p ->
          match Pathlet.entry p with
          | Pathlet.Router r -> Some r
          | Pathlet.Deliver _ -> None)
        pathlets
    in
    let routes =
      List.concat_map
        (fun from -> Pathlet.Store.routes_to store ~from ~dest:ia.Ia.prefix)
        (List.sort_uniq String.compare entries)
    in
    match routes with
    | [] -> None
    | route :: _ ->
      Some
        (Header.Pathlet_hdr
           { fids = List.map (fun (p : Pathlet.pathlet) -> p.Pathlet.fid) route }) )

let plan ~ia ~ingress_of =
  let islands = Ia.islands_on_path ia in
  List.mapi
    (fun i island ->
      let header =
        match scion_header ia island with
        | Some h -> Some h
        | None -> pathlet_header ia island
      in
      let tunnel = if i = 0 then None else ingress_of island in
      { island; header; tunnel })
    islands

let build ~ia ~src ~dst ~ingress_of =
  let plans = plan ~ia ~ingress_of in
  let per_island =
    List.concat_map
      (fun p ->
        let tunnel =
          match p.tunnel with
          | Some ep when p.header <> None -> [ Header.Tunnel_hdr { endpoint = ep } ]
          | _ -> []
        in
        let hdr = Option.to_list p.header in
        tunnel @ hdr)
      plans
  in
  per_island @ [ Header.Ipv4_hdr { src; dst } ]
