(** Building multi-network-protocol header stacks from an IA.

    Requirement G-R4 exists partly "to inform sources how to create
    multi-network-protocol headers" (Section 2.5): the path vector plus
    island membership says {e which} protocols appear in {e which} order
    on the path, and island descriptors carry the protocol-specific
    material (SCION paths, pathlet FIDs).  This module turns that
    information into a {!Dbgp_dataplane.Header.stack} a source can put
    on its packets:

    - the innermost header is plain IPv4 to the destination;
    - for each island on the path that advertised within-island paths or
      pathlets, a SCION / pathlet header encoding the source's choice;
    - islands separated from the traffic source by a gulf get a tunnel
      header to their ingress address (routing compliance, Section 2.1 —
      optional in general, required here to reach the island's entry). *)

type island_plan = {
  island : Dbgp_types.Island_id.t;
  header : Dbgp_dataplane.Header.t option;
      (** the protocol-specific header for this island, if any *)
  tunnel : Dbgp_types.Ipv4.t option;
      (** ingress to tunnel to when a gulf precedes the island *)
}

val plan :
  ia:Dbgp_core.Ia.t ->
  ingress_of:(Dbgp_types.Island_id.t -> Dbgp_types.Ipv4.t option) ->
  island_plan list
(** One entry per island on the path, in travel order (nearest the
    source first).  SCION islands get the shortest advertised path;
    pathlet islands get the FID sequence of the first composable route
    to the destination prefix (none if their pathlets do not reach it).
    The first island needs no tunnel (the source reaches it by plain
    forwarding); later islands are tunneled to when [ingress_of] knows
    their ingress. *)

val build :
  ia:Dbgp_core.Ia.t ->
  src:Dbgp_types.Ipv4.t ->
  dst:Dbgp_types.Ipv4.t ->
  ingress_of:(Dbgp_types.Island_id.t -> Dbgp_types.Ipv4.t option) ->
  Dbgp_dataplane.Header.stack
(** The full stack: plans flattened outermost-first plus the innermost
    IPv4 header. *)
