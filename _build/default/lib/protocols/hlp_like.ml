open Dbgp_types
module Ia = Dbgp_core.Ia
module Value = Dbgp_core.Value
module Dm = Dbgp_core.Decision_module
module Ls = Dbgp_topology.Link_state

let protocol = Protocol_id.hlp
let field_cost = "hlp-cost"

let cost_of ia =
  Option.bind (Ia.find_path_descriptor ~proto:protocol ~field:field_cost ia)
    Value.as_int

type config = {
  my_island : Island_id.t;
  lsdb : Ls.t;
  ingress : string;
  egress : string;
  peering_cost : int;
}

let within_island_route cfg =
  Ls.shortest_path cfg.lsdb ~src:cfg.ingress ~dst:cfg.egress

let decision_module cfg =
  let eff c = match cost_of c.Dm.ia with None -> max_int | Some v -> v in
  let better a b =
    match Int.compare (eff b) (eff a) with
    | 0 -> (
      match
        Int.compare (Dm.candidate_path_length b) (Dm.candidate_path_length a)
      with
      | 0 -> Dm.compare_tiebreak a b
      | c -> c )
    | c -> c
  in
  let select ~prefix:_ = function
    | [] -> None
    | c :: rest ->
      Some
        (List.fold_left (fun acc x -> if better x acc > 0 then x else acc) c rest)
  in
  let contribute ~me:_ ia =
    match Ls.distance cfg.lsdb ~src:cfg.ingress ~dst:cfg.egress with
    | None -> ia (* partitioned interior: leave the cost untouched *)
    | Some interior ->
      let base = Option.value (cost_of ia) ~default:0 in
      Ia.set_path_descriptor ~owners:[ protocol ] ~field:field_cost
        (Value.Int (base + interior + cfg.peering_cost))
        ia
  in
  let export_filter ia =
    (* A hybrid island cannot express its interior as a path vector, so
       it must be abstracted behind the island ID. *)
    if within_island_route cfg = None then None
    else Some ia
  in
  { Dm.protocol;
    import_filter = Dbgp_core.Filters.accept;
    export_filter;
    select;
    contribute }
