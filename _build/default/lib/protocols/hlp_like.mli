(** An HLP-like hybrid link-state / path-vector replacement protocol
    (Subramanian et al., SIGCOMM '05).

    Within the island, routing is link-state (see
    {!Dbgp_topology.Link_state}); across islands it is path-vector with
    an accumulated cost.  Because the within-island link-state paths
    cannot be expressed as a path vector, the island {b must} list its
    island ID in the D-BGP path vector, abstracting its interior — the
    paper's Section 3.2 example of why island-ID entries exist.

    The border decision module accumulates, per traversal, the Dijkstra
    distance between the island's ingress and egress routers on top of
    the advertised inter-island cost, and selects the cheapest total. *)

val protocol : Dbgp_types.Protocol_id.t

val field_cost : string
(** Path descriptor: accumulated HLP cost of the path so far. *)

val cost_of : Dbgp_core.Ia.t -> int option

type config = {
  my_island : Dbgp_types.Island_id.t;
  lsdb : Dbgp_topology.Link_state.t;  (** the island's link-state database *)
  ingress : string;  (** border router receiving traffic for this direction *)
  egress : string;   (** border router where advertised routes leave *)
  peering_cost : int;  (** cost of the inter-island hop itself *)
}

val decision_module : config -> Dbgp_core.Decision_module.t
(** Select: lowest advertised cost (unknown ranks last), then shortest
    path vector.  Contribute: cost += Dijkstra(ingress, egress) +
    peering cost; drops the route if the island interior is partitioned
    (no ingress->egress path). *)

val within_island_route :
  config -> (string list * int) option
(** The ingress->egress link-state route the module charges for —
    exposed so data planes and tests can see the actual interior path. *)
