open Dbgp_types
module Ia = Dbgp_core.Ia
module Value = Dbgp_core.Value

let protocol = Protocol_id.lisp
let field_map_server = "lisp-map-server"
let service = "lisp"

type config = { my_island : Island_id.t; map_server : Ipv4.t; io : Portal_io.t }

type t = { cfg : config }

let create cfg = { cfg }

let advertise t ia =
  Ia.add_island_descriptor ~island:t.cfg.my_island ~proto:protocol
    ~field:field_map_server
    (Value.Addr t.cfg.map_server)
    ia

let register t ~eid ~rloc =
  t.cfg.io.Portal_io.post ~portal:t.cfg.map_server ~service
    ~key:(Prefix.to_string eid) (Value.Addr rloc)

let resolve ~io ~map_server ~eid =
  match io.Portal_io.fetch ~portal:map_server ~service ~key:(Prefix.to_string eid) with
  | Some (Value.Addr rloc) -> Some rloc
  | _ -> None

let discover_map_server ia =
  Ia.find_island_descriptors ~proto:protocol ia
  |> List.filter_map (fun (d : Ia.island_descriptor) ->
         if d.Ia.ifield = field_map_server then
           Option.map (fun a -> (d.Ia.island, a)) (Value.as_addr d.Ia.ivalue)
         else None)
