(** A LISP-like critical fix: locator/identifier separation for mobility
    (Farinacci et al., RFC 6830; Table 1's "dest. ingress IDs").

    Destinations are named by endpoint identifiers (EIDs, here a prefix
    in a non-routable space); the routing system only carries routing
    locators (RLOCs).  The island descriptor names the mapping-service
    portal, and a map request resolves an EID to the destination's
    current ingress RLOC — which keeps working across gulfs once the
    descriptor passes through, and survives the destination moving
    (re-registering a new RLOC) without any new advertisement. *)

val protocol : Dbgp_types.Protocol_id.t

val field_map_server : string
(** Island descriptor: the mapping-service portal address. *)

val service : string

type config = {
  my_island : Dbgp_types.Island_id.t;
  map_server : Dbgp_types.Ipv4.t;
  io : Portal_io.t;
}

type t

val create : config -> t

val advertise : t -> Dbgp_core.Ia.t -> Dbgp_core.Ia.t
(** Attach the mapping-service descriptor. *)

val register :
  t -> eid:Dbgp_types.Prefix.t -> rloc:Dbgp_types.Ipv4.t -> unit
(** The destination (re-)registers its current ingress locator — this is
    the mobility event. *)

val resolve :
  io:Portal_io.t ->
  map_server:Dbgp_types.Ipv4.t ->
  eid:Dbgp_types.Prefix.t ->
  Dbgp_types.Ipv4.t option
(** A source resolves an EID to the current RLOC; traffic is then
    tunneled to the RLOC (see {!Dbgp_dataplane.Header.Tunnel_hdr}). *)

val discover_map_server :
  Dbgp_core.Ia.t -> (Dbgp_types.Island_id.t * Dbgp_types.Ipv4.t) list
