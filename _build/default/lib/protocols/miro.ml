open Dbgp_types
module Ia = Dbgp_core.Ia
module Value = Dbgp_core.Value

let protocol = Protocol_id.miro
let field_portal = "miro-portal"
let field_paths_offered = "miro-paths"
let service = "miro"

type offer = {
  dest : Prefix.t;
  via : string;
  price : int;
  tunnel_endpoint : Ipv4.t;
}

type config = { my_island : Island_id.t; portal : Ipv4.t; offers : offer list }

type t = { cfg : config; mutable sold : (Prefix.t * string) list }

let create cfg = { cfg; sold = [] }

let advertise t ia =
  ia
  |> Ia.add_island_descriptor ~island:t.cfg.my_island ~proto:protocol
       ~field:field_portal (Value.Addr t.cfg.portal)
  |> Ia.add_island_descriptor ~island:t.cfg.my_island ~proto:protocol
       ~field:field_paths_offered
       (Value.Int (List.length t.cfg.offers))

let serve t req =
  match req with
  | Value.Pair (Value.Pfx dest, Value.Int budget) -> (
    let affordable =
      List.filter
        (fun o -> Prefix.equal o.dest dest && o.price <= budget)
        t.cfg.offers
      |> List.sort (fun a b -> Int.compare a.price b.price)
    in
    match affordable with
    | [] -> None
    | o :: _ ->
      t.sold <- t.sold @ [ (dest, o.via) ];
      Some (Value.Pair (Value.Str o.via, Value.Addr o.tunnel_endpoint)) )
  | _ -> None

let sold t = t.sold

type discovered = { island : Island_id.t; portal_addr : Ipv4.t; n_paths : int }

let discover ia =
  Ia.find_island_descriptors ~proto:protocol ia
  |> List.filter_map (fun (d : Ia.island_descriptor) ->
         if d.Ia.ifield = field_portal then
           Option.map
             (fun portal_addr ->
               let n_paths =
                 match
                   Ia.find_island_descriptor ~island:d.Ia.island ~proto:protocol
                     ~field:field_paths_offered ia
                 with
                 | Some (Value.Int n) -> n
                 | _ -> 0
               in
               { island = d.Ia.island; portal_addr; n_paths })
             (Value.as_addr d.Ia.ivalue)
         else None)

let negotiate ~io ~portal ~dest ~budget =
  match
    io.Portal_io.rpc ~portal ~service (Value.Pair (Value.Pfx dest, Value.Int budget))
  with
  | Some (Value.Pair (Value.Str via, Value.Addr ep)) -> Some (via, ep)
  | _ -> None
