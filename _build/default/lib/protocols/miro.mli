(** MIRO deployed over D-BGP (custom protocol; Xu & Rexford, SIGCOMM '06).

    A MIRO island sells alternate paths.  With plain BGP the service is
    undiscoverable beyond direct neighbors (Figure 2); with D-BGP the
    island attaches an island descriptor naming its service portal, which
    passes through gulfs, enabling both on-path and off-path discovery
    (Section 3.4).  Interested islands then negotiate out-of-band and
    tunnel their traffic to the purchased path. *)

val protocol : Dbgp_types.Protocol_id.t

val field_portal : string
val field_paths_offered : string
val service : string

type offer = {
  dest : Dbgp_types.Prefix.t;
  via : string;            (** human-readable path identifier *)
  price : int;
  tunnel_endpoint : Dbgp_types.Ipv4.t;
}

type config = {
  my_island : Dbgp_types.Island_id.t;
  portal : Dbgp_types.Ipv4.t;
  offers : offer list;
}

type t

val create : config -> t

val advertise : t -> Dbgp_core.Ia.t -> Dbgp_core.Ia.t
(** Attach the island descriptor advertising the service (portal address
    and number of alternate paths offered). *)

val serve : t -> Dbgp_core.Value.t -> Dbgp_core.Value.t option
(** The portal's RPC handler.  Request: [Pair (Pfx dest, Int budget)].
    Response: [Pair (Str via, Addr tunnel_endpoint)] for the cheapest
    offer within budget, [None] otherwise.  Register it on the lookup
    service at [(portal, service)]. *)

val sold : t -> (Dbgp_types.Prefix.t * string) list
(** Negotiations concluded so far (dest, path id), in order. *)

(** {1 Customer side} *)

type discovered = {
  island : Dbgp_types.Island_id.t;
  portal_addr : Dbgp_types.Ipv4.t;
  n_paths : int;
}

val discover : Dbgp_core.Ia.t -> discovered list
(** Every MIRO service advertised in the IA — works for on-path and,
    when IAs for other destinations are inspected, off-path discovery. *)

val negotiate :
  io:Portal_io.t ->
  portal:Dbgp_types.Ipv4.t ->
  dest:Dbgp_types.Prefix.t ->
  budget:int ->
  (string * Dbgp_types.Ipv4.t) option
(** Contact the portal; on success returns (path id, tunnel endpoint). *)
