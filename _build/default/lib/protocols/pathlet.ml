open Dbgp_types
module Ia = Dbgp_core.Ia
module Value = Dbgp_core.Value
module Dm = Dbgp_core.Decision_module

let protocol = Protocol_id.pathlet
let field_pathlets = "pathlets"

type hop = Router of string | Deliver of Prefix.t

type pathlet = { fid : int; hops : hop list }

let make ~fid hops =
  let rec check = function
    | [] -> invalid_arg "Pathlet.make: empty hop list"
    | [ (Router _ | Deliver _) ] -> ()
    | Router _ :: rest -> check rest
    | Deliver _ :: _ -> invalid_arg "Pathlet.make: Deliver must be last"
  in
  check hops;
  { fid; hops }

let entry p = List.hd p.hops

let exit_hop p = List.nth p.hops (List.length p.hops - 1)

let delivers_to p =
  match exit_hop p with Deliver pfx -> Some pfx | Router _ -> None

let compose ~fid a b =
  match (exit_hop a, entry b) with
  | Router ra, Router rb when ra = rb ->
    (* Drop the duplicated junction router. *)
    make ~fid (a.hops @ List.tl b.hops)
  | _ -> invalid_arg "Pathlet.compose: pathlets do not connect"

let hop_to_value = function
  | Router r -> Value.Pair (Value.Int 0, Value.Str r)
  | Deliver p -> Value.Pair (Value.Int 1, Value.Pfx p)

let hop_of_value = function
  | Value.Pair (Value.Int 0, Value.Str r) -> Some (Router r)
  | Value.Pair (Value.Int 1, Value.Pfx p) -> Some (Deliver p)
  | _ -> None

let to_value p =
  Value.Pair (Value.Int p.fid, Value.List (List.map hop_to_value p.hops))

let of_value = function
  | Value.Pair (Value.Int fid, Value.List hops) ->
    let decoded = List.filter_map hop_of_value hops in
    if List.length decoded = List.length hops && decoded <> [] then
      Some { fid; hops = decoded }
    else None
  | _ -> None

let pp_hop ppf = function
  | Router r -> Format.pp_print_string ppf r
  | Deliver p -> Format.fprintf ppf "->%a" Prefix.pp p

let pp ppf p =
  Format.fprintf ppf "%d:(%a)" p.fid
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       pp_hop)
    p.hops

let equal a b = a = b

module Store = struct
  type t = (int, pathlet) Hashtbl.t

  let create () = Hashtbl.create 16
  let add t p = Hashtbl.replace t p.fid p
  let find t ~fid = Hashtbl.find_opt t fid

  let all t =
    Hashtbl.fold (fun _ p acc -> p :: acc) t []
    |> List.sort (fun a b -> Int.compare a.fid b.fid)

  let size t = Hashtbl.length t

  let routes_to t ~from ~dest =
    let pathlets = all t in
    let starts_at router p =
      match entry p with Router r -> r = router | Deliver _ -> false
    in
    let rec search at used acc_rev results =
      List.fold_left
        (fun results p ->
          if List.mem p.fid used then results
          else if starts_at at p then
            match exit_hop p with
            | Deliver pfx when Prefix.equal pfx dest ->
              List.rev (p :: acc_rev) :: results
            | Deliver _ -> results
            | Router r -> search r (p.fid :: used) (p :: acc_rev) results
          else results)
        results pathlets
    in
    List.rev (search from [] [] [])
end

let attach ~island pathlets ia =
  Ia.add_island_descriptor ~island ~proto:protocol ~field:field_pathlets
    (Value.List (List.map to_value pathlets))
    ia

let extract ia =
  Ia.find_island_descriptors ~proto:protocol ia
  |> List.filter_map (fun (d : Ia.island_descriptor) ->
         if d.Ia.ifield = field_pathlets then
           match d.Ia.ivalue with
           | Value.List vs -> Some (d.Ia.island, List.filter_map of_value vs)
           | _ -> None
         else None)

let decision_module ~island ~exported =
  let bgp = Dm.bgp () in
  { bgp with
    Dm.protocol;
    contribute =
      (fun ~me:_ ia ->
        match exported () with
        | [] -> ia
        | pathlets -> attach ~island pathlets ia) }

let translation ~island ~origin_asn ~next_hop =
  Dbgp_core.Translation.make ~protocol
    ~ingress:(fun ia ->
      match List.concat_map snd (extract ia) with
      | [] -> None
      | pathlets -> Some pathlets)
    ~egress:(fun pathlets ia -> attach ~island pathlets ia)
    ~redistribute:(fun pathlets ->
      List.find_map delivers_to pathlets
      |> Option.map (fun prefix ->
             Ia.originate ~prefix ~origin_asn ~next_hop ()))
