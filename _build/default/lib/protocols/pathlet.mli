(** Pathlet Routing deployed over D-BGP (replacement protocol; Godfrey
    et al., SIGCOMM '09).

    Islands expose within-island path fragments — {e pathlets} — named
    by forwarding IDs (FIDs).  Other islands combine them into larger
    pathlets or end-to-end paths, and sources pick routes by encoding
    FID sequences in packet headers (Sections 2.4 and 4).

    Within an island, the protocol's native advertisement carries a
    single pathlet.  At island borders, translation modules map between
    that format and IAs whose island descriptors carry many pathlets
    (Section 6.1: the paper's gulf support needed exactly this
    redistribution + translation machinery). *)

val protocol : Dbgp_types.Protocol_id.t

val field_pathlets : string
(** Island descriptor listing an island's exported pathlets. *)

type hop =
  | Router of string                 (** a (border) router identifier *)
  | Deliver of Dbgp_types.Prefix.t   (** terminal delivery to a prefix *)

type pathlet = { fid : int; hops : hop list }
(** [hops] is non-empty; [Deliver] may only appear last. *)

val make : fid:int -> hop list -> pathlet
(** @raise Invalid_argument on an empty hop list or a non-terminal
    [Deliver]. *)

val entry : pathlet -> hop
val exit_hop : pathlet -> hop
val delivers_to : pathlet -> Dbgp_types.Prefix.t option

val compose : fid:int -> pathlet -> pathlet -> pathlet
(** [compose ~fid a b] joins [a] and [b] where [a] exits at [b]'s entry
    router.  @raise Invalid_argument if they do not connect. *)

val to_value : pathlet -> Dbgp_core.Value.t
val of_value : Dbgp_core.Value.t -> pathlet option
val pp : Format.formatter -> pathlet -> unit
val equal : pathlet -> pathlet -> bool

(** {1 Pathlet store}

    Each participating router/AS keeps the pathlets it has learned. *)

module Store : sig
  type t

  val create : unit -> t
  val add : t -> pathlet -> unit
  (** Replaces any pathlet with the same FID. *)

  val find : t -> fid:int -> pathlet option
  val all : t -> pathlet list
  val size : t -> int

  val routes_to :
    t -> from:string -> dest:Dbgp_types.Prefix.t -> pathlet list list
  (** Every loop-free FID sequence starting at router [from] whose last
      pathlet delivers to [dest]. *)
end

(** {1 D-BGP integration} *)

val attach :
  island:Dbgp_types.Island_id.t -> pathlet list -> Dbgp_core.Ia.t -> Dbgp_core.Ia.t
(** Record the island's exported pathlets in the IA. *)

val extract : Dbgp_core.Ia.t -> (Dbgp_types.Island_id.t * pathlet list) list
(** All pathlets advertised by any island in the IA. *)

val decision_module :
  island:Dbgp_types.Island_id.t ->
  exported:(unit -> pathlet list) ->
  Dbgp_core.Decision_module.t
(** The border decision module: inter-island selection falls back to
    BGP's shortest-path rule (the single-best-path limitation of
    Section 3.5); [exported] supplies the pathlets this island currently
    exports, attached on contribution. *)

val translation :
  island:Dbgp_types.Island_id.t ->
  origin_asn:Dbgp_types.Asn.t ->
  next_hop:Dbgp_types.Ipv4.t ->
  pathlet list Dbgp_core.Translation.t
(** Ingress: harvest pathlets from an IA.  Egress: attach the island's
    pathlets.  Redistribute: a plain-BGP IA for any prefix one of the
    pathlets delivers to, preserving basic connectivity for gulf ASes. *)
