open Dbgp_types

type t = {
  post : portal:Ipv4.t -> service:string -> key:string -> Dbgp_core.Value.t -> unit;
  fetch : portal:Ipv4.t -> service:string -> key:string -> Dbgp_core.Value.t option;
  rpc : portal:Ipv4.t -> service:string -> Dbgp_core.Value.t -> Dbgp_core.Value.t option;
}

let null =
  { post = (fun ~portal:_ ~service:_ ~key:_ _ -> ());
    fetch = (fun ~portal:_ ~service:_ ~key:_ -> None);
    rpc = (fun ~portal:_ ~service:_ _ -> None) }

let in_memory () =
  let store = Hashtbl.create 32 in
  let handlers = Hashtbl.create 8 in
  let io =
    { post =
        (fun ~portal ~service ~key v ->
          Hashtbl.replace store (Ipv4.to_int portal, service, key) v);
      fetch =
        (fun ~portal ~service ~key ->
          Hashtbl.find_opt store (Ipv4.to_int portal, service, key));
      rpc =
        (fun ~portal ~service req ->
          match Hashtbl.find_opt handlers (Ipv4.to_int portal, service) with
          | None -> None
          | Some f -> f req) }
  in
  let register ~portal ~service f =
    Hashtbl.replace handlers (Ipv4.to_int portal, service) f
  in
  (io, register)
