(** Out-of-band portal access, abstracted.

    Two-way and custom protocols (Wiser's cost exchange, MIRO's service
    negotiation) communicate outside D-BGP advertisements via portals.
    Protocol implementations accept this record so they stay independent
    of the transport; the netsim lookup service provides the standard
    implementation, and tests can substitute in-memory fakes or
    fault-injecting wrappers. *)

type t = {
  post : portal:Dbgp_types.Ipv4.t -> service:string -> key:string ->
    Dbgp_core.Value.t -> unit;
  fetch : portal:Dbgp_types.Ipv4.t -> service:string -> key:string ->
    Dbgp_core.Value.t option;
  rpc : portal:Dbgp_types.Ipv4.t -> service:string -> Dbgp_core.Value.t ->
    Dbgp_core.Value.t option;
}

val null : t
(** Discards posts, returns [None] everywhere — the behaviour when the
    portal is unreachable across the gulf. *)

val in_memory : unit -> t * (portal:Dbgp_types.Ipv4.t -> service:string ->
  (Dbgp_core.Value.t -> Dbgp_core.Value.t option) -> unit)
(** A self-contained store for unit tests: returns the io record and a
    handler-registration function. *)
