open Dbgp_types
module Ia = Dbgp_core.Ia
module Value = Dbgp_core.Value
module Dm = Dbgp_core.Decision_module

let protocol = Protocol_id.r_bgp
let field_backup = "rbgp-backup"

let elem_to_value = function
  | Path_elem.As a -> Value.Pair (Value.Int 0, Value.Asn a)
  | Path_elem.Island i -> Value.Pair (Value.Int 1, Value.Str (Island_id.to_string i))
  | Path_elem.As_set s -> Value.Pair (Value.Int 2, Value.List (List.map (fun a -> Value.Asn a) s))

let elem_of_value = function
  | Value.Pair (Value.Int 0, Value.Asn a) -> Some (Path_elem.As a)
  | Value.Pair (Value.Int 1, Value.Str s) -> Some (Path_elem.Island (Island_id.named s))
  | Value.Pair (Value.Int 2, Value.List vs) ->
    let asns = List.filter_map Value.as_asn vs in
    if List.length asns = List.length vs then Some (Path_elem.as_set asns) else None
  | _ -> None

let backup_of ia =
  match Ia.find_path_descriptor ~proto:protocol ~field:field_backup ia with
  | Some (Value.List vs) ->
    let elems = List.filter_map elem_of_value vs in
    if List.length elems = List.length vs && elems <> [] then Some elems else None
  | _ -> None

let set_backup path ia =
  Ia.set_path_descriptor ~owners:[ protocol ] ~field:field_backup
    (Value.List (List.map elem_to_value path))
    ia

let asns_of path =
  List.concat_map
    (function
      | Path_elem.As a -> [ a ]
      | Path_elem.As_set s -> s
      | Path_elem.Island _ -> [])
    path

let overlap a b =
  let sa = Asn.Set.of_list (asns_of a) in
  List.length (List.filter (fun x -> Asn.Set.mem x sa) (asns_of b))

let most_disjoint ~primary cands =
  let score c =
    (overlap primary c.Dm.ia.Ia.path_vector, Dm.candidate_path_length c)
  in
  match cands with
  | [] -> None
  | c :: rest ->
    Some
      (List.fold_left
         (fun acc x ->
           let cmp = compare (score x) (score acc) in
           if cmp < 0 || (cmp = 0 && Dm.compare_tiebreak x acc > 0) then x
           else acc)
         c rest)

(* Per-prefix memory of the most recent selection's backup, filled during
   select and consumed by contribute. *)
let decision_module () =
  let bgp = Dm.bgp () in
  let backups : (string, Path_elem.t list) Hashtbl.t = Hashtbl.create 16 in
  let select ~prefix cands =
    match bgp.Dm.select ~prefix cands with
    | None ->
      Hashtbl.remove backups (Prefix.to_string prefix);
      None
    | Some best ->
      let others = List.filter (fun c -> c != best) cands in
      ( match most_disjoint ~primary:best.Dm.ia.Ia.path_vector others with
        | Some alt ->
          Hashtbl.replace backups (Prefix.to_string prefix)
            alt.Dm.ia.Ia.path_vector
        | None -> Hashtbl.remove backups (Prefix.to_string prefix) );
      Some best
  in
  let contribute ~me ia =
    match Hashtbl.find_opt backups (Prefix.to_string ia.Ia.prefix) with
    | Some path -> set_backup (Path_elem.As me :: path) ia
    | None -> ia
  in
  { bgp with Dm.protocol; select; contribute }

let failover = backup_of
