(** An R-BGP-like critical fix: pre-computed backup paths for fast
    failover (Kushman et al., NSDI '07; Table 1's "extra backup paths").

    Each upgraded AS advertises, alongside its best path, one {e failover
    path} — its best alternative that is maximally disjoint from the
    primary.  A downstream AS that loses its primary can switch to the
    advertised backup immediately, without waiting for path-vector
    re-convergence.  R-BGP is a two-way protocol in full generality; like
    Wiser, the downstream direction would run out-of-band of D-BGP
    (Section 3.5's limitation), which this module does not need for the
    failover-path dissemination itself. *)

val protocol : Dbgp_types.Protocol_id.t

val field_backup : string
(** Path descriptor: the advertised failover path (a path vector). *)

val backup_of : Dbgp_core.Ia.t -> Dbgp_types.Path_elem.t list option

val set_backup :
  Dbgp_types.Path_elem.t list -> Dbgp_core.Ia.t -> Dbgp_core.Ia.t

val most_disjoint :
  primary:Dbgp_types.Path_elem.t list ->
  Dbgp_core.Decision_module.candidate list ->
  Dbgp_core.Decision_module.candidate option
(** The candidate sharing the fewest ASes with the primary (ties to the
    shorter path, then the usual deterministic tie-break). *)

val decision_module : unit -> Dbgp_core.Decision_module.t
(** Selects by BGP's rules; remembers, per prefix, the runner-up that is
    most disjoint from the winner and attaches its path vector as the
    backup descriptor on contribution. *)

val failover : Dbgp_core.Ia.t -> Dbgp_types.Path_elem.t list option
(** What a downstream AS switches to when the primary dies: the backup,
    checked loop-free against nothing (the caller revalidates against
    its own AS). *)
