open Dbgp_types
module Ia = Dbgp_core.Ia
module Value = Dbgp_core.Value
module Header = Dbgp_dataplane.Header

let protocol = Protocol_id.ron
let field_node = "ron-node"

type t = {
  members : (int, unit) Hashtbl.t;
  latencies : (int * int, float) Hashtbl.t;
}

let create () = { members = Hashtbl.create 8; latencies = Hashtbl.create 32 }
let add_node t a = Hashtbl.replace t.members (Ipv4.to_int a) ()

let observe t a b ~latency_ms =
  if latency_ms < 0. then invalid_arg "Ron.observe: negative latency";
  add_node t a;
  add_node t b;
  Hashtbl.replace t.latencies (Ipv4.to_int a, Ipv4.to_int b) latency_ms

let nodes t =
  Hashtbl.fold (fun a () acc -> Ipv4.of_int a :: acc) t.members []
  |> List.sort Ipv4.compare

let latency t a b = Hashtbl.find_opt t.latencies (Ipv4.to_int a, Ipv4.to_int b)

type route = Direct of float | Via of Ipv4.t * float

let best_route t ~src ~dst =
  let direct = latency t src dst in
  let detours =
    List.filter_map
      (fun relay ->
        if Ipv4.equal relay src || Ipv4.equal relay dst then None
        else
          match (latency t src relay, latency t relay dst) with
          | Some a, Some b -> Some (Via (relay, a +. b))
          | _ -> None)
      (nodes t)
  in
  let candidates =
    (match direct with Some d -> [ Direct d ] | None -> []) @ detours
  in
  let total = function Direct d -> d | Via (_, d) -> d in
  match candidates with
  | [] -> None
  | c :: rest ->
    Some (List.fold_left (fun acc x -> if total x < total acc then x else acc) c rest)

let advertise ~island ~node ia =
  Ia.add_island_descriptor ~island ~proto:protocol ~field:field_node
    (Value.Addr node) ia

let discover ia =
  Ia.find_island_descriptors ~proto:protocol ia
  |> List.filter_map (fun (d : Ia.island_descriptor) ->
         if d.Ia.ifield = field_node then
           Option.map (fun a -> (d.Ia.island, a)) (Value.as_addr d.Ia.ivalue)
         else None)

let headers_for route ~src ~dst =
  match route with
  | Direct _ -> [ Header.Ipv4_hdr { src; dst } ]
  | Via (relay, _) ->
    [ Header.Tunnel_hdr { endpoint = relay }; Header.Ipv4_hdr { src; dst } ]
