(** A RON-like resilient overlay (Andersen et al., SOSP '01 — Table 1's
    "creates low-latency paths").

    Overlay nodes probe each other and route application traffic via a
    one-hop detour when it beats the direct Internet path — the classic
    overlay workaround for BGP's rigidity the paper's introduction
    contrasts with in-band evolvability.  Discovery of overlay members
    across gulfs rides, like every custom protocol here, in island
    descriptors. *)

val protocol : Dbgp_types.Protocol_id.t

val field_node : string
(** Island descriptor: the island's overlay node address. *)

type t

val create : unit -> t

val add_node : t -> Dbgp_types.Ipv4.t -> unit

val observe :
  t -> Dbgp_types.Ipv4.t -> Dbgp_types.Ipv4.t -> latency_ms:float -> unit
(** Record a (directed) probe result; later observations replace earlier
    ones.  @raise Invalid_argument on negative latency. *)

val nodes : t -> Dbgp_types.Ipv4.t list

type route =
  | Direct of float                      (** latency of the direct path *)
  | Via of Dbgp_types.Ipv4.t * float     (** one-hop detour and its total *)

val best_route :
  t -> src:Dbgp_types.Ipv4.t -> dst:Dbgp_types.Ipv4.t -> route option
(** The better of the direct path and the best one-hop detour through a
    probed overlay node; [None] when nothing has been probed. *)

val advertise :
  island:Dbgp_types.Island_id.t -> node:Dbgp_types.Ipv4.t ->
  Dbgp_core.Ia.t -> Dbgp_core.Ia.t

val discover : Dbgp_core.Ia.t -> (Dbgp_types.Island_id.t * Dbgp_types.Ipv4.t) list

val headers_for :
  route -> src:Dbgp_types.Ipv4.t -> dst:Dbgp_types.Ipv4.t ->
  Dbgp_dataplane.Header.stack
(** A detour becomes a tunnel to the relay; direct is plain IPv4. *)
