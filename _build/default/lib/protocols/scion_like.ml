open Dbgp_types
module Ia = Dbgp_core.Ia
module Value = Dbgp_core.Value
module Dm = Dbgp_core.Decision_module

let protocol = Protocol_id.scion
let field_paths = "scion-paths"

type path = string list

let path_to_value p = Value.List (List.map (fun r -> Value.Str r) p)

let path_of_value = function
  | Value.List hops ->
    let rs = List.filter_map Value.as_str hops in
    if List.length rs = List.length hops then Some rs else None
  | _ -> None

let attach ~island paths ia =
  Ia.add_island_descriptor ~island ~proto:protocol ~field:field_paths
    (Value.List (List.map path_to_value paths))
    ia

let extract ~island ia =
  match Ia.find_island_descriptor ~island ~proto:protocol ~field:field_paths ia with
  | Some (Value.List vs) -> List.filter_map path_of_value vs
  | _ -> []

let extract_all ia =
  Ia.find_island_descriptors ~proto:protocol ia
  |> List.filter_map (fun (d : Ia.island_descriptor) ->
         if d.Ia.ifield = field_paths then
           match d.Ia.ivalue with
           | Value.List vs -> Some (d.Ia.island, List.filter_map path_of_value vs)
           | _ -> None
         else None)

let choose_path paths =
  match
    List.sort
      (fun a b ->
        match Int.compare (List.length a) (List.length b) with
        | 0 -> List.compare String.compare a b
        | c -> c)
      paths
  with
  | [] -> None
  | p :: _ -> Some p

let decision_module ~island ~exported =
  let bgp = Dm.bgp () in
  { bgp with
    Dm.protocol;
    contribute =
      (fun ~me:_ ia ->
        match exported () with [] -> ia | paths -> attach ~island paths ia) }

let translation ~island ~origin_asn ~next_hop ~prefix =
  Dbgp_core.Translation.make ~protocol
    ~ingress:(fun ia ->
      match List.concat_map snd (extract_all ia) with
      | [] -> None
      | paths -> Some paths)
    ~egress:(fun paths ia -> attach ~island paths ia)
    ~redistribute:(fun paths ->
      if paths = [] then None
      else Some (Ia.originate ~prefix ~origin_asn ~next_hop ()))
