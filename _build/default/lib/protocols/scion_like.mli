(** A SCION-like path-based replacement protocol over D-BGP.

    Path-based protocols expose multiple within-island paths to sources,
    which encode the chosen one in packet headers (Sections 2.4 and
    3.4).  BGP's single-best-path limitation still forces one
    inter-island path per prefix at island borders (Section 3.5), but
    the island descriptor carries every within-island path, so a
    receiving SCION island regains intra-island path choice — exactly
    the Figure 3 -> Section 3.4 recovery. *)

val protocol : Dbgp_types.Protocol_id.t

val field_paths : string
(** Island descriptor: the list of within-island paths, each a list of
    border-router identifiers. *)

type path = string list
(** Border-router hops, ingress first. *)

val attach :
  island:Dbgp_types.Island_id.t -> path list -> Dbgp_core.Ia.t -> Dbgp_core.Ia.t

val extract :
  island:Dbgp_types.Island_id.t -> Dbgp_core.Ia.t -> path list
(** The within-island paths advertised by one island ([[]] if none). *)

val extract_all :
  Dbgp_core.Ia.t -> (Dbgp_types.Island_id.t * path list) list

val choose_path : path list -> path option
(** Source-side selection: the shortest advertised path (deterministic
    tie-break on hop names). *)

val decision_module :
  island:Dbgp_types.Island_id.t ->
  exported:(unit -> path list) ->
  Dbgp_core.Decision_module.t
(** Border module: BGP-rule inter-island selection; contributes the
    island's current within-island path set. *)

val translation :
  island:Dbgp_types.Island_id.t ->
  origin_asn:Dbgp_types.Asn.t ->
  next_hop:Dbgp_types.Ipv4.t ->
  prefix:Dbgp_types.Prefix.t ->
  path list Dbgp_core.Translation.t
(** Ingress: read the paths other islands advertise.  Egress: attach my
    island's paths.  Redistribute: one plain-BGP route for [prefix]
    (the one path BGP can carry, Figure 3's "Redist. Path"). *)
