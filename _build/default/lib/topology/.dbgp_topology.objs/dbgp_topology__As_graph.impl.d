lib/topology/as_graph.ml: Array Format Fun Hashtbl Int List Printf
