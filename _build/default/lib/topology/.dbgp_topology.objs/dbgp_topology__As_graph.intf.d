lib/topology/as_graph.mli: Format
