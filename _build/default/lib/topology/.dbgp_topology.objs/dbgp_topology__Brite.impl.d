lib/topology/brite.ml: Array As_graph Dbgp_types Fun Hashtbl List Prng
