lib/topology/brite.mli: As_graph Dbgp_types
