lib/topology/link_state.ml: Hashtbl List Map Option String
