lib/topology/link_state.mli:
