lib/topology/routing.ml: Array As_graph Int List Option
