lib/topology/routing.mli: As_graph
