type view = Provider_of_me | Customer_of_me | Peer_of_me

type t = { n : int; adj : (int, view) Hashtbl.t array }

let create n =
  if n <= 0 then invalid_arg "As_graph.create: need at least one AS"
  else { n; adj = Array.init n (fun _ -> Hashtbl.create 4) }

let size t = t.n

let check_id t v =
  if v < 0 || v >= t.n then invalid_arg (Printf.sprintf "As_graph: bad AS id %d" v)

let set_rel t a b view_of_b_from_a view_of_a_from_b =
  check_id t a;
  check_id t b;
  if a = b then invalid_arg "As_graph: self-link";
  Hashtbl.replace t.adj.(a) b view_of_b_from_a;
  Hashtbl.replace t.adj.(b) a view_of_a_from_b

let add_customer_provider t ~customer ~provider =
  set_rel t customer provider Provider_of_me Customer_of_me

let add_peering t a b = set_rel t a b Peer_of_me Peer_of_me

let neighbors t v =
  check_id t v;
  Hashtbl.fold (fun u view acc -> (u, view) :: acc) t.adj.(v) []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

let view_of t ~me ~neighbor =
  check_id t me;
  Hashtbl.find_opt t.adj.(me) neighbor

let degree t v =
  check_id t v;
  Hashtbl.length t.adj.(v)

let filter_nbrs t v want =
  neighbors t v |> List.filter_map (fun (u, view) -> if view = want then Some u else None)

let providers t v = filter_nbrs t v Provider_of_me
let customers t v = filter_nbrs t v Customer_of_me
let peers t v = filter_nbrs t v Peer_of_me

let edge_count t =
  Array.fold_left (fun acc tbl -> acc + Hashtbl.length tbl) 0 t.adj / 2

let fold_edges f t acc =
  let acc = ref acc in
  for a = 0 to t.n - 1 do
    Hashtbl.iter (fun b view -> if a < b then acc := f a b view !acc) t.adj.(a)
  done;
  !acc

let is_connected t =
  let seen = Array.make t.n false in
  let rec dfs v =
    if not seen.(v) then begin
      seen.(v) <- true;
      Hashtbl.iter (fun u _ -> dfs u) t.adj.(v)
    end
  in
  dfs 0;
  Array.for_all Fun.id seen

let stubs t =
  List.init t.n Fun.id |> List.filter (fun v -> customers t v = [])

let pp ppf t =
  Format.fprintf ppf "@[<v>AS graph: %d ASes, %d links@," t.n (edge_count t);
  fold_edges
    (fun a b view () ->
      let rel =
        match view with
        | Customer_of_me -> Printf.sprintf "%d -> %d (provider->customer)" a b
        | Provider_of_me -> Printf.sprintf "%d -> %d (customer->provider)" a b
        | Peer_of_me -> Printf.sprintf "%d -- %d (peer)" a b
      in
      Format.fprintf ppf "%s@," rel)
    t ();
  Format.fprintf ppf "@]"
