(** AS-level topology annotated with business relationships.

    Nodes are dense integer AS indices [0 .. n-1] (callers map these to
    {!Dbgp_types.Asn.t} as needed).  Each link is either a
    customer-provider link or a peering link, the two relationship kinds
    of the Gao-Rexford model.  The paper's evaluation topology (Section
    6.3) is annotated with customer/provider relationships only; peering
    is supported for generality and for hand-built scenario graphs. *)

type t

(** How a neighbor relates to this AS. *)
type view =
  | Provider_of_me  (** the neighbor is my provider *)
  | Customer_of_me  (** the neighbor is my customer *)
  | Peer_of_me      (** the neighbor is my (settlement-free) peer *)

val create : int -> t
(** [create n] is an edgeless graph over AS indices [0 .. n-1]. *)

val size : t -> int

val add_customer_provider : t -> customer:int -> provider:int -> unit
(** Adds a transit link.  Idempotent; replaces any previous relationship
    between the two.  @raise Invalid_argument on self-links or bad ids. *)

val add_peering : t -> int -> int -> unit

val neighbors : t -> int -> (int * view) list
(** All neighbors of an AS with their relationship to it. *)

val view_of : t -> me:int -> neighbor:int -> view option
val degree : t -> int -> int
val providers : t -> int -> int list
val customers : t -> int -> int list
val peers : t -> int -> int list
val edge_count : t -> int
(** Number of undirected links. *)

val is_connected : t -> bool
val fold_edges : (int -> int -> view -> 'a -> 'a) -> t -> 'a -> 'a
(** Each undirected link visited once as [f a b view_of_b_from_a]. *)

val stubs : t -> int list
(** ASes with no customers — the topology's leaves; the paper measures
    Figure 9 benefits at upgraded stubs. *)

val pp : Format.formatter -> t -> unit
