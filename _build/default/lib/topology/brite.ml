open Dbgp_types

type params = { n : int; m : int; alpha : float; beta : float; plane : float }

let default = { n = 1000; m = 2; alpha = 0.15; beta = 0.25; plane = 1000. }

let generate rng p =
  if p.n < 2 then invalid_arg "Brite.generate: need at least 2 ASes";
  if p.m < 1 then invalid_arg "Brite.generate: m must be >= 1";
  if p.alpha <= 0. || p.alpha > 1. then invalid_arg "Brite.generate: bad alpha";
  if p.beta <= 0. then invalid_arg "Brite.generate: bad beta";
  let xs = Array.init p.n (fun _ -> Prng.float rng p.plane) in
  let ys = Array.init p.n (fun _ -> Prng.float rng p.plane) in
  let l = p.plane *. sqrt 2. in
  let dist i j = sqrt (((xs.(i) -. xs.(j)) ** 2.) +. ((ys.(i) -. ys.(j)) ** 2.)) in
  let waxman i j = p.alpha *. exp (-.dist i j /. (p.beta *. l)) in
  (* Incremental growth: node v joins to [min v m] distinct earlier nodes,
     drawn with probability proportional to the Waxman factor. *)
  let edges = ref [] in
  for v = 1 to p.n - 1 do
    let chosen = Hashtbl.create 4 in
    let want = min v p.m in
    let weights = Array.init v (fun u -> waxman v u) in
    while Hashtbl.length chosen < want do
      let total =
        let t = ref 0. in
        for u = 0 to v - 1 do
          if not (Hashtbl.mem chosen u) then t := !t +. weights.(u)
        done;
        !t
      in
      if total <= 0. then begin
        (* Degenerate weights: fall back to a uniform draw. *)
        let remaining =
          List.init v Fun.id |> List.filter (fun u -> not (Hashtbl.mem chosen u))
        in
        let u = List.nth remaining (Prng.int rng (List.length remaining)) in
        Hashtbl.replace chosen u ()
      end
      else begin
        let target = Prng.float rng total in
        let acc = ref 0. and pick = ref (-1) in
        for u = 0 to v - 1 do
          if !pick < 0 && not (Hashtbl.mem chosen u) then begin
            acc := !acc +. weights.(u);
            if !acc >= target then pick := u
          end
        done;
        let u = if !pick < 0 then v - 1 else !pick in
        Hashtbl.replace chosen u ()
      end
    done;
    Hashtbl.iter (fun u () -> edges := (v, u) :: !edges) chosen
  done;
  (* Orient links customer -> provider.  Rank by final degree (ties by
     lower id); the higher-ranked endpoint is the provider.  A total order
     on endpoints makes the provider hierarchy acyclic. *)
  let deg = Array.make p.n 0 in
  List.iter
    (fun (a, b) ->
      deg.(a) <- deg.(a) + 1;
      deg.(b) <- deg.(b) + 1)
    !edges;
  let rank v = (deg.(v), -v) in
  let g = As_graph.create p.n in
  List.iter
    (fun (a, b) ->
      if rank a < rank b then As_graph.add_customer_provider g ~customer:a ~provider:b
      else As_graph.add_customer_provider g ~customer:b ~provider:a)
    !edges;
  g
