type lsa = { router : string; links : (string * int) list; seq : int }

let lsa ~router ~seq links =
  List.iter
    (fun (nbr, w) ->
      if w <= 0 then invalid_arg "Link_state.lsa: weight must be positive";
      if nbr = router then invalid_arg "Link_state.lsa: self-link")
    links;
  { router; links; seq }

type t = { db : (string, lsa) Hashtbl.t }

let create () = { db = Hashtbl.create 16 }

let install t l =
  match Hashtbl.find_opt t.db l.router with
  | Some existing when existing.seq >= l.seq -> `Stale
  | _ ->
    Hashtbl.replace t.db l.router l;
    `Installed

let routers t =
  Hashtbl.fold (fun r _ acc -> r :: acc) t.db [] |> List.sort String.compare

let raw_links t r =
  match Hashtbl.find_opt t.db r with None -> [] | Some l -> l.links

let links_of t r =
  (* Two-way check: neighbor must advertise the link back. *)
  raw_links t r
  |> List.filter (fun (nbr, _) -> List.mem_assoc r (raw_links t nbr))

module Pq = Map.Make (struct
  type t = int * string

  let compare = compare
end)

let shortest_path t ~src ~dst =
  if Hashtbl.find_opt t.db src = None then None
  else begin
    let dist = Hashtbl.create 16 and prev = Hashtbl.create 16 in
    Hashtbl.replace dist src 0;
    let pq = ref (Pq.add (0, src) () Pq.empty) in
    let finished = Hashtbl.create 16 in
    let result = ref None in
    while !result = None && not (Pq.is_empty !pq) do
      let (d, u), () = Pq.min_binding !pq in
      pq := Pq.remove (d, u) !pq;
      if not (Hashtbl.mem finished u) then begin
        Hashtbl.replace finished u ();
        if u = dst then result := Some d
        else
          List.iter
            (fun (v, w) ->
              let nd = d + w in
              let better =
                match Hashtbl.find_opt dist v with
                | None -> true
                | Some old -> nd < old
              in
              if better then begin
                Hashtbl.replace dist v nd;
                Hashtbl.replace prev v u;
                pq := Pq.add (nd, v) () !pq
              end)
            (links_of t u)
      end
    done;
    match !result with
    | None -> None
    | Some total ->
      let rec walk v acc =
        if v = src then v :: acc
        else
          match Hashtbl.find_opt prev v with
          | Some u -> walk u (v :: acc)
          | None -> acc (* unreachable: src = dst handled below *)
      in
      Some (walk dst [], total)
  end

let distance t ~src ~dst = Option.map snd (shortest_path t ~src ~dst)
