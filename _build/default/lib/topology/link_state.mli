(** An intra-island link-state routing substrate.

    Section 3.1 allows islands to run non-path-vector protocols
    internally — e.g. HLP's hybrid link-state/path-vector design, the
    canonical reason islands list an island ID instead of member ASes in
    the D-BGP path vector (their within-island paths cannot be expressed
    as a path vector).  This module provides the substrate: a link-state
    database with sequence-numbered LSAs (flooding semantics) and
    Dijkstra shortest paths over router identifiers. *)

(** A link-state advertisement: one router's adjacency snapshot. *)
type lsa = {
  router : string;
  links : (string * int) list;  (** neighbor, positive weight *)
  seq : int;                    (** monotone per-router sequence number *)
}

val lsa : router:string -> seq:int -> (string * int) list -> lsa
(** @raise Invalid_argument on non-positive weights or self-links. *)

type t
(** A link-state database. *)

val create : unit -> t

val install : t -> lsa -> [ `Installed | `Stale ]
(** Flooding endpoint: an LSA replaces the router's entry iff its
    sequence number is strictly newer. *)

val routers : t -> string list
val links_of : t -> string -> (string * int) list
(** Bidirectional view: a link is usable only if both endpoints
    advertise it (the standard two-way connectivity check). *)

val shortest_path : t -> src:string -> dst:string -> (string list * int) option
(** Dijkstra over the two-way-checked topology: the router sequence
    (inclusive) and its total weight.  [None] if unreachable. *)

val distance : t -> src:string -> dst:string -> int option
