type klass = Origin | From_customer | From_peer | From_provider

type 'a route = { path : int list; klass : klass; payload : 'a }

let exportable k (view : As_graph.view) =
  match k with
  | Origin | From_customer -> true
  | From_peer | From_provider -> ( match view with
                                   | As_graph.Customer_of_me -> true
                                   | As_graph.Provider_of_me | As_graph.Peer_of_me -> false )

let klass_of_view = function
  | As_graph.Customer_of_me -> From_customer
  | As_graph.Peer_of_me -> From_peer
  | As_graph.Provider_of_me -> From_provider

let next_hop r = match r.path with _ :: nh :: _ -> nh | _ -> max_int

let shortest_path_prefer ~at:_ a b =
  match Int.compare (List.length b.path) (List.length a.path) with
  | 0 -> Int.compare (next_hop b) (next_hop a)
  | c -> c

let klass_rank = function
  | Origin -> 3
  | From_customer -> 2
  | From_peer -> 1
  | From_provider -> 0

let classful_prefer ~at a b =
  match Int.compare (klass_rank a.klass) (klass_rank b.klass) with
  | 0 -> shortest_path_prefer ~at a b
  | c -> c

let compute g ~dest ~origin ~extend ~prefer =
  let n = As_graph.size g in
  if dest < 0 || dest >= n then invalid_arg "Routing.compute: bad destination";
  let best : 'a route option array = Array.make n None in
  best.(dest) <- Some { path = [ dest ]; klass = Origin; payload = origin };
  let changed = ref true in
  let rounds = ref 0 in
  let max_rounds = 2 * n in
  while !changed && !rounds < max_rounds do
    changed := false;
    incr rounds;
    let next = Array.make n None in
    next.(dest) <- best.(dest);
    for v = 0 to n - 1 do
      if v <> dest then begin
        let consider cand =
          match next.(v) with
          | None -> next.(v) <- Some cand
          | Some cur -> if prefer ~at:v cand cur > 0 then next.(v) <- Some cand
        in
        List.iter
          (fun (u, view_of_u) ->
            match best.(u) with
            | None -> ()
            | Some r ->
              (* u exports to v iff the valley-free rule allows a route of
                 r's class to flow toward v; v's view of u determines the
                 class the route acquires at v. *)
              let view_of_v_from_u =
                match view_of_u with
                | As_graph.Customer_of_me -> As_graph.Provider_of_me
                | As_graph.Provider_of_me -> As_graph.Customer_of_me
                | As_graph.Peer_of_me -> As_graph.Peer_of_me
              in
              if exportable r.klass view_of_v_from_u && not (List.mem v r.path)
              then
                match extend ~at:v ~from:u r.payload with
                | None -> ()
                | Some payload ->
                  consider
                    { path = v :: r.path;
                      klass = klass_of_view view_of_u;
                      payload })
          (As_graph.neighbors g v)
      end
    done;
    for v = 0 to n - 1 do
      let same =
        match (best.(v), next.(v)) with
        | None, None -> true
        | Some a, Some b -> a.path = b.path && a.klass = b.klass && a.payload = b.payload
        | _ -> false
      in
      if not same then begin
        best.(v) <- next.(v);
        changed := true
      end
    done
  done;
  best

let is_valley_free g path =
  let rec steps = function
    | a :: (b :: _ as rest) ->
      ( match As_graph.view_of g ~me:a ~neighbor:b with
        | None -> None
        | Some v -> Option.map (fun tl -> v :: tl) (steps rest) )
    | _ -> Some []
  in
  match steps path with
  | None -> false
  | Some views ->
    (* Traffic travels source -> dest: uphill (to provider) steps, at most
       one peer step, then downhill (to customer) steps. *)
    let rec uphill = function
      | As_graph.Provider_of_me :: rest -> uphill rest
      | rest -> peer rest
    and peer = function
      | As_graph.Peer_of_me :: rest -> downhill rest
      | rest -> downhill rest
    and downhill = function
      | [] -> true
      | As_graph.Customer_of_me :: rest -> downhill rest
      | As_graph.Provider_of_me :: _ | As_graph.Peer_of_me :: _ -> false
    in
    uphill views
