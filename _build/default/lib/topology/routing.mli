(** Destination-rooted, policy-compliant route computation.

    A generic path-vector propagation engine over an {!As_graph.t}: routes
    to a destination flow outward exactly as path advertisements do,
    subject to the Gao-Rexford valley-free export rule, with each AS
    selecting its best candidate under a caller-supplied preference.
    The Section 6.3 benefit simulations instantiate this engine once per
    archetype and baseline; the netsim integration tests use it as a
    reference model to validate the full D-BGP speaker pipeline. *)

(** How a route was learned, which governs who it may be exported to. *)
type klass =
  | Origin         (** I am the destination. *)
  | From_customer  (** Learned from a customer: exportable to everyone. *)
  | From_peer      (** Learned from a peer: exportable to customers only. *)
  | From_provider  (** Learned from a provider: exportable to customers only. *)

type 'a route = {
  path : int list;   (** AS-level path, this AS first, destination last. *)
  klass : klass;
  payload : 'a;      (** Caller-defined metric carried with the route. *)
}

val exportable : klass -> As_graph.view -> bool
(** [exportable k view] — may a route of class [k] be advertised to a
    neighbor standing in [view] to me?  The valley-free rule: customer
    and origin routes go to everyone; peer and provider routes go only to
    my customers. *)

val klass_of_view : As_graph.view -> klass
(** The class a route acquires when learned from a neighbor in [view]. *)

val compute :
  As_graph.t ->
  dest:int ->
  origin:'a ->
  extend:(at:int -> from:int -> 'a -> 'a option) ->
  prefer:(at:int -> 'a route -> 'a route -> int) ->
  'a route option array
(** [compute g ~dest ~origin ~extend ~prefer] runs synchronous
    Bellman-Ford-style rounds until a fixed point (or a round bound of
    [2 * size g], which suffices for monotone preferences and bounds
    pathological ones).  [extend ~at ~from payload] is the metric the AS
    [at] records when accepting a route from neighbor [from]; [None]
    rejects the candidate.  [prefer ~at a b > 0] means [a] is strictly
    better at AS [at].  Loops are rejected by the engine (path-vector
    rule).  The result maps each AS to its selected route, [None] if the
    destination is unreachable under policy. *)

val shortest_path_prefer : at:int -> 'a route -> 'a route -> int
(** The paper's simulator preference for non-upgraded ASes: shorter AS
    path wins; ties broken toward the lower next-hop id (deterministic,
    mirroring lowest-router-id tie-breaking). *)

val classful_prefer : at:int -> 'a route -> 'a route -> int
(** Full Gao-Rexford preference: customer > peer > provider, then
    shortest path, then lowest next hop.  Used by hand-built scenario
    topologies that do model business preference. *)

val is_valley_free : As_graph.t -> int list -> bool
(** Is this AS path (source first) compliant: uphill steps, at most one
    peer step, then downhill steps? *)
