lib/trie/prefix_trie.ml: Dbgp_types Ipv4 List Option Prefix
