lib/trie/prefix_trie.mli: Dbgp_types
