open Dbgp_types

(* A binary trie: the node at depth [d] along a bit path represents the
   prefix whose first [d] bits are that path.  Depth is bounded by 32, so
   path compression is unnecessary for correctness or asymptotics here. *)
type 'a t = Empty | Node of 'a option * 'a t * 'a t

let empty = Empty

let is_empty = function
  | Empty -> true
  | Node _ -> false

let node v l r =
  match (v, l, r) with None, Empty, Empty -> Empty | _ -> Node (v, l, r)

let add p value t =
  let len = Prefix.length p in
  let rec go i t =
    let v, l, r = match t with Empty -> (None, Empty, Empty) | Node (v, l, r) -> (v, l, r) in
    if i = len then Node (Some value, l, r)
    else if Prefix.bit p i then Node (v, l, go (i + 1) r)
    else Node (v, go (i + 1) l, r)
  in
  go 0 t

let update p f t =
  let len = Prefix.length p in
  let rec go i t =
    let v, l, r = match t with Empty -> (None, Empty, Empty) | Node (v, l, r) -> (v, l, r) in
    if i = len then node (f v) l r
    else if Prefix.bit p i then node v l (go (i + 1) r)
    else node v (go (i + 1) l) r
  in
  go 0 t

let remove p t = update p (fun _ -> None) t

let find p t =
  let len = Prefix.length p in
  let rec go i t =
    match t with
    | Empty -> None
    | Node (v, l, r) ->
      if i = len then v else if Prefix.bit p i then go (i + 1) r else go (i + 1) l
  in
  go 0 t

let mem p t = Option.is_some (find p t)

let addr_bit a i = Ipv4.to_int a land (1 lsl (31 - i)) <> 0

let matches addr t =
  let rec go i t acc =
    match t with
    | Empty -> acc
    | Node (v, l, r) ->
      let acc =
        match v with
        | None -> acc
        | Some x -> (Prefix.make addr i, x) :: acc
      in
      if i = 32 then acc
      else if addr_bit addr i then go (i + 1) r acc
      else go (i + 1) l acc
  in
  go 0 t []

let longest_match addr t =
  match matches addr t with [] -> None | best :: _ -> Some best

let rec fold_at p f t acc =
  match t with
  | Empty -> acc
  | Node (v, l, r) ->
    let acc = match v with None -> acc | Some x -> f p x acc in
    ( match Prefix.split p with
      | None -> acc
      | Some (lo, hi) -> fold_at hi f r (fold_at lo f l acc) )

let fold f t acc =
  (* Accumulate in reverse then flip to get prefix order without requiring
     f to be commutative. *)
  let items = fold_at Prefix.default (fun p v acc -> (p, v) :: acc) t [] in
  List.fold_left (fun acc (p, v) -> f p v acc) acc (List.rev items)

let iter f t = fold (fun p v () -> f p v) t ()
let cardinal t = fold (fun _ _ n -> n + 1) t 0
let bindings t = List.rev (fold (fun p v acc -> (p, v) :: acc) t [])
let of_list l = List.fold_left (fun t (p, v) -> add p v t) empty l

let rec map f = function
  | Empty -> Empty
  | Node (v, l, r) -> Node (Option.map f v, map f l, map f r)

let filter pred t =
  fold (fun p v acc -> if pred p v then add p v acc else acc) t empty

let covered p t =
  bindings t |> List.filter (fun (q, _) -> Prefix.subsumes p q)
