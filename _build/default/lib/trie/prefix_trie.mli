(** Immutable binary radix trie keyed by IPv4 prefixes.

    The storage structure behind every RIB and FIB in this codebase, in
    the role Quagga's route tables played for Beagle.  Supports exact
    lookup, longest-prefix match for data-plane forwarding, and ordered
    traversal for RIB dumps.  Persistent so that decision modules can
    snapshot RIB states cheaply. *)

type 'a t

val empty : 'a t
val is_empty : 'a t -> bool

val add : Dbgp_types.Prefix.t -> 'a -> 'a t -> 'a t
(** Replaces any existing binding for the exact prefix. *)

val remove : Dbgp_types.Prefix.t -> 'a t -> 'a t
val find : Dbgp_types.Prefix.t -> 'a t -> 'a option
val mem : Dbgp_types.Prefix.t -> 'a t -> bool

val update :
  Dbgp_types.Prefix.t -> ('a option -> 'a option) -> 'a t -> 'a t
(** [update p f t] applies [f] to the binding at [p]: [f None] to insert,
    [f (Some v)] to change or ([None]) delete. *)

val longest_match : Dbgp_types.Ipv4.t -> 'a t -> (Dbgp_types.Prefix.t * 'a) option
(** The most-specific prefix containing the address — the data plane's
    forwarding lookup. *)

val matches : Dbgp_types.Ipv4.t -> 'a t -> (Dbgp_types.Prefix.t * 'a) list
(** Every prefix containing the address, most-specific first. *)

val covered : Dbgp_types.Prefix.t -> 'a t -> (Dbgp_types.Prefix.t * 'a) list
(** All bindings whose prefix is subsumed by the argument. *)

val fold : (Dbgp_types.Prefix.t -> 'a -> 'b -> 'b) -> 'a t -> 'b -> 'b
(** In prefix order (network address, then length). *)

val iter : (Dbgp_types.Prefix.t -> 'a -> unit) -> 'a t -> unit
val cardinal : 'a t -> int
val bindings : 'a t -> (Dbgp_types.Prefix.t * 'a) list
val of_list : (Dbgp_types.Prefix.t * 'a) list -> 'a t
val map : ('a -> 'b) -> 'a t -> 'b t
val filter : (Dbgp_types.Prefix.t -> 'a -> bool) -> 'a t -> 'a t
