lib/types/asn.ml: Format Hashtbl Int Map Printf Set String
