lib/types/asn.mli: Format Map Set
