lib/types/ipv4.mli: Format
