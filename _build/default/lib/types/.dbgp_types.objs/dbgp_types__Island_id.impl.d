lib/types/island_id.ml: Asn Format Hashtbl Int List Map Printf Set String
