lib/types/island_id.mli: Asn Format Map Set
