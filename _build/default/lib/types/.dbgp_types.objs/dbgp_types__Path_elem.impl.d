lib/types/path_elem.ml: Asn Format Island_id List String
