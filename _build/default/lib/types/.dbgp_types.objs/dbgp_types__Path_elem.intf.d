lib/types/path_elem.mli: Asn Format Island_id
