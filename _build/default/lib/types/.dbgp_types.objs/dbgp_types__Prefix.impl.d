lib/types/prefix.ml: Format Hashtbl Int Ipv4 Map Option Printf Set String
