lib/types/prefix.mli: Format Ipv4 Map Set
