lib/types/prng.ml: Array Int64
