lib/types/prng.mli:
