lib/types/protocol_id.ml: Format Hashtbl Int List Map Printf Set
