lib/types/protocol_id.mli: Format Map Set
