type t = int

let max_asn = 0xFFFF_FFFF

let of_int_opt n = if n < 0 || n > max_asn then None else Some n

let of_int n =
  match of_int_opt n with
  | Some a -> a
  | None -> invalid_arg (Printf.sprintf "Asn.of_int: %d out of range" n)

let to_int a = a
let zero = 0

let is_private a =
  (a >= 64512 && a <= 65534) || (a >= 4_200_000_000 && a <= 4_294_967_294)

let is_reserved a =
  a = 0 || a = 23456 || a = 65535 || a = max_asn || is_private a

let compare = Int.compare
let equal = Int.equal
let hash a = Hashtbl.hash a
let to_string a = string_of_int a
let pp ppf a = Format.fprintf ppf "AS%d" a

let of_string_opt s =
  match String.index_opt s '.' with
  | None -> ( match int_of_string_opt s with
              | None -> None
              | Some n -> of_int_opt n )
  | Some i ->
    (* asdot notation: <high>.<low>, each 16-bit *)
    let hi = String.sub s 0 i and lo = String.sub s (i + 1) (String.length s - i - 1) in
    ( match (int_of_string_opt hi, int_of_string_opt lo) with
      | Some h, Some l when h >= 0 && h <= 0xFFFF && l >= 0 && l <= 0xFFFF ->
        Some ((h lsl 16) lor l)
      | _ -> None )

let of_string s =
  match of_string_opt s with
  | Some a -> a
  | None -> invalid_arg (Printf.sprintf "Asn.of_string: %S" s)

module Set = Set.Make (Int)
module Map = Map.Make (Int)
