(** Autonomous-system numbers.

    D-BGP, like modern BGP (RFC 6793), uses 4-byte AS numbers throughout.
    Values are validated on construction: an ASN is an integer in
    [\[0, 2^32 - 1\]].  ASN 0 is reserved and never appears in a path
    vector; {!val:is_reserved} identifies it and the other IANA-reserved
    blocks so filters can reject bogus advertisements. *)

type t = private int

val of_int : int -> t
(** [of_int n] validates [n] as a 4-byte AS number.
    @raise Invalid_argument if [n] is outside [\[0, 2^32 - 1\]]. *)

val of_int_opt : int -> t option
(** Like {!of_int} but returns [None] instead of raising. *)

val to_int : t -> int

val zero : t
(** The reserved ASN 0 (used only as a sentinel, never on paths). *)

val is_reserved : t -> bool
(** [is_reserved a] is true for ASN 0, AS_TRANS (23456), the private-use
    ranges 64512-65534 and 4200000000-4294967294, and 65535 /
    4294967295. *)

val is_private : t -> bool
(** True only for the two private-use ranges. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string

val of_string : string -> t
(** Parses either plain ("65001") or asdot ("1.10") notation.
    @raise Invalid_argument on malformed input. *)

val of_string_opt : string -> t option

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
