type t = int

let max_addr = 0xFFFF_FFFF

let of_int n =
  if n < 0 || n > max_addr then
    invalid_arg (Printf.sprintf "Ipv4.of_int: %d out of range" n)
  else n

let to_int a = a
let of_int32 i = Int32.to_int i land max_addr
let to_int32 a = Int32.of_int a

let of_octets a b c d =
  let ok o = o >= 0 && o <= 255 in
  if not (ok a && ok b && ok c && ok d) then
    invalid_arg "Ipv4.of_octets: octet out of range"
  else (a lsl 24) lor (b lsl 16) lor (c lsl 8) lor d

let to_octets a =
  ((a lsr 24) land 0xFF, (a lsr 16) land 0xFF, (a lsr 8) land 0xFF, a land 0xFF)

let of_string_opt s =
  match String.split_on_char '.' s with
  | [ a; b; c; d ] ->
    let parse o =
      match int_of_string_opt o with
      | Some n when n >= 0 && n <= 255 && o <> "" -> Some n
      | _ -> None
    in
    ( match (parse a, parse b, parse c, parse d) with
      | Some a, Some b, Some c, Some d -> Some (of_octets a b c d)
      | _ -> None )
  | _ -> None

let of_string s =
  match of_string_opt s with
  | Some a -> a
  | None -> invalid_arg (Printf.sprintf "Ipv4.of_string: %S" s)

let to_string a =
  let x, y, z, w = to_octets a in
  Printf.sprintf "%d.%d.%d.%d" x y z w

let pp ppf a = Format.pp_print_string ppf (to_string a)
let compare = Int.compare
let equal = Int.equal
let succ a = (a + 1) land max_addr
let any = 0
let localhost = of_octets 127 0 0 1
