(** IPv4 addresses.

    The baseline address format of today's Internet and of our D-BGP
    deployment scenarios (Section 3 of the paper assumes IPv4 as the
    baseline).  Addresses are stored as unsigned 32-bit values in a native
    [int]. *)

type t = private int

val of_int32 : int32 -> t
val to_int32 : t -> int32

val of_int : int -> t
(** @raise Invalid_argument if outside [\[0, 2^32-1\]]. *)

val to_int : t -> int

val of_octets : int -> int -> int -> int -> t
(** [of_octets a b c d] is the address [a.b.c.d].
    @raise Invalid_argument if any octet is outside [\[0, 255\]]. *)

val to_octets : t -> int * int * int * int

val of_string : string -> t
(** Parses dotted-quad notation. @raise Invalid_argument on bad input. *)

val of_string_opt : string -> t option
val to_string : t -> string
val pp : Format.formatter -> t -> unit
val compare : t -> t -> int
val equal : t -> t -> bool
val succ : t -> t
(** Next address, wrapping at the top of the space. *)

val any : t
(** 0.0.0.0 *)

val localhost : t
(** 127.0.0.1 *)
