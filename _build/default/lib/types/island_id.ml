type t = Singleton of Asn.t | Named of string | Hashed of int

let singleton a = Singleton a
let named s = Named s

let of_border_asns asns =
  let sorted = List.sort_uniq Asn.compare asns in
  Hashed (Hashtbl.hash (List.map Asn.to_int sorted))

let compare a b =
  match (a, b) with
  | Singleton x, Singleton y -> Asn.compare x y
  | Singleton _, _ -> -1
  | _, Singleton _ -> 1
  | Named x, Named y -> String.compare x y
  | Named _, _ -> -1
  | _, Named _ -> 1
  | Hashed x, Hashed y -> Int.compare x y

let equal a b = compare a b = 0
let hash = Hashtbl.hash

let to_string = function
  | Singleton a -> Asn.to_string a
  | Named s -> s
  | Hashed h -> Printf.sprintf "isl-%08x" (h land 0xFFFF_FFFF)

let pp ppf t = Format.pp_print_string ppf (to_string t)

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = Set.Make (Ord)
module Map = Map.Make (Ord)
