(** Island identifiers.

    An island is a cluster of one or more contiguous ASes that support the
    same protocol (Section 2).  Islands are named either by a
    governing-body-assigned name, by a hash of their border ASes' numbers
    (the paper's self-assignment alternative), or — for singleton islands —
    by the AS's own number (Section 3.1). *)

type t =
  | Singleton of Asn.t  (** A one-AS island, identified by its AS number. *)
  | Named of string     (** A governing-body-assigned island name. *)
  | Hashed of int       (** Self-assigned: hash of the border ASes. *)

val singleton : Asn.t -> t
val named : string -> t

val of_border_asns : Asn.t list -> t
(** Self-assignment: a stable hash of the island's border AS numbers,
    order-insensitive. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
