(** Elements of the D-BGP path vector.

    The path vector is the common denominator all protocols use for loop
    avoidance (Section 3.2).  An entry is either an AS number, an island ID
    (for islands that abstract away their interior), or an AS_SET — the
    unordered set BGP uses when aggregating, which islands can also use to
    expose member ASes without inflating the path length. *)

type t =
  | As of Asn.t
  | Island of Island_id.t
  | As_set of Asn.t list  (** Sorted, duplicate-free; counts as length 1. *)

val as_ : Asn.t -> t
val island : Island_id.t -> t

val as_set : Asn.t list -> t
(** Canonicalizes: sorts and deduplicates. *)

val mentions_asn : Asn.t -> t -> bool
(** Does this element contain the given AS number (directly or in a set)? *)

val mentions_island : Island_id.t -> t -> bool
val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string

val path_length : t list -> int
(** BGP-style path length: an AS_SET counts as one hop. *)

val has_loop : t list -> bool
(** True iff some AS number or island ID appears twice (AS_SET members
    included) — the loop-detection rule shared by every protocol carried in
    an IA (requirement G-R5). *)

val pp_path : Format.formatter -> t list -> unit
