(** IPv4 prefixes (CIDR blocks).

    The destination key of every advertisement — BGP UPDATEs and D-BGP
    integrated advertisements alike name destinations with a baseline-format
    prefix.  Prefixes are canonical on construction: host bits below the
    mask are zeroed, so structural equality coincides with semantic
    equality. *)

type t

val make : Ipv4.t -> int -> t
(** [make addr len] is the prefix [addr/len], canonicalized.
    @raise Invalid_argument if [len] is outside [\[0, 32\]]. *)

val network : t -> Ipv4.t
val length : t -> int

val of_string : string -> t
(** Parses ["a.b.c.d/len"]; a bare address parses as a /32.
    @raise Invalid_argument on malformed input. *)

val of_string_opt : string -> t option
val to_string : t -> string
val pp : Format.formatter -> t -> unit

val mem : Ipv4.t -> t -> bool
(** [mem addr p] is true iff [addr] falls inside [p]. *)

val subsumes : t -> t -> bool
(** [subsumes p q] is true iff every address of [q] is inside [p]
    (i.e. [p] is a less- or equally-specific covering prefix). *)

val bit : t -> int -> bool
(** [bit p i] is the [i]-th most significant bit of the network address,
    [0 <= i < length p].  Used by the radix trie. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int

val default : t
(** 0.0.0.0/0 *)

val split : t -> (t * t) option
(** [split p] is the two /\(len+1\) halves of [p], or [None] if [p] is a
    /32. *)

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
