(** Deterministic pseudo-random number generator (splitmix64).

    Every stochastic component of the reproduction — the BRITE/Waxman
    topology generator, random upgrade sets in the benefit simulations,
    synthetic workload traces — draws from this PRNG so that experiments
    are bit-reproducible across runs and machines, independent of OCaml's
    [Random] implementation. *)

type t

val create : int -> t
(** [create seed] is a fresh generator. Equal seeds yield equal streams. *)

val split : t -> t
(** An independent generator derived from the current state; the parent
    advances.  Lets sub-experiments draw without perturbing each other. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].
    @raise Invalid_argument if [bound <= 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] inclusive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool
val bits64 : t -> int64

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val sample : t -> int -> 'a array -> 'a array
(** [sample t k arr] draws [k] distinct elements uniformly (reservoir-free:
    partial Fisher-Yates on a copy).
    @raise Invalid_argument if [k > Array.length arr] or [k < 0]. *)
