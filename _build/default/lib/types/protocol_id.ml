type kind = Baseline | Critical_fix | Custom | Replacement

type t = { id : int; name : string; kind : kind }

let registry : (string, t) Hashtbl.t = Hashtbl.create 32
let by_id : (int, t) Hashtbl.t = Hashtbl.create 32
let next_id = ref 0

let register ?(kind = Custom) name =
  match Hashtbl.find_opt registry name with
  | Some t ->
    if t.kind <> kind && kind <> Custom then
      invalid_arg
        (Printf.sprintf "Protocol_id.register: %s already registered" name)
    else t
  | None ->
    let t = { id = !next_id; name; kind } in
    incr next_id;
    Hashtbl.add registry name t;
    Hashtbl.add by_id t.id t;
    t

let find name = Hashtbl.find_opt registry name
let name t = t.name
let kind t = t.kind
let to_int t = t.id
let of_int i = Hashtbl.find_opt by_id i
let compare a b = Int.compare a.id b.id
let equal a b = Int.equal a.id b.id
let hash t = t.id
let pp ppf t = Format.pp_print_string ppf t.name

let pp_kind ppf = function
  | Baseline -> Format.pp_print_string ppf "baseline"
  | Critical_fix -> Format.pp_print_string ppf "critical-fix"
  | Custom -> Format.pp_print_string ppf "custom"
  | Replacement -> Format.pp_print_string ppf "replacement"

let all () =
  Hashtbl.fold (fun _ t acc -> t :: acc) registry []
  |> List.sort (fun a b -> Int.compare a.id b.id)

(* Table 1 of the paper, grouped by scenario. *)
let bgp = register ~kind:Baseline "bgp"
let bgpsec = register ~kind:Critical_fix "bgpsec"
let eq_bgp = register ~kind:Critical_fix "eq-bgp"
let lisp = register ~kind:Critical_fix "lisp"
let r_bgp = register ~kind:Critical_fix "r-bgp"
let wiser = register ~kind:Critical_fix "wiser"
let miro = register ~kind:Custom "miro"
let arrow = register ~kind:Custom "arrow"
let ron = register ~kind:Custom "ron"
let nira = register ~kind:Replacement "nira"
let scion = register ~kind:Replacement "scion"
let pathlet = register ~kind:Replacement "pathlet"
let yamr = register ~kind:Replacement "yamr"
let hlp = register ~kind:Replacement "hlp"

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = Set.Make (Ord)
module Map = Map.Make (Ord)
