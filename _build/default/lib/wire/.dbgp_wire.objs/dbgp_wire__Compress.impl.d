lib/wire/compress.ml: Array Buffer Char String
