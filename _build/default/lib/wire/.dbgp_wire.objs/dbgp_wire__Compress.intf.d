lib/wire/compress.mli:
