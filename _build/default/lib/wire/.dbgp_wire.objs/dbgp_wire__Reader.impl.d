lib/wire/reader.ml: Char Dbgp_types List Printf String
