lib/wire/reader.mli: Dbgp_types
