lib/wire/writer.ml: Buffer Char Dbgp_types List String
