lib/wire/writer.mli: Dbgp_types
