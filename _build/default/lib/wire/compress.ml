(* LZSS with a 4 KiB window and 3..18-byte matches, hash-chain search.
   Stream layout: version byte, 4-byte big-endian original length, then
   groups of up to eight tokens preceded by a flag byte (bit set =
   literal).  A match token packs a 12-bit distance and 4-bit
   (length - 3) into two bytes. *)

let version = 1
let window = 4096
let min_match = 3
let max_match = 18
let max_chain = 64

let hash src i =
  (Char.code src.[i] lsl 10)
  lxor (Char.code src.[i + 1] lsl 5)
  lxor Char.code src.[i + 2]
  land 0xFFFF

let compress src =
  let n = String.length src in
  let out = Buffer.create (n / 2 + 16) in
  Buffer.add_char out (Char.chr version);
  Buffer.add_char out (Char.chr ((n lsr 24) land 0xFF));
  Buffer.add_char out (Char.chr ((n lsr 16) land 0xFF));
  Buffer.add_char out (Char.chr ((n lsr 8) land 0xFF));
  Buffer.add_char out (Char.chr (n land 0xFF));
  let head = Array.make 0x10000 (-1) in
  let prev = Array.make (max n 1) (-1) in
  (* Token group state: up to 8 tokens buffered with their flag bits. *)
  let flags = ref 0 and nflags = ref 0 in
  let group = Buffer.create 17 in
  let flush_group () =
    if !nflags > 0 then begin
      Buffer.add_char out (Char.chr !flags);
      Buffer.add_buffer out group;
      Buffer.clear group;
      flags := 0;
      nflags := 0
    end
  in
  let emit_literal c =
    flags := !flags lor (1 lsl !nflags);
    Buffer.add_char group c;
    incr nflags;
    if !nflags = 8 then flush_group ()
  in
  let emit_match ~dist ~len =
    Buffer.add_char group (Char.chr ((dist lsr 4) land 0xFF));
    Buffer.add_char group (Char.chr (((dist land 0xF) lsl 4) lor (len - min_match)));
    incr nflags;
    if !nflags = 8 then flush_group ()
  in
  let match_len i j =
    (* longest common run between positions j (earlier) and i, capped *)
    let cap = min max_match (n - i) in
    let k = ref 0 in
    while !k < cap && src.[j + !k] = src.[i + !k] do
      incr k
    done;
    !k
  in
  let i = ref 0 in
  while !i < n do
    let best_len = ref 0 and best_dist = ref 0 in
    if !i + min_match <= n then begin
      let h = hash src (min !i (n - min_match)) in
      let cand = ref head.(h) and depth = ref 0 in
      while !cand >= 0 && !depth < max_chain do
        if !i - !cand <= window then begin
          let l = match_len !i !cand in
          if l > !best_len then begin
            best_len := l;
            best_dist := !i - !cand
          end;
          cand := prev.(!cand);
          incr depth
        end
        else cand := -1
      done
    end;
    if !best_len >= min_match then begin
      emit_match ~dist:!best_dist ~len:!best_len;
      (* index every position covered by the match *)
      let stop = min (!i + !best_len) (n - min_match) in
      let j = ref !i in
      while !j < stop do
        let h = hash src !j in
        prev.(!j) <- head.(h);
        head.(h) <- !j;
        incr j
      done;
      i := !i + !best_len
    end
    else begin
      if !i + min_match <= n then begin
        let h = hash src !i in
        prev.(!i) <- head.(h);
        head.(h) <- !i
      end;
      emit_literal src.[!i];
      incr i
    end
  done;
  flush_group ();
  Buffer.contents out

let decompress s =
  let fail () = invalid_arg "Compress.decompress: malformed input" in
  let n = String.length s in
  if n < 5 || Char.code s.[0] <> version then fail ();
  let orig =
    (Char.code s.[1] lsl 24) lor (Char.code s.[2] lsl 16)
    lor (Char.code s.[3] lsl 8) lor Char.code s.[4]
  in
  let out = Buffer.create orig in
  let i = ref 5 in
  while Buffer.length out < orig do
    if !i >= n then fail ();
    let flags = Char.code s.[!i] in
    incr i;
    let t = ref 0 in
    while !t < 8 && Buffer.length out < orig do
      if flags land (1 lsl !t) <> 0 then begin
        if !i >= n then fail ();
        Buffer.add_char out s.[!i];
        incr i
      end
      else begin
        if !i + 1 >= n then fail ();
        let b1 = Char.code s.[!i] and b2 = Char.code s.[!i + 1] in
        i := !i + 2;
        let dist = (b1 lsl 4) lor (b2 lsr 4) in
        let len = (b2 land 0xF) + min_match in
        let start = Buffer.length out - dist in
        if dist = 0 || start < 0 then fail ();
        for k = 0 to len - 1 do
          Buffer.add_char out (Buffer.nth out (start + k))
        done
      end;
      incr t
    done
  done;
  if Buffer.length out <> orig then fail ();
  Buffer.contents out

let ratio s =
  if String.length s = 0 then 1.
  else float_of_int (String.length (compress s)) /. float_of_int (String.length s)
