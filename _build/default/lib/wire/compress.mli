(** Byte-oriented LZSS compression.

    Section 3.2 notes that "IAs can be compressed to further reduce
    their size"; this is the compressor backing that claim (the sealed
    build has no zlib, so it is self-contained).  A classic LZSS: a
    sliding window of back-references (distance up to 4095, length 3 to
    18) interleaved with literals, flagged in groups of eight.  The
    format is self-framing (original length up front), so decompression
    is exact and allocation is single-shot. *)

val compress : string -> string
(** Never fails; incompressible input grows by at most ~13%% (1 flag
    byte per 8 literals) plus the 5-byte header. *)

val decompress : string -> string
(** Exact inverse of {!compress}.
    @raise Invalid_argument on malformed or truncated input. *)

val ratio : string -> float
(** [compressed size / original size] for quick reporting; 1.0 for the
    empty string. *)
