exception Error of string

type t = { src : string; mutable pos : int }

let of_string s = { src = s; pos = 0 }
let pos t = t.pos
let remaining t = String.length t.src - t.pos
let at_end t = remaining t = 0
let fail fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

let u8 t =
  if remaining t < 1 then fail "u8: truncated at %d" t.pos
  else begin
    let c = Char.code t.src.[t.pos] in
    t.pos <- t.pos + 1;
    c
  end

let u16 t =
  let hi = u8 t in
  let lo = u8 t in
  (hi lsl 8) lor lo

let u32 t =
  let hi = u16 t in
  let lo = u16 t in
  (hi lsl 16) lor lo

let varint t =
  let rec go shift acc =
    if shift > 56 then fail "varint: too long at %d" t.pos
    else
      let b = u8 t in
      let acc = acc lor ((b land 0x7F) lsl shift) in
      if b land 0x80 = 0 then acc else go (shift + 7) acc
  in
  go 0 0

let bytes t n =
  if n < 0 || remaining t < n then fail "bytes: need %d, have %d" n (remaining t)
  else begin
    let s = String.sub t.src t.pos n in
    t.pos <- t.pos + n;
    s
  end

let delimited t =
  let n = varint t in
  bytes t n

let ipv4 t = Dbgp_types.Ipv4.of_int (u32 t)

let prefix t =
  let len = u8 t in
  if len > 32 then fail "prefix: bad length %d" len
  else begin
    let octets = (len + 7) / 8 in
    let net = ref 0 in
    for i = 0 to octets - 1 do
      net := !net lor (u8 t lsl (24 - (8 * i)))
    done;
    Dbgp_types.Prefix.make (Dbgp_types.Ipv4.of_int !net) len
  end

let asn t = Dbgp_types.Asn.of_int (u32 t)

let list t f =
  let n = varint t in
  if n > remaining t then fail "list: count %d exceeds buffer" n
  else List.init n (fun _ -> f t)
