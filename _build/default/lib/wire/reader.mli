(** Binary decoder matching {!Writer}.

    Decoding a malformed buffer raises {!Error} with a human-readable
    reason; D-BGP speakers translate this into dropping the advertisement
    (as BGP treats an unparseable UPDATE). *)

exception Error of string

type t

val of_string : string -> t
val pos : t -> int
val remaining : t -> int
val at_end : t -> bool

val u8 : t -> int
val u16 : t -> int
val u32 : t -> int
val varint : t -> int
val bytes : t -> int -> string
val delimited : t -> string
val ipv4 : t -> Dbgp_types.Ipv4.t
val prefix : t -> Dbgp_types.Prefix.t
val asn : t -> Dbgp_types.Asn.t
val list : t -> (t -> 'a) -> 'a list
