(** Append-only binary encoder.

    Replaces the protocol-buffer serialization the paper's Beagle prototype
    used.  A growable byte buffer with big-endian fixed-width writes,
    LEB128 varints, and length-delimited fields — enough to encode
    integrated advertisements compactly and deterministically. *)

type t

val create : ?capacity:int -> unit -> t
val length : t -> int
val contents : t -> string
val reset : t -> unit

val u8 : t -> int -> unit
(** @raise Invalid_argument outside [\[0, 255\]]. *)

val u16 : t -> int -> unit
(** Big-endian. @raise Invalid_argument outside [\[0, 65535\]]. *)

val u32 : t -> int -> unit
(** Big-endian. @raise Invalid_argument outside [\[0, 2^32-1\]]. *)

val varint : t -> int -> unit
(** Unsigned LEB128. @raise Invalid_argument if negative. *)

val bytes : t -> string -> unit
(** Raw bytes, no length prefix. *)

val delimited : t -> string -> unit
(** Varint length prefix followed by the bytes. *)

val ipv4 : t -> Dbgp_types.Ipv4.t -> unit
val prefix : t -> Dbgp_types.Prefix.t -> unit
(** Length byte then the minimal number of network-address octets, as in
    BGP NLRI encoding. *)

val asn : t -> Dbgp_types.Asn.t -> unit
(** Always 4 octets (RFC 6793 style). *)

val list : t -> (t -> 'a -> unit) -> 'a list -> unit
(** Varint count followed by each element. *)
