test/test_bgp.ml: Alcotest Asn Dbgp_bgp Dbgp_types Dbgp_wire Gen Ipv4 List Option Prefix QCheck QCheck_alcotest String Test
