test/test_core.ml: Alcotest Array Asn Dbgp_bgp Dbgp_core Dbgp_types Dbgp_wire Gen Ipv4 Island_id List Path_elem Prefix Protocol_id QCheck QCheck_alcotest String Test
