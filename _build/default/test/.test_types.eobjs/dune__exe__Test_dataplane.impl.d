test/test_dataplane.ml: Alcotest Asn Dbgp_dataplane Dbgp_types Engine Forwarder Header Ipv4 List Packet Prefix
