test/test_eval.ml: Alcotest Benefits Dbgp_bgp Dbgp_core Dbgp_eval Dbgp_topology Dbgp_types List Loc_report Overhead Printf Rich_world Scenarios Stress Taxonomy Workload
