test/test_netsim.ml: Alcotest Asn Dbgp_bgp Dbgp_core Dbgp_netsim Dbgp_types Ipv4 List Option Prefix
