test/test_protocols.ml: Alcotest Asn Dbgp_core Dbgp_protocols Dbgp_types Gen Ipv4 Island_id List Option Prefix QCheck QCheck_alcotest String Test
