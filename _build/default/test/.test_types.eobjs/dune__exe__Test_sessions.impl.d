test/test_sessions.ml: Alcotest Asn Dbgp_bgp Dbgp_core Dbgp_eval Dbgp_netsim Dbgp_types Ipv4 List Prefix Printf Protocol_id
