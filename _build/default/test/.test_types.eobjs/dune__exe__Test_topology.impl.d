test/test_topology.ml: Alcotest Array Dbgp_topology Dbgp_types Int List Option Prng QCheck QCheck_alcotest Queue Test
