test/test_trie.ml: Alcotest Dbgp_trie Dbgp_types Gen Ipv4 List Option Prefix QCheck QCheck_alcotest Test
