test/test_types.ml: Alcotest Array Asn Dbgp_types Fun Gen Ipv4 Island_id List Path_elem Prefix Prng Protocol_id QCheck QCheck_alcotest Test
