test/test_wire.ml: Alcotest Asn Char Dbgp_types Dbgp_wire Ipv4 List Prefix QCheck QCheck_alcotest String Test
