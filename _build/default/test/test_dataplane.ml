open Dbgp_types
open Dbgp_dataplane

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let asn = Asn.of_int
let ip = Ipv4.of_string
let pfx = Prefix.of_string

let ipv4_hdr dst = Header.Ipv4_hdr { src = ip "10.0.0.1"; dst = ip dst }

(* ------------------------- headers / packets ------------------------- *)

let test_header_sizes () =
  check_int "ipv4" 20 (Header.wire_size (ipv4_hdr "1.2.3.4"));
  check_int "scion" (8 + 8) (Header.wire_size (Header.Scion_hdr { path = [ "a"; "b" ]; pos = 0 }));
  check_int "pathlet" (4 + 12) (Header.wire_size (Header.Pathlet_hdr { fids = [ 1; 2; 3 ] }));
  check_int "tunnel" 20 (Header.wire_size (Header.Tunnel_hdr { endpoint = ip "1.1.1.1" }));
  check_int "stack" 40
    (Header.stack_size [ Header.Tunnel_hdr { endpoint = ip "1.1.1.1" }; ipv4_hdr "2.2.2.2" ])

let test_packet_validation () =
  Alcotest.check_raises "empty stack" (Invalid_argument "Packet.make: empty header stack")
    (fun () -> ignore (Packet.make ~headers:[] ~payload:"" ()));
  Alcotest.check_raises "bad ttl" (Invalid_argument "Packet.make: TTL must be positive")
    (fun () -> ignore (Packet.make ~ttl:0 ~headers:[ ipv4_hdr "1.1.1.1" ] ~payload:"" ()));
  let p = Packet.make ~ttl:2 ~headers:[ ipv4_hdr "1.1.1.1" ] ~payload:"xy" () in
  check_int "size" 22 (Packet.size p);
  ( match Packet.decrement_ttl p with
    | Some p' -> check_int "decremented" 1 p'.Packet.ttl
    | None -> Alcotest.fail "should survive" );
  match Packet.decrement_ttl { p with Packet.ttl = 1 } with
  | None -> ()
  | Some _ -> Alcotest.fail "should expire"

(* ------------------------- forwarder ------------------------- *)

let test_forwarder_tables () =
  let f = Forwarder.create ~me:(asn 1) () in
  Forwarder.set_ip_route f (pfx "10.0.0.0/8") (Forwarder.To_as (asn 2));
  Forwarder.set_ip_route f (pfx "10.1.0.0/16") Forwarder.Local;
  check "lpm specific" true (Forwarder.ip_lookup f (ip "10.1.2.3") = Some Forwarder.Local);
  check "lpm general" true (Forwarder.ip_lookup f (ip "10.2.0.1") = Some (Forwarder.To_as (asn 2)));
  check "miss" true (Forwarder.ip_lookup f (ip "11.0.0.1") = None);
  Forwarder.add_local_addr f (ip "10.1.0.1");
  check "local addr" true (Forwarder.is_local_addr f (ip "10.1.0.1"));
  check "not local" false (Forwarder.is_local_addr f (ip "10.1.0.2"));
  Forwarder.set_pathlet_hop f ~fid:7 (Forwarder.To_as (asn 3)) ~consume:true;
  check "pathlet" true (Forwarder.pathlet_lookup f ~fid:7 = Some (Forwarder.To_as (asn 3), true));
  Forwarder.claim_router f ~router:"r1";
  check "owns" true (Forwarder.owns_router f ~router:"r1");
  check "not owns" false (Forwarder.owns_router f ~router:"r2")

(* ------------------------- engine: ipv4 ------------------------- *)

(* Chain 1 -> 2 -> 3 where 3 hosts 99.0.0.0/24. *)
let ip_chain () =
  let e = Engine.create () in
  let f1 = Forwarder.create ~me:(asn 1) () in
  let f2 = Forwarder.create ~me:(asn 2) () in
  let f3 = Forwarder.create ~me:(asn 3) () in
  Forwarder.set_ip_route f1 (pfx "99.0.0.0/24") (Forwarder.To_as (asn 2));
  Forwarder.set_ip_route f2 (pfx "99.0.0.0/24") (Forwarder.To_as (asn 3));
  Forwarder.set_ip_route f3 (pfx "99.0.0.0/24") Forwarder.Local;
  List.iter (Engine.add e) [ f1; f2; f3 ];
  e

let test_engine_ipv4_delivery () =
  let e = ip_chain () in
  let p = Packet.make ~headers:[ ipv4_hdr "99.0.0.7" ] ~payload:"d" () in
  match Engine.route e ~from:(asn 1) p with
  | Engine.Delivered { at; path } ->
    check "at 3" true (Asn.equal at (asn 3));
    check "path recorded" true (List.map Asn.to_int path = [ 1; 2; 3 ])
  | Engine.Dropped _ -> Alcotest.fail "should deliver"

let test_engine_no_route_drop () =
  let e = ip_chain () in
  let p = Packet.make ~headers:[ ipv4_hdr "88.0.0.1" ] ~payload:"" () in
  match Engine.route e ~from:(asn 1) p with
  | Engine.Dropped { at; reason } ->
    check "dropped at 1" true (Asn.equal at (asn 1));
    check "reason" true (reason = "no IPv4 route")
  | Engine.Delivered _ -> Alcotest.fail "should drop"

let test_engine_ttl_loop () =
  (* 1 <-> 2 routing loop must be cut by TTL. *)
  let e = Engine.create () in
  let f1 = Forwarder.create ~me:(asn 1) () in
  let f2 = Forwarder.create ~me:(asn 2) () in
  Forwarder.set_ip_route f1 (pfx "99.0.0.0/24") (Forwarder.To_as (asn 2));
  Forwarder.set_ip_route f2 (pfx "99.0.0.0/24") (Forwarder.To_as (asn 1));
  Engine.add e f1;
  Engine.add e f2;
  let p = Packet.make ~ttl:8 ~headers:[ ipv4_hdr "99.0.0.1" ] ~payload:"" () in
  match Engine.route e ~from:(asn 1) p with
  | Engine.Dropped { reason; _ } -> check "ttl" true (reason = "TTL expired")
  | Engine.Delivered _ -> Alcotest.fail "loop must drop"

(* ------------------------- engine: tunnels ------------------------- *)

let test_engine_tunnel_decap () =
  let e = ip_chain () in
  let f2 = Engine.forwarder e (asn 2) in
  Forwarder.add_local_addr f2 (ip "2.2.2.2");
  (* route toward the endpoint *)
  let f1 = Engine.forwarder e (asn 1) in
  Forwarder.set_ip_route f1 (pfx "2.2.2.2/32") (Forwarder.To_as (asn 2));
  let p =
    Packet.make
      ~headers:[ Header.Tunnel_hdr { endpoint = ip "2.2.2.2" }; ipv4_hdr "99.0.0.7" ]
      ~payload:"d" ()
  in
  match Engine.route e ~from:(asn 1) p with
  | Engine.Delivered { at; path } ->
    check "delivered at 3 after decap at 2" true (Asn.equal at (asn 3));
    check "traveled via 2" true (List.exists (Asn.equal (asn 2)) path)
  | Engine.Dropped { reason; _ } -> Alcotest.fail ("dropped: " ^ reason)

let test_engine_tunnel_unroutable () =
  let e = ip_chain () in
  let p =
    Packet.make
      ~headers:[ Header.Tunnel_hdr { endpoint = ip "7.7.7.7" }; ipv4_hdr "99.0.0.7" ]
      ~payload:"" ()
  in
  match Engine.route e ~from:(asn 1) p with
  | Engine.Dropped { reason; _ } -> check "reason" true (reason = "no route to tunnel endpoint")
  | Engine.Delivered _ -> Alcotest.fail "should drop"

(* ------------------------- engine: pathlets ------------------------- *)

let test_engine_pathlet_forwarding () =
  (* FIDs: at 1, fid 10 -> AS 2 (consume); at 2, fid 11 -> AS 3 (consume);
     at 3, empty fid list + inner ipv4 local delivery. *)
  let e = Engine.create () in
  let f1 = Forwarder.create ~me:(asn 1) () in
  let f2 = Forwarder.create ~me:(asn 2) () in
  let f3 = Forwarder.create ~me:(asn 3) () in
  Forwarder.set_pathlet_hop f1 ~fid:10 (Forwarder.To_as (asn 2)) ~consume:true;
  Forwarder.set_pathlet_hop f2 ~fid:11 (Forwarder.To_as (asn 3)) ~consume:true;
  Forwarder.set_ip_route f3 (pfx "99.0.0.0/24") Forwarder.Local;
  List.iter (Engine.add e) [ f1; f2; f3 ];
  let p =
    Packet.make
      ~headers:[ Header.Pathlet_hdr { fids = [ 10; 11 ] }; ipv4_hdr "99.0.0.7" ]
      ~payload:"" ()
  in
  ( match Engine.route e ~from:(asn 1) p with
    | Engine.Delivered { at; path } ->
      check "delivered at 3" true (Asn.equal at (asn 3));
      check "exact fid path" true (List.map Asn.to_int path = [ 1; 2; 3 ])
    | Engine.Dropped { reason; _ } -> Alcotest.fail ("dropped: " ^ reason) );
  (* unknown FID drops *)
  let bad =
    Packet.make ~headers:[ Header.Pathlet_hdr { fids = [ 99 ] }; ipv4_hdr "99.0.0.7" ]
      ~payload:"" ()
  in
  match Engine.route e ~from:(asn 1) bad with
  | Engine.Dropped { reason; _ } -> check "unknown fid" true (reason = "unknown FID 99")
  | Engine.Delivered _ -> Alcotest.fail "should drop"

let test_engine_pathlet_multihop_fid () =
  (* A non-consuming hop: fid 10 spans two ASes (1 -> 2 -> 3). *)
  let e = Engine.create () in
  let f1 = Forwarder.create ~me:(asn 1) () in
  let f2 = Forwarder.create ~me:(asn 2) () in
  let f3 = Forwarder.create ~me:(asn 3) () in
  Forwarder.set_pathlet_hop f1 ~fid:10 (Forwarder.To_as (asn 2)) ~consume:false;
  Forwarder.set_pathlet_hop f2 ~fid:10 (Forwarder.To_as (asn 3)) ~consume:true;
  Forwarder.set_ip_route f3 (pfx "99.0.0.0/24") Forwarder.Local;
  List.iter (Engine.add e) [ f1; f2; f3 ];
  let p =
    Packet.make ~headers:[ Header.Pathlet_hdr { fids = [ 10 ] }; ipv4_hdr "99.0.0.7" ]
      ~payload:"" ()
  in
  match Engine.route e ~from:(asn 1) p with
  | Engine.Delivered { at; _ } -> check "two-hop fid" true (Asn.equal at (asn 3))
  | Engine.Dropped { reason; _ } -> Alcotest.fail ("dropped: " ^ reason)

(* ------------------------- engine: scion ------------------------- *)

let test_engine_scion_forwarding () =
  let e = Engine.create () in
  let f1 = Forwarder.create ~me:(asn 1) () in
  let f2 = Forwarder.create ~me:(asn 2) () in
  let f3 = Forwarder.create ~me:(asn 3) () in
  Forwarder.claim_router f1 ~router:"r1";
  Forwarder.set_router_port f1 ~router:"r2" (Forwarder.To_as (asn 2));
  Forwarder.claim_router f2 ~router:"r2";
  Forwarder.set_router_port f2 ~router:"r3" (Forwarder.To_as (asn 3));
  Forwarder.claim_router f3 ~router:"r3";
  Forwarder.set_ip_route f3 (pfx "99.0.0.0/24") Forwarder.Local;
  List.iter (Engine.add e) [ f1; f2; f3 ];
  let p =
    Packet.make
      ~headers:
        [ Header.Scion_hdr { path = [ "r1"; "r2"; "r3" ]; pos = 0 };
          ipv4_hdr "99.0.0.7" ]
      ~payload:"" ()
  in
  ( match Engine.route e ~from:(asn 1) p with
    | Engine.Delivered { at; path } ->
      check "delivered" true (Asn.equal at (asn 3));
      check "followed path" true (List.map Asn.to_int path = [ 1; 2; 3 ])
    | Engine.Dropped { reason; _ } -> Alcotest.fail ("dropped: " ^ reason) );
  let bad =
    Packet.make
      ~headers:[ Header.Scion_hdr { path = [ "r1"; "rX" ]; pos = 0 }; ipv4_hdr "99.0.0.7" ]
      ~payload:"" ()
  in
  match Engine.route e ~from:(asn 1) bad with
  | Engine.Dropped { reason; _ } -> check "unknown router" true (reason = "no port for router rX")
  | Engine.Delivered _ -> Alcotest.fail "should drop"

let test_engine_unknown_as () =
  let e = ip_chain () in
  let p = Packet.make ~headers:[ ipv4_hdr "99.0.0.1" ] ~payload:"" () in
  check "unknown origin raises" true
    (try ignore (Engine.route e ~from:(asn 42) p); false with Not_found -> true)

let () =
  Alcotest.run "dataplane"
    [ ("headers",
       [ Alcotest.test_case "sizes" `Quick test_header_sizes;
         Alcotest.test_case "packet validation" `Quick test_packet_validation ]);
      ("forwarder", [ Alcotest.test_case "tables" `Quick test_forwarder_tables ]);
      ("ipv4",
       [ Alcotest.test_case "delivery" `Quick test_engine_ipv4_delivery;
         Alcotest.test_case "no route" `Quick test_engine_no_route_drop;
         Alcotest.test_case "ttl loop" `Quick test_engine_ttl_loop ]);
      ("tunnel",
       [ Alcotest.test_case "decap" `Quick test_engine_tunnel_decap;
         Alcotest.test_case "unroutable" `Quick test_engine_tunnel_unroutable ]);
      ("pathlet",
       [ Alcotest.test_case "fid forwarding" `Quick test_engine_pathlet_forwarding;
         Alcotest.test_case "multi-hop fid" `Quick test_engine_pathlet_multihop_fid ]);
      ("scion", [ Alcotest.test_case "path forwarding" `Quick test_engine_scion_forwarding ]);
      ("errors", [ Alcotest.test_case "unknown AS" `Quick test_engine_unknown_as ]) ]
