open Dbgp_eval
module Brite = Dbgp_topology.Brite

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------- overhead (Tables 2, 3) ------------------------- *)

let gib = 1024. *. 1024. *. 1024.

let test_overhead_basic_row () =
  let lo = Overhead.basic Overhead.lo and hi = Overhead.basic Overhead.hi in
  (* Paper: 24 GB - 36,000 GB *)
  check "min ~24 GB" true (abs_float ((lo.Overhead.total_bytes /. gib) -. 24.4) < 1.);
  check "max ~36,000 GB" true
    (hi.Overhead.total_bytes /. gib > 30_000. && hi.Overhead.total_bytes /. gib < 40_000.)

let test_overhead_path_lengths_row () =
  let lo = Overhead.plus_path_lengths Overhead.lo in
  let hi = Overhead.plus_path_lengths Overhead.hi in
  (* Paper: 7 GB - 1,300 GB *)
  check "min ~7 GB" true (lo.Overhead.total_bytes /. gib > 6. && lo.Overhead.total_bytes /. gib < 9.);
  check "max ~1,300 GB" true
    (hi.Overhead.total_bytes /. gib > 1_100. && hi.Overhead.total_bytes /. gib < 1_500.)

let test_overhead_sharing_row () =
  let lo = Overhead.plus_sharing Overhead.lo in
  let hi = Overhead.plus_sharing Overhead.hi in
  (* Paper: 3 GB - 610 GB *)
  check "min ~3 GB" true (lo.Overhead.total_bytes /. gib > 2.5 && lo.Overhead.total_bytes /. gib < 4.);
  check "max ~610 GB" true
    (hi.Overhead.total_bytes /. gib > 550. && hi.Overhead.total_bytes /. gib < 680.)

let test_overhead_single_row () =
  let lo = Overhead.single_protocol Overhead.lo in
  let hi = Overhead.single_protocol Overhead.hi in
  (* Paper: 2.3 GB - 240 GB *)
  check "min ~2.3 GB" true (abs_float ((lo.Overhead.total_bytes /. gib) -. 2.3) < 0.2);
  check "max ~240 GB" true (abs_float ((hi.Overhead.total_bytes /. gib) -. 244.) < 10.)

let test_overhead_ordering_and_ratio () =
  List.iter
    (fun p ->
      match Overhead.table3 p with
      | [ basic; paths; sharing; single ] ->
        check "basic > +paths" true (basic.Overhead.total_bytes > paths.Overhead.total_bytes);
        check "+paths > +sharing" true (paths.Overhead.total_bytes > sharing.Overhead.total_bytes);
        check "+sharing > single" true (sharing.Overhead.total_bytes > single.Overhead.total_bytes)
      | _ -> Alcotest.fail "table3 must have 4 rows")
    [ Overhead.lo; Overhead.hi ];
  (* Paper headline: 1.3x - 2.5x *)
  check "ratio min ~1.3" true (abs_float (Overhead.overhead_ratio Overhead.lo -. 1.3) < 0.1);
  check "ratio max ~2.5" true (abs_float (Overhead.overhead_ratio Overhead.hi -. 2.5) < 0.1)

let test_overhead_table2_complete () =
  check_int "ten parameters" 10 (List.length Overhead.table2)

(* ------------------------- taxonomy (Table 1) ------------------------- *)

let test_taxonomy () =
  check_int "fourteen protocols" 14 (List.length Taxonomy.entries);
  check_int "six critical fixes" 6 (List.length (Taxonomy.by_scenario Taxonomy.Critical_fix));
  check_int "three custom" 3 (List.length (Taxonomy.by_scenario Taxonomy.Custom_protocol));
  check_int "five replacements" 5
    (List.length (Taxonomy.by_scenario Taxonomy.Replacement_protocol));
  check "registry kinds consistent" true (Taxonomy.consistent ());
  check "replacements need multi-proto headers (except HLP)" true
    (List.for_all
       (fun (e : Taxonomy.entry) ->
         e.Taxonomy.name = "HLP"
         || List.mem Taxonomy.Multi_network_proto_headers e.Taxonomy.data_plane)
       (Taxonomy.by_scenario Taxonomy.Replacement_protocol))

(* ------------------------- workload ------------------------- *)

let test_workload_basic () =
  let s = Workload.spec ~advertisements:200 () in
  let ias = Workload.generate s in
  check_int "count" 200 (List.length ias);
  let prefixes =
    List.map (fun (ia : Dbgp_core.Ia.t) -> ia.Dbgp_core.Ia.prefix) ias
  in
  check_int "distinct prefixes" 200
    (List.length (List.sort_uniq Dbgp_types.Prefix.compare prefixes));
  check "loop free" true
    (List.for_all (fun ia -> not (Dbgp_core.Ia.has_loop ia)) ias);
  check "path lengths in range" true
    (List.for_all
       (fun ia ->
         let l = Dbgp_core.Ia.path_length ia in
         l >= 3 && l <= 5)
       ias)

let test_workload_payload_sizing () =
  let plain = Workload.generate (Workload.spec ~advertisements:5 ()) in
  let fat = Workload.generate (Workload.spec ~payload_bytes:32768 ~advertisements:5 ()) in
  let avg ias =
    List.fold_left (fun a ia -> a + Dbgp_core.Codec.size ia) 0 ias / List.length ias
  in
  check "payload inflates" true (avg fat > avg plain + 32_000);
  check "deterministic" true
    (Workload.generate (Workload.spec ~advertisements:5 ())
    = Workload.generate (Workload.spec ~advertisements:5 ()))

let test_workload_updates_arm () =
  let ups = Workload.generate_updates (Workload.spec ~advertisements:50 ()) in
  check_int "count" 50 (List.length ups);
  check "every update has attrs and one nlri" true
    (List.for_all
       (fun (u : Dbgp_bgp.Message.update) ->
         u.Dbgp_bgp.Message.attrs <> None
         && List.length u.Dbgp_bgp.Message.nlri = 1)
       ups)

(* ------------------------- scenarios (Figures 1-3, 8) ------------------------- *)

let test_scenario_wiser () =
  let r = Scenarios.wiser_across_gulf () in
  check "cost visible with D-BGP" true (r.Scenarios.cost_seen = Some 10);
  check "low-cost path chosen" true r.Scenarios.chose_low_cost;
  check "portal descriptor crossed the gulf" true r.Scenarios.portal_seen;
  check "cost invisible with BGP" true (r.Scenarios.cost_seen_bgp = None);
  check "BGP picks the short expensive path" false r.Scenarios.chose_low_cost_bgp

let test_scenario_pathlet () =
  let r = Scenarios.pathlet_across_gulf () in
  check_int "all five pathlets reach S" r.Scenarios.expected r.Scenarios.seen;
  check_int "none with plain BGP" 0 r.Scenarios.seen_bgp;
  check_int "two composable end-to-end routes" 2 r.Scenarios.end_to_end

let test_scenario_miro () =
  let r = Scenarios.miro_discovery () in
  check "discovered across gulf" true r.Scenarios.discovered;
  check "not discoverable with BGP" false r.Scenarios.discovered_bgp;
  check "negotiation succeeded" true (r.Scenarios.negotiated <> None);
  check "tunnel delivers" true r.Scenarios.tunnel_works

let test_scenario_scion () =
  let r = Scenarios.scion_multipath () in
  check_int "both paths visible" 2 r.Scenarios.paths_seen;
  check_int "lost with BGP" 0 r.Scenarios.paths_seen_bgp;
  check "extra path forwards" true r.Scenarios.forwarded_on_extra

let test_rich_world () =
  let ia, c = Rich_world.run () in
  check "IA propagated" true (ia <> None);
  check "wiser cost 75" true (c.Rich_world.wiser_cost = Some 75);
  check "all figure-7 content" true (Rich_world.expected_ok c);
  check "five protocols in IA" true (List.length c.Rich_world.protocols_in_ia >= 5)

(* ------------------------- benefits (Figures 9, 10) ------------------------- *)

let small_cfg =
  { Benefits.default with
    Benefits.brite = { Brite.default with Brite.n = 80 };
    trials = 3;
    dest_sample = 25;
    adoption_levels = [ 20; 50; 80; 100 ] }

let test_benefits_extra_paths_shape () =
  let dbgp = Benefits.extra_paths small_cfg Benefits.Dbgp_baseline in
  let bgp = Benefits.extra_paths small_cfg Benefits.Bgp_baseline in
  check "status quo equal across baselines" true
    (abs_float (dbgp.Benefits.status_quo -. bgp.Benefits.status_quo) < 1e-6);
  check "best case equal at 100%" true
    (abs_float (dbgp.Benefits.best_case -. bgp.Benefits.best_case) < 1e-6);
  (* D-BGP dominates BGP at every level (paper's Fig 9 claim). *)
  List.iter2
    (fun (d : Benefits.point) (b : Benefits.point) ->
      check
        (Printf.sprintf "dbgp >= bgp at %d%%" d.Benefits.adoption_pct)
        true
        (d.Benefits.mean >= b.Benefits.mean -. 1e-6))
    dbgp.Benefits.points bgp.Benefits.points;
  check "benefits exceed status quo by 100%" true
    (dbgp.Benefits.best_case > dbgp.Benefits.status_quo)

let test_benefits_bottleneck_shape () =
  let dbgp = Benefits.bottleneck_bandwidth small_cfg Benefits.Dbgp_baseline in
  let bgp = Benefits.bottleneck_bandwidth small_cfg Benefits.Bgp_baseline in
  check "status quo positive" true (dbgp.Benefits.status_quo > 0.);
  (* At this tiny scale per-level crossovers are noisy; the robust shape
     claim is that pass-through helps on average across adoption levels. *)
  let avg s =
    List.fold_left (fun a (p : Benefits.point) -> a +. p.Benefits.mean) 0.
      s.Benefits.points
    /. float_of_int (List.length s.Benefits.points)
  in
  check "dbgp means dominate bgp means on average" true (avg dbgp > avg bgp);
  check "100% beats status quo" true (dbgp.Benefits.best_case > dbgp.Benefits.status_quo)

let test_benefits_threshold_mitigation () =
  let plain = Benefits.bottleneck_bandwidth small_cfg Benefits.Dbgp_baseline in
  let thr =
    Benefits.bottleneck_bandwidth_threshold small_cfg ~coverage_pct:100
      Benefits.Dbgp_baseline
  in
  (* Same endgame: with everyone upgraded, the gate is always open. *)
  check "identical best case" true
    (abs_float (plain.Benefits.best_case -. thr.Benefits.best_case) < 1e-6);
  (* The mitigation's point: at low adoption the gated protocol routes by
     shortest path and stays near the status quo instead of gambling. *)
  ( match thr.Benefits.points with
    | first :: _ ->
      check "low adoption stays near status quo" true
        (first.Benefits.mean > thr.Benefits.status_quo *. 0.9)
    | [] -> Alcotest.fail "no points" )

let test_benefits_latency_faster_than_bottleneck () =
  (* Section 6.3's aside: the additive latency objective gains benefits
     at lower adoption than the bottleneck objective.  Compare the
     fraction of the 0%%->100%% gap closed at 50%% adoption. *)
  let closed (s : Benefits.series) pct =
    let p = List.find (fun (p : Benefits.point) -> p.Benefits.adoption_pct = pct) s.Benefits.points in
    (p.Benefits.mean -. s.Benefits.status_quo)
    /. (s.Benefits.best_case -. s.Benefits.status_quo)
  in
  let latency = Benefits.end_to_end_latency small_cfg Benefits.Dbgp_baseline in
  let bottleneck = Benefits.bottleneck_bandwidth small_cfg Benefits.Dbgp_baseline in
  check "latency improves over status quo at 100%" true
    (latency.Benefits.best_case > latency.Benefits.status_quo);
  check "latency archetype closes the gap faster at 50%" true
    (closed latency 50 > closed bottleneck 50)

let test_benefits_adoption_orders () =
  let series order = Benefits.extra_paths ~order small_cfg Benefits.Dbgp_baseline in
  let r = series Benefits.Random_order in
  let c = series Benefits.Core_first in
  let e = series Benefits.Edge_first in
  check "same status quo" true
    (r.Benefits.status_quo = c.Benefits.status_quo
    && c.Benefits.status_quo = e.Benefits.status_quo);
  (* at 100% all orders coincide *)
  let last s = (List.nth s.Benefits.points (List.length s.Benefits.points - 1)).Benefits.mean in
  check "identical at 100%" true (last r = last c && last c = last e);
  (* ordered rollouts are deterministic: the CI collapses to sampling noise
     across topologies only, and repeated runs agree exactly *)
  check "core-first deterministic" true
    (let c2 = series Benefits.Core_first in
     List.for_all2
       (fun (a : Benefits.point) (b : Benefits.point) -> a.Benefits.mean = b.Benefits.mean)
       c.Benefits.points c2.Benefits.points)

let test_benefits_deterministic () =
  let a = Benefits.extra_paths small_cfg Benefits.Dbgp_baseline in
  let b = Benefits.extra_paths small_cfg Benefits.Dbgp_baseline in
  check "same config same series" true
    (List.for_all2
       (fun (x : Benefits.point) (y : Benefits.point) -> x.Benefits.mean = y.Benefits.mean)
       a.Benefits.points b.Benefits.points)

(* ------------------------- stress (Section 5) ------------------------- *)

let test_stress_smoke () =
  let r = Stress.run_beagle ~advertisements:300 () in
  check "throughput positive" true (r.Stress.prefixes_per_s > 0.);
  check_int "count recorded" 300 r.Stress.advertisements;
  let q = Stress.run_quagga_equivalent ~advertisements:300 () in
  check "quagga arm works" true (q.Stress.prefixes_per_s > 0.)

let test_stress_size_decay () =
  (* Larger IAs must process strictly slower (the paper's 32 KB / 256 KB
     decay), by a wide margin. *)
  let small = Stress.run_beagle ~advertisements:400 () in
  let big = Stress.run_beagle ~payload_bytes:65536 ~advertisements:100 () in
  check "throughput decays with IA size" true
    (big.Stress.prefixes_per_s < small.Stress.prefixes_per_s);
  check "avg bytes reflect payload" true (big.Stress.avg_adv_bytes > 65_000)

(* ------------------------- loc report ------------------------- *)

let test_loc_report () =
  let entries = Loc_report.report ~root:".." () in
  (* When run from the dune sandbox the sources may be elsewhere; only
     check structure. *)
  check_int "seven components" 7 (List.length entries);
  check "counts non-negative" true
    (List.for_all (fun (e : Loc_report.entry) -> e.Loc_report.loc >= 0) entries)

let () =
  Alcotest.run "eval"
    [ ("overhead",
       [ Alcotest.test_case "basic row" `Quick test_overhead_basic_row;
         Alcotest.test_case "+path lengths row" `Quick test_overhead_path_lengths_row;
         Alcotest.test_case "+sharing row" `Quick test_overhead_sharing_row;
         Alcotest.test_case "single row" `Quick test_overhead_single_row;
         Alcotest.test_case "ordering+ratio" `Quick test_overhead_ordering_and_ratio;
         Alcotest.test_case "table2 complete" `Quick test_overhead_table2_complete ]);
      ("taxonomy", [ Alcotest.test_case "table1" `Quick test_taxonomy ]);
      ("workload",
       [ Alcotest.test_case "basic" `Quick test_workload_basic;
         Alcotest.test_case "payload sizing" `Quick test_workload_payload_sizing;
         Alcotest.test_case "updates arm" `Quick test_workload_updates_arm ]);
      ("scenarios",
       [ Alcotest.test_case "wiser (fig 1)" `Quick test_scenario_wiser;
         Alcotest.test_case "pathlet (fig 8)" `Quick test_scenario_pathlet;
         Alcotest.test_case "miro (fig 2)" `Quick test_scenario_miro;
         Alcotest.test_case "scion (fig 3)" `Quick test_scenario_scion;
         Alcotest.test_case "rich world (figs 6-7)" `Quick test_rich_world ]);
      ("benefits",
       [ Alcotest.test_case "fig 9 shape" `Slow test_benefits_extra_paths_shape;
         Alcotest.test_case "fig 10 shape" `Slow test_benefits_bottleneck_shape;
         Alcotest.test_case "threshold mitigation" `Slow test_benefits_threshold_mitigation;
         Alcotest.test_case "latency beats bottleneck incrementally" `Slow
           test_benefits_latency_faster_than_bottleneck;
         Alcotest.test_case "adoption orders" `Slow test_benefits_adoption_orders;
         Alcotest.test_case "deterministic" `Slow test_benefits_deterministic ]);
      ("stress",
       [ Alcotest.test_case "smoke" `Quick test_stress_smoke;
         Alcotest.test_case "size decay" `Quick test_stress_size_decay ]);
      ("loc", [ Alcotest.test_case "report" `Quick test_loc_report ]) ]
