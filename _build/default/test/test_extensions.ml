(* Tests for the extension protocols (R-BGP, LISP, HLP), legacy BGP-4
   interop, and the multi-network-protocol header builder. *)

open Dbgp_types
module Ia = Dbgp_core.Ia
module Value = Dbgp_core.Value
module Dm = Dbgp_core.Decision_module
module Peer = Dbgp_core.Peer
module Legacy = Dbgp_core.Legacy
module Rbgp = Dbgp_protocols.Rbgp
module Lisp = Dbgp_protocols.Lisp_like
module Hlp = Dbgp_protocols.Hlp_like
module Hb = Dbgp_protocols.Header_builder
module Scion = Dbgp_protocols.Scion_like
module Pathlet = Dbgp_protocols.Pathlet
module Portal_io = Dbgp_protocols.Portal_io
module Ls = Dbgp_topology.Link_state

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let asn = Asn.of_int
let ip = Ipv4.of_string
let pfx = Prefix.of_string
let peer n = Peer.make ~asn:(asn n) ~addr:(Ipv4.of_octets 10 0 0 n)

let base_ia () =
  Ia.originate ~prefix:(pfx "99.0.0.0/24") ~origin_asn:(asn 1) ~next_hop:(ip "10.0.0.1") ()

let cand ?(peer_n = 2) ia = { Dm.from_peer = Some (peer peer_n); ia }

(* ------------------------- R-BGP ------------------------- *)

let test_rbgp_backup_roundtrip () =
  let path = [ Path_elem.As (asn 7); Path_elem.Island (Island_id.named "X");
               Path_elem.as_set [ asn 8; asn 9 ] ] in
  let ia = Rbgp.set_backup path (base_ia ()) in
  check "roundtrip" true (Rbgp.backup_of ia = Some path);
  check "absent" true (Rbgp.backup_of (base_ia ()) = None)

let test_rbgp_most_disjoint () =
  let mk peer_n hops = cand ~peer_n (List.fold_left (fun ia n -> Ia.prepend_as (asn n) ia) (base_ia ()) hops) in
  let primary = [ Path_elem.As (asn 5); Path_elem.As (asn 1) ] in
  let shares = mk 2 [ 5 ] in            (* shares AS 5 with primary *)
  let disjoint = mk 3 [ 7; 8 ] in       (* longer but disjoint *)
  check "disjoint preferred" true
    (Rbgp.most_disjoint ~primary [ shares; disjoint ] = Some disjoint);
  check "empty" true (Rbgp.most_disjoint ~primary [] = None)

let test_rbgp_module_attaches_backup () =
  let m = Rbgp.decision_module () in
  let best = cand ~peer_n:2 (Ia.prepend_as (asn 6) (base_ia ())) in
  let alt = cand ~peer_n:3 (Ia.prepend_as (asn 8) (Ia.prepend_as (asn 7) (base_ia ()))) in
  ( match m.Dm.select ~prefix:(pfx "99.0.0.0/24") [ best; alt ] with
    | Some chosen -> check "bgp rules: shortest wins" true (chosen == best)
    | None -> Alcotest.fail "selection failed" );
  let out = m.Dm.contribute ~me:(asn 10) best.Dm.ia in
  ( match Rbgp.failover out with
    | Some backup ->
      check "backup starts with me" true
        (List.hd backup = Path_elem.As (asn 10));
      check "backup is the runner-up" true
        (List.exists (Path_elem.mentions_asn (asn 7)) backup)
    | None -> Alcotest.fail "no backup attached" );
  (* single candidate: no backup to offer *)
  ignore (m.Dm.select ~prefix:(pfx "98.0.0.0/24") [ best ]);
  let lone = m.Dm.contribute ~me:(asn 10) { best.Dm.ia with Ia.prefix = pfx "98.0.0.0/24" } in
  check "no runner-up, no backup" true (Rbgp.failover lone = None)

(* ------------------------- LISP ------------------------- *)

let test_lisp_mobility () =
  let io, _ = Portal_io.in_memory () in
  let map_server = ip "172.16.7.7" in
  let l = Lisp.create { Lisp.my_island = Island_id.named "L"; map_server; io } in
  let eid = pfx "240.1.0.0/16" in
  check "unresolved before registration" true
    (Lisp.resolve ~io ~map_server ~eid = None);
  Lisp.register l ~eid ~rloc:(ip "10.1.1.1");
  check "resolves" true (Lisp.resolve ~io ~map_server ~eid = Some (ip "10.1.1.1"));
  (* the mobility event: same EID, new locator *)
  Lisp.register l ~eid ~rloc:(ip "10.2.2.2");
  check "moved" true (Lisp.resolve ~io ~map_server ~eid = Some (ip "10.2.2.2"));
  let ia = Lisp.advertise l (base_ia ()) in
  check "map server discoverable from IA" true
    (Lisp.discover_map_server ia = [ (Island_id.named "L", map_server) ])

(* ------------------------- link state ------------------------- *)

let test_link_state_lsa_validation () =
  Alcotest.check_raises "bad weight"
    (Invalid_argument "Link_state.lsa: weight must be positive") (fun () ->
      ignore (Ls.lsa ~router:"a" ~seq:1 [ ("b", 0) ]));
  Alcotest.check_raises "self link" (Invalid_argument "Link_state.lsa: self-link")
    (fun () -> ignore (Ls.lsa ~router:"a" ~seq:1 [ ("a", 1) ]))

let test_link_state_flooding_seq () =
  let db = Ls.create () in
  check "install" true (Ls.install db (Ls.lsa ~router:"a" ~seq:2 [ ("b", 1) ]) = `Installed);
  check "stale rejected" true (Ls.install db (Ls.lsa ~router:"a" ~seq:1 [ ("b", 9) ]) = `Stale);
  check "same seq stale" true (Ls.install db (Ls.lsa ~router:"a" ~seq:2 [] ) = `Stale);
  check "newer replaces" true (Ls.install db (Ls.lsa ~router:"a" ~seq:3 [ ("c", 1) ]) = `Installed)

let square_db () =
  (* a - b
     |   |     weights: a-b=1, b-d=1, a-c=5, c-d=1 : shortest a->d = a,b,d (2)
     c - d *)
  let db = Ls.create () in
  List.iter
    (fun l -> ignore (Ls.install db l))
    [ Ls.lsa ~router:"a" ~seq:1 [ ("b", 1); ("c", 5) ];
      Ls.lsa ~router:"b" ~seq:1 [ ("a", 1); ("d", 1) ];
      Ls.lsa ~router:"c" ~seq:1 [ ("a", 5); ("d", 1) ];
      Ls.lsa ~router:"d" ~seq:1 [ ("b", 1); ("c", 1) ] ];
  db

let test_link_state_dijkstra () =
  let db = square_db () in
  ( match Ls.shortest_path db ~src:"a" ~dst:"d" with
    | Some (path, cost) ->
      check "route" true (path = [ "a"; "b"; "d" ]);
      check_int "cost" 2 cost
    | None -> Alcotest.fail "reachable" );
  check "self" true (Ls.shortest_path db ~src:"a" ~dst:"a" = Some ([ "a" ], 0));
  check "unknown src" true (Ls.shortest_path db ~src:"zz" ~dst:"a" = None);
  check "unknown dst" true (Ls.distance db ~src:"a" ~dst:"zz" = None)

let test_link_state_two_way_check () =
  let db = Ls.create () in
  (* a advertises a link to b, but b does not advertise back. *)
  ignore (Ls.install db (Ls.lsa ~router:"a" ~seq:1 [ ("b", 1) ]));
  ignore (Ls.install db (Ls.lsa ~router:"b" ~seq:1 []));
  check "one-way link unusable" true (Ls.distance db ~src:"a" ~dst:"b" = None);
  ignore (Ls.install db (Ls.lsa ~router:"b" ~seq:2 [ ("a", 1) ]));
  check "two-way usable" true (Ls.distance db ~src:"a" ~dst:"b" = Some 1)

(* ------------------------- HLP ------------------------- *)

let hlp_cfg ?(peering_cost = 1) db =
  { Hlp.my_island = Island_id.named "H"; lsdb = db; ingress = "a"; egress = "d";
    peering_cost }

let test_hlp_cost_accumulation () =
  let m = Hlp.decision_module (hlp_cfg (square_db ())) in
  let ia1 = m.Dm.contribute ~me:(asn 2) (base_ia ()) in
  (* interior a->d = 2 plus peering 1 *)
  check "first island cost" true (Hlp.cost_of ia1 = Some 3);
  let ia2 = m.Dm.contribute ~me:(asn 3) ia1 in
  check "accumulates" true (Hlp.cost_of ia2 = Some 6)

let test_hlp_select_cheapest () =
  let m = Hlp.decision_module (hlp_cfg (square_db ())) in
  let with_cost c ia =
    Ia.set_path_descriptor ~owners:[ Hlp.protocol ] ~field:Hlp.field_cost (Value.Int c) ia
  in
  let cheap = cand ~peer_n:3 (with_cost 2 (Ia.prepend_as (asn 9) (base_ia ()))) in
  let costly = cand ~peer_n:2 (with_cost 20 (base_ia ())) in
  check "cheapest wins despite longer path" true
    (m.Dm.select ~prefix:(pfx "99.0.0.0/24") [ costly; cheap ] = Some cheap)

let test_hlp_partition_blocks_export () =
  let db = Ls.create () in
  ignore (Ls.install db (Ls.lsa ~router:"a" ~seq:1 []));
  ignore (Ls.install db (Ls.lsa ~router:"d" ~seq:1 []));
  let m = Hlp.decision_module (hlp_cfg db) in
  check "partitioned island exports nothing" true
    (m.Dm.export_filter (base_ia ()) = None);
  check "interior route absent" true (Hlp.within_island_route (hlp_cfg db) = None)

(* ------------------------- legacy BGP-4 interop ------------------------- *)

let fancy_ia () =
  base_ia ()
  |> Ia.prepend_as (asn 2)
  |> Ia.declare_membership ~island:(Island_id.named "W") ~members:[ asn 2 ]
  |> Ia.set_path_descriptor ~owners:[ Protocol_id.wiser ] ~field:"wiser-cost" (Value.Int 42)
  |> Ia.add_island_descriptor ~island:(Island_id.named "W") ~proto:Protocol_id.wiser
       ~field:"wiser-portal" (Value.Addr (ip "172.16.0.1"))

let test_legacy_roundtrip () =
  check "plain roundtrips" true (Legacy.roundtrips (base_ia ()));
  check "rich roundtrips" true (Legacy.roundtrips (fancy_ia ()));
  let with_island = Ia.prepend_island (Island_id.named "Z") (fancy_ia ()) in
  check "island PV entries survive via extras" true (Legacy.roundtrips with_island)

let test_legacy_as_path_projection () =
  let u = Legacy.to_update (fancy_ia ()) in
  match u.Dbgp_bgp.Message.attrs with
  | Some attrs ->
    check "legacy AS_PATH carries the ASNs" true
      (Dbgp_bgp.Attr.as_path_asns attrs.Dbgp_bgp.Attr.as_path = [ asn 2; asn 1 ]);
    check "extras attribute present and transitive" true
      (List.exists
         (fun (x : Dbgp_bgp.Attr.unknown) ->
           x.Dbgp_bgp.Attr.type_code = Legacy.attr_type_code && x.Dbgp_bgp.Attr.transitive)
         attrs.Dbgp_bgp.Attr.unknowns)
  | None -> Alcotest.fail "update must carry attributes"

let test_legacy_scrubbed_degrades () =
  let u = Legacy.to_update (fancy_ia ()) in
  let scrubbed =
    match u.Dbgp_bgp.Message.attrs with
    | Some attrs ->
      { u with
        Dbgp_bgp.Message.attrs =
          Some { attrs with Dbgp_bgp.Attr.unknowns = [] } }
    | None -> u
  in
  match Legacy.of_update scrubbed with
  | Some ia ->
    check "wiser info lost" true
      (Ia.find_path_descriptor ~proto:Protocol_id.wiser ~field:"wiser-cost" ia = None);
    check "baseline path kept" true (Ia.asns_on_path ia = [ asn 2; asn 1 ]);
    check "next hop kept" true (Ia.next_hop ia <> None)
  | None -> Alcotest.fail "plain BGP decode must still work"

let test_legacy_wire_roundtrip () =
  (* through the full Message codec, as a real legacy session would *)
  let u = Legacy.to_update (fancy_ia ()) in
  let wire = Dbgp_bgp.Message.encode (Dbgp_bgp.Message.Update u) in
  match Dbgp_bgp.Message.decode wire with
  | Dbgp_bgp.Message.Update u' ->
    check "IA survives the wire" true
      ( match Legacy.of_update u' with
        | Some ia -> Ia.equal ia (fancy_ia ())
        | None -> false )
  | _ -> Alcotest.fail "expected update"

let test_legacy_withdraw_only () =
  check "withdraw-only is None" true
    (Legacy.of_update
       { Dbgp_bgp.Message.withdrawn = [ pfx "1.0.0.0/8" ]; attrs = None; nlri = [] }
    = None)

let test_legacy_two_byte_as_trans () =
  (* A 4-byte ASN on the path: the 2-byte AS_PATH shows AS_TRANS, the
     extras attribute preserves the truth. *)
  let big = asn 4_200_000_001 in
  let ia = base_ia () |> Ia.prepend_as big |> Ia.prepend_as (asn 7) in
  let u = Legacy.to_update_two_byte ia in
  ( match u.Dbgp_bgp.Message.attrs with
    | Some attrs ->
      let path = Dbgp_bgp.Attr.as_path_asns attrs.Dbgp_bgp.Attr.as_path in
      check "big ASN replaced by AS_TRANS" true
        (path = [ asn 7; Legacy.as_trans; asn 1 ]);
      check "small ASNs untouched" true (List.mem (asn 7) path)
    | None -> Alcotest.fail "attrs expected" );
  check "true path reconstructable" true
    (Legacy.reconstruct_path u = Some [ asn 7; big; asn 1 ]);
  (* all-small paths are unchanged by the translation *)
  let small_u = Legacy.to_update_two_byte (base_ia ()) in
  check "no gratuitous substitution" true
    (Legacy.reconstruct_path small_u = Some [ asn 1 ])

(* ------------------------- header builder ------------------------- *)

let multi_island_ia () =
  let isl_s = Island_id.named "S" and isl_p = Island_id.named "P" in
  base_ia ()
  |> Ia.prepend_as (asn 2)
  |> Ia.declare_membership ~island:isl_p ~members:[ asn 2 ]
  |> Ia.prepend_island isl_s
  |> Scion.attach ~island:isl_s [ [ "s1"; "s2" ] ]
  |> Pathlet.attach ~island:isl_p
       [ Pathlet.make ~fid:4 [ Pathlet.Router "p1"; Pathlet.Deliver (pfx "99.0.0.0/24") ] ]

let test_header_builder_plan () =
  let ia = multi_island_ia () in
  let ingress_of i =
    if Island_id.equal i (Island_id.named "P") then Some (ip "10.9.0.2") else None
  in
  let plans = Hb.plan ~ia ~ingress_of in
  check_int "two islands planned" 2 (List.length plans);
  ( match plans with
    | [ first; second ] ->
      check "first island is SCION (nearest)" true
        (Island_id.equal first.Hb.island (Island_id.named "S"));
      check "scion header chosen" true
        ( match first.Hb.header with
          | Some (Dbgp_dataplane.Header.Scion_hdr { path; _ }) -> path = [ "s1"; "s2" ]
          | _ -> false );
      check "first island untunneled" true (first.Hb.tunnel = None);
      check "pathlet header for P" true
        ( match second.Hb.header with
          | Some (Dbgp_dataplane.Header.Pathlet_hdr { fids }) -> fids = [ 4 ]
          | _ -> false );
      check "P tunneled across the gulf" true (second.Hb.tunnel = Some (ip "10.9.0.2"))
    | _ -> Alcotest.fail "expected two plans" )

let test_header_builder_stack () =
  let ia = multi_island_ia () in
  let ingress_of i =
    if Island_id.equal i (Island_id.named "P") then Some (ip "10.9.0.2") else None
  in
  let stack = Hb.build ~ia ~src:(ip "10.0.0.99") ~dst:(ip "99.0.0.1") ~ingress_of in
  (* scion (no tunnel), tunnel to P, pathlet, inner ipv4 *)
  check_int "four headers" 4 (List.length stack);
  ( match List.rev stack with
    | Dbgp_dataplane.Header.Ipv4_hdr { dst; _ } :: _ ->
      check "innermost is ipv4 to dest" true (Ipv4.equal dst (ip "99.0.0.1"))
    | _ -> Alcotest.fail "innermost must be ipv4" );
  (* plain-BGP IA: just ipv4 *)
  let plain = Hb.build ~ia:(base_ia ()) ~src:(ip "1.1.1.1") ~dst:(ip "99.0.0.1")
      ~ingress_of:(fun _ -> None) in
  check_int "plain ia means plain ipv4" 1 (List.length plain)

let test_header_builder_unreachable_pathlets () =
  (* pathlets that do not reach the destination prefix produce no header *)
  let isl = Island_id.named "P" in
  let ia =
    base_ia ()
    |> Ia.prepend_island isl
    |> Pathlet.attach ~island:isl
         [ Pathlet.make ~fid:4 [ Pathlet.Router "p1"; Pathlet.Deliver (pfx "55.0.0.0/8") ] ]
  in
  match Hb.plan ~ia ~ingress_of:(fun _ -> None) with
  | [ p ] -> check "no header for useless pathlets" true (p.Hb.header = None)
  | _ -> Alcotest.fail "one island expected"

(* ------------------------- Arrow ------------------------- *)

module Arrow = Dbgp_protocols.Arrow
module Ron = Dbgp_protocols.Ron

let arrow_inst ?(guarantee = 500) () =
  Arrow.create
    { Arrow.my_island = Island_id.named "AR";
      portal = ip "172.16.9.1";
      guarantee;
      segment = { Arrow.ingress = ip "172.16.9.2"; egress = ip "172.16.9.3"; bandwidth = guarantee } }

let test_arrow_advertise_discover () =
  let a = arrow_inst () in
  let ia = Arrow.advertise a (base_ia ()) in
  match Arrow.discover ia with
  | [ d ] ->
    check "portal" true (Ipv4.equal d.Arrow.portal_addr (ip "172.16.9.1"));
    check_int "guarantee" 500 d.Arrow.guarantee
  | _ -> Alcotest.fail "expected one arrow service"

let test_arrow_buy_and_stitch () =
  let a = arrow_inst () in
  let io, register = Portal_io.in_memory () in
  register ~portal:(ip "172.16.9.1") ~service:Arrow.service (Arrow.serve a);
  ( match Arrow.buy ~io ~portal:(ip "172.16.9.1") ~min_bandwidth:400 with
    | Some seg ->
      check "segment bw" true (seg.Arrow.bandwidth = 500);
      check_int "one sold" 1 (Arrow.sold a);
      let other = { Arrow.ingress = ip "172.16.8.2"; egress = ip "172.16.8.3"; bandwidth = 300 } in
      let stack = Arrow.stitch ~segments:[ seg; other ] ~src:(ip "1.1.1.1") ~dst:(ip "2.2.2.2") in
      check_int "two tunnels + ipv4" 3 (List.length stack);
      check "effective = min" true (Arrow.effective_bandwidth [ seg; other ] = Some 300);
      check "empty effective" true (Arrow.effective_bandwidth [] = None)
    | None -> Alcotest.fail "purchase should succeed" );
  check "demand above guarantee refused" true
    (Arrow.buy ~io ~portal:(ip "172.16.9.1") ~min_bandwidth:600 = None)

(* ------------------------- RON ------------------------- *)

let test_ron_detour () =
  let r = Ron.create () in
  let a = ip "10.0.0.1" and b = ip "10.0.0.2" and relay = ip "10.0.0.3" in
  check "nothing probed" true (Ron.best_route r ~src:a ~dst:b = None);
  Ron.observe r a b ~latency_ms:100.;
  check "direct only" true (Ron.best_route r ~src:a ~dst:b = Some (Ron.Direct 100.));
  Ron.observe r a relay ~latency_ms:20.;
  Ron.observe r relay b ~latency_ms:30.;
  ( match Ron.best_route r ~src:a ~dst:b with
    | Some (Ron.Via (v, total)) ->
      check "detour relay" true (Ipv4.equal v relay);
      check "detour total" true (abs_float (total -. 50.) < 1e-9)
    | _ -> Alcotest.fail "detour should win" );
  (* detour worse than direct: stays direct *)
  Ron.observe r relay b ~latency_ms:300.;
  check "direct wins again" true (Ron.best_route r ~src:a ~dst:b = Some (Ron.Direct 100.));
  Alcotest.check_raises "negative latency" (Invalid_argument "Ron.observe: negative latency")
    (fun () -> Ron.observe r a b ~latency_ms:(-1.))

let test_ron_headers_and_discovery () =
  let r = Ron.create () in
  let a = ip "10.0.0.1" and b = ip "10.0.0.2" and relay = ip "10.0.0.3" in
  Ron.observe r a relay ~latency_ms:5.;
  Ron.observe r relay b ~latency_ms:5.;
  ( match Ron.best_route r ~src:a ~dst:b with
    | Some (Ron.Via _ as route) ->
      ( match Ron.headers_for route ~src:a ~dst:b with
        | [ Dbgp_dataplane.Header.Tunnel_hdr { endpoint }; Dbgp_dataplane.Header.Ipv4_hdr _ ] ->
          check "tunnel to relay" true (Ipv4.equal endpoint relay)
        | _ -> Alcotest.fail "expected tunnel + ipv4" )
    | _ -> Alcotest.fail "detour expected" );
  let ia = Ron.advertise ~island:(Island_id.named "R") ~node:relay (base_ia ()) in
  check "overlay node discoverable" true
    (Ron.discover ia = [ (Island_id.named "R", relay) ])

(* ------------------------- compressed codec + fuzz ------------------------- *)

let test_codec_compressed () =
  let ia =
    base_ia ()
    |> Ia.set_path_descriptor ~owners:[ Protocol_id.wiser ] ~field:"blob"
         (Value.Bytes (String.concat "" (List.init 100 (fun _ -> "wiser!"))))
  in
  let c = Dbgp_core.Codec.encode_compressed ia in
  check "roundtrip" true (Ia.equal ia (Dbgp_core.Codec.decode_compressed c));
  check "compresses repetitive descriptors" true
    (Dbgp_core.Codec.compressed_size ia < Dbgp_core.Codec.size ia / 2)

let qcheck_fuzz =
  let open QCheck in
  [ Test.make ~name:"codec decode never crashes on junk" ~count:500 string
      (fun s ->
        match Dbgp_core.Codec.decode s with
        | _ -> true
        | exception Dbgp_wire.Reader.Error _ -> true
        | exception Invalid_argument _ -> true);
    Test.make ~name:"message decode never crashes on junk" ~count:500 string
      (fun s ->
        match Dbgp_bgp.Message.decode s with
        | _ -> true
        | exception Dbgp_wire.Reader.Error _ -> true
        | exception Invalid_argument _ -> true);
    Test.make ~name:"legacy of_update total on decoded updates" ~count:200
      (list_of_size (Gen.int_range 1 5) (int_bound 100000))
      (fun path ->
        let ia =
          List.fold_left (fun ia n -> Ia.prepend_as (asn (n + 2)) ia) (base_ia ()) path
        in
        match Legacy.of_update (Legacy.to_update ia) with
        | Some _ -> true
        | None -> false) ]

let () =
  Alcotest.run "extensions"
    [ ("rbgp",
       [ Alcotest.test_case "backup roundtrip" `Quick test_rbgp_backup_roundtrip;
         Alcotest.test_case "most disjoint" `Quick test_rbgp_most_disjoint;
         Alcotest.test_case "module attaches backup" `Quick test_rbgp_module_attaches_backup ]);
      ("lisp", [ Alcotest.test_case "mobility" `Quick test_lisp_mobility ]);
      ("link-state",
       [ Alcotest.test_case "lsa validation" `Quick test_link_state_lsa_validation;
         Alcotest.test_case "flooding seq" `Quick test_link_state_flooding_seq;
         Alcotest.test_case "dijkstra" `Quick test_link_state_dijkstra;
         Alcotest.test_case "two-way check" `Quick test_link_state_two_way_check ]);
      ("hlp",
       [ Alcotest.test_case "cost accumulation" `Quick test_hlp_cost_accumulation;
         Alcotest.test_case "select cheapest" `Quick test_hlp_select_cheapest;
         Alcotest.test_case "partition blocks export" `Quick test_hlp_partition_blocks_export ]);
      ("legacy",
       [ Alcotest.test_case "roundtrip" `Quick test_legacy_roundtrip;
         Alcotest.test_case "as-path projection" `Quick test_legacy_as_path_projection;
         Alcotest.test_case "scrubbed degrades" `Quick test_legacy_scrubbed_degrades;
         Alcotest.test_case "wire roundtrip" `Quick test_legacy_wire_roundtrip;
         Alcotest.test_case "withdraw-only" `Quick test_legacy_withdraw_only;
         Alcotest.test_case "two-byte AS_TRANS" `Quick test_legacy_two_byte_as_trans ]);
      ("arrow",
       [ Alcotest.test_case "advertise/discover" `Quick test_arrow_advertise_discover;
         Alcotest.test_case "buy/stitch" `Quick test_arrow_buy_and_stitch ]);
      ("ron",
       [ Alcotest.test_case "detour selection" `Quick test_ron_detour;
         Alcotest.test_case "headers/discovery" `Quick test_ron_headers_and_discovery ]);
      ("compressed-codec",
       [ Alcotest.test_case "roundtrip+ratio" `Quick test_codec_compressed ]);
      ("fuzz", List.map QCheck_alcotest.to_alcotest qcheck_fuzz);
      ("header-builder",
       [ Alcotest.test_case "plan" `Quick test_header_builder_plan;
         Alcotest.test_case "stack" `Quick test_header_builder_stack;
         Alcotest.test_case "unreachable pathlets" `Quick test_header_builder_unreachable_pathlets ]) ]
