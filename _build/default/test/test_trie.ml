open Dbgp_types
module Trie = Dbgp_trie.Prefix_trie

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let p = Prefix.of_string
let ip = Ipv4.of_string

let test_add_find () =
  let t = Trie.empty |> Trie.add (p "10.0.0.0/8") "a" |> Trie.add (p "10.1.0.0/16") "b" in
  check "find /8" true (Trie.find (p "10.0.0.0/8") t = Some "a");
  check "find /16" true (Trie.find (p "10.1.0.0/16") t = Some "b");
  check "exact only" true (Trie.find (p "10.0.0.0/9") t = None);
  check "mem" true (Trie.mem (p "10.0.0.0/8") t);
  check_int "cardinal" 2 (Trie.cardinal t)

let test_replace () =
  let t = Trie.empty |> Trie.add (p "10.0.0.0/8") 1 |> Trie.add (p "10.0.0.0/8") 2 in
  check "replaced" true (Trie.find (p "10.0.0.0/8") t = Some 2);
  check_int "no dup" 1 (Trie.cardinal t)

let test_remove () =
  let t = Trie.empty |> Trie.add (p "10.0.0.0/8") 1 |> Trie.add (p "10.1.0.0/16") 2 in
  let t = Trie.remove (p "10.0.0.0/8") t in
  check "gone" true (Trie.find (p "10.0.0.0/8") t = None);
  check "sibling kept" true (Trie.find (p "10.1.0.0/16") t = Some 2);
  check "remove absent is noop" true
    (Trie.cardinal (Trie.remove (p "99.0.0.0/8") t) = 1);
  check "empty after full removal" true
    (Trie.is_empty (Trie.remove (p "10.1.0.0/16") t))

let test_update () =
  let t = Trie.update (p "1.0.0.0/8") (function None -> Some 5 | Some _ -> None) Trie.empty in
  check "inserted" true (Trie.find (p "1.0.0.0/8") t = Some 5);
  let t = Trie.update (p "1.0.0.0/8") (Option.map succ) t in
  check "modified" true (Trie.find (p "1.0.0.0/8") t = Some 6);
  let t = Trie.update (p "1.0.0.0/8") (fun _ -> None) t in
  check "deleted" true (Trie.is_empty t)

let test_longest_match () =
  let t =
    Trie.empty
    |> Trie.add (p "0.0.0.0/0") "default"
    |> Trie.add (p "10.0.0.0/8") "eight"
    |> Trie.add (p "10.1.0.0/16") "sixteen"
  in
  let lm a = Option.map snd (Trie.longest_match (ip a) t) in
  check "most specific" true (lm "10.1.2.3" = Some "sixteen");
  check "middle" true (lm "10.2.0.1" = Some "eight");
  check "default" true (lm "192.0.2.1" = Some "default");
  check "none" true
    (Trie.longest_match (ip "192.0.2.1") (Trie.remove (p "0.0.0.0/0") t) = None)

let test_matches_order () =
  let t =
    Trie.empty
    |> Trie.add (p "0.0.0.0/0") 0
    |> Trie.add (p "10.0.0.0/8") 8
    |> Trie.add (p "10.1.0.0/16") 16
  in
  let ms = Trie.matches (ip "10.1.9.9") t in
  check "most specific first" true (List.map snd ms = [ 16; 8; 0 ])

let test_covered () =
  let t =
    Trie.empty
    |> Trie.add (p "10.0.0.0/8") 'a'
    |> Trie.add (p "10.1.0.0/16") 'b'
    |> Trie.add (p "11.0.0.0/8") 'c'
  in
  let cs = Trie.covered (p "10.0.0.0/8") t in
  check_int "two covered" 2 (List.length cs);
  check "c excluded" false (List.exists (fun (_, v) -> v = 'c') cs)

let test_fold_order () =
  let t =
    Trie.of_list
      [ (p "192.0.0.0/8", 3); (p "10.0.0.0/8", 1); (p "10.0.0.0/16", 2) ]
  in
  let keys = List.map (fun (q, _) -> Prefix.to_string q) (Trie.bindings t) in
  check "prefix order" true
    (keys = [ "10.0.0.0/8"; "10.0.0.0/16"; "192.0.0.0/8" ])

let test_map_filter () =
  let t = Trie.of_list [ (p "1.0.0.0/8", 1); (p "2.0.0.0/8", 2) ] in
  let doubled = Trie.map (fun v -> v * 2) t in
  check "map" true (Trie.find (p "2.0.0.0/8") doubled = Some 4);
  let odd = Trie.filter (fun _ v -> v mod 2 = 1) t in
  check_int "filter" 1 (Trie.cardinal odd)

(* Model-based property tests against Prefix.Map and a linear scan. *)
let qcheck =
  let open QCheck in
  let genp =
    Gen.map
      (fun (net, len) -> Prefix.make (Ipv4.of_int (net lsl 12)) len)
      Gen.(pair (int_bound 0xFFFFF) (int_bound 20))
  in
  let arb_ops = make Gen.(list_size (int_range 0 60) (pair genp (int_bound 100))) in
  [ Test.make ~name:"trie agrees with Prefix.Map on add" ~count:200 arb_ops
      (fun ops ->
        let t = List.fold_left (fun t (q, v) -> Trie.add q v t) Trie.empty ops in
        let m =
          List.fold_left (fun m (q, v) -> Prefix.Map.add q v m) Prefix.Map.empty ops
        in
        Trie.bindings t = Prefix.Map.bindings m);
    Test.make ~name:"longest_match agrees with linear scan" ~count:200
      (make Gen.(pair (list_size (int_range 0 40) (pair genp (int_bound 100))) (int_bound 0xFFFFFFF)))
      (fun (ops, addr_seed) ->
        let addr = Ipv4.of_int (addr_seed lsl 4) in
        let t = List.fold_left (fun t (q, v) -> Trie.add q v t) Trie.empty ops in
        let m =
          List.fold_left (fun m (q, v) -> Prefix.Map.add q v m) Prefix.Map.empty ops
        in
        let linear =
          Prefix.Map.fold
            (fun q v acc ->
              if Prefix.mem addr q then
                match acc with
                | Some (q', _) when Prefix.length q' >= Prefix.length q -> acc
                | _ -> Some (q, v)
              else acc)
            m None
        in
        Trie.longest_match addr t = linear);
    Test.make ~name:"remove really removes" ~count:200 arb_ops (fun ops ->
        let t = List.fold_left (fun t (q, v) -> Trie.add q v t) Trie.empty ops in
        List.for_all
          (fun (q, _) -> Trie.find q (Trie.remove q t) = None)
          ops) ]

let () =
  Alcotest.run "trie"
    [ ("basics",
       [ Alcotest.test_case "add/find" `Quick test_add_find;
         Alcotest.test_case "replace" `Quick test_replace;
         Alcotest.test_case "remove" `Quick test_remove;
         Alcotest.test_case "update" `Quick test_update ]);
      ("lookup",
       [ Alcotest.test_case "longest match" `Quick test_longest_match;
         Alcotest.test_case "matches order" `Quick test_matches_order;
         Alcotest.test_case "covered" `Quick test_covered ]);
      ("traversal",
       [ Alcotest.test_case "fold order" `Quick test_fold_order;
         Alcotest.test_case "map/filter" `Quick test_map_filter ]);
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck) ]
