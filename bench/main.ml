(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation and runs bechamel micro-benchmarks over the kernels behind
   them (IA codec, speaker pipeline, benefit-propagation round), plus the
   ablations called out in DESIGN.md (in-band vs out-of-band
   dissemination, island-ID abstraction vs full AS listing, descriptor
   sharing on/off). *)

open Bechamel
open Toolkit
module E = Dbgp_eval
open Dbgp_types
module Ia = Dbgp_core.Ia
module Value = Dbgp_core.Value
module Codec = Dbgp_core.Codec
module Speaker = Dbgp_core.Speaker
module Peer = Dbgp_core.Peer

let out = Format.std_formatter

(* ------------------------------------------------------------------ *)
(* Micro-benchmark kernels                                             *)
(* ------------------------------------------------------------------ *)

let sample_ia payload =
  let ia =
    Ia.originate
      ~prefix:(Prefix.of_string "198.51.100.0/24")
      ~origin_asn:(Asn.of_int 64501)
      ~next_hop:(Ipv4.of_string "10.0.0.1")
      ()
    |> Ia.prepend_as (Asn.of_int 64502)
    |> Ia.prepend_as (Asn.of_int 64503)
    |> Ia.prepend_island (Island_id.named "A")
  in
  if payload = 0 then ia
  else
    Ia.set_path_descriptor
      ~owners:[ Protocol_id.wiser; Protocol_id.bgpsec; Protocol_id.eq_bgp ]
      ~field:"payload"
      (Value.Bytes (String.make payload 'x'))
      ia

(* Section 5 stress kernels: encode / decode / full speaker receive. *)
let encode_test payload =
  let ia = sample_ia payload in
  Test.make
    ~name:(Printf.sprintf "encode-%dB" payload)
    (Staged.stage (fun () -> ignore (Codec.encode ia)))

let decode_test payload =
  let wire = Codec.encode (sample_ia payload) in
  Test.make
    ~name:(Printf.sprintf "decode-%dB" payload)
    (Staged.stage (fun () -> ignore (Codec.decode wire)))

let speaker_receive_test () =
  let speaker =
    Speaker.create
      (Speaker.config ~asn:(Asn.of_int 64510)
         ~addr:(Ipv4.of_string "10.9.9.9") ())
  in
  let from = Peer.make ~asn:(Asn.of_int 64502) ~addr:(Ipv4.of_string "10.9.9.2") in
  Speaker.add_neighbor speaker
    (Speaker.neighbor ~relationship:Dbgp_bgp.Policy.To_peer from);
  let ia = sample_ia 128 in
  Test.make ~name:"speaker-receive"
    (Staged.stage (fun () ->
         ignore (Speaker.receive speaker ~from (Speaker.Announce ia))))

(* Figure 9/10 kernel: one full per-destination benefit propagation. *)
let benefit_round_test () =
  let cfg =
    { E.Benefits.default with
      E.Benefits.brite = { Dbgp_topology.Brite.default with Dbgp_topology.Brite.n = 200 };
      trials = 1;
      dest_sample = 5;
      adoption_levels = [ 50 ] }
  in
  Test.make ~name:"fig9-propagation-n200"
    (Staged.stage (fun () ->
         ignore (E.Benefits.extra_paths cfg E.Benefits.Dbgp_baseline)))

(* Table 3 kernel: the analytic model itself. *)
let overhead_test () =
  Test.make ~name:"table3-model"
    (Staged.stage (fun () ->
         ignore (E.Overhead.table3 E.Overhead.lo);
         ignore (E.Overhead.table3 E.Overhead.hi)))

(* Ablation: out-of-band dissemination pays a lookup access per IA
   (CF-R2's constant penalty). *)
let oob_ablation_tests () =
  let lookup = Dbgp_netsim.Lookup_service.create () in
  let portal = Ipv4.of_string "172.16.0.1" in
  let ia = sample_ia 128 in
  let wire = Codec.encode ia in
  Dbgp_netsim.Lookup_service.post lookup ~portal ~service:"ia-store" ~key:"k"
    (Value.Bytes wire);
  let inband =
    Test.make ~name:"dissemination-in-band"
      (Staged.stage (fun () -> ignore (Codec.decode wire)))
  in
  let oob =
    Test.make ~name:"dissemination-out-of-band"
      (Staged.stage (fun () ->
           match
             Dbgp_netsim.Lookup_service.fetch lookup ~portal ~service:"ia-store"
               ~key:"k"
           with
           | Some (Value.Bytes w) -> ignore (Codec.decode w)
           | _ -> assert false))
  in
  [ inband; oob ]

let bench_groups () =
  [ Test.make_grouped ~name:"stress"
      [ encode_test 0; encode_test 1024; encode_test 32768;
        decode_test 0; decode_test 1024; decode_test 32768;
        speaker_receive_test () ];
    Test.make_grouped ~name:"figures" [ benefit_round_test () ];
    Test.make_grouped ~name:"tables" [ overhead_test () ];
    Test.make_grouped ~name:"ablation-oob" (oob_ablation_tests ()) ]

let run_bechamel () =
  Format.fprintf out
    "@.==================== bechamel micro-benchmarks ====================@.@.";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~stabilize:true ~quota:(Time.second 0.25) ()
  in
  List.iter
    (fun group ->
      let raw = Benchmark.all cfg instances group in
      let results = Analyze.all ols Instance.monotonic_clock raw in
      Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results []
      |> List.sort (fun (a, _) (b, _) -> String.compare a b)
      |> List.iter (fun (name, ols) ->
             match Analyze.OLS.estimates ols with
             | Some [ ns ] when ns >= 1000. ->
               Format.fprintf out "%-40s %12.2f us/run@." name (ns /. 1000.)
             | Some [ ns ] -> Format.fprintf out "%-40s %12.1f ns/run@." name ns
             | _ -> Format.fprintf out "%-40s (no estimate)@." name))
    (bench_groups ());
  Format.fprintf out "@."

(* ------------------------------------------------------------------ *)
(* Ablation: island-ID abstraction vs full AS listing (IA size and     *)
(* path diversity trade-off of Section 3.2)                            *)
(* ------------------------------------------------------------------ *)

let island_id_ablation () =
  Format.fprintf out
    "==================== ablation: island-ID abstraction ====================@.@.";
  let members = List.init 12 (fun i -> Asn.of_int (64600 + i)) in
  let listed =
    List.fold_left
      (fun ia a -> Ia.prepend_as a ia)
      (Ia.originate
         ~prefix:(Prefix.of_string "198.51.100.0/24")
         ~origin_asn:(Asn.of_int 64501)
         ~next_hop:(Ipv4.of_string "10.0.0.1")
         ())
      members
    |> Ia.declare_membership ~island:(Island_id.named "big-island") ~members
  in
  let abstracted =
    Ia.abstract_island ~island:(Island_id.named "big-island") ~members listed
  in
  Format.fprintf out
    "full AS listing:      %4d bytes, path length %2d (loop detection per AS)@."
    (Codec.size listed) (Ia.path_length listed);
  Format.fprintf out
    "island-ID abstracted: %4d bytes, path length %2d (diversity reduced to island granularity)@.@."
    (Codec.size abstracted)
    (Ia.path_length abstracted)

(* ------------------------------------------------------------------ *)
(* Experiment regenerators (same outputs as bin/dbgp-sim)              *)
(* ------------------------------------------------------------------ *)

let rule title =
  Format.fprintf out "@.==================== %s ====================@.@." title

let print_benefit fig (dbgp : E.Benefits.series) (bgp : E.Benefits.series) =
  Format.fprintf out "Figure %s: %s archetype@.@." fig dbgp.E.Benefits.archetype;
  Format.fprintf out "status quo: %.1f    best case: %.1f@.@."
    dbgp.E.Benefits.status_quo dbgp.E.Benefits.best_case;
  Format.fprintf out "%9s %22s %22s@." "adoption" "D-BGP baseline" "BGP baseline";
  List.iter2
    (fun (d : E.Benefits.point) (b : E.Benefits.point) ->
      Format.fprintf out "%8d%% %12.1f +/-%6.1f %12.1f +/-%6.1f@."
        d.E.Benefits.adoption_pct d.E.Benefits.mean d.E.Benefits.ci95
        b.E.Benefits.mean b.E.Benefits.ci95)
    dbgp.E.Benefits.points bgp.E.Benefits.points;
  List.iter
    (fun (s : E.Benefits.series) ->
      match E.Benefits.crossover s with
      | Some pct ->
        Format.fprintf out "%s crosses status quo at %d%%@."
          (E.Benefits.baseline_name s.E.Benefits.baseline)
          pct
      | None ->
        Format.fprintf out "%s never crosses status quo@."
          (E.Benefits.baseline_name s.E.Benefits.baseline))
    [ dbgp; bgp ]

(* ------------------------------------------------------------------ *)
(* Chaos scenario: reconvergence under seeded faults, persisted as      *)
(* BENCH_chaos.json so runs can be compared across revisions.           *)
(* ------------------------------------------------------------------ *)

let chaos_bench () =
  rule "Chaos: reconvergence under seeded faults";
  let r = E.Chaos.run E.Chaos.default in
  let s = E.Chaos.session_chaos ~seed:E.Chaos.default.E.Chaos.seed () in
  Format.fprintf out "%a@.%a@." E.Chaos.pp_report r E.Chaos.pp_session_report s;
  let reconvergence_time =
    r.E.Chaos.final.Dbgp_netsim.Network.converged_at
    -. r.E.Chaos.initial.Dbgp_netsim.Network.converged_at
  in
  let message_overhead =
    r.E.Chaos.final.Dbgp_netsim.Network.messages
    - r.E.Chaos.initial.Dbgp_netsim.Network.messages
  in
  let oc = open_out "BENCH_chaos.json" in
  Printf.fprintf oc
    "{\n\
    \  \"seed\": %d,\n\
    \  \"ases\": %d,\n\
    \  \"loss\": %g,\n\
    \  \"flaps\": %d,\n\
    \  \"initial_messages\": %d,\n\
    \  \"initial_converged_at\": %g,\n\
    \  \"final_messages\": %d,\n\
    \  \"final_converged_at\": %g,\n\
    \  \"reconvergence_time\": %g,\n\
    \  \"message_overhead\": %d,\n\
    \  \"dropped\": %d,\n\
    \  \"stale_leaks\": %d,\n\
    \  \"forwarding_loops\": %d,\n\
    \  \"corruption_injected\": %d,\n\
    \  \"corruption_survived\": %d,\n\
    \  \"errors_discard_attribute\": %d,\n\
    \  \"errors_treat_as_withdraw\": %d,\n\
    \  \"errors_session_reset\": %d,\n\
    \  \"invariants_ok\": %b,\n\
    \  \"censored\": %b,\n\
    \  \"healthy\": %b,\n\
    \  \"session_pairs_restored\": %d,\n\
    \  \"session_retries\": %d\n\
     }\n"
    r.E.Chaos.config.E.Chaos.seed r.E.Chaos.config.E.Chaos.ases
    r.E.Chaos.config.E.Chaos.loss
    (List.length r.E.Chaos.flapped)
    r.E.Chaos.initial.Dbgp_netsim.Network.messages
    r.E.Chaos.initial.Dbgp_netsim.Network.converged_at
    r.E.Chaos.final.Dbgp_netsim.Network.messages
    r.E.Chaos.final.Dbgp_netsim.Network.converged_at reconvergence_time
    message_overhead r.E.Chaos.dropped r.E.Chaos.stale_leaks
    r.E.Chaos.forwarding_loops r.E.Chaos.corrupted
    r.E.Chaos.corruption_survived
    (List.assoc "errors.discard_attribute" r.E.Chaos.error_verdicts)
    (List.assoc "errors.treat_as_withdraw" r.E.Chaos.error_verdicts)
    (List.assoc "errors.session_reset" r.E.Chaos.error_verdicts)
    (E.Invariants.ok r.E.Chaos.invariants)
    r.E.Chaos.censored
    (E.Chaos.healthy r) s.E.Chaos.established s.E.Chaos.retries;
  close_out oc;
  Format.fprintf out "wrote BENCH_chaos.json@."

(* ------------------------------------------------------------------ *)
(* Fuzz scenario: the seeded adversarial-input run, persisted as        *)
(* BENCH_fuzz.json.  Every field except cases_per_sec is reproducible   *)
(* from the seed.                                                       *)
(* ------------------------------------------------------------------ *)

let fuzz_bench () =
  rule "Fuzz: adversarial inputs through codec and speaker";
  let r = E.Fuzz.run E.Fuzz.default in
  Format.fprintf out "%a@." E.Fuzz.pp_report r;
  let oc = open_out "BENCH_fuzz.json" in
  output_string oc (Dbgp_obs.Snapshot.to_json_pretty (E.Fuzz.to_snapshot r));
  close_out oc;
  Format.fprintf out "wrote BENCH_fuzz.json@."

(* ------------------------------------------------------------------ *)
(* Pipeline scenario: decision-run coalescing and export-cache hit      *)
(* rates under MRAI batching, at three BRITE sizes, persisted as        *)
(* BENCH_pipeline.json.  Deterministic except for the wall-clock        *)
(* fields.                                                              *)
(* ------------------------------------------------------------------ *)

let pipeline_bench () =
  rule "Pipeline: dirty-prefix coalescing and export caching";
  let rows = E.Pipeline_bench.suite () in
  List.iter (fun r -> Format.fprintf out "%a@." E.Pipeline_bench.pp r) rows;
  let doc =
    Dbgp_obs.Snapshot.Obj
      [ ("seed", Dbgp_obs.Snapshot.Int 42);
        ("mrai", Dbgp_obs.Snapshot.Float 2.0);
        ( "rows",
          Dbgp_obs.Snapshot.List (List.map E.Pipeline_bench.to_snapshot rows)
        ) ]
  in
  let oc = open_out "BENCH_pipeline.json" in
  output_string oc (Dbgp_obs.Snapshot.to_json_pretty doc);
  close_out oc;
  Format.fprintf out "wrote BENCH_pipeline.json@."

(* ------------------------------------------------------------------ *)
(* Hot-path scenario: updates/s, GC words per update and wire-cache hit *)
(* rates at three BRITE sizes in both delivery modes, compared against  *)
(* the recorded pre-change baseline, persisted as BENCH_perf.json.      *)
(* Message counts are deterministic; timing and GC fields are not.      *)
(* ------------------------------------------------------------------ *)

let perf_bench () =
  rule "Hot path: throughput, allocation and wire caches";
  let rows = E.Perf_bench.suite () in
  List.iter (fun r -> Format.fprintf out "%a@." E.Perf_bench.pp r) rows;
  let headline = E.Perf_bench.headline rows in
  ( match headline with
    | Some h -> Format.fprintf out "%a@." E.Perf_bench.pp_headline h
    | None -> () );
  rule "Sharded execution: domain-count scaling (determinism-checked)";
  let sharded = E.Perf_bench.domains_suite ~ases:1000 () in
  List.iter (fun r -> Format.fprintf out "%a@." E.Perf_bench.pp_sharded r) sharded;
  if List.exists (fun r -> not r.E.Perf_bench.s_transcript_match) sharded then
    failwith "sharded transcript diverged from the sequential run";
  let doc =
    Dbgp_obs.Snapshot.Obj
      [ ("seed", Dbgp_obs.Snapshot.Int 42);
        ("mrai", Dbgp_obs.Snapshot.Float 2.0);
        ( "rows",
          Dbgp_obs.Snapshot.List (List.map E.Perf_bench.to_snapshot rows) );
        ( "sharded",
          Dbgp_obs.Snapshot.List
            (List.map E.Perf_bench.sharded_to_snapshot sharded) );
        ( "headline",
          match headline with
          | Some h -> E.Perf_bench.headline_to_snapshot h
          | None -> Dbgp_obs.Snapshot.Null ) ]
  in
  let oc = open_out "BENCH_perf.json" in
  output_string oc (Dbgp_obs.Snapshot.to_json_pretty doc);
  close_out oc;
  Format.fprintf out "wrote BENCH_perf.json@."

(* ------------------------------------------------------------------ *)
(* Internet-scale scenario: CAIDA-style topologies, full-table feed     *)
(* load, words/route, and the three-way table-transfer comparison       *)
(* (legacy storm vs clean incremental sync vs churned sync), persisted  *)
(* as BENCH_scale.json.  Message and skip counts are deterministic;     *)
(* timing and GC fields are not.                                        *)
(* ------------------------------------------------------------------ *)

let scale_bench () =
  rule "Internet scale: table transfer and RIB footprint";
  let rows = E.Scale_bench.suite () in
  List.iter (fun r -> Format.fprintf out "%a@." E.Scale_bench.pp r) rows;
  let doc =
    Dbgp_obs.Snapshot.Obj
      [ ("seed", Dbgp_obs.Snapshot.Int 42);
        ("mrai", Dbgp_obs.Snapshot.Float 0.5);
        ( "rows",
          Dbgp_obs.Snapshot.List (List.map E.Scale_bench.to_snapshot rows) ) ]
  in
  let oc = open_out "BENCH_scale.json" in
  output_string oc (Dbgp_obs.Snapshot.to_json_pretty doc);
  close_out oc;
  Format.fprintf out "wrote BENCH_scale.json@."

(* ------------------------------------------------------------------ *)
(* Observability scenario: one converged dissemination read back out    *)
(* through the metrics layer, persisted as BENCH_obs.json.  The run is  *)
(* fully seeded, so the file is byte-reproducible across revisions.     *)
(* ------------------------------------------------------------------ *)

let obs_bench () =
  rule "Observability: converged-network snapshot";
  let o = E.Convergence.observe ~ases:200 ~recent_events:0 ~seed:42 () in
  Format.fprintf out "%a@." E.Convergence.pp_observed o;
  let doc =
    Dbgp_obs.Snapshot.Obj
      [ ("seed", Dbgp_obs.Snapshot.Int 42);
        ("ases", Dbgp_obs.Snapshot.Int o.E.Convergence.ases);
        ("censored", Dbgp_obs.Snapshot.Bool o.E.Convergence.censored);
        ("messages", Dbgp_obs.Snapshot.Int o.E.Convergence.messages);
        ("announce_bytes", Dbgp_obs.Snapshot.Int o.E.Convergence.announce_bytes);
        ("decision_runs", Dbgp_obs.Snapshot.Int o.E.Convergence.decision_runs);
        ( "decision_changes",
          Dbgp_obs.Snapshot.Int o.E.Convergence.decision_changes );
        ("convergence_p50", Dbgp_obs.Snapshot.Float o.E.Convergence.p50);
        ("convergence_p90", Dbgp_obs.Snapshot.Float o.E.Convergence.p90);
        ("convergence_p99", Dbgp_obs.Snapshot.Float o.E.Convergence.p99);
        ("snapshot", o.E.Convergence.snapshot) ]
  in
  let oc = open_out "BENCH_obs.json" in
  output_string oc (Dbgp_obs.Snapshot.to_json_pretty doc);
  close_out oc;
  Format.fprintf out "wrote BENCH_obs.json@."

(* ------------------------------------------------------------------ *)
(* Stability scenario: the divergence lab — known-divergent gadgets     *)
(* and converged controls, flap damping off and on, persisted as        *)
(* BENCH_stability.json.  Fully seeded, so the file is reproducible.    *)
(* ------------------------------------------------------------------ *)

let stability_bench () =
  rule "Stability: divergence lab (gadgets vs controls, damping off/on)";
  let cases = E.Scenarios.divergence_cases ~seed:42 ~control_ases:30 () in
  let r = E.Stability.run_cases ~budget:20_000 cases in
  Format.fprintf out "%a@." E.Stability.pp_report r;
  let oc = open_out "BENCH_stability.json" in
  output_string oc (Dbgp_obs.Snapshot.to_json_pretty (E.Stability.to_snapshot r));
  close_out oc;
  Format.fprintf out "wrote BENCH_stability.json@."

(* ------------------------------------------------------------------ *)
(* Adversary suite: every attack class across the three protocol arms, *)
(* scored by blast radius, persisted as BENCH_adversary.json.  Fully   *)
(* seeded, so the file is byte-reproducible.                           *)
(* ------------------------------------------------------------------ *)

let adversary_bench () =
  rule "Adversary suite: hijacks, leaks and island attacks (blast radius)";
  let r = E.Adversary.run E.Adversary.default in
  Format.fprintf out "%a@." E.Adversary.pp_report r;
  let oc = open_out "BENCH_adversary.json" in
  output_string oc (Dbgp_obs.Snapshot.to_json_pretty (E.Adversary.to_snapshot r));
  close_out oc;
  Format.fprintf out "wrote BENCH_adversary.json@."

let () =
  let t0 = Unix.gettimeofday () in
  rule "Table 1: protocol taxonomy";
  List.iter
    (fun scenario ->
      Format.fprintf out "%s@." (E.Taxonomy.scenario_name scenario);
      List.iter
        (fun (e : E.Taxonomy.entry) ->
          Format.fprintf out "  %-12s %-40s %s@." e.E.Taxonomy.name
            e.E.Taxonomy.summary
            (String.concat "; " e.E.Taxonomy.control_info))
        (E.Taxonomy.by_scenario scenario))
    [ E.Taxonomy.Critical_fix; E.Taxonomy.Custom_protocol;
      E.Taxonomy.Replacement_protocol ];
  rule "Table 2: overhead-model parameters";
  List.iter
    (fun (p, v, r, _) -> Format.fprintf out "%-36s %-9s %s@." p v r)
    E.Overhead.table2;
  rule "Table 3: control-plane overhead";
  List.iter2
    (fun (lo : E.Overhead.row) (hi : E.Overhead.row) ->
      Format.fprintf out "%-22s %a - %a@." lo.E.Overhead.name
        E.Overhead.pp_bytes lo.E.Overhead.total_bytes E.Overhead.pp_bytes
        hi.E.Overhead.total_bytes)
    (E.Overhead.table3 E.Overhead.lo)
    (E.Overhead.table3 E.Overhead.hi);
  Format.fprintf out "overhead ratio: %.1fx - %.1fx (paper: 1.3x - 2.5x)@."
    (E.Overhead.overhead_ratio E.Overhead.lo)
    (E.Overhead.overhead_ratio E.Overhead.hi);
  rule "Section 5: stress test";
  List.iter
    (fun r -> Format.fprintf out "%a@." E.Stress.pp_result r)
    (E.Stress.suite ~advertisements:2_000 ());
  rule "Section 6.1: deployment across gulfs (Figure 8)";
  let w = E.Scenarios.wiser_across_gulf () in
  Format.fprintf out "Wiser:   cost at S = %s (BGP baseline: %s), low-cost path chosen: %b@."
    (match w.E.Scenarios.cost_seen with Some c -> string_of_int c | None -> "none")
    (match w.E.Scenarios.cost_seen_bgp with Some c -> string_of_int c | None -> "none")
    w.E.Scenarios.chose_low_cost;
  let p = E.Scenarios.pathlet_across_gulf () in
  Format.fprintf out "Pathlet: %d/%d pathlets at S (BGP baseline: %d), %d end-to-end routes@."
    p.E.Scenarios.seen p.E.Scenarios.expected p.E.Scenarios.seen_bgp
    p.E.Scenarios.end_to_end;
  rule "Section 6.1: LoC report";
  E.Loc_report.pp out (E.Loc_report.report ());
  rule "Figures 1-3: motivating scenarios";
  let m = E.Scenarios.miro_discovery () in
  Format.fprintf out "MIRO discovery: %b (BGP: %b), tunnel works: %b@."
    m.E.Scenarios.discovered m.E.Scenarios.discovered_bgp m.E.Scenarios.tunnel_works;
  let s = E.Scenarios.scion_multipath () in
  Format.fprintf out "SCION paths at S: %d (BGP: %d), extra path forwards: %b@."
    s.E.Scenarios.paths_seen s.E.Scenarios.paths_seen_bgp s.E.Scenarios.forwarded_on_extra;
  rule "Figures 6-7: rich world";
  let ia, c = E.Rich_world.run () in
  ( match ia with
    | Some ia -> Format.fprintf out "%a@." Ia.pp ia
    | None -> Format.fprintf out "no IA@." );
  Format.fprintf out "all Figure-7 content present: %b@." (E.Rich_world.expected_ok c);
  let bench_cfg =
    { E.Benefits.default with E.Benefits.trials = 5; dest_sample = 60 }
  in
  rule "Figure 9: extra-paths archetype (1000 ASes)";
  print_benefit "9"
    (E.Benefits.extra_paths bench_cfg E.Benefits.Dbgp_baseline)
    (E.Benefits.extra_paths bench_cfg E.Benefits.Bgp_baseline);
  rule "Figure 10: bottleneck-bandwidth archetype (1000 ASes)";
  print_benefit "10"
    (E.Benefits.bottleneck_bandwidth bench_cfg E.Benefits.Dbgp_baseline)
    (E.Benefits.bottleneck_bandwidth bench_cfg E.Benefits.Bgp_baseline);
  rule "Ablation: adoption order (Figure 9 archetype)";
  List.iter
    (fun (label, order) ->
      let s = E.Benefits.extra_paths ~order bench_cfg E.Benefits.Dbgp_baseline in
      let at pct =
        (List.find (fun (p : E.Benefits.point) -> p.E.Benefits.adoption_pct = pct)
           s.E.Benefits.points)
          .E.Benefits.mean
      in
      Format.fprintf out "%-12s benefit at 20%% adoption: %8.1f   at 50%%: %8.1f@."
        label (at 20) (at 50))
    [ ("random", E.Benefits.Random_order); ("core-first", E.Benefits.Core_first);
      ("edge-first", E.Benefits.Edge_first) ];
  Format.fprintf out
    "(benefit is measured at upgraded stubs: a core-first rollout shows 0 until@.";
  Format.fprintf out
    " stubs join, then jumps — the transit core is already multipath-capable;@.";
  Format.fprintf out
    " edge-first scatters adopters and underperforms random at every level)@.";
  rule "Section 6.3 aside: end-to-end-latency archetype (additive objective)";
  Format.fprintf out "%a@." E.Benefits.pp_series
    (E.Benefits.end_to_end_latency bench_cfg E.Benefits.Dbgp_baseline);
  rule "Figure 10 mitigation: coverage-gated archetype (Section 3.5)";
  Format.fprintf out "%a@." E.Benefits.pp_series
    (E.Benefits.bottleneck_bandwidth_threshold bench_cfg ~coverage_pct:100
       E.Benefits.Dbgp_baseline);
  rule "Section 3.5: convergence";
  List.iter
    (fun d -> Format.fprintf out "%a@." E.Convergence.pp_dissemination d)
    (E.Convergence.vs_size ~seed:42 ());
  Format.fprintf out "%a@." E.Convergence.pp_failure
    (E.Convergence.after_failure ~seed:42 ());
  Format.fprintf out "%a@." E.Convergence.pp_reset (E.Convergence.session_reset ());
  Format.fprintf out "%a@." E.Convergence.pp_reset
    (E.Convergence.session_reset ~payload_bytes:4096 ());
  rule "Table 3 empirical validation";
  List.iter
    (fun c -> Format.fprintf out "%a@." E.Empirical_overhead.pp c)
    (E.Empirical_overhead.run ());
  island_id_ablation ();
  chaos_bench ();
  fuzz_bench ();
  pipeline_bench ();
  perf_bench ();
  scale_bench ();
  obs_bench ();
  stability_bench ();
  adversary_bench ();
  run_bechamel ();
  Format.fprintf out "total bench time: %.1fs@." (Unix.gettimeofday () -. t0)
