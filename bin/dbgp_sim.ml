(* dbgp-sim: command-line driver for every experiment in the paper.

   Each subcommand regenerates one table or figure of "Bootstrapping
   evolvability for inter-domain routing with D-BGP" (SIGCOMM 2017). *)

open Cmdliner
module E = Dbgp_eval

let out = Format.std_formatter

(* ---------- table1 ---------- *)

let table1 () =
  Format.fprintf out "Table 1: analyzed protocols by evolvability scenario@.";
  List.iter
    (fun scenario ->
      Format.fprintf out "@.%s@." (E.Taxonomy.scenario_name scenario);
      List.iter
        (fun (e : E.Taxonomy.entry) ->
          Format.fprintf out "  %-12s %-38s %s%s@." e.E.Taxonomy.name
            e.E.Taxonomy.summary
            (String.concat "; " e.E.Taxonomy.control_info)
            ( match e.E.Taxonomy.implemented_by with
              | Some m -> "  [" ^ m ^ "]"
              | None -> "" ))
        (E.Taxonomy.by_scenario scenario))
    [ E.Taxonomy.Critical_fix; E.Taxonomy.Custom_protocol;
      E.Taxonomy.Replacement_protocol ];
  Format.fprintf out "@.registry consistent: %b@." (E.Taxonomy.consistent ())

(* ---------- table2 / table3 ---------- *)

let table2 () =
  Format.fprintf out
    "Table 2: parameters for the control-plane overhead analysis@.@.";
  Format.fprintf out "%-36s %-9s %-22s %s@." "Parameter" "Variable" "Range"
    "Rationale";
  List.iter
    (fun (p, v, r, why) -> Format.fprintf out "%-36s %-9s %-22s %s@." p v r why)
    E.Overhead.table2

let table3 () =
  Format.fprintf out "Table 3: control-plane overhead of D-BGP at a tier-1 AS@.@.";
  Format.fprintf out "%-22s %14s %14s %14s %16s@." "Name" "CF bytes/IA"
    "CR bytes/IA" "# of IAs" "Total overhead";
  let row name (at_lo : E.Overhead.row) (at_hi : E.Overhead.row) =
    Format.fprintf out "%-22s %6d-%-8d %6d-%-8d %7d-%-8d %a - %a@." name
      at_lo.E.Overhead.ia_cf_bytes at_hi.E.Overhead.ia_cf_bytes
      at_lo.E.Overhead.ia_cr_bytes at_hi.E.Overhead.ia_cr_bytes
      at_lo.E.Overhead.advertisements at_hi.E.Overhead.advertisements
      E.Overhead.pp_bytes at_lo.E.Overhead.total_bytes E.Overhead.pp_bytes
      at_hi.E.Overhead.total_bytes
  in
  List.iter2
    (fun (lo : E.Overhead.row) hi -> row lo.E.Overhead.name lo hi)
    (E.Overhead.table3 E.Overhead.lo)
    (E.Overhead.table3 E.Overhead.hi);
  Format.fprintf out
    "@.multi-protocol vs single-protocol overhead: %.1fx (min) - %.1fx (max)@."
    (E.Overhead.overhead_ratio E.Overhead.lo)
    (E.Overhead.overhead_ratio E.Overhead.hi);
  Format.fprintf out
    "(paper: 24 GB-36,000 GB basic; 7-1,300 GB +paths; 3-610 GB +sharing;@.";
  Format.fprintf out " 2.3-240 GB single; headline ratio 1.3x-2.5x)@."

(* ---------- fig9 / fig10 ---------- *)

let benefit_cfg n trials dests seed =
  { E.Benefits.default with
    E.Benefits.brite = { Dbgp_topology.Brite.default with Dbgp_topology.Brite.n };
    trials;
    dest_sample = dests;
    seed }

let print_benefit fig archetype_name (dbgp : E.Benefits.series)
    (bgp : E.Benefits.series) =
  Format.fprintf out "Figure %s: incremental benefits, %s archetype@.@." fig
    archetype_name;
  Format.fprintf out "status quo: %.1f    best case: %.1f@.@." dbgp.E.Benefits.status_quo
    dbgp.E.Benefits.best_case;
  Format.fprintf out "%9s %22s %22s@." "adoption" "D-BGP baseline"
    "BGP baseline";
  List.iter2
    (fun (d : E.Benefits.point) (b : E.Benefits.point) ->
      Format.fprintf out "%8d%% %12.1f +/-%6.1f %12.1f +/-%6.1f@."
        d.E.Benefits.adoption_pct d.E.Benefits.mean d.E.Benefits.ci95
        b.E.Benefits.mean b.E.Benefits.ci95)
    dbgp.E.Benefits.points bgp.E.Benefits.points;
  let show_cross name s =
    match E.Benefits.crossover s with
    | Some pct -> Format.fprintf out "%s crosses status quo at %d%% adoption@." name pct
    | None -> Format.fprintf out "%s never crosses status quo@." name
  in
  Format.fprintf out "@.";
  show_cross "D-BGP baseline" dbgp;
  show_cross "BGP baseline" bgp

let fig9 n trials dests seed =
  let cfg = benefit_cfg n trials dests seed in
  let dbgp = E.Benefits.extra_paths cfg E.Benefits.Dbgp_baseline in
  let bgp = E.Benefits.extra_paths cfg E.Benefits.Bgp_baseline in
  print_benefit "9" "extra-paths" dbgp bgp;
  Format.fprintf out
    "@.(paper shape: D-BGP >= BGP at every level; steeper D-BGP slope at 10-40%%)@."

let fig10 n trials dests seed =
  let cfg = benefit_cfg n trials dests seed in
  let dbgp = E.Benefits.bottleneck_bandwidth cfg E.Benefits.Dbgp_baseline in
  let bgp = E.Benefits.bottleneck_bandwidth cfg E.Benefits.Bgp_baseline in
  print_benefit "10" "bottleneck-bandwidth" dbgp bgp;
  Format.fprintf out
    "@.(paper shape: dip below status quo at low adoption; D-BGP crossover ~30%%, BGP ~90%%)@."

(* ---------- stress ---------- *)

let stress advertisements =
  Format.fprintf out "Section 5 stress test (Beagle vs Quagga-equivalent)@.@.";
  List.iter
    (fun r -> Format.fprintf out "%a@." E.Stress.pp_result r)
    (E.Stress.suite ~advertisements ());
  Format.fprintf out "@.%a@." E.Stress.pp_budget_probe (E.Stress.run_budget_probe ());
  Format.fprintf out
    "@.(paper: 40,700 vs 40,900 prefixes/s BGP-only; 7,073 at 32 KB; 926 at 256 KB)@."

(* ---------- perf (hot-path throughput / allocation / wire caches) ---------- *)

(* "--domains 1,2,4" -> [1; 2; 4]; None on anything malformed. *)
let parse_domains spec =
  match
    List.map int_of_string_opt
      (String.split_on_char ',' (String.trim spec))
  with
  | [] -> None
  | parts ->
    if List.for_all (function Some d -> d >= 1 | None -> false) parts then
      Some (List.filter_map Fun.id parts)
    else None

(* Sharded rows for one comma-separated --domains spec.  The first
   count is the sequential reference; any later row whose transcript
   diverges from it is a determinism violation, reported by a non-zero
   exit so bench runs enforce the oracle, not just the test suite. *)
let run_domains_axis ~ases spec =
  match parse_domains spec with
  | None ->
    Format.eprintf
      "dbgp-sim: --domains expects a comma-separated list of positive \
       integers (e.g. 1,2,4,8)@.";
    exit 2
  | Some domains ->
    let domains = if List.mem 1 domains then domains else 1 :: domains in
    Format.fprintf out
      "@.Sharded execution: 8-region partition, conservative barrier \
       epochs (%d cores)@.@."
      (Domain.recommended_domain_count ());
    let rows = E.Perf_bench.domains_suite ~ases ~domains () in
    List.iter (fun r -> Format.fprintf out "%a@." E.Perf_bench.pp_sharded r) rows;
    rows

let exit_on_divergence sharded =
  let diverged =
    List.filter (fun r -> not r.E.Perf_bench.s_transcript_match) sharded
  in
  if diverged <> [] then begin
    List.iter
      (fun r ->
        Format.eprintf
          "dbgp-sim: %d-domain transcript diverged from the sequential run \
           (%s)@."
          r.E.Perf_bench.s_domains r.E.Perf_bench.s_transcript_md5)
      diverged;
    exit 1
  end

let perf domains ases json =
  if ases < 20 then (
    Format.eprintf "dbgp-sim: --perf-ases must be at least 20@.";
    exit 2 );
  Format.fprintf out
    "Hot-path benchmark (updates/s, GC words/update, wire cache hit rates)@.@.";
  let rows = E.Perf_bench.suite () in
  List.iter (fun r -> Format.fprintf out "%a@." E.Perf_bench.pp r) rows;
  let headline = E.Perf_bench.headline rows in
  ( match headline with
    | Some h -> Format.fprintf out "@.%a@." E.Perf_bench.pp_headline h
    | None -> () );
  let sharded =
    match domains with None -> [] | Some spec -> run_domains_axis ~ases spec
  in
  ( match json with
    | None -> ()
    | Some path ->
      (* Same document shape as bench/main.exe's BENCH_perf.json. *)
      let oc = open_out path in
      output_string oc
        (Dbgp_obs.Snapshot.to_json_pretty
           (Dbgp_obs.Snapshot.Obj
              [ ("seed", Dbgp_obs.Snapshot.Int 42);
                ("mrai", Dbgp_obs.Snapshot.Float 2.0);
                ( "rows",
                  Dbgp_obs.Snapshot.List
                    (List.map E.Perf_bench.to_snapshot rows) );
                ( "sharded",
                  Dbgp_obs.Snapshot.List
                    (List.map E.Perf_bench.sharded_to_snapshot sharded) );
                ( "headline",
                  match headline with
                  | Some h -> E.Perf_bench.headline_to_snapshot h
                  | None -> Dbgp_obs.Snapshot.Null ) ]));
      close_out oc;
      Format.fprintf out "wrote %s@." path );
  exit_on_divergence sharded

(* ---------- scale (Internet-scale table transfer / RIB footprint) ---------- *)

let scale ases prefixes bg seed grid domains json =
  if ases < 20 then (
    Format.eprintf "dbgp-sim: --ases must be at least 20@.";
    exit 2 );
  if prefixes < 1 then (
    Format.eprintf "dbgp-sim: --prefixes must be positive@.";
    exit 2 );
  if bg < 1 then (
    Format.eprintf "dbgp-sim: --bg must be positive@.";
    exit 2 );
  Format.fprintf out
    "Internet-scale benchmark: CAIDA-style topology, full-table feed,@.\
     session-bounce table transfer (legacy storm vs streamed incremental \
     sync)@.@.";
  let rows =
    if grid then E.Scale_bench.suite ~seed ()
    else [ E.Scale_bench.run ~seed ~bg ~ases ~prefixes () ]
  in
  List.iter (fun r -> Format.fprintf out "%a@." E.Scale_bench.pp r) rows;
  let sharded =
    match domains with None -> [] | Some spec -> run_domains_axis ~ases spec
  in
  ( match json with
    | None -> ()
    | Some path ->
      let oc = open_out path in
      output_string oc
        (Dbgp_obs.Snapshot.to_json_pretty
           (Dbgp_obs.Snapshot.Obj
              [ ("seed", Dbgp_obs.Snapshot.Int seed);
                ("mrai", Dbgp_obs.Snapshot.Float 0.5);
                ( "rows",
                  Dbgp_obs.Snapshot.List
                    (List.map E.Scale_bench.to_snapshot rows) );
                ( "sharded",
                  Dbgp_obs.Snapshot.List
                    (List.map E.Perf_bench.sharded_to_snapshot sharded) ) ]));
      close_out oc;
      Format.fprintf out "wrote %s@." path );
  exit_on_divergence sharded

(* ---------- deploy (Figure 8 + motivating scenarios) ---------- *)

let deploy () =
  Format.fprintf out "Section 6.1 deployment experiments (Figure 8 topology)@.@.";
  let w = E.Scenarios.wiser_across_gulf () in
  Format.fprintf out
    "Wiser:   cost seen at S: %s | chose low-cost long path: %b | portal seen: %b@."
    ( match w.E.Scenarios.cost_seen with
      | Some c -> string_of_int c
      | None -> "none" )
    w.E.Scenarios.chose_low_cost w.E.Scenarios.portal_seen;
  Format.fprintf out
    "         BGP baseline: cost %s, low-cost chosen: %b (expected: invisible, shortest)@."
    ( match w.E.Scenarios.cost_seen_bgp with
      | Some c -> string_of_int c
      | None -> "none" )
    w.E.Scenarios.chose_low_cost_bgp;
  let p = E.Scenarios.pathlet_across_gulf () in
  Format.fprintf out
    "Pathlet: %d/%d pathlets reached S (BGP baseline: %d); %d end-to-end routes composable@."
    p.E.Scenarios.seen p.E.Scenarios.expected p.E.Scenarios.seen_bgp
    p.E.Scenarios.end_to_end

let motivate () =
  Format.fprintf out "Motivating scenarios (Figures 1-3)@.@.";
  let w = E.Scenarios.wiser_across_gulf () in
  Format.fprintf out
    "Fig 1 (Wiser):  BGP hides path costs (saw %s) -> S picks the expensive short path;@."
    ( match w.E.Scenarios.cost_seen_bgp with
      | Some c -> string_of_int c
      | None -> "none" );
  Format.fprintf out
    "                D-BGP passes them through (saw %s) -> S picks cost-10 path: %b@."
    ( match w.E.Scenarios.cost_seen with
      | Some c -> string_of_int c
      | None -> "none" )
    w.E.Scenarios.chose_low_cost;
  let m = E.Scenarios.miro_discovery () in
  Format.fprintf out
    "Fig 2 (MIRO):   discovery across gulf: %b (BGP baseline: %b); negotiated: %s; tunnel delivers: %b@."
    m.E.Scenarios.discovered m.E.Scenarios.discovered_bgp
    ( match m.E.Scenarios.negotiated with
      | Some (via, ep) -> Printf.sprintf "%s via %s" via (Dbgp_types.Ipv4.to_string ep)
      | None -> "no" )
    m.E.Scenarios.tunnel_works;
  let s = E.Scenarios.scion_multipath () in
  Format.fprintf out
    "Fig 3 (SCION):  within-island paths at S: %d (BGP baseline: %d); extra path forwards: %b@."
    s.E.Scenarios.paths_seen s.E.Scenarios.paths_seen_bgp
    s.E.Scenarios.forwarded_on_extra

let fig7 () =
  Format.fprintf out "Figures 6-7: the rich, evolvable Internet@.@.";
  let ia, c = E.Rich_world.run () in
  ( match ia with
    | Some ia -> Format.fprintf out "%a@." Dbgp_core.Ia.pp ia
    | None -> Format.fprintf out "route did not propagate!@." );
  Format.fprintf out
    "@.checks: wiser cost %s | wiser portal %b | miro portal %b | D pathlets %d | G pathlets %d | F scion paths %d@."
    ( match c.E.Rich_world.wiser_cost with
      | Some v -> string_of_int v
      | None -> "none" )
    c.E.Rich_world.wiser_portal_11 c.E.Rich_world.miro_portal_11
    c.E.Rich_world.pathlets_d c.E.Rich_world.pathlets_g
    c.E.Rich_world.scion_paths_f;
  Format.fprintf out "all Figure-7 content present: %b@."
    (E.Rich_world.expected_ok c)

let convergence () =
  Format.fprintf out "Section 3.5: convergence-cost experiments@.@.";
  Format.fprintf out "dissemination cost vs topology size and IA payload:@.";
  List.iter
    (fun d -> Format.fprintf out "  %a@." E.Convergence.pp_dissemination d)
    (E.Convergence.vs_size ~seed:42 ());
  Format.fprintf out "@.re-convergence after a best-path link failure:@.";
  Format.fprintf out "  %a@." E.Convergence.pp_failure
    (E.Convergence.after_failure ~seed:42 ());
  Format.fprintf out "@.session reset (full-table transfer over a real FSM session):@.";
  Format.fprintf out "  %a@." E.Convergence.pp_reset (E.Convergence.session_reset ());
  Format.fprintf out "  %a@." E.Convergence.pp_reset
    (E.Convergence.session_reset ~payload_bytes:4096 ())

let chaos ases seed loss flaps =
  if loss < 0. || loss > 1. then (
    Format.eprintf "dbgp-sim: --loss must be in [0, 1]@.";
    exit 2 );
  if flaps < 0 then (
    Format.eprintf "dbgp-sim: --flaps must be non-negative@.";
    exit 2 );
  if ases < 2 then (
    Format.eprintf "dbgp-sim: --chaos-ases must be at least 2@.";
    exit 2 );
  Format.fprintf out
    "Chaos run: seeded faults (loss, jitter, link flaps) with graceful \
     restart and flap damping@.@.";
  let cfg = { E.Chaos.default with E.Chaos.ases; seed; loss; flaps } in
  let r = E.Chaos.run cfg in
  Format.fprintf out "%a@." E.Chaos.pp_report r;
  Format.fprintf out "healthy: %b@.@." (E.Chaos.healthy r);
  let s = E.Chaos.session_chaos ~seed () in
  Format.fprintf out "%a@." E.Chaos.pp_session_report s

(* ---------- fuzz ---------- *)

let fuzz cases seed json =
  if cases < 1 then (
    Format.eprintf "dbgp-sim: --cases must be positive@.";
    exit 2 );
  let r = E.Fuzz.run { E.Fuzz.seed; cases } in
  Format.fprintf out "%a@." E.Fuzz.pp_report r;
  ( match json with
    | None -> ()
    | Some path ->
      let oc = open_out path in
      output_string oc (Dbgp_obs.Snapshot.to_json_pretty (E.Fuzz.to_snapshot r));
      close_out oc;
      Format.fprintf out "wrote %s@." path );
  if r.E.Fuzz.escaped > 0 || r.E.Fuzz.roundtrip_failures > 0 then exit 1

(* ---------- stability ---------- *)

let stability budget seed control_ases json =
  if budget < 1 then (
    Format.eprintf "dbgp-sim: --budget must be positive@.";
    exit 2 );
  Format.fprintf out
    "Divergence lab: known-divergent gadgets and converged controls,@.\
     flap damping off and on (safety report for decision-process changes)@.@.";
  let cases = E.Scenarios.divergence_cases ~seed ~control_ases () in
  let r = E.Stability.run_cases ~budget cases in
  Format.fprintf out "%a@." E.Stability.pp_report r;
  ( match json with
    | None -> ()
    | Some path ->
      let oc = open_out path in
      output_string oc
        (Dbgp_obs.Snapshot.to_json_pretty (E.Stability.to_snapshot r));
      close_out oc;
      Format.fprintf out "wrote %s@." path );
  (* Safety gate: every known-divergent gadget must be caught (oscillating
     or at least censored), every control must converge, and the static
     wheel check must agree with the spec's expectation. *)
  let expected = Hashtbl.create 8 in
  List.iter
    (fun (c : E.Stability.case) ->
      Hashtbl.replace expected c.E.Stability.name c.E.Stability.expect_divergence)
    cases;
  let ok =
    List.for_all
      (fun (row : E.Stability.row) ->
        match Hashtbl.find_opt expected row.E.Stability.scenario with
        | None -> true
        | Some divergent ->
          ( match row.E.Stability.verdict with
            | E.Stability.Converged _ -> not divergent
            | E.Stability.Oscillating _ -> divergent
            | E.Stability.Censored _ ->
              (* An exhausted budget is an honest "could not prove
                 convergence" — acceptable only for divergent cases. *)
              divergent ))
      r.E.Stability.rows
  in
  Format.fprintf out "verdicts match expectations: %b@." ok;
  if not ok then exit 1

(* ---------- adversary ---------- *)

let adversary seed json =
  Format.fprintf out
    "Adversary suite: hijacks, route leaks and D-BGP island attacks@.\
     across legacy BGP / D-BGP / D-BGP + BGPSec-like critical fix,@.\
     scored by blast radius (exit 1 on broken containment)@.@.";
  let r = E.Adversary.run { E.Adversary.default with E.Adversary.seed } in
  Format.fprintf out "%a@." E.Adversary.pp_report r;
  ( match json with
    | None -> ()
    | Some path ->
      let oc = open_out path in
      output_string oc
        (Dbgp_obs.Snapshot.to_json_pretty (E.Adversary.to_snapshot r));
      close_out oc;
      Format.fprintf out "wrote %s@." path );
  (* Safety gate: an arm that claims containment must show zero blast
     radius, detection must fire wherever applicable, and control and
     recovery phases must be clean — all folded into [healthy]. *)
  if not r.E.Adversary.healthy then exit 1

(* ---------- stats ---------- *)

let stats ases seed events =
  if ases < 2 then (
    Format.eprintf "dbgp-sim: --stats-ases must be at least 2@.";
    exit 2 );
  if events < 0 then (
    Format.eprintf "dbgp-sim: --events must be non-negative@.";
    exit 2 );
  let o = E.Convergence.observe ~ases ~recent_events:events ~seed () in
  let snapshot =
    match o.E.Convergence.snapshot with
    | Dbgp_obs.Snapshot.Obj fields ->
      Dbgp_obs.Snapshot.Obj
        (fields
        @ [ ("ases", Dbgp_obs.Snapshot.Int ases);
            ("seed", Dbgp_obs.Snapshot.Int seed) ])
    | other -> other
  in
  print_string (Dbgp_obs.Snapshot.to_json_pretty snapshot)

let empirical () =
  Format.fprintf out
    "Empirical validation of the Table 3 size model (measured vs modeled IA bytes):@.@.";
  List.iter
    (fun c -> Format.fprintf out "  %a@." E.Empirical_overhead.pp c)
    (E.Empirical_overhead.run ())

let loc root =
  Format.fprintf out "Section 6.1: per-protocol deployment effort@.@.";
  E.Loc_report.pp out (E.Loc_report.report ~root ());
  Format.fprintf out "@."

let all n trials dests seed advertisements root =
  let rule title =
    Format.fprintf out
      "@.==================== %s ====================@.@." title
  in
  rule "Table 1";
  table1 ();
  rule "Table 2";
  table2 ();
  rule "Table 3";
  table3 ();
  rule "Section 5 stress test";
  stress advertisements;
  rule "Section 6.1 deployment (Figure 8)";
  deploy ();
  rule "Section 6.1 effort (LoC)";
  loc root;
  rule "Figures 1-3";
  motivate ();
  rule "Figures 6-7";
  fig7 ();
  rule "Section 3.5 convergence";
  convergence ();
  rule "Chaos (fault injection)";
  chaos 60 seed 0.05 4;
  rule "Table 3 empirical validation";
  empirical ();
  rule "Figure 9";
  fig9 n trials dests seed;
  rule "Figure 10";
  fig10 n trials dests seed

(* ---------- cmdliner plumbing ---------- *)

let n_arg =
  Arg.(value & opt int 1000 & info [ "n"; "ases" ] ~doc:"Number of ASes")

let trials_arg = Arg.(value & opt int 9 & info [ "trials" ] ~doc:"Trials")

let dests_arg =
  Arg.(value & opt int 120 & info [ "dests" ] ~doc:"Sampled destinations")

let seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"PRNG seed")

let advs_arg =
  Arg.(
    value & opt int 30_000
    & info [ "advertisements" ] ~doc:"Stress-test advertisements")

let root_arg =
  Arg.(value & opt string "." & info [ "root" ] ~doc:"Repository root")

let chaos_ases_arg =
  Arg.(value & opt int 60 & info [ "chaos-ases" ] ~doc:"Chaos topology size")

let loss_arg =
  Arg.(value & opt float 0.05 & info [ "loss" ] ~doc:"Message-loss probability")

let flaps_arg =
  Arg.(value & opt int 4 & info [ "flaps" ] ~doc:"Scheduled link flaps")

let cases_arg =
  Arg.(value & opt int 10_000 & info [ "cases" ] ~doc:"Fuzz cases to run")

let fuzz_json_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "json" ] ~doc:"Write the fuzz report as JSON to $(docv)" ~docv:"FILE")

let budget_arg =
  Arg.(
    value & opt int E.Stability.default_budget
    & info [ "budget" ] ~doc:"Event budget per stability run")

let control_ases_arg =
  Arg.(
    value & opt int 30
    & info [ "control-ases" ] ~doc:"Size of the BRITE converged control")

let stability_json_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "json" ]
        ~doc:"Write the stability report as JSON to $(docv)" ~docv:"FILE")

let adversary_json_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "json" ]
        ~doc:"Write the adversary report as JSON to $(docv)" ~docv:"FILE")

let stats_ases_arg =
  Arg.(value & opt int 200 & info [ "stats-ases" ] ~doc:"Stats topology size")

let events_arg =
  Arg.(
    value & opt int 20
    & info [ "events" ] ~doc:"Recent trace events to include (0 to omit)")

let scale_ases_arg =
  Arg.(value & opt int 1_000 & info [ "scale-ases" ] ~doc:"Scale topology size")

let prefixes_arg =
  Arg.(value & opt int 100_000 & info [ "prefixes" ] ~doc:"Feed table size")

let bg_arg =
  Arg.(value & opt int 32 & info [ "bg" ] ~doc:"Background prefixes")

let grid_arg =
  Arg.(
    value & flag
    & info [ "grid" ]
        ~doc:
          "Run the full {1k, 10k} ASes x {1k, 100k} prefixes grid (as \
           committed in BENCH_scale.json) instead of one cell")

let scale_json_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "json" ]
        ~doc:"Write the scale report as JSON to $(docv)" ~docv:"FILE")

let domains_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "domains" ]
        ~doc:
          "Also run the sharded-execution benchmark at these domain counts \
           (comma-separated, e.g. 1,2,4,8).  Every count must reproduce the \
           sequential transcript byte-for-byte; a divergence exits 1."
        ~docv:"COUNTS")

let perf_ases_arg =
  Arg.(
    value & opt int 1_000
    & info [ "perf-ases" ] ~doc:"Topology size for the sharded perf runs")

let perf_json_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "json" ]
        ~doc:"Write the perf report as JSON to $(docv)" ~docv:"FILE")

let unit_cmd name doc f = Cmd.v (Cmd.info name ~doc) Term.(const f $ const ())

let cmds =
  [ unit_cmd "table1" "Table 1: protocol taxonomy" table1;
    unit_cmd "table2" "Table 2: overhead-model parameters" table2;
    unit_cmd "table3" "Table 3: control-plane overhead" table3;
    Cmd.v
      (Cmd.info "fig9" ~doc:"Figure 9: extra-paths archetype benefits")
      Term.(const fig9 $ n_arg $ trials_arg $ dests_arg $ seed_arg);
    Cmd.v
      (Cmd.info "fig10" ~doc:"Figure 10: bottleneck-bandwidth benefits")
      Term.(const fig10 $ n_arg $ trials_arg $ dests_arg $ seed_arg);
    Cmd.v
      (Cmd.info "stress" ~doc:"Section 5 stress test")
      Term.(const stress $ advs_arg);
    Cmd.v
      (Cmd.info "perf"
         ~doc:
           "Hot-path benchmark: throughput, allocation and wire caches; \
            with --domains, the sharded-execution scaling axis guarded by \
            the determinism oracle")
      Term.(const perf $ domains_arg $ perf_ases_arg $ perf_json_arg);
    Cmd.v
      (Cmd.info "scale"
         ~doc:
           "Internet-scale benchmark: load a full-size table at a stub feed \
            of a CAIDA-style topology and compare session-bounce table \
            transfer (legacy re-announce storm vs streamed incremental \
            sync), with words/route and updates/s")
      Term.(
        const scale $ scale_ases_arg $ prefixes_arg $ bg_arg $ seed_arg
        $ grid_arg $ domains_arg $ scale_json_arg);
    unit_cmd "deploy" "Figure 8 deployment experiments" deploy;
    unit_cmd "motivate" "Figures 1-3 motivating scenarios" motivate;
    unit_cmd "fig7" "Figures 6-7 rich-world IA" fig7;
    Cmd.v (Cmd.info "loc" ~doc:"Section 6.1 LoC report") Term.(const loc $ root_arg);
    unit_cmd "convergence" "Section 3.5 convergence-cost experiments" convergence;
    Cmd.v
      (Cmd.info "chaos"
         ~doc:"Fault-injection run: lossy links, flaps, graceful restart")
      Term.(const chaos $ chaos_ases_arg $ seed_arg $ loss_arg $ flaps_arg);
    unit_cmd "empirical" "Empirical validation of the Table 3 model" empirical;
    Cmd.v
      (Cmd.info "fuzz"
         ~doc:
           "Seeded deterministic fuzzing of the IA codec and speaker \
            pipeline (exit 1 if any exception escapes)")
      Term.(const fuzz $ cases_arg $ seed_arg $ fuzz_json_arg);
    Cmd.v
      (Cmd.info "stability"
         ~doc:
           "Divergence lab: classify known-divergent gadgets and converged \
            controls as converged / oscillating / censored, with flap \
            damping off and on (exit 1 on unexpected verdicts)")
      Term.(
        const stability $ budget_arg $ seed_arg $ control_ases_arg
        $ stability_json_arg);
    Cmd.v
      (Cmd.info "adversary"
         ~doc:
           "Adversary suite: prefix hijacks, route leaks and D-BGP island \
            attacks across three protocol arms, scored by blast radius \
            (exit 1 if a containment claim is broken, detection misses an \
            attack, or control/recovery state is unclean)")
      Term.(const adversary $ seed_arg $ adversary_json_arg);
    Cmd.v
      (Cmd.info "stats"
         ~doc:
           "Converge a BRITE topology and print the observability snapshot \
            (metrics registries, convergence percentiles, recent trace) as \
            JSON")
      Term.(const stats $ stats_ases_arg $ seed_arg $ events_arg);
    Cmd.v
      (Cmd.info "all" ~doc:"Run every experiment")
      Term.(
        const all $ n_arg $ trials_arg $ dests_arg $ seed_arg $ advs_arg
        $ root_arg) ]

let () =
  let info =
    Cmd.info "dbgp-sim" ~version:"1.0.0"
      ~doc:"Reproduce the D-BGP (SIGCOMM 2017) evaluation"
  in
  exit (Cmd.eval (Cmd.group info cmds))
