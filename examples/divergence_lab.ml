(* The divergence lab — policy oscillation made visible.

     dune exec examples/divergence_lab.exe

   "BGP Stability is Precarious": essentially any change to the
   decision process — exactly what D-BGP deploys — can cause permanent
   divergence.  This demo runs three known-divergent gadgets and three
   converged controls through the stability classifier:

   - BAD GADGET: a 3-ring of preferences with no stable assignment
     (its dispute wheel is also found statically);
   - MED oscillation: RFC 3345 churn in a two-router cluster;
   - Wiser feedback: egress costs chasing the demand they attract,
     through out-of-band portal gossip rather than BGP messages;
   - GOOD GADGET / relay-line / BRITE-30: safe controls that must be
     classified converged.

   Each scenario runs twice, flap damping off and on, to show whether
   damping masks the oscillation (suppression quiets the churn) or
   merely slows it (reuse timers re-arm the cycle). *)

module Stability = Dbgp_eval.Stability
module Scenarios = Dbgp_eval.Scenarios

let () =
  let cases = Scenarios.divergence_cases () in
  let report = Stability.run_cases ~budget:20_000 cases in
  Format.printf "%a@." Stability.pp_report report;
  let wheel =
    Stability.dispute_wheel Scenarios.bad_gadget_spec
    |> Option.map (fun ns -> String.concat " -> " (List.map string_of_int ns))
    |> Option.value ~default:"none"
  in
  Format.printf "static check: BAD GADGET dispute wheel: %s@." wheel;
  Format.printf "static check: GOOD GADGET dispute wheel: %s@."
    ( match Stability.dispute_wheel Scenarios.good_gadget_spec with
      | None -> "none (safe)"
      | Some _ -> "unexpected!" )
