open Dbgp_types
module Ia = Dbgp_core.Ia
module Value = Dbgp_core.Value
module Speaker = Dbgp_core.Speaker
module Network = Dbgp_netsim.Network
module Policy = Dbgp_bgp.Policy

type kind =
  | Origin_hijack
  | Subprefix_hijack
  | Forged_path_hijack
  | Route_leak
  | Island_forgery
  | Passthrough_tamper

let all =
  [ Origin_hijack; Subprefix_hijack; Forged_path_hijack; Route_leak;
    Island_forgery; Passthrough_tamper ]

let name = function
  | Origin_hijack -> "origin_hijack"
  | Subprefix_hijack -> "subprefix_hijack"
  | Forged_path_hijack -> "forged_path_hijack"
  | Route_leak -> "route_leak"
  | Island_forgery -> "island_forgery"
  | Passthrough_tamper -> "passthrough_tamper"

let describe = function
  | Origin_hijack ->
    "attacker originates the victim's prefix claiming itself as origin"
  | Subprefix_hijack ->
    "attacker originates a more-specific half of the victim's prefix, \
     winning everywhere by longest-prefix match"
  | Forged_path_hijack ->
    "attacker originates the victim's prefix with a forged AS path \
     [attacker, victim], claiming direct adjacency to the true origin"
  | Route_leak ->
    "attacker drops its valley-free export rule and re-advertises \
     provider/peer-learned routes to its other providers and peers"
  | Island_forgery ->
    "attacker injects a forged island descriptor into announcements it \
     forwards, claiming capabilities no island published"
  | Passthrough_tamper ->
    "attacker strips foreign-protocol pass-through descriptors from \
     announcements it forwards"

let is_hijack = function
  | Origin_hijack | Subprefix_hijack | Forged_path_hijack -> true
  | Route_leak | Island_forgery | Passthrough_tamper -> false

let uses_interposer = function
  | Island_forgery | Passthrough_tamper -> true
  | Origin_hijack | Subprefix_hijack | Forged_path_hijack | Route_leak -> false

type t = {
  kind : kind;
  attacker : Asn.t;
  victim : Asn.t;
  prefix : Prefix.t;  (** the victim's (ground-truth owned) prefix *)
}

(* The prefix the attack poisons: the forged more-specific for a
   sub-prefix hijack, the victim's own prefix otherwise. *)
let poisoned_prefix a =
  match a.kind with
  | Subprefix_hijack -> (
    match Prefix.split a.prefix with
    | Some (lo, _) -> lo
    | None -> a.prefix (* /32 cannot split; degrade to an exact hijack *) )
  | _ -> a.prefix

(* Ground-truth constants for the D-BGP-specific attacks: the forged
   island identity/field the detection predicate checks against, and the
   foreign protocol whose pass-through data the tamperer strips. *)
let forged_island = Island_id.named "forged-island"
let forged_proto = Protocol_id.bgpsec
let forged_field = "forged-capability"
let forged_value = Value.Bytes "attacker-claimed"
let tamper_proto = Protocol_id.wiser

let interposer_for a =
  let target = poisoned_prefix a in
  fun ~from ~to_:_ (msg : Speaker.msg) ->
    match msg with
    | Speaker.Announce ia
      when Asn.equal from a.attacker && Prefix.equal ia.Ia.prefix target -> (
      match a.kind with
      | Island_forgery ->
        Some
          (Speaker.Announce
             (Ia.add_island_descriptor ~island:forged_island
                ~proto:forged_proto ~field:forged_field forged_value ia))
      | Passthrough_tamper ->
        let stripped = Ia.remove_protocol tamper_proto ia in
        if stripped == ia then Some msg
        else Some (Speaker.Announce stripped)
      | _ -> Some msg )
    | _ -> Some msg

(* The announcement a hijacker pushes at its neighbors.  Built directly
   rather than through the attacker's own origination machinery: a
   compromised router does not run its forgery through its honest
   decision process (which might well prefer the victim's real route and
   never export the fake one). *)
let forged_ia a =
  let attacker_addr = Network.speaker_addr a.attacker in
  match a.kind with
  | Origin_hijack ->
    Ia.originate ~prefix:a.prefix ~origin_asn:a.attacker
      ~next_hop:attacker_addr ()
  | Subprefix_hijack ->
    Ia.originate ~prefix:(poisoned_prefix a) ~origin_asn:a.attacker
      ~next_hop:attacker_addr ()
  | Forged_path_hijack ->
    Ia.prepend_as a.attacker
      (Ia.originate ~prefix:a.prefix ~origin_asn:a.victim
         ~next_hop:attacker_addr ())
  | Route_leak | Island_forgery | Passthrough_tamper ->
    invalid_arg "forged_ia: not a hijack"

(* A hijacker ignores export policy: every neighbor gets the forgery. *)
let inject_to_all_neighbors net a msg =
  let from = Network.peer_of net a.attacker in
  List.iter
    (fun (n : Speaker.neighbor) ->
      Network.inject net ~from ~to_:n.Speaker.peer.Dbgp_core.Peer.asn msg)
    (Speaker.neighbors (Network.speaker net a.attacker))

let launch net a =
  match a.kind with
  | Origin_hijack | Subprefix_hijack | Forged_path_hijack ->
    inject_to_all_neighbors net a (Speaker.Announce (forged_ia a))
  | Route_leak ->
    Speaker.set_export_rule (Network.speaker net a.attacker) Policy.export_all;
    Network.readvertise_all net a.attacker
  | Island_forgery | Passthrough_tamper ->
    Network.set_interposer net (Some (interposer_for a));
    (* Re-emit the attacker's current advertisements so already-forwarded
       clean state is replaced by the tampered version. *)
    Network.readvertise_all net a.attacker

let stand_down net a =
  match a.kind with
  | Origin_hijack | Subprefix_hijack | Forged_path_hijack ->
    inject_to_all_neighbors net a (Speaker.Withdraw (poisoned_prefix a))
  | Route_leak ->
    Speaker.set_export_rule (Network.speaker net a.attacker) Policy.valley_free;
    (* Re-deriving under the restored rule withdraws the leaked routes
       from now-ineligible peers. *)
    Network.readvertise_all net a.attacker
  | Island_forgery | Passthrough_tamper ->
    Network.set_interposer net None;
    (* Re-announce clean state over the tampered copies downstream. *)
    Network.readvertise_all net a.attacker
