(** The compromised-AS layer: adversarial routing semantics.

    Any simulated speaker can be assigned an attack behavior — the
    classic BGP attack classes (prefix hijacks in their origin-forgery,
    sub-prefix and forged-AS-path variants; valley-free route leaks) plus
    the D-BGP-specific ones Section 5 worries about (forged island
    descriptors, tampering with pass-through data of protocols the
    transit AS does not speak).

    Attacks act through ordinary control-plane machinery: hijacks inject
    a forged announcement at every neighbor (bypassing the attacker's own
    honest decision process, which might prefer the victim's real route
    and never export the forgery), a leak swaps the attacker's export
    rule for
    {!Dbgp_bgp.Policy.export_all}, and the tampering attacks install an
    egress interposer ({!Dbgp_netsim.Network.set_interposer}) that
    rewrites announcements the attacker forwards.  Everything is
    reversible with {!stand_down} so a harness can measure
    time-to-recover.

    Detection lives in [Dbgp_eval.Invariants] (origin mismatch,
    valley-export walks, island-descriptor ground truth, pass-through
    integrity); blast-radius scoring in [Dbgp_eval.Adversary]. *)

type kind =
  | Origin_hijack
      (** Originate the victim's prefix claiming the attacker as origin. *)
  | Subprefix_hijack
      (** Originate a more-specific half of the victim's prefix — wins at
          every AS by longest-prefix match regardless of path quality. *)
  | Forged_path_hijack
      (** Originate the victim's prefix with the forged path
          [attacker, victim]: the claimed origin is legitimate, defeating
          pure origin validation. *)
  | Route_leak
      (** Export provider/peer-learned routes to other providers/peers
          (Gao-Rexford valley violation). *)
  | Island_forgery
      (** Inject a forged island descriptor into forwarded
          announcements, claiming capabilities no island published. *)
  | Passthrough_tamper
      (** Strip foreign-protocol pass-through descriptors from forwarded
          announcements — the Section 5 tampering threat. *)

val all : kind list
val name : kind -> string
val describe : kind -> string

val is_hijack : kind -> bool
(** The three hijack variants — the classes the BGPSec-like critical fix
    (with origin authorization) claims to contain. *)

val uses_interposer : kind -> bool
(** Attacks that act on forwarded traffic (via the network interposer)
    rather than by hostile origination/export. *)

type t = {
  kind : kind;
  attacker : Dbgp_types.Asn.t;
  victim : Dbgp_types.Asn.t;
  prefix : Dbgp_types.Prefix.t;  (** the victim's ground-truth prefix *)
}

val poisoned_prefix : t -> Dbgp_types.Prefix.t
(** The prefix the attack poisons: the forged more-specific for
    {!Subprefix_hijack}, the victim's prefix otherwise. *)

val forged_island : Dbgp_types.Island_id.t
val forged_proto : Dbgp_types.Protocol_id.t
val forged_field : string
val forged_value : Dbgp_core.Value.t
(** Ground truth for {!Island_forgery}: the descriptor the attacker
    injects, which detection checks must find absent on honest state. *)

val tamper_proto : Dbgp_types.Protocol_id.t
(** The foreign protocol whose descriptors {!Passthrough_tamper}
    strips. *)

val launch : Dbgp_netsim.Network.t -> t -> unit
(** Begin the attack (scheduled on the network's event queue where it
    emits messages; export-rule/interposer changes are immediate). *)

val stand_down : Dbgp_netsim.Network.t -> t -> unit
(** Undo it: inject withdrawals for the hijacked prefix at every
    neighbor, restore the valley-free export rule, or clear the
    interposer — in each case re-advertising so downstream state heals
    and recovery time is measurable. *)
