open Dbgp_types
module W = Dbgp_wire.Writer
module R = Dbgp_wire.Reader

type origin = Igp | Egp | Incomplete

type segment = Seq of Asn.t list | Set of Asn.t list

type as_path = segment list

type community = int

type unknown = { type_code : int; transitive : bool; body : string }

type t = {
  origin : origin;
  as_path : as_path;
  next_hop : Ipv4.t;
  med : int option;
  local_pref : int option;
  atomic_aggregate : bool;
  aggregator : (Asn.t * Ipv4.t) option;
  communities : community list;
  unknowns : unknown list;
}

let make ?(origin = Igp) ?med ?local_pref ?(atomic_aggregate = false)
    ?aggregator ?(communities = []) ?(unknowns = []) ~as_path ~next_hop () =
  { origin; as_path; next_hop; med; local_pref; atomic_aggregate; aggregator;
    communities; unknowns }

let community ~asn ~value =
  if asn < 0 || asn > 0xFFFF || value < 0 || value > 0xFFFF then
    invalid_arg "Attr.community: halves must fit 16 bits"
  else (asn lsl 16) lor value

let pp_community ppf c = Format.fprintf ppf "%d:%d" (c lsr 16) (c land 0xFFFF)

let as_path_length path =
  List.fold_left
    (fun n -> function Seq asns -> n + List.length asns | Set _ -> n + 1)
    0 path

let as_path_asns path =
  List.concat_map (function Seq asns -> asns | Set asns -> asns) path

let as_path_contains a path = List.exists (Asn.equal a) (as_path_asns path)

let prepend a = function
  | Seq asns :: rest -> Seq (a :: asns) :: rest
  | path -> Seq [ a ] :: path

let strip_non_transitive t =
  { t with
    local_pref = None;
    unknowns = List.filter (fun u -> u.transitive) t.unknowns }

let equal a b = a = b

let pp_origin ppf = function
  | Igp -> Format.pp_print_string ppf "IGP"
  | Egp -> Format.pp_print_string ppf "EGP"
  | Incomplete -> Format.pp_print_string ppf "?"

let pp_segment ppf = function
  | Seq asns ->
    Format.pp_print_list ~pp_sep:Format.pp_print_space Asn.pp ppf asns
  | Set asns ->
    Format.fprintf ppf "{%a}"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
         Asn.pp)
      asns

let pp ppf t =
  Format.fprintf ppf "@[<h>path=[%a] nh=%a origin=%a"
    (Format.pp_print_list ~pp_sep:Format.pp_print_space pp_segment)
    t.as_path Ipv4.pp t.next_hop pp_origin t.origin;
  Option.iter (Format.fprintf ppf " med=%d") t.med;
  Option.iter (Format.fprintf ppf " lp=%d") t.local_pref;
  if t.communities <> [] then
    Format.fprintf ppf " comm=[%a]"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " ")
         pp_community)
      t.communities;
  Format.fprintf ppf "@]"

(* Wire format: a simplified RFC-4271-shaped TLV stream.  Attribute layout:
   flags byte (0x40 transitive, 0x80 optional), type byte, varint length,
   body.  Well-known type codes follow the RFC. *)

let t_origin = 1
and t_as_path = 2
and t_next_hop = 3
and t_med = 4
and t_local_pref = 5
and t_atomic_aggregate = 6
and t_aggregator = 7
and t_communities = 8

let encode_body f =
  let b = W.create () in
  f b;
  W.contents b

let encode_attr w ~flags ~type_code body =
  W.u8 w flags;
  W.u8 w type_code;
  W.delimited w body

let encode_segment w = function
  | Seq asns ->
    W.u8 w 2;
    W.list w W.asn asns
  | Set asns ->
    W.u8 w 1;
    W.list w W.asn asns

let encode w t =
  let well_known = 0x40 and optional = 0xC0 and opt_non_trans = 0x80 in
  let attrs = ref [] in
  let add flags type_code body = attrs := (flags, type_code, body) :: !attrs in
  add well_known t_origin
    (encode_body (fun b ->
         W.u8 b (match t.origin with Igp -> 0 | Egp -> 1 | Incomplete -> 2)));
  add well_known t_as_path
    (encode_body (fun b -> W.list b encode_segment t.as_path));
  add well_known t_next_hop (encode_body (fun b -> W.ipv4 b t.next_hop));
  Option.iter (fun m -> add opt_non_trans t_med (encode_body (fun b -> W.u32 b m))) t.med;
  Option.iter
    (fun lp -> add well_known t_local_pref (encode_body (fun b -> W.u32 b lp)))
    t.local_pref;
  if t.atomic_aggregate then add well_known t_atomic_aggregate "";
  Option.iter
    (fun (a, ip) ->
      add optional t_aggregator
        (encode_body (fun b ->
             W.asn b a;
             W.ipv4 b ip)))
    t.aggregator;
  if t.communities <> [] then
    add optional t_communities
      (encode_body (fun b -> W.list b W.u32 t.communities));
  List.iter
    (fun u ->
      add (if u.transitive then optional else opt_non_trans) u.type_code u.body)
    t.unknowns;
  let attrs = List.rev !attrs in
  W.varint w (List.length attrs);
  List.iter (fun (flags, tc, body) -> encode_attr w ~flags ~type_code:tc body) attrs

let decode_segment r =
  match R.u8 r with
  | 2 -> Seq (R.list ~min_width:4 r R.asn)
  | 1 -> Set (R.list ~min_width:4 r R.asn)
  | n -> raise (R.Error (Printf.sprintf "bad AS_PATH segment type %d" n))

let decode r =
  let n = R.varint r in
  let origin = ref Incomplete
  and as_path = ref []
  and next_hop = ref Ipv4.any
  and med = ref None
  and local_pref = ref None
  and atomic = ref false
  and aggregator = ref None
  and communities = ref []
  and unknowns = ref [] in
  for _ = 1 to n do
    let flags = R.u8 r in
    let type_code = R.u8 r in
    let body = R.delimited r in
    let br = R.of_string body in
    if type_code = t_origin then
      origin :=
        ( match R.u8 br with
          | 0 -> Igp
          | 1 -> Egp
          | 2 -> Incomplete
          | n -> raise (R.Error (Printf.sprintf "bad ORIGIN %d" n)) )
    else if type_code = t_as_path then
      as_path := R.list ~min_width:2 br decode_segment
    else if type_code = t_next_hop then next_hop := R.ipv4 br
    else if type_code = t_med then med := Some (R.u32 br)
    else if type_code = t_local_pref then local_pref := Some (R.u32 br)
    else if type_code = t_atomic_aggregate then atomic := true
    else if type_code = t_aggregator then begin
      let a = R.asn br in
      let ip = R.ipv4 br in
      aggregator := Some (a, ip)
    end
    else if type_code = t_communities then
      communities := R.list ~min_width:4 br R.u32
    else
      unknowns :=
        { type_code; transitive = flags land 0x40 <> 0; body } :: !unknowns
  done;
  { origin = !origin;
    as_path = !as_path;
    next_hop = !next_hop;
    med = !med;
    local_pref = !local_pref;
    atomic_aggregate = !atomic;
    aggregator = !aggregator;
    communities = !communities;
    unknowns = List.rev !unknowns }
