(* Route-flap damping in the style of RFC 2439.

   Each (peer, prefix) pair accumulates a figure-of-merit penalty on every
   flap (withdrawal, or re-advertisement with changed attributes).  The
   penalty decays exponentially with a configurable half-life.  Once it
   crosses [suppress_threshold] the route is suppressed and stays
   suppressed — hysteresis — until the decayed penalty falls below
   [reuse_threshold].

   Time is the simulator clock (seconds of virtual time), so the default
   half-life is far shorter than the RFC's wall-clock recommendation. *)

type params = {
  half_life : float;            (* seconds for the penalty to halve *)
  suppress_threshold : float;   (* penalty above which the route is suppressed *)
  reuse_threshold : float;      (* decayed penalty below which it is reusable *)
  withdraw_penalty : float;     (* added per withdrawal *)
  attr_change_penalty : float;  (* added per re-advertisement with new attrs *)
  max_penalty : float;          (* ceiling, bounds the suppression time *)
}

let default =
  { half_life = 15.;
    suppress_threshold = 2000.;
    reuse_threshold = 750.;
    withdraw_penalty = 1000.;
    attr_change_penalty = 500.;
    max_penalty = 12000. }

let validate p =
  if p.half_life <= 0. then invalid_arg "Flap_damping: half_life must be positive";
  if p.reuse_threshold <= 0. || p.reuse_threshold >= p.suppress_threshold then
    invalid_arg "Flap_damping: need 0 < reuse_threshold < suppress_threshold";
  if p.max_penalty < p.suppress_threshold then
    invalid_arg "Flap_damping: max_penalty below suppress_threshold";
  p

type t = {
  mutable penalty : float;  (* as of [last] *)
  mutable last : float;
  mutable suppressed : bool;
  mutable flaps : int;
  mutable suppressions : int;  (* times the route crossed into suppression *)
  mutable reuses : int;        (* times it decayed back into service *)
}

let create () =
  { penalty = 0.; last = 0.; suppressed = false; flaps = 0; suppressions = 0;
    reuses = 0 }

let flaps st = st.flaps
let suppressions st = st.suppressions
let reuses st = st.reuses

let currently_suppressed st = st.suppressed
(* The suppression flag as of the last decay, without advancing the
   clock — observability reads that must not perturb damping state. *)

let decay p st ~now =
  if now > st.last then begin
    st.penalty <- st.penalty *. (0.5 ** ((now -. st.last) /. p.half_life));
    st.last <- now
  end;
  (* Tolerant [<=]: {!time_to_reuse} solves for the instant the penalty
     decays to exactly the reuse threshold and the reuse timer fires at
     precisely that time, but [0.5 ** x] rounds — the recomputed penalty
     can land a few ulps above the threshold, leaving a residual
     time-to-reuse too small to advance the simulator clock and pinning
     the reuse timer at a fixed instant.  A 1e-9 relative tolerance
     (sub-microunit on realistic thresholds) absorbs the rounding. *)
  if st.suppressed && st.penalty <= p.reuse_threshold *. (1. +. 1e-9) then begin
    st.suppressed <- false;
    st.reuses <- st.reuses + 1
  end

let penalty p st ~now =
  decay p st ~now;
  st.penalty

let penalize p st ~now amount =
  decay p st ~now;
  st.penalty <- Float.min p.max_penalty (st.penalty +. amount);
  st.flaps <- st.flaps + 1;
  if st.penalty >= p.suppress_threshold then begin
    if not st.suppressed then st.suppressions <- st.suppressions + 1;
    st.suppressed <- true
  end

let is_suppressed p st ~now =
  decay p st ~now;
  st.suppressed

(* Seconds from [now] until a currently-suppressed route decays below the
   reuse threshold; 0 if it is already reusable. *)
let time_to_reuse p st ~now =
  decay p st ~now;
  if not st.suppressed then 0.
  else p.half_life *. (Float.log (st.penalty /. p.reuse_threshold) /. Float.log 2.)

let pp ppf st =
  Format.fprintf ppf "penalty %.0f%s (%d flaps)" st.penalty
    (if st.suppressed then ", suppressed" else "")
    st.flaps
