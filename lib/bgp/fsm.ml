type state = Idle | Connect | Open_sent | Open_confirm | Established

type config = {
  my_asn : Dbgp_types.Asn.t;
  my_id : Dbgp_types.Ipv4.t;
  hold_time : int;
  capabilities : int list;
}

(* Automatic re-establishment after transport failure: exponential
   backoff with deterministic (seeded) jitter and a max-retry cap.
   With [retry = None] a Tcp_failed session parks in Idle, as before. *)
type retry = {
  base : float;        (* first retry delay, seconds *)
  multiplier : float;  (* delay growth factor per attempt *)
  max_delay : float;   (* backoff ceiling *)
  max_retries : int;   (* give up (park in Idle) after this many attempts *)
  jitter : float;      (* each delay is scaled by 1 + U[0, jitter] *)
  seed : int;          (* PRNG seed for the jitter draws *)
}

let default_retry =
  { base = 1.0; multiplier = 2.0; max_delay = 64.0; max_retries = 8;
    jitter = 0.1; seed = 1 }

type t = {
  cfg : config;
  st : state;
  peer : Message.open_msg option;
  retry : retry option;
  rng : Dbgp_types.Prng.t;
  attempts : int;  (* consecutive failed attempts since last Established *)
}

type event =
  | Manual_start
  | Manual_stop
  | Tcp_established
  | Tcp_failed
  | Recv of Message.t
  | Hold_timer_expired
  | Keepalive_timer_expired
  | Connect_retry_expired

type action =
  | Send of Message.t
  | Connect_tcp
  | Close_tcp
  | Session_up of Message.open_msg
  | Session_down
  | Deliver_update of Message.update
  | Start_hold_timer of int
  | Start_keepalive_timer of int
  | Start_connect_retry_timer of float
  | Stop_connect_retry_timer

let create ?retry cfg =
  { cfg; st = Idle; peer = None; retry;
    rng =
      Dbgp_types.Prng.create (match retry with Some r -> r.seed | None -> 0);
    attempts = 0 }

let state t = t.st
let config t = t.cfg
let peer_open t = t.peer
let attempts t = t.attempts

let retry_delay r rng attempt =
  let d =
    Float.min r.max_delay (r.base *. (r.multiplier ** float_of_int attempt))
  in
  if r.jitter > 0. then d *. (1. +. Dbgp_types.Prng.float rng r.jitter) else d

let negotiated_hold_time t =
  Option.map (fun (o : Message.open_msg) -> min o.hold_time t.cfg.hold_time) t.peer

let my_open cfg : Message.open_msg =
  { version = 4;
    my_asn = cfg.my_asn;
    hold_time = cfg.hold_time;
    bgp_id = cfg.my_id;
    capabilities = cfg.capabilities }

let notif code sub =
  Message.Notification { error_code = code; error_subcode = sub; data = "" }

let reset t actions = ({ t with st = Idle; peer = None; attempts = 0 }, actions)

(* Transport-level failure: arm the connect-retry timer (backoff) when a
   retry policy is configured and attempts remain; otherwise park in Idle. *)
let fail t actions =
  match t.retry with
  | Some r when t.attempts < r.max_retries ->
    let d = retry_delay r t.rng t.attempts in
    ( { t with st = Idle; peer = None; attempts = t.attempts + 1 },
      actions @ [ Start_connect_retry_timer d ] )
  | _ -> reset t actions

let timers t =
  match negotiated_hold_time t with
  | Some h when h > 0 -> [ Start_hold_timer h; Start_keepalive_timer (h / 3) ]
  | _ -> []

let handle t ev =
  match (t.st, ev) with
  | Idle, (Manual_start | Connect_retry_expired) ->
    ({ t with st = Connect }, [ Connect_tcp ])
  | Idle, Tcp_established ->
    (* Passive open: accept an inbound connection while Idle, so a single
       retrying endpoint can re-establish against a listening peer. *)
    ({ t with st = Open_sent }, [ Send (Message.Open (my_open t.cfg)) ])
  | Idle, Manual_stop ->
    (* Cancel a pending connect-retry so an admin stop sticks. *)
    ({ t with attempts = 0 }, [ Stop_connect_retry_timer ])
  | Idle, _ -> (t, [])
  | _, Connect_retry_expired -> (t, [])
  | _, Manual_stop -> reset t [ Send (notif 6 2 (* Cease/shutdown *)); Close_tcp; Session_down ]
  | Connect, Tcp_established ->
    ({ t with st = Open_sent }, [ Send (Message.Open (my_open t.cfg)) ])
  | Connect, Tcp_failed -> fail t []
  | Connect, _ -> (t, [])
  | Open_sent, Recv (Message.Open o) ->
    if o.version <> 4 then
      reset t [ Send (notif 2 1 (* OPEN error / unsupported version *)); Close_tcp ]
    else
      let t = { t with st = Open_confirm; peer = Some o } in
      (t, [ Send Message.Keepalive ])
  | Open_sent, Tcp_failed -> fail t [ Close_tcp ]
  | Open_sent, Recv (Message.Notification _) -> reset t [ Close_tcp ]
  | Open_sent, Hold_timer_expired -> reset t [ Send (notif 4 0); Close_tcp ]
  | Open_sent, _ -> reset t [ Send (notif 5 0 (* FSM error *)); Close_tcp ]
  | Open_confirm, Recv Message.Keepalive ->
    let t = { t with st = Established; attempts = 0 } in
    let up = match t.peer with Some o -> [ Session_up o ] | None -> [] in
    (t, up @ timers t)
  | Open_confirm, Tcp_failed -> fail t [ Close_tcp ]
  | Open_confirm, Recv (Message.Notification _) -> reset t [ Close_tcp ]
  | Open_confirm, Hold_timer_expired -> reset t [ Send (notif 4 0); Close_tcp ]
  | Open_confirm, Keepalive_timer_expired -> (t, [ Send Message.Keepalive ])
  | Open_confirm, _ -> reset t [ Send (notif 5 0); Close_tcp ]
  | Established, Recv (Message.Update u) ->
    let restart =
      match negotiated_hold_time t with
      | Some h when h > 0 -> [ Start_hold_timer h ]
      | _ -> []
    in
    (t, Deliver_update u :: restart)
  | Established, Recv Message.Keepalive ->
    let restart =
      match negotiated_hold_time t with
      | Some h when h > 0 -> [ Start_hold_timer h ]
      | _ -> []
    in
    (t, restart)
  | Established, Keepalive_timer_expired ->
    let again =
      match negotiated_hold_time t with
      | Some h when h > 0 -> [ Start_keepalive_timer (h / 3) ]
      | _ -> []
    in
    (t, (Send Message.Keepalive :: again))
  | Established, Hold_timer_expired ->
    fail t [ Send (notif 4 0); Close_tcp; Session_down ]
  | Established, Tcp_failed -> fail t [ Close_tcp; Session_down ]
  | Established, Recv (Message.Notification _) ->
    reset t [ Close_tcp; Session_down ]
  | Established, Recv (Message.Open _) ->
    reset t [ Send (notif 5 0); Close_tcp; Session_down ]
  | Established, (Manual_start | Tcp_established) -> (t, [])

let state_name = function
  | Idle -> "Idle"
  | Connect -> "Connect"
  | Open_sent -> "OpenSent"
  | Open_confirm -> "OpenConfirm"
  | Established -> "Established"

let pp_state ppf st = Format.pp_print_string ppf (state_name st)
