(** The BGP peering session finite-state machine (RFC 4271 section 8,
    simplified to the transitions exercised by a software router over a
    reliable transport).

    The FSM is pure: {!handle} maps a state and an event to a new state
    plus a list of actions for the runtime (netsim's session layer) to
    perform.  Keeping it pure lets the test suite drive every transition
    directly. *)

type state =
  | Idle
  | Connect
  | Open_sent
  | Open_confirm
  | Established

type config = {
  my_asn : Dbgp_types.Asn.t;
  my_id : Dbgp_types.Ipv4.t;
  hold_time : int;            (** proposed hold time, seconds *)
  capabilities : int list;
}

type retry = {
  base : float;        (** first retry delay, seconds *)
  multiplier : float;  (** delay growth factor per attempt *)
  max_delay : float;   (** backoff ceiling *)
  max_retries : int;   (** park in Idle after this many failed attempts *)
  jitter : float;      (** each delay is scaled by 1 + U[0, jitter] *)
  seed : int;          (** PRNG seed for deterministic jitter *)
}
(** Automatic re-establishment policy after transport failure: exponential
    backoff with seeded jitter and a max-retry cap. *)

val default_retry : retry

type t

type event =
  | Manual_start
  | Manual_stop
  | Tcp_established
  | Tcp_failed
  | Recv of Message.t
  | Hold_timer_expired
  | Keepalive_timer_expired
  | Connect_retry_expired  (** the backoff timer fired; try to reconnect *)

type action =
  | Send of Message.t
  | Connect_tcp
  | Close_tcp
  | Session_up of Message.open_msg   (** the peer's OPEN, for capability checks *)
  | Session_down
  | Deliver_update of Message.update (** forward to the RIB layer *)
  | Start_hold_timer of int
  | Start_keepalive_timer of int
  | Start_connect_retry_timer of float
      (** arm the backoff timer; deliver [Connect_retry_expired] after the
          given delay unless stopped *)
  | Stop_connect_retry_timer

val create : ?retry:retry -> config -> t

(** Consecutive failed connection attempts since the session was last
    Established (0 when no retry is in progress). *)
val attempts : t -> int
val state : t -> state
val config : t -> config

val peer_open : t -> Message.open_msg option
(** The peer's OPEN once received (in Open_confirm / Established). *)

val negotiated_hold_time : t -> int option
(** min of both sides' proposals, once known. *)

val handle : t -> event -> t * action list

val state_name : state -> string
(** Stable name for tracing and display ("Idle", "OpenSent", ...). *)

val pp_state : Format.formatter -> state -> unit
