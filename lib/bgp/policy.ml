open Dbgp_types

type relationship = To_customer | To_peer | To_provider

type match_cond =
  | Match_any
  | Match_prefix of Prefix.t
  | Match_asn_on_path of Asn.t
  | Match_community of Attr.community
  | Match_not of match_cond
  | Match_all of match_cond list

type action =
  | Set_local_pref of int
  | Set_med of int
  | Add_community of Attr.community
  | Strip_communities
  | Prepend of Asn.t * int

type clause = { cond : match_cond; permit : bool; actions : action list }

type t = clause list

let permit_all = [ { cond = Match_any; permit = true; actions = [] } ]
let deny_all = []

let rec matches cond prefix (attrs : Attr.t) =
  match cond with
  | Match_any -> true
  | Match_prefix p -> Prefix.subsumes p prefix
  | Match_asn_on_path a -> Attr.as_path_contains a attrs.Attr.as_path
  | Match_community c -> List.mem c attrs.Attr.communities
  | Match_not c -> not (matches c prefix attrs)
  | Match_all cs -> List.for_all (fun c -> matches c prefix attrs) cs

let run_action (attrs : Attr.t) = function
  | Set_local_pref lp -> { attrs with Attr.local_pref = Some lp }
  | Set_med m -> { attrs with Attr.med = Some m }
  | Add_community c -> { attrs with Attr.communities = c :: attrs.Attr.communities }
  | Strip_communities -> { attrs with Attr.communities = [] }
  | Prepend (a, n) ->
    let rec go attrs = function
      | 0 -> attrs
      | k ->
        go { attrs with Attr.as_path = Attr.prepend a attrs.Attr.as_path } (k - 1)
    in
    go attrs n

let apply policy prefix attrs =
  let rec go = function
    | [] -> None
    | c :: rest ->
      if matches c.cond prefix attrs then
        if c.permit then Some (List.fold_left run_action attrs c.actions)
        else None
      else go rest
  in
  go policy

let lp_customer = 200
let lp_peer = 100
let lp_provider = 50

let import_for rel =
  let lp =
    match rel with
    | To_customer -> lp_customer
    | To_peer -> lp_peer
    | To_provider -> lp_provider
  in
  [ { cond = Match_any; permit = true; actions = [ Set_local_pref lp ] } ]

let export_for rel ~learned_local_pref =
  let from_customer =
    match learned_local_pref with Some lp -> lp >= lp_customer | None -> true
    (* A locally originated route (no import LOCAL_PREF) is exported to
       everyone, like a customer route. *)
  in
  match rel with
  | To_customer -> true
  | To_peer | To_provider -> from_customer

type export_rule = learned:relationship option -> to_:relationship -> bool

let valley_free ~learned ~to_ =
  match learned with
  | None (* locally originated *) | Some To_customer -> true
  | Some (To_peer | To_provider) -> to_ = To_customer

let export_all ~learned:_ ~to_:_ = true
