(** Route policies: the import/export filter language.

    A small route-map language matching Quagga's role for Beagle.  A
    policy is an ordered list of clauses; the first clause whose match
    succeeds decides (permit with actions applied, or deny).  No clause
    matching means deny — the conventional implicit deny.

    {!gao_rexford} builds the standard valley-free business policy from a
    link relationship: customers' routes get the highest local preference
    and are exported to everyone, peer and provider routes are exported
    only to customers. *)

type relationship = To_customer | To_peer | To_provider
(** Who the session talks to, from this AS's point of view. *)

type match_cond =
  | Match_any
  | Match_prefix of Dbgp_types.Prefix.t      (** prefix subsumed by this *)
  | Match_asn_on_path of Dbgp_types.Asn.t
  | Match_community of Attr.community
  | Match_not of match_cond
  | Match_all of match_cond list

type action =
  | Set_local_pref of int
  | Set_med of int
  | Add_community of Attr.community
  | Strip_communities
  | Prepend of Dbgp_types.Asn.t * int  (** prepend the ASN [n] times *)

type clause = { cond : match_cond; permit : bool; actions : action list }

type t = clause list

val permit_all : t
val deny_all : t

val apply :
  t -> Dbgp_types.Prefix.t -> Attr.t -> Attr.t option
(** [apply policy prefix attrs] is [Some attrs'] if permitted (actions
    applied in clause order) or [None] if denied. *)

val import_for : relationship -> t
(** Gao-Rexford import: sets LOCAL_PREF 200 / 100 / 50 for routes from a
    customer / peer / provider. *)

val export_for : relationship -> learned_local_pref:int option -> bool
(** Gao-Rexford export rule: may a route with the given import-assigned
    LOCAL_PREF be sent on a session of this relationship?  Customer
    routes (lp >= 200) go everywhere; others only to customers. *)

type export_rule = learned:relationship option -> to_:relationship -> bool
(** Relationship-keyed export gate: may a route learned over a session of
    relationship [learned] ([None] = locally originated) be advertised on
    a session of relationship [to_]?  Speakers evaluate this before the
    per-neighbor route-map export filter. *)

val valley_free : export_rule
(** The Gao-Rexford default: customer routes and locally originated
    routes are exported everywhere; peer- and provider-learned routes
    only to customers.  Every path stays valley-free when all ASes
    follow it. *)

val export_all : export_rule
(** Exports everything to everyone — the route-leak behavior.  An AS
    running this re-advertises provider/peer routes to its other
    providers and peers, violating valley-freeness. *)
