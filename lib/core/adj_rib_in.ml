open Dbgp_types

(* The outer per-prefix table is a hashtable so {!set} — run once per
   delivered announcement — replaces its bucket in place instead of
   rebuilding a functional-map spine.  The inner per-peer maps stay
   ordered so {!candidates} keeps its deterministic ascending order.
   Cold readers that need ordered output sort on the way out. *)
type 'r t = {
  routes : (Prefix.t, 'r Peer.Map.t) Hashtbl.t;
  mutable stale : Prefix.Set.t Peer.Map.t;
}

let create () = { routes = Hashtbl.create 64; stale = Peer.Map.empty }

let set t ~peer prefix r =
  let m =
    Option.value (Hashtbl.find_opt t.routes prefix) ~default:Peer.Map.empty
  in
  Hashtbl.replace t.routes prefix (Peer.Map.add peer r m)

let remove t ~peer prefix =
  match Hashtbl.find_opt t.routes prefix with
  | None -> ()
  | Some m ->
    let m = Peer.Map.remove peer m in
    if Peer.Map.is_empty m then Hashtbl.remove t.routes prefix
    else Hashtbl.replace t.routes prefix m

let find t ~peer prefix =
  Option.bind (Hashtbl.find_opt t.routes prefix) (Peer.Map.find_opt peer)

let candidates t prefix =
  match Hashtbl.find_opt t.routes prefix with
  | None -> []
  | Some m -> Peer.Map.bindings m

let prefixes_of t ~peer =
  Hashtbl.fold
    (fun p m acc -> if Peer.Map.mem peer m then p :: acc else acc)
    t.routes []
  |> List.sort Prefix.compare

let has_routes t ~peer =
  Hashtbl.fold (fun _ m acc -> acc || Peer.Map.mem peer m) t.routes false

let prefixes t =
  Hashtbl.fold (fun p _ acc -> Prefix.Set.add p acc) t.routes Prefix.Set.empty

let size t =
  Hashtbl.fold (fun _ m acc -> acc + Peer.Map.cardinal m) t.routes 0

(* ------------------------- stale marks ------------------------- *)

let stale_of t ~peer =
  Option.value (Peer.Map.find_opt peer t.stale) ~default:Prefix.Set.empty

let is_stale t ~peer prefix = Prefix.Set.mem prefix (stale_of t ~peer)

let stale_count t =
  Peer.Map.fold (fun _ s acc -> acc + Prefix.Set.cardinal s) t.stale 0

let has_stale t ~peer = not (Prefix.Set.is_empty (stale_of t ~peer))

let mark_stale t ~peer =
  let ps = prefixes_of t ~peer in
  if ps = [] then 0
  else begin
    let set =
      List.fold_left (fun s p -> Prefix.Set.add p s) (stale_of t ~peer) ps
    in
    t.stale <- Peer.Map.add peer set t.stale;
    Prefix.Set.cardinal set
  end

let clear_stale t ~peer prefix =
  t.stale <-
    Peer.Map.update peer
      (function
        | None -> None
        | Some s ->
          let s = Prefix.Set.remove prefix s in
          if Prefix.Set.is_empty s then None else Some s)
      t.stale

let take_stale t ~peer =
  match Peer.Map.find_opt peer t.stale with
  | None -> Prefix.Set.empty
  | Some set ->
    t.stale <- Peer.Map.remove peer t.stale;
    set

let drop_peer t ~peer =
  let affected = prefixes_of t ~peer in
  List.iter (fun p -> remove t ~peer p) affected;
  t.stale <- Peer.Map.remove peer t.stale;
  affected
