open Dbgp_types

(* The outer per-prefix table is a hashtable so {!set} — run once per
   delivered announcement — replaces its bucket in place instead of
   rebuilding a functional-map spine.

   A slot is specialized to its population: almost every prefix in a
   full table has exactly one contributing peer (a transit AS learns
   each destination from one upstream), and a [Single] cell is 3 words
   where a one-entry [Peer.Map] node is 6 — on a million-route
   Adj-RIB-In that halves the per-binding overhead.  [Multi] (a map,
   always holding >= 2 peers) keeps {!candidates}'s deterministic
   ascending order for the genuinely contested prefixes. *)
type 'r slot =
  | Single of Peer.t * 'r
  | Multi of 'r Peer.Map.t

type 'r t = {
  routes : (Prefix.t, 'r slot) Hashtbl.t;
  mutable stale : Prefix.Set.t Peer.Map.t;
}

let create () = { routes = Hashtbl.create 64; stale = Peer.Map.empty }

let set t ~peer prefix r =
  let slot =
    match Hashtbl.find_opt t.routes prefix with
    | None -> Single (peer, r)
    | Some (Single (p, _)) when Peer.equal p peer -> Single (peer, r)
    | Some (Single (p, r0)) ->
      Multi (Peer.Map.add peer r (Peer.Map.singleton p r0))
    | Some (Multi m) -> Multi (Peer.Map.add peer r m)
  in
  Hashtbl.replace t.routes prefix slot

let remove t ~peer prefix =
  match Hashtbl.find_opt t.routes prefix with
  | None -> ()
  | Some (Single (p, _)) ->
    if Peer.equal p peer then Hashtbl.remove t.routes prefix
  | Some (Multi m) -> (
    let m = Peer.Map.remove peer m in
    match Peer.Map.cardinal m with
    | 0 -> Hashtbl.remove t.routes prefix
    | 1 ->
      let p, r = Peer.Map.choose m in
      Hashtbl.replace t.routes prefix (Single (p, r))
    | _ -> Hashtbl.replace t.routes prefix (Multi m) )

let slot_find peer = function
  | Single (p, r) -> if Peer.equal p peer then Some r else None
  | Multi m -> Peer.Map.find_opt peer m

let slot_mem peer = function
  | Single (p, _) -> Peer.equal p peer
  | Multi m -> Peer.Map.mem peer m

let find t ~peer prefix =
  Option.bind (Hashtbl.find_opt t.routes prefix) (slot_find peer)

let candidates t prefix =
  match Hashtbl.find_opt t.routes prefix with
  | None -> []
  | Some (Single (p, r)) -> [ (p, r) ]
  | Some (Multi m) -> Peer.Map.bindings m

let prefixes_of t ~peer =
  Hashtbl.fold
    (fun p s acc -> if slot_mem peer s then p :: acc else acc)
    t.routes []
  |> List.sort Prefix.compare

let has_routes t ~peer =
  Hashtbl.fold (fun _ s acc -> acc || slot_mem peer s) t.routes false

let prefixes t =
  Hashtbl.fold (fun p _ acc -> Prefix.Set.add p acc) t.routes Prefix.Set.empty

let size t =
  Hashtbl.fold
    (fun _ s acc ->
      acc + match s with Single _ -> 1 | Multi m -> Peer.Map.cardinal m)
    t.routes 0

(* ------------------------- stale marks ------------------------- *)

let stale_of t ~peer =
  Option.value (Peer.Map.find_opt peer t.stale) ~default:Prefix.Set.empty

let is_stale t ~peer prefix = Prefix.Set.mem prefix (stale_of t ~peer)

let stale_count t =
  Peer.Map.fold (fun _ s acc -> acc + Prefix.Set.cardinal s) t.stale 0

let has_stale t ~peer = not (Prefix.Set.is_empty (stale_of t ~peer))

let mark_stale t ~peer =
  let ps = prefixes_of t ~peer in
  if ps = [] then 0
  else begin
    let set =
      List.fold_left (fun s p -> Prefix.Set.add p s) (stale_of t ~peer) ps
    in
    t.stale <- Peer.Map.add peer set t.stale;
    Prefix.Set.cardinal set
  end

let clear_stale t ~peer prefix =
  t.stale <-
    Peer.Map.update peer
      (function
        | None -> None
        | Some s ->
          let s = Prefix.Set.remove prefix s in
          if Prefix.Set.is_empty s then None else Some s)
      t.stale

let take_stale t ~peer =
  match Peer.Map.find_opt peer t.stale with
  | None -> Prefix.Set.empty
  | Some set ->
    t.stale <- Peer.Map.remove peer t.stale;
    set

let drop_peer t ~peer =
  let affected = prefixes_of t ~peer in
  List.iter (fun p -> remove t ~peer p) affected;
  t.stale <- Peer.Map.remove peer t.stale;
  affected
