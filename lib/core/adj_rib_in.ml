open Dbgp_types

type 'r t = {
  mutable routes : 'r Peer.Map.t Prefix.Map.t;
  mutable stale : Prefix.Set.t Peer.Map.t;
}

let create () = { routes = Prefix.Map.empty; stale = Peer.Map.empty }

let set t ~peer prefix r =
  let m =
    Option.value (Prefix.Map.find_opt prefix t.routes) ~default:Peer.Map.empty
  in
  t.routes <- Prefix.Map.add prefix (Peer.Map.add peer r m) t.routes

let remove t ~peer prefix =
  match Prefix.Map.find_opt prefix t.routes with
  | None -> ()
  | Some m ->
    let m = Peer.Map.remove peer m in
    t.routes <-
      ( if Peer.Map.is_empty m then Prefix.Map.remove prefix t.routes
        else Prefix.Map.add prefix m t.routes )

let find t ~peer prefix =
  Option.bind (Prefix.Map.find_opt prefix t.routes) (Peer.Map.find_opt peer)

let candidates t prefix =
  match Prefix.Map.find_opt prefix t.routes with
  | None -> []
  | Some m -> Peer.Map.bindings m

let prefixes_of t ~peer =
  Prefix.Map.fold
    (fun p m acc -> if Peer.Map.mem peer m then p :: acc else acc)
    t.routes []
  |> List.rev

let has_routes t ~peer =
  Prefix.Map.exists (fun _ m -> Peer.Map.mem peer m) t.routes

let prefixes t =
  Prefix.Map.fold (fun p _ acc -> Prefix.Set.add p acc) t.routes Prefix.Set.empty

let size t = Prefix.Map.fold (fun _ m acc -> acc + Peer.Map.cardinal m) t.routes 0

(* ------------------------- stale marks ------------------------- *)

let stale_of t ~peer =
  Option.value (Peer.Map.find_opt peer t.stale) ~default:Prefix.Set.empty

let is_stale t ~peer prefix = Prefix.Set.mem prefix (stale_of t ~peer)

let stale_count t =
  Peer.Map.fold (fun _ s acc -> acc + Prefix.Set.cardinal s) t.stale 0

let has_stale t ~peer = not (Prefix.Set.is_empty (stale_of t ~peer))

let mark_stale t ~peer =
  let ps = prefixes_of t ~peer in
  if ps = [] then 0
  else begin
    let set =
      List.fold_left (fun s p -> Prefix.Set.add p s) (stale_of t ~peer) ps
    in
    t.stale <- Peer.Map.add peer set t.stale;
    Prefix.Set.cardinal set
  end

let clear_stale t ~peer prefix =
  t.stale <-
    Peer.Map.update peer
      (function
        | None -> None
        | Some s ->
          let s = Prefix.Set.remove prefix s in
          if Prefix.Set.is_empty s then None else Some s)
      t.stale

let take_stale t ~peer =
  match Peer.Map.find_opt peer t.stale with
  | None -> Prefix.Set.empty
  | Some set ->
    t.stale <- Peer.Map.remove peer t.stale;
    set

let drop_peer t ~peer =
  let affected =
    Prefix.Map.fold
      (fun p m acc -> if Peer.Map.mem peer m then p :: acc else acc)
      t.routes []
  in
  List.iter (fun p -> remove t ~peer p) affected;
  t.stale <- Peer.Map.remove peer t.stale;
  List.rev affected
