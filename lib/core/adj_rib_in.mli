(** Adj-RIB-In: stage 1 of the RIB pipeline.

    The per-(prefix, peer) store of post-import routes — what each peer
    currently advertises — plus the graceful-restart stale marks of
    RFC 4724 (routes retained through a peer restart until refreshed or
    flushed).  Polymorphic in the route type so both the D-BGP speaker
    (IAs) and the plain-BGP stress arm (attribute candidates) share one
    representation.

    Iteration orders are deterministic: prefixes ascend by
    [Prefix.compare], peers by [Peer.compare]. *)

type 'r t

val create : unit -> 'r t
val set : 'r t -> peer:Peer.t -> Dbgp_types.Prefix.t -> 'r -> unit
val remove : 'r t -> peer:Peer.t -> Dbgp_types.Prefix.t -> unit
val find : 'r t -> peer:Peer.t -> Dbgp_types.Prefix.t -> 'r option

val candidates : 'r t -> Dbgp_types.Prefix.t -> (Peer.t * 'r) list
(** Every peer's current route for the prefix, ascending by peer. *)

val prefixes_of : 'r t -> peer:Peer.t -> Dbgp_types.Prefix.t list
(** The prefixes the peer currently has a route for, ascending. *)

val has_routes : 'r t -> peer:Peer.t -> bool

val drop_peer : 'r t -> peer:Peer.t -> Dbgp_types.Prefix.t list
(** Session loss: removes every route and stale mark of the peer and
    returns the affected prefixes, ascending. *)

val prefixes : 'r t -> Dbgp_types.Prefix.Set.t
val size : 'r t -> int
(** Total stored routes across all (prefix, peer) pairs. *)

(** {1 Graceful-restart stale marks (RFC 4724)} *)

val mark_stale : 'r t -> peer:Peer.t -> int
(** Mark every route currently held from the peer as stale (merging with
    any existing marks).  Returns the size of the peer's resulting stale
    set; [0] when the peer holds no routes (nothing marked). *)

val clear_stale : 'r t -> peer:Peer.t -> Dbgp_types.Prefix.t -> unit
val is_stale : 'r t -> peer:Peer.t -> Dbgp_types.Prefix.t -> bool
val has_stale : 'r t -> peer:Peer.t -> bool

val stale_of : 'r t -> peer:Peer.t -> Dbgp_types.Prefix.Set.t

val take_stale : 'r t -> peer:Peer.t -> Dbgp_types.Prefix.Set.t
(** Remove and return the peer's stale set (empty if none) — closing a
    restart window. *)

val stale_count : 'r t -> int
(** Stale marks across all peers. *)
