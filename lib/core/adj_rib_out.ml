open Dbgp_types

type group_key = {
  relationship : Dbgp_bgp.Policy.relationship;
  dbgp_capable : bool;
  same_island : bool;
  export : Filters.t;
}

type group = { id : int; key : group_key; mutable members : int }

type cache_entry = { src : Ia.t; out : Ia.t option }

type record_entry = { mutable out : Ia.t option; mutable confirmed : bool }

(* Advertised state is a hashtable of hashtables so that the very hot
   {!record} path mutates buckets in place instead of rebuilding nested
   functional maps on every announcement; the read accessors that need
   determinism ({!bindings}, {!peers}) sort on the way out.

   Each entry carries a confirmed bit: {!record} is optimistic (sent ⇒
   delivered) and the network layer calls {!note_failed} for every
   message it actually drops, so after a session loss the record set
   describes exactly what the peer may still hold.  [out = None]
   entries are withdraw tombstones — a withdraw was sent but may not
   have arrived, so the peer possibly retains a route we no longer
   advertise. *)
type t = {
  advertised : (Peer.t, (Prefix.t, record_entry) Hashtbl.t) Hashtbl.t;
  mutable groups : group list; (* newest first; ids never reused *)
  mutable by_peer : int Peer.Map.t;
  mutable next_id : int;
  (* Key: group id and prefix packed into one int (gid lsl 38 | net
     lsl 6 | len) — an int-keyed table avoids allocating a tuple key
     and generic-hashing it on every egress probe. *)
  cache : (int, cache_entry) Hashtbl.t;
}

let cache_key gid prefix =
  (gid lsl 38)
  lor (Ipv4.to_int (Prefix.network prefix) lsl 6)
  lor Prefix.length prefix

let create () =
  { advertised = Hashtbl.create 16;
    groups = [];
    by_peer = Peer.Map.empty;
    next_id = 0;
    cache = Hashtbl.create 64 }

(* ------------------------- peer groups ------------------------- *)

(* Export filters are closures, so group identity compares them
   physically: two neighbors share a group only when they share the
   *same* filter value.  (Filters must be pure for caching to be sound;
   every filter in {!Filters} is.) *)
let same_key a b =
  a.relationship = b.relationship
  && a.dbgp_capable = b.dbgp_capable
  && a.same_island = b.same_island
  && a.export == b.export

let evict_group t id =
  let doomed =
    Hashtbl.fold
      (fun k _ acc -> if k lsr 38 = id then k :: acc else acc)
      t.cache []
  in
  List.iter (Hashtbl.remove t.cache) doomed

let group_of t ~peer = Peer.Map.find_opt peer t.by_peer

let leave t ~peer =
  match group_of t ~peer with
  | None -> ()
  | Some id ->
    t.by_peer <- Peer.Map.remove peer t.by_peer;
    List.iter
      (fun g ->
        if g.id = id then begin
          g.members <- g.members - 1;
          if g.members <= 0 then begin
            evict_group t id;
            t.groups <- List.filter (fun g' -> g'.id <> id) t.groups
          end
        end)
      t.groups

let join t ~peer key =
  let target =
    match List.find_opt (fun g -> same_key g.key key) t.groups with
    | Some g -> g
    | None ->
      let g = { id = t.next_id; key; members = 0 } in
      t.next_id <- t.next_id + 1;
      t.groups <- g :: t.groups;
      g
  in
  ( match group_of t ~peer with
    | Some old when old = target.id -> ()
    | old ->
      (* A changed egress identity (new filter, relationship or
         capability) leaves the old group; {!leave} evicts that group's
         cached exports only if the departure empties it — remaining
         members still share the key, so their entries stay valid (a
         cached result depends on the group key and source IA alone,
         never on membership). *)
      ( match old with
        | Some _ -> leave t ~peer
        | None -> () );
      target.members <- target.members + 1;
      t.by_peer <- Peer.Map.add peer target.id t.by_peer );
  target.id

let group_count t = List.length t.groups

let group_members t id =
  Peer.Map.fold
    (fun peer gid acc -> if gid = id then peer :: acc else acc)
    t.by_peer []
  |> List.rev

(* ------------------------- export cache ------------------------- *)

(* A cached egress result is valid while the source IA is unchanged:
   physical equality is the fast path (the common case — the chosen
   outgoing IA is the same value across a drain), [Ia.equal] the slow
   one.

   Only positive results earn a slot.  A rejected export ([None]) is
   cheap to recompute per drain, but a cached rejection is resident for
   the lifetime of the route — a route collector that rejects a
   million-prefix table toward every peer group would pin an entry per
   (group, prefix) of pure dead weight.  The table is also capped:
   beyond [cache_max] entries it resets wholesale, which (as with the
   intern tables) costs only future sharing, never correctness. *)
let cache_max = 262_144

let egress t ~group ~prefix ~src ~compute =
  match group with
  | None -> (compute (), false)
  | Some gid -> (
    let key = cache_key gid prefix in
    match Hashtbl.find_opt t.cache key with
    | Some e when e.src == src || Ia.equal e.src src -> (e.out, true)
    | stale ->
      let out = compute () in
      ( match out with
        | Some _ ->
          if Hashtbl.length t.cache >= cache_max then Hashtbl.reset t.cache;
          Hashtbl.replace t.cache key { src; out }
        | None -> if Option.is_some stale then Hashtbl.remove t.cache key );
      (out, false) )

let cache_size t = Hashtbl.length t.cache

(* ------------------------- advertised state ------------------------- *)

let table t ~peer =
  match Hashtbl.find_opt t.advertised peer with
  | Some m -> m
  | None ->
    let m = Hashtbl.create 16 in
    Hashtbl.replace t.advertised peer m;
    m

let record t ~peer prefix out =
  match out with
  | None -> (
    match Hashtbl.find_opt t.advertised peer with
    | None -> ()
    | Some m ->
      Hashtbl.remove m prefix;
      if Hashtbl.length m = 0 then Hashtbl.remove t.advertised peer )
  | Some _ -> (
    (* Store the caller's option value as-is: it is the same box the
       egress cache holds, so a recorded advertisement costs no
       per-route [Some] of its own. *)
    match Hashtbl.find_opt (table t ~peer) prefix with
    | Some e ->
      e.out <- out;
      e.confirmed <- true
    | None -> Hashtbl.replace (table t ~peer) prefix { out; confirmed = true } )

let note_failed t ~peer prefix =
  match Hashtbl.find_opt (table t ~peer) prefix with
  | Some e -> e.confirmed <- false
  | None ->
    (* A dropped withdraw: the entry was optimistically removed by
       {!record}, but the peer may still hold the route.  Leave a
       tombstone so the next sync re-sends the withdraw. *)
    Hashtbl.replace (table t ~peer) prefix { out = None; confirmed = false }

let find t ~peer prefix =
  match Hashtbl.find_opt t.advertised peer with
  | None -> None
  | Some m -> (
    match Hashtbl.find_opt m prefix with
    | None -> None
    | Some e -> Some (e.out, e.confirmed) )

let advertised t ~peer prefix =
  match Hashtbl.find_opt t.advertised peer with
  | None -> false
  | Some m -> Hashtbl.mem m prefix

let entries t ~peer =
  match Hashtbl.find_opt t.advertised peer with
  | None -> []
  | Some m ->
    Hashtbl.fold (fun p e acc -> (p, e.out, e.confirmed) :: acc) m []
    |> List.sort (fun (a, _, _) (b, _, _) -> Prefix.compare a b)

let bindings t ~peer =
  match Hashtbl.find_opt t.advertised peer with
  | None -> []
  | Some m ->
    Hashtbl.fold
      (fun p e acc ->
        match e.out with Some ia -> (p, ia) :: acc | None -> acc)
      m []
    |> List.sort (fun (a, _) (b, _) -> Prefix.compare a b)

let peers t =
  Hashtbl.fold (fun p _ acc -> p :: acc) t.advertised []
  |> List.sort Peer.compare

let drop_peer t ~peer = Hashtbl.remove t.advertised peer
