open Dbgp_types

type group_key = {
  relationship : Dbgp_bgp.Policy.relationship;
  dbgp_capable : bool;
  same_island : bool;
  export : Filters.t;
}

type group = { id : int; key : group_key; mutable members : int }

type cache_entry = { src : Ia.t; out : Ia.t option }

type t = {
  mutable advertised : Ia.t Prefix.Map.t Peer.Map.t;
  mutable groups : group list; (* newest first; ids never reused *)
  mutable by_peer : int Peer.Map.t;
  mutable next_id : int;
  cache : (int * Prefix.t, cache_entry) Hashtbl.t;
}

let create () =
  { advertised = Peer.Map.empty;
    groups = [];
    by_peer = Peer.Map.empty;
    next_id = 0;
    cache = Hashtbl.create 64 }

(* ------------------------- peer groups ------------------------- *)

(* Export filters are closures, so group identity compares them
   physically: two neighbors share a group only when they share the
   *same* filter value.  (Filters must be pure for caching to be sound;
   every filter in {!Filters} is.) *)
let same_key a b =
  a.relationship = b.relationship
  && a.dbgp_capable = b.dbgp_capable
  && a.same_island = b.same_island
  && a.export == b.export

let evict_group t id =
  let doomed =
    Hashtbl.fold
      (fun ((gid, _) as k) _ acc -> if gid = id then k :: acc else acc)
      t.cache []
  in
  List.iter (Hashtbl.remove t.cache) doomed

let group_of t ~peer = Peer.Map.find_opt peer t.by_peer

let leave t ~peer =
  match group_of t ~peer with
  | None -> ()
  | Some id ->
    t.by_peer <- Peer.Map.remove peer t.by_peer;
    List.iter
      (fun g ->
        if g.id = id then begin
          g.members <- g.members - 1;
          if g.members <= 0 then begin
            evict_group t id;
            t.groups <- List.filter (fun g' -> g'.id <> id) t.groups
          end
        end)
      t.groups

let join t ~peer key =
  let target =
    match List.find_opt (fun g -> same_key g.key key) t.groups with
    | Some g -> g
    | None ->
      let g = { id = t.next_id; key; members = 0 } in
      t.next_id <- t.next_id + 1;
      t.groups <- g :: t.groups;
      g
  in
  ( match group_of t ~peer with
    | Some old when old = target.id -> ()
    | old ->
      (* A changed egress identity (new filter, relationship or
         capability) evicts only the departed group's cached exports;
         entries of the group being joined stay valid — they depend on
         the group key and source IA alone, never on membership. *)
      ( match old with
        | Some old_id ->
          evict_group t old_id;
          leave t ~peer
        | None -> () );
      target.members <- target.members + 1;
      t.by_peer <- Peer.Map.add peer target.id t.by_peer );
  target.id

let group_count t = List.length t.groups

let group_members t id =
  Peer.Map.fold
    (fun peer gid acc -> if gid = id then peer :: acc else acc)
    t.by_peer []
  |> List.rev

(* ------------------------- export cache ------------------------- *)

(* A cached egress result is valid while the source IA is unchanged:
   physical equality is the fast path (the common case — the chosen
   outgoing IA is the same value across a drain), [Ia.equal] the slow
   one. *)
let egress t ~group ~prefix ~src ~compute =
  match group with
  | None -> (compute (), false)
  | Some gid -> (
    let key = (gid, prefix) in
    match Hashtbl.find_opt t.cache key with
    | Some e when e.src == src || Ia.equal e.src src -> (e.out, true)
    | _ ->
      let out = compute () in
      Hashtbl.replace t.cache key { src; out };
      (out, false) )

let cache_size t = Hashtbl.length t.cache

(* ------------------------- advertised state ------------------------- *)

let record t ~peer prefix = function
  | None ->
    t.advertised <-
      Peer.Map.update peer
        (fun m ->
          match Option.map (Prefix.Map.remove prefix) m with
          | Some m when Prefix.Map.is_empty m -> None
          | other -> other)
        t.advertised
  | Some ia ->
    let m =
      Option.value (Peer.Map.find_opt peer t.advertised)
        ~default:Prefix.Map.empty
    in
    t.advertised <- Peer.Map.add peer (Prefix.Map.add prefix ia m) t.advertised

let advertised t ~peer prefix =
  match Peer.Map.find_opt peer t.advertised with
  | None -> false
  | Some m -> Prefix.Map.mem prefix m

let bindings t ~peer =
  match Peer.Map.find_opt peer t.advertised with
  | None -> []
  | Some m -> Prefix.Map.bindings m

let peers t = List.map fst (Peer.Map.bindings t.advertised)

let drop_peer t ~peer = t.advertised <- Peer.Map.remove peer t.advertised
