(** Adj-RIB-Out: stage 3 of the RIB pipeline.

    Three concerns of the egress edge:

    - the per-peer advertised state — what was last announced to each
      neighbor, so withdrawals are sent only for routes actually
      advertised;
    - {e peer groups}: neighbors with identical egress identity
      (relationship, capability, island class and — physically — the
      same export filter) share a group id;
    - the {e export cache}: the egress computation (island processing,
      global + per-neighbor export filters, legacy downgrade) depends
      only on the group key and the source IA, so its result is computed
      once per (group, prefix) and fanned out to every member.

    A cached entry is valid while the source IA is unchanged (physical
    equality, then [Ia.equal]); a departed group's entries are evicted
    when its last member leaves.  Caching is sound only for pure
    export filters — every filter in {!Filters} is. *)

type group_key = {
  relationship : Dbgp_bgp.Policy.relationship;
  dbgp_capable : bool;
  same_island : bool;
  export : Filters.t;  (** compared by physical identity *)
}

type t

val create : unit -> t

(** {1 Peer groups} *)

val join : t -> peer:Peer.t -> group_key -> int
(** Put the peer in the group matching [key] (creating it if needed) and
    return the group id.  Re-joining with an unchanged key is a no-op;
    a changed key leaves the old group, whose cached exports are
    evicted only if the departure empties it — they remain valid for
    any members still sharing the key. *)

val leave : t -> peer:Peer.t -> unit
(** Remove the peer from its group; a group left empty is dropped along
    with its cache entries. *)

val group_of : t -> peer:Peer.t -> int option
val group_count : t -> int
val group_members : t -> int -> Peer.t list

(** {1 Export cache} *)

val egress :
  t ->
  group:int option ->
  prefix:Dbgp_types.Prefix.t ->
  src:Ia.t ->
  compute:(unit -> Ia.t option) ->
  Ia.t option * bool
(** [egress t ~group ~prefix ~src ~compute] returns the egress result
    for [src] toward the group, and whether it was served from cache.
    On a miss, [compute] runs and its result is stored.  [group = None]
    (an unknown peer) bypasses the cache. *)

val evict_group : t -> int -> unit
val cache_size : t -> int

(** {1 Advertised state} *)

val record : t -> peer:Peer.t -> Dbgp_types.Prefix.t -> Ia.t option -> unit
(** [Some ia]: we announced [ia]; [None]: we withdrew (or never had
    anything advertised — the entry is removed).  Recording is
    optimistic: the entry is marked confirmed (sent ⇒ delivered) until
    the transport reports otherwise via {!note_failed}. *)

val note_failed : t -> peer:Peer.t -> Dbgp_types.Prefix.t -> unit
(** The transport dropped the last message for [prefix] toward [peer]:
    clear the entry's confirmed bit, or — for a dropped withdraw whose
    entry {!record} already removed — leave an unconfirmed
    [out = None] tombstone, so a later incremental sync knows the peer
    may still hold a route we no longer advertise. *)

val find :
  t -> peer:Peer.t -> Dbgp_types.Prefix.t -> (Ia.t option * bool) option
(** The recorded [(out, confirmed)] state for [prefix], if any.
    [out = None] is a withdraw tombstone. *)

val advertised : t -> peer:Peer.t -> Dbgp_types.Prefix.t -> bool

val entries :
  t -> peer:Peer.t -> (Dbgp_types.Prefix.t * Ia.t option * bool) list
(** All recorded [(prefix, out, confirmed)] entries toward the peer —
    tombstones included — in ascending prefix order. *)

val bindings : t -> peer:Peer.t -> (Dbgp_types.Prefix.t * Ia.t) list
val peers : t -> Peer.t list
(** Peers with at least one advertised route, ascending. *)

val drop_peer : t -> peer:Peer.t -> unit
(** Forget everything advertised to the peer (session teardown); group
    membership is handled separately by {!leave}. *)
