(* Refcounted shared attribute-set table: the memory half of the
   compact route store.

   A route is a prefix plus an attribute set (path vector, membership,
   descriptors), and attribute sets repeat massively — a full table
   learned from one peer carries a few thousand distinct sets across
   hundreds of thousands of prefixes, and a feed's million originations
   share one.  [share] maps an IA to the canonical physical
   representative of its attribute set, so every RIB that stores shared
   IAs degenerates to (prefix, canonical-attrs): with the prefix also
   interned ({!Dbgp_types.Intern.prefix}), a RIB entry is morally the
   int pair (prefix pack, attribute-set id).

   Refcounting governs table membership only, never memory safety: the
   attribute lists are ordinary GC-managed values, so an unbalanced
   release costs future sharing (or keeps a dead entry resident), not
   correctness.  Acquire/release discipline lives in {!Speaker}: a
   store into the Adj-RIB-In, the local-origination map or a Loc-RIB
   [chosen] acquires; eviction from those stores releases.  An entry
   whose refcount reaches zero leaves the table (counted under
   [attr_table.evictions]) and its dense id returns to the free list,
   keeping ids dense in [0, live-sets).

   Domain-local, like every intern table: sharing is an accelerator,
   so per-domain instances change hit rates, never results. *)

module Metrics = Dbgp_obs.Metrics

type entry = { canon : Ia.t; mutable rc : int; id : int }

module Key = struct
  type t = Ia.t

  let equal = Ia.same_attrs

  (* Prefix excluded — the bucketing relation is attrs-only.
     [Hashtbl.hash]'s bounded traversal keeps this O(1) on hostile
     input; structurally equal fields always hash equal. *)
  let hash (ia : Ia.t) =
    let h1 = Hashtbl.hash ia.Ia.path_vector
    and h2 = Hashtbl.hash ia.Ia.membership
    and h3 = Hashtbl.hash ia.Ia.path_descriptors
    and h4 = Hashtbl.hash ia.Ia.island_descriptors in
    (((((h1 * 31) + h2) * 31) + h3) * 31) + h4
end

module Tbl = Hashtbl.Make (Key)

let max_size = 262_144

type state = {
  obs : Metrics.t;
  c_hits : Metrics.counter;
  c_misses : Metrics.counter;
  c_evictions : Metrics.counter;
  c_overflow : Metrics.counter;
  g_occupancy : Metrics.gauge;
  tbl : entry Tbl.t;
  mutable next_id : int;
  mutable free_ids : int list;
}

let state_key =
  Domain.DLS.new_key (fun () ->
      let obs = Metrics.create () in
      {
        obs;
        c_hits = Metrics.counter obs "attr_table.hits";
        c_misses = Metrics.counter obs "attr_table.misses";
        c_evictions = Metrics.counter obs "attr_table.evictions";
        c_overflow = Metrics.counter obs "attr_table.overflow";
        g_occupancy = Metrics.gauge obs "attr_table.occupancy";
        tbl = Tbl.create 1024;
        next_id = 0;
        free_ids = [];
      })

let state () = Domain.DLS.get state_key
let metrics () = (state ()).obs
let occupancy () = Tbl.length (state ()).tbl

let reset () =
  let s = state () in
  Metrics.reset s.obs;
  Tbl.reset s.tbl;
  s.next_id <- 0;
  s.free_ids <- []

(* Re-point [ia] at the canonical attribute fields; returns [ia] itself
   when they are already physically canonical (the common case after
   the first share of a fan-out). *)
let rebind (canon : Ia.t) (ia : Ia.t) =
  if
    canon.Ia.path_vector == ia.Ia.path_vector
    && canon.Ia.membership == ia.Ia.membership
    && canon.Ia.path_descriptors == ia.Ia.path_descriptors
    && canon.Ia.island_descriptors == ia.Ia.island_descriptors
  then ia
  else
    { ia with
      Ia.path_vector = canon.Ia.path_vector;
      membership = canon.Ia.membership;
      path_descriptors = canon.Ia.path_descriptors;
      island_descriptors = canon.Ia.island_descriptors }

let share ia =
  let s = state () in
  match Tbl.find_opt s.tbl ia with
  | Some e ->
    Metrics.incr s.c_hits;
    e.rc <- e.rc + 1;
    rebind e.canon ia
  | None ->
    if Tbl.length s.tbl >= max_size then begin
      (* Full table: hand the IA back unshared.  Sharing degrades, the
         route is unaffected. *)
      Metrics.incr s.c_overflow;
      ia
    end
    else begin
      Metrics.incr s.c_misses;
      let id =
        match s.free_ids with
        | i :: rest ->
          s.free_ids <- rest;
          i
        | [] ->
          let i = s.next_id in
          s.next_id <- i + 1;
          i
      in
      Tbl.replace s.tbl ia { canon = ia; rc = 1; id };
      Metrics.set s.g_occupancy (float_of_int (Tbl.length s.tbl));
      ia
    end

let release ia =
  let s = state () in
  match Tbl.find_opt s.tbl ia with
  | None -> () (* overflow-era or cross-domain attrs: nothing resident *)
  | Some e ->
    e.rc <- e.rc - 1;
    if e.rc <= 0 then begin
      Tbl.remove s.tbl e.canon;
      s.free_ids <- e.id :: s.free_ids;
      Metrics.incr s.c_evictions;
      Metrics.set s.g_occupancy (float_of_int (Tbl.length s.tbl))
    end

let id_of ia =
  Option.map (fun e -> e.id) (Tbl.find_opt (state ()).tbl ia)

let refcount ia =
  Option.map (fun e -> e.rc) (Tbl.find_opt (state ()).tbl ia)
