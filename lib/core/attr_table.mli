(** Refcounted shared attribute-set table — the memory half of the
    compact route store.

    Attribute sets (everything in an IA except the prefix) repeat
    massively across a routing table; this table maps each distinct set
    to one canonical physical representative with a dense integer id,
    so a RIB entry storing a shared IA degenerates to the int pair
    (prefix pack, attribute-set id) — see {!Dbgp_types.Intern.prefix}
    and {!Dbgp_types.Intern.prefix_pack} for the prefix half.

    Refcounting governs only table membership (which sets are offered
    for future sharing), never memory safety: attribute lists are
    GC-managed, so an unbalanced release costs sharing efficiency, not
    correctness.  {!Speaker} owns the acquire/release discipline —
    Adj-RIB-In stores, local originations and Loc-RIB chosen entries
    acquire; their eviction releases.

    Domain-local, like the {!Dbgp_types.Intern} tables: each OCaml 5
    domain shares within itself, lock-free.  Counters
    ([attr_table.hits]/[.misses]/[.evictions]/[.overflow]) and the
    [attr_table.occupancy] gauge live in the calling domain's
    registry, {!metrics}. *)

val share : Ia.t -> Ia.t
(** Acquire one reference to the IA's attribute set and return the IA
    re-pointed at the canonical physical attribute fields (the IA
    itself when already canonical).  Inserts the set (with refcount 1
    and a fresh dense id) when absent; returns the IA unshared when the
    table is at {!max_size} (counted under [attr_table.overflow]). *)

val release : Ia.t -> unit
(** Drop one reference to the IA's attribute set.  At zero the entry
    leaves the table ([attr_table.evictions]) and its dense id returns
    to the free list.  A release of a set that is not resident is a
    no-op. *)

val id_of : Ia.t -> int option
(** The dense id of the IA's attribute set, if resident.  Ids are dense
    in [0, live-sets): freed ids are reused before fresh ones. *)

val refcount : Ia.t -> int option
(** Current reference count of the IA's attribute set (tests). *)

val occupancy : unit -> int
(** Resident attribute sets in the calling domain's table. *)

val max_size : int
(** Hard entry bound; beyond it {!share} degrades to identity. *)

val metrics : unit -> Dbgp_obs.Metrics.t
(** The calling domain's [attr_table.*] registry. *)

val reset : unit -> unit
(** Empty the table and zero its registry (tests). *)
