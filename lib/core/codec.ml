open Dbgp_types
module W = Dbgp_wire.Writer
module R = Dbgp_wire.Reader

let encode_island w = function
  | Island_id.Singleton a ->
    W.u8 w 0;
    W.asn w a
  | Island_id.Named s ->
    W.u8 w 1;
    W.delimited w s
  | Island_id.Hashed h ->
    W.u8 w 2;
    W.varint w (h land max_int)

let decode_island r =
  match R.u8 r with
  | 0 -> Island_id.Singleton (R.asn r)
  | 1 -> Island_id.Named (R.delimited r)
  | 2 -> Island_id.Hashed (R.varint r)
  | n -> raise (R.Error (Printf.sprintf "bad island-id tag %d" n))

let encode_elem w = function
  | Path_elem.As a ->
    W.u8 w 0;
    W.asn w a
  | Path_elem.Island i ->
    W.u8 w 1;
    encode_island w i
  | Path_elem.As_set s ->
    W.u8 w 2;
    W.list w W.asn s

let decode_elem r =
  match R.u8 r with
  | 0 -> Path_elem.As (R.asn r)
  | 1 -> Path_elem.Island (decode_island r)
  | 2 -> Path_elem.As_set (R.list ~min_width:4 r R.asn)
  | n -> raise (R.Error (Printf.sprintf "bad path-elem tag %d" n))

let encode_proto w p = W.delimited w (Protocol_id.name p)

let decode_proto r =
  let name = R.delimited r in
  (* Decoding re-registers: a speaker can carry (pass through) protocols
     it has never seen before; the registry grows as needed with the
     default Custom kind. *)
  match Protocol_id.find name with
  | Some p -> p
  | None -> Protocol_id.register name

(* Descriptors are individually length-framed (RFC 7606 style): a
   malformed body can be skipped without losing sync with the rest of
   the advertisement, which is what makes the Discard_attribute error
   class expressible at all.  [framed]/[unframed] add and strip that
   frame; a frame whose body does not consume it exactly is itself
   malformed. *)
let framed enc w x =
  let inner = W.create ~capacity:64 () in
  enc inner x;
  W.delimited w (W.contents inner)

let unframed name dec r =
  let sub = R.of_string (R.delimited r) in
  let v = dec sub in
  if not (R.at_end sub) then
    raise
      (R.Error
         (Printf.sprintf "%s: %d stray bytes inside frame" name
            (R.remaining sub)));
  v

let encode_pd_body w (d : Ia.path_descriptor) =
  W.list w encode_proto d.owners;
  W.delimited w d.field;
  Value.encode w d.value

(* Descriptor values repeat across advertisements (the same next-hop,
   cost, or island metadata fans out everywhere); interning them makes
   later structural comparisons pointer comparisons. *)
module Value_tbl = Intern.Make (struct
  type t = Value.t

  let equal a b = a == b || Value.equal a b
  let hash = Hashtbl.hash
end)

(* Domain-local: interning is a cache, not a source of truth — two
   domains interning the same value independently still produce
   structurally equal descriptors, so per-domain tables cost only hit
   rate, never correctness. *)
let values_key = Domain.DLS.new_key (fun () -> Value_tbl.create 256)
let intern_value v = Value_tbl.intern (Domain.DLS.get values_key) v
let value_intern_stats () = Value_tbl.stats (Domain.DLS.get values_key)

let decode_pd_body r : Ia.path_descriptor =
  let owners = R.list r decode_proto in
  if owners = [] then raise (R.Error "path descriptor: empty owner set");
  let field = Intern.string (R.delimited r) in
  let value = intern_value (Value.decode r) in
  { owners; field; value }

let encode_pd w d = framed encode_pd_body w d
let decode_pd r = unframed "path descriptor" decode_pd_body r

let encode_id_body w (d : Ia.island_descriptor) =
  encode_island w d.island;
  encode_proto w d.proto;
  W.delimited w d.ifield;
  Value.encode w d.ivalue

let decode_id_body r : Ia.island_descriptor =
  let island = decode_island r in
  let proto = decode_proto r in
  let ifield = Intern.string (R.delimited r) in
  let ivalue = intern_value (Value.decode r) in
  { island; proto; ifield; ivalue }

let encode_id w d = framed encode_id_body w d
let decode_id r = unframed "island descriptor" decode_id_body r

let encode_membership w (i, members) =
  encode_island w i;
  W.list w W.asn members

let decode_membership r =
  let i = decode_island r in
  let members = R.list ~min_width:4 r R.asn in
  (i, members)

let encode (ia : Ia.t) =
  let w = W.create ~capacity:512 () in
  W.prefix w ia.prefix;
  W.list w encode_elem ia.path_vector;
  W.list w encode_membership ia.membership;
  W.list w encode_pd ia.path_descriptors;
  W.list w encode_id ia.island_descriptors;
  W.contents w

(* Withdraw wire format: just the withdrawn prefix — a withdraw carries
   no attributes. *)
let encode_withdraw prefix =
  let w = W.create ~capacity:8 () in
  W.prefix w prefix;
  W.contents w

(* The RFC 7606 ladder for withdraws is short: if the prefix decodes the
   message is usable (trailing garbage is discarded and accounted), and
   an unreadable prefix is a framing failure of the whole message —
   Session_reset, like an unreadable announce prefix. *)
let decode_withdraw_robust s : (Prefix.t * Errors.t list, Errors.t) result =
  let r = R.of_string s in
  match Intern.prefix (R.prefix r) with
  | prefix ->
    if R.at_end r then Ok (prefix, [])
    else
      Ok
        ( prefix,
          [ Errors.make Errors.Discard_attribute Errors.Framing
              "trailing bytes after withdrawn prefix" ] )
  | exception R.Error m ->
    Error
      (Errors.make Errors.Session_reset Errors.Framing
         ("unreadable withdrawn prefix: " ^ m))
  | exception _ ->
    Error
      (Errors.make Errors.Session_reset Errors.Framing
         "unreadable withdrawn prefix")

(* ------------------------------------------------------------------ *)
(* Encode-once wire sharing.

   The export cache (Adj_rib_out) already fans one physically-shared
   outgoing IA to every member of a peer group, and the network layer
   sizes (= encodes) each Announce at least twice per delivery.  A
   direct-mapped identity cache therefore turns "encode per delivery"
   into "encode once per distinct outgoing IA": same physical IA, same
   immutable wire string.  Direct-mapped means bounded by construction
   — a slot collision just overwrites, costing one re-encode later,
   never correctness (the IA is immutable, the slot key is compared by
   pointer). *)

let enc_slots = 16384
let dec_slots = 1024

(* All mutable wire-layer state — the metrics registry, its four cached
   counters, the encode cache and the decode memo — lives in one
   domain-local record.  Caches are semantically transparent (a miss
   just re-encodes/re-decodes), so per-domain instances change hit
   rates, never results; per-domain registries are merged explicitly
   by the sharded runner via [Metrics.merge_into]. *)
type wire_state = {
  obs : Dbgp_obs.Metrics.t;
  c_enc_hits : Dbgp_obs.Metrics.counter;
  c_enc_misses : Dbgp_obs.Metrics.counter;
  c_dec_hits : Dbgp_obs.Metrics.counter;
  c_dec_misses : Dbgp_obs.Metrics.counter;
  enc_cache : (Ia.t * string) option array;
  dec_memo : (string * Ia.t) option array;
}

let wire_key =
  Domain.DLS.new_key (fun () ->
      let obs = Dbgp_obs.Metrics.create () in
      {
        obs;
        c_enc_hits = Dbgp_obs.Metrics.counter obs "wire.encode_cache.hits";
        c_enc_misses = Dbgp_obs.Metrics.counter obs "wire.encode_cache.misses";
        c_dec_hits = Dbgp_obs.Metrics.counter obs "wire.decode_memo.hits";
        c_dec_misses = Dbgp_obs.Metrics.counter obs "wire.decode_memo.misses";
        enc_cache = Array.make enc_slots None;
        dec_memo = Array.make dec_slots None;
      })

let wire_state () = Domain.DLS.get wire_key
let wire_metrics () = (wire_state ()).obs

let wire_metrics_reset () =
  let ws = wire_state () in
  Dbgp_obs.Metrics.reset ws.obs;
  Array.fill ws.enc_cache 0 enc_slots None;
  Array.fill ws.dec_memo 0 dec_slots None

let encode_cached ia =
  let ws = wire_state () in
  let slot = Hashtbl.hash_param 32 128 ia land (enc_slots - 1) in
  match Array.unsafe_get ws.enc_cache slot with
  | Some (ia', wire) when ia' == ia ->
    Dbgp_obs.Metrics.incr ws.c_enc_hits;
    wire
  | _ ->
    Dbgp_obs.Metrics.incr ws.c_enc_misses;
    let wire = encode ia in
    Array.unsafe_set ws.enc_cache slot (Some (ia, wire));
    wire

(* Minimum encoded sizes, used to bound hostile list counts before
   allocation: an element tag plus its smallest body (path elem: tag +
   island tag + empty name; membership: island + empty member list;
   framed descriptors: length byte + the smallest well-formed body). *)
let pd_min_width = 5
let id_min_width = 6

exception Fatal of Errors.t

(* Salvaging decode of the attribute body (everything after the prefix:
   path vector, membership, framed descriptors).  Shared between the
   single-prefix frame and the batched frame's attribute block.  The
   count and every descriptor frame must parse (losing them loses sync
   with the rest of the message, [Fatal Treat_as_withdraw]), but a
   malformed body inside an intact frame is discarded alone — pushed
   onto [discards] — and decoding continues. *)
let decode_attrs_salvage r discards =
  let guard stage f =
    try f ()
    with R.Error m ->
      raise (Fatal (Errors.make Errors.Treat_as_withdraw stage m))
  in
  let salvage stage ~min_width body =
    guard stage (fun () ->
        let n = R.varint r in
        if n > R.remaining r / min_width then
          raise
            (R.Error
               (Printf.sprintf "list: count %d exceeds buffer (%d bytes)" n
                  (R.remaining r)));
        List.filter_map Fun.id
          (List.init n (fun _ ->
               let blob = R.delimited r in
               match
                 let sub = R.of_string blob in
                 let v = body sub in
                 if R.at_end sub then v
                 else raise (R.Error "stray bytes inside frame")
               with
               | v -> Some v
               | exception R.Error m ->
                 discards :=
                   Errors.make Errors.Discard_attribute stage m :: !discards;
                 None)))
  in
  let path_vector =
    guard Errors.Path_vector (fun () ->
        Intern.path_vector (R.list ~min_width:2 r decode_elem))
  in
  let membership =
    guard Errors.Membership (fun () -> R.list ~min_width:3 r decode_membership)
  in
  let path_descriptors =
    salvage Errors.Path_descriptor ~min_width:pd_min_width decode_pd_body
  in
  let island_descriptors =
    salvage Errors.Island_descriptor ~min_width:id_min_width decode_id_body
  in
  (path_vector, membership, path_descriptors, island_descriptors)

let decode_robust_uncached s : (Ia.t * Errors.t list, Errors.t) result =
  let discards = ref [] in
  let r = R.of_string s in
  try
    let prefix =
      try Intern.prefix (R.prefix r)
      with R.Error m ->
        raise (Fatal (Errors.make Errors.Session_reset Errors.Framing m))
    in
    let path_vector, membership, path_descriptors, island_descriptors =
      decode_attrs_salvage r discards
    in
    if not (R.at_end r) then
      raise
        (Fatal
           (Errors.make Errors.Treat_as_withdraw Errors.Framing
              (Printf.sprintf "%d trailing bytes after advertisement"
                 (R.remaining r))));
    Ok
      ( { Ia.prefix; path_vector; membership; path_descriptors;
          island_descriptors },
        List.rev !discards )
  with Fatal e -> Error e

(* Bounded decode memo: byte-identical deliveries (MRAI
   re-advertisements, refresh waves, fault-model duplicates, peer-group
   fan-out over a wire transport) decode once.  Direct-mapped on the
   wire string's hash, so growth is bounded by construction — hostile
   or fuzzed input can only churn slots, never expand the table — and
   an overwrite ("eviction") costs one re-decode.  Only clean decodes
   (no discarded descriptors) are memoized so the error counters and
   rx traces replay identically on every malformed delivery. *)

let dec_memo_max_wire = 4096
let decode_memo_capacity = dec_slots

let decode_robust s : (Ia.t * Errors.t list, Errors.t) result =
  let ws = wire_state () in
  if String.length s > dec_memo_max_wire then begin
    Dbgp_obs.Metrics.incr ws.c_dec_misses;
    decode_robust_uncached s
  end
  else begin
    let slot = Hashtbl.hash s land (dec_slots - 1) in
    match Array.unsafe_get ws.dec_memo slot with
    | Some (s', ia) when String.equal s' s ->
      Dbgp_obs.Metrics.incr ws.c_dec_hits;
      Ok (ia, [])
    | _ ->
      Dbgp_obs.Metrics.incr ws.c_dec_misses;
      let result = decode_robust_uncached s in
      ( match result with
        | Ok (ia, []) -> Array.unsafe_set ws.dec_memo slot (Some (s, ia))
        | Ok (_, _ :: _) | Error _ -> () );
      result
  end

let decode_memo_reset () = Array.fill (wire_state ()).dec_memo 0 dec_slots None

let decode_memo_residency () =
  Array.fold_left
    (fun n e -> if e = None then n else n + 1)
    0 (wire_state ()).dec_memo

let decode s : Ia.t =
  let r = R.of_string s in
  let prefix = Intern.prefix (R.prefix r) in
  let path_vector = Intern.path_vector (R.list ~min_width:2 r decode_elem) in
  let membership = R.list ~min_width:3 r decode_membership in
  let path_descriptors = R.list ~min_width:pd_min_width r decode_pd in
  let island_descriptors = R.list ~min_width:id_min_width r decode_id in
  if not (R.at_end r) then
    raise
      (R.Error
         (Printf.sprintf "%d trailing bytes after advertisement"
            (R.remaining r)));
  { prefix; path_vector; membership; path_descriptors; island_descriptors }

let size ia = String.length (encode_cached ia)
let encode_compressed ia = Dbgp_wire.Compress.compress (encode ia)
let decode_compressed s = decode (Dbgp_wire.Compress.decompress s)
let compressed_size ia = String.length (encode_compressed ia)

(* ------------------------------------------------------------------ *)
(* Batched frames: many NLRI prefixes sharing one attribute block, as
   real BGP packs an UPDATE.

   Announce layout:   varint count
                      count × delimited(NLRI entry = BGP-style prefix)
                      delimited(attribute block = path vector,
                                membership, framed descriptors)
   Withdraw layout:   varint count
                      count × delimited(prefix)

   Salvage ladder (RFC 7606 transposed to the batch):
   - the count or an entry's outer frame unreadable → the decoder has
     lost sync with the whole message → [Session_reset];
   - a malformed prefix inside an intact NLRI frame → that entry alone
     is discarded, the rest of the batch survives;
   - the attribute block unreadable or malformed past salvage (or
     trailing bytes) → every salvaged prefix is treated as withdrawn
     ([Batch_withdraw]): the routes cannot be trusted but reachability
     state must not be, either. *)

(* Outer frame (1-byte varint length for any real prefix) + prefix
   length byte: the smallest well-formed NLRI entry is 2 bytes. *)
let nlri_min_width = 2

let encode_prefix_entries w prefixes =
  let scratch = W.create ~capacity:8 () in
  List.iter
    (fun p ->
      W.reset scratch;
      W.prefix scratch p;
      W.delimited w (W.contents scratch))
    prefixes

(* Per-entry salvage: outer frames already read, so a bad prefix body
   inside one costs that entry alone. *)
let salvage_prefix_entries blobs discards =
  List.filter_map
    (fun blob ->
      match
        let sub = R.of_string blob in
        let p = R.prefix sub in
        if R.at_end sub then Intern.prefix p
        else raise (R.Error "stray bytes inside NLRI entry")
      with
      | p -> Some p
      | exception R.Error m ->
        discards :=
          Errors.make Errors.Discard_attribute Errors.Framing
            ("NLRI entry: " ^ m)
          :: !discards;
        None)
    blobs

let read_entry_frames what r =
  let n = R.varint r in
  if n = 0 then raise (R.Error (what ^ ": empty prefix list"));
  if n > R.remaining r / nlri_min_width then
    raise
      (R.Error
         (Printf.sprintf "%s: count %d exceeds buffer (%d bytes)" what n
            (R.remaining r)));
  List.init n (fun _ -> R.delimited r)

let encode_batch ias =
  match ias with
  | [] -> invalid_arg "Codec.encode_batch: empty batch"
  | (head : Ia.t) :: _ ->
    let w = W.create ~capacity:(512 + (8 * List.length ias)) () in
    W.varint w (List.length ias);
    encode_prefix_entries w (List.map (fun (ia : Ia.t) -> ia.Ia.prefix) ias);
    let attrs = W.create ~capacity:512 () in
    W.list attrs encode_elem head.path_vector;
    W.list attrs encode_membership head.membership;
    W.list attrs encode_pd head.path_descriptors;
    W.list attrs encode_id head.island_descriptors;
    W.delimited w (W.contents attrs);
    W.contents w

type batch =
  | Batch_routes of Ia.t list * Errors.t list
  | Batch_withdraw of Prefix.t list * Errors.t

let decode_batch_robust s : (batch, Errors.t) result =
  let r = R.of_string s in
  match read_entry_frames "batch NLRI" r with
  | exception R.Error m ->
    Error (Errors.make Errors.Session_reset Errors.Framing m)
  | blobs -> (
    let discards = ref [] in
    let prefixes = salvage_prefix_entries blobs discards in
    let withdraw_all e = Ok (Batch_withdraw (prefixes, e)) in
    match R.delimited r with
    | exception R.Error m ->
      withdraw_all
        (Errors.make Errors.Treat_as_withdraw Errors.Framing
           ("batch attribute block: " ^ m))
    | attr_blob ->
      if not (R.at_end r) then
        withdraw_all
          (Errors.make Errors.Treat_as_withdraw Errors.Framing
             (Printf.sprintf "%d trailing bytes after batch attribute block"
                (R.remaining r)))
      else begin
        let sub = R.of_string attr_blob in
        match decode_attrs_salvage sub discards with
        | exception Fatal e -> withdraw_all e
        | path_vector, membership, path_descriptors, island_descriptors ->
          if not (R.at_end sub) then
            withdraw_all
              (Errors.make Errors.Treat_as_withdraw Errors.Framing
                 (Printf.sprintf "%d stray bytes inside attribute block"
                    (R.remaining sub)))
          else
            (* One decoded attribute set fans out to every salvaged
               prefix — the IAs in a batch share their attribute fields
               physically by construction. *)
            let ias =
              List.map
                (fun prefix ->
                  { Ia.prefix; path_vector; membership; path_descriptors;
                    island_descriptors })
                prefixes
            in
            Ok (Batch_routes (ias, List.rev !discards))
      end)

let encode_withdraw_batch prefixes =
  if prefixes = [] then invalid_arg "Codec.encode_withdraw_batch: empty batch";
  let w = W.create ~capacity:(8 + (8 * List.length prefixes)) () in
  W.varint w (List.length prefixes);
  encode_prefix_entries w prefixes;
  W.contents w

let decode_withdraw_batch_robust s :
    (Prefix.t list * Errors.t list, Errors.t) result =
  let r = R.of_string s in
  match read_entry_frames "withdraw batch" r with
  | exception R.Error m ->
    Error (Errors.make Errors.Session_reset Errors.Framing m)
  | blobs ->
    let discards = ref [] in
    let prefixes = salvage_prefix_entries blobs discards in
    (* Like the single-prefix withdraw: trailing garbage after an
       otherwise-usable message is noted and dropped, not fatal. *)
    if not (R.at_end r) then
      discards :=
        Errors.make Errors.Discard_attribute Errors.Framing
          (Printf.sprintf "%d trailing bytes after withdraw batch"
             (R.remaining r))
        :: !discards;
    Ok (prefixes, List.rev !discards)

type breakdown = {
  base : int;
  critical_fix : int;
  custom_replacement : int;
  shared_savings : int;
}

let sized f x =
  let w = W.create () in
  f w x;
  W.length w

let breakdown (ia : Ia.t) =
  let base =
    size { ia with path_descriptors = []; island_descriptors = [] }
  in
  let is_fix p =
    match Protocol_id.kind p with
    | Protocol_id.Critical_fix | Protocol_id.Baseline -> true
    | Protocol_id.Custom | Protocol_id.Replacement -> false
  in
  let critical_fix, custom_pd =
    List.fold_left
      (fun (cf, cr) (d : Ia.path_descriptor) ->
        let sz = sized encode_pd d in
        if List.exists is_fix d.owners then (cf + sz, cr) else (cf, cr + sz))
      (0, 0) ia.path_descriptors
  in
  let custom_replacement =
    List.fold_left
      (fun acc d -> acc + sized encode_id d)
      custom_pd ia.island_descriptors
  in
  let shared_savings =
    List.fold_left
      (fun acc (d : Ia.path_descriptor) ->
        let n = List.length d.owners in
        if n > 1 then acc + ((n - 1) * sized encode_pd { d with owners = [ List.hd d.owners ] })
        else acc)
      0 ia.path_descriptors
  in
  { base; critical_fix; custom_replacement; shared_savings }
