(** Wire codec for integrated advertisements.

    Replaces Beagle's protocol-buffer serialization.  The encoding is
    sharing-aware: a path descriptor owned by several protocols is
    written once with its owner list, which is what makes many critical
    fixes nearly free to carry (the "+ Sharing" row of Table 3). *)

val encode : Ia.t -> string
(** Path and island descriptors are individually length-framed, so a
    decoder can skip a malformed descriptor without losing sync with the
    rest of the advertisement (the RFC 7606 [Discard_attribute] path). *)

val decode : string -> Ia.t
(** Strict decode: any malformation — including a malformed descriptor
    body or trailing bytes — raises.
    @raise Dbgp_wire.Reader.Error on malformed input. *)

val decode_robust : string -> (Ia.t * Errors.t list, Errors.t) result
(** RFC 7606-style salvaging decode.  [Ok (ia, discarded)] when the
    route survives: [discarded] lists the individually-framed
    descriptors that were malformed and dropped ([Discard_attribute]
    errors, possibly none).  [Error e] when it does not: [e.cls] is
    [Treat_as_withdraw] when the prefix decoded but the structure around
    it (path vector, membership, list framing, trailing bytes) did not,
    and [Session_reset] when even the prefix is unrecoverable.  Never
    raises.

    Byte-identical wires that previously decoded cleanly are answered
    from a bounded decode memo (see [wire.decode_memo.*] in
    {!wire_metrics}); malformed or salvaged wires are never memoized, so
    error accounting replays on every delivery. *)

val size : Ia.t -> int
(** Exact encoded size in bytes (served from the encode cache). *)

val encode_withdraw : Dbgp_types.Prefix.t -> string
(** Wire format of a Withdraw message: just the withdrawn prefix. *)

val decode_withdraw_robust :
  string -> (Dbgp_types.Prefix.t * Errors.t list, Errors.t) result
(** RFC 7606-style decode for withdraw wires.  [Ok (prefix, discarded)]
    when the prefix decodes ([discarded] notes trailing garbage as a
    [Discard_attribute]); [Error e] with [e.cls = Session_reset] when the
    prefix itself is unreadable.  Never raises. *)

(** {1 Batched frames}

    Many NLRI prefixes sharing one attribute block, as real BGP packs an
    UPDATE: [varint count; count × delimited NLRI entry; delimited
    attribute block] for announces, [varint count; count × delimited
    prefix] for withdraws.  Single-prefix frames remain first-class and
    byte-identical — batching is a delivery-layer choice, not a codec
    migration. *)

val encode_batch : Ia.t list -> string
(** One frame for the whole batch.  The attribute block is taken from
    the head; callers must only batch IAs related by {!Ia.same_attrs}
    (the network layer's bucketing guarantees this).
    @raise Invalid_argument on an empty batch. *)

(** Decoded batch, after salvage. *)
type batch =
  | Batch_routes of Ia.t list * Errors.t list
      (** The surviving routes — every IA physically shares one decoded
          attribute set — plus per-entry/per-descriptor
          [Discard_attribute] errors.  An NLRI entry whose prefix is
          malformed inside an intact outer frame is discarded alone. *)
  | Batch_withdraw of Dbgp_types.Prefix.t list * Errors.t
      (** The attribute block was unreadable (or trailing bytes
          followed it): RFC 7606 treat-as-withdraw applied to every
          salvaged prefix of the batch. *)

val decode_batch_robust : string -> (batch, Errors.t) result
(** Salvaging decode of a batched announce frame.  [Error e] (with
    [e.cls = Session_reset]) only when the NLRI count or an entry's
    outer frame is unreadable — the decoder has lost sync with the
    message.  Never raises. *)

val encode_withdraw_batch : Dbgp_types.Prefix.t list -> string
(** @raise Invalid_argument on an empty batch. *)

val decode_withdraw_batch_robust :
  string -> (Dbgp_types.Prefix.t list * Errors.t list, Errors.t) result
(** Salvaging decode of a batched withdraw frame: malformed entries are
    discarded alone ([Discard_attribute] in the error list), framing
    loss is [Error] with [Session_reset].  Never raises. *)

(** {1 Encode-once wire sharing}

    One distinct (physical) IA encodes once; every fan-out delivery
    shares the same immutable wire string.  Both caches are
    direct-mapped and bounded by construction: a slot collision
    overwrites and merely costs a later re-encode/re-decode. *)

val encode_cached : Ia.t -> string
(** Same bytes as {!encode}; served from an identity-keyed cache.  The
    export cache hands every peer-group member the same physical
    outgoing IA, so this is effectively one encode per (IA, peer
    group). *)

val wire_metrics : unit -> Dbgp_obs.Metrics.t
(** The calling domain's wire registry, holding
    [wire.encode_cache.hits]/[.misses] and
    [wire.decode_memo.hits]/[.misses].  Domain-local: each simulation
    domain accumulates into its own registry; a sharded run folds them
    together with {!Dbgp_obs.Metrics.merge_into}. *)

val wire_metrics_reset : unit -> unit
(** Zero the calling domain's wire registry and drop its encode cache
    and decode memo.  Test suites sharing the process-lifetime wire
    state call this in their setup so counts from earlier suites cannot
    bleed into their assertions. *)

val value_intern_stats : unit -> Dbgp_types.Intern.stats
(** Interning statistics for decoded descriptor values (calling
    domain's table). *)

val decode_memo_capacity : int
(** Hard slot bound of the decode memo — residency can never exceed
    this regardless of input. *)

val decode_memo_residency : unit -> int
(** Occupied decode-memo slots (tests: bounded under fuzz input). *)

val decode_memo_reset : unit -> unit
(** Drop all memoized decodes (tests). *)

val encode_compressed : Ia.t -> string
(** LZSS-compressed encoding (Section 3.2: "IAs can be compressed to
    further reduce their size").  Worth it for IAs with repetitive
    descriptors; {!compressed_size} reports the effect. *)

val decode_compressed : string -> Ia.t
(** @raise Invalid_argument or @raise Dbgp_wire.Reader.Error on
    malformed input. *)

val compressed_size : Ia.t -> int

(** Byte-level attribution of an IA's encoded size, for the control-plane
    overhead analysis (Section 6.2). *)
type breakdown = {
  base : int;               (** prefix + path vector + membership *)
  critical_fix : int;       (** path descriptors owned by critical fixes *)
  custom_replacement : int; (** island descriptors + custom/replacement info *)
  shared_savings : int;     (** bytes saved versus duplicating each shared
                                descriptor per owner *)
}

val breakdown : Ia.t -> breakdown
