open Dbgp_types

type candidate = { from_peer : Peer.t option; ia : Ia.t }

type t = {
  protocol : Protocol_id.t;
  import_filter : Filters.t;
  export_filter : Filters.t;
  select : prefix:Prefix.t -> candidate list -> candidate option;
  contribute : me:Asn.t -> Ia.t -> Ia.t;
}

let candidate_path_length c = Ia.path_length c.ia

let compare_tiebreak a b =
  match (a.from_peer, b.from_peer) with
  | None, None -> 0
  | None, Some _ -> 1 (* local origination wins *)
  | Some _, None -> -1
  | Some p, Some q -> Peer.compare q p (* lower peer preferred *)

let best_by cmp cands =
  match cands with
  | [] -> None
  | c :: rest ->
    Some (List.fold_left (fun acc x -> if cmp x acc > 0 then x else acc) c rest)

(* [origin_of] walks the IA's path descriptors, and [select] evaluates
   it O(candidates) times per run on path-length ties — the common case
   in a mesh of equal-length routes.  IAs are hash-consed, so a small
   direct-mapped identity memo turns the repeat walks into one array
   probe. *)
let origin_slots = 512
let origin_memo : (Ia.t * int) option array = Array.make origin_slots None

let origin_of_ia ia =
  let slot = Hashtbl.hash ia land (origin_slots - 1) in
  match Array.unsafe_get origin_memo slot with
  | Some (ia', o) when ia' == ia -> o
  | _ ->
    let o =
      match
        Ia.find_path_descriptor ~proto:Protocol_id.bgp ~field:Ia.field_origin ia
      with
      | Some v -> Option.value (Value.as_int v) ~default:2
      | None -> 2
    in
    Array.unsafe_set origin_memo slot (Some (ia, o));
    o

let bgp () =
  let origin_of c = origin_of_ia c.ia in
  let compare_bgp a b =
    match Int.compare (candidate_path_length b) (candidate_path_length a) with
    | 0 -> (
      match Int.compare (origin_of b) (origin_of a) with
      | 0 -> compare_tiebreak a b
      | c -> c )
    | c -> c
  in
  { protocol = Protocol_id.bgp;
    import_filter = Filters.accept;
    export_filter = Filters.accept;
    select = (fun ~prefix:_ cands -> best_by compare_bgp cands);
    contribute = (fun ~me:_ ia -> ia) }
