type cls =
  | Discard_attribute
  | Treat_as_withdraw
  | Session_reset

let cls_name = function
  | Discard_attribute -> "discard_attribute"
  | Treat_as_withdraw -> "treat_as_withdraw"
  | Session_reset -> "session_reset"

let counter_name c = "errors." ^ cls_name c

type stage =
  | Framing
  | Path_vector
  | Membership
  | Path_descriptor
  | Island_descriptor
  | Semantic
  | Pipeline

let stage_name = function
  | Framing -> "framing"
  | Path_vector -> "path-vector"
  | Membership -> "membership"
  | Path_descriptor -> "path-descriptor"
  | Island_descriptor -> "island-descriptor"
  | Semantic -> "semantic"
  | Pipeline -> "pipeline"

type t = { cls : cls; stage : stage; reason : string }

let make cls stage reason = { cls; stage; reason }

let pp ppf t =
  Format.fprintf ppf "%s at %s: %s" (cls_name t.cls) (stage_name t.stage)
    t.reason

let all_classes = [ Discard_attribute; Treat_as_withdraw; Session_reset ]
