(** RFC 7606-style error handling for integrated advertisements.

    Pass-through widens the accident surface: a speaker carries bytes for
    protocols it does not understand, so a single corrupted advertisement
    would — under all-or-nothing decoding — either crash the pipeline or
    propagate island-wide.  Following RFC 7606 ("Revised Error Handling
    for BGP UPDATE Messages"), every decode or semantic failure is
    classified by the least destructive action that is still safe:

    - {!Discard_attribute}: one path or island descriptor is malformed
      but individually framed, so it can be dropped while the route (and
      every other descriptor) survives;
    - {!Treat_as_withdraw}: the route's identity (prefix) decoded but
      something structural — path vector, membership, framing of a
      descriptor list, a missing mandatory attribute — did not, so the
      only safe interpretation is that the peer no longer has this route;
    - {!Session_reset}: the damage reaches the message framing itself
      (the prefix cannot even be recovered); in classic BGP this tears
      the session down, here the speaker records the verdict and drops
      the bytes. *)

type cls =
  | Discard_attribute
  | Treat_as_withdraw
  | Session_reset

val cls_name : cls -> string
(** ["discard_attribute"], ["treat_as_withdraw"], ["session_reset"] —
    stable labels used in metric names and trace events. *)

val counter_name : cls -> string
(** The per-speaker counter charged for the class:
    ["errors." ^ cls_name]. *)

(** Where in the advertisement the failure was detected. *)
type stage =
  | Framing             (** prefix / top-level structure unrecoverable *)
  | Path_vector
  | Membership
  | Path_descriptor
  | Island_descriptor
  | Semantic            (** decoded fine but violates an IA invariant *)
  | Pipeline            (** an exception escaped the processing pipeline *)

val stage_name : stage -> string

type t = {
  cls : cls;
  stage : stage;
  reason : string;  (** human-readable detail, e.g. the codec message *)
}

val make : cls -> stage -> string -> t
val pp : Format.formatter -> t -> unit

val all_classes : cls list
(** Every class, in severity order — for exhaustive metric registration
    and outcome histograms. *)
