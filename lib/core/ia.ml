open Dbgp_types

type path_descriptor = {
  owners : Protocol_id.t list;
  field : string;
  value : Value.t;
}

type island_descriptor = {
  island : Island_id.t;
  proto : Protocol_id.t;
  ifield : string;
  ivalue : Value.t;
}

type t = {
  prefix : Prefix.t;
  path_vector : Path_elem.t list;
  membership : (Island_id.t * Asn.t list) list;
  path_descriptors : path_descriptor list;
  island_descriptors : island_descriptor list;
}

let field_next_hop = "next-hop"
let field_origin = "origin"
let field_med = "med"

let canon_owners owners =
  match List.sort_uniq Protocol_id.compare owners with
  | [] -> invalid_arg "Ia: descriptor must have at least one owner"
  | l -> l

let set_path_descriptor ~owners ~field value t =
  (* Invariant: at most one descriptor per (protocol, field) pair — the
     key [find_path_descriptor] resolves.  Owners being re-pointed at the
     new value leave their old descriptor; owners not mentioned keep the
     old value under a narrowed owner set. *)
  let owners = canon_owners owners in
  let updated = Protocol_id.Set.of_list owners in
  let rest =
    List.filter_map
      (fun d ->
        if d.field <> field then Some d
        else
          match
            List.filter (fun p -> not (Protocol_id.Set.mem p updated)) d.owners
          with
          | [] -> None
          | remaining -> Some { d with owners = remaining })
      t.path_descriptors
  in
  { t with path_descriptors = rest @ [ { owners; field; value } ] }

let find_path_descriptor ~proto ~field t =
  List.find_map
    (fun d ->
      if d.field = field && List.exists (Protocol_id.equal proto) d.owners then
        Some d.value
      else None)
    t.path_descriptors

let originate ~prefix ~origin_asn ~next_hop () =
  let base =
    { prefix;
      path_vector = [ Path_elem.As origin_asn ];
      membership = [];
      path_descriptors = [];
      island_descriptors = [] }
  in
  base
  |> set_path_descriptor ~owners:[ Protocol_id.bgp ] ~field:field_next_hop
       (Value.Addr next_hop)
  |> set_path_descriptor ~owners:[ Protocol_id.bgp ] ~field:field_origin
       (Value.Int 0)

let prepend_as a t = { t with path_vector = Path_elem.As a :: t.path_vector }

let prepend_island i t =
  { t with path_vector = Path_elem.Island i :: t.path_vector }

let has_loop t = Intern.has_loop t.path_vector
let path_length t = Path_elem.path_length t.path_vector

let asns_on_path t =
  List.concat_map
    (function
      | Path_elem.As a -> [ a ]
      | Path_elem.As_set s -> s
      | Path_elem.Island _ -> [])
    t.path_vector

let islands_on_path t =
  let from_pv =
    List.filter_map
      (function Path_elem.Island i -> Some i | _ -> None)
      t.path_vector
  in
  let declared = List.map fst t.membership in
  let seen = Hashtbl.create 8 in
  List.filter
    (fun i ->
      if Hashtbl.mem seen i then false
      else begin
        Hashtbl.add seen i ();
        true
      end)
    (from_pv @ declared)

let abstract_island ~island ~members t =
  let is_member = function
    | Path_elem.As a -> List.exists (Asn.equal a) members
    | Path_elem.As_set _ | Path_elem.Island _ -> false
  in
  let rec strip = function
    | e :: rest when is_member e -> strip rest
    | pv -> pv
  in
  let stripped = strip t.path_vector in
  if stripped == t.path_vector then t
  else { t with path_vector = Path_elem.Island island :: stripped }

let declare_membership ~island ~members t =
  let others = List.filter (fun (i, _) -> not (Island_id.equal i island)) t.membership in
  { t with membership = (island, members) :: others }

let island_of_asn t a =
  List.find_map
    (fun (i, members) ->
      if List.exists (Asn.equal a) members then Some i else None)
    t.membership

let remove_protocol proto t =
  let path_descriptors =
    List.filter_map
      (fun d ->
        match List.filter (fun p -> not (Protocol_id.equal p proto)) d.owners with
        | [] -> None
        | owners -> Some { d with owners })
      t.path_descriptors
  in
  let island_descriptors =
    List.filter (fun d -> not (Protocol_id.equal d.proto proto)) t.island_descriptors
  in
  { t with path_descriptors; island_descriptors }

let add_island_descriptor ~island ~proto ~field value t =
  let same d =
    Island_id.equal d.island island
    && Protocol_id.equal d.proto proto
    && d.ifield = field
  in
  let rest = List.filter (fun d -> not (same d)) t.island_descriptors in
  { t with
    island_descriptors =
      rest @ [ { island; proto; ifield = field; ivalue = value } ] }

let find_island_descriptors ~proto t =
  List.filter (fun d -> Protocol_id.equal d.proto proto) t.island_descriptors

let find_island_descriptor ~island ~proto ~field t =
  List.find_map
    (fun d ->
      if
        Island_id.equal d.island island
        && Protocol_id.equal d.proto proto
        && d.ifield = field
      then Some d.ivalue
      else None)
    t.island_descriptors

let protocols t =
  let s =
    List.fold_left
      (fun acc d ->
        List.fold_left (fun acc p -> Protocol_id.Set.add p acc) acc d.owners)
      Protocol_id.Set.empty t.path_descriptors
  in
  List.fold_left
    (fun acc d -> Protocol_id.Set.add d.proto acc)
    s t.island_descriptors

let next_hop t =
  Option.bind
    (find_path_descriptor ~proto:Protocol_id.bgp ~field:field_next_hop t)
    Value.as_addr

let with_next_hop nh t =
  (* Preserve the owner set of the existing next-hop descriptor so shared
     ownership survives a hop-by-hop rewrite. *)
  let owners =
    match
      List.find_opt (fun d -> d.field = field_next_hop) t.path_descriptors
    with
    | Some d -> d.owners
    | None -> [ Protocol_id.bgp ]
  in
  set_path_descriptor ~owners ~field:field_next_hop (Value.Addr nh) t

let equal a b = a == b || a = b

(* Attribute equality ignoring the prefix: the batching layer buckets
   routes whose attribute sets coincide.  Per-field pointer checks come
   first — interning and the export cache make physical sharing the
   common case — with a structural fallback per field so equal-but-
   unshared attributes still bucket together. *)
let same_attrs a b =
  a == b
  || ((a.path_vector == b.path_vector || a.path_vector = b.path_vector)
     && (a.membership == b.membership || a.membership = b.membership)
     && (a.path_descriptors == b.path_descriptors
        || a.path_descriptors = b.path_descriptors)
     && (a.island_descriptors == b.island_descriptors
        || a.island_descriptors = b.island_descriptors))

let with_prefix prefix t =
  if Prefix.equal prefix t.prefix then t else { t with prefix }

let pp_owner_list ppf owners =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
    Protocol_id.pp ppf owners

let pp ppf t =
  Format.fprintf ppf "@[<v2>IA %a@,pv: %a@," Prefix.pp t.prefix
    Path_elem.pp_path t.path_vector;
  if t.membership <> [] then begin
    Format.fprintf ppf "islands:@,";
    List.iter
      (fun (i, members) ->
        Format.fprintf ppf "  %a = {%a}@," Island_id.pp i
          (Format.pp_print_list
             ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
             Asn.pp)
          members)
      t.membership
  end;
  if t.path_descriptors <> [] then begin
    Format.fprintf ppf "path descriptors:@,";
    List.iter
      (fun d ->
        Format.fprintf ppf "  [%a] %s = %a@," pp_owner_list d.owners d.field
          Value.pp d.value)
      t.path_descriptors
  end;
  if t.island_descriptors <> [] then begin
    Format.fprintf ppf "island descriptors:@,";
    List.iter
      (fun d ->
        Format.fprintf ppf "  %a/%a %s = %a@," Island_id.pp d.island
          Protocol_id.pp d.proto d.ifield Value.pp d.ivalue)
      t.island_descriptors
  end;
  Format.fprintf ppf "@]"
