(** Integrated advertisements (Section 3.2, Figure 4).

    An IA extends a BGP advertisement into a shared container carrying
    multiple inter-domain routing protocols' control information for one
    path to one destination prefix:

    - the {b path vector} — AS numbers, island IDs, or AS_SETs — the
      common loop-avoidance denominator for every protocol on the path;
    - {b island membership} — which contiguous path-vector entries belong
      to which island, needed to layer multi-network-protocol headers;
    - {b path descriptors} — per-protocol attributes of the whole path
      (Wiser's cost, BGPSec's attestations, BGP's origin/next hop).  A
      descriptor names the set of protocols that {e share} it, which is
      how critical fixes share control information with BGP and each
      other to keep IAs small (Section 3.2, "Limiting IA sizes");
    - {b island descriptors} — attributes of individual islands on the
      path (a SCION island's within-island paths, a MIRO island's service
      portal, a Wiser island's cost-exchange portal). *)

type path_descriptor = {
  owners : Dbgp_types.Protocol_id.t list;
  (** The protocols sharing this field; never empty, sorted, unique. *)
  field : string;
  value : Value.t;
}

type island_descriptor = {
  island : Dbgp_types.Island_id.t;
  proto : Dbgp_types.Protocol_id.t;
  ifield : string;
  ivalue : Value.t;
}

type t = {
  prefix : Dbgp_types.Prefix.t;            (** baseline-format destination *)
  path_vector : Dbgp_types.Path_elem.t list;  (** this AS last prepended first *)
  membership : (Dbgp_types.Island_id.t * Dbgp_types.Asn.t list) list;
  (** Islands that list member ASes in the path vector declare which ASes
      are theirs; islands listed by ID need no entry. *)
  path_descriptors : path_descriptor list;
  island_descriptors : island_descriptor list;
}

(** {1 Well-known shared fields}

    BGP's own control information rides in path descriptors so that the
    sharing machinery is uniform. *)

val field_next_hop : string
val field_origin : string
val field_med : string

val originate :
  prefix:Dbgp_types.Prefix.t ->
  origin_asn:Dbgp_types.Asn.t ->
  next_hop:Dbgp_types.Ipv4.t ->
  unit ->
  t
(** A fresh IA as created by the destination AS: path vector [[origin]],
    BGP next-hop/origin descriptors, nothing else. *)

(** {1 Path vector} *)

val prepend_as : Dbgp_types.Asn.t -> t -> t
val prepend_island : Dbgp_types.Island_id.t -> t -> t
val has_loop : t -> bool
val path_length : t -> int

val asns_on_path : t -> Dbgp_types.Asn.t list
val islands_on_path : t -> Dbgp_types.Island_id.t list
(** Islands appearing either as path-vector entries or in membership
    declarations, in path order. *)

val abstract_island :
  island:Dbgp_types.Island_id.t -> members:Dbgp_types.Asn.t list -> t -> t
(** The egress-filter operation for islands that hide their interior:
    replaces the leading run of member ASes in the path vector with the
    single island ID (Section 3.3, global export filters). *)

val declare_membership :
  island:Dbgp_types.Island_id.t -> members:Dbgp_types.Asn.t list -> t -> t
(** The alternative egress operation: keep member ASes listed but record
    which island they belong to. *)

val island_of_asn : t -> Dbgp_types.Asn.t -> Dbgp_types.Island_id.t option

(** {1 Descriptors} *)

val set_path_descriptor :
  owners:Dbgp_types.Protocol_id.t list -> field:string -> Value.t -> t -> t
(** Adds or replaces, maintaining the invariant that each (protocol,
    field) pair resolves to at most one descriptor: the named owners are
    re-pointed at the new value; any other protocol sharing an old
    same-field descriptor keeps the old value under a narrowed owner
    set. *)

val find_path_descriptor :
  proto:Dbgp_types.Protocol_id.t -> field:string -> t -> Value.t option

val remove_protocol : Dbgp_types.Protocol_id.t -> t -> t
(** Removes the protocol from every descriptor it owns; descriptors left
    ownerless disappear, island descriptors of that protocol disappear.
    Used by gulf operators filtering problematic protocols and by the
    no-pass-through (plain BGP) baseline. *)

val add_island_descriptor :
  island:Dbgp_types.Island_id.t ->
  proto:Dbgp_types.Protocol_id.t ->
  field:string ->
  Value.t ->
  t ->
  t

val find_island_descriptors :
  proto:Dbgp_types.Protocol_id.t -> t -> island_descriptor list

val find_island_descriptor :
  island:Dbgp_types.Island_id.t ->
  proto:Dbgp_types.Protocol_id.t ->
  field:string ->
  t ->
  Value.t option

val protocols : t -> Dbgp_types.Protocol_id.Set.t
(** Every protocol with control information in this IA (G-R4: informing
    islands and gulf ASes what protocols are used on the path). *)

(** {1 BGP shared-field helpers} *)

val next_hop : t -> Dbgp_types.Ipv4.t option
val with_next_hop : Dbgp_types.Ipv4.t -> t -> t

val equal : t -> t -> bool

val same_attrs : t -> t -> bool
(** Equality of everything {e except} the prefix — path vector,
    membership, descriptors.  Physical per-field fast paths first (the
    export cache and attribute table make sharing the common case),
    structural fallback second.  This is the bucketing relation for
    multi-prefix batched updates: routes with [same_attrs] can share one
    wire attribute block. *)

val with_prefix : Dbgp_types.Prefix.t -> t -> t
(** [t] re-pointed at [prefix]; the attribute fields are physically
    shared with [t] (and [t] itself is returned when the prefix already
    matches).  The decode side of batched frames fans one decoded
    attribute block out to every NLRI entry with this. *)

val pp : Format.formatter -> t -> unit
