open Dbgp_types

type t = { mutable db : Ia.t Peer.Map.t Prefix.Map.t }

let create () = { db = Prefix.Map.empty }

let store t ~peer (ia : Ia.t) =
  let m = Option.value (Prefix.Map.find_opt ia.prefix t.db) ~default:Peer.Map.empty in
  t.db <- Prefix.Map.add ia.prefix (Peer.Map.add peer ia m) t.db

let remove t ~peer prefix =
  match Prefix.Map.find_opt prefix t.db with
  | None -> ()
  | Some m ->
    let m = Peer.Map.remove peer m in
    t.db <-
      ( if Peer.Map.is_empty m then Prefix.Map.remove prefix t.db
        else Prefix.Map.add prefix m t.db )

let find t ~peer prefix =
  Option.bind (Prefix.Map.find_opt prefix t.db) (Peer.Map.find_opt peer)

let candidates t prefix =
  match Prefix.Map.find_opt prefix t.db with
  | None -> []
  | Some m -> Peer.Map.bindings m

let prefixes_of t ~peer =
  Prefix.Map.fold
    (fun p m acc -> if Peer.Map.mem peer m then p :: acc else acc)
    t.db []
  |> List.rev

let drop_peer t ~peer =
  let affected =
    Prefix.Map.fold
      (fun p m acc -> if Peer.Map.mem peer m then p :: acc else acc)
      t.db []
  in
  List.iter (fun p -> remove t ~peer p) affected;
  List.rev affected

let prefixes t =
  Prefix.Map.fold (fun p _ acc -> Prefix.Set.add p acc) t.db Prefix.Set.empty

let size t = Prefix.Map.fold (fun _ m acc -> acc + Peer.Map.cardinal m) t.db 0
