(** The database of received IAs (Figure 5, "IA DB").

    Keyed by (prefix, advertising peer).  The IA factory indexes into it
    to retrieve the incoming IA for a chosen best path so it can copy
    through the control information of protocols not used for
    selection. *)

type t

val create : unit -> t
val store : t -> peer:Peer.t -> Ia.t -> unit
val remove : t -> peer:Peer.t -> Dbgp_types.Prefix.t -> unit
val find : t -> peer:Peer.t -> Dbgp_types.Prefix.t -> Ia.t option
val candidates : t -> Dbgp_types.Prefix.t -> (Peer.t * Ia.t) list
(** All stored IAs for a prefix, sorted by peer for determinism. *)

val drop_peer : t -> peer:Peer.t -> Dbgp_types.Prefix.t list
(** Session loss: forget everything from the peer; returns affected
    prefixes. *)

val prefixes_of : t -> peer:Peer.t -> Dbgp_types.Prefix.t list
(** Prefixes currently stored from the peer, without removing them
    (graceful restart marks these stale instead of flushing). *)

val prefixes : t -> Dbgp_types.Prefix.Set.t
val size : t -> int
(** Total number of stored IAs. *)
