open Dbgp_types
module Trie = Dbgp_trie.Prefix_trie

(* One map, one trie, and nothing per route but the chosen value
   itself.  The forwarding next hop is not stored — it is a projection
   of the chosen route (the address of the peer it was learned from),
   supplied once at {!create} and applied at query time.  The earlier
   layout spent a second AVL node, a second trie and a next-hop cell
   per route to answer {!next_hop}; at Internet table sizes that
   dominated the route store's footprint.

   The trie exists only for data-plane queries ({!lookup}, {!next_hop}),
   which run after convergence, not inside the update hot path.
   Rebuilding a /24 path in a functional trie touches ~24 nodes, so
   doing it per decision change dominated allocation — instead the trie
   is marked stale on every write and rebuilt from the map on the next
   query. *)
type 'c t = {
  nh_of : 'c -> Ipv4.t option;
  mutable best : 'c Prefix.Map.t;
  mutable by_addr : 'c Trie.t; (* LPM; lazy *)
  mutable trie_stale : bool;
}

let create ?(next_hop = fun _ -> None) () =
  { nh_of = next_hop;
    best = Prefix.Map.empty;
    by_addr = Trie.empty;
    trie_stale = false }

let set t prefix c =
  t.best <- Prefix.Map.add prefix c t.best;
  t.trie_stale <- true

let remove t prefix =
  t.best <- Prefix.Map.remove prefix t.best;
  t.trie_stale <- true

let refresh t =
  if t.trie_stale then begin
    t.by_addr <- Prefix.Map.fold Trie.add t.best Trie.empty;
    t.trie_stale <- false
  end

let find t prefix = Prefix.Map.find_opt prefix t.best
let mem t prefix = Prefix.Map.mem prefix t.best
let bindings t = Prefix.Map.bindings t.best
let fold f t acc = Prefix.Map.fold f t.best acc
let cardinal t = Prefix.Map.cardinal t.best

let fold_range t ~above ~limit ~f ~init =
  if limit <= 0 then invalid_arg "Loc_rib.fold_range: limit must be positive";
  let seq =
    match above with
    | None -> Prefix.Map.to_seq t.best
    | Some p ->
      (* [to_seq_from] is inclusive; the cursor names the last prefix
         already consumed, so skip it. *)
      Seq.filter (fun (q, _) -> Prefix.compare q p > 0)
        (Prefix.Map.to_seq_from p t.best)
  in
  let rec go seq n acc last =
    match seq () with
    | Seq.Nil -> (acc, None)
    | Seq.Cons ((p, c), rest) ->
      if n = 0 then (acc, last) else go rest (n - 1) (f p c acc) (Some p)
  in
  go seq limit init None

(* The longest match *among next-hop-bearing routes*: a locally
   originated more-specific (no next hop) must not shadow a learned,
   forwardable covering route, so walk the deepest-first match list
   past hop-less entries. *)
let next_hop t dest =
  refresh t;
  let rec first = function
    | [] -> None
    | (_, c) :: rest -> (
      match t.nh_of c with Some _ as nh -> nh | None -> first rest )
  in
  first (Trie.matches dest t.by_addr)

let lookup t dest =
  refresh t;
  Trie.longest_match dest t.by_addr
