open Dbgp_types
module Trie = Dbgp_trie.Prefix_trie

(* The best-route map is the authoritative store; the two tries exist
   only for data-plane queries ({!lookup}, {!next_hop}), which run after
   convergence, not inside the update hot path.  Rebuilding a /24 path
   in a functional trie touches ~24 nodes, so doing it twice per
   decision change dominated allocation — instead the tries are marked
   stale on every write and rebuilt from the maps on the next query. *)
type 'c t = {
  mutable best : 'c Prefix.Map.t;
  mutable nhs : Ipv4.t Prefix.Map.t; (* prefix -> next hop; learned only *)
  mutable by_addr : 'c Trie.t; (* LPM over chosen routes; lazy *)
  mutable fib : Ipv4.t Trie.t; (* lazy, derived from [nhs] *)
  mutable tries_stale : bool;
}

let create () =
  { best = Prefix.Map.empty;
    nhs = Prefix.Map.empty;
    by_addr = Trie.empty;
    fib = Trie.empty;
    tries_stale = false }

let set t prefix c ~next_hop =
  t.best <- Prefix.Map.add prefix c t.best;
  t.nhs <-
    ( match next_hop with
      | Some nh -> Prefix.Map.add prefix nh t.nhs
      | None -> Prefix.Map.remove prefix t.nhs );
  t.tries_stale <- true

let remove t prefix =
  t.best <- Prefix.Map.remove prefix t.best;
  t.nhs <- Prefix.Map.remove prefix t.nhs;
  t.tries_stale <- true

let refresh t =
  if t.tries_stale then begin
    t.by_addr <- Prefix.Map.fold Trie.add t.best Trie.empty;
    t.fib <- Prefix.Map.fold Trie.add t.nhs Trie.empty;
    t.tries_stale <- false
  end

let find t prefix = Prefix.Map.find_opt prefix t.best
let mem t prefix = Prefix.Map.mem prefix t.best
let bindings t = Prefix.Map.bindings t.best
let fold f t acc = Prefix.Map.fold f t.best acc
let cardinal t = Prefix.Map.cardinal t.best

let fold_range t ~above ~limit ~f ~init =
  if limit <= 0 then invalid_arg "Loc_rib.fold_range: limit must be positive";
  let seq =
    match above with
    | None -> Prefix.Map.to_seq t.best
    | Some p ->
      (* [to_seq_from] is inclusive; the cursor names the last prefix
         already consumed, so skip it. *)
      Seq.filter (fun (q, _) -> Prefix.compare q p > 0)
        (Prefix.Map.to_seq_from p t.best)
  in
  let rec go seq n acc last =
    match seq () with
    | Seq.Nil -> (acc, None)
    | Seq.Cons ((p, c), rest) ->
      if n = 0 then (acc, last) else go rest (n - 1) (f p c acc) (Some p)
  in
  go seq limit init None

let next_hop t dest =
  refresh t;
  Option.map snd (Trie.longest_match dest t.fib)

let lookup t dest =
  refresh t;
  Trie.longest_match dest t.by_addr
