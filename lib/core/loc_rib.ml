open Dbgp_types
module Trie = Dbgp_trie.Prefix_trie

type 'c t = {
  mutable best : 'c Prefix.Map.t;
  mutable by_addr : 'c Trie.t; (* LPM over chosen routes *)
  mutable fib : Ipv4.t Trie.t; (* prefix -> next hop; learned routes only *)
}

let create () = { best = Prefix.Map.empty; by_addr = Trie.empty; fib = Trie.empty }

let set t prefix c ~next_hop =
  t.best <- Prefix.Map.add prefix c t.best;
  t.by_addr <- Trie.add prefix c t.by_addr;
  t.fib <-
    ( match next_hop with
      | Some nh -> Trie.add prefix nh t.fib
      | None -> Trie.remove prefix t.fib )

let remove t prefix =
  t.best <- Prefix.Map.remove prefix t.best;
  t.by_addr <- Trie.remove prefix t.by_addr;
  t.fib <- Trie.remove prefix t.fib

let find t prefix = Prefix.Map.find_opt prefix t.best
let mem t prefix = Prefix.Map.mem prefix t.best
let bindings t = Prefix.Map.bindings t.best
let fold f t acc = Prefix.Map.fold f t.best acc
let cardinal t = Prefix.Map.cardinal t.best
let next_hop t dest = Option.map snd (Trie.longest_match dest t.fib)
let lookup t dest = Trie.longest_match dest t.by_addr
