(** Loc-RIB: stage 2 of the RIB pipeline.

    The per-prefix selected best routes plus a forwarding view: one
    LPM trie over the chosen routes answers both {!lookup} and
    {!next_hop}.  The next hop is not stored per route — it is a
    projection of the chosen value (supplied at {!create}), so a RIB
    entry's resident cost is exactly one map node plus one trie node.
    The trie is rebuilt lazily — {!set}/{!remove} only touch the route
    map and mark it stale; the first {!next_hop}/{!lookup} after a
    write rebuilds it.  This keeps trie maintenance out of the
    decision hot path while individual lookups stay O(prefix length)
    once refreshed.

    Polymorphic in the chosen-route type; a route whose projection
    yields no next hop (locally originated) is selectable but skipped
    by the FIB walk. *)

type 'c t

val create : ?next_hop:('c -> Dbgp_types.Ipv4.t option) -> unit -> 'c t
(** [next_hop] projects a chosen route to the neighbor address the FIB
    should forward to — [None] (the default for every route when
    omitted) marks it locally originated / not forwardable.  The
    projection must be pure: it is applied at query time, not at
    {!set} time. *)

val set : 'c t -> Dbgp_types.Prefix.t -> 'c -> unit
(** Install (or replace) the chosen route for a prefix. *)

val remove : 'c t -> Dbgp_types.Prefix.t -> unit
val find : 'c t -> Dbgp_types.Prefix.t -> 'c option
val mem : 'c t -> Dbgp_types.Prefix.t -> bool

val bindings : 'c t -> (Dbgp_types.Prefix.t * 'c) list
(** Ascending by prefix. *)

val fold : (Dbgp_types.Prefix.t -> 'c -> 'a -> 'a) -> 'c t -> 'a -> 'a
val cardinal : 'c t -> int

val fold_range :
  'c t ->
  above:Dbgp_types.Prefix.t option ->
  limit:int ->
  f:(Dbgp_types.Prefix.t -> 'c -> 'a -> 'a) ->
  init:'a ->
  'a * Dbgp_types.Prefix.t option
(** Cursor walk in ascending prefix order: fold over at most [limit]
    routes strictly above [above] ([None] starts from the beginning).
    Returns the accumulator and the cursor to resume from — [None] when
    the table is exhausted.  The backbone of chunked streaming table
    transfer.  @raise Invalid_argument when [limit <= 0]. *)

val next_hop : 'c t -> Dbgp_types.Ipv4.t -> Dbgp_types.Ipv4.t option
(** Longest-prefix-match FIB lookup. *)

val lookup : 'c t -> Dbgp_types.Ipv4.t -> (Dbgp_types.Prefix.t * 'c) option
(** Longest-prefix match over the chosen routes. *)
