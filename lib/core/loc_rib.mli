(** Loc-RIB: stage 2 of the RIB pipeline.

    The per-prefix selected best routes plus a forwarding view: a
    next-hop FIB trie (longest-prefix match to the chosen neighbor
    address) and an LPM trie over the chosen routes themselves.  The
    tries are rebuilt lazily — {!set}/{!remove} only touch the route
    maps and mark the tries stale; the first {!next_hop}/{!lookup}
    after a write rebuilds them.  This keeps trie maintenance out of
    the decision hot path while individual lookups stay O(prefix
    length) once refreshed.

    Polymorphic in the chosen-route type; a route selected without a
    next hop (locally originated) is held in the best map but absent
    from the FIB. *)

type 'c t

val create : unit -> 'c t

val set : 'c t -> Dbgp_types.Prefix.t -> 'c -> next_hop:Dbgp_types.Ipv4.t option -> unit
(** Install (or replace) the chosen route for a prefix.  [next_hop] is
    the neighbor address the FIB should forward to; [None] (a locally
    originated route) removes the prefix from the FIB. *)

val remove : 'c t -> Dbgp_types.Prefix.t -> unit
val find : 'c t -> Dbgp_types.Prefix.t -> 'c option
val mem : 'c t -> Dbgp_types.Prefix.t -> bool

val bindings : 'c t -> (Dbgp_types.Prefix.t * 'c) list
(** Ascending by prefix. *)

val fold : (Dbgp_types.Prefix.t -> 'c -> 'a -> 'a) -> 'c t -> 'a -> 'a
val cardinal : 'c t -> int

val fold_range :
  'c t ->
  above:Dbgp_types.Prefix.t option ->
  limit:int ->
  f:(Dbgp_types.Prefix.t -> 'c -> 'a -> 'a) ->
  init:'a ->
  'a * Dbgp_types.Prefix.t option
(** Cursor walk in ascending prefix order: fold over at most [limit]
    routes strictly above [above] ([None] starts from the beginning).
    Returns the accumulator and the cursor to resume from — [None] when
    the table is exhausted.  The backbone of chunked streaming table
    transfer.  @raise Invalid_argument when [limit <= 0]. *)

val next_hop : 'c t -> Dbgp_types.Ipv4.t -> Dbgp_types.Ipv4.t option
(** Longest-prefix-match FIB lookup. *)

val lookup : 'c t -> Dbgp_types.Ipv4.t -> (Dbgp_types.Prefix.t * 'c) option
(** Longest-prefix match over the chosen routes. *)
