open Dbgp_types
module Metrics = Dbgp_obs.Metrics

type t = {
  mutable dirty : Prefix.Set.t;
  c_marks : Metrics.counter;
  c_saved : Metrics.counter;
  c_drains : Metrics.counter;
}

let create obs =
  { dirty = Prefix.Set.empty;
    c_marks = Metrics.counter obs "pipeline.dirty_marks";
    c_saved = Metrics.counter obs "pipeline.runs_saved";
    c_drains = Metrics.counter obs "pipeline.drains" }

let mark t prefix =
  Metrics.incr t.c_marks;
  if Prefix.Set.mem prefix t.dirty then
    (* Coalesced: this update will share the prefix's next decision run
       with the mark already queued — one run saved. *)
    Metrics.incr t.c_saved
  else t.dirty <- Prefix.Set.add prefix t.dirty

let pending t = Prefix.Set.cardinal t.dirty
let dirty t = Prefix.Set.elements t.dirty

let drain t ~f =
  if Prefix.Set.is_empty t.dirty then []
  else begin
    Metrics.incr t.c_drains;
    let batch = t.dirty in
    t.dirty <- Prefix.Set.empty;
    (* Ascending prefix order: deterministic, and identical to the
       pre-pipeline speaker's per-event processing order. *)
    Prefix.Set.fold (fun p acc -> acc @ f p) batch []
  end
