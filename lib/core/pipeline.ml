open Dbgp_types
module Metrics = Dbgp_obs.Metrics

(* The dirty set is a hashtable: {!mark} runs once per delivered update
   and must not pay a functional-set rebuild; {!drain} sorts the (small)
   batch so processing order stays ascending and deterministic. *)
type t = {
  dirty : (Prefix.t, unit) Hashtbl.t;
  c_marks : Metrics.counter;
  c_saved : Metrics.counter;
  c_drains : Metrics.counter;
}

let create obs =
  { dirty = Hashtbl.create 64;
    c_marks = Metrics.counter obs "pipeline.dirty_marks";
    c_saved = Metrics.counter obs "pipeline.runs_saved";
    c_drains = Metrics.counter obs "pipeline.drains" }

let mark t prefix =
  Metrics.incr t.c_marks;
  if Hashtbl.mem t.dirty prefix then
    (* Coalesced: this update will share the prefix's next decision run
       with the mark already queued — one run saved. *)
    Metrics.incr t.c_saved
  else Hashtbl.replace t.dirty prefix ()

let pending t = Hashtbl.length t.dirty

let sorted_batch t =
  Hashtbl.fold (fun p () acc -> p :: acc) t.dirty []
  |> List.sort Prefix.compare

let dirty t = sorted_batch t

let drain t ~f =
  if Hashtbl.length t.dirty = 0 then []
  else begin
    Metrics.incr t.c_drains;
    (* Ascending prefix order: deterministic, and identical to the
       pre-pipeline speaker's per-event processing order.  Chunks are
       collected and concatenated once — folding with [acc @ f p]
       re-copied the accumulator per prefix (quadratic in drain
       output).  Prefixes marked dirty *by* [f] land in the next
       drain: the batch is snapshotted and cleared before [f] runs. *)
    let batch = sorted_batch t in
    Hashtbl.reset t.dirty;
    let chunks = List.rev_map f batch in
    List.concat (List.rev chunks)
  end
