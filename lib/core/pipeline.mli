(** Dirty-prefix scheduler: the work queue between pipeline stages.

    Ingesting an update (stage 1) only {!mark}s its prefix dirty;
    best-path selection (stage 2) runs once per dirty prefix per
    {!drain}, however many updates arrived in between.  Marks for an
    already-dirty prefix are coalesced — each is a decision run saved
    relative to the eager run-per-message speaker.

    Counters (registered on the owning speaker's metrics registry):
    [pipeline.dirty_marks] — total marks; [pipeline.runs_saved] —
    marks coalesced into an already-dirty prefix; [pipeline.drains] —
    non-empty drains. *)

type t

val create : Dbgp_obs.Metrics.t -> t

val mark : t -> Dbgp_types.Prefix.t -> unit
val pending : t -> int

val dirty : t -> Dbgp_types.Prefix.t list
(** The dirty set, ascending, without draining it. *)

val drain : t -> f:(Dbgp_types.Prefix.t -> 'a list) -> 'a list
(** Clear the dirty set and run [f] once per prefix in ascending order,
    concatenating the results.  Prefixes marked dirty *by* [f] land in
    the next drain. *)
