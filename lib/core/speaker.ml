open Dbgp_types
module Trie = Dbgp_trie.Prefix_trie
module Metrics = Dbgp_obs.Metrics
module Trace = Dbgp_obs.Trace

type msg = Announce of Ia.t | Withdraw of Prefix.t

type neighbor = {
  peer : Peer.t;
  relationship : Dbgp_bgp.Policy.relationship;
  import : Filters.t;
  export : Filters.t;
  dbgp_capable : bool;
  same_island : bool;
}

let neighbor ?(import = Filters.accept) ?(export = Filters.accept)
    ?(dbgp_capable = true) ?(same_island = false) ~relationship peer =
  { peer; relationship; import; export; dbgp_capable; same_island }

type config = {
  asn : Asn.t;
  addr : Ipv4.t;
  island : Island_id.t option;
  island_members : Asn.t list;
  hide_island_interior : bool;
  passthrough : bool;
  global_import : Filters.t;
  global_export : Filters.t;
}

let config ?island ?(island_members = []) ?(hide_island_interior = false)
    ?(passthrough = true) ?(global_import = Filters.accept)
    ?(global_export = Filters.accept) ~asn ~addr () =
  { asn; addr; island; island_members; hide_island_interior; passthrough;
    global_import; global_export }

type chosen = {
  candidate : Decision_module.candidate;
  outgoing : Ia.t;
  built_gen : int;
      (* Module-configuration generation the outgoing IA was built
         under; lets [process] reuse it (skipping the factory) when the
         same candidate wins again and no module/active change could
         have altered the build. *)
  built_from : Decision_module.candidate list;
      (* The full post-import candidate list the build saw.  Reuse must
         compare against all of it, not just the winner: a module's
         [contribute] may read state its [select] derived from the
         losers (R-BGP records the runner-up as the backup path), so a
         changed loser can change the outgoing IA even when the winner
         is untouched. *)
}

module Damping = Dbgp_bgp.Flap_damping

type t = {
  cfg : config;
  modules : (int, Decision_module.t) Hashtbl.t; (* by Protocol_id.to_int *)
  mutable active : Protocol_id.t Trie.t;
  mutable nbrs : neighbor Peer.Map.t;
  (* The three-stage RIB pipeline of Figure 5.  [rib_in]: per-(prefix,
     peer) post-global-import IAs plus graceful-restart stale marks.
     [loc]: selected best routes with an incrementally maintained FIB.
     [rib_out]: per-peer advertised state, peer groups and the export
     cache.  [sched]: the dirty-prefix work queue between stages —
     ingest marks, {!flush} drains. *)
  rib_in : Ia.t Adj_rib_in.t;
  loc : chosen Loc_rib.t;
  rib_out : Adj_rib_out.t;
  sched : Pipeline.t;
  mutable local : Ia.t Prefix.Map.t;  (* locally originated routes *)
  (* Resilience state.  [flap_state]: RFC 2439 per-(peer,prefix)
     damping penalties; suppressed routes are excluded from selection.
     [reuse_events]: (prefix, time) pairs the runtime must re-evaluate
     at, drained via {!take_reuse_events}. *)
  mutable damping : Damping.params option;
  mutable flap_state : Damping.t Prefix.Map.t Peer.Map.t;
  mutable reuse_events : (Prefix.t * float) list;
  (* Observability.  Every speaker owns a metrics registry and an event
     trace; the decision-path instruments are cached here because they
     are hit on every [process] call. *)
  obs : Metrics.t;
  trace : Trace.t;
  c_runs : Metrics.counter;
  c_changes : Metrics.counter;
  c_export_hits : Metrics.counter;
  c_export_misses : Metrics.counter;
  g_last_change : Metrics.gauge;
  c_updates_rx : Metrics.counter;
  c_withdrawals_rx : Metrics.counter;
  c_duplicates : Metrics.counter;
  (* Stage-1 ingress chain (loop rejection then global import), fixed at
     construction — composing it per message allocated a closure on
     every announce. *)
  ingress : Filters.t;
  (* Generation counter for anything that changes how outgoing IAs are
     built (module set, per-prefix active protocol).  Bumped by
     {!add_module}/{!set_active}; lets [process] trust memoized builds
     and the caches below. *)
  mutable gen : int;
  mutable contrib_cache : (int * Protocol_id.t * (Ia.t -> Ia.t) list) option;
  mutable supported_cache : (int * Protocol_id.Set.t) option;
  (* Fired from [process] whenever the Loc-RIB entry for a prefix
     actually changes — the stability detector's per-prefix change
     feed. *)
  mutable change_hook : (now:float -> Prefix.t -> unit) option;
  (* Relationship-keyed export gate, evaluated before the per-neighbor
     route-map filter.  Defaults to Gao-Rexford valley-free; the
     adversary layer swaps in [Policy.export_all] to model a route
     leak. *)
  mutable export_rule : Dbgp_bgp.Policy.export_rule;
}

let create cfg =
  let modules = Hashtbl.create 8 in
  let m = Decision_module.bgp () in
  Hashtbl.replace modules (Protocol_id.to_int m.Decision_module.protocol) m;
  let obs = Metrics.create () in
  { cfg;
    modules;
    active = Trie.empty;
    nbrs = Peer.Map.empty;
    rib_in = Adj_rib_in.create ();
    loc =
      Loc_rib.create
        ~next_hop:(fun c ->
          Option.map
            (fun p -> p.Peer.addr)
            c.candidate.Decision_module.from_peer)
        ();
    rib_out = Adj_rib_out.create ();
    sched = Pipeline.create obs;
    local = Prefix.Map.empty;
    damping = None;
    flap_state = Peer.Map.empty;
    reuse_events = [];
    obs;
    trace = Trace.create ();
    c_runs = Metrics.counter obs "decision.runs";
    c_changes = Metrics.counter obs "decision.changes";
    c_export_hits = Metrics.counter obs "pipeline.export_cache.hits";
    c_export_misses = Metrics.counter obs "pipeline.export_cache.misses";
    g_last_change = Metrics.gauge obs "decision.last_change_at";
    c_updates_rx = Metrics.counter obs "updates.received";
    c_withdrawals_rx = Metrics.counter obs "withdrawals.received";
    c_duplicates = Metrics.counter obs "updates.duplicate";
    ingress = Filters.compose Filters.reject_loops cfg.global_import;
    gen = 0;
    contrib_cache = None;
    supported_cache = None;
    change_hook = None;
    export_rule = Dbgp_bgp.Policy.valley_free }

let asn t = t.cfg.asn
let addr t = t.cfg.addr
let island_of t = t.cfg.island
let metrics t = t.obs
let trace t = t.trace

let bump t name = Metrics.incr (Metrics.counter t.obs name)

let my_asn t = Asn.to_int t.cfg.asn

let add_module t (m : Decision_module.t) =
  Hashtbl.replace t.modules (Protocol_id.to_int m.protocol) m;
  t.gen <- t.gen + 1

let supported t =
  match t.supported_cache with
  | Some (g, s) when g = t.gen -> s
  | _ ->
    let s =
      Hashtbl.fold
        (fun _ (m : Decision_module.t) acc -> Protocol_id.Set.add m.protocol acc)
        t.modules Protocol_id.Set.empty
    in
    t.supported_cache <- Some (t.gen, s);
    s

let set_active t prefix proto =
  if not (Hashtbl.mem t.modules (Protocol_id.to_int proto)) then
    invalid_arg "Speaker.set_active: no module registered for protocol"
  else begin
    t.active <- Trie.add prefix proto t.active;
    t.gen <- t.gen + 1
  end

let active_for t prefix =
  match Trie.longest_match (Prefix.network prefix) t.active with
  | Some (p, proto) when Prefix.subsumes p prefix -> proto
  | _ -> Protocol_id.bgp

let group_key_of (n : neighbor) =
  { Adj_rib_out.relationship = n.relationship;
    dbgp_capable = n.dbgp_capable;
    same_island = n.same_island;
    export = n.export }

let add_neighbor t n =
  t.nbrs <- Peer.Map.add n.peer n t.nbrs;
  ignore (Adj_rib_out.join t.rib_out ~peer:n.peer (group_key_of n))

let neighbors t = List.map snd (Peer.Map.bindings t.nbrs)
let has_neighbor t peer = Peer.Map.mem peer t.nbrs
let export_group_of t peer = Adj_rib_out.group_of t.rib_out ~peer
let export_group_count t = Adj_rib_out.group_count t.rib_out

let module_for t proto =
  match Hashtbl.find_opt t.modules (Protocol_id.to_int proto) with
  | Some m -> m
  | None -> Hashtbl.find t.modules (Protocol_id.to_int Protocol_id.bgp)

(* Relationship-keyed export gate: valley-free by default, swappable so
   the adversary layer can model a leaking AS. *)
let set_export_rule t rule = t.export_rule <- rule
let export_rule t = t.export_rule

let learned_relationship t (c : Decision_module.candidate) =
  match c.from_peer with
  | None -> None
  | Some p ->
    Option.map (fun n -> n.relationship) (Peer.Map.find_opt p t.nbrs)

(* Build the per-neighbor outgoing message for an already-factory-built
   IA.  Depends only on the neighbor's group key (same_island, export,
   dbgp_capable) and per-speaker constants — which is exactly what makes
   the per-group export cache sound. *)
let egress_for_neighbor t (n : neighbor) (ia : Ia.t) =
  let island_egress : Filters.t =
    match t.cfg.island with
    | Some island when not n.same_island ->
      let members =
        if t.cfg.island_members = [] then [ t.cfg.asn ] else t.cfg.island_members
      in
      if t.cfg.hide_island_interior then Filters.abstract_island ~island ~members
      else Filters.declare_membership ~island ~members
    | _ -> Filters.accept
  in
  let downgrade : Filters.t =
    if n.dbgp_capable then Filters.accept
    else
      Filters.compose
        (Filters.keep_only (Protocol_id.Set.singleton Protocol_id.bgp))
        (fun ia -> Some { ia with Ia.membership = [] })
  in
  Filters.chain [ island_egress; t.cfg.global_export; n.export; downgrade ] ia

(* Stage-3 egress through the per-group export cache: computed once per
   (group, source IA, prefix), fanned out to every group member. *)
let cached_egress t (n : neighbor) (ia : Ia.t) =
  let out, hit =
    Adj_rib_out.egress t.rib_out
      ~group:(Adj_rib_out.group_of t.rib_out ~peer:n.peer)
      ~prefix:ia.Ia.prefix ~src:ia
      ~compute:(fun () -> egress_for_neighbor t n ia)
  in
  if hit then Metrics.incr t.c_export_hits else Metrics.incr t.c_export_misses;
  out

let previously_announced t peer prefix =
  Adj_rib_out.advertised t.rib_out ~peer prefix

let record_adj_out t peer prefix out = Adj_rib_out.record t.rib_out ~peer prefix out

(* ------------------------- flap damping ------------------------- *)

let set_damping t params =
  t.damping <- Option.map Damping.validate params;
  if t.damping = None then t.flap_state <- Peer.Map.empty

let take_reuse_events t =
  let evs = List.rev t.reuse_events in
  t.reuse_events <- [];
  evs

let flap_state_of t peer prefix =
  Option.bind (Peer.Map.find_opt peer t.flap_state) (Prefix.Map.find_opt prefix)

let has_flap_state t peer = Peer.Map.mem peer t.flap_state

let suppressed t ~now peer prefix =
  match t.damping with
  | None -> false
  | Some p -> (
    match flap_state_of t peer prefix with
    | None -> false
    | Some st -> Damping.is_suppressed p st ~now )

(* Charge a damping penalty; when this crosses into suppression, queue a
   reuse event so the runtime re-runs the decision process once the
   penalty has decayed below the reuse threshold. *)
let note_flap t ~now peer prefix amount =
  match t.damping with
  | None -> ()
  | Some p ->
    let st =
      match flap_state_of t peer prefix with
      | Some st -> st
      | None ->
        let st = Damping.create () in
        let m =
          Option.value (Peer.Map.find_opt peer t.flap_state)
            ~default:Prefix.Map.empty
        in
        t.flap_state <- Peer.Map.add peer (Prefix.Map.add prefix st m) t.flap_state;
        st
    in
    let was = Damping.is_suppressed p st ~now in
    Damping.penalize p st ~now amount;
    if Damping.is_suppressed p st ~now && not was then begin
      let reuse_at = now +. Damping.time_to_reuse p st ~now in
      bump t "damping.suppressed";
      Trace.emit t.trace ~at:now
        (Trace.Damping_suppress
           { asn = my_asn t;
             peer = Asn.to_int peer.Peer.asn;
             prefix = Prefix.to_string prefix;
             reuse_at });
      t.reuse_events <- (prefix, reuse_at) :: t.reuse_events
    end

let withdraw_penalty t =
  match t.damping with Some p -> p.Damping.withdraw_penalty | None -> 0.

let attr_change_penalty t =
  match t.damping with Some p -> p.Damping.attr_change_penalty | None -> 0.

let flap_penalty t ~now peer prefix =
  match (t.damping, flap_state_of t peer prefix) with
  | Some p, Some st -> Damping.penalty p st ~now
  | _ -> 0.

(* ------------------------- graceful restart ------------------------- *)

let stale_count t = Adj_rib_in.stale_count t.rib_in
let is_stale t peer prefix = Adj_rib_in.is_stale t.rib_in ~peer prefix
let has_stale t peer = Adj_rib_in.has_stale t.rib_in ~peer

(* RFC 4724-style restart: keep the peer's routes (still candidates, so
   forwarding continues) but mark them stale.  A fresh announcement or
   withdrawal from the returning peer clears the mark; {!flush_stale}
   drops whatever is still stale when the restart window closes. *)
let peer_down_graceful ?(now = 0.) t peer =
  let routes = Adj_rib_in.mark_stale t.rib_in ~peer in
  if routes > 0 then begin
    Metrics.incr ~by:routes (Metrics.counter t.obs "restart.stale_marked");
    Trace.emit t.trace ~at:now
      (Trace.Restart_phase
         { asn = my_asn t;
           peer = Asn.to_int peer.Peer.asn;
           phase = "stale-marked";
           routes })
  end

(* The outgoing IA (if any) for [chosen] toward one neighbor:
   split-horizon, loop avoidance and valley-free export are evaluated
   per neighbor; the egress filter chain itself comes from the per-group
   cache. *)
let emission_with t ~learned (chosen : chosen) (n : neighbor) =
  let is_sender =
    match chosen.candidate.Decision_module.from_peer with
    | Some p -> Peer.equal p n.peer
    | None -> false
  in
  let on_path =
    List.exists
      (Path_elem.mentions_asn n.peer.Peer.asn)
      chosen.outgoing.Ia.path_vector
    && not (Asn.equal n.peer.Peer.asn t.cfg.asn)
  in
  let eligible =
    (not is_sender) && (not on_path)
    && t.export_rule ~learned ~to_:n.relationship
  in
  if eligible then cached_egress t n chosen.outgoing else None

(* The learned relationship depends only on the chosen route, so
   callers fanning one route out to many neighbors resolve it once. *)
let emission_for t (chosen : chosen) (n : neighbor) =
  emission_with t ~learned:(learned_relationship t chosen.candidate) chosen n

(* Announce / withdraw the current best for [prefix] to all neighbors. *)
let distribute t prefix =
  let out = ref [] in
  let emit peer m = out := (peer, m) :: !out in
  ( match Loc_rib.find t.loc prefix with
    | None ->
      Peer.Map.iter
        (fun peer _ ->
          if previously_announced t peer prefix then begin
            record_adj_out t peer prefix None;
            emit peer (Withdraw prefix)
          end)
        t.nbrs
    | Some chosen ->
      let learned = learned_relationship t chosen.candidate in
      Peer.Map.iter
        (fun peer n ->
          match emission_with t ~learned chosen n with
          | Some ia as o ->
            (* Record the egress cache's own option box — no per-route
               [Some] of the Adj-RIB-Out's own. *)
            record_adj_out t peer prefix o;
            emit peer (Announce ia)
          | None ->
            if previously_announced t peer prefix then begin
              record_adj_out t peer prefix None;
              emit peer (Withdraw prefix)
            end)
        t.nbrs );
  List.rev !out

(* Re-advertise the full current state to one neighbor (route refresh):
   used when a failed link recovers, so the returning peer resynchronizes
   without a manual full-table reset.  Idempotent at the receiver. *)
let refresh_peer t peer =
  match Peer.Map.find_opt peer t.nbrs with
  | None -> []
  | Some n ->
    Loc_rib.fold
      (fun prefix chosen acc ->
        match emission_for t chosen n with
        | Some ia as o ->
          record_adj_out t peer prefix o;
          (peer, Announce ia) :: acc
        | None ->
          if previously_announced t peer prefix then begin
            record_adj_out t peer prefix None;
            (peer, Withdraw prefix) :: acc
          end
          else acc)
      t.loc []
    |> List.rev

(* ---------------- incremental table transfer ---------------- *)

(* The transport failed to deliver the last message for [prefix] toward
   [peer]: demote the Adj-RIB-Out record to unconfirmed (or leave a
   withdraw tombstone) so the next {!sync_peer} re-sends it.  The
   simulator calls this from every drop point — it plays the role TCP
   delivery failure plays for a real speaker. *)
let note_undelivered t peer prefix =
  Adj_rib_out.note_failed t.rib_out ~peer prefix

(* Incremental/streaming table transfer on session (re)establish: walk
   the Loc-RIB in cursor order and re-send only routes whose current
   emission differs from the peer's confirmed Adj-RIB-Out record — a
   route the peer provably already holds is skipped.  On the final
   chunk, records with no backing Loc-RIB route (withdraw tombstones and
   entries for routes dropped while the session was down) are withdrawn.
   Degenerates to a full-table send when no records exist (a
   non-graceful teardown dropped them), which is exactly when the peer
   kept nothing either. *)
let sync_peer ?(limit = max_int) ?cursor t peer =
  match Peer.Map.find_opt peer t.nbrs with
  | None -> ([], None)
  | Some n ->
    let out = ref [] in
    let sent = ref 0 and skipped = ref 0 and withdrawn = ref 0 in
    let (), next =
      Loc_rib.fold_range t.loc ~above:cursor ~limit
        ~f:(fun prefix chosen () ->
          match emission_for t chosen n with
          | Some ia as o -> (
            match Adj_rib_out.find t.rib_out ~peer prefix with
            | Some (Some prev, true) when Ia.equal prev ia -> incr skipped
            | _ ->
              record_adj_out t peer prefix o;
              out := (peer, Announce ia) :: !out;
              incr sent )
          | None ->
            if Option.is_some (Adj_rib_out.find t.rib_out ~peer prefix)
            then begin
              record_adj_out t peer prefix None;
              out := (peer, Withdraw prefix) :: !out;
              incr withdrawn
            end)
        ~init:()
    in
    if next = None then
      List.iter
        (fun (prefix, _, _) ->
          if not (Loc_rib.mem t.loc prefix) then begin
            record_adj_out t peer prefix None;
            out := (peer, Withdraw prefix) :: !out;
            incr withdrawn
          end)
        (Adj_rib_out.entries t.rib_out ~peer);
    if !sent > 0 then
      Metrics.incr ~by:!sent (Metrics.counter t.obs "sync.sent");
    if !skipped > 0 then
      Metrics.incr ~by:!skipped (Metrics.counter t.obs "sync.skipped");
    if !withdrawn > 0 then
      Metrics.incr ~by:!withdrawn (Metrics.counter t.obs "sync.withdrawn");
    (List.rev !out, next)

(* End-of-RIB for an incremental transfer (RFC 4724 §3): the sync is
   complete, so any route from [peer] still stale was deliberately
   *skipped* as already-confirmed — clear the marks and keep the routes.
   Contrast {!flush_stale}, which closes an expired restart window by
   dropping what was never refreshed. *)
let end_of_rib ?(now = 0.) t peer =
  let set = Adj_rib_in.take_stale t.rib_in ~peer in
  let routes = Prefix.Set.cardinal set in
  if routes > 0 then begin
    Metrics.incr ~by:routes (Metrics.counter t.obs "restart.retained");
    Trace.emit t.trace ~at:now
      (Trace.Restart_phase
         { asn = my_asn t;
           peer = Asn.to_int peer.Peer.asn;
           phase = "retained";
           routes })
  end;
  routes

(* Recompute the best path for [prefix]: stages 2-6 of Figure 5.  [now] is
   the simulation clock, needed only to evaluate flap-damping decay. *)
let process t ~now prefix =
  Metrics.incr t.c_runs;
  let active = active_for t prefix in
  let m = module_for t active in
  let raw_candidates =
    let local =
      match Prefix.Map.find_opt prefix t.local with
      | None -> []
      | Some ia -> [ { Decision_module.from_peer = None; ia } ]
    in
    local
    @ List.filter_map
        (fun (peer, ia) ->
          (* Damping: suppressed routes stay in the Adj-RIB-In but are
             invisible to selection until their penalty decays. *)
          if suppressed t ~now peer prefix then None
          else
            (* Per-neighbor then protocol-specific import filters,
               applied directly — [Filters.compose] would allocate a
               closure per candidate per run. *)
            let nbr_import =
              match Peer.Map.find_opt peer t.nbrs with
              | Some n -> n.import
              | None -> Filters.accept
            in
            match nbr_import ia with
            | None -> None
            | Some ia ->
              ( match m.Decision_module.import_filter ia with
                | None -> None
                | Some ia ->
                  Some { Decision_module.from_peer = Some peer; ia } ))
        (Adj_rib_in.candidates t.rib_in prefix)
  in
  let selected = m.Decision_module.select ~prefix raw_candidates in
  let prev = Loc_rib.find t.loc prefix in
  (* Memoized build: when the same stored candidate wins again under the
     same module configuration, the factory is a pure function of inputs
     that have not changed — reuse the previous outgoing IA wholesale.
     Physical equality is exact here: candidates carry the Adj-RIB-In /
     local-map values themselves, so an unchanged winner is the same
     pointer. *)
  let same_candidate (a : Decision_module.candidate)
      (b : Decision_module.candidate) =
    a.Decision_module.ia == b.Decision_module.ia
    && ( match (a.Decision_module.from_peer, b.Decision_module.from_peer) with
       | None, None -> true
       | Some a, Some b -> a == b || Peer.equal a b
       | _ -> false )
  in
  let reused =
    match (prev, selected) with
    | Some p, Some c when p.built_gen = t.gen ->
      same_candidate p.candidate c
      (* The whole input set must be unchanged, not just the winner:
         [contribute] may depend on the losers (see [built_from]).
         Candidate records are rebuilt each run but their IAs are
         physically stable when nothing arrived, so pairwise [==] on
         the IAs is exact. *)
      && List.compare_lengths p.built_from raw_candidates = 0
      && List.for_all2 same_candidate p.built_from raw_candidates
    | _ -> false
  in
  let next =
    if reused then prev
    else
      match selected with
      | None -> None
      | Some candidate ->
        (* Local origination advertises the IA as-is (the origin's own ASN is
           already its path vector); learned routes go through the factory. *)
        let outgoing =
          match candidate.Decision_module.from_peer with
          | None -> candidate.Decision_module.ia
          | Some _ ->
            let contributions =
              match t.contrib_cache with
              | Some (g, a, cs) when g = t.gen && Protocol_id.equal a active ->
                cs
              | _ ->
                let mods =
                  Hashtbl.fold (fun _ dm acc -> dm :: acc) t.modules []
                  |> List.sort (fun (a : Decision_module.t) b ->
                         Protocol_id.compare a.protocol b.protocol)
                in
                (* Active module contributes first, then other supported
                   ones. *)
                let actives, others =
                  List.partition
                    (fun (dm : Decision_module.t) ->
                      Protocol_id.equal dm.protocol active)
                    mods
                in
                let cs =
                  List.map
                    (fun (dm : Decision_module.t) ia ->
                      dm.contribute ~me:t.cfg.asn ia)
                    (actives @ others)
                in
                t.contrib_cache <- Some (t.gen, active, cs);
                cs
            in
            Factory.build ~passthrough:t.cfg.passthrough
              ~supported:(supported t) ~me:t.cfg.asn ~my_addr:t.cfg.addr
              ~contributions candidate.Decision_module.ia
        in
        ( match m.Decision_module.export_filter outgoing with
          | None -> None
          | Some outgoing ->
            (* The Loc-RIB chosen entry holds its own reference on the
               outgoing attribute set — built IAs fan out to every
               neighbor, so collapsing equal builds is the big sharing
               win on transit speakers. *)
            Some
              { candidate;
                outgoing = Attr_table.share outgoing;
                built_gen = t.gen;
                built_from = raw_candidates } )
  in
  let changed =
    (not reused)
    &&
    match (prev, next) with
    | None, None -> false
    | Some a, Some b ->
      not
        ( Ia.equal a.candidate.Decision_module.ia b.candidate.Decision_module.ia
        && a.candidate.Decision_module.from_peer = b.candidate.Decision_module.from_peer
        && Ia.equal a.outgoing b.outgoing )
    | _ -> true
  in
  (* Reference discipline: a freshly built chosen entry acquired a
     reference above.  If it replaces a stored entry the old reference
     drops; if it turns out equal to the stored entry it is discarded
     and its own reference drops.  Refcounts only steer attribute-table
     residency, so this bookkeeping can never invalidate a route. *)
  if changed then
    Option.iter (fun p -> Attr_table.release p.outgoing) prev
  else if not reused then
    Option.iter (fun c -> Attr_table.release c.outgoing) next;
  if changed then begin
    Metrics.incr t.c_changes;
    Metrics.set t.g_last_change now;
    let best_via =
      match next with
      | None -> None
      | Some c ->
        Option.map
          (fun p -> Asn.to_int p.Peer.asn)
          c.candidate.Decision_module.from_peer
    in
    Trace.emit t.trace ~at:now
      (Trace.Decision_run
         { asn = my_asn t;
           prefix = Prefix.to_string prefix;
           changed = true;
           best_via });
    ( match next with
      | None -> Loc_rib.remove t.loc prefix
      | Some c -> Loc_rib.set t.loc prefix c );
    (match t.change_hook with Some f -> f ~now prefix | None -> ());
    distribute t prefix
  end
  else []

(* --------------- stage 1: ingest, mark dirty, drain --------------- *)

(* Absorb an update into the Adj-RIB-In and mark its prefix dirty when
   selection could be affected.  Returns nothing; the decision process
   runs at the next {!flush}.  Accounting (received/duplicate/rejected
   counters, stale-mark clearing, flap penalties) happens here, at
   arrival time — exactly as the eager speaker did. *)
let ingest_msg t ~now ~from msg =
  match msg with
  | Withdraw prefix ->
    Metrics.incr t.c_withdrawals_rx;
    let prev = Adj_rib_in.find t.rib_in ~peer:from prefix in
    Option.iter Attr_table.release prev;
    Adj_rib_in.remove t.rib_in ~peer:from prefix;
    (* Hearing from the peer at all proves it is back: its stale mark for
       this prefix is resolved (by removal). *)
    Adj_rib_in.clear_stale t.rib_in ~peer:from prefix;
    if Option.is_some prev then
      note_flap t ~now from prefix (withdraw_penalty t);
    Pipeline.mark t.sched prefix
  | Announce ia -> (
    Metrics.incr t.c_updates_rx;
    (* Stage 1: global import filtering, loop rejection first. *)
    match t.ingress ia with
    | None ->
      bump t "import.rejected";
      Trace.emit t.trace ~at:now
        (Trace.Import_rejected
           { asn = my_asn t;
             peer = Asn.to_int from.Peer.asn;
             prefix = Prefix.to_string ia.Ia.prefix });
      (* A rejected IA acts as an implicit withdrawal of any previous
         route from this peer for the prefix. *)
      ( match Adj_rib_in.find t.rib_in ~peer:from ia.Ia.prefix with
      | None -> ()
      | Some prev ->
        Attr_table.release prev;
        Adj_rib_in.remove t.rib_in ~peer:from ia.Ia.prefix;
        Adj_rib_in.clear_stale t.rib_in ~peer:from ia.Ia.prefix;
        note_flap t ~now from ia.Ia.prefix (withdraw_penalty t);
        Pipeline.mark t.sched ia.Ia.prefix )
    | Some ia -> (
      match Adj_rib_in.find t.rib_in ~peer:from ia.Ia.prefix with
      | Some prev when Ia.equal prev ia ->
        (* Duplicate delivery (session retransmit, route refresh): the
           stored route is byte-identical, so re-running the decision
           process or charging a flap penalty would amplify the
           duplicate.  Refreshing the stale mark is the only effect. *)
        Metrics.incr t.c_duplicates;
        Adj_rib_in.clear_stale t.rib_in ~peer:from ia.Ia.prefix
      | prev ->
        ( match prev with
          | Some p ->
            (* Re-advertisement with changed attributes is a flap too. *)
            Attr_table.release p;
            note_flap t ~now from ia.Ia.prefix (attr_change_penalty t)
          | None -> () );
        (* The Adj-RIB-In holds a reference on the route's attribute
           set; sharing here also canonicalizes the stored IA so equal
           attribute sets across peers and prefixes are one block. *)
        let ia = Attr_table.share ia in
        Adj_rib_in.set t.rib_in ~peer:from ia.Ia.prefix ia;
        Adj_rib_in.clear_stale t.rib_in ~peer:from ia.Ia.prefix;
        Pipeline.mark t.sched ia.Ia.prefix ) )

let absorb t ~now ~from exn =
  bump t "errors.internal";
  Trace.emit t.trace ~at:now
    (Trace.Rx_error
       { asn = my_asn t;
         peer = Asn.to_int from.Peer.asn;
         cls = "internal";
         stage = Errors.stage_name Errors.Pipeline;
         reason = Printexc.to_string exn })

let ingest ?(now = 0.) t ~from msg =
  try ingest_msg t ~now ~from msg with exn -> absorb t ~now ~from exn

let pending t = Pipeline.pending t.sched

let flush ?(now = 0.) t = Pipeline.drain t.sched ~f:(process t ~now)

(* The pipeline must never let an exception escape back into the session
   layer: a malformed or adversarial message can at worst damage its own
   route (RFC 7606's least-destructive-action principle), not tear down
   the speaker.  Anything a filter, decision module or factory throws is
   absorbed here and accounted as an internal error. *)
let receive ?(now = 0.) t ~from msg =
  try
    ingest_msg t ~now ~from msg;
    flush ~now t
  with exn ->
    absorb t ~now ~from exn;
    []

let originate ?(now = 0.) t (ia : Ia.t) =
  (* Local originations share attribute sets too: a speaker originating
     a million prefixes with one policy holds one attribute block. *)
  Option.iter Attr_table.release (Prefix.Map.find_opt ia.Ia.prefix t.local);
  let ia = Attr_table.share ia in
  t.local <- Prefix.Map.add ia.Ia.prefix ia t.local;
  Pipeline.mark t.sched ia.Ia.prefix;
  flush ~now t

(* Stop originating [prefix]: the decision process re-runs without the
   local route, withdrawing it from every peer (or falling back to a
   learned route).  This is how a hijacker stands down. *)
let withdraw_origin ?(now = 0.) t prefix =
  match Prefix.Map.find_opt prefix t.local with
  | Some ia ->
    Attr_table.release ia;
    t.local <- Prefix.Map.remove prefix t.local;
    Pipeline.mark t.sched prefix;
    flush ~now t
  | None -> []

(* Unconditionally re-derive the advertisements for [prefix] from the
   current Loc-RIB best.  Unlike {!reevaluate} (a no-op when the best
   route is unchanged) this re-runs the per-neighbor export decision, so
   it picks up an export-rule change: newly eligible peers get an
   announce, newly ineligible previously-announced peers get a
   withdraw. *)
let readvertise ?now:_ t prefix = distribute t prefix

let readvertise_all ?now:_ t =
  Loc_rib.fold (fun prefix _ acc -> distribute t prefix @ acc) t.loc []

(* ---------------- wire-level receive (RFC 7606 ladder) ---------------- *)

type rx_outcome =
  | Rx_accepted of int
  | Rx_filtered
  | Rx_withdrawn
  | Rx_session_error

let record_error t ~now ~from (e : Errors.t) =
  bump t (Errors.counter_name e.Errors.cls);
  Trace.emit t.trace ~at:now
    (Trace.Rx_error
       { asn = my_asn t;
         peer = Asn.to_int from.Peer.asn;
         cls = Errors.cls_name e.Errors.cls;
         stage = Errors.stage_name e.Errors.stage;
         reason = e.Errors.reason })

let receive_wire ?(now = 0.) ?(defer = false) t ~from bytes =
  (* [defer]: buffer into the pipeline instead of draining immediately —
     the batched network path flushes at MRAI boundaries. *)
  let rx msg =
    if defer then begin
      ingest ~now t ~from msg;
      []
    end
    else receive ~now t ~from msg
  in
  let treat_as_withdraw prefix e =
    record_error t ~now ~from e;
    (* Withdrawing through the ingest path (not [Adj_rib_in.remove]
       directly) keeps the resilience semantics: the peer's stale mark
       clears and, if a route existed, the damping penalty clock starts
       — a corrupted flap is still a flap. *)
    (Rx_withdrawn, rx (Withdraw prefix))
  in
  match Codec.decode_robust bytes with
  | Error e when e.Errors.cls = Errors.Session_reset ->
    record_error t ~now ~from e;
    (Rx_session_error, [])
  | Error e -> (
    (* Any non-reset verdict means the prefix itself decoded (only an
       unreadable prefix escalates to Session_reset), so we can re-read
       it and scope the damage to that one route. *)
    match Dbgp_wire.Reader.prefix (Dbgp_wire.Reader.of_string bytes) with
    | prefix -> treat_as_withdraw prefix e
    | exception _ ->
      record_error t ~now ~from
        { e with Errors.cls = Errors.Session_reset };
      (Rx_session_error, []) )
  | Ok (ia, discarded) ->
    List.iter (record_error t ~now ~from) discarded;
    if Ia.next_hop ia = None then
      (* Structurally valid but semantically unusable: without a BGP
         next hop the route cannot enter the FIB.  RFC 7606 maps this
         to treat-as-withdraw, not discard. *)
      treat_as_withdraw ia.Ia.prefix
        (Errors.make Errors.Treat_as_withdraw Errors.Semantic
           "missing BGP next-hop descriptor")
    else begin
      let rejected_before = Metrics.count (Metrics.counter t.obs "import.rejected") in
      let out = rx (Announce ia) in
      if Metrics.count (Metrics.counter t.obs "import.rejected") > rejected_before
      then (Rx_filtered, out)
      else (Rx_accepted (List.length discarded), out)
    end

(* Wire-level withdraw: the counterpart of {!receive_wire} for Withdraw
   messages, so faults (and adversaries) on the wire can hit the full
   message surface.  A withdraw carries only the prefix; if that decodes
   the damage is at worst a (possibly wrong-prefix) withdraw — already
   the least-destructive action — and an unreadable prefix escalates to
   Session_reset exactly like an unreadable announce prefix. *)
let receive_wire_withdraw ?(now = 0.) ?(defer = false) t ~from bytes =
  let rx msg =
    if defer then begin
      ingest ~now t ~from msg;
      []
    end
    else receive ~now t ~from msg
  in
  match Codec.decode_withdraw_robust bytes with
  | Error e ->
    record_error t ~now ~from e;
    (Rx_session_error, [])
  | Ok (prefix, discarded) ->
    List.iter (record_error t ~now ~from) discarded;
    (Rx_withdrawn, rx (Withdraw prefix))

(* Batched wire receive: one frame, many NLRI prefixes sharing one
   attribute block.  The whole batch is ingested before a single
   decision flush — the pipeline's dirty-prefix scheduler coalesces the
   work exactly as it does for a burst of single-prefix messages, minus
   the per-message flush overhead. *)
let receive_wire_batch ?(now = 0.) ?(defer = false) t ~from bytes =
  let rx_batch msgs =
    List.iter (fun m -> ingest ~now t ~from m) msgs;
    if defer then []
    else
      try flush ~now t
      with exn ->
        absorb t ~now ~from exn;
        []
  in
  match Codec.decode_batch_robust bytes with
  | Error e ->
    record_error t ~now ~from e;
    (Rx_session_error, [])
  | Ok (Codec.Batch_withdraw (prefixes, e)) ->
    (* Corrupted attribute block: RFC 7606 treat-as-withdraw scoped to
       the whole batch — every salvaged prefix loses its route. *)
    record_error t ~now ~from e;
    (Rx_withdrawn, rx_batch (List.map (fun p -> Withdraw p) prefixes))
  | Ok (Codec.Batch_routes (ias, discarded)) -> (
    List.iter (record_error t ~now ~from) discarded;
    match ias with
    | [] -> (Rx_accepted (List.length discarded), [])
    | head :: _ ->
      (* The IAs share one attribute set, so the semantic next-hop check
         is batch-wide: no usable next hop means no route in the batch
         can enter the FIB. *)
      if Ia.next_hop head = None then begin
        let e =
          Errors.make Errors.Treat_as_withdraw Errors.Semantic
            "missing BGP next-hop descriptor"
        in
        record_error t ~now ~from e;
        ( Rx_withdrawn,
          rx_batch (List.map (fun (ia : Ia.t) -> Withdraw ia.Ia.prefix) ias)
        )
      end
      else begin
        let rejected_before =
          Metrics.count (Metrics.counter t.obs "import.rejected")
        in
        let out = rx_batch (List.map (fun ia -> Announce ia) ias) in
        let rejected =
          Metrics.count (Metrics.counter t.obs "import.rejected")
          - rejected_before
        in
        if rejected >= List.length ias then (Rx_filtered, out)
        else (Rx_accepted (List.length discarded), out)
      end )

(* Batched withdraw frame: per-entry salvage, then one decision flush
   for every surviving prefix. *)
let receive_wire_withdraw_batch ?(now = 0.) ?(defer = false) t ~from bytes =
  let rx_batch msgs =
    List.iter (fun m -> ingest ~now t ~from m) msgs;
    if defer then []
    else
      try flush ~now t
      with exn ->
        absorb t ~now ~from exn;
        []
  in
  match Codec.decode_withdraw_batch_robust bytes with
  | Error e ->
    record_error t ~now ~from e;
    (Rx_session_error, [])
  | Ok (prefixes, discarded) ->
    List.iter (record_error t ~now ~from) discarded;
    (Rx_withdrawn, rx_batch (List.map (fun p -> Withdraw p) prefixes))

(* ---------------- session teardown ---------------- *)

(* Shared teardown: drop the peer's pipeline state and recompute the
   affected prefixes.  [forget_flaps] distinguishes a link-level session
   loss (damping memory survives — a flapping link must not reset its
   own penalties) from administrative removal (everything goes). *)
let teardown ~forget_flaps ~now t peer =
  (* Every route the peer contributed leaves the Adj-RIB-In at once;
     drop their attribute-set references before the wholesale drop. *)
  List.iter
    (fun p ->
      Option.iter Attr_table.release (Adj_rib_in.find t.rib_in ~peer p))
    (Adj_rib_in.prefixes_of t.rib_in ~peer);
  let affected = Adj_rib_in.drop_peer t.rib_in ~peer in
  Adj_rib_out.drop_peer t.rib_out ~peer;
  Adj_rib_out.leave t.rib_out ~peer;
  t.nbrs <- Peer.Map.remove peer t.nbrs;
  if forget_flaps then t.flap_state <- Peer.Map.remove peer t.flap_state;
  List.iter (Pipeline.mark t.sched) affected;
  flush ~now t

let peer_down ?(now = 0.) t peer = teardown ~forget_flaps:false ~now t peer

let remove_neighbor ?(now = 0.) t peer =
  teardown ~forget_flaps:true ~now t peer

(* Close a graceful-restart window: drop every route from [peer] that is
   still stale (never refreshed) and recompute the affected prefixes. *)
let flush_stale ?(now = 0.) t peer =
  let set = Adj_rib_in.take_stale t.rib_in ~peer in
  if Prefix.Set.is_empty set then []
  else begin
    let routes = Prefix.Set.cardinal set in
    Metrics.incr ~by:routes (Metrics.counter t.obs "restart.flushed");
    Trace.emit t.trace ~at:now
      (Trace.Restart_phase
         { asn = my_asn t;
           peer = Asn.to_int peer.Peer.asn;
           phase = "flushed";
           routes });
    Prefix.Set.iter
      (fun p ->
        Option.iter Attr_table.release (Adj_rib_in.find t.rib_in ~peer p);
        Adj_rib_in.remove t.rib_in ~peer p;
        Pipeline.mark t.sched p)
      set;
    flush ~now t
  end

let any_suppressed t prefix =
  Peer.Map.exists
    (fun _peer states ->
      match Prefix.Map.find_opt prefix states with
      | Some st -> Damping.currently_suppressed st
      | None -> false)
    t.flap_state

let reevaluate ?(now = 0.) t prefix =
  let was_suppressed = any_suppressed t prefix in
  let out = process t ~now prefix in
  (* A reuse timer is armed when a route first crosses into suppression;
     if the penalty kept accruing afterwards the route can still be
     suppressed when that timer fires — re-arm it for the updated reuse
     time so the route is never suppressed forever.  One event at the
     earliest reuse time covers every still-suppressed peer state for
     the prefix (the reevaluate it triggers re-arms again if needed);
     arming one per peer state multiplies events exponentially under
     sustained churn, when several states stay suppressed across
     firings. *)
  ( match t.damping with
    | None -> ()
    | Some p ->
      let earliest =
        Peer.Map.fold
          (fun _peer states acc ->
            match Prefix.Map.find_opt prefix states with
            | Some st when Damping.is_suppressed p st ~now ->
              let at = now +. Damping.time_to_reuse p st ~now in
              (match acc with Some e -> Some (Float.min e at) | None -> Some at)
            | _ -> acc)
          t.flap_state None
      in
      match earliest with
      | Some at -> t.reuse_events <- (prefix, at) :: t.reuse_events
      | None -> () );
  (* The loop above decayed every damping state for [prefix]; a route
     that was suppressed on entry and no longer is has come back into
     service. *)
  if was_suppressed && not (any_suppressed t prefix) then begin
    bump t "damping.reused";
    Trace.emit t.trace ~at:now
      (Trace.Damping_reuse { asn = my_asn t; prefix = Prefix.to_string prefix })
  end;
  out

let best t prefix = Loc_rib.find t.loc prefix
let best_routes t = Loc_rib.bindings t.loc

let set_change_hook t hook = t.change_hook <- hook

(* A compact digest of the current Loc-RIB state for one prefix: the
   identity of the chosen route (selecting peer's ASN) mixed with the
   encoded bytes of the outgoing IA.  [Codec.encode_cached] makes this
   nearly free on the hot path — the same physical IA hits the encode
   cache — and hashing the wire bytes (OCaml hashes strings in full)
   means any attribute difference a receiver could observe changes the
   fingerprint.  No route maps to 0. *)
let loc_fingerprint t prefix =
  match Loc_rib.find t.loc prefix with
  | None -> 0
  | Some c ->
    let via =
      match c.candidate.Decision_module.from_peer with
      | None -> -1
      | Some p -> Asn.to_int p.Peer.asn
    in
    let h = Hashtbl.hash (via, Codec.encode_cached c.outgoing) in
    if h = 0 then 1 else h
let next_hop_of t dest = Loc_rib.next_hop t.loc dest
let adj_out t peer = Adj_rib_out.bindings t.rib_out ~peer
let adj_out_peers t = Adj_rib_out.peers t.rib_out
let has_adj_in t peer = Adj_rib_in.has_routes t.rib_in ~peer
let candidates_for t prefix = Adj_rib_in.candidates t.rib_in prefix
let ia_db_size t = Adj_rib_in.size t.rib_in
