(** A D-BGP speaker: the full IA-processing pipeline of Figure 5.

    One speaker per AS (centralized control) or per border router
    (distributed control).  The pipeline on receipt of an IA:

    + global import filters — loop rejection, operator policy (stage 1);
    + the protocol extractor hands candidates to the active decision
      module for the prefix (stage 2), applying the module's import
      filter (stage 3);
    + the module selects a best path (stage 4);
    + on change, the IA factory builds the outgoing IA with pass-through
      (stage 6), modules contribute their control information (stage 5),
      and global export filters — island abstraction or membership
      declaration, legacy downgrade — run per neighbor (stage 7).

    Internally the speaker is an explicit three-stage RIB pipeline —
    {!Adj_rib_in} (per-peer post-import routes + stale marks), {!Loc_rib}
    (selected best + FIB), {!Adj_rib_out} (advertised state, peer groups,
    export cache) — connected by a dirty-prefix scheduler ({!Pipeline}).
    {!receive} ingests and drains immediately (eager, the historical
    behaviour); {!ingest} + {!flush} split the two so the session layer
    can batch many updates into one decision run per prefix.

    Speakers are pure with respect to I/O: {!receive}, {!originate} and
    {!peer_down} return the messages to transmit; the netsim session
    layer owns delivery. *)

type msg =
  | Announce of Ia.t
  | Withdraw of Dbgp_types.Prefix.t

type neighbor = {
  peer : Peer.t;
  relationship : Dbgp_bgp.Policy.relationship;
  import : Filters.t;      (** per-neighbor import policy *)
  export : Filters.t;      (** per-neighbor export policy *)
  dbgp_capable : bool;     (** false: strip IAs down to plain BGP *)
  same_island : bool;      (** true: skip island egress processing *)
}

val neighbor :
  ?import:Filters.t ->
  ?export:Filters.t ->
  ?dbgp_capable:bool ->
  ?same_island:bool ->
  relationship:Dbgp_bgp.Policy.relationship ->
  Peer.t ->
  neighbor

type config = {
  asn : Dbgp_types.Asn.t;
  addr : Dbgp_types.Ipv4.t;
  island : Dbgp_types.Island_id.t option;
  island_members : Dbgp_types.Asn.t list;
  hide_island_interior : bool;
  (** true: replace member ASes with the island ID at egress;
      false: list them and declare membership. *)
  passthrough : bool;
  (** The evolvability feature itself.  false = plain-BGP behaviour. *)
  global_import : Filters.t;
  global_export : Filters.t;
}

val config :
  ?island:Dbgp_types.Island_id.t ->
  ?island_members:Dbgp_types.Asn.t list ->
  ?hide_island_interior:bool ->
  ?passthrough:bool ->
  ?global_import:Filters.t ->
  ?global_export:Filters.t ->
  asn:Dbgp_types.Asn.t ->
  addr:Dbgp_types.Ipv4.t ->
  unit ->
  config

type t

val create : config -> t
val asn : t -> Dbgp_types.Asn.t
val addr : t -> Dbgp_types.Ipv4.t
val island_of : t -> Dbgp_types.Island_id.t option
val add_module : t -> Decision_module.t -> unit
(** Registers a decision module.  The BGP module is pre-registered. *)

val supported : t -> Dbgp_types.Protocol_id.Set.t

val set_active : t -> Dbgp_types.Prefix.t -> Dbgp_types.Protocol_id.t -> unit
(** Selects the active protocol for an address range (longest-match).
    Default for everything is BGP.
    @raise Invalid_argument if no module for the protocol is registered. *)

val active_for : t -> Dbgp_types.Prefix.t -> Dbgp_types.Protocol_id.t
val add_neighbor : t -> neighbor -> unit
(** Also places the neighbor in the peer group matching its egress
    identity (relationship, capability, island class, export filter). *)

val neighbors : t -> neighbor list
val has_neighbor : t -> Peer.t -> bool

val remove_neighbor : ?now:float -> t -> Peer.t -> (Peer.t * msg) list
(** Administrative removal: {!peer_down} plus erasure of the peer's
    flap-damping state.  Leaves no Adj-RIB-In routes, stale marks,
    Adj-RIB-Out state, group membership or damping memory behind
    (asserted by [Dbgp_eval.Invariants.peer_clean]). *)

val originate : ?now:float -> t -> Ia.t -> (Peer.t * msg) list
(** Injects a locally originated route (the IA as built by
    {!Ia.originate} plus any descriptors) and returns announcements.
    [now] is the simulation clock, used only by flap damping. *)

val withdraw_origin : ?now:float -> t -> Dbgp_types.Prefix.t -> (Peer.t * msg) list
(** Stops originating [prefix]: removes the local route, re-runs the
    decision process (falling back to any learned route) and returns the
    resulting withdrawals/announcements.  No-op if the prefix was not
    locally originated.  How a hijacker stands down. *)

val set_export_rule : t -> Dbgp_bgp.Policy.export_rule -> unit
(** Replace the relationship-keyed export gate (default
    {!Dbgp_bgp.Policy.valley_free}).  Takes effect on subsequent
    emissions only; call {!readvertise} / {!readvertise_all} to re-derive
    what has already been advertised.  [Policy.export_all] here is
    exactly a route leak. *)

val export_rule : t -> Dbgp_bgp.Policy.export_rule
(** The currently installed export gate. *)

val readvertise : ?now:float -> t -> Dbgp_types.Prefix.t -> (Peer.t * msg) list
(** Unconditionally re-derive the advertisements for [prefix] from the
    current Loc-RIB best — unlike {!reevaluate}, this re-runs the
    per-neighbor export decision even when the best route is unchanged,
    so it picks up an export-rule change: newly eligible peers get the
    announce, newly ineligible previously-announced peers a withdraw. *)

val readvertise_all : ?now:float -> t -> (Peer.t * msg) list
(** {!readvertise} for every Loc-RIB prefix. *)

val receive : ?now:float -> t -> from:Peer.t -> msg -> (Peer.t * msg) list
(** Never raises: an exception thrown anywhere in the pipeline (a filter,
    a decision module, the factory) is absorbed, counted as
    [errors.internal] and traced, and the message is dropped — a hostile
    update cannot tear down the speaker.  Byte-identical duplicate
    announcements are absorbed without re-running the decision process
    (counted as [updates.duplicate]). *)

val peer_down : ?now:float -> t -> Peer.t -> (Peer.t * msg) list
(** Session loss: drops the peer's pipeline state but — deliberately —
    retains its flap-damping memory, so a flapping link cannot reset its
    own penalties.  {!remove_neighbor} also forgets the damping state. *)

(** {1 Batched ingestion: the dirty-prefix pipeline}

    {!receive} = {!ingest} + {!flush}.  The batched network path defers
    the flush to MRAI boundaries: every update between two flushes only
    marks its prefix dirty, and {!flush} runs the decision process once
    per dirty prefix — coalescing redundant runs (counted as
    [pipeline.runs_saved]). *)

val ingest : ?now:float -> t -> from:Peer.t -> msg -> unit
(** Absorb one update into the Adj-RIB-In and mark its prefix dirty,
    without running the decision process.  Never raises (same absorption
    contract as {!receive}).  All arrival-time accounting — received /
    duplicate / rejected counters, stale-mark clearing, flap penalties —
    happens here. *)

val flush : ?now:float -> t -> (Peer.t * msg) list
(** Drain the dirty set: run best-path selection once per dirty prefix
    (ascending) and return every resulting emission. *)

val pending : t -> int
(** Dirty prefixes awaiting a {!flush}. *)

(** {1 Wire-level receive: RFC 7606-style error handling}

    {!receive_wire} is the adversarial-input entry point: it decodes raw
    bytes with {!Codec.decode_robust} and applies the revised-error-handling
    severity ladder — malformed descriptors are discarded individually,
    structural damage around a readable prefix becomes a withdrawal of
    that one route, and only an unreadable prefix is surfaced as a
    session-level error (the session layer decides whether to reset). *)

type rx_outcome =
  | Rx_accepted of int
      (** Route accepted; the int counts descriptors individually
          discarded as malformed ([Discard_attribute], usually 0). *)
  | Rx_filtered     (** Decoded fine but rejected by import policy. *)
  | Rx_withdrawn
      (** Treat-as-withdraw: the prefix was readable but the rest was
          not trustworthy, so any previous route from this peer for it
          was withdrawn (starting the damping penalty clock). *)
  | Rx_session_error
      (** Framing damage before the prefix; nothing could be salvaged. *)

val receive_wire :
  ?now:float ->
  ?defer:bool ->
  t ->
  from:Peer.t ->
  string ->
  rx_outcome * (Peer.t * msg) list
(** Feed one encoded announcement through the full pipeline.  Never
    raises; every error verdict is counted ([errors.discard_attribute],
    [errors.treat_as_withdraw], [errors.session_reset]) and traced as an
    [rx_error] event.  [defer] (default false) buffers into the
    dirty-prefix pipeline instead of draining immediately — the emission
    list is then always empty and the update takes effect at the next
    {!flush}. *)

val receive_wire_withdraw :
  ?now:float ->
  ?defer:bool ->
  t ->
  from:Peer.t ->
  string ->
  rx_outcome * (Peer.t * msg) list
(** Feed one encoded withdraw (see {!Codec.encode_withdraw}) through the
    pipeline — the Withdraw counterpart of {!receive_wire}, so wire
    faults cover the full message surface.  A readable prefix yields
    [Rx_withdrawn] (trailing garbage is discarded and counted); an
    unreadable prefix yields [Rx_session_error].  Never raises. *)

val receive_wire_batch :
  ?now:float ->
  ?defer:bool ->
  t ->
  from:Peer.t ->
  string ->
  rx_outcome * (Peer.t * msg) list
(** Feed one batched announce frame (see {!Codec.encode_batch}) through
    the pipeline.  The whole batch is ingested before a single decision
    flush.  Salvage follows {!Codec.decode_batch_robust}: a corrupted
    NLRI entry is discarded alone; a corrupted attribute block (or, the
    attributes being shared, a missing next hop) treats every salvaged
    prefix as withdrawn; only lost framing is [Rx_session_error].
    [Rx_filtered] means import policy rejected the entire batch.  Never
    raises. *)

val receive_wire_withdraw_batch :
  ?now:float ->
  ?defer:bool ->
  t ->
  from:Peer.t ->
  string ->
  rx_outcome * (Peer.t * msg) list
(** Feed one batched withdraw frame (see {!Codec.encode_withdraw_batch})
    through the pipeline: per-entry salvage, then one decision flush for
    every surviving prefix.  Never raises. *)

(** {1 Resilience: graceful restart (RFC 4724) and flap damping (RFC 2439)} *)

val peer_down_graceful : ?now:float -> t -> Peer.t -> unit
(** Session loss with restart capability: the peer's routes stay in the IA
    DB (and stay selectable) but are marked stale.  A fresh announcement
    or withdrawal clears the mark; {!flush_stale} drops the rest. *)

val flush_stale : ?now:float -> t -> Peer.t -> (Peer.t * msg) list
(** Close the restart window: drop the peer's still-stale routes and
    return the resulting withdrawals/announcements. *)

val refresh_peer : t -> Peer.t -> (Peer.t * msg) list
(** Re-advertise the current best routes to one (re-connected) neighbor,
    route-refresh style.  Idempotent at the receiver. *)

val sync_peer :
  ?limit:int ->
  ?cursor:Dbgp_types.Prefix.t ->
  t ->
  Peer.t ->
  (Peer.t * msg) list * Dbgp_types.Prefix.t option
(** Incremental/streaming table transfer on session (re)establish: walk
    up to [limit] Loc-RIB routes strictly above [cursor] (all of them,
    from the start, by default) and emit only the routes whose current
    emission differs from the peer's confirmed Adj-RIB-Out record —
    routes the peer provably already holds are skipped.  Returns the
    messages and the cursor to resume from; [None] means the transfer
    is complete and withdrawals for records no longer backed by a
    Loc-RIB route (including dropped-withdraw tombstones) have been
    appended.  With no records at all (a non-graceful teardown dropped
    them) this degenerates to a full-table send.  Counted under
    [sync.sent] / [sync.skipped] / [sync.withdrawn]. *)

val note_undelivered : t -> Peer.t -> Dbgp_types.Prefix.t -> unit
(** Transport feedback: the last message for the prefix toward the peer
    was dropped.  Demotes the Adj-RIB-Out record to unconfirmed (a
    dropped withdrawal leaves a tombstone) so {!sync_peer} re-sends
    it. *)

val end_of_rib : ?now:float -> t -> Peer.t -> int
(** End-of-RIB marker for a completed incremental transfer (RFC 4724
    §3): clear the peer's remaining stale marks {e without} dropping the
    routes — they are exactly the ones the sender skipped as confirmed.
    Returns the number retained (counted under [restart.retained]).
    Contrast {!flush_stale}, which drops what an expired restart window
    never refreshed. *)

val stale_count : t -> int
(** Routes currently retained as stale across all peers. *)

val is_stale : t -> Peer.t -> Dbgp_types.Prefix.t -> bool
val has_stale : t -> Peer.t -> bool

val set_damping : t -> Dbgp_bgp.Flap_damping.params option -> unit
(** Enable (or disable, with [None]) route-flap damping in the decision
    path.  @raise Invalid_argument on inconsistent thresholds. *)

val take_reuse_events : t -> (Dbgp_types.Prefix.t * float) list
(** Drain the (prefix, absolute time) re-evaluation obligations created
    when a route became suppressed; the runtime must call {!reevaluate}
    at each returned time. *)

val reevaluate : ?now:float -> t -> Dbgp_types.Prefix.t -> (Peer.t * msg) list
(** Re-run the decision process for a prefix (used when a suppressed
    route's penalty has decayed below the reuse threshold). *)

val suppressed : t -> now:float -> Peer.t -> Dbgp_types.Prefix.t -> bool
val flap_penalty : t -> now:float -> Peer.t -> Dbgp_types.Prefix.t -> float
val has_flap_state : t -> Peer.t -> bool

(** {1 Peer groups and the export cache}

    Neighbors with identical egress identity — relationship, capability,
    island class and (physically) the same export filter — share a peer
    group; the egress filter chain for a given source IA is computed once
    per group and fanned out ([pipeline.export_cache.hits] /
    [.misses]). *)

val export_group_of : t -> Peer.t -> int option
val export_group_count : t -> int

(** {1 Introspection} *)

type chosen = {
  candidate : Decision_module.candidate;  (** the selected incoming route *)
  outgoing : Ia.t;  (** the IA built for re-advertisement (pre per-neighbor filters) *)
  built_gen : int;
      (** module-configuration generation the outgoing IA was built under
          (internal build-memoization token) *)
  built_from : Decision_module.candidate list;
      (** the full post-import candidate list the build saw (internal
          build-memoization token: a module's [contribute] may depend on
          the losers, so reuse requires the whole set unchanged) *)
}

val best : t -> Dbgp_types.Prefix.t -> chosen option
val best_routes : t -> (Dbgp_types.Prefix.t * chosen) list

val set_change_hook : t -> (now:float -> Dbgp_types.Prefix.t -> unit) option -> unit
(** Install (or clear) a callback fired from [process] each time the
    Loc-RIB entry for a prefix actually changes — after the new state is
    committed, before redistribution.  The stability detector
    ({!Dbgp_eval.Stability}) subscribes through
    {!Dbgp_netsim.Network.set_change_feed}. *)

val loc_fingerprint : t -> Dbgp_types.Prefix.t -> int
(** Order-insensitive digest of the current Loc-RIB state for the
    prefix: hashes the selecting peer plus the encoded outgoing IA
    (cheap via the encode cache).  0 iff no route is installed. *)

val next_hop_of : t -> Dbgp_types.Ipv4.t -> Dbgp_types.Ipv4.t option
(** Longest-prefix-match FIB lookup: the neighbor address traffic to this
    destination should be forwarded to ([None] at the origin AS or when
    unreachable). *)

val adj_out : t -> Peer.t -> (Dbgp_types.Prefix.t * Ia.t) list
(** What we last announced to the peer. *)

val adj_out_peers : t -> Peer.t list
(** Peers with at least one currently advertised route. *)

val has_adj_in : t -> Peer.t -> bool
(** Whether the Adj-RIB-In still holds any route from the peer. *)

val candidates_for : t -> Dbgp_types.Prefix.t -> (Peer.t * Ia.t) list
(** Every received (post-global-import) IA for the prefix — the raw
    material replacement protocols' ingress translation modules consume
    (Section 3.3: borders translate the IAs they receive, not only the
    selected best). *)

val ia_db_size : t -> int

(** {1 Observability} *)

val metrics : t -> Dbgp_obs.Metrics.t
(** The speaker's own metrics registry.  Counters: [decision.runs],
    [decision.changes], [updates.received], [updates.duplicate],
    [withdrawals.received], [import.rejected], [damping.suppressed],
    [damping.reused], [restart.stale_marked], [restart.flushed], and the
    error-class counters [errors.discard_attribute],
    [errors.treat_as_withdraw], [errors.session_reset],
    [errors.internal].  Pipeline counters: [pipeline.dirty_marks],
    [pipeline.runs_saved], [pipeline.drains],
    [pipeline.export_cache.hits], [pipeline.export_cache.misses].
    Gauge: [decision.last_change_at] (simulation time of the last
    best-path change). *)

val trace : t -> Dbgp_obs.Trace.t
(** The speaker's event trace (decision runs, damping and restart
    phases, import rejections). *)

