open Dbgp_types
module W = Dbgp_wire.Writer
module R = Dbgp_wire.Reader

type t =
  | Int of int
  | Str of string
  | Bytes of string
  | Addr of Ipv4.t
  | Pfx of Prefix.t
  | Asn of Asn.t
  | List of t list
  | Pair of t * t

let int n = Int n
let str s = Str s
let bytes s = Bytes s
let addr a = Addr a
let pair a b = Pair (a, b)
let list l = List l

let as_int = function Int n -> Some n | _ -> None
let as_str = function Str s -> Some s | _ -> None
let as_bytes = function Bytes s -> Some s | _ -> None
let as_addr = function Addr a -> Some a | _ -> None
let as_list = function List l -> Some l | _ -> None
let as_pair = function Pair (a, b) -> Some (a, b) | _ -> None
let as_asn = function Asn a -> Some a | _ -> None

let rec compare a b =
  let tag = function
    | Int _ -> 0 | Str _ -> 1 | Bytes _ -> 2 | Addr _ -> 3
    | Pfx _ -> 4 | Asn _ -> 5 | List _ -> 6 | Pair _ -> 7
  in
  match (a, b) with
  | Int x, Int y -> Int.compare x y
  | Str x, Str y | Bytes x, Bytes y -> String.compare x y
  | Addr x, Addr y -> Ipv4.compare x y
  | Pfx x, Pfx y -> Prefix.compare x y
  | Asn x, Asn y -> Asn.compare x y
  | List x, List y -> List.compare compare x y
  | Pair (x1, x2), Pair (y1, y2) ->
    ( match compare x1 y1 with 0 -> compare x2 y2 | c -> c )
  | _ -> Int.compare (tag a) (tag b)

let equal a b = compare a b = 0

let rec pp ppf = function
  | Int n -> Format.pp_print_int ppf n
  | Str s -> Format.fprintf ppf "%S" s
  | Bytes s -> Format.fprintf ppf "<%d bytes>" (String.length s)
  | Addr a -> Ipv4.pp ppf a
  | Pfx p -> Prefix.pp ppf p
  | Asn a -> Asn.pp ppf a
  | List l ->
    Format.fprintf ppf "[%a]"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
         pp)
      l
  | Pair (a, b) -> Format.fprintf ppf "(%a, %a)" pp a pp b

let rec encode w = function
  | Int n ->
    W.u8 w 0;
    W.varint w n
  | Str s ->
    W.u8 w 1;
    W.delimited w s
  | Bytes s ->
    W.u8 w 2;
    W.delimited w s
  | Addr a ->
    W.u8 w 3;
    W.ipv4 w a
  | Pfx p ->
    W.u8 w 4;
    W.prefix w p
  | Asn a ->
    W.u8 w 5;
    W.asn w a
  | List l ->
    W.u8 w 6;
    W.list w encode l
  | Pair (a, b) ->
    W.u8 w 7;
    encode w a;
    encode w b

let rec decode r =
  match R.u8 r with
  | 0 -> Int (R.varint r)
  | 1 -> Str (R.delimited r)
  | 2 -> Bytes (R.delimited r)
  | 3 -> Addr (R.ipv4 r)
  | 4 -> Pfx (R.prefix r)
  | 5 -> Asn (R.asn r)
  | 6 -> List (R.list ~min_width:2 r decode) (* every value is >= tag + 1 byte *)
  | 7 ->
    let a = decode r in
    let b = decode r in
    Pair (a, b)
  | n -> raise (R.Error (Printf.sprintf "Value.decode: bad tag %d" n))

let wire_size v =
  let w = W.create () in
  encode w v;
  W.length w
