(* Adversary harness: blast-radius containment scoring.

   Every attack in the suite ({!Dbgp_adversary.Attack}) is launched on a
   converged network and scored by how far its poison spreads: the set of
   ASes whose data-plane walk toward the victim's destination newly
   passes through the attacker.  Each attack runs across three protocol
   arms — legacy BGP, D-BGP (pass-through on), and D-BGP with the
   BGPSec-like critical fix (per-hop attestations + ROA-style origin
   authorization) — on both a BRITE and a CAIDA-style topology, all
   driven by one seed so the full report is byte-reproducible. *)

open Dbgp_types
module Ia = Dbgp_core.Ia
module Value = Dbgp_core.Value
module Speaker = Dbgp_core.Speaker
module Network = Dbgp_netsim.Network
module Event_queue = Dbgp_netsim.Event_queue
module Graph = Dbgp_topology.As_graph
module Brite = Dbgp_topology.Brite
module Caida = Dbgp_topology.Caida
module Policy = Dbgp_bgp.Policy
module Bgpsec = Dbgp_protocols.Bgpsec_like
module Attack = Dbgp_adversary.Attack
module Metrics = Dbgp_obs.Metrics
module Snapshot = Dbgp_obs.Snapshot

type arm = Legacy | Dbgp | Dbgp_bgpsec

let arms = [ Legacy; Dbgp; Dbgp_bgpsec ]

let arm_name = function
  | Legacy -> "legacy"
  | Dbgp -> "dbgp"
  | Dbgp_bgpsec -> "dbgp_bgpsec"

type topo = Brite | Caida

let topos = [ Brite; Caida ]
let topo_name = function Brite -> "brite" | Caida -> "caida"

type config = {
  seed : int;
  brite_ases : int;
  caida_ases : int;
  budget : int option;  (* per-phase event budget; None = run to quiescence *)
}

let default = { seed = 42; brite_ases = 30; caida_ases = 40; budget = None }

type outcome = {
  topo : topo;
  arm : arm;
  attack : Attack.t;
  ases : int;
  control_clean : bool;
      (* converged honest state: invariants hold, every applicable
         detection predicate is silent *)
  baseline_via : int;   (* ASes already routing via the attacker pre-attack *)
  poisoned : int;       (* ASes newly routing via the attacker under attack *)
  blast_radius : float; (* poisoned / (ases - 1) *)
  time_to_poison : float;
      (* last decision change among poisoned ASes, relative to launch *)
  detections : int;
      (* violations the attack's detection predicate reports under attack *)
  detection_applicable : bool;
      (* false when the arm cannot see the attack at all (legacy BGP
         strips the foreign descriptors the D-BGP attacks target) *)
  claims_containment : bool;
      (* the BGPSec-like arm claims to contain the three hijack classes *)
  contained : bool;     (* poisoned = 0 *)
  time_to_recover : float;
      (* last decision change among poisoned ASes, relative to stand-down *)
  recovered_clean : bool;
      (* post-recovery state is indistinguishable from control *)
  censored : bool;      (* some phase stopped on its event budget *)
}

type report = { config : config; outcomes : outcome list; healthy : bool }

let victim = Asn.of_int 1
let prefix = Prefix.of_string "99.0.0.0/24"
let dest = Ipv4.of_string "99.0.0.1"

(* The pass-through payload the victim attaches at origination: a foreign
   (Wiser) descriptor no transit AS understands, which Section 3.2
   promises arrives verbatim — the thing {!Attack.Passthrough_tamper}
   strips. *)
let tamper_field = "cost"
let tamper_value = Value.Int 7

let secret i = "k" ^ string_of_int i

let graph_of cfg = function
  | Brite ->
    Brite.generate (Prng.create cfg.seed)
      { Brite.default with Brite.n = cfg.brite_ases }
  | Caida ->
    Caida.generate (Prng.create cfg.seed)
      { Caida.default with Caida.n = cfg.caida_ases; Caida.tier1 = 4 }

(* Everyone's key is public knowledge and the ROA ground truth says the
   victim owns its prefix and everything inside it. *)
let pki a = Some (secret (Asn.to_int a))
let authorized p o = (not (Prefix.subsumes prefix p)) || Asn.equal o victim

let build cfg topo arm =
  let g = graph_of cfg topo in
  let net = Network.create () in
  let n = Graph.size g in
  let dbgp = arm <> Legacy in
  for i = 0 to n - 1 do
    let s = Harness.add_as net ~passthrough:dbgp (i + 1) in
    if arm = Dbgp_bgpsec then begin
      Speaker.add_module s
        (Bgpsec.decision_module
           { Bgpsec.me = Asn.of_int (i + 1);
             secret = secret (i + 1);
             pki;
             require_full = true;
             authorized = Some authorized });
      Speaker.set_active s prefix Bgpsec.protocol
    end
  done;
  Graph.fold_edges
    (fun a b view () ->
      let rel =
        match view with
        | Graph.Customer_of_me -> Policy.To_customer
        | Graph.Provider_of_me -> Policy.To_provider
        | Graph.Peer_of_me -> Policy.To_peer
      in
      Network.link net ~a_dbgp:dbgp ~b_dbgp:dbgp ~a:(Asn.of_int (a + 1))
        ~b:(Asn.of_int (b + 1)) ~b_is:rel ())
    g ();
  (net, g)

let origin_ia arm =
  let ia =
    Ia.originate ~prefix ~origin_asn:victim
      ~next_hop:(Network.speaker_addr victim) ()
  in
  let ia =
    Ia.set_path_descriptor ~owners:[ Attack.tamper_proto ] ~field:tamper_field
      tamper_value ia
  in
  if arm = Dbgp_bgpsec then Bgpsec.sign_origin ~secret:(secret 1) ~me:victim ia
  else ia

(* Deterministic attacker selection from the graph (victim is index 0):
   hijacks come from the highest stub not adjacent to the victim (so a
   forged attacker–victim adjacency is checkably false); the leak from
   the highest AS with two non-customer attachments (so there is a
   valley to export across); the interposer attacks get a graph-only
   fallback here (highest transit AS) but are normally assigned by
   [most_transited] on the converged network. *)
let pick_attacker g kind =
  let n = Graph.size g in
  let adjacent_to_victim i =
    List.exists (fun (j, _) -> j = 0) (Graph.neighbors g i)
  in
  let last pred =
    let rec go i best =
      if i >= n then best else go (i + 1) (if i > 0 && pred i then Some i else best)
    in
    go 1 None
  in
  let fallback = n - 1 in
  let idx =
    match kind with
    | Attack.Origin_hijack | Attack.Subprefix_hijack
    | Attack.Forged_path_hijack -> (
      match
        last (fun i -> Graph.customers g i = [] && not (adjacent_to_victim i))
      with
      | Some i -> i
      | None -> (
        match last (fun i -> Graph.customers g i = []) with
        | Some i -> i
        | None -> fallback ) )
    | Attack.Route_leak -> (
      match
        last (fun i ->
            List.length (Graph.providers g i) + List.length (Graph.peers g i)
            >= 2)
      with
      | Some i -> i
      | None -> fallback )
    | Attack.Island_forgery | Attack.Passthrough_tamper -> (
      match last (fun i -> Graph.customers g i <> []) with
      | Some i -> i
      | None -> fallback )
  in
  Asn.of_int (idx + 1)

(* The ASes (other than the attacker) whose data-plane walk toward the
   destination passes through or ends at the attacker.  Loops and dead
   ends count as "not via". *)
let via_attacker net attacker =
  List.filter
    (fun a ->
      let rec go seen a =
        if Asn.equal a attacker then true
        else if List.exists (Asn.equal a) seen then false
        else
          match Speaker.next_hop_of (Network.speaker net a) dest with
          | None -> false
          | Some nh -> (
            match Network.asn_of_addr net nh with
            | None -> false
            | Some next -> go (a :: seen) next )
      in
      (not (Asn.equal a attacker)) && go [] a)
    (Network.asns net)

(* The AS the most other ASes route through toward the destination —
   where a tampering transit attacker does the most damage.  Computed on
   the converged network (deterministic; ties break to the higher ASN). *)
let most_transited net =
  fst
    (List.fold_left
       (fun (best, n) a ->
         if Asn.equal a victim then (best, n)
         else
           let v = List.length (via_attacker net a) in
           if v > n || (v = n && Asn.to_int a > Asn.to_int best) then (a, v)
           else (best, n))
       (victim, -1) (Network.asns net))

let last_change net a =
  Metrics.value
    (Metrics.gauge (Speaker.metrics (Network.speaker net a))
       "decision.last_change_at")

(* The attack's detection predicate over current network state; [None]
   when the arm cannot express the check (legacy BGP strips the foreign
   descriptors before any speaker could inspect them). *)
let detect net arm (a : Attack.t) =
  match a.Attack.kind with
  | Attack.Origin_hijack | Attack.Subprefix_hijack ->
    Some
      (Invariants.origin_mismatches net ~prefix ~owner:victim
      @ Invariants.forged_candidates net ~prefix:(Attack.poisoned_prefix a)
          ~owner:victim)
  | Attack.Forged_path_hijack ->
    Some
      (Invariants.forged_adjacencies net ~prefix
      @ Invariants.forged_candidates net ~prefix:(Attack.poisoned_prefix a)
          ~owner:victim)
  | Attack.Route_leak -> Some (Invariants.valley_violations net)
  | Attack.Island_forgery ->
    if arm = Legacy then None
    else
      Some
        (Invariants.forged_island_descriptors net ~prefix
           ~island:Attack.forged_island ~proto:Attack.forged_proto
           ~field:Attack.forged_field ~expected:None)
  | Attack.Passthrough_tamper ->
    if arm = Legacy then None
    else
      let r =
        Invariants.check
          ~expect_descriptor:(Attack.tamper_proto, tamper_field, tamper_value)
          ~prefix ~dest net
      in
      Some
        (List.filter
           (function Invariants.Passthrough_mutated _ -> true | _ -> false)
           r.Invariants.violations)

let detection_count net arm a =
  match detect net arm a with None -> 0 | Some vs -> List.length vs

let state_clean net arm a =
  let expect_descriptor =
    if arm = Legacy then None
    else Some (Attack.tamper_proto, tamper_field, tamper_value)
  in
  Invariants.ok (Invariants.check ?expect_descriptor ~prefix ~dest net)
  && (match detect net arm a with None -> true | Some vs -> vs = [])
  (* Predicates for the other attack classes must be silent too: honest
     state carries no forged descriptors, valleys or fake origins. *)
  && Invariants.origin_mismatches net ~prefix ~owner:victim = []
  && Invariants.valley_violations net = []
  && Invariants.forged_adjacencies net ~prefix = []
  && Invariants.forged_candidates net ~prefix ~owner:victim = []
  && Invariants.forged_candidates net ~prefix:(Attack.poisoned_prefix a)
       ~owner:victim
     = []

let run_scenario cfg topo arm kind =
  let net, g = build cfg topo arm in
  let n = Graph.size g in
  Network.set_mrai net 0.;
  (* Phase 1: converge the honest world and check it is clean. *)
  Network.originate net victim (origin_ia arm);
  let s0 = Network.run ?max_events:cfg.budget net in
  let attacker =
    (* The interposer attacks only matter at an AS that actually carries
       others' traffic, so those pick their compromised AS from the
       converged network rather than the bare graph. *)
    match kind with
    | Attack.Island_forgery | Attack.Passthrough_tamper -> most_transited net
    | _ -> pick_attacker g kind
  in
  let attack = { Attack.kind; attacker; victim; prefix } in
  let control_clean = state_clean net arm attack in
  let b0 = via_attacker net attack.Attack.attacker in
  (* Phase 2: launch, reconverge, score the blast. *)
  let t_attack = Event_queue.now (Network.queue net) in
  Attack.launch net attack;
  let s1 = Network.run ?max_events:cfg.budget net in
  let b1 = via_attacker net attack.Attack.attacker in
  let poisoned =
    List.filter (fun a -> not (List.exists (Asn.equal a) b0)) b1
  in
  let detections = detection_count net arm attack in
  let time_to_poison =
    List.fold_left
      (fun acc a -> Float.max acc (last_change net a -. t_attack))
      0. poisoned
  in
  (* Phase 3: stand down, reconverge, check the damage heals. *)
  let t_down = Event_queue.now (Network.queue net) in
  Attack.stand_down net attack;
  let s2 = Network.run ?max_events:cfg.budget net in
  let b2 = via_attacker net attack.Attack.attacker in
  let recovered_clean =
    state_clean net arm attack
    && List.for_all (fun a -> List.exists (Asn.equal a) b0) b2
  in
  let time_to_recover =
    List.fold_left
      (fun acc a -> Float.max acc (last_change net a -. t_down))
      0. poisoned
  in
  { topo;
    arm;
    attack;
    ases = n;
    control_clean;
    baseline_via = List.length b0;
    poisoned = List.length poisoned;
    blast_radius = float_of_int (List.length poisoned) /. float_of_int (n - 1);
    time_to_poison;
    detections;
    detection_applicable = detect net arm attack <> None;
    claims_containment = arm = Dbgp_bgpsec && Attack.is_hijack kind;
    contained = poisoned = [];
    time_to_recover;
    recovered_clean;
    censored =
      s0.Network.exhausted || s1.Network.exhausted || s2.Network.exhausted }

(* The BGPSec-like arm must beat legacy on hijacks: strictly smaller
   aggregate hijack blast radius, on every topology.  (Aggregate, not
   per-variant: a forged 2-hop path can already be longer than every
   real path on a shallow topology, leaving legacy blast at zero with
   nothing left to contain.) *)
let hijack_dominance outcomes =
  List.for_all
    (fun t ->
      let sum arm =
        List.fold_left
          (fun acc o ->
            if
              o.topo = t && o.arm = arm
              && Attack.is_hijack o.attack.Attack.kind
            then acc +. o.blast_radius
            else acc)
          0. outcomes
      in
      sum Dbgp_bgpsec < sum Legacy)
    topos

let healthy_of outcomes =
  List.for_all
    (fun o ->
      (not o.censored) && o.control_clean && o.recovered_clean
      && ((not o.claims_containment) || (o.contained && o.blast_radius = 0.))
      && ((not o.detection_applicable) || o.detections > 0))
    outcomes
  && hijack_dominance outcomes

let run cfg =
  let outcomes =
    List.concat_map
      (fun topo ->
        List.concat_map
          (fun kind -> List.map (fun arm -> run_scenario cfg topo arm kind) arms)
          Attack.all)
      topos
  in
  { config = cfg; outcomes; healthy = healthy_of outcomes }

let outcome_to_snapshot o =
  Snapshot.Obj
    [ ("topology", Snapshot.String (topo_name o.topo));
      ("arm", Snapshot.String (arm_name o.arm));
      ("attack", Snapshot.String (Attack.name o.attack.Attack.kind));
      ("attacker", Snapshot.Int (Asn.to_int o.attack.Attack.attacker));
      ("victim", Snapshot.Int (Asn.to_int o.attack.Attack.victim));
      ("ases", Snapshot.Int o.ases);
      ("control_clean", Snapshot.Bool o.control_clean);
      ("baseline_via_attacker", Snapshot.Int o.baseline_via);
      ("poisoned", Snapshot.Int o.poisoned);
      ("blast_radius", Snapshot.Float o.blast_radius);
      ("time_to_poison", Snapshot.Float o.time_to_poison);
      ("detections", Snapshot.Int o.detections);
      ("detection_applicable", Snapshot.Bool o.detection_applicable);
      ("claims_containment", Snapshot.Bool o.claims_containment);
      ("contained", Snapshot.Bool o.contained);
      ("time_to_recover", Snapshot.Float o.time_to_recover);
      ("recovered_clean", Snapshot.Bool o.recovered_clean);
      ("censored", Snapshot.Bool o.censored) ]

let to_snapshot r =
  Snapshot.Obj
    [ ("seed", Snapshot.Int r.config.seed);
      ("brite_ases", Snapshot.Int r.config.brite_ases);
      ("caida_ases", Snapshot.Int r.config.caida_ases);
      ("scenarios", Snapshot.List (List.map outcome_to_snapshot r.outcomes));
      ("healthy", Snapshot.Bool r.healthy) ]

let pp_outcome ppf o =
  Format.fprintf ppf
    "%-5s %-11s %-18s attacker=%-4d blast=%.3f (%d/%d poisoned, %d baseline) \
     detect=%s poison_t=%.1f recover_t=%.1f%s%s%s"
    (topo_name o.topo) (arm_name o.arm)
    (Attack.name o.attack.Attack.kind)
    (Asn.to_int o.attack.Attack.attacker)
    o.blast_radius o.poisoned (o.ases - 1) o.baseline_via
    (if o.detection_applicable then string_of_int o.detections else "n/a")
    o.time_to_poison o.time_to_recover
    (if o.claims_containment then (if o.contained then " [contained]" else " [CONTAINMENT BROKEN]") else "")
    (if o.control_clean && o.recovered_clean then "" else " [UNCLEAN]")
    (if o.censored then " [censored]" else "")

let pp_report ppf r =
  Format.fprintf ppf "@[<v>adversary suite seed=%d (%d scenarios):@,"
    r.config.seed
    (List.length r.outcomes);
  List.iter (fun o -> Format.fprintf ppf "%a@," pp_outcome o) r.outcomes;
  Format.fprintf ppf "healthy=%b@]" r.healthy
