(** Adversary harness: blast-radius containment scoring.

    Runs every attack class in {!Dbgp_adversary.Attack} — the three
    prefix-hijack variants, the valley-free route leak, and the two
    D-BGP-specific tampering attacks — across three protocol arms:

    - {!Legacy}: plain BGP (no pass-through, foreign descriptors are
      stripped at every hop);
    - {!Dbgp}: D-BGP with pass-through, no cryptographic protection;
    - {!Dbgp_bgpsec}: D-BGP plus the BGPSec-like critical fix with
      per-hop attestations ([require_full]) and ROA-style origin
      authorization — the arm that claims to {e contain} hijacks.

    Each scenario converges an honest network, verifies every detection
    predicate is silent ([control_clean]), launches the attack, scores
    the blast radius — the fraction of other ASes whose data-plane walk
    toward the victim's destination {e newly} crosses the attacker — and
    the detection count, then stands the attacker down and verifies the
    network heals ([recovered_clean]).  Everything derives from one seed:
    the same config produces a byte-identical report snapshot. *)

type arm = Legacy | Dbgp | Dbgp_bgpsec

val arms : arm list
val arm_name : arm -> string

type topo = Brite | Caida

val topos : topo list
val topo_name : topo -> string

type config = {
  seed : int;
  brite_ases : int;
  caida_ases : int;
  budget : int option;  (** per-phase event budget; [None] = quiescence *)
}

val default : config
(** seed 42, 30-AS BRITE and 40-AS CAIDA-style graphs, no budget. *)

type outcome = {
  topo : topo;
  arm : arm;
  attack : Dbgp_adversary.Attack.t;
  ases : int;
  control_clean : bool;
      (** honest converged state passes all invariants and every
          applicable detection predicate is silent *)
  baseline_via : int;
      (** ASes legitimately routing through the attacker pre-attack *)
  poisoned : int;
      (** ASes whose walk toward the destination newly crosses the
          attacker under attack *)
  blast_radius : float;  (** [poisoned / (ases - 1)] *)
  time_to_poison : float;
      (** latest decision change among poisoned ASes, relative to launch *)
  detections : int;
      (** violations the attack's detection predicate reports *)
  detection_applicable : bool;
      (** false when the arm cannot see the attack (legacy BGP strips
          the descriptors the D-BGP attacks forge or tamper with) *)
  claims_containment : bool;
      (** BGPSec-like arm × hijack: the combination the critical fix
          claims to contain — [healthy] requires blast radius 0 here *)
  contained : bool;  (** [poisoned = 0] *)
  time_to_recover : float;
      (** latest decision change among previously poisoned ASes,
          relative to stand-down *)
  recovered_clean : bool;
      (** post-recovery state passes the control checks again and nobody
          newly routes via the attacker *)
  censored : bool;  (** a phase stopped on its event budget *)
}

type report = { config : config; outcomes : outcome list; healthy : bool }
(** [healthy] = every scenario has clean control and recovery phases, no
    censoring, every containment claim holds with zero blast radius,
    every applicable detection predicate fired under attack, and the
    BGPSec-like arm shows strictly smaller aggregate hijack blast radius
    than legacy on every topology. *)

val run : config -> report
(** The full suite: every topology × attack × arm. *)

val run_scenario :
  config -> topo -> arm -> Dbgp_adversary.Attack.kind -> outcome
(** One scenario on a fresh network (deterministic in [config.seed]). *)

val to_snapshot : report -> Dbgp_obs.Snapshot.t
(** JSON-ready; byte-identical across runs with the same config. *)

val pp_outcome : Format.formatter -> outcome -> unit
val pp_report : Format.formatter -> report -> unit
