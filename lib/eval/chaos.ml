(* Chaos harness: seeded fault schedules over BRITE topologies.

   Each run builds a random AS graph, converges it, then subjects it to a
   chaos phase — probabilistic message loss, latency jitter and scheduled
   link flaps — with graceful restart and route-flap damping active, and
   finally checks the resilience invariants: every AS reconverges onto a
   route, no stale (restart-retained) route outlives its window, and the
   data plane is loop-free.  Everything is driven by one seed, so the same
   seed reproduces the same run event for event. *)

open Dbgp_types
module Speaker = Dbgp_core.Speaker
module Network = Dbgp_netsim.Network
module Event_queue = Dbgp_netsim.Event_queue
module Fault_model = Dbgp_netsim.Fault_model
module Session = Dbgp_netsim.Session
module Graph = Dbgp_topology.As_graph
module Brite = Dbgp_topology.Brite
module Damping = Dbgp_bgp.Flap_damping

type config = {
  seed : int;
  ases : int;
  loss : float;            (* per-message loss probability during chaos *)
  corruption : float;      (* per-message wire-corruption probability *)
  duplicate : float;       (* per-message duplicate-delivery probability *)
  reorder : float;         (* per-message reorder (extra-delay) probability *)
  latency_jitter : float;  (* max extra per-message latency, seconds *)
  flaps : int;             (* scheduled link flaps *)
  flap_start : float;      (* chaos-phase offset of the first flap *)
  flap_spacing : float;    (* gap between successive flap starts *)
  down_time : float;       (* how long each flapped link stays down *)
  mrai : float;
  graceful_window : float option;
  damping : Damping.params option;
  budget : int option;     (* per-phase event budget; None = run to quiescence *)
}

let default =
  { seed = 42;
    ases = 60;
    loss = 0.05;
    corruption = 0.02;
    duplicate = 0.02;
    reorder = 0.05;
    latency_jitter = 0.3;
    flaps = 4;
    flap_start = 50.;
    flap_spacing = 40.;
    down_time = 15.;
    mrai = 0.;
    graceful_window = Some 10.;
    damping =
      (* A fast-decaying profile so suppression and reuse both happen
         within the run's time scale. *)
      Some { Damping.default with Damping.half_life = 5. };
    budget = None }

type report = {
  config : config;
  initial : Network.stats;
  final : Network.stats;
  flapped : (int * int) list;  (* links taken down and restored *)
  dropped : int;               (* messages lost to faults, total *)
  reconverged : bool;          (* nothing reachable pre-chaos lost its route *)
  baseline_unreachable : int;  (* ASes valley-free policy never reaches *)
  unreachable : int;           (* ASes with no route after the chaos phase *)
  stale_leaks : int;           (* stale routes surviving past all windows *)
  forwarding_loops : int;      (* ASes whose data-plane walk cycles *)
  sessions_restored : bool;    (* all flapped links are back up *)
  corrupted : int;             (* wire corruptions injected *)
  corruption_survived : int;   (* corrupted messages the codec absorbed *)
  error_verdicts : (string * int) list;
  (* RFC 7606 error-class counters summed across speakers, by class name *)
  invariants : Invariants.report;  (* post-chaos safety-invariant check *)
  censored : bool;
  (* a phase stopped on its event budget with work still queued — every
     "final" number below is a truncation point, not a quiescent state *)
  convergence_p50 : float;     (* per-speaker last-change-time percentiles *)
  convergence_p90 : float;
  convergence_p99 : float;
  churn_per_flap : float;      (* chaos-phase messages per link flap *)
  obs : Dbgp_obs.Snapshot.t;   (* the full network snapshot, JSON-ready *)
}

let prefix = Prefix.of_string "99.0.0.0/24"
let dest = Ipv4.of_string "99.0.0.1"

let build cfg =
  let rng = Prng.create cfg.seed in
  let g = Brite.generate rng { Brite.default with Brite.n = cfg.ases } in
  let net = Network.create () in
  for i = 0 to Graph.size g - 1 do
    ignore (Harness.add_as net (i + 1))
  done;
  let edges =
    Graph.fold_edges
      (fun a b view acc ->
        let rel =
          match view with
          | Graph.Customer_of_me -> Dbgp_bgp.Policy.To_customer
          | Graph.Provider_of_me -> Dbgp_bgp.Policy.To_provider
          | Graph.Peer_of_me -> Dbgp_bgp.Policy.To_peer
        in
        Network.link net ~a:(Asn.of_int (a + 1)) ~b:(Asn.of_int (b + 1))
          ~b_is:rel ();
        (a + 1, b + 1) :: acc)
      g []
  in
  (net, List.rev edges, rng)

(* Follow FIB next hops from [asn] toward the destination; a revisited AS
   means a forwarding loop. *)
let walk_loops net asn =
  let rec go seen a =
    if List.mem a seen then true
    else
      match Speaker.next_hop_of (Network.speaker net a) dest with
      | None -> false
      | Some nh ->
        ( match Network.asn_of_addr net nh with
          | None -> false
          | Some next -> go (a :: seen) next )
  in
  go [] asn

let origin_ia () =
  Dbgp_core.Ia.originate ~prefix ~origin_asn:(Asn.of_int 1)
    ~next_hop:(Network.speaker_addr (Asn.of_int 1)) ()

let unreachable_set net =
  List.filter
    (fun a ->
      (not (Asn.equal a (Asn.of_int 1)))
      && Speaker.best (Network.speaker net a) prefix = None)
    (Network.asns net)

let run_with_net cfg =
  let net, edges, rng = build cfg in
  Network.set_mrai net cfg.mrai;
  Network.set_graceful_restart net cfg.graceful_window;
  Network.set_damping net cfg.damping;
  Network.originate net (Asn.of_int 1) (origin_ia ());
  let initial = Network.run ?max_events:cfg.budget net in
  (* Valley-free policy can leave some stub ASes without a route even in
     a fault-free world; they are the baseline the post-chaos state is
     measured against, not a chaos casualty. *)
  let baseline = unreachable_set net in

  (* Chaos phase: loss + jitter live from now until the last recovery,
     flaps spread over the schedule.  All times are relative to the
     converged clock so events never land in the past. *)
  let now = Event_queue.now (Network.queue net) in
  let flapped =
    Array.to_list
      (Prng.sample rng (min cfg.flaps (List.length edges))
         (Array.of_list edges))
  in
  let last_up =
    now +. cfg.flap_start
    +. (float_of_int (max 0 (List.length flapped - 1)) *. cfg.flap_spacing)
    +. cfg.down_time
  in
  let fault = Fault_model.create ~seed:(cfg.seed + 1) () in
  Fault_model.set_loss ~from:now ~until:last_up fault cfg.loss;
  Fault_model.set_jitter fault cfg.latency_jitter;
  Fault_model.set_corruption fault cfg.corruption;
  Fault_model.set_duplicate fault cfg.duplicate;
  Fault_model.set_reorder fault cfg.reorder;
  Network.set_fault_model net fault;
  List.iteri
    (fun i (a, b) ->
      let down_at = now +. cfg.flap_start +. (float_of_int i *. cfg.flap_spacing) in
      Network.schedule_flap net ~down_at ~up_at:(down_at +. cfg.down_time)
        (Asn.of_int a) (Asn.of_int b))
    flapped;
  (* Mid-chaos refresh: flap recovery alone produces a withdrawal-heavy
     phase, so push a full re-advertisement wave through the still-live
     fault window — that is where wire corruption, duplicate delivery and
     reordering meet real announce traffic.  Any treat-as-withdraw
     casualties are repaired by the post-window sweep below. *)
  Event_queue.schedule_at (Network.queue net)
    ~time:(now +. (cfg.flap_start /. 2.))
    (fun () -> Network.refresh_all net);
  (* Recovery sweep once the loss window has closed: lossy delivery can
     leave adj-out and adj-in views divergent, exactly what a BGP route
     refresh repairs. *)
  Event_queue.schedule_at (Network.queue net)
    ~time:(last_up +. (2. *. cfg.flap_spacing))
    (fun () -> Network.refresh_all net);
  let final = Network.run ?max_events:cfg.budget net in

  let unreachable = unreachable_set net in
  let forwarding_loops =
    List.length (List.filter (walk_loops net) (Network.asns net))
  in
  let times = Network.convergence_times net in
  let pct q = Dbgp_obs.Snapshot.percentile times q in
  let churn_per_flap =
    let flaps = List.length flapped in
    if flaps = 0 then 0.
    else
      float_of_int (final.Network.messages - initial.Network.messages)
      /. float_of_int flaps
  in
  let invariants = Invariants.check ~prefix ~dest net in
  let net_counter name =
    match Dbgp_obs.Metrics.find_counter (Network.metrics net) name with
    | Some c -> Dbgp_obs.Metrics.count c
    | None -> 0
  in
  let error_verdicts =
    List.map
      (fun cls ->
        let name = Dbgp_core.Errors.counter_name cls in
        (name, Network.counter_total net name))
      Dbgp_core.Errors.all_classes
  in
  let obs =
    match Network.snapshot ~recent_events:20 net with
    | Dbgp_obs.Snapshot.Obj fields ->
      Dbgp_obs.Snapshot.Obj
        (fields @ [ ("invariants", Invariants.to_snapshot invariants) ])
    | other -> other
  in
  { config = cfg;
    initial;
    final;
    flapped;
    dropped = final.Network.dropped;
    reconverged =
      List.for_all (fun a -> List.exists (Asn.equal a) baseline) unreachable;
    baseline_unreachable = List.length baseline;
    unreachable = List.length unreachable;
    stale_leaks = Network.stale_total net;
    forwarding_loops;
    sessions_restored =
      List.for_all
        (fun (a, b) -> Network.link_up net (Asn.of_int a) (Asn.of_int b))
        flapped;
    convergence_p50 = pct 0.5;
    convergence_p90 = pct 0.9;
    convergence_p99 = pct 0.99;
    churn_per_flap;
    censored = initial.Network.exhausted || final.Network.exhausted;
    corrupted = net_counter "net.corruption.injected";
    corruption_survived = net_counter "net.corruption.survived";
    error_verdicts;
    invariants;
    obs },
  net

let run cfg = fst (run_with_net cfg)

let healthy r =
  (* A censored run proves nothing: the invariants were checked against a
     truncation point, not a quiescent network. *)
  (not r.censored) && r.reconverged && r.stale_leaks = 0
  && r.forwarding_loops = 0 && r.sessions_restored
  && Invariants.ok r.invariants

(* Session-level chaos: point-to-point FSM sessions with auto-reconnect,
   repeatedly losing their transport.  With retry configured every pair
   must climb back to Established through the backoff schedule. *)

type session_report = {
  pairs : int;
  drops : int;
  established : int;  (* pairs fully Established at the end *)
  retries : int;      (* connect-retry timers armed across all endpoints *)
  budget_exhausted : bool;
  (* the bounded run stopped on its event budget with work still queued
     (expected here: keepalive timers re-arm forever) *)
}

let session_chaos ?(pairs = 8) ?(drops = 3) ~seed () =
  let q = Event_queue.create () in
  let retry = { Dbgp_bgp.Fsm.default_retry with Dbgp_bgp.Fsm.seed } in
  let cfg asn id : Dbgp_bgp.Fsm.config =
    { Dbgp_bgp.Fsm.my_asn = Asn.of_int asn;
      my_id = Ipv4.of_octets 10 1 0 id;
      hold_time = 90;
      capabilities = [ Dbgp_bgp.Message.capability_dbgp ] }
  in
  let endpoints =
    List.init pairs (fun i ->
        let a, b =
          Session.create q
            ~retry:{ retry with Dbgp_bgp.Fsm.seed = seed + (2 * i) }
            ~a:(cfg (64500 + (2 * i)) (2 * i))
            ~b:(cfg (64501 + (2 * i)) ((2 * i) + 1))
            ()
        in
        Session.start a;
        Session.start b;
        (a, b))
  in
  (* Scripted transport failures, spaced out so each re-establishment
     completes before the next drop. *)
  for round = 1 to drops do
    Event_queue.schedule_at q ~time:(float_of_int (round * 200)) (fun () ->
        List.iter (fun (a, _) -> Session.drop_connection a) endpoints)
  done;
  (* Keepalive timers re-arm forever; bound the run instead of draining. *)
  ignore (Event_queue.run ~max_events:(pairs * drops * 400) q);
  let budget_exhausted = Event_queue.budget_exhausted q in
  let established =
    List.length
      (List.filter
         (fun (a, b) ->
           Session.state a = Dbgp_bgp.Fsm.Established
           && Session.state b = Dbgp_bgp.Fsm.Established)
         endpoints)
  in
  let retries =
    List.fold_left
      (fun acc (a, b) -> acc + Session.retry_count a + Session.retry_count b)
      0 endpoints
  in
  { pairs; drops; established; retries; budget_exhausted }

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>chaos seed=%d ases=%d loss=%.2f flaps=%d:@,\
     initial: %d msgs, converged t=%.1f@,\
     final:   %d msgs, %d dropped, quiet t=%.1f@,\
     reconverged=%b unreachable=%d (baseline %d) stale=%d loops=%d \
     restored=%b censored=%b@,\
     corruption: %d injected, %d survived; verdicts:%a@,\
     %a@,\
     convergence p50=%.1f p90=%.1f p99=%.1f; churn %.1f msgs/flap@]"
    r.config.seed r.config.ases r.config.loss (List.length r.flapped)
    r.initial.Network.messages r.initial.Network.converged_at
    r.final.Network.messages r.dropped r.final.Network.converged_at
    r.reconverged r.unreachable r.baseline_unreachable r.stale_leaks
    r.forwarding_loops r.sessions_restored r.censored
    r.corrupted r.corruption_survived
    (fun ppf vs ->
      List.iter (fun (k, v) -> Format.fprintf ppf " %s=%d" k v) vs)
    r.error_verdicts Invariants.pp r.invariants
    r.convergence_p50 r.convergence_p90 r.convergence_p99 r.churn_per_flap

let pp_session_report ppf r =
  Format.fprintf ppf
    "session chaos: %d pairs, %d drops -> %d re-established, %d retries%s"
    r.pairs r.drops r.established r.retries
    (if r.budget_exhausted then " (event budget exhausted)" else "")
