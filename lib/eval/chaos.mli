(** Chaos harness: seeded fault schedules over BRITE topologies.

    Converges a random topology, then runs a chaos phase — probabilistic
    message loss, latency jitter and scheduled link flaps — with graceful
    restart and route-flap damping active, and checks the resilience
    invariants afterwards.  Fully deterministic per seed. *)

type config = {
  seed : int;
  ases : int;
  loss : float;            (** per-message loss probability during chaos *)
  corruption : float;      (** per-message wire-corruption probability *)
  duplicate : float;       (** per-message duplicate-delivery probability *)
  reorder : float;         (** per-message reorder (extra-delay) probability *)
  latency_jitter : float;  (** max extra per-message latency, seconds *)
  flaps : int;             (** scheduled link flaps *)
  flap_start : float;      (** chaos-phase offset of the first flap *)
  flap_spacing : float;    (** gap between successive flap starts *)
  down_time : float;       (** how long each flapped link stays down *)
  mrai : float;
  graceful_window : float option;
  damping : Dbgp_bgp.Flap_damping.params option;
  budget : int option;
      (** per-phase event budget; [None] (the default) runs each phase to
          quiescence.  A run that hits the budget is {e censored}: its
          report carries [censored = true] and {!healthy} is false, since
          the invariants were checked against a truncation point. *)
}

val default : config

type report = {
  config : config;
  initial : Dbgp_netsim.Network.stats;
  final : Dbgp_netsim.Network.stats;
  flapped : (int * int) list;  (** links taken down and restored *)
  dropped : int;               (** messages lost to faults, total *)
  reconverged : bool;          (** nothing reachable pre-chaos lost its route *)
  baseline_unreachable : int;  (** ASes valley-free policy never reaches *)
  unreachable : int;           (** ASes with no route after the chaos phase *)
  stale_leaks : int;           (** stale routes surviving past all windows *)
  forwarding_loops : int;      (** ASes whose data-plane walk cycles *)
  sessions_restored : bool;    (** all flapped links are back up *)
  corrupted : int;             (** wire corruptions injected *)
  corruption_survived : int;   (** corrupted messages the codec absorbed *)
  error_verdicts : (string * int) list;
  (** RFC 7606 error-class counters summed across speakers, by counter
      name ([errors.discard_attribute], [errors.treat_as_withdraw],
      [errors.session_reset]) *)
  invariants : Invariants.report;  (** post-chaos safety-invariant check *)
  censored : bool;
  (** a phase stopped on its event budget with work still queued — the
      final stats are a truncation point, not a quiescent state *)
  convergence_p50 : float;     (** per-speaker last-change-time percentiles *)
  convergence_p90 : float;
  convergence_p99 : float;
  churn_per_flap : float;      (** chaos-phase messages per link flap *)
  obs : Dbgp_obs.Snapshot.t;   (** the full network snapshot, JSON-ready *)
}

val run : config -> report

val run_with_net : config -> report * Dbgp_netsim.Network.t
(** Like {!run} but also returns the (quiesced) network, so callers can
    fingerprint or inspect final per-speaker state — the differential
    harness uses this to prove change-equivalence across refactors. *)

val healthy : report -> bool
(** Not censored, reconverged, no stale leaks, loop-free, all flapped
    links restored, and every post-chaos safety invariant holds
    ({!Invariants.ok}).  A censored run is never healthy: exhausting the
    budget mid-run proves nothing about the quiescent state. *)

type session_report = {
  pairs : int;
  drops : int;
  established : int;  (** pairs fully Established at the end *)
  retries : int;      (** connect-retry timers armed across all endpoints *)
  budget_exhausted : bool;
  (** the bounded run stopped on its event budget with work still queued
      (expected here: keepalive timers re-arm forever) *)
}

val session_chaos : ?pairs:int -> ?drops:int -> seed:int -> unit -> session_report
(** FSM-level chaos: [pairs] point-to-point sessions with auto-reconnect
    each lose their transport [drops] times; with retry configured every
    pair must climb back to Established through the backoff schedule. *)

val pp_report : Format.formatter -> report -> unit
val pp_session_report : Format.formatter -> session_report -> unit
