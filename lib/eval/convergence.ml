open Dbgp_types
module Speaker = Dbgp_core.Speaker
module Ia = Dbgp_core.Ia
module Value = Dbgp_core.Value
module Network = Dbgp_netsim.Network
module Session = Dbgp_netsim.Session
module Graph = Dbgp_topology.As_graph
module Brite = Dbgp_topology.Brite

(* Build a simulated network mirroring an As_graph: node i becomes
   AS (i+1), relationships preserved. *)
let network_of_graph g =
  let net = Network.create () in
  let n = Graph.size g in
  for i = 0 to n - 1 do
    ignore (Harness.add_as net (i + 1))
  done;
  Graph.fold_edges
    (fun a b view_of_b_from_a () ->
      let rel =
        match view_of_b_from_a with
        | Graph.Customer_of_me -> Dbgp_bgp.Policy.To_customer
        | Graph.Provider_of_me -> Dbgp_bgp.Policy.To_provider
        | Graph.Peer_of_me -> Dbgp_bgp.Policy.To_peer
      in
      Network.link net ~a:(Asn.of_int (a + 1)) ~b:(Asn.of_int (b + 1)) ~b_is:rel ())
    g ();
  net

let payload_proto =
  Protocol_id.register ~kind:Protocol_id.Critical_fix "convergence-fix"

let origin_ia ?(payload_bytes = 0) asn_int =
  let asn = Asn.of_int asn_int in
  let ia =
    Ia.originate
      ~prefix:(Prefix.of_string "99.0.0.0/24")
      ~origin_asn:asn ~next_hop:(Network.speaker_addr asn) ()
  in
  if payload_bytes = 0 then ia
  else
    Ia.set_path_descriptor ~owners:[ payload_proto ] ~field:"cf-payload"
      (Value.Bytes (String.make payload_bytes 'c'))
      ia

type dissemination = {
  ases : int;
  payload_bytes : int;
  messages : int;
  bytes : int;
  converged_at : float;
}

let vs_size ?(payloads = [ 0; 4096 ]) ?(sizes = [ 50; 100; 200 ]) ~seed () =
  List.concat_map
    (fun ases ->
      List.map
        (fun payload_bytes ->
          let g =
            Brite.generate (Prng.create seed) { Brite.default with Brite.n = ases }
          in
          let net = network_of_graph g in
          Network.originate net (Asn.of_int 1) (origin_ia ~payload_bytes 1);
          let stats = Network.run net in
          { ases;
            payload_bytes;
            messages = stats.Network.messages;
            bytes = stats.Network.announce_bytes;
            converged_at = stats.Network.converged_at })
        payloads)
    sizes

(* Full observability pass over one dissemination: run a topology to
   convergence and read the per-speaker registries back out — message and
   byte totals, decision-process activity, and the distribution of
   per-speaker convergence times. *)
type observed = {
  ases : int;
  censored : bool;
  messages : int;
  announce_bytes : int;
  decision_runs : int;
  decision_changes : int;
  p50 : float;
  p90 : float;
  p99 : float;
  snapshot : Dbgp_obs.Snapshot.t;
}

let observe ?(ases = 100) ?(recent_events = 20) ?budget ~seed () =
  let g = Brite.generate (Prng.create seed) { Brite.default with Brite.n = ases } in
  let net = network_of_graph g in
  Network.originate net (Asn.of_int 1) (origin_ia 1);
  let stats = Network.run ?max_events:budget net in
  let times = Network.convergence_times net in
  let pct q = Dbgp_obs.Snapshot.percentile times q in
  { ases;
    censored = stats.Network.exhausted;
    messages = stats.Network.messages;
    announce_bytes = stats.Network.announce_bytes;
    decision_runs = Network.counter_total net "decision.runs";
    decision_changes = Network.counter_total net "decision.changes";
    p50 = pct 0.5;
    p90 = pct 0.9;
    p99 = pct 0.99;
    snapshot = Network.snapshot ~recent_events net }

type failure = {
  initial_messages : int;
  reconvergence_messages : int;
  still_reachable : bool;
}

let after_failure ?(ases = 100) ~seed () =
  let g = Brite.generate (Prng.create seed) { Brite.default with Brite.n = ases } in
  let net = network_of_graph g in
  Network.originate net (Asn.of_int 1) (origin_ia 1);
  let s1 = Network.run net in
  (* Fail the origin-side link of some AS that routes via a multi-hop
     path, then reconverge. *)
  let prefix = Prefix.of_string "99.0.0.0/24" in
  (* Prefer a victim that holds an alternate candidate, so the
     experiment exercises recovery rather than disconnection. *)
  let victim =
    List.find_map
      (fun n ->
        let asn = Asn.of_int (n + 1) in
        let sp = Network.speaker net asn in
        match Speaker.best sp prefix with
        | Some chosen ->
          ( match chosen.Speaker.candidate.Dbgp_core.Decision_module.from_peer with
            | Some p
              when (not (Asn.equal p.Dbgp_core.Peer.asn (Asn.of_int 1)))
                   && List.length (Speaker.candidates_for sp prefix) >= 2 ->
              Some (asn, p.Dbgp_core.Peer.asn)
            | _ -> None )
        | None -> None)
      (List.init (Graph.size g) Fun.id)
  in
  match victim with
  | None ->
    { initial_messages = s1.Network.messages; reconvergence_messages = 0;
      still_reachable = true }
  | Some (v, via) ->
    Network.fail_link net v via;
    let s2 = Network.run net in
    { initial_messages = s1.Network.messages;
      reconvergence_messages = s2.Network.messages - s1.Network.messages;
      still_reachable = Speaker.best (Network.speaker net v) prefix <> None }

type reset = {
  prefixes : int;
  payload_bytes : int;
  handshake_messages : int;
  initial_transfer_bytes : int;
  reset_transfer_bytes : int;
}

let session_reset ?(prefixes = 200) ?(payload_bytes = 0) () =
  let q = Dbgp_netsim.Event_queue.create () in
  let cfg asn id : Dbgp_bgp.Fsm.config =
    { Dbgp_bgp.Fsm.my_asn = Asn.of_int asn; my_id = Ipv4.of_string id;
      hold_time = 90;
      capabilities = [ Dbgp_bgp.Message.capability_dbgp ] }
  in
  let a, b = Session.create q ~a:(cfg 64501 "10.0.0.1") ~b:(cfg 64502 "10.0.0.2") () in
  Session.start a;
  Session.start b;
  ignore (Dbgp_netsim.Event_queue.run ~max_events:100 q);
  let handshake_messages = Session.messages_sent a + Session.messages_sent b in
  assert (Session.state a = Dbgp_bgp.Fsm.Established);
  let table =
    Workload.generate (Workload.spec ~payload_bytes ~advertisements:prefixes ())
  in
  let transfer () =
    let before = Session.bytes_sent a in
    List.iter (Session.send_ia a) table;
    ignore (Dbgp_netsim.Event_queue.run ~max_events:(prefixes * 4) q);
    Session.bytes_sent a - before
  in
  let initial = transfer () in
  (* Session reset: transport failure, re-establish, full table again. *)
  Session.drop_connection a;
  ignore (Dbgp_netsim.Event_queue.run ~max_events:100 q);
  Session.start a;
  Session.start b;
  ignore (Dbgp_netsim.Event_queue.run ~max_events:100 q);
  let again = transfer () in
  { prefixes; payload_bytes; handshake_messages;
    initial_transfer_bytes = initial; reset_transfer_bytes = again }

let pp_dissemination ppf (d : dissemination) =
  Format.fprintf ppf
    "%4d ASes, %5d B payload: %6d msgs, %9d bytes, converged at t=%.1f"
    d.ases d.payload_bytes d.messages d.bytes d.converged_at

let pp_observed ppf o =
  Format.fprintf ppf
    "%4d ASes: %6d msgs, %9d bytes, %d runs / %d changes, \
     convergence p50=%.1f p90=%.1f p99=%.1f%s"
    o.ases o.messages o.announce_bytes o.decision_runs o.decision_changes
    o.p50 o.p90 o.p99
    (if o.censored then " [censored: event budget exhausted]" else "")

let pp_failure ppf f =
  Format.fprintf ppf
    "initial %d msgs; +%d msgs to reconverge after failure; reachable: %b"
    f.initial_messages f.reconvergence_messages f.still_reachable

let pp_reset ppf r =
  Format.fprintf ppf
    "%4d prefixes at %5d B: handshake %d msgs, transfer %d B, after reset %d B"
    r.prefixes r.payload_bytes r.handshake_messages r.initial_transfer_bytes
    r.reset_transfer_bytes
