(** Convergence-cost experiments (Section 3.5, "Potential concerns").

    The paper argues D-BGP should not worsen convergence, with two
    caveats: larger IAs make post-session-reset full-table transfers more
    expensive, and islands switching protocols too often would behave
    like link flaps.  These experiments quantify all three effects on
    our substrate:

    - {!vs_size}: messages and simulated convergence time to disseminate
      one prefix over growing Waxman topologies, with and without a
      large critical-fix descriptor attached;
    - {!after_failure}: re-convergence cost when a link on the best path
      fails;
    - {!session_reset}: a full-table transfer over a real FSM-driven
      session, BGP-only vs with IA payloads — the wire-byte
      amplification of resets. *)

val network_of_graph : Dbgp_topology.As_graph.t -> Dbgp_netsim.Network.t
(** Build a simulated network mirroring an As_graph: node [i] becomes
    AS [i+1], relationships preserved.  Shared with the stability
    controls. *)

type dissemination = {
  ases : int;
  payload_bytes : int;
  messages : int;
  bytes : int;
  converged_at : float;
}

val vs_size :
  ?payloads:int list -> ?sizes:int list -> seed:int -> unit -> dissemination list
(** Defaults: payloads [0; 4096], sizes [50; 100; 200]. *)

type observed = {
  ases : int;
  censored : bool;
  (** the run stopped on its event budget with work still queued — every
      number below is a truncation point, not a converged state *)
  messages : int;
  announce_bytes : int;
  decision_runs : int;     (** decision-process executions, all speakers *)
  decision_changes : int;  (** runs that changed a best path *)
  p50 : float;             (** convergence-time percentiles across speakers *)
  p90 : float;
  p99 : float;
  snapshot : Dbgp_obs.Snapshot.t;  (** the full network snapshot *)
}

val observe :
  ?ases:int -> ?recent_events:int -> ?budget:int -> seed:int -> unit -> observed
(** Converge one dissemination (default 100 ASes) and read the
    observability layer back out: message/byte totals from the network
    registry, decision-process activity summed over the per-speaker
    registries, and exact convergence-time percentiles.  [recent_events]
    (default 20, 0 to omit) bounds the trace section of the snapshot.
    [budget] (default unbounded) caps simulator events; a capped run that
    stops early is reported with [censored = true]. *)

type failure = {
  initial_messages : int;
  reconvergence_messages : int;
  still_reachable : bool;  (** the far AS found an alternate path *)
}

val after_failure : ?ases:int -> seed:int -> unit -> failure

type reset = {
  prefixes : int;
  payload_bytes : int;
  handshake_messages : int;   (** session establishment cost *)
  initial_transfer_bytes : int;
  reset_transfer_bytes : int; (** the re-sent full table after the reset *)
}

val session_reset :
  ?prefixes:int -> ?payload_bytes:int -> unit -> reset

val pp_dissemination : Format.formatter -> dissemination -> unit
val pp_observed : Format.formatter -> observed -> unit
val pp_failure : Format.formatter -> failure -> unit
val pp_reset : Format.formatter -> reset -> unit
