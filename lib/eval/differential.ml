(* Differential test harness: seeded workloads with golden fingerprints.

   Each scenario drives speakers through a deterministic, seeded workload
   and folds everything observable — the ordered message transcript, the
   final best routes, the FIB and the Adj-RIB-Out views — into MD5
   digests.  The digests recorded against the pre-pipeline speaker are
   committed as golden transcripts (test/golden_differential.txt); the
   refactored speaker must reproduce them byte for byte, proving the
   staged RIB pipeline is change-equivalent: same best paths, same
   emitted messages.

   The transcript digest covers the *ordered* message sequence, which is
   strictly stronger than the message-multiset equivalence the
   acceptance criteria ask for. *)

open Dbgp_types
module Speaker = Dbgp_core.Speaker
module Peer = Dbgp_core.Peer
module Codec = Dbgp_core.Codec
module Ia = Dbgp_core.Ia
module Filters = Dbgp_core.Filters
module Damping = Dbgp_bgp.Flap_damping

type digest = {
  scenario : string;
  steps : int;      (* workload steps executed *)
  messages : int;   (* messages recorded in the transcript *)
  transcript_md5 : string;
  state_md5 : string;
}

let scenarios = [ "relay-line"; "hub-policy"; "chaos-30" ]

(* ------------------------------------------------------------------ *)
(* Fingerprinting                                                      *)
(* ------------------------------------------------------------------ *)

let addr_of a = Ipv4.of_octets 10 0 ((a lsr 8) land 0xFF) (a land 0xFF)
let peer_of a = Peer.make ~asn:(Asn.of_int a) ~addr:(addr_of a)

let msg_enc = function
  | Speaker.Announce ia -> "A" ^ Codec.encode ia
  | Speaker.Withdraw p -> "W" ^ Prefix.to_string p

(* Everything the refactor must preserve about final speaker state:
   best routes (candidate and outgoing IAs, byte-encoded), the FIB next
   hop for every workload prefix, and the per-neighbor Adj-RIB-Out. *)
let state_digest speakers prefixes =
  let b = Buffer.create 4096 in
  List.iter
    (fun (ai, s) ->
      Buffer.add_string b (Printf.sprintf "AS%d\n" ai);
      List.iter
        (fun (p, (c : Speaker.chosen)) ->
          let via =
            match c.Speaker.candidate.Dbgp_core.Decision_module.from_peer with
            | None -> -1
            | Some pr -> Asn.to_int pr.Peer.asn
          in
          Buffer.add_string b (Printf.sprintf "B %s %d " (Prefix.to_string p) via);
          Buffer.add_string b
            (Codec.encode c.Speaker.candidate.Dbgp_core.Decision_module.ia);
          Buffer.add_string b (Codec.encode c.Speaker.outgoing);
          Buffer.add_char b '\n')
        (Speaker.best_routes s);
      List.iter
        (fun p ->
          let nh =
            match Speaker.next_hop_of s (Prefix.network p) with
            | None -> "-"
            | Some a -> Ipv4.to_string a
          in
          Buffer.add_string b
            (Printf.sprintf "F %s %s\n" (Prefix.to_string p) nh))
        prefixes;
      List.iter
        (fun (n : Speaker.neighbor) ->
          List.iter
            (fun (p, ia) ->
              Buffer.add_string b
                (Printf.sprintf "O %d %s "
                   (Asn.to_int n.Speaker.peer.Peer.asn)
                   (Prefix.to_string p));
              Buffer.add_string b (Codec.encode ia);
              Buffer.add_char b '\n')
            (Speaker.adj_out s n.Speaker.peer))
        (Speaker.neighbors s))
    speakers;
  Digest.to_hex (Digest.string (Buffer.contents b))

(* ------------------------------------------------------------------ *)
(* A miniature relay network at the speaker level: FIFO delivery, no    *)
(* latency model, every hand-off recorded in the transcript.            *)
(* ------------------------------------------------------------------ *)

type mini = {
  mutable clock : float;
  speakers : (int * Speaker.t) list; (* by ASN, ascending *)
  mutable links : (int * int) list;  (* normalized, a < b *)
  q : (int * int * Speaker.msg) Queue.t;
  buf : Buffer.t;
  mutable messages : int;
}

let norm a b = if a < b then (a, b) else (b, a)
let linked m a b = List.mem (norm a b) m.links
let speaker_of m a = List.assoc a m.speakers

let log_msg m tag ~from ~to_ msg =
  Buffer.add_string m.buf (Printf.sprintf "%s %d>%d %s\n" tag from to_ (msg_enc msg));
  m.messages <- m.messages + 1

let enqueue m ~from outbox =
  List.iter
    (fun ((peer : Peer.t), msg) ->
      let to_ = Asn.to_int peer.Peer.asn in
      if linked m from to_ then begin
        log_msg m "tx" ~from ~to_ msg;
        (* Peers without a simulated speaker (the hub scenario's synthetic
           neighbors) still appear in the transcript; only simulated ones
           get the message delivered. *)
        if List.mem_assoc to_ m.speakers then Queue.add (from, to_, msg) m.q
      end)
    outbox

let relay m =
  let budget = ref 200_000 in
  while not (Queue.is_empty m.q) do
    decr budget;
    if !budget < 0 then failwith "Differential.relay: no quiescence";
    let from, to_, msg = Queue.pop m.q in
    log_msg m "rx" ~from ~to_ msg;
    let s = speaker_of m to_ in
    let out = Speaker.receive ~now:m.clock s ~from:(peer_of from) msg in
    enqueue m ~from:to_ out
  done

(* Drain damping reuse obligations to quiescence, reevaluating each
   suppressed prefix at its scheduled reuse time (ordered). *)
let drain_reuse m =
  List.iter
    (fun (ai, s) ->
      let budget = ref 1_000 in
      let rec go () =
        decr budget;
        if !budget < 0 then failwith "Differential.drain_reuse: no quiescence";
        match
          List.sort compare
            (List.map (fun (p, at) -> (at, p)) (Speaker.take_reuse_events s))
        with
        | [] -> ()
        | evs ->
          List.iter
            (fun (at, p) ->
              let now = Float.max at m.clock in
              enqueue m ~from:ai (Speaker.reevaluate ~now s p))
            evs;
          relay m;
          go ()
      in
      go ())
    m.speakers

let mk_speaker ?(damping = None) a =
  let s =
    Speaker.create
      (Speaker.config ~asn:(Asn.of_int a) ~addr:(addr_of a) ())
  in
  Speaker.set_damping s damping;
  s

(* Install both neighbor entries for an AS pair.  [rel_of_b] is b's
   relationship as seen from a (To_customer = b is a's customer). *)
let connect m ?(a_export = Filters.accept) ?(b_export = Filters.accept)
    ?(b_dbgp = true) a b rel_of_b =
  let inv : Dbgp_bgp.Policy.relationship -> Dbgp_bgp.Policy.relationship =
    function
    | Dbgp_bgp.Policy.To_customer -> Dbgp_bgp.Policy.To_provider
    | Dbgp_bgp.Policy.To_provider -> Dbgp_bgp.Policy.To_customer
    | Dbgp_bgp.Policy.To_peer -> Dbgp_bgp.Policy.To_peer
  in
  Speaker.add_neighbor (speaker_of m a)
    (Speaker.neighbor ~export:a_export ~dbgp_capable:b_dbgp
       ~relationship:rel_of_b (peer_of b));
  Speaker.add_neighbor (speaker_of m b)
    (Speaker.neighbor ~export:b_export ~relationship:(inv rel_of_b)
       (peer_of a));
  m.links <- norm a b :: m.links

let disconnect m a b =
  m.links <- List.filter (fun l -> l <> norm a b) m.links

let finish name ~steps ~prefixes m =
  { scenario = name;
    steps;
    messages = m.messages;
    transcript_md5 = Digest.to_hex (Digest.string (Buffer.contents m.buf));
    state_md5 = state_digest m.speakers prefixes }

(* ------------------------------------------------------------------ *)
(* Scenario 1: a 6-AS line with a mid-line link cut and recovery.       *)
(* Multi-hop dissemination, valley-free policy, a legacy (BGP-only)     *)
(* edge and a membership-stripping export filter all on the path.       *)
(* ------------------------------------------------------------------ *)

let run_relay_line seed =
  let rng = Prng.create seed in
  let ases = [ 1; 2; 3; 4; 5; 6 ] in
  let m =
    { clock = 0.;
      speakers = List.map (fun a -> (a, mk_speaker a)) ases;
      links = [];
      q = Queue.create ();
      buf = Buffer.create 4096;
      messages = 0 }
  in
  let strip_membership ia = Some { ia with Ia.membership = [] } in
  connect m 1 2 Dbgp_bgp.Policy.To_provider;
  connect m 2 3 Dbgp_bgp.Policy.To_provider ~a_export:strip_membership;
  connect m 3 4 Dbgp_bgp.Policy.To_peer;
  connect m 4 5 Dbgp_bgp.Policy.To_customer;
  connect m 5 6 Dbgp_bgp.Policy.To_customer ~b_dbgp:false;
  let originations =
    List.map (fun i -> (1, Printf.sprintf "10.1.%d.0/24" i)) [ 0; 1; 2; 3 ]
    @ List.map (fun i -> (6, Printf.sprintf "10.6.%d.0/24" i)) [ 0; 1 ]
  in
  let order = Array.of_list originations in
  Prng.shuffle rng order;
  let steps = ref 0 in
  Array.iter
    (fun (origin, p) ->
      incr steps;
      m.clock <- m.clock +. 1.;
      let prefix = Prefix.of_string p in
      let ia =
        Ia.originate ~prefix ~origin_asn:(Asn.of_int origin)
          ~next_hop:(addr_of origin) ()
      in
      Buffer.add_string m.buf (Printf.sprintf "originate %d %s\n" origin p);
      enqueue m ~from:origin (Speaker.originate ~now:m.clock (speaker_of m origin) ia);
      relay m)
    order;
  (* Cut the mid-line peering link: both sides lose the session and the
     withdrawal wave propagates outward. *)
  incr steps;
  m.clock <- m.clock +. 1.;
  Buffer.add_string m.buf "cut 3-4\n";
  disconnect m 3 4;
  let out3 = Speaker.peer_down ~now:m.clock (speaker_of m 3) (peer_of 4) in
  let out4 = Speaker.peer_down ~now:m.clock (speaker_of m 4) (peer_of 3) in
  enqueue m ~from:3 out3;
  enqueue m ~from:4 out4;
  relay m;
  (* Recover it and resynchronize route-refresh style. *)
  incr steps;
  m.clock <- m.clock +. 1.;
  Buffer.add_string m.buf "recover 3-4\n";
  connect m 3 4 Dbgp_bgp.Policy.To_peer;
  enqueue m ~from:3 (Speaker.refresh_peer (speaker_of m 3) (peer_of 4));
  enqueue m ~from:4 (Speaker.refresh_peer (speaker_of m 4) (peer_of 3));
  relay m;
  finish "relay-line" ~steps:!steps
    ~prefixes:(List.map (fun (_, p) -> Prefix.of_string p) originations)
    m

(* ------------------------------------------------------------------ *)
(* Scenario 2: a policy-rich hub under seeded announce/withdraw churn   *)
(* with flap damping, graceful restart and a route refresh.  Exercises  *)
(* duplicate absorption, import rejection (loops), suppression and      *)
(* reuse, and the per-neighbor egress matrix.                           *)
(* ------------------------------------------------------------------ *)

let run_hub_policy seed =
  let rng = Prng.create (seed + 1) in
  let hub = 100 in
  let damping = Some { Damping.default with Damping.half_life = 5. } in
  let m =
    { clock = 0.;
      speakers = [ (hub, mk_speaker ~damping hub) ];
      links = [];
      q = Queue.create ();
      buf = Buffer.create 4096;
      messages = 0 }
  in
  let s = speaker_of m hub in
  let nbr ?import ?export ?dbgp_capable rel a =
    m.links <- norm hub a :: m.links;
    Speaker.add_neighbor s
      (Speaker.neighbor ?import ?export ?dbgp_capable ~relationship:rel
         (peer_of a))
  in
  let drop_big = Filters.max_size 90 in
  nbr Dbgp_bgp.Policy.To_customer 11;
  nbr Dbgp_bgp.Policy.To_customer 12;
  nbr Dbgp_bgp.Policy.To_provider 13;
  nbr Dbgp_bgp.Policy.To_peer 14;
  nbr Dbgp_bgp.Policy.To_customer ~dbgp_capable:false 15;
  nbr Dbgp_bgp.Policy.To_customer ~export:drop_big 16;
  let peers = [| 11; 12; 13; 14; 15; 16 |] in
  let pool =
    Array.init 12 (fun i -> Prefix.of_string (Printf.sprintf "20.0.%d.0/24" i))
  in
  let mk_ia from prefix =
    let ia =
      Ia.originate ~prefix ~origin_asn:(Asn.of_int from)
        ~next_hop:(addr_of from) ()
    in
    (* Vary the path length (selection pressure) and occasionally make
       the path loop through the hub (import rejection). *)
    let hops = Prng.int rng 3 in
    let ia = ref ia in
    for h = 1 to hops do
      ia := Ia.prepend_as (Asn.of_int (200 + (10 * from) + h)) !ia
    done;
    if Prng.int rng 10 = 0 then ia := Ia.prepend_as (Asn.of_int hub) !ia;
    if Prng.int rng 4 = 0 then
      ia :=
        Ia.set_path_descriptor ~owners:[ Protocol_id.wiser ] ~field:"cost"
          (Dbgp_core.Value.Int (Prng.int rng 100))
          !ia;
    !ia
  in
  let steps = 400 in
  for _ = 1 to steps do
    m.clock <- m.clock +. 1.;
    let from = peers.(Prng.int rng (Array.length peers)) in
    let prefix = pool.(Prng.int rng (Array.length pool)) in
    let msg =
      if Prng.int rng 4 = 0 then Speaker.Withdraw prefix
      else Speaker.Announce (mk_ia from prefix)
    in
    log_msg m "inject" ~from ~to_:hub msg;
    enqueue m ~from:hub (Speaker.receive ~now:m.clock s ~from:(peer_of from) msg)
  done;
  (* Graceful restart on one customer: stale-mark, partial refresh from
     the peer, then the window closes and flushes the rest. *)
  m.clock <- m.clock +. 1.;
  Buffer.add_string m.buf "graceful 11\n";
  Speaker.peer_down_graceful ~now:m.clock s (peer_of 11);
  m.clock <- m.clock +. 1.;
  let refresh_msg = Speaker.Announce (mk_ia 11 pool.(0)) in
  log_msg m "inject" ~from:11 ~to_:hub refresh_msg;
  enqueue m ~from:hub (Speaker.receive ~now:m.clock s ~from:(peer_of 11) refresh_msg);
  m.clock <- m.clock +. 10.;
  Buffer.add_string m.buf "flush 11\n";
  enqueue m ~from:hub (Speaker.flush_stale ~now:m.clock s (peer_of 11));
  (* Route refresh toward another customer. *)
  Buffer.add_string m.buf "refresh 12\n";
  enqueue m ~from:hub (Speaker.refresh_peer s (peer_of 12));
  m.clock <- m.clock +. 100.;
  drain_reuse m;
  finish "hub-policy" ~steps:(steps + 4) ~prefixes:(Array.to_list pool) m

(* ------------------------------------------------------------------ *)
(* Scenario 3: a full seeded chaos run (faults, flaps, graceful restart *)
(* and damping over a BRITE topology), fingerprinting the report and    *)
(* the final per-speaker state.                                         *)
(* ------------------------------------------------------------------ *)

let chaos_prefix = Prefix.of_string "99.0.0.0/24"

let run_chaos seed =
  let cfg = { Chaos.default with Chaos.seed; ases = 30; flaps = 3 } in
  let r, net = Chaos.run_with_net cfg in
  let b = Buffer.create 1024 in
  let stats tag (s : Dbgp_netsim.Network.stats) =
    Buffer.add_string b
      (Printf.sprintf "%s %d %d %d %d %.6f\n" tag s.Dbgp_netsim.Network.messages
         s.Dbgp_netsim.Network.withdrawals s.Dbgp_netsim.Network.dropped
         s.Dbgp_netsim.Network.events s.Dbgp_netsim.Network.converged_at)
  in
  stats "initial" r.Chaos.initial;
  stats "final" r.Chaos.final;
  List.iter
    (fun (a, bb) -> Buffer.add_string b (Printf.sprintf "flap %d-%d\n" a bb))
    r.Chaos.flapped;
  List.iter
    (fun (k, v) -> Buffer.add_string b (Printf.sprintf "err %s %d\n" k v))
    r.Chaos.error_verdicts;
  Buffer.add_string b
    (Printf.sprintf "stale %d loops %d healthy %b\n" r.Chaos.stale_leaks
       r.Chaos.forwarding_loops (Chaos.healthy r));
  let speakers =
    List.map
      (fun a -> (Asn.to_int a, Dbgp_netsim.Network.speaker net a))
      (Dbgp_netsim.Network.asns net)
  in
  { scenario = "chaos-30";
    steps = cfg.Chaos.flaps;
    messages = r.Chaos.final.Dbgp_netsim.Network.messages;
    transcript_md5 = Digest.to_hex (Digest.string (Buffer.contents b));
    state_md5 = state_digest speakers [ chaos_prefix ] }

let run ?(seed = 42) name =
  match name with
  | "relay-line" -> run_relay_line seed
  | "hub-policy" -> run_hub_policy seed
  | "chaos-30" -> run_chaos seed
  | _ -> invalid_arg ("Differential.run: unknown scenario " ^ name)

let run_all ?seed () = List.map (fun n -> run ?seed n) scenarios

(* ------------------------------------------------------------------ *)
(* Golden-file format: one tab-separated line per digest.               *)
(* ------------------------------------------------------------------ *)

let to_line d =
  Printf.sprintf "%s\t%d\t%d\t%s\t%s" d.scenario d.steps d.messages
    d.transcript_md5 d.state_md5

let of_line line =
  match String.split_on_char '\t' (String.trim line) with
  | [ scenario; steps; messages; transcript_md5; state_md5 ] ->
    Some
      { scenario;
        steps = int_of_string steps;
        messages = int_of_string messages;
        transcript_md5;
        state_md5 }
  | _ -> None

let equal a b =
  a.scenario = b.scenario && a.steps = b.steps && a.messages = b.messages
  && a.transcript_md5 = b.transcript_md5
  && a.state_md5 = b.state_md5

let pp ppf d =
  Format.fprintf ppf "%-12s steps=%d msgs=%d transcript=%s state=%s" d.scenario
    d.steps d.messages d.transcript_md5 d.state_md5
