(** Differential test harness: seeded workloads with golden fingerprints.

    Each scenario drives speakers through a deterministic seeded workload
    and folds the observable behaviour into MD5 digests: the ordered
    message transcript (every injected, received and transmitted message,
    byte-encoded) and the final state (best routes, FIB next hops,
    Adj-RIB-Out views).  Digests recorded against the pre-pipeline
    speaker live in [test/golden_differential.txt]; the staged-RIB
    speaker must reproduce them byte for byte, proving the refactor is
    change-equivalent — identical best paths and an identical (ordered,
    hence multiset-) message sequence.

    Scenarios: ["relay-line"] (6-AS line, mid-line cut + recovery,
    legacy edge, membership-stripping export), ["hub-policy"] (policy-
    rich hub under 400 steps of seeded churn with damping, graceful
    restart, refresh), ["chaos-30"] (full seeded chaos run over a BRITE
    topology). *)

type digest = {
  scenario : string;
  steps : int;            (** workload steps executed *)
  messages : int;         (** messages recorded in the transcript *)
  transcript_md5 : string;
  state_md5 : string;
}

val scenarios : string list

val run : ?seed:int -> string -> digest
(** Run one scenario (default seed 42).
    @raise Invalid_argument on an unknown scenario name. *)

val state_digest :
  (int * Dbgp_core.Speaker.t) list -> Dbgp_types.Prefix.t list -> string
(** MD5 over final speaker state — best routes (candidate and outgoing
    IAs, byte-encoded), FIB next hops for the given prefixes, and every
    per-neighbor Adj-RIB-Out — for speakers listed by ascending ASN.
    Shared with the sharded differential ({!Shard_differential}) so
    sequential and sharded runs fingerprint state identically. *)

val run_all : ?seed:int -> unit -> digest list
(** Every scenario, in {!scenarios} order. *)

val equal : digest -> digest -> bool

val to_line : digest -> string
(** One tab-separated golden-file line. *)

val of_line : string -> digest option
(** Parse a golden-file line ([None] on malformed input). *)

val pp : Format.formatter -> digest -> unit
