open Dbgp_types
module Ia = Dbgp_core.Ia
module Value = Dbgp_core.Value
module Codec = Dbgp_core.Codec
module Speaker = Dbgp_core.Speaker
module Peer = Dbgp_core.Peer
module Reader = Dbgp_wire.Reader
module Snapshot = Dbgp_obs.Snapshot

type config = { seed : int; cases : int }

let default = { seed = 42; cases = 10_000 }

type report = {
  config : config;
  accepted : int;
  accepted_with_discards : int;
  filtered : int;
  withdrawn : int;
  session_error : int;
  strict_errors : int;
  escaped : int;
  discarded_descriptors : int;
  roundtrip_failures : int;
  batch_cases : int;
  batch_ok : int;
  batch_treat_withdraw : int;
  batch_session_reset : int;
  elapsed : float;
}

(* ------------------------- IA generation ------------------------- *)

let fuzz_protocols =
  lazy
    (List.init 4 (fun i ->
         Protocol_id.register ~kind:Protocol_id.Critical_fix
           (Printf.sprintf "fuzz-proto-%d" i)))

let rec gen_value rng depth =
  match Prng.int rng (if depth > 0 then 7 else 5) with
  | 0 -> Value.Int (Prng.int rng 1_000_000)
  | 1 -> Value.Str (String.init (Prng.int rng 12) (fun _ -> Char.chr (Prng.int_in rng 32 126)))
  | 2 -> Value.Bytes (String.init (Prng.int rng 24) (fun _ -> Char.chr (Prng.int rng 256)))
  | 3 -> Value.Addr (Ipv4.of_int (Prng.int rng 0x1000000))
  | 4 -> Value.Asn (Asn.of_int (Prng.int_in rng 1 64000))
  | 5 -> Value.List (List.init (Prng.int rng 4) (fun _ -> gen_value rng (depth - 1)))
  | _ -> Value.Pair (gen_value rng (depth - 1), gen_value rng (depth - 1))

let gen_ia rng idx =
  let prefix =
    Prefix.make (Ipv4.of_int ((idx * 2654435761) land 0xFFFFFF lsl 8)) 24
  in
  let origin = Asn.of_int (Prng.int_in rng 1 64000) in
  let ia =
    Ia.originate ~prefix ~origin_asn:origin
      ~next_hop:(Ipv4.of_octets 10 1 (idx lsr 8 land 0xFF) (idx land 0xFF))
      ()
  in
  (* A transit path of distinct ASes, sometimes through an island. *)
  let hops = Prng.int rng 5 in
  let ia =
    List.fold_left
      (fun ia _ -> Ia.prepend_as (Asn.of_int (Prng.int_in rng 1 64000)) ia)
      ia
      (List.init hops Fun.id)
  in
  let ia =
    if Prng.int rng 4 = 0 then
      Ia.prepend_island (Island_id.Named (Printf.sprintf "isl-%d" (Prng.int rng 8))) ia
    else ia
  in
  let protos = Lazy.force fuzz_protocols in
  let pick_proto () = List.nth protos (Prng.int rng (List.length protos)) in
  let ia =
    List.fold_left
      (fun ia i ->
        let owners =
          if Prng.bool rng then [ pick_proto () ]
          else
            List.sort_uniq Protocol_id.compare [ pick_proto (); pick_proto () ]
        in
        Ia.set_path_descriptor ~owners
          ~field:(Printf.sprintf "f%d" i)
          (gen_value rng 2) ia)
      ia
      (List.init (Prng.int rng 4) Fun.id)
  in
  List.fold_left
    (fun ia i ->
      Ia.add_island_descriptor
        ~island:(Island_id.Singleton (Asn.of_int (Prng.int_in rng 1 64000)))
        ~proto:(pick_proto ())
        ~field:(Printf.sprintf "i%d" i)
        (gen_value rng 1) ia)
    ia
    (List.init (Prng.int rng 3) Fun.id)

(* ------------------------- mutations ------------------------- *)

let flip_bit rng b =
  let i = Prng.int rng (Bytes.length b) in
  Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl Prng.int rng 8)))

(* One structure-aware mutation of an encoded advertisement.  Richer than
   the in-flight damage {!Dbgp_netsim.Fault_model.mutate} models: length
   tampering and varint stretching specifically attack the framing the
   salvaging decoder depends on. *)
let mutate_once rng s =
  let n = String.length s in
  if n = 0 then s
  else
    match Prng.int rng 7 with
    | 0 ->
      let b = Bytes.of_string s in
      flip_bit rng b;
      Bytes.to_string b
    | 1 ->
      let b = Bytes.of_string s in
      for _ = 0 to Prng.int rng 8 do flip_bit rng b done;
      Bytes.to_string b
    | 2 -> String.sub s 0 (Prng.int rng n) (* truncate *)
    | 3 ->
      (* Extend with junk: trailing bytes must be caught, not ignored. *)
      s ^ String.init (1 + Prng.int rng 8) (fun _ -> Char.chr (Prng.int rng 256))
    | 4 ->
      (* Length-field tampering: slam a byte to an extreme value.  Length
         octets are everywhere in the encoding, so a random position hits
         one often. *)
      let b = Bytes.of_string s in
      Bytes.set b (Prng.int rng n)
        (Char.chr (match Prng.int rng 3 with 0 -> 0x00 | 1 -> 0x7F | _ -> 0xFF));
      Bytes.to_string b
    | 5 ->
      (* Varint stretching: splice in continuation bytes so a varint
         keeps going — non-canonical or overflowing encodings. *)
      let i = Prng.int rng n in
      String.sub s 0 i
      ^ String.init (1 + Prng.int rng 9) (fun _ -> Char.chr 0x80)
      ^ String.sub s i (n - i)
    | _ ->
      (* Splice: copy one range over another, desynchronizing nested
         frames without touching lengths. *)
      let b = Bytes.of_string s in
      let len = 1 + Prng.int rng (min 8 n) in
      let src = Prng.int rng (n - len + 1) in
      let dst = Prng.int rng (n - len + 1) in
      Bytes.blit_string s src b dst len;
      Bytes.to_string b

let mutate rng s =
  let s = mutate_once rng s in
  if Prng.int rng 3 = 0 then mutate_once rng s else s

(* Batch-frame-aware mutations, aimed at the structure the batched
   decoder depends on: the leading NLRI count, the per-entry frames in
   the first half, and the trailing attribute block. *)
let mutate_batch rng s =
  let n = String.length s in
  if n < 2 then s
  else
    match Prng.int rng 4 with
    | 0 ->
      (* NLRI count tampering: the count varint leads the frame. *)
      let b = Bytes.of_string s in
      Bytes.set b 0
        (Char.chr (match Prng.int rng 3 with 0 -> 0x00 | 1 -> 0x7F | _ -> 0xFF));
      Bytes.to_string b
    | 1 ->
      (* Attribute-block truncation: the block is length-framed at the
         tail, so chopping bytes starves its delimited read. *)
      String.sub s 0 (n - 1 - Prng.int rng (min 16 (n - 1)))
    | 2 ->
      (* Split-point corruption: slam an NLRI-region byte (entry length
         octets live in the first half) to desynchronize the walk from
         the entries to the attribute block. *)
      let b = Bytes.of_string s in
      Bytes.set b
        (Prng.int rng (max 1 (n / 2)))
        (Char.chr (if Prng.bool rng then 0x7F else 0xFF));
      Bytes.to_string b
    | _ -> mutate rng s

(* ------------------------- the pipeline ------------------------- *)

let make_speaker () =
  let asn = Asn.of_int 65100 in
  let s =
    Speaker.create
      (Speaker.config ~asn ~addr:(Ipv4.of_octets 10 99 0 1) ())
  in
  let peer = Peer.make ~asn:(Asn.of_int 65101) ~addr:(Ipv4.of_octets 10 99 0 2) in
  Speaker.add_neighbor s
    (Speaker.neighbor ~relationship:Dbgp_bgp.Policy.To_customer peer);
  (s, peer)

let run cfg =
  if cfg.cases < 0 then invalid_arg "Fuzz.run: negative case count";
  let rng = Prng.create cfg.seed in
  let speaker, peer = make_speaker () in
  let accepted = ref 0
  and accepted_with_discards = ref 0
  and filtered = ref 0
  and withdrawn = ref 0
  and session_error = ref 0
  and strict_errors = ref 0
  and escaped = ref 0
  and discarded = ref 0
  and roundtrip_failures = ref 0
  and batch_cases = ref 0
  and batch_ok = ref 0
  and batch_treat_withdraw = ref 0
  and batch_session_reset = ref 0 in
  let started = Unix.gettimeofday () in
  (* One mutated batched frame (announce or withdraw) through decoder and
     speaker; the decoders must verdict, the speaker must absorb. *)
  let batch_leg rng idx head =
    incr batch_cases;
    let width = 2 + Prng.int rng 6 in
    let ias =
      List.init width (fun j ->
          Ia.with_prefix
            (Prefix.make
               (Ipv4.of_int (((idx * 8 + j) * 2654435761) land 0xFFFFFF lsl 8))
               24)
            head)
    in
    let announce = Prng.bool rng in
    let pristine =
      if announce then Codec.encode_batch ias
      else Codec.encode_withdraw_batch (List.map (fun (ia : Ia.t) -> ia.Ia.prefix) ias)
    in
    (* Pristine sanity leg: a clean batch must decode back whole. *)
    ( if announce then
        match Codec.decode_batch_robust pristine with
        | Ok (Codec.Batch_routes (ias', [])) when List.for_all2 Ia.equal ias ias' -> ()
        | _ | (exception _) -> incr roundtrip_failures
      else
        match Codec.decode_withdraw_batch_robust pristine with
        | Ok (ps, []) when List.for_all2
            (fun (ia : Ia.t) p -> Prefix.equal ia.Ia.prefix p) ias ps -> ()
        | _ | (exception _) -> incr roundtrip_failures );
    let wire = if Prng.int rng 4 = 0 then pristine else mutate_batch rng pristine in
    ( if announce then
        match Codec.decode_batch_robust wire with
        | Ok (Codec.Batch_routes _) -> incr batch_ok
        | Ok (Codec.Batch_withdraw _) -> incr batch_treat_withdraw
        | Error _ -> incr batch_session_reset
        | exception _ -> incr escaped
      else
        match Codec.decode_withdraw_batch_robust wire with
        | Ok _ -> incr batch_ok
        | Error _ -> incr batch_session_reset
        | exception _ -> incr escaped );
    match
      if announce then
        Speaker.receive_wire_batch ~now:(float_of_int idx) speaker ~from:peer wire
      else
        Speaker.receive_wire_withdraw_batch ~now:(float_of_int idx) speaker
          ~from:peer wire
    with
    | (_ : Speaker.rx_outcome), (_ : (Peer.t * Speaker.msg) list) -> ()
    | exception _ -> incr escaped
  in
  for idx = 0 to cfg.cases - 1 do
    let ia = gen_ia rng idx in
    let pristine = Codec.encode ia in
    (* Sanity leg: the untouched encoding must decode back equal. *)
    ( match Codec.decode pristine with
      | decoded -> if not (Ia.equal decoded ia) then incr roundtrip_failures
      | exception _ -> incr roundtrip_failures );
    let wire = mutate rng pristine in
    (* Strict decode: success or Reader.Error, nothing else. *)
    ( match Codec.decode wire with
      | _ -> ()
      | exception Reader.Error _ -> incr strict_errors
      | exception _ -> incr escaped );
    (* Robust decode must never raise; its verdict is checked against the
       speaker outcome implicitly (receive_wire uses it). *)
    ( match Codec.decode_robust wire with
      | Ok _ | Error _ -> ()
      | exception _ -> incr escaped );
    (* Full pipeline. *)
    ( match
        Speaker.receive_wire ~now:(float_of_int idx) speaker ~from:peer wire
      with
      | Speaker.Rx_accepted 0, _ -> incr accepted
      | Speaker.Rx_accepted n, _ ->
        incr accepted_with_discards;
        discarded := !discarded + n
      | Speaker.Rx_filtered, _ -> incr filtered
      | Speaker.Rx_withdrawn, _ -> incr withdrawn
      | Speaker.Rx_session_error, _ -> incr session_error
      | exception _ -> incr escaped );
    if idx land 3 = 0 then batch_leg rng idx ia
  done;
  { config = cfg;
    accepted = !accepted;
    accepted_with_discards = !accepted_with_discards;
    filtered = !filtered;
    withdrawn = !withdrawn;
    session_error = !session_error;
    strict_errors = !strict_errors;
    escaped = !escaped;
    discarded_descriptors = !discarded;
    roundtrip_failures = !roundtrip_failures;
    batch_cases = !batch_cases;
    batch_ok = !batch_ok;
    batch_treat_withdraw = !batch_treat_withdraw;
    batch_session_reset = !batch_session_reset;
    elapsed = Unix.gettimeofday () -. started }

let cases_per_sec r =
  if r.elapsed <= 0. then 0. else float_of_int r.config.cases /. r.elapsed

let deterministic_fields r =
  [ ("seed", r.config.seed);
    ("cases", r.config.cases);
    ("accepted", r.accepted);
    ("accepted_with_discards", r.accepted_with_discards);
    ("filtered", r.filtered);
    ("withdrawn", r.withdrawn);
    ("session_error", r.session_error);
    ("strict_errors", r.strict_errors);
    ("escaped", r.escaped);
    ("discarded_descriptors", r.discarded_descriptors);
    ("roundtrip_failures", r.roundtrip_failures);
    ("batch_cases", r.batch_cases);
    ("batch_ok", r.batch_ok);
    ("batch_treat_withdraw", r.batch_treat_withdraw);
    ("batch_session_reset", r.batch_session_reset) ]

let to_snapshot r =
  Snapshot.Obj
    (List.map (fun (k, v) -> (k, Snapshot.Int v)) (deterministic_fields r)
     @ [ ("cases_per_sec", Snapshot.Float (cases_per_sec r)) ])

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>fuzz seed=%d cases=%d (%.0f cases/s):@,\
     accepted=%d (+%d with discards, %d descriptors dropped)@,\
     filtered=%d withdrawn=%d session_error=%d@,\
     strict_errors=%d escaped=%d roundtrip_failures=%d@,\
     batch: cases=%d ok=%d treat_withdraw=%d session_reset=%d@]"
    r.config.seed r.config.cases (cases_per_sec r) r.accepted
    r.accepted_with_discards r.discarded_descriptors r.filtered r.withdrawn
    r.session_error r.strict_errors r.escaped r.roundtrip_failures
    r.batch_cases r.batch_ok r.batch_treat_withdraw r.batch_session_reset
