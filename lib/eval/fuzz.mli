(** Seeded deterministic fuzzer for the IA codec and speaker pipeline.

    Generates valid integrated advertisements, encodes them, damages the
    bytes with structure-aware mutations (bit flips, truncation, length
    tampering, varint stretching, splices), and feeds the result through

    + {!Dbgp_core.Codec.decode} (strict: must succeed or raise exactly
      [Dbgp_wire.Reader.Error]),
    + {!Dbgp_core.Codec.decode_robust} (must never raise), and
    + {!Dbgp_core.Speaker.receive_wire} on a live speaker (must never
      raise, and must map every input onto the RFC 7606 ladder).

    Every fourth case additionally builds a multi-prefix batched frame
    (see {!Dbgp_core.Codec.encode_batch}) and attacks its specific
    structure — NLRI count tampering, attribute-block truncation,
    NLRI/attr split-point corruption — through
    {!Dbgp_core.Codec.decode_batch_robust},
    {!Dbgp_core.Codec.decode_withdraw_batch_robust},
    {!Dbgp_core.Speaker.receive_wire_batch} and
    {!Dbgp_core.Speaker.receive_wire_withdraw_batch} (none may raise).

    Everything is driven by one seed: the same [config] reproduces the
    same cases and the same outcome histogram, so the histogram can be
    pinned in tests while throughput ([cases_per_sec]) floats. *)

type config = { seed : int; cases : int }

val default : config
(** seed 42, 10_000 cases. *)

type report = {
  config : config;
  accepted : int;             (** survived mutation; route installed clean *)
  accepted_with_discards : int;
      (** route installed, one or more malformed descriptors dropped *)
  filtered : int;             (** decoded but rejected by import policy *)
  withdrawn : int;            (** treat-as-withdraw verdicts *)
  session_error : int;        (** framing damage before the prefix *)
  strict_errors : int;        (** strict decodes that raised [Reader.Error] *)
  escaped : int;              (** exceptions escaping any stage — must be 0 *)
  discarded_descriptors : int;  (** total descriptors salvaged around *)
  roundtrip_failures : int;
      (** pristine (unmutated) encodings that did not decode back equal —
          codec bugs, must be 0 *)
  batch_cases : int;          (** batched frames fed (announce + withdraw) *)
  batch_ok : int;             (** batched decodes that salvaged routes *)
  batch_treat_withdraw : int; (** whole-batch treat-as-withdraw verdicts *)
  batch_session_reset : int;  (** batched frames with framing lost *)
  elapsed : float;            (** wall-clock seconds (not deterministic) *)
}

val run : config -> report

val cases_per_sec : report -> float

val deterministic_fields : report -> (string * int) list
(** Every seed-determined field by name, for pinning and comparison —
    excludes [elapsed]. *)

val to_snapshot : report -> Dbgp_obs.Snapshot.t
(** JSON-ready report including [cases_per_sec]; everything except
    [elapsed]/[cases_per_sec] is reproducible from the seed. *)

val pp_report : Format.formatter -> report -> unit
