open Dbgp_types
module Speaker = Dbgp_core.Speaker
module Ia = Dbgp_core.Ia
module Value = Dbgp_core.Value
module Network = Dbgp_netsim.Network
module Snapshot = Dbgp_obs.Snapshot

type violation =
  | Forwarding_loop of int
  | Route_via_down_link of int * int
  | Rib_fib_mismatch of int
  | Passthrough_mutated of int
  | Stale_leak of int * int
  | Orphan_adj_out of int * int
  | Orphan_adj_in of int * int
  | Orphan_flap of int * int
  | Orphan_stale of int * int
  | Origin_mismatch of int * int
  | Valley_export of int * int
  | Forged_island_descriptor of int
  | Forged_adjacency of int * int * int

type report = {
  speakers : int;
  with_route : int;
  violations : violation list;
}

(* Follow FIB next hops from [asn] toward [dest]; a revisited AS means a
   forwarding loop. *)
let walk_loops net ~dest asn =
  let rec go seen a =
    if List.mem a seen then true
    else
      match Speaker.next_hop_of (Network.speaker net a) dest with
      | None -> false
      | Some nh ->
        ( match Network.asn_of_addr net nh with
          | None -> false
          | Some next -> go (a :: seen) next )
  in
  go [] asn

let check ?expect_descriptor ~prefix ~dest net =
  let violations = ref [] in
  let flag v = violations := v :: !violations in
  let asns = Network.asns net in
  let with_route = ref 0 in
  List.iter
    (fun a ->
      let s = Network.speaker net a in
      let ai = Asn.to_int a in
      if walk_loops net ~dest a then flag (Forwarding_loop ai);
      let leaked = Speaker.stale_count s in
      if leaked > 0 then flag (Stale_leak (ai, leaked));
      (* Adj-RIB-Out state toward someone who is not a neighbor is never
         legitimate: every teardown path must erase it.  (Flap-damping
         state toward an ex-neighbor IS legitimate after a session loss —
         damping memory survives link flaps — so it is not flagged here;
         {!peer_clean} checks it after administrative removal.) *)
      List.iter
        (fun p ->
          if not (Speaker.has_neighbor s p) then
            flag (Orphan_adj_out (ai, Asn.to_int p.Dbgp_core.Peer.asn)))
        (Speaker.adj_out_peers s);
      match Speaker.best s prefix with
      | None -> ()
      | Some chosen ->
        incr with_route;
        let from_peer =
          chosen.Speaker.candidate.Dbgp_core.Decision_module.from_peer
        in
        ( match from_peer with
          | None ->
            (* Locally originated: nothing to forward through, and the
               descriptor is the origin's own by construction. *)
            ()
          | Some p ->
            ( match Network.asn_of_addr net p.Dbgp_core.Peer.addr with
              | Some peer_asn when not (Network.link_up net a peer_asn) ->
                flag (Route_via_down_link (ai, Asn.to_int peer_asn))
              | _ -> () );
            (* The FIB must forward exactly where the RIB decided. *)
            ( match Speaker.next_hop_of s dest with
              | Some nh when Ipv4.equal nh p.Dbgp_core.Peer.addr -> ()
              | _ -> flag (Rib_fib_mismatch ai) );
            ( match expect_descriptor with
              | None -> ()
              | Some (proto, field, value) ->
                let ia = chosen.Speaker.candidate.Dbgp_core.Decision_module.ia in
                ( match Ia.find_path_descriptor ~proto ~field ia with
                  | Some v when Value.equal v value -> ()
                  | _ -> flag (Passthrough_mutated ai) ) ) ))
    asns;
  { speakers = List.length asns;
    with_route = !with_route;
    violations = List.rev !violations }

let ok r = r.violations = []

(* ------------------- adversary detection predicates ------------------- *)

(* The origin an IA claims: the far end of its path vector ([-1] when
   there is no concrete origin AS, e.g. an island abstraction). *)
let claimed_origin ia =
  match List.rev (Ia.asns_on_path ia) with
  | o :: _ -> Asn.to_int o
  | [] -> -1

(* Origin mismatch versus ground-truth ownership: every speaker whose
   selected route for a prefix subsumed by [prefix] claims an origin
   other than [owner] is routing on a hijacked announcement.  Sub-prefix
   hijacks are caught because the forged more-specific is still subsumed
   by the owned aggregate. *)
let origin_mismatches net ~prefix ~owner =
  let owner_i = Asn.to_int owner in
  List.concat_map
    (fun a ->
      let s = Network.speaker net a in
      List.filter_map
        (fun (p, _) ->
          if not (Prefix.subsumes prefix p) then None
          else
            match Speaker.best s p with
            | None -> None
            | Some chosen ->
              let ia = chosen.Speaker.candidate.Dbgp_core.Decision_module.ia in
              let o = claimed_origin ia in
              if o <> owner_i then Some (Origin_mismatch (Asn.to_int a, o))
              else None)
        (Speaker.best_routes s))
    (Network.asns net)

(* Valley-free violation walk: a speaker advertising a peer- or
   provider-learned route toward another peer or provider has leaked it.
   Checked against what actually sits in each Adj-RIB-Out, so it catches
   the leak at the leaking AS — not just its downstream effects. *)
let valley_violations net =
  List.concat_map
    (fun a ->
      let s = Network.speaker net a in
      let nbrs = Speaker.neighbors s in
      let rel_of peer =
        List.find_map
          (fun (n : Speaker.neighbor) ->
            if Dbgp_core.Peer.equal n.Speaker.peer peer then
              Some n.Speaker.relationship
            else None)
          nbrs
      in
      List.concat_map
        (fun (n : Speaker.neighbor) ->
          match n.Speaker.relationship with
          | Dbgp_bgp.Policy.To_customer -> []
          | Dbgp_bgp.Policy.To_peer | Dbgp_bgp.Policy.To_provider ->
            List.filter_map
              (fun (prefix, _out) ->
                match Speaker.best s prefix with
                | None -> None
                | Some chosen -> (
                  match
                    chosen.Speaker.candidate.Dbgp_core.Decision_module.from_peer
                  with
                  | None -> None (* locally originated: exportable anywhere *)
                  | Some p -> (
                    match rel_of p with
                    | Some (Dbgp_bgp.Policy.To_peer | Dbgp_bgp.Policy.To_provider)
                      ->
                      Some
                        (Valley_export
                           ( Asn.to_int a,
                             Asn.to_int n.Speaker.peer.Dbgp_core.Peer.asn ))
                    | _ -> None )))
              (Speaker.adj_out s n.Speaker.peer))
        nbrs)
    (Network.asns net)

(* Island-descriptor ground truth: flag every speaker whose selected
   route for [prefix] carries an island descriptor ([island], [proto],
   [field]) differing from [expected] ([None] = no such descriptor was
   ever legitimately published, so its mere presence is a forgery). *)
let forged_island_descriptors net ~prefix ~island ~proto ~field ~expected =
  List.filter_map
    (fun a ->
      let s = Network.speaker net a in
      match Speaker.best s prefix with
      | None -> None
      | Some chosen ->
        let ia = chosen.Speaker.candidate.Dbgp_core.Decision_module.ia in
        let got = Ia.find_island_descriptor ~island ~proto ~field ia in
        let same =
          match (got, expected) with
          | None, None -> true
          | Some v, Some e -> Value.equal v e
          | _ -> false
        in
        if same then None else Some (Forged_island_descriptor (Asn.to_int a)))
    (Network.asns net)

(* AS-path plausibility against topology ground truth: every consecutive
   AS pair on a selected path must be an actual link.  Catches forged-path
   hijacks (the attacker claims adjacency to the true origin), which pure
   origin validation cannot.  Only sound when paths carry no island
   abstractions — an island on the path elides its interior, making
   honest consecutive ASNs non-adjacent. *)
let forged_adjacencies net ~prefix =
  let pair_linked a b = Network.link_up net a b in
  List.concat_map
    (fun a ->
      let s = Network.speaker net a in
      List.concat_map
        (fun (p, _) ->
          if not (Prefix.subsumes prefix p) then []
          else
            match Speaker.best s p with
            | None -> []
            | Some chosen ->
              let ia = chosen.Speaker.candidate.Dbgp_core.Decision_module.ia in
              let rec pairs = function
                | x :: (y :: _ as rest) ->
                  (if pair_linked x y then []
                   else
                     [ Forged_adjacency
                         (Asn.to_int a, Asn.to_int x, Asn.to_int y) ])
                  @ pairs rest
                | _ -> []
              in
              pairs (Ia.asns_on_path ia))
        (Speaker.best_routes s))
    (Network.asns net)

(* Candidate-level forgery scan: Adj-RIB-In holds what neighbors actually
   announced, before import policy has had a chance to reject it — so this
   is where a contained hijack remains visible at the first validating
   speaker (the selected-state predicates above see nothing when
   validation rejects the route everywhere).  Flags wrong claimed origins
   and topologically impossible adjacencies among the received candidates
   for [prefix]. *)
let forged_candidates net ~prefix ~owner =
  let owner_i = Asn.to_int owner in
  let pair_linked a b = Network.link_up net a b in
  List.concat_map
    (fun a ->
      let s = Network.speaker net a in
      let me = Asn.to_int a in
      List.concat_map
        (fun (_, ia) ->
          let origin_bad =
            let o = claimed_origin ia in
            if o <> owner_i then [ Origin_mismatch (me, o) ] else []
          in
          let rec pairs = function
            | x :: (y :: _ as rest) ->
              (if pair_linked x y then []
               else [ Forged_adjacency (me, Asn.to_int x, Asn.to_int y) ])
              @ pairs rest
            | _ -> []
          in
          origin_bad @ pairs (Ia.asns_on_path ia))
        (Speaker.candidates_for s prefix))
    (Network.asns net)

(* Post-teardown cleanliness for one (speaker, ex-peer) pair: after
   [Speaker.remove_neighbor] nothing of the peer may remain in any
   pipeline stage or in the damping memory. *)
let peer_clean s peer =
  let ai = Asn.to_int (Speaker.asn s) in
  let pi = Asn.to_int peer.Dbgp_core.Peer.asn in
  let violations = ref [] in
  let flag v = violations := v :: !violations in
  if Speaker.has_adj_in s peer then flag (Orphan_adj_in (ai, pi));
  if List.exists (Dbgp_core.Peer.equal peer) (Speaker.adj_out_peers s) then
    flag (Orphan_adj_out (ai, pi));
  if Speaker.has_stale s peer then flag (Orphan_stale (ai, pi));
  if Speaker.has_flap_state s peer then flag (Orphan_flap (ai, pi));
  if Speaker.export_group_of s peer <> None then flag (Orphan_adj_out (ai, pi));
  List.rev !violations

let kind_name = function
  | Forwarding_loop _ -> "forwarding_loop"
  | Route_via_down_link _ -> "route_via_down_link"
  | Rib_fib_mismatch _ -> "rib_fib_mismatch"
  | Passthrough_mutated _ -> "passthrough_mutated"
  | Stale_leak _ -> "stale_leak"
  | Orphan_adj_out _ -> "orphan_adj_out"
  | Orphan_adj_in _ -> "orphan_adj_in"
  | Orphan_flap _ -> "orphan_flap"
  | Orphan_stale _ -> "orphan_stale"
  | Origin_mismatch _ -> "origin_mismatch"
  | Valley_export _ -> "valley_export"
  | Forged_island_descriptor _ -> "forged_island_descriptor"
  | Forged_adjacency _ -> "forged_adjacency"

let all_kinds =
  [ "forwarding_loop"; "route_via_down_link"; "rib_fib_mismatch";
    "passthrough_mutated"; "stale_leak"; "orphan_adj_out"; "orphan_adj_in";
    "orphan_flap"; "orphan_stale"; "origin_mismatch"; "valley_export";
    "forged_island_descriptor"; "forged_adjacency" ]

let pp_violation ppf = function
  | Forwarding_loop a -> Format.fprintf ppf "forwarding loop at AS%d" a
  | Route_via_down_link (a, p) ->
    Format.fprintf ppf "AS%d routes via down link to AS%d" a p
  | Rib_fib_mismatch a -> Format.fprintf ppf "RIB/FIB mismatch at AS%d" a
  | Passthrough_mutated a ->
    Format.fprintf ppf "pass-through descriptor mutated at AS%d" a
  | Stale_leak (a, n) ->
    Format.fprintf ppf "%d stale routes leaked at AS%d" n a
  | Orphan_adj_out (a, p) ->
    Format.fprintf ppf "AS%d retains Adj-RIB-Out state toward non-neighbor AS%d"
      a p
  | Orphan_adj_in (a, p) ->
    Format.fprintf ppf "AS%d retains Adj-RIB-In routes from removed AS%d" a p
  | Orphan_flap (a, p) ->
    Format.fprintf ppf "AS%d retains flap-damping state for removed AS%d" a p
  | Orphan_stale (a, p) ->
    Format.fprintf ppf "AS%d retains stale marks for removed AS%d" a p
  | Origin_mismatch (a, o) ->
    Format.fprintf ppf "AS%d routes on an announcement claiming origin AS%d" a o
  | Valley_export (a, p) ->
    Format.fprintf ppf
      "AS%d leaks a peer/provider-learned route to peer/provider AS%d" a p
  | Forged_island_descriptor a ->
    Format.fprintf ppf "AS%d carries a forged island descriptor" a
  | Forged_adjacency (a, x, y) ->
    Format.fprintf ppf
      "AS%d routes on a path claiming nonexistent adjacency AS%d-AS%d" a x y

let pp ppf r =
  if ok r then
    Format.fprintf ppf "invariants: ok (%d speakers, %d with route)"
      r.speakers r.with_route
  else
    Format.fprintf ppf "@[<v>invariants: %d violations:@,%a@]"
      (List.length r.violations)
      (Format.pp_print_list pp_violation)
      r.violations

let to_snapshot r =
  let count k =
    List.length (List.filter (fun v -> kind_name v = k) r.violations)
  in
  Snapshot.Obj
    [ ("speakers", Snapshot.Int r.speakers);
      ("with_route", Snapshot.Int r.with_route);
      ("ok", Snapshot.Bool (ok r));
      ( "violations",
        Snapshot.Obj (List.map (fun k -> (k, Snapshot.Int (count k))) all_kinds) );
      ( "detail",
        Snapshot.List
          (List.map
             (fun v -> Snapshot.String (Format.asprintf "%a" pp_violation v))
             r.violations) ) ]
