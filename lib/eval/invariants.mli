(** Post-chaos safety invariants.

    After a fault schedule has run to quiescence, the surviving routing
    state must still be {e safe}, whatever the faults did to liveness:

    - the data plane is loop-free (following FIB next hops toward the
      destination never revisits an AS);
    - no best route points at a peer whose link is down — a cut link can
      cost reachability, never a route through the cut;
    - the RIB's chosen best path and the FIB agree on the next hop;
    - no stale (graceful-restart retained) route outlives every restart
      window;
    - pass-through control information survives verbatim: a descriptor
      of a protocol no transit AS understands must arrive byte-identical
      at every AS that selected the route (Section 3.2's core promise,
      which corruption + salvage must not silently break).

    The checker is read-only and runs over a quiesced {!Dbgp_netsim.Network}. *)

type violation =
  | Forwarding_loop of int
      (** This AS's data-plane walk toward the destination cycles. *)
  | Route_via_down_link of int * int
      (** (asn, peer): the best route points at a peer whose link is down. *)
  | Rib_fib_mismatch of int
      (** The FIB next hop disagrees with the RIB's chosen best path. *)
  | Passthrough_mutated of int
      (** The expected pass-through descriptor is missing or altered. *)
  | Stale_leak of int * int
      (** (asn, routes): stale routes survived past every restart window. *)
  | Orphan_adj_out of int * int
      (** (asn, peer): Adj-RIB-Out state (advertised routes or group
          membership) toward someone who is not a neighbor. *)
  | Orphan_adj_in of int * int
      (** (asn, peer): Adj-RIB-In routes from a removed peer. *)
  | Orphan_flap of int * int
      (** (asn, peer): flap-damping memory for an administratively
          removed peer (legitimate after a mere session loss, so only
          {!peer_clean} reports it). *)
  | Orphan_stale of int * int
      (** (asn, peer): stale marks for a removed peer. *)
  | Origin_mismatch of int * int
      (** (asn, origin): the selected route claims an origin other than
          the prefix's ground-truth owner — a hijacked announcement. *)
  | Valley_export of int * int
      (** (asn, peer): a peer/provider-learned route sits in the
          Adj-RIB-Out toward another peer or provider — a route leak,
          flagged at the leaking AS. *)
  | Forged_island_descriptor of int
      (** The selected route carries an island descriptor that differs
          from ground truth (forged or tampered in transit). *)
  | Forged_adjacency of int * int * int
      (** (asn, x, y): the selected route's path claims consecutive ASes
          x and y are adjacent, but no such link exists — a forged-path
          hijack. *)

type report = {
  speakers : int;           (** speakers examined *)
  with_route : int;         (** speakers holding a best route for the prefix *)
  violations : violation list;
}

val check :
  ?expect_descriptor:Dbgp_types.Protocol_id.t * string * Dbgp_core.Value.t ->
  prefix:Dbgp_types.Prefix.t ->
  dest:Dbgp_types.Ipv4.t ->
  Dbgp_netsim.Network.t ->
  report
(** [expect_descriptor (proto, field, value)] enables the pass-through
    check: every speaker whose best route for [prefix] came from a peer
    must carry that exact descriptor value. *)

val ok : report -> bool

(** {1 Adversary detection predicates}

    Read-only ground-truth checks over a quiesced network, used by the
    adversary harness ({!Dbgp_eval.Adversary}): each returns the empty
    list on honest converged state and fires under the matching attack
    class. *)

val origin_mismatches :
  Dbgp_netsim.Network.t ->
  prefix:Dbgp_types.Prefix.t ->
  owner:Dbgp_types.Asn.t ->
  violation list
(** Every speaker whose selected route for any prefix subsumed by
    [prefix] claims an origin other than [owner] ({!Origin_mismatch}).
    Catches both origin-forgery and sub-prefix hijacks. *)

val valley_violations : Dbgp_netsim.Network.t -> violation list
(** Every (speaker, neighbor) pair where a peer/provider-learned route is
    advertised toward another peer or provider ({!Valley_export}) —
    the Gao-Rexford valley-free walk over actual Adj-RIB-Out state. *)

val forged_island_descriptors :
  Dbgp_netsim.Network.t ->
  prefix:Dbgp_types.Prefix.t ->
  island:Dbgp_types.Island_id.t ->
  proto:Dbgp_types.Protocol_id.t ->
  field:string ->
  expected:Dbgp_core.Value.t option ->
  violation list
(** Every speaker whose selected route for [prefix] carries an island
    descriptor ([island], [proto], [field]) differing from [expected]
    ([None] = legitimately absent, so presence alone is a forgery). *)

val forged_adjacencies :
  Dbgp_netsim.Network.t -> prefix:Dbgp_types.Prefix.t -> violation list
(** Path plausibility against topology ground truth: every consecutive AS
    pair on a selected path (for prefixes subsumed by [prefix]) must be
    an actual link ({!Forged_adjacency} otherwise).  Catches forged-path
    hijacks, which defeat pure origin validation.  Only sound when paths
    carry no island abstractions. *)

val forged_candidates :
  Dbgp_netsim.Network.t ->
  prefix:Dbgp_types.Prefix.t ->
  owner:Dbgp_types.Asn.t ->
  violation list
(** The same origin and adjacency ground-truth checks applied to the
    Adj-RIB-In candidates for exactly [prefix] — what neighbors actually
    announced, before import policy rejects anything.  This is where a
    {e contained} hijack is still visible: the first validating speaker
    holds the forged candidate it refused to select. *)

val peer_clean : Dbgp_core.Speaker.t -> Dbgp_core.Peer.t -> violation list
(** Post-teardown cleanliness for one (speaker, ex-peer) pair: after
    {!Dbgp_core.Speaker.remove_neighbor} nothing of the peer may remain
    in any pipeline stage — Adj-RIB-In routes, stale marks, Adj-RIB-Out
    state, peer-group membership — nor in the flap-damping memory.
    Empty = clean. *)

val pp_violation : Format.formatter -> violation -> unit
val pp : Format.formatter -> report -> unit

val to_snapshot : report -> Dbgp_obs.Snapshot.t
(** JSON-ready: speaker counts, per-kind violation counters, and the
    violation list rendered as strings. *)
