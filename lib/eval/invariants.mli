(** Post-chaos safety invariants.

    After a fault schedule has run to quiescence, the surviving routing
    state must still be {e safe}, whatever the faults did to liveness:

    - the data plane is loop-free (following FIB next hops toward the
      destination never revisits an AS);
    - no best route points at a peer whose link is down — a cut link can
      cost reachability, never a route through the cut;
    - the RIB's chosen best path and the FIB agree on the next hop;
    - no stale (graceful-restart retained) route outlives every restart
      window;
    - pass-through control information survives verbatim: a descriptor
      of a protocol no transit AS understands must arrive byte-identical
      at every AS that selected the route (Section 3.2's core promise,
      which corruption + salvage must not silently break).

    The checker is read-only and runs over a quiesced {!Dbgp_netsim.Network}. *)

type violation =
  | Forwarding_loop of int
      (** This AS's data-plane walk toward the destination cycles. *)
  | Route_via_down_link of int * int
      (** (asn, peer): the best route points at a peer whose link is down. *)
  | Rib_fib_mismatch of int
      (** The FIB next hop disagrees with the RIB's chosen best path. *)
  | Passthrough_mutated of int
      (** The expected pass-through descriptor is missing or altered. *)
  | Stale_leak of int * int
      (** (asn, routes): stale routes survived past every restart window. *)
  | Orphan_adj_out of int * int
      (** (asn, peer): Adj-RIB-Out state (advertised routes or group
          membership) toward someone who is not a neighbor. *)
  | Orphan_adj_in of int * int
      (** (asn, peer): Adj-RIB-In routes from a removed peer. *)
  | Orphan_flap of int * int
      (** (asn, peer): flap-damping memory for an administratively
          removed peer (legitimate after a mere session loss, so only
          {!peer_clean} reports it). *)
  | Orphan_stale of int * int
      (** (asn, peer): stale marks for a removed peer. *)

type report = {
  speakers : int;           (** speakers examined *)
  with_route : int;         (** speakers holding a best route for the prefix *)
  violations : violation list;
}

val check :
  ?expect_descriptor:Dbgp_types.Protocol_id.t * string * Dbgp_core.Value.t ->
  prefix:Dbgp_types.Prefix.t ->
  dest:Dbgp_types.Ipv4.t ->
  Dbgp_netsim.Network.t ->
  report
(** [expect_descriptor (proto, field, value)] enables the pass-through
    check: every speaker whose best route for [prefix] came from a peer
    must carry that exact descriptor value. *)

val ok : report -> bool

val peer_clean : Dbgp_core.Speaker.t -> Dbgp_core.Peer.t -> violation list
(** Post-teardown cleanliness for one (speaker, ex-peer) pair: after
    {!Dbgp_core.Speaker.remove_neighbor} nothing of the peer may remain
    in any pipeline stage — Adj-RIB-In routes, stale marks, Adj-RIB-Out
    state, peer-group membership — nor in the flap-damping memory.
    Empty = clean. *)

val pp_violation : Format.formatter -> violation -> unit
val pp : Format.formatter -> report -> unit

val to_snapshot : report -> Dbgp_obs.Snapshot.t
(** JSON-ready: speaker counts, per-kind violation counters, and the
    violation list rendered as strings. *)
