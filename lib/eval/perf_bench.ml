(* Hot-path performance benchmark: the numbers behind the
   allocation-elimination work.

   Converges seeded BRITE topologies (same generator and policy wiring
   as {!Pipeline_bench}) at 64+ originated prefixes under MRAI batching
   and reports, per topology size:

   - sustained updates/s (wall and CPU) over the full convergence run;
   - GC allocation per delivered update ([Gc] minor/major word deltas);
   - encode-cache and decode-memo hit rates from
     {!Dbgp_core.Codec.wire_metrics} counter deltas around the run.

   Each size runs twice: once with in-memory delivery (the headline
   throughput mode, comparable to the recorded pre-change baseline) and
   once with {!Dbgp_netsim.Network.set_wire_delivery} on, where every
   clean announcement crosses a real serialization boundary — encode on
   the sender (amortised by the encode cache), robust decode on the
   receiver (amortised by the decode memo).

   The pre-change baseline constants below were measured on this
   machine at 1000 ASes / 64 prefixes / MRAI 2.0 immediately before the
   interning + encode-once + heap-scheduler changes landed; [headline]
   reports the current run against them. *)

open Dbgp_types
module Network = Dbgp_netsim.Network
module Graph = Dbgp_topology.As_graph
module Brite = Dbgp_topology.Brite
module Metrics = Dbgp_obs.Metrics
module Snapshot = Dbgp_obs.Snapshot

type row = {
  ases : int;
  prefixes : int;
  wire : bool;
  messages : int;
  updates : int;
  events : int;
  elapsed_s : float;
  cpu_s : float;
  updates_per_s : float;
  updates_per_cpu_s : float;
  minor_words_per_update : float;
  major_words_per_update : float;
  peak_heap_words : int;
  live_words : int;
  enc_hits : int;
  enc_misses : int;
  enc_hit_rate : float;
  dec_hits : int;
  dec_misses : int;
  dec_hit_rate : float;
}

type headline = {
  row : row;
  baseline_updates_per_s : float;
  baseline_minor_words_per_update : float;
  speedup : float;
  minor_words_reduction : float;
}

(* Recorded on this machine at 1000 ASes / 64 prefixes / MRAI 2.0,
   in-memory delivery, at the commit preceding the hot-path work
   ("Restructure speaker into staged RIB pipeline..."). *)
let baseline_updates_per_s = 57_572.
let baseline_minor_words_per_update = 1487.3

let build ~seed ~ases =
  let rng = Prng.create seed in
  let g = Brite.generate rng { Brite.default with Brite.n = ases } in
  let net = Network.create () in
  for i = 0 to Graph.size g - 1 do
    ignore (Harness.add_as net (i + 1))
  done;
  Graph.fold_edges
    (fun a b view () ->
      let rel =
        match view with
        | Graph.Customer_of_me -> Dbgp_bgp.Policy.To_customer
        | Graph.Provider_of_me -> Dbgp_bgp.Policy.To_provider
        | Graph.Peer_of_me -> Dbgp_bgp.Policy.To_peer
      in
      Network.link net ~a:(Asn.of_int (a + 1)) ~b:(Asn.of_int (b + 1))
        ~b_is:rel ())
    g ();
  net

let wire_count name =
  Metrics.count (Metrics.counter (Dbgp_core.Codec.wire_metrics ()) name)

let rate hits misses =
  if hits + misses = 0 then 0.
  else float_of_int hits /. float_of_int (hits + misses)

let run ?(seed = 42) ?(prefixes = 64) ?(mrai = 2.0) ?(wire = false) ~ases () =
  let net = build ~seed ~ases in
  Network.set_mrai net mrai;
  Network.set_wire_delivery net wire;
  for i = 0 to prefixes - 1 do
    let prefix = Prefix.of_string (Printf.sprintf "99.%d.0.0/24" i) in
    let origin = Asn.of_int (1 + (i mod ases)) in
    Network.originate net origin
      (Dbgp_core.Ia.originate ~prefix ~origin_asn:origin
         ~next_hop:(Network.speaker_addr origin) ())
  done;
  Gc.compact ();
  let enc_hits0 = wire_count "wire.encode_cache.hits" in
  let enc_misses0 = wire_count "wire.encode_cache.misses" in
  let dec_hits0 = wire_count "wire.decode_memo.hits" in
  let dec_misses0 = wire_count "wire.decode_memo.misses" in
  let g0 = Gc.quick_stat () in
  let tm0 = Unix.times () in
  let t0 = Unix.gettimeofday () in
  let stats = Network.run net in
  let elapsed = Unix.gettimeofday () -. t0 in
  let tm1 = Unix.times () in
  let g1 = Gc.quick_stat () in
  let cpu =
    tm1.Unix.tms_utime -. tm0.Unix.tms_utime
    +. (tm1.Unix.tms_stime -. tm0.Unix.tms_stime)
  in
  let c = Network.counter_total net in
  let updates = c "updates.received" + c "withdrawals.received" in
  let per_update w = if updates = 0 then 0. else w /. float_of_int updates in
  let enc_hits = wire_count "wire.encode_cache.hits" - enc_hits0 in
  let enc_misses = wire_count "wire.encode_cache.misses" - enc_misses0 in
  let dec_hits = wire_count "wire.decode_memo.hits" - dec_hits0 in
  let dec_misses = wire_count "wire.decode_memo.misses" - dec_misses0 in
  { ases;
    prefixes;
    wire;
    messages = stats.Network.messages;
    updates;
    events = stats.Network.events;
    elapsed_s = elapsed;
    cpu_s = cpu;
    updates_per_s =
      (if elapsed > 0. then float_of_int updates /. elapsed else 0.);
    updates_per_cpu_s = (if cpu > 0. then float_of_int updates /. cpu else 0.);
    minor_words_per_update = per_update (g1.Gc.minor_words -. g0.Gc.minor_words);
    major_words_per_update = per_update (g1.Gc.major_words -. g0.Gc.major_words);
    peak_heap_words = g1.Gc.top_heap_words;
    live_words =
      (* Accurate live set needs a completed major cycle. *)
      (Gc.full_major ();
       (Gc.stat ()).Gc.live_words);
    enc_hits;
    enc_misses;
    enc_hit_rate = rate enc_hits enc_misses;
    dec_hits;
    dec_misses;
    dec_hit_rate = rate dec_hits dec_misses }

(* ------------------------------------------------------------------ *)
(* Sharded axis: the same BRITE convergence workload on a partitioned  *)
(* shard, swept over worker-domain counts.  The region count is fixed  *)
(* across the sweep so every run executes the identical partitioned    *)
(* schedule — the domain count is pure execution policy, and the       *)
(* transcript digest doubles as the determinism oracle.                *)
(* ------------------------------------------------------------------ *)

module Shard = Dbgp_netsim.Shard

type sharded_row = {
  s_ases : int;
  s_prefixes : int;
  s_domains : int;
  s_regions : int;
  s_cut_edges : int;
  s_lookahead : float;
  s_epochs : int;
  s_messages : int;
  s_updates : int;
  s_events : int;
  s_elapsed_s : float;
  s_cpu_s : float;
  s_updates_per_s : float;
  s_speedup_vs_1 : float;
  s_transcript_md5 : string;
  s_transcript_match : bool;
}

let build_sharded ~seed ~ases ~regions ~mrai =
  let rng = Prng.create seed in
  let g = Brite.generate rng { Brite.default with Brite.n = ases } in
  let sh =
    Shard.create ~mrai ~regions
      ~make_speaker:(fun a ->
        let asn = Asn.of_int a in
        Dbgp_core.Speaker.create
          (Dbgp_core.Speaker.config ~asn ~addr:(Network.speaker_addr asn) ()))
      ()
  in
  for i = 1 to Graph.size g do
    Shard.add_as sh i
  done;
  Graph.fold_edges
    (fun a b view () ->
      let rel =
        match view with
        | Graph.Customer_of_me -> Dbgp_bgp.Policy.To_customer
        | Graph.Provider_of_me -> Dbgp_bgp.Policy.To_provider
        | Graph.Peer_of_me -> Dbgp_bgp.Policy.To_peer
      in
      Shard.link sh ~a:(a + 1) ~b:(b + 1) ~b_is:rel ())
    g ();
  Shard.enable_transcript sh;
  Shard.build sh;
  sh

let run_sharded ?(seed = 42) ?(prefixes = 64) ?(mrai = 2.0) ?(regions = 8)
    ~ases ~domains () =
  let sh = build_sharded ~seed ~ases ~regions ~mrai in
  for i = 0 to prefixes - 1 do
    let prefix = Prefix.of_string (Printf.sprintf "99.%d.0.0/24" i) in
    let origin = Asn.of_int (1 + (i mod ases)) in
    Shard.originate sh (Asn.to_int origin)
      (Dbgp_core.Ia.originate ~prefix ~origin_asn:origin
         ~next_hop:(Network.speaker_addr origin) ())
  done;
  Gc.compact ();
  let tm0 = Unix.times () in
  let t0 = Unix.gettimeofday () in
  let stats = Shard.run ~domains sh in
  let elapsed = Unix.gettimeofday () -. t0 in
  let tm1 = Unix.times () in
  let cpu =
    tm1.Unix.tms_utime -. tm0.Unix.tms_utime
    +. (tm1.Unix.tms_stime -. tm0.Unix.tms_stime)
  in
  let c = Shard.counter_total sh in
  let updates = c "updates.received" + c "withdrawals.received" in
  { s_ases = ases;
    s_prefixes = prefixes;
    s_domains = stats.Shard.domains;
    s_regions = stats.Shard.regions;
    s_cut_edges = stats.Shard.cut_edges;
    s_lookahead = stats.Shard.lookahead;
    s_epochs = stats.Shard.epochs;
    s_messages = stats.Shard.net.Network.messages;
    s_updates = updates;
    s_events = stats.Shard.net.Network.events;
    s_elapsed_s = elapsed;
    s_cpu_s = cpu;
    s_updates_per_s =
      (if elapsed > 0. then float_of_int updates /. elapsed else 0.);
    s_speedup_vs_1 = 1.;
    s_transcript_md5 = Shard.transcript_digest sh;
    s_transcript_match = true }

let domains_suite ?(seed = 42) ?(prefixes = 64) ?(mrai = 2.0) ?(regions = 8)
    ?(domains = [ 1; 2; 4; 8 ]) ~ases () =
  let rows =
    List.map
      (fun d -> run_sharded ~seed ~prefixes ~mrai ~regions ~ases ~domains:d ())
      domains
  in
  match rows with
  | [] -> []
  | base :: _ ->
    List.map
      (fun r ->
        { r with
          s_speedup_vs_1 =
            (if base.s_updates_per_s > 0. then
               r.s_updates_per_s /. base.s_updates_per_s
             else 0.);
          s_transcript_match = r.s_transcript_md5 = base.s_transcript_md5 })
      rows

let sharded_to_snapshot r =
  Snapshot.Obj
    [ ("ases", Snapshot.Int r.s_ases);
      ("prefixes", Snapshot.Int r.s_prefixes);
      ("domains", Snapshot.Int r.s_domains);
      ("regions", Snapshot.Int r.s_regions);
      ("cut_edges", Snapshot.Int r.s_cut_edges);
      ("lookahead", Snapshot.Float r.s_lookahead);
      ("epochs", Snapshot.Int r.s_epochs);
      ("cores", Snapshot.Int (Domain.recommended_domain_count ()));
      ("messages", Snapshot.Int r.s_messages);
      ("updates", Snapshot.Int r.s_updates);
      ("events", Snapshot.Int r.s_events);
      ("elapsed_s", Snapshot.Float r.s_elapsed_s);
      ("cpu_s", Snapshot.Float r.s_cpu_s);
      ("updates_per_s", Snapshot.Float r.s_updates_per_s);
      ("speedup_vs_1_domain", Snapshot.Float r.s_speedup_vs_1);
      ("transcript_md5", Snapshot.String r.s_transcript_md5);
      ("transcript_match", Snapshot.Bool r.s_transcript_match) ]

let pp_sharded ppf r =
  Format.fprintf ppf
    "%4d ASes %3d pfx %d/%d domains/regions (%d cut, L=%.1f) %6d epochs  \
     %6d updates  %7.0f up/s  %.2fx vs 1-domain  transcript %s"
    r.s_ases r.s_prefixes r.s_domains r.s_regions r.s_cut_edges r.s_lookahead
    r.s_epochs r.s_updates r.s_updates_per_s r.s_speedup_vs_1
    (if r.s_transcript_match then "match" else "DIVERGED")

let suite ?(sizes = [ 100; 500; 1000 ]) ?(prefixes = 64) () =
  List.concat_map
    (fun ases ->
      [ run ~ases ~prefixes (); run ~ases ~prefixes ~wire:true () ])
    sizes

let headline rows =
  let pick =
    List.fold_left
      (fun acc r ->
        if r.wire then acc
        else
          match acc with
          | Some best when best.ases >= r.ases -> acc
          | _ -> Some r)
      None rows
  in
  match pick with
  | None -> None
  | Some row ->
    Some
      { row;
        baseline_updates_per_s;
        baseline_minor_words_per_update;
        speedup = row.updates_per_s /. baseline_updates_per_s;
        minor_words_reduction =
          1. -. (row.minor_words_per_update /. baseline_minor_words_per_update)
      }

let to_snapshot r =
  Snapshot.Obj
    [ ("ases", Snapshot.Int r.ases);
      ("prefixes", Snapshot.Int r.prefixes);
      ("wire", Snapshot.Bool r.wire);
      ("messages", Snapshot.Int r.messages);
      ("updates", Snapshot.Int r.updates);
      ("events", Snapshot.Int r.events);
      ("elapsed_s", Snapshot.Float r.elapsed_s);
      ("cpu_s", Snapshot.Float r.cpu_s);
      ("updates_per_s", Snapshot.Float r.updates_per_s);
      ("updates_per_cpu_s", Snapshot.Float r.updates_per_cpu_s);
      ("minor_words_per_update", Snapshot.Float r.minor_words_per_update);
      ("major_words_per_update", Snapshot.Float r.major_words_per_update);
      ("peak_heap_words", Snapshot.Int r.peak_heap_words);
      ("live_words", Snapshot.Int r.live_words);
      ("encode_cache_hits", Snapshot.Int r.enc_hits);
      ("encode_cache_misses", Snapshot.Int r.enc_misses);
      ("encode_cache_hit_rate", Snapshot.Float r.enc_hit_rate);
      ("decode_memo_hits", Snapshot.Int r.dec_hits);
      ("decode_memo_misses", Snapshot.Int r.dec_misses);
      ("decode_memo_hit_rate", Snapshot.Float r.dec_hit_rate) ]

let headline_to_snapshot h =
  Snapshot.Obj
    [ ("ases", Snapshot.Int h.row.ases);
      ("prefixes", Snapshot.Int h.row.prefixes);
      ("updates_per_s", Snapshot.Float h.row.updates_per_s);
      ("baseline_updates_per_s", Snapshot.Float h.baseline_updates_per_s);
      ("speedup", Snapshot.Float h.speedup);
      ("minor_words_per_update", Snapshot.Float h.row.minor_words_per_update);
      ( "baseline_minor_words_per_update",
        Snapshot.Float h.baseline_minor_words_per_update );
      ("minor_words_reduction", Snapshot.Float h.minor_words_reduction) ]

let pp ppf r =
  Format.fprintf ppf
    "%4d ASes %3d pfx %-6s %6d updates  %7.0f up/s (%7.0f cpu)  \
     %6.0f minor w/up  enc %d/%d (%.0f%%)  dec %d/%d (%.0f%%)"
    r.ases r.prefixes
    (if r.wire then "wire" else "memory")
    r.updates r.updates_per_s r.updates_per_cpu_s r.minor_words_per_update
    r.enc_hits
    (r.enc_hits + r.enc_misses)
    (100. *. r.enc_hit_rate) r.dec_hits
    (r.dec_hits + r.dec_misses)
    (100. *. r.dec_hit_rate)

let pp_headline ppf h =
  Format.fprintf ppf
    "%d ASes / %d prefixes (in-memory): %.0f updates/s vs %.0f baseline \
     (%.2fx); %.0f minor words/update vs %.1f baseline (%.0f%% less)"
    h.row.ases h.row.prefixes h.row.updates_per_s h.baseline_updates_per_s
    h.speedup h.row.minor_words_per_update h.baseline_minor_words_per_update
    (100. *. h.minor_words_reduction)
