(** Hot-path performance benchmark: the numbers behind the
    allocation-elimination work (interned IAs, encode-once wire sharing,
    heap-backed event queue).

    Converges seeded BRITE topologies at 64+ originated prefixes under
    MRAI batching and reports sustained updates/s (wall and CPU), GC
    words allocated per delivered update, and the
    [wire.encode_cache.*] / [wire.decode_memo.*] hit rates from
    {!Dbgp_core.Codec.wire_metrics} counter deltas around the run.

    Each size runs in two delivery modes: {e memory} (announcements
    handed over as in-memory values — the headline throughput mode,
    comparable to the recorded pre-change baseline) and {e wire}
    ({!Dbgp_netsim.Network.set_wire_delivery}: every clean announcement
    is encoded by the sender and robustly decoded by the receiver, so
    both wire caches face real fan-out traffic).

    Topology and message counts are deterministic for a given seed; the
    timing and GC fields are machine-dependent. *)

type row = {
  ases : int;
  prefixes : int;
  wire : bool;             (** wire-faithful delivery was enabled *)
  messages : int;          (** wire messages delivered network-wide *)
  updates : int;           (** announcements + withdrawals handed to speakers *)
  events : int;            (** simulator events executed *)
  elapsed_s : float;
  cpu_s : float;           (** user + system CPU time ([Unix.times]) *)
  updates_per_s : float;   (** wall-clock *)
  updates_per_cpu_s : float;
  minor_words_per_update : float;
  major_words_per_update : float;
  peak_heap_words : int;   (** major-heap high-water mark after the run *)
  live_words : int;        (** live words after the run (post full major) *)
  enc_hits : int;          (** [wire.encode_cache.hits] delta *)
  enc_misses : int;
  enc_hit_rate : float;
  dec_hits : int;          (** [wire.decode_memo.hits] delta *)
  dec_misses : int;
  dec_hit_rate : float;
}

type headline = {
  row : row;               (** largest in-memory row of the suite *)
  baseline_updates_per_s : float;
  baseline_minor_words_per_update : float;
  speedup : float;         (** row vs recorded pre-change baseline *)
  minor_words_reduction : float;  (** 1 - current/baseline *)
}

val run :
  ?seed:int -> ?prefixes:int -> ?mrai:float -> ?wire:bool -> ases:int ->
  unit -> row
(** Defaults: seed 42, 64 prefixes, MRAI 2.0 s, in-memory delivery. *)

val suite : ?sizes:int list -> ?prefixes:int -> unit -> row list
(** Two {!run}s (memory then wire) per topology size; default sizes
    100, 500 and 1000 ASes at 64 prefixes. *)

val headline : row list -> headline option
(** The largest in-memory row compared against the recorded pre-change
    baseline (57,572 updates/s and 1487.3 minor words/update at
    1000 ASes / 64 prefixes on the reference machine).  [None] if the
    list holds no in-memory row. *)

(** {1 Sharded axis}

    The same BRITE convergence workload on a partitioned shard
    ({!Dbgp_netsim.Shard}), swept over worker-domain counts at a fixed
    region count — every run executes the identical partitioned
    schedule, so the transcript digest doubles as the determinism
    oracle: any divergence from the 1-domain digest is a correctness
    failure, not noise. *)

type sharded_row = {
  s_ases : int;
  s_prefixes : int;
  s_domains : int;         (** worker domains actually used *)
  s_regions : int;
  s_cut_edges : int;
  s_lookahead : float;     (** conservative window: min cut latency + MRAI *)
  s_epochs : int;          (** barrier rounds *)
  s_messages : int;
  s_updates : int;
  s_events : int;
  s_elapsed_s : float;
  s_cpu_s : float;
  s_updates_per_s : float;
  s_speedup_vs_1 : float;  (** vs the sweep's first (1-domain) row *)
  s_transcript_md5 : string;
  s_transcript_match : bool;  (** digest equals the 1-domain digest *)
}

val run_sharded :
  ?seed:int -> ?prefixes:int -> ?mrai:float -> ?regions:int -> ases:int ->
  domains:int -> unit -> sharded_row
(** One sharded convergence run.  Defaults: seed 42, 64 prefixes,
    MRAI 2.0 s, 8 regions.  [s_speedup_vs_1] and [s_transcript_match]
    are filled against the run itself; use {!domains_suite} for the
    cross-domain comparison. *)

val domains_suite :
  ?seed:int -> ?prefixes:int -> ?mrai:float -> ?regions:int ->
  ?domains:int list -> ases:int -> unit -> sharded_row list
(** One {!run_sharded} per domain count (default [1; 2; 4; 8]), with
    speedups and transcript matches computed against the first row. *)

val sharded_to_snapshot : sharded_row -> Dbgp_obs.Snapshot.t
(** Includes a ["cores"] field ({!Domain.recommended_domain_count}) so
    recorded numbers carry their hardware context. *)

val pp_sharded : Format.formatter -> sharded_row -> unit

val to_snapshot : row -> Dbgp_obs.Snapshot.t
val headline_to_snapshot : headline -> Dbgp_obs.Snapshot.t
val pp : Format.formatter -> row -> unit
val pp_headline : Format.formatter -> headline -> unit
