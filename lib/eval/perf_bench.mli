(** Hot-path performance benchmark: the numbers behind the
    allocation-elimination work (interned IAs, encode-once wire sharing,
    heap-backed event queue).

    Converges seeded BRITE topologies at 64+ originated prefixes under
    MRAI batching and reports sustained updates/s (wall and CPU), GC
    words allocated per delivered update, and the
    [wire.encode_cache.*] / [wire.decode_memo.*] hit rates from
    {!Dbgp_core.Codec.wire_metrics} counter deltas around the run.

    Each size runs in two delivery modes: {e memory} (announcements
    handed over as in-memory values — the headline throughput mode,
    comparable to the recorded pre-change baseline) and {e wire}
    ({!Dbgp_netsim.Network.set_wire_delivery}: every clean announcement
    is encoded by the sender and robustly decoded by the receiver, so
    both wire caches face real fan-out traffic).

    Topology and message counts are deterministic for a given seed; the
    timing and GC fields are machine-dependent. *)

type row = {
  ases : int;
  prefixes : int;
  wire : bool;             (** wire-faithful delivery was enabled *)
  messages : int;          (** wire messages delivered network-wide *)
  updates : int;           (** announcements + withdrawals handed to speakers *)
  events : int;            (** simulator events executed *)
  elapsed_s : float;
  cpu_s : float;           (** user + system CPU time ([Unix.times]) *)
  updates_per_s : float;   (** wall-clock *)
  updates_per_cpu_s : float;
  minor_words_per_update : float;
  major_words_per_update : float;
  enc_hits : int;          (** [wire.encode_cache.hits] delta *)
  enc_misses : int;
  enc_hit_rate : float;
  dec_hits : int;          (** [wire.decode_memo.hits] delta *)
  dec_misses : int;
  dec_hit_rate : float;
}

type headline = {
  row : row;               (** largest in-memory row of the suite *)
  baseline_updates_per_s : float;
  baseline_minor_words_per_update : float;
  speedup : float;         (** row vs recorded pre-change baseline *)
  minor_words_reduction : float;  (** 1 - current/baseline *)
}

val run :
  ?seed:int -> ?prefixes:int -> ?mrai:float -> ?wire:bool -> ases:int ->
  unit -> row
(** Defaults: seed 42, 64 prefixes, MRAI 2.0 s, in-memory delivery. *)

val suite : ?sizes:int list -> ?prefixes:int -> unit -> row list
(** Two {!run}s (memory then wire) per topology size; default sizes
    100, 500 and 1000 ASes at 64 prefixes. *)

val headline : row list -> headline option
(** The largest in-memory row compared against the recorded pre-change
    baseline (57,572 updates/s and 1487.3 minor words/update at
    1000 ASes / 64 prefixes on the reference machine).  [None] if the
    list holds no in-memory row. *)

val to_snapshot : row -> Dbgp_obs.Snapshot.t
val headline_to_snapshot : headline -> Dbgp_obs.Snapshot.t
val pp : Format.formatter -> row -> unit
val pp_headline : Format.formatter -> headline -> unit
