(* Pipeline benchmark: quantifies what the staged RIB pipeline saves.

   Converges a BRITE topology under a positive MRAI (so the receive side
   batches into the dirty-prefix scheduler) and reports, from the
   speakers' own pipeline counters, how many decision runs the
   coalescing avoided and how often the per-group export cache served an
   egress computation. *)

open Dbgp_types
module Network = Dbgp_netsim.Network
module Graph = Dbgp_topology.As_graph
module Brite = Dbgp_topology.Brite
module Snapshot = Dbgp_obs.Snapshot

type row = {
  ases : int;
  prefixes : int;
  messages : int;          (* wire messages delivered network-wide *)
  updates : int;           (* announcements + withdrawals handed to speakers *)
  decision_runs : int;
  runs_per_update : float; (* < 1.0 means coalescing beat run-per-message *)
  dirty_marks : int;
  runs_saved : int;
  drains : int;
  export_hits : int;
  export_misses : int;
  export_hit_rate : float;
  elapsed_s : float;
  updates_per_s : float;
}

let build ~seed ~ases =
  let rng = Prng.create seed in
  let g = Brite.generate rng { Brite.default with Brite.n = ases } in
  let net = Network.create () in
  for i = 0 to Graph.size g - 1 do
    ignore (Harness.add_as net (i + 1))
  done;
  Graph.fold_edges
    (fun a b view () ->
      let rel =
        match view with
        | Graph.Customer_of_me -> Dbgp_bgp.Policy.To_customer
        | Graph.Provider_of_me -> Dbgp_bgp.Policy.To_provider
        | Graph.Peer_of_me -> Dbgp_bgp.Policy.To_peer
      in
      Network.link net ~a:(Asn.of_int (a + 1)) ~b:(Asn.of_int (b + 1))
        ~b_is:rel ())
    g ();
  net

let run ?(seed = 42) ?(prefixes = 4) ?(mrai = 2.0) ~ases () =
  let net = build ~seed ~ases in
  Network.set_mrai net mrai;
  (* One prefix per origin AS, spread over the low ASNs so origins sit in
     different parts of the hierarchy. *)
  for i = 0 to prefixes - 1 do
    let prefix = Prefix.of_string (Printf.sprintf "99.%d.0.0/24" i) in
    let origin = Asn.of_int (1 + (i mod ases)) in
    Network.originate net origin
      (Dbgp_core.Ia.originate ~prefix ~origin_asn:origin
         ~next_hop:(Network.speaker_addr origin) ())
  done;
  Gc.compact ();
  let t0 = Unix.gettimeofday () in
  let stats = Network.run net in
  let elapsed = Unix.gettimeofday () -. t0 in
  let c = Network.counter_total net in
  let updates = c "updates.received" + c "withdrawals.received" in
  let decision_runs = c "decision.runs" in
  let hits = c "pipeline.export_cache.hits" in
  let misses = c "pipeline.export_cache.misses" in
  { ases;
    prefixes;
    messages = stats.Network.messages;
    updates;
    decision_runs;
    runs_per_update =
      (if updates = 0 then 0.
       else float_of_int decision_runs /. float_of_int updates);
    dirty_marks = c "pipeline.dirty_marks";
    runs_saved = c "pipeline.runs_saved";
    drains = c "pipeline.drains";
    export_hits = hits;
    export_misses = misses;
    export_hit_rate =
      (if hits + misses = 0 then 0.
       else float_of_int hits /. float_of_int (hits + misses));
    elapsed_s = elapsed;
    updates_per_s =
      (if elapsed > 0. then float_of_int updates /. elapsed else 0.) }

let suite ?(sizes = [ 100; 500; 1000 ]) () =
  List.map (fun ases -> run ~ases ()) sizes

let to_snapshot r =
  Snapshot.Obj
    [ ("ases", Snapshot.Int r.ases);
      ("prefixes", Snapshot.Int r.prefixes);
      ("messages", Snapshot.Int r.messages);
      ("updates", Snapshot.Int r.updates);
      ("decision_runs", Snapshot.Int r.decision_runs);
      ("runs_per_update", Snapshot.Float r.runs_per_update);
      ("dirty_marks", Snapshot.Int r.dirty_marks);
      ("runs_saved", Snapshot.Int r.runs_saved);
      ("drains", Snapshot.Int r.drains);
      ("export_hits", Snapshot.Int r.export_hits);
      ("export_misses", Snapshot.Int r.export_misses);
      ("export_hit_rate", Snapshot.Float r.export_hit_rate);
      ("elapsed_s", Snapshot.Float r.elapsed_s);
      ("updates_per_s", Snapshot.Float r.updates_per_s) ]

let pp ppf r =
  Format.fprintf ppf
    "%4d ASes  %6d msgs  %6d updates  %6d runs (%.3f/update, %d saved)  \
     cache %d/%d (%.0f%%)  %.2fs"
    r.ases r.messages r.updates r.decision_runs r.runs_per_update r.runs_saved
    r.export_hits
    (r.export_hits + r.export_misses)
    (100. *. r.export_hit_rate)
    r.elapsed_s
