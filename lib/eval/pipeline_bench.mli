(** Pipeline benchmark: what the staged RIB pipeline saves.

    Converges seeded BRITE topologies under a positive MRAI — so arriving
    updates are batched into each speaker's dirty-prefix scheduler and
    drained once per interval — and reports, from the speakers' own
    [pipeline.*] counters:

    - {e decision runs per delivered update}: below 1.0 whenever
      coalescing beats the eager run-per-message speaker;
    - the {e export-cache hit rate}: how often a per-neighbor egress
      computation was served from the per-group cache instead of being
      recomputed.

    Deterministic for a given seed except for the wall-clock fields. *)

type row = {
  ases : int;
  prefixes : int;
  messages : int;          (** wire messages delivered network-wide *)
  updates : int;           (** announcements + withdrawals handed to speakers *)
  decision_runs : int;
  runs_per_update : float; (** < 1.0 means coalescing beat run-per-message *)
  dirty_marks : int;
  runs_saved : int;
  drains : int;
  export_hits : int;
  export_misses : int;
  export_hit_rate : float;
  elapsed_s : float;
  updates_per_s : float;
}

val run : ?seed:int -> ?prefixes:int -> ?mrai:float -> ases:int -> unit -> row
(** Defaults: seed 42, 4 prefixes (originated from distinct low ASNs),
    MRAI 2.0 s. *)

val suite : ?sizes:int list -> unit -> row list
(** One {!run} per topology size; default sizes 100, 500 and 1000 ASes. *)

val to_snapshot : row -> Dbgp_obs.Snapshot.t
val pp : Format.formatter -> row -> unit
