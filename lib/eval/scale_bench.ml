(* Internet-scale RIB benchmark: the numbers behind the streaming
   table-transfer and compressed-trie work.

   Each row builds a seeded CAIDA-style power-law topology
   ({!Dbgp_topology.Caida}), converges a small background prefix set
   across the whole graph (the topology-scale updates/s figure), then
   loads a full-size table at a single-homed stub feed whose provider
   re-exports nothing — the classic "route collector" arrangement that
   lets a 100k-prefix table exist without flooding 10k ASes with 10^9
   updates.  On the loaded table it measures:

   - sustained updates/s (wall and CPU) for the table load;
   - resident words/route from the network's [Obj.reachable_words]
     delta around the load (FIB tries forced), i.e. the combined
     sender + receiver footprint of one route crossing the pipeline;
   - table-transfer message counts for a session bounce on the feed
     link, three ways: [full] (no graceful restart — the legacy
     re-announce storm, ~1 message per route), [clean] (graceful
     restart, nothing changed while down — the streamed incremental
     sync should send ~0 and skip ~all), and [churn] (a slice of the
     table re-originated while the session was down — the sync should
     re-send just that slice). *)

open Dbgp_types
module Network = Dbgp_netsim.Network
module Event_queue = Dbgp_netsim.Event_queue
module Graph = Dbgp_topology.As_graph
module Caida = Dbgp_topology.Caida
module Filters = Dbgp_core.Filters
module Speaker = Dbgp_core.Speaker
module Metrics = Dbgp_obs.Metrics
module Snapshot = Dbgp_obs.Snapshot

type row = {
  ases : int;
  prefixes : int;       (* feed table size *)
  bg_prefixes : int;
  edges : int;
  bg_updates : int;
  bg_elapsed_s : float;
  bg_updates_per_s : float;
  load_updates : int;
  load_elapsed_s : float;
  load_cpu_s : float;
  load_updates_per_s : float;
  words_per_route : float;
  attr_sets : int;          (* resident shared attribute sets after load *)
  peak_heap_words : int;    (* major-heap high-water mark after load *)
  live_words : int;         (* live words after load (post full major) *)
  full_transfer_msgs : int;
  full_transfer_bytes : int;
  batched_transfer_msgs : int;
  batched_transfer_bytes : int;
  batch_frames : int;
  clean_transfer_msgs : int;
  clean_skipped : int;
  churn_routes : int;
  churn_transfer_msgs : int;
}

(* /24s spread over 192.0.0.0/2 by a multiplicative hash: the odd
   multiplier is invertible mod 2^22, so up to ~4M indices map to
   distinct networks, and the bit-scattered spread exercises the
   path-compressed trie far harder than a sequential range would. *)
let feed_addr i = Ipv4.of_int (0xC0000000 lor (((i * 2654435761) land 0x3FFFFF) lsl 8))
let feed_prefix i = Prefix.make (feed_addr i) 24

(* The feed is a single-homed stub; its provider is the collector. *)
let feed_and_provider g =
  let rec pick = function
    | [] -> invalid_arg "Scale_bench: topology has no single-homed stub"
    | v :: rest ->
      if Graph.degree g v = 1 then
        match Graph.providers g v with
        | [ p ] -> (v, p)
        | _ -> pick rest
      else pick rest
  in
  pick (Graph.stubs g)

let build ~seed ~ases =
  let rng = Prng.create seed in
  let g = Caida.generate rng { Caida.default with Caida.n = ases } in
  let feed, provider = feed_and_provider g in
  let net = Network.create () in
  for i = 0 to Graph.size g - 1 do
    ignore (Harness.add_as net (i + 1))
  done;
  Graph.fold_edges
    (fun a b view () ->
      let rel =
        match view with
        | Graph.Customer_of_me -> Dbgp_bgp.Policy.To_customer
        | Graph.Provider_of_me -> Dbgp_bgp.Policy.To_provider
        | Graph.Peer_of_me -> Dbgp_bgp.Policy.To_peer
      in
      let pa = Asn.of_int (a + 1) and pb = Asn.of_int (b + 1) in
      (* The collector keeps the feed's table to itself: exporting
         nothing bounds propagation to one hop, so the table's cost is
         measured, not the flood's. *)
      if a = provider then
        Network.link net ~a_export:Filters.reject ~a:pa ~b:pb ~b_is:rel ()
      else if b = provider then
        Network.link net ~b_export:Filters.reject ~a:pa ~b:pb ~b_is:rel ()
      else Network.link net ~a:pa ~b:pb ~b_is:rel ())
    g ();
  (net, g, Asn.of_int (feed + 1), Asn.of_int (provider + 1), feed, provider)

(* [Gc.live_words] deltas are swamped by unrelated collection when
   several cells run in one process (a later cell's load phase frees the
   previous cell's network), so measure the network's own footprint:
   every word reachable from it, counting shared blocks once. *)
let net_words net = Obj.reachable_words (Obj.repr net)

let run ?(seed = 42) ?(bg = 32) ?(mrai = 0.5) ?(churn_frac = 0.05) ~ases
    ~prefixes () =
  (* Rows must be independent: a previous cell's speakers were dropped
     without teardown, so their attribute sets would otherwise stay
     resident and pollute this row's [attr_sets]. *)
  Dbgp_core.Attr_table.reset ();
  let net, g, feed_asn, prov_asn, feed, provider = build ~seed ~ases in
  Network.set_mrai net mrai;
  let c = Network.counter_total net in
  let msgs () = Metrics.count (Metrics.counter (Network.metrics net) "net.messages") in
  let updates () = c "updates.received" + c "withdrawals.received" in
  (* Background convergence: a handful of prefixes originated at spread
     ASes and flooded valley-free across the whole topology — the
     updates/s number that scales with [ases]. *)
  let rec bg_origin id =
    if id = feed || id = provider then bg_origin ((id + 1) mod ases) else id
  in
  for i = 0 to bg - 1 do
    let origin = Asn.of_int (1 + bg_origin (i * 7919 mod ases)) in
    let prefix =
      Prefix.of_string (Printf.sprintf "99.%d.%d.0/24" (i / 256) (i mod 256))
    in
    Network.originate net origin
      (Dbgp_core.Ia.originate ~prefix ~origin_asn:origin
         ~next_hop:(Network.speaker_addr origin) ())
  done;
  let u0 = updates () in
  let t0 = Unix.gettimeofday () in
  ignore (Network.run net);
  let bg_elapsed = Unix.gettimeofday () -. t0 in
  let bg_updates = updates () - u0 in
  (* Full-table load at the feed. *)
  let w0 = net_words net in
  let u0 = updates () in
  let tm0 = Unix.times () in
  let t0 = Unix.gettimeofday () in
  for i = 0 to prefixes - 1 do
    Network.originate net feed_asn
      (Dbgp_core.Ia.originate ~prefix:(feed_prefix i) ~origin_asn:feed_asn
         ~next_hop:(Network.speaker_addr feed_asn) ())
  done;
  ignore (Network.run net);
  let load_elapsed = Unix.gettimeofday () -. t0 in
  let tm1 = Unix.times () in
  let load_cpu =
    tm1.Unix.tms_utime -. tm0.Unix.tms_utime
    +. (tm1.Unix.tms_stime -. tm0.Unix.tms_stime)
  in
  let load_updates = updates () - u0 in
  (* Force the collector's FIB trie so the words/route figure includes
     the compressed data-plane structures, not just the hash RIBs. *)
  ignore (Speaker.next_hop_of (Network.speaker net prov_asn) (feed_addr 0));
  let w1 = net_words net in
  let words_per_route =
    if prefixes = 0 then 0.
    else float_of_int (w1 - w0) /. float_of_int prefixes
  in
  let attr_sets = Dbgp_core.Attr_table.occupancy () in
  (* Heap figures for the loaded table: the major-heap high-water mark
     over the run so far, and the live set after a full major (so dead
     load-phase garbage doesn't inflate it). *)
  Gc.full_major ();
  let gc = Gc.stat () in
  let peak_heap_words = gc.Gc.top_heap_words in
  let live_words = gc.Gc.live_words in
  let abytes () =
    Metrics.count (Metrics.counter (Network.metrics net) "net.announce_bytes")
  in
  let frames () =
    Metrics.count (Metrics.counter (Network.metrics net) "net.batch.frames")
  in
  (* Arm 1 — the legacy storm: no graceful restart, so the bounce drops
     and refreshes the full table, one message per route (the per-prefix
     baseline the batched arm is judged against). *)
  Network.set_graceful_restart net None;
  Network.fail_link net feed_asn prov_asn;
  ignore (Network.run net);
  let m0 = msgs () in
  let b0 = abytes () in
  Network.recover_link net feed_asn prov_asn;
  ignore (Network.run net);
  let full_transfer_msgs = msgs () - m0 in
  let full_transfer_bytes = abytes () - b0 in
  (* Arm 1b — the same storm with attribute-bucketed frames: the feed's
     table shares one attribute set, so each MRAI flush leaves as one
     multi-prefix frame (one attribute block + NLRI list) instead of one
     message per prefix. *)
  Network.set_batching net true;
  Network.fail_link net feed_asn prov_asn;
  ignore (Network.run net);
  let m0 = msgs () in
  let b0 = abytes () in
  let f0 = frames () in
  Network.recover_link net feed_asn prov_asn;
  ignore (Network.run net);
  Network.set_batching net false;
  let batched_transfer_msgs = msgs () - m0 in
  let batched_transfer_bytes = abytes () - b0 in
  let batch_frames = frames () - f0 in
  (* Arm 2 — clean incremental re-establish inside the graceful window:
     both Adj-RIB-Outs survived, nothing changed, so the streamed sync
     should skip everything. *)
  Network.set_graceful_restart net (Some 1e9);
  Network.fail_link net feed_asn prov_asn;
  let m0 = msgs () in
  let sk0 = c "sync.skipped" in
  Network.recover_link net feed_asn prov_asn;
  ignore (Network.run net);
  let clean_transfer_msgs = msgs () - m0 in
  let clean_skipped = c "sync.skipped" - sk0 in
  (* Arm 3 — churn under the outage: a slice of the table re-originates
     while the session is down (the sends die on the cut link and demote
     their Adj-RIB-Out records), so the sync must re-send exactly that
     slice.  The recover is scheduled after the churn events fire. *)
  let churn_routes = max 1 (int_of_float (churn_frac *. float_of_int prefixes)) in
  let q = Network.queue net in
  Network.fail_link net feed_asn prov_asn;
  for i = prefixes to prefixes + churn_routes - 1 do
    Network.originate net feed_asn
      (Dbgp_core.Ia.originate ~prefix:(feed_prefix i) ~origin_asn:feed_asn
         ~next_hop:(Network.speaker_addr feed_asn) ())
  done;
  let m0 = msgs () in
  Event_queue.schedule q ~delay:5.0 (fun () ->
      Network.recover_link net feed_asn prov_asn);
  ignore (Network.run net);
  let churn_transfer_msgs = msgs () - m0 in
  { ases;
    prefixes;
    bg_prefixes = bg;
    edges = Graph.edge_count g;
    bg_updates;
    bg_elapsed_s = bg_elapsed;
    bg_updates_per_s =
      (if bg_elapsed > 0. then float_of_int bg_updates /. bg_elapsed else 0.);
    load_updates;
    load_elapsed_s = load_elapsed;
    load_cpu_s = load_cpu;
    load_updates_per_s =
      (if load_elapsed > 0. then float_of_int load_updates /. load_elapsed
       else 0.);
    words_per_route;
    attr_sets;
    peak_heap_words;
    live_words;
    full_transfer_msgs;
    full_transfer_bytes;
    batched_transfer_msgs;
    batched_transfer_bytes;
    batch_frames;
    clean_transfer_msgs;
    clean_skipped;
    churn_routes;
    churn_transfer_msgs }

let smoke ?(seed = 42) () = run ~seed ~bg:16 ~ases:100 ~prefixes:1_000 ()

let suite ?(seed = 42)
    ?(grid =
      [ (1_000, 1_000);
        (1_000, 100_000);
        (10_000, 1_000);
        (10_000, 100_000);
        (70_000, 10_000);
        (1_000, 1_000_000) ])
    () =
  List.map
    (fun (ases, prefixes) ->
      (* At Internet AS-count the background flood dominates wall time
         without adding information; a smaller bg set keeps the 70k row
         about the table, not the flood. *)
      let bg = if ases >= 50_000 then 8 else 32 in
      run ~seed ~bg ~ases ~prefixes ())
    grid

let to_snapshot r =
  Snapshot.Obj
    [ ("ases", Snapshot.Int r.ases);
      ("prefixes", Snapshot.Int r.prefixes);
      ("bg_prefixes", Snapshot.Int r.bg_prefixes);
      ("edges", Snapshot.Int r.edges);
      ("bg_updates", Snapshot.Int r.bg_updates);
      ("bg_elapsed_s", Snapshot.Float r.bg_elapsed_s);
      ("bg_updates_per_s", Snapshot.Float r.bg_updates_per_s);
      ("load_updates", Snapshot.Int r.load_updates);
      ("load_elapsed_s", Snapshot.Float r.load_elapsed_s);
      ("load_cpu_s", Snapshot.Float r.load_cpu_s);
      ("load_updates_per_s", Snapshot.Float r.load_updates_per_s);
      ("words_per_route", Snapshot.Float r.words_per_route);
      ("attr_sets", Snapshot.Int r.attr_sets);
      ("peak_heap_words", Snapshot.Int r.peak_heap_words);
      ("live_words", Snapshot.Int r.live_words);
      ("full_transfer_msgs", Snapshot.Int r.full_transfer_msgs);
      ("full_transfer_bytes", Snapshot.Int r.full_transfer_bytes);
      ("batched_transfer_msgs", Snapshot.Int r.batched_transfer_msgs);
      ("batched_transfer_bytes", Snapshot.Int r.batched_transfer_bytes);
      ("batch_frames", Snapshot.Int r.batch_frames);
      ("clean_transfer_msgs", Snapshot.Int r.clean_transfer_msgs);
      ("clean_skipped", Snapshot.Int r.clean_skipped);
      ("churn_routes", Snapshot.Int r.churn_routes);
      ("churn_transfer_msgs", Snapshot.Int r.churn_transfer_msgs) ]

let pp ppf r =
  Format.fprintf ppf
    "%5d ASes %7d pfx  %7.0f bg-up/s  %7.0f load-up/s  %5.1f words/route  \
     (%d attr sets, %.1fM live words)  transfer full %d msgs/%d B, batched \
     %d msgs/%d B in %d frames / clean %d (skipped %d) / churn %d (of %d \
     changed)"
    r.ases r.prefixes r.bg_updates_per_s r.load_updates_per_s r.words_per_route
    r.attr_sets
    (float_of_int r.live_words /. 1e6)
    r.full_transfer_msgs r.full_transfer_bytes r.batched_transfer_msgs
    r.batched_transfer_bytes r.batch_frames r.clean_transfer_msgs
    r.clean_skipped r.churn_transfer_msgs r.churn_routes
