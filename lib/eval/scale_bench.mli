(** Internet-scale RIB benchmark: streaming table transfer and
    compressed-trie footprint on CAIDA-style power-law topologies.

    Each {!row} converges a background prefix set across the whole
    topology, then loads a full-size table at a single-homed stub feed
    whose provider (a route collector) re-exports nothing, and bounces
    the feed link three ways to compare table-transfer cost:

    - [full_transfer_msgs]/[full_transfer_bytes]: no graceful restart —
      the legacy session-establish re-announce storm, ~1 message per
      route (the per-prefix baseline);
    - [batched_transfer_msgs]/[batched_transfer_bytes]: the same storm
      with attribute-bucketed frames ({!Dbgp_netsim.Network.set_batching})
      — the table shares one attribute set, so it crosses in
      [batch_frames] multi-prefix frames;
    - [clean_transfer_msgs]: re-establish inside the graceful window
      with nothing changed — the streamed incremental sync should send
      ~0 and skip ~the whole table ([clean_skipped]);
    - [churn_transfer_msgs]: [churn_routes] re-originated while the
      session was down — the sync should re-send just those.

    [words_per_route] is the network's [Obj.reachable_words] delta
    across the table load (FIB tries forced, shared blocks counted
    once) divided by the table size: the combined sender + receiver
    resident footprint of one route.  [attr_sets] is the compact route
    store's resident shared attribute-set count after the load;
    [peak_heap_words]/[live_words] are the process major-heap
    high-water mark and post-full-major live set.  The results ship in
    [BENCH_scale.json]. *)

type row = {
  ases : int;
  prefixes : int;       (** feed table size *)
  bg_prefixes : int;
  edges : int;
  bg_updates : int;
  bg_elapsed_s : float;
  bg_updates_per_s : float;
  load_updates : int;
  load_elapsed_s : float;
  load_cpu_s : float;
  load_updates_per_s : float;
  words_per_route : float;
  attr_sets : int;
  peak_heap_words : int;
  live_words : int;
  full_transfer_msgs : int;
  full_transfer_bytes : int;
  batched_transfer_msgs : int;
  batched_transfer_bytes : int;
  batch_frames : int;
  clean_transfer_msgs : int;
  clean_skipped : int;
  churn_routes : int;
  churn_transfer_msgs : int;
}

val feed_prefix : int -> Dbgp_types.Prefix.t
(** The deterministic table contents: /24s spread over 192.0.0.0/2 by a
    multiplicative hash (distinct for indices below ~4M). *)

val run :
  ?seed:int ->
  ?bg:int ->
  ?mrai:float ->
  ?churn_frac:float ->
  ases:int ->
  prefixes:int ->
  unit ->
  row
(** One cell: build, converge background, load the table, bounce the
    feed link three ways.  Defaults: [seed 42], [bg 32], [mrai 0.5],
    [churn_frac 0.05]. *)

val smoke : ?seed:int -> unit -> row
(** The [@scale] runtest cell: 100 ASes, 1k prefixes, 16 background. *)

val suite : ?seed:int -> ?grid:(int * int) list -> unit -> row list
(** Default grid: {1k, 10k} ASes x {1k, 100k} prefixes, plus the two
    Internet-scale rows — 70k ASes with a 10k-prefix table (background
    set reduced to 8) and 1k ASes with a 1M-prefix table. *)

val to_snapshot : row -> Dbgp_obs.Snapshot.t
val pp : Format.formatter -> row -> unit
