open Dbgp_types
module Speaker = Dbgp_core.Speaker
module Ia = Dbgp_core.Ia
module Value = Dbgp_core.Value
module Network = Dbgp_netsim.Network
module Lookup = Dbgp_netsim.Lookup_service
module P = Dbgp_bgp.Policy
module Wiser = Dbgp_protocols.Wiser
module Pathlet = Dbgp_protocols.Pathlet
module Scion = Dbgp_protocols.Scion_like
module Miro = Dbgp_protocols.Miro
module Portal_io = Dbgp_protocols.Portal_io

let io_of = Harness.io_of
let add_as = Harness.add_as
let cust = Harness.cust

(* ------------------------------------------------------------------ *)
(* Figure 1 / Section 3.4: Wiser across a gulf                         *)
(* ------------------------------------------------------------------ *)

type wiser_result = {
  cost_seen : int option;
  chose_low_cost : bool;
  portal_seen : bool;
  cost_seen_bgp : int option;
  chose_low_cost_bgp : bool;
}

let wiser_prefix = Prefix.of_string "128.6.0.0/24"

(* D=1, E1=2 (cost 100), E2=3 (cost 10) form island W; G1=4, G2=5, G3=6
   are the gulf; S=10 is the upgraded source island.  The short path runs
   via E1/G1, the long cheap one via E2/G2/G3. *)
let run_wiser ~passthrough_gulf =
  let net = Network.create () in
  let island_w = Island_id.named "W" and island_b = Island_id.named "B" in
  let io = io_of net in
  let portal_w = Ipv4.of_string "172.16.0.1"
  and portal_b = Ipv4.of_string "172.16.0.2" in
  let wiser_at island portal cost =
    Wiser.create { Wiser.my_island = island; internal_cost = cost; portal; io }
  in
  let d = add_as net ~island:island_w 1 in
  let e1 = add_as net ~island:island_w 2 in
  let e2 = add_as net ~island:island_w 3 in
  let _g1 = add_as net ~passthrough:passthrough_gulf 4 in
  let _g2 = add_as net ~passthrough:passthrough_gulf 5 in
  let _g3 = add_as net ~passthrough:passthrough_gulf 6 in
  let s = add_as net ~island:island_b 10 in
  let instances =
    [ (d, wiser_at island_w portal_w 0);
      (e1, wiser_at island_w portal_w 100);
      (e2, wiser_at island_w portal_w 10);
      (s, wiser_at island_b portal_b 1) ]
  in
  List.iter
    (fun (sp, w) ->
      Speaker.add_module sp (Wiser.decision_module w);
      Speaker.set_active sp wiser_prefix Wiser.protocol)
    instances;
  cust net 1 2;
  cust net 1 3;
  cust net 2 4;
  cust net 4 10;
  cust net 3 5;
  cust net 5 6;
  cust net 6 10;
  Network.originate net (Asn.of_int 1)
    (Ia.originate ~prefix:wiser_prefix ~origin_asn:(Asn.of_int 1)
       ~next_hop:(Network.speaker_addr (Asn.of_int 1))
       ());
  ignore (Network.run net);
  match Speaker.best s wiser_prefix with
  | None -> (None, false, false)
  | Some chosen ->
    let ia = chosen.Speaker.candidate.Dbgp_core.Decision_module.ia in
    let via_e2 = List.mem (Asn.of_int 3) (Ia.asns_on_path ia) in
    let portal = Wiser.upstream_portal ~my_island:island_b ia in
    (Wiser.cost_of ia, via_e2, Option.is_some portal)

let wiser_across_gulf () =
  let cost_seen, chose_low_cost, portal_seen = run_wiser ~passthrough_gulf:true in
  let cost_seen_bgp, chose_low_cost_bgp, _ = run_wiser ~passthrough_gulf:false in
  { cost_seen; chose_low_cost; portal_seen; cost_seen_bgp; chose_low_cost_bgp }

(* ------------------------------------------------------------------ *)
(* Figure 8, Pathlet arm                                                *)
(* ------------------------------------------------------------------ *)

type pathlet_result = {
  expected : int;
  seen : int;
  seen_bgp : int;
  end_to_end : int;
}

let pathlet_prefix = Prefix.of_string "131.1.0.0/24"

(* Island A: A1=101 hosts the destination, borders A2=102 and A3=103.
   Gulf: G1=201, G2=202.  Island B: border B1=301, source S=302.

   One-hop pathlets inside island A (over routers named "ar..."):
     p1: ar2 -> arm        p2: arm -> deliver
     p3: ar2 -> ar1        p4: ar1 -> deliver
     p5: ar3 -> arx        p6: arx -> deliver
   A2 composes p1 o p2 into the two-hop pathlet P10 and advertises
   {P10, p3, p4}; A3 advertises {p5, p6}.  All five must reach S. *)
let run_pathlet ~passthrough_gulf =
  let net = Network.create () in
  let island_a = Island_id.named "A" and island_b = Island_id.named "B" in
  let deliver = Pathlet.Deliver pathlet_prefix in
  let p1 = Pathlet.make ~fid:1 [ Pathlet.Router "ar2"; Pathlet.Router "arm" ] in
  let p2 = Pathlet.make ~fid:2 [ Pathlet.Router "arm"; deliver ] in
  let p3 = Pathlet.make ~fid:3 [ Pathlet.Router "ar2"; Pathlet.Router "ar1" ] in
  let p4 = Pathlet.make ~fid:4 [ Pathlet.Router "ar1"; deliver ] in
  let p5 = Pathlet.make ~fid:5 [ Pathlet.Router "ar3"; Pathlet.Router "arx" ] in
  let p6 = Pathlet.make ~fid:6 [ Pathlet.Router "arx"; deliver ] in
  let p10 = Pathlet.compose ~fid:10 p1 p2 in
  let a1 = add_as net ~island:island_a 101 in
  let a2 = add_as net ~island:island_a 102 in
  let a3 = add_as net ~island:island_a 103 in
  let _g1 = add_as net ~passthrough:passthrough_gulf 201 in
  let _g2 = add_as net ~passthrough:passthrough_gulf 202 in
  let b1 = add_as net ~island:island_b 301 in
  let s = add_as net ~island:island_b 302 in
  let attach sp exported =
    Speaker.add_module sp
      (Pathlet.decision_module ~island:island_a ~exported:(fun () -> exported));
    Speaker.set_active sp pathlet_prefix Pathlet.protocol
  in
  attach a1 [];
  attach a2 [ p10; p3; p4 ];
  attach a3 [ p5; p6 ];
  (* Island B's border and source run Pathlet Routing too; they export
     nothing of their own for this prefix. *)
  List.iter
    (fun sp ->
      Speaker.add_module sp
        (Pathlet.decision_module ~island:island_b ~exported:(fun () -> []));
      Speaker.set_active sp pathlet_prefix Pathlet.protocol)
    [ b1; s ];
  cust net 101 102;
  cust net 101 103;
  cust net 102 201;
  cust net 201 301;
  cust net 103 202;
  cust net 202 301;
  cust net 301 302;
  Network.originate net (Asn.of_int 101)
    (Ia.originate ~prefix:pathlet_prefix ~origin_asn:(Asn.of_int 101)
       ~next_hop:(Network.speaker_addr (Asn.of_int 101))
       ());
  ignore (Network.run net);
  (* B1 is island B's border: its ingress translation module ingests
     pathlets from every IA it received, and island-internal
     dissemination carries them to S (modeled as a shared store). *)
  let translation =
    Pathlet.translation ~island:island_b ~origin_asn:(Asn.of_int 301)
      ~next_hop:(Network.speaker_addr (Asn.of_int 301))
  in
  let store = Pathlet.Store.create () in
  List.iter
    (fun (_, ia) ->
      match translation.Dbgp_core.Translation.ingress ia with
      | Some pathlets -> List.iter (Pathlet.Store.add store) pathlets
      | None -> ())
    (Speaker.candidates_for b1 pathlet_prefix);
  let seen = Pathlet.Store.size store in
  let end_to_end =
    List.length (Pathlet.Store.routes_to store ~from:"ar2" ~dest:pathlet_prefix)
  in
  (seen, end_to_end)

let pathlet_across_gulf () =
  let seen, end_to_end = run_pathlet ~passthrough_gulf:true in
  let seen_bgp, _ = run_pathlet ~passthrough_gulf:false in
  { expected = 5; seen; seen_bgp; end_to_end }

(* ------------------------------------------------------------------ *)
(* Figure 2: MIRO off-path discovery                                    *)
(* ------------------------------------------------------------------ *)

type miro_result = {
  discovered : bool;
  discovered_bgp : bool;
  negotiated : (string * Ipv4.t) option;
  tunnel_works : bool;
}

let miro_service_prefix = Prefix.of_string "173.82.2.0/24"

(* D=1 -> X=2 -> T=3 is the default path; M=4 hangs off X and sells
   alternate paths.  T must discover M's service although M is not on
   T's path to D. *)
let run_miro ~passthrough_gulf =
  let net = Network.create () in
  let island_m = Island_id.named "M" in
  let io = io_of net in
  let portal = Ipv4.of_string "172.16.1.1" in
  let tunnel_endpoint = Ipv4.of_string "173.82.2.1" in
  let miro =
    Miro.create
      { Miro.my_island = island_m;
        portal;
        offers =
          [ { Miro.dest = Prefix.of_string "131.9.0.0/24";
              via = "alt-1";
              price = 10;
              tunnel_endpoint } ] }
  in
  Lookup.register_handler (Network.lookup net) ~portal ~service:Miro.service
    (Miro.serve miro);
  let _d = add_as net 1 in
  let _x = add_as net ~passthrough:passthrough_gulf 2 in
  let t = add_as net 3 in
  let _m = add_as net ~island:island_m 4 in
  cust net 1 2;
  cust net 2 3;
  cust net 4 2;
  (* M originates its service prefix with the MIRO island descriptor. *)
  Network.originate net (Asn.of_int 4)
    (Miro.advertise miro
       (Ia.originate ~prefix:miro_service_prefix ~origin_asn:(Asn.of_int 4)
          ~next_hop:(Network.speaker_addr (Asn.of_int 4))
          ()));
  Network.originate net (Asn.of_int 1)
    (Ia.originate ~prefix:(Prefix.of_string "131.9.0.0/24")
       ~origin_asn:(Asn.of_int 1)
       ~next_hop:(Network.speaker_addr (Asn.of_int 1))
       ());
  ignore (Network.run net);
  match Speaker.best t miro_service_prefix with
  | None -> (false, None)
  | Some chosen ->
    let ia = chosen.Speaker.candidate.Dbgp_core.Decision_module.ia in
    ( match Miro.discover ia with
      | [] -> (false, None)
      | svc :: _ ->
        let deal =
          Miro.negotiate ~io ~portal:svc.Miro.portal_addr
            ~dest:(Prefix.of_string "131.9.0.0/24") ~budget:50
        in
        (true, deal) )

let miro_discovery () =
  let discovered, negotiated = run_miro ~passthrough_gulf:true in
  let discovered_bgp, _ = run_miro ~passthrough_gulf:false in
  let tunnel_works =
    match negotiated with
    | None -> false
    | Some (_, endpoint) ->
      (* Data plane: T tunnels toward the endpoint; M terminates it. *)
      let open Dbgp_dataplane in
      let engine = Engine.create () in
      let fwd asn = Forwarder.create ~me:(Asn.of_int asn) () in
      let ft = fwd 3 and fx = fwd 2 and fm = fwd 4 in
      Forwarder.set_ip_route ft miro_service_prefix
        (Forwarder.To_as (Asn.of_int 2));
      Forwarder.set_ip_route fx miro_service_prefix
        (Forwarder.To_as (Asn.of_int 4));
      Forwarder.add_local_addr fm endpoint;
      (* Inside M the decapsulated traffic enters the purchased alternate
         path; its continuation is M's business, modeled as local handoff. *)
      Forwarder.set_ip_route fm (Prefix.of_string "131.9.0.0/24")
        Forwarder.Local;
      List.iter (Engine.add engine) [ ft; fx; fm ];
      let pkt =
        Packet.make
          ~headers:
            [ Header.Tunnel_hdr { endpoint };
              Header.Ipv4_hdr
                { src = Network.speaker_addr (Asn.of_int 3);
                  dst = Prefix.network (Prefix.of_string "131.9.0.0/24") } ]
          ~payload:"hello" ()
      in
      ( match Engine.route engine ~from:(Asn.of_int 3) pkt with
        | Engine.Delivered { at; _ } -> Asn.equal at (Asn.of_int 4)
        | Engine.Dropped _ -> false )
  in
  { discovered; discovered_bgp; negotiated; tunnel_works }

(* ------------------------------------------------------------------ *)
(* Figure 3: SCION multipath across a gulf                              *)
(* ------------------------------------------------------------------ *)

type scion_result = {
  paths_seen : int;
  paths_seen_bgp : int;
  forwarded_on_extra : bool;
}

let scion_prefix = Prefix.of_string "131.5.0.0/24"

(* Island A (A1=1 origin, A2=2 border) exposes two within-island paths;
   G=3 is the gulf; island B (B1=4 border, S=5).  Path 1 = [arin; ard]
   is the redistributed one; path 2 = [arin; armid; ard] is the extra
   one BGP loses. *)
let scion_paths = [ [ "arin"; "ard" ]; [ "arin"; "armid"; "ard" ] ]

let run_scion ~passthrough_gulf =
  let net = Network.create () in
  let island_a = Island_id.named "A" and island_b = Island_id.named "B" in
  let a1 = add_as net ~island:island_a 1 in
  let a2 = add_as net ~island:island_a 2 in
  let _g = add_as net ~passthrough:passthrough_gulf 3 in
  let b1 = add_as net ~island:island_b 4 in
  let s = add_as net ~island:island_b 5 in
  let attach sp island paths =
    Speaker.add_module sp
      (Scion.decision_module ~island ~exported:(fun () -> paths));
    Speaker.set_active sp scion_prefix Scion.protocol
  in
  attach a1 island_a [];
  attach a2 island_a scion_paths;
  attach b1 island_b [];
  attach s island_b [];
  cust net 1 2;
  cust net 2 3;
  cust net 3 4;
  cust net 4 5;
  Network.originate net (Asn.of_int 1)
    (Ia.originate ~prefix:scion_prefix ~origin_asn:(Asn.of_int 1)
       ~next_hop:(Network.speaker_addr (Asn.of_int 1))
       ());
  ignore (Network.run net);
  match Speaker.best s scion_prefix with
  | None -> 0
  | Some chosen ->
    List.length
      (Scion.extract ~island:island_a
         chosen.Speaker.candidate.Dbgp_core.Decision_module.ia)

(* ------------------------------------------------------------------ *)
(* The divergence lab: known-divergent gadget topologies                *)
(* ------------------------------------------------------------------ *)

(* Every gadget advertises the same prefix so the stability report's
   per-prefix columns line up across scenarios. *)
let gadget_prefix = Prefix.of_string "66.6.0.0/24"

let originate_gadget net asn_int =
  let asn = Asn.of_int asn_int in
  Network.originate net asn
    (Ia.originate ~prefix:gadget_prefix ~origin_asn:asn
       ~next_hop:(Network.speaker_addr asn) ())

(* BAD GADGET (Griffin/Shepherd/Wilfong): origin d=10 in the middle of
   a 3-ring; each ring AS prefers the route through its clockwise
   neighbor over its own direct route.  The preference cycle is a
   dispute wheel with no stable assignment at all, so the simulation
   can never quiesce.  [flip] reverses every preference, yielding the
   wheel-free (provably safe) GOOD GADGET control on the identical
   topology.

   Relationships: d is every ring member's customer (so d-learned routes
   export everywhere under valley-free); ring links are peer-peer, which
   makes a ring AS silently withdraw its direct route from its
   counter-clockwise neighbor whenever it switches to the ring route —
   exactly the coupling the gadget needs. *)
let ring_gadget ~flip () =
  let net = Network.create () in
  let d = 10 and ring = [ 1; 2; 3 ] in
  ignore (add_as net d);
  List.iter (fun i -> ignore (add_as net i)) ring;
  List.iter (fun i -> cust net d i) ring;
  let peer_link a b =
    Network.link net ~a:(Asn.of_int a) ~b:(Asn.of_int b) ~b_is:P.To_peer ()
  in
  peer_link 1 2;
  peer_link 2 3;
  peer_link 3 1;
  List.iter2
    (fun i next ->
      let ranked =
        if flip then [ [ d ]; [ next; d ] ] else [ [ next; d ]; [ d ] ]
      in
      let sp = Network.speaker net (Asn.of_int i) in
      Speaker.add_module sp (Stability.spvp_module ~ranked);
      Speaker.set_active sp gadget_prefix Stability.spvp_protocol)
    ring [ 2; 3; 1 ];
  originate_gadget net d;
  net

let bad_gadget () = ring_gadget ~flip:false ()
let good_gadget () = ring_gadget ~flip:true ()

let ring_spec ~flip =
  let d = 10 in
  { Stability.origin = d;
    prefs =
      List.map2
        (fun i next ->
          ( i,
            if flip then [ [ i; d ]; [ i; next; d ] ]
            else [ [ i; next; d ]; [ i; d ] ] ))
        [ 1; 2; 3 ] [ 2; 3; 1 ] }

let bad_gadget_spec = ring_spec ~flip:false
let good_gadget_spec = ring_spec ~flip:true

(* MED oscillation (RFC 3345 Type I churn): cluster routers A=11 and
   B=12 act as one AS with partial visibility (each advertises only its
   best to the other).  AS 2 multihomes to both and steers with MEDs
   (10 toward A, 20 toward B); AS 3 single-homes to B with no MED.
   B's IGP prefers its own AS2 exit to its AS3 exit, but A's MED-10
   route eliminates B's own AS2 route from the MED comparison — and
   once B falls back to AS3, A prefers that route and withdraws the
   MED-10 one.  No joint state is a fixed point; the cluster churns
   forever. *)
let med_oscillation () =
  let net = Network.create () in
  let origin = 9 and as2 = 2 and as3 = 3 and ra = 11 and rb = 12 in
  List.iter (fun i -> ignore (add_as net i)) [ origin; as2; as3; ra; rb ];
  cust net origin as2;
  cust net origin as3;
  let set_med m ia =
    Some
      (Ia.set_path_descriptor ~owners:[ Protocol_id.bgp ] ~field:Ia.field_med
         (Value.Int m) ia)
  in
  (* AS2 is a customer of both cluster routers and tags each session
     with a different MED; AS3 is B's customer, untagged. *)
  Network.link net ~a:(Asn.of_int as2) ~b:(Asn.of_int ra)
    ~a_export:(set_med 10) ~b_is:P.To_provider ();
  Network.link net ~a:(Asn.of_int as2) ~b:(Asn.of_int rb)
    ~a_export:(set_med 20) ~b_is:P.To_provider ();
  cust net as3 rb;
  (* Inside the cluster B is A's customer, so both directions export
     freely under valley-free. *)
  Network.link net ~a:(Asn.of_int ra) ~b:(Asn.of_int rb) ~b_is:P.To_customer ();
  let cluster = [ ra; rb ] in
  let attach r igp =
    let sp = Network.speaker net (Asn.of_int r) in
    Speaker.add_module sp (Stability.med_module ~me:r ~cluster ~igp);
    Speaker.set_active sp gadget_prefix Stability.med_protocol
  in
  (* (exit router, exit AS) -> IGP cost, per cluster router. *)
  attach ra [ ((ra, as2), 5); ((rb, as3), 1); ((rb, as2), 1) ];
  attach rb [ ((rb, as2), 1); ((rb, as3), 2); ((ra, as2), 10) ];
  originate_gadget net origin;
  net

(* The MED preference relation is partial (IGP order between exit ASes
   is not monotone under candidate removal); this spec is the linear
   extension the oscillation actually walks, enough for the static
   detector to expose the wheel between the two cluster routers. *)
let med_oscillation_spec =
  { Stability.origin = 9;
    prefs =
      [ (11, [ [ 11; 12; 3; 9 ]; [ 11; 2; 9 ]; [ 11; 12; 2; 9 ] ]);
        (12, [ [ 12; 3; 9 ]; [ 12; 11; 2; 9 ]; [ 12; 2; 9 ] ]) ] }

(* Wiser cost-feedback loop across gossip islands: two load-sensitive
   Wiser egresses (islands W1/W2, equal static cost) reach source S
   through disjoint plain-BGP gulfs.  Every gossip tick S posts the
   demand it currently routes through an egress at that egress's portal
   (out-of-band, via the lookup service); the loaded egress's advertised
   cost jumps by demand * sensitivity, S flips to the other egress, and
   the demand — hence the cost — follows it.  The control loop closes
   through the gossip channel, so no amount of BGP-message analysis
   shows a cause for the churn. *)
let wiser_feedback_period = 5.0

let wiser_feedback () =
  let net = Network.create () in
  let io = io_of net in
  let d = 1 and e1 = 2 and e2 = 3 and g1 = 4 and g2 = 5 and s = 10 in
  let island_w1 = Island_id.named "W1"
  and island_w2 = Island_id.named "W2"
  and island_b = Island_id.named "B" in
  let portal1 = Ipv4.of_string "172.16.2.1"
  and portal2 = Ipv4.of_string "172.16.2.2"
  and portal_b = Ipv4.of_string "172.16.2.9" in
  ignore (add_as net d);
  let sp_e1 = add_as net ~island:island_w1 e1 in
  let sp_e2 = add_as net ~island:island_w2 e2 in
  ignore (add_as net g1);
  ignore (add_as net g2);
  let sp_s = add_as net ~island:island_b s in
  let wiser_at island portal cost =
    Wiser.create { Wiser.my_island = island; internal_cost = cost; portal; io }
  in
  let w_e1 = wiser_at island_w1 portal1 10 in
  let w_e2 = wiser_at island_w2 portal2 10 in
  let w_s = wiser_at island_b portal_b 0 in
  Wiser.set_demand_sensitivity w_e1 25;
  Wiser.set_demand_sensitivity w_e2 25;
  List.iter
    (fun (sp, w) ->
      Speaker.add_module sp (Wiser.decision_module w);
      Speaker.set_active sp gadget_prefix Wiser.protocol)
    [ (sp_e1, w_e1); (sp_e2, w_e2); (sp_s, w_s) ];
  cust net d e1;
  cust net d e2;
  cust net e1 g1;
  cust net e2 g2;
  cust net g1 s;
  cust net g2 s;
  originate_gadget net d;
  (* The gossip tick: S publishes where its demand currently flows; each
     egress polls its portal and re-advertises when its effective cost
     changed.  Self-rescheduling, so the event queue never drains — the
     stability budget bounds the run. *)
  let q = Network.queue net in
  let egresses =
    [ (Asn.of_int e1, w_e1, portal1); (Asn.of_int e2, w_e2, portal2) ]
  in
  let rec tick () =
    let used =
      match Speaker.best sp_s gadget_prefix with
      | None -> None
      | Some chosen ->
        Wiser.upstream_portal ~my_island:island_b
          chosen.Speaker.candidate.Dbgp_core.Decision_module.ia
    in
    List.iter
      (fun (_, w, portal) ->
        let demand =
          match used with
          | Some p when Ipv4.compare p portal = 0 -> 1
          | _ -> 0
        in
        Wiser.post_demand w ~portal demand)
      egresses;
    List.iter
      (fun (asn, w, _) ->
        if Wiser.poll_demand w then begin
          (* Re-registering the module bumps the speaker's build
             generation so the memoized outgoing IA is rebuilt with the
             new cost. *)
          Speaker.add_module (Network.speaker net asn) (Wiser.decision_module w);
          Network.reevaluate net asn gadget_prefix
        end)
      egresses;
    Dbgp_netsim.Event_queue.schedule q ~delay:wiser_feedback_period tick
  in
  Dbgp_netsim.Event_queue.schedule q ~delay:wiser_feedback_period tick;
  net

(* Converged controls: Network-level equivalents of the golden
   differential workloads (relay-line and the chaos BRITE-30 topology)
   plus GOOD GADGET above.  The stability report must classify all of
   them as converged — the detector's false-positive guard. *)
let relay_line () =
  let net = Network.create () in
  let n = 6 in
  for i = 1 to n do
    ignore (add_as net i)
  done;
  for i = 1 to n - 1 do
    cust net i (i + 1)
  done;
  originate_gadget net 1;
  net

let brite_control ~seed ~ases () =
  let g =
    Dbgp_topology.Brite.generate (Prng.create seed)
      { Dbgp_topology.Brite.default with Dbgp_topology.Brite.n = ases }
  in
  let net = Convergence.network_of_graph g in
  let asn = Asn.of_int 1 in
  Network.originate net asn
    (Ia.originate ~prefix:gadget_prefix ~origin_asn:asn
       ~next_hop:(Network.speaker_addr asn) ());
  net

let divergence_cases ?(seed = 42) ?(control_ases = 30) () =
  [ { Stability.name = "bad-gadget";
      prefix = gadget_prefix;
      build = bad_gadget;
      spec = Some bad_gadget_spec;
      expect_divergence = true };
    { Stability.name = "med-oscillation";
      prefix = gadget_prefix;
      build = med_oscillation;
      spec = Some med_oscillation_spec;
      expect_divergence = true };
    { Stability.name = "wiser-feedback";
      prefix = gadget_prefix;
      build = wiser_feedback;
      spec = None;
      expect_divergence = true };
    { Stability.name = "good-gadget";
      prefix = gadget_prefix;
      build = good_gadget;
      spec = Some good_gadget_spec;
      expect_divergence = false };
    { Stability.name = "relay-line";
      prefix = gadget_prefix;
      build = relay_line;
      spec = None;
      expect_divergence = false };
    { Stability.name = "brite-30";
      prefix = gadget_prefix;
      build = brite_control ~seed ~ases:control_ases;
      spec = None;
      expect_divergence = false } ]

let scion_multipath () =
  let paths_seen = run_scion ~passthrough_gulf:true in
  let paths_seen_bgp = run_scion ~passthrough_gulf:false in
  let forwarded_on_extra =
    (* Drive the extra (three-hop) path through the data plane. *)
    let open Dbgp_dataplane in
    let engine = Engine.create () in
    let fwd asn = Forwarder.create ~me:(Asn.of_int asn) () in
    let fa1 = fwd 1 and fa2 = fwd 2 and fg = fwd 3 and fb1 = fwd 4 and fs = fwd 5 in
    (* IPv4 route toward island A's ingress address for gulf crossing. *)
    let ingress_addr = Network.speaker_addr (Asn.of_int 2) in
    Forwarder.set_ip_route fs scion_prefix (Forwarder.To_as (Asn.of_int 4));
    Forwarder.set_ip_route fb1 scion_prefix (Forwarder.To_as (Asn.of_int 3));
    Forwarder.set_ip_route fg scion_prefix (Forwarder.To_as (Asn.of_int 2));
    Forwarder.set_ip_route fs (Prefix.make ingress_addr 32)
      (Forwarder.To_as (Asn.of_int 4));
    Forwarder.set_ip_route fb1 (Prefix.make ingress_addr 32)
      (Forwarder.To_as (Asn.of_int 3));
    Forwarder.set_ip_route fg (Prefix.make ingress_addr 32)
      (Forwarder.To_as (Asn.of_int 2));
    Forwarder.add_local_addr fa2 ingress_addr;
    Forwarder.claim_router fa2 ~router:"arin";
    Forwarder.set_router_port fa2 ~router:"armid" (Forwarder.To_as (Asn.of_int 1));
    Forwarder.claim_router fa1 ~router:"armid";
    Forwarder.claim_router fa1 ~router:"ard";
    Forwarder.set_ip_route fa1 scion_prefix Forwarder.Local;
    List.iter (Engine.add engine) [ fa1; fa2; fg; fb1; fs ];
    let pkt =
      Packet.make
        ~headers:
          [ Header.Tunnel_hdr { endpoint = ingress_addr };
            Header.Scion_hdr { path = [ "arin"; "armid"; "ard" ]; pos = 0 };
            Header.Ipv4_hdr
              { src = Network.speaker_addr (Asn.of_int 5);
                dst = Prefix.network scion_prefix } ]
        ~payload:"data" ()
    in
    match Engine.route engine ~from:(Asn.of_int 5) pkt with
    | Engine.Delivered { at; path } ->
      Asn.equal at (Asn.of_int 1)
      && List.exists (Asn.equal (Asn.of_int 2)) path
    | Engine.Dropped _ -> false
  in
  { paths_seen; paths_seen_bgp; forwarded_on_extra }
