(** End-to-end deployment scenarios on the network simulator.

    Each function builds a concrete topology with real D-BGP speakers,
    runs it to convergence under both baselines (pass-through on = D-BGP,
    off = plain BGP), and reports what the interested AS could observe —
    the observables of the paper's motivating examples (Figures 1-3) and
    its MiniNeXT deployment experiments (Figure 8, Section 6.1). *)

(** Figure 1 / Section 3.4: Wiser across a gulf.  An island containing
    the destination has a cheap long egress (cost 10) and an expensive
    short one (cost 100); S supports Wiser on the far side of a BGP
    gulf. *)
type wiser_result = {
  cost_seen : int option;        (** Wiser cost visible at S with D-BGP *)
  chose_low_cost : bool;         (** S picked the longer, cheaper path *)
  portal_seen : bool;            (** the cost-exchange portal descriptor
                                     survived the gulf *)
  cost_seen_bgp : int option;    (** ... with plain BGP ([None] expected) *)
  chose_low_cost_bgp : bool;     (** BGP picks the short expensive path *)
}

val wiser_across_gulf : unit -> wiser_result

(** Figure 8, Pathlet arm: island A disseminates one-hop pathlets
    internally; border A2 composes a two-hop pathlet and advertises it
    plus its remaining one-hop pathlets across the gulf; border A3
    advertises its own.  S (in island B) must see all of them. *)
type pathlet_result = {
  expected : int;                (** pathlets that should reach S (5) *)
  seen : int;                    (** pathlets S saw with D-BGP *)
  seen_bgp : int;                (** with plain BGP (0 expected) *)
  end_to_end : int;              (** composable S->D routes from them *)
}

val pathlet_across_gulf : unit -> pathlet_result

(** Figure 2: off-path discovery of a MIRO island's service. *)
type miro_result = {
  discovered : bool;
  discovered_bgp : bool;
  negotiated : (string * Dbgp_types.Ipv4.t) option;
      (** path id and tunnel endpoint obtained from the portal *)
  tunnel_works : bool;
      (** data plane: traffic tunneled to the endpoint is delivered *)
}

val miro_discovery : unit -> miro_result

(** Figure 3: a SCION island exposes two within-island paths; only one
    survives redistribution into BGP, but the island descriptor carries
    both across the gulf. *)
type scion_result = {
  paths_seen : int;      (** within-island paths S sees with D-BGP (2) *)
  paths_seen_bgp : int;  (** with plain BGP (0: descriptor stripped) *)
  forwarded_on_extra : bool;
      (** data plane: S can actually use the non-redistributed path *)
}

val scion_multipath : unit -> scion_result

(** {1 The divergence lab: known-divergent gadget topologies}

    Reusable builders for the {!Stability} report.  Every gadget
    advertises {!gadget_prefix}. *)

val gadget_prefix : Dbgp_types.Prefix.t

val bad_gadget : unit -> Dbgp_netsim.Network.t
(** Griffin/Shepherd/Wilfong's BAD GADGET: a 3-ring around the origin
    where each AS prefers the route through its clockwise neighbor.  No
    stable path assignment exists; the simulation can never quiesce. *)

val good_gadget : unit -> Dbgp_netsim.Network.t
(** The same topology with every preference flipped — wheel-free, hence
    provably safe; the converged control. *)

val bad_gadget_spec : Stability.pref_spec
val good_gadget_spec : Stability.pref_spec

val med_oscillation : unit -> Dbgp_netsim.Network.t
(** RFC 3345 Type-I churn: a two-router cluster with partial visibility,
    MED steering from a multihomed neighbor, and a non-monotone IGP
    tie-break.  No joint state is a fixed point. *)

val med_oscillation_spec : Stability.pref_spec

val wiser_feedback : unit -> Dbgp_netsim.Network.t
(** Wiser cost-feedback loop across gossip islands: load-sensitive
    egress costs chase the demand they attract, through the out-of-band
    portal gossip rather than through BGP messages.  The returned
    network carries a self-rescheduling gossip tick, so it only runs
    under an event budget. *)

val wiser_feedback_period : float
(** Simulated seconds between gossip ticks. *)

val relay_line : unit -> Dbgp_netsim.Network.t
(** Converged control mirroring the relay-line golden workload. *)

val brite_control : seed:int -> ases:int -> unit -> Dbgp_netsim.Network.t
(** Converged control mirroring the chaos BRITE topology (no faults). *)

val divergence_cases :
  ?seed:int -> ?control_ases:int -> unit -> Stability.case list
(** The full case pack: the three divergent gadgets plus the three
    converged controls, in report order. *)
