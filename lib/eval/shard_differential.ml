(* Sharded differential scenarios: the determinism oracle's workloads.

   Each scenario builds a partitioned topology ({!Dbgp_netsim.Shard}),
   drives it through a seeded workload and folds the observable
   behaviour into the same {!Differential.digest} shape the sequential
   differential uses: a transcript MD5 (here the shard's merged
   per-region transcript — every Loc-RIB change, cross-partition
   delivery and NACK, totally ordered by (time, region, sequence)) and
   a state MD5 ({!Differential.state_digest} over every speaker).

   The oracle property: for a fixed seed, the digest is byte-identical
   for every [domains] value.  The region count is part of the
   scenario (it fixes the partitioned schedule); the domain count only
   changes which OS thread executes which region.  Golden digests for
   [domains = 1] live in [test/golden_sharded.txt]; the parallel suite
   re-runs each scenario at 2 and 4 domains and compares. *)

open Dbgp_types
module Speaker = Dbgp_core.Speaker
module Ia = Dbgp_core.Ia
module Filters = Dbgp_core.Filters
module Network = Dbgp_netsim.Network
module Shard = Dbgp_netsim.Shard
module Fault_model = Dbgp_netsim.Fault_model
module Graph = Dbgp_topology.As_graph
module Brite = Dbgp_topology.Brite
module Damping = Dbgp_bgp.Flap_damping

let scenarios =
  [ "sharded-relay-line"; "sharded-hub-policy"; "sharded-chaos-30" ]

let regions_of = function
  | "sharded-relay-line" -> 2
  | "sharded-hub-policy" -> 2
  | "sharded-chaos-30" -> 4
  | name -> invalid_arg ("Shard_differential.regions_of: " ^ name)

let mk_speaker ?(damping = None) a =
  let asn = Asn.of_int a in
  let s =
    Speaker.create
      (Speaker.config ~asn ~addr:(Network.speaker_addr asn) ())
  in
  Speaker.set_damping s damping;
  s

let digest name sh ~steps ~prefixes (stats : Shard.stats) =
  { Differential.scenario = name;
    steps;
    messages = stats.Shard.net.Network.messages;
    transcript_md5 = Shard.transcript_digest sh;
    state_md5 = Differential.state_digest (Shard.speakers sh) prefixes }

(* ------------------------------------------------------------------ *)
(* Scenario 1: the 6-AS line, split across two regions.  The mid-line  *)
(* peer edge becomes the cut; its fail/recover exercises the lockstep  *)
(* half-link teardown and the cross-partition route refresh.           *)
(* ------------------------------------------------------------------ *)

let run_relay_line ~seed ~domains =
  let rng = Prng.create seed in
  let sh = Shard.create ~regions:2 ~make_speaker:(fun a -> mk_speaker a) () in
  List.iter (Shard.add_as sh) [ 1; 2; 3; 4; 5; 6 ];
  let strip_membership ia = Some { ia with Ia.membership = [] } in
  Shard.link sh ~a:1 ~b:2 ~b_is:Dbgp_bgp.Policy.To_provider ();
  Shard.link sh ~a:2 ~b:3 ~b_is:Dbgp_bgp.Policy.To_provider
    ~a_export:strip_membership ();
  Shard.link sh ~a:3 ~b:4 ~b_is:Dbgp_bgp.Policy.To_peer ();
  Shard.link sh ~a:4 ~b:5 ~b_is:Dbgp_bgp.Policy.To_customer ();
  Shard.link sh ~a:5 ~b:6 ~b_is:Dbgp_bgp.Policy.To_customer ~b_dbgp:false ();
  Shard.enable_transcript sh;
  Shard.build sh;
  let originations =
    List.map (fun i -> (1, Printf.sprintf "10.1.%d.0/24" i)) [ 0; 1; 2; 3 ]
    @ List.map (fun i -> (6, Printf.sprintf "10.6.%d.0/24" i)) [ 0; 1 ]
  in
  let order = Array.of_list originations in
  Prng.shuffle rng order;
  let steps = ref 0 in
  Array.iteri
    (fun i (origin, p) ->
      incr steps;
      let prefix = Prefix.of_string p in
      Shard.originate sh
        ~at:(float_of_int (i + 1))
        origin
        (Ia.originate ~prefix ~origin_asn:(Asn.of_int origin)
           ~next_hop:(Network.speaker_addr (Asn.of_int origin)) ()))
    order;
  incr steps;
  Shard.schedule_fail sh ~at:40. 3 4;
  incr steps;
  Shard.schedule_recover sh ~at:60. 3 4;
  let stats = Shard.run ~domains sh in
  digest "sharded-relay-line" sh ~steps:!steps
    ~prefixes:(List.map (fun (_, p) -> Prefix.of_string p) originations)
    stats

(* ------------------------------------------------------------------ *)
(* Scenario 2: the policy-rich hub, with real spoke speakers this time *)
(* so the partitioner has something to split.  MRAI 2.0 exercises the  *)
(* uncoalesced cross-partition send path; damping, a cut-link flap and *)
(* shared-pool churn from every spoke exercise suppression, NACKs and  *)
(* best-path competition across the cut.                               *)
(* ------------------------------------------------------------------ *)

let run_hub_policy ~seed ~domains =
  let rng = Prng.create (seed + 1) in
  let hub = 100 in
  let damping = Some { Damping.default with Damping.half_life = 5. } in
  let sh =
    Shard.create ~mrai:2.0 ~regions:2
      ~make_speaker:(fun a -> mk_speaker ~damping a)
      ()
  in
  let spokes = [| 11; 12; 13; 14; 15; 16 |] in
  Shard.add_as sh hub;
  Array.iter (Shard.add_as sh) spokes;
  let drop_big = Filters.max_size 90 in
  Shard.link sh ~a:hub ~b:11 ~b_is:Dbgp_bgp.Policy.To_customer ();
  Shard.link sh ~a:hub ~b:12 ~b_is:Dbgp_bgp.Policy.To_customer ();
  Shard.link sh ~a:hub ~b:13 ~b_is:Dbgp_bgp.Policy.To_provider ();
  Shard.link sh ~a:hub ~b:14 ~b_is:Dbgp_bgp.Policy.To_peer ();
  Shard.link sh ~a:hub ~b:15 ~b_is:Dbgp_bgp.Policy.To_customer
    ~b_dbgp:false ();
  Shard.link sh ~a:hub ~b:16 ~b_is:Dbgp_bgp.Policy.To_customer
    ~a_export:drop_big ();
  Shard.enable_transcript sh;
  Shard.build sh;
  let pool =
    Array.init 12 (fun i -> Prefix.of_string (Printf.sprintf "20.0.%d.0/24" i))
  in
  let mk_ia from prefix =
    let ia =
      Ia.originate ~prefix ~origin_asn:(Asn.of_int from)
        ~next_hop:(Network.speaker_addr (Asn.of_int from)) ()
    in
    (* Vary the path length for selection pressure at the hub. *)
    let hops = Prng.int rng 3 in
    let ia = ref ia in
    for h = 1 to hops do
      ia := Ia.prepend_as (Asn.of_int (200 + (10 * from) + h)) !ia
    done;
    if Prng.int rng 4 = 0 then
      ia :=
        Ia.set_path_descriptor ~owners:[ Protocol_id.wiser ] ~field:"cost"
          (Dbgp_core.Value.Int (Prng.int rng 100))
          !ia;
    !ia
  in
  let steps = 120 in
  for step = 1 to steps do
    let at = float_of_int step in
    let from = spokes.(Prng.int rng (Array.length spokes)) in
    let prefix = pool.(Prng.int rng (Array.length pool)) in
    if Prng.int rng 4 = 0 then Shard.withdraw_origin sh ~at from prefix
    else Shard.originate sh ~at from (mk_ia from prefix)
  done;
  (* One flap on a hub spoke — whichever side of the cut 14 landed on,
     the schedule is part of the partitioned workload and identical for
     every domain count. *)
  Shard.schedule_fail sh ~at:140. hub 14;
  Shard.schedule_recover sh ~at:155. hub 14;
  let stats = Shard.run ~domains sh in
  digest "sharded-hub-policy" sh ~steps:(steps + 2)
    ~prefixes:(Array.to_list pool) stats

(* ------------------------------------------------------------------ *)
(* Scenario 3: seeded chaos over a 30-AS BRITE graph in four regions.  *)
(* Flap links are pinned intra-region (fault state must stay region-   *)
(* private); per-link loss/jitter/corruption apply only to intra-      *)
(* region links, drawn from per-region split PRNG streams.  Wire       *)
(* delivery is on, so every clean delivery crosses the codec and the   *)
(* per-domain encode/decode caches earn their keep.                    *)
(* ------------------------------------------------------------------ *)

let run_chaos ~seed ~domains =
  let rng = Prng.create (seed + 2) in
  let g = Brite.generate rng { Brite.default with Brite.n = 30 } in
  let edges =
    List.rev
      (Graph.fold_edges
         (fun a b view acc ->
           let rel =
             match view with
             | Graph.Customer_of_me -> Dbgp_bgp.Policy.To_customer
             | Graph.Provider_of_me -> Dbgp_bgp.Policy.To_provider
             | Graph.Peer_of_me -> Dbgp_bgp.Policy.To_peer
           in
           (a + 1, b + 1, rel) :: acc)
         g [])
  in
  let flapped =
    Array.to_list
      (Prng.sample rng 3
         (Array.of_list (List.map (fun (a, b, _) -> (a, b)) edges)))
  in
  let is_flap a b = List.mem (a, b) flapped || List.mem (b, a) flapped in
  let damping = Some { Damping.default with Damping.half_life = 5. } in
  let sh =
    Shard.create ~wire_delivery:true ~regions:4
      ~make_speaker:(fun a -> mk_speaker ~damping a)
      ()
  in
  for a = 1 to Graph.size g do
    Shard.add_as sh a
  done;
  List.iter
    (fun (a, b, rel) -> Shard.link sh ~pinned:(is_flap a b) ~a ~b ~b_is:rel ())
    edges;
  Shard.enable_transcript sh;
  Shard.build sh;
  (* Region-private fault streams; per-link faults only where both
     endpoints share a region (cut links are fault-free by contract). *)
  let fms = Shard.fault_models sh ~seed:(seed + 3) in
  List.iter
    (fun (a, b, _) ->
      let ra = Shard.region_of sh a in
      if ra = Shard.region_of sh b then
        Fault_model.set_link fms.(ra) ~a ~b ~loss:0.03 ~jitter:0.2
          ~corrupt:0.01 ~duplicate:0.01 ())
    edges;
  let prefixes =
    List.init 6 (fun i -> Prefix.of_string (Printf.sprintf "99.%d.0.0/24" i))
  in
  List.iteri
    (fun i prefix ->
      let origin = 1 + (5 * i mod Graph.size g) in
      Shard.originate sh
        ~at:(float_of_int (i + 1))
        origin
        (Ia.originate ~prefix ~origin_asn:(Asn.of_int origin)
           ~next_hop:(Network.speaker_addr (Asn.of_int origin)) ()))
    prefixes;
  List.iteri
    (fun i (a, b) ->
      let down_at = 30. +. (20. *. float_of_int i) in
      Shard.schedule_fail sh ~at:down_at a b;
      Shard.schedule_recover sh ~at:(down_at +. 8.) a b)
    flapped;
  let stats = Shard.run ~domains sh in
  digest "sharded-chaos-30" sh
    ~steps:(List.length prefixes + List.length flapped)
    ~prefixes stats

let run ?(seed = 42) ?(domains = 1) name =
  match name with
  | "sharded-relay-line" -> run_relay_line ~seed ~domains
  | "sharded-hub-policy" -> run_hub_policy ~seed ~domains
  | "sharded-chaos-30" -> run_chaos ~seed ~domains
  | _ -> invalid_arg ("Shard_differential.run: unknown scenario " ^ name)

let run_all ?seed ?domains () = List.map (fun n -> run ?seed ?domains n) scenarios

let verify ?seed ?(domains = 2) name =
  let sequential = run ?seed ~domains:1 name in
  let sharded = run ?seed ~domains name in
  (sequential, sharded, Differential.equal sequential sharded)
