(** Sharded differential scenarios: seeded workloads on partitioned
    topologies, fingerprinted with the {!Differential.digest} shape.

    The transcript MD5 covers the shard's merged per-region transcript
    (Loc-RIB changes, cross-partition deliveries, NACKs — totally
    ordered by (time, region, sequence)); the state MD5 is
    {!Differential.state_digest} over every speaker.  The oracle
    property: for a fixed seed and scenario, the digest is
    byte-identical for every [domains] value — the region count is
    part of the scenario, the domain count is pure execution policy.

    Scenarios: ["sharded-relay-line"] (the 6-AS line in 2 regions,
    mid-line cut + recovery over the partition boundary),
    ["sharded-hub-policy"] (policy hub with six real spokes in 2
    regions, MRAI 2.0, damping, 120 churn steps, a cut-link flap),
    ["sharded-chaos-30"] (30-AS BRITE graph in 4 regions, wire
    delivery, region-private fault streams on intra-region links,
    3 pinned link flaps).

    Golden digests for [domains = 1] live in
    [test/golden_sharded.txt]. *)

val scenarios : string list

val regions_of : string -> int
(** Region count baked into a scenario (it fixes the partitioned
    schedule).  @raise Invalid_argument on an unknown name. *)

val run : ?seed:int -> ?domains:int -> string -> Differential.digest
(** Run one scenario (default seed 42, 1 domain).
    @raise Invalid_argument on an unknown scenario name. *)

val run_all : ?seed:int -> ?domains:int -> unit -> Differential.digest list
(** Every scenario, in {!scenarios} order. *)

val verify :
  ?seed:int ->
  ?domains:int ->
  string ->
  Differential.digest * Differential.digest * bool
(** [(sequential, sharded, equal)]: the scenario at 1 domain, at
    [domains] (default 2), and whether the digests match — the
    determinism oracle as a single call. *)
