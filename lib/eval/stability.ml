(* The divergence lab: classify a (protocol, topology) combination as
   converged, oscillating, or walltime-censored.

   Why detection is even possible: at quiescence every speaker's Loc-RIB
   entry is a best response to its neighbors' advertisements, so a
   drained event queue *is* a stable path assignment.  A gadget with no
   stable assignment (Griffin/Shepherd/Wilfong's BAD GADGET) therefore
   can never drain the queue — it shows up as an exhausted event budget.
   The detector's job is to split the exhausted runs into two honest
   classes: a recurring global state cycle (oscillation, with a
   measurable period) versus a run that merely ran out of budget before
   quiescing (censored). *)

open Dbgp_types
module Speaker = Dbgp_core.Speaker
module Ia = Dbgp_core.Ia
module Dm = Dbgp_core.Decision_module
module Filters = Dbgp_core.Filters
module Value = Dbgp_core.Value
module Network = Dbgp_netsim.Network
module Event_queue = Dbgp_netsim.Event_queue
module Snapshot = Dbgp_obs.Snapshot
module Damping = Dbgp_bgp.Flap_damping

(* ------------------------------------------------------------------ *)
(* Static dispute-wheel detection                                      *)
(* ------------------------------------------------------------------ *)

(* A ranked-preference policy specification: each node lists its
   permitted AS-level paths to the origin (node's own ASN first, origin
   last), most preferred first.  This is the SPVP abstraction of
   Griffin, Shepherd and Wilfong — exactly enough structure to ask for
   dispute wheels. *)
type pref_spec = {
  origin : int;
  prefs : (int * int list list) list;
}

(* u -> v is a dispute arc when u's non-last-choice path P = u :: Q
   routes through v with Q permitted at v: u's preferred path depends on
   v adopting Q, and u has something to fall back to when v does not.  A
   cycle of such arcs is a dispute wheel — the structural precondition
   for policy divergence (no wheel implies safety; a wheel is a risk,
   not a certainty, cf. DISAGREE). *)
let dispute_wheel spec =
  let prefs_of u = Option.value (List.assoc_opt u spec.prefs) ~default:[] in
  let permitted_at v q =
    (v = spec.origin && q = [ spec.origin ]) || List.mem q (prefs_of v)
  in
  let arcs u =
    let ps = prefs_of u in
    let n = List.length ps in
    List.filteri (fun rank _ -> rank < n - 1) ps
    |> List.filter_map (fun p ->
           match p with
           | _ :: (v :: _ as q) when v <> spec.origin && permitted_at v q ->
             Some v
           | _ -> None)
  in
  let nodes = List.map fst spec.prefs in
  (* DFS with an explicit path stack; the first back-edge closes the
     wheel. *)
  let visited = Hashtbl.create 8 in
  let rec dfs path u =
    match List.find_index (Int.equal u) path with
    | Some i -> Some (List.rev (u :: List.filteri (fun j _ -> j <= i) path))
    | None ->
      if Hashtbl.mem visited u then None
      else begin
        Hashtbl.add visited u ();
        List.find_map (dfs (u :: path)) (arcs u)
      end
  in
  List.find_map (dfs []) nodes

(* ------------------------------------------------------------------ *)
(* Gadget decision modules                                             *)
(* ------------------------------------------------------------------ *)

let spvp_protocol = Protocol_id.register ~kind:Protocol_id.Custom "spvp-pref"

(* A decision module realizing one node's ranked-preference list:
   [ranked] holds the permitted *received* paths (neighbor first, origin
   last; i.e. the spec paths with the node's own ASN stripped), best
   first.  Import rejects everything else; selection is by rank.  This
   is how BAD GADGET's "prefer the route through my clockwise neighbor"
   becomes runnable on the real speakers. *)
let spvp_module ~ranked =
  let rank_of ia =
    let path = List.map Asn.to_int (Ia.asns_on_path ia) in
    let rec idx i = function
      | [] -> None
      | r :: rest -> if r = path then Some i else idx (i + 1) rest
    in
    idx 0 ranked
  in
  let rank c =
    Option.value (rank_of c.Dm.ia) ~default:max_int
  in
  let better a b =
    match Int.compare (rank b) (rank a) with
    | 0 -> Dm.compare_tiebreak a b
    | c -> c
  in
  { Dm.protocol = spvp_protocol;
    import_filter =
      (fun ia -> match rank_of ia with None -> None | Some _ -> Some ia);
    export_filter = Filters.accept;
    select =
      (fun ~prefix:_ cands ->
        match cands with
        | [] -> None
        | c :: rest ->
          Some
            (List.fold_left
               (fun acc x -> if better x acc > 0 then x else acc)
               c rest));
    contribute = (fun ~me:_ ia -> ia) }

let med_protocol = Protocol_id.register ~kind:Protocol_id.Custom "med-rr"

let med_of ia =
  Option.bind
    (Ia.find_path_descriptor ~proto:Protocol_id.bgp ~field:Ia.field_med ia)
    Value.as_int

(* A route-reflector-style MED-aware decision module (the RFC 3345
   churn construction).  [cluster] names the router ASNs forming one
   AS-like cluster; each candidate resolves to an (exit router, exit AS)
   pair.  Selection: MEDs are compared only within one exit AS (higher
   MED eliminated), then the per-router IGP cost to the exit router
   decides, then path length, then the standard tiebreak.  Because MED
   makes the order non-total — IGP preference between exit ASes is not
   monotone under candidate removal — partial visibility (each cluster
   router advertising only its best) can cycle forever. *)
let med_module ~me ~cluster ~igp =
  let in_cluster a = List.mem a cluster in
  let exit_info c =
    let path = List.map Asn.to_int (Ia.asns_on_path c.Dm.ia) in
    match path with
    | [] -> (me, -1)
    | hd :: _ when not (in_cluster hd) -> (me, hd)
    | _ ->
      let rec walk last = function
        | [] -> (last, -1)
        | x :: rest -> if in_cluster x then walk x rest else (last, x)
      in
      walk me path
  in
  let igp_cost key = Option.value (List.assoc_opt key igp) ~default:max_int in
  let select ~prefix:_ cands =
    match cands with
    | [] -> None
    | cands ->
      let annotated =
        List.map (fun c -> (c, exit_info c, med_of c.Dm.ia)) cands
      in
      (* Stage 1: within each exit AS, only the lowest MED survives
         (routes without a MED are incomparable and survive). *)
      let survivors =
        List.filter
          (fun (_, (_, exit_as), med) ->
            match med with
            | None -> true
            | Some m ->
              not
                (List.exists
                   (fun (_, (_, ea'), med') ->
                     ea' = exit_as
                     && match med' with Some m' -> m' < m | None -> false)
                   annotated))
          annotated
      in
      let better (a, ea, _) (b, eb, _) =
        match Int.compare (igp_cost eb) (igp_cost ea) with
        | 0 -> (
          match
            Int.compare (Dm.candidate_path_length b) (Dm.candidate_path_length a)
          with
          | 0 -> Dm.compare_tiebreak a b
          | c -> c )
        | c -> c
      in
      ( match survivors with
        | [] -> None
        | s :: rest ->
          let (c, _, _) =
            List.fold_left (fun acc x -> if better x acc > 0 then x else acc) s rest
          in
          Some c )
  in
  { Dm.protocol = med_protocol;
    import_filter = Filters.accept;
    export_filter = Filters.accept;
    select;
    contribute = (fun ~me:_ ia -> ia) }

(* ------------------------------------------------------------------ *)
(* Online oscillation detection                                        *)
(* ------------------------------------------------------------------ *)

(* The detector subscribes to the network-wide Loc-RIB change feed.  Per
   prefix it maintains the current fingerprint of every speaker's
   installed route and an incrementally-updated commutative combination
   of them — the global routing-state digest for that prefix.  Each
   change appends the digest to a bounded ring; a recurring cycle in the
   ring's tail is an oscillation.  Hash-consed best-route snapshots
   (Speaker.loc_fingerprint rides the encode cache) keep the per-change
   cost to a couple of hash mixes. *)

let window = 512

type pstate = {
  fp : (int, int) Hashtbl.t;  (* asn -> current fingerprint, 0 absent *)
  ring : int array;           (* global digests, newest at (n-1) mod window *)
  times : float array;
  mutable combined : int;
  mutable n : int;            (* total changes observed *)
}

type detector = {
  states : (Prefix.t, pstate) Hashtbl.t;
  net : Network.t;
}

let mix asn fp = Hashtbl.hash (asn, fp)

let attach net =
  let d = { states = Hashtbl.create 8; net } in
  Network.set_change_feed net
    (Some
       (fun ~asn ~prefix ~at ~fingerprint ->
         let st =
           match Hashtbl.find_opt d.states prefix with
           | Some st -> st
           | None ->
             let st =
               { fp = Hashtbl.create 16;
                 ring = Array.make window 0;
                 times = Array.make window 0.;
                 combined = 0;
                 n = 0 }
             in
             Hashtbl.replace d.states prefix st;
             st
         in
         let a = Asn.to_int asn in
         ( match Hashtbl.find_opt st.fp a with
           | Some old -> st.combined <- st.combined - mix a old
           | None -> () );
         if fingerprint = 0 then Hashtbl.remove st.fp a
         else begin
           Hashtbl.replace st.fp a fingerprint;
           st.combined <- st.combined + mix a fingerprint
         end;
         st.ring.(st.n mod window) <- st.combined;
         st.times.(st.n mod window) <- at;
         st.n <- st.n + 1));
  d

let detach d = Network.set_change_feed d.net None

type cycle = {
  period : int;       (* in Loc-RIB change events for the prefix *)
  time_period : float; (* the same period in simulated seconds *)
  last_at : float;    (* when the prefix last changed *)
}

(* Smallest p such that the newest digests repeat with period p over a
   verification span of at least 2p (and at most 4p, tolerating an
   aperiodic transient further back). *)
let find_cycle st =
  let avail = min st.n window in
  if avail < 6 then None
  else begin
    let get i = st.ring.((st.n - 1 - i) mod window) in
    let at i = st.times.((st.n - 1 - i) mod window) in
    let rec try_p p =
      if p > avail / 3 then None
      else begin
        let span = min (avail - p) (4 * p) in
        if span < 2 * p then try_p (p + 1)
        else begin
          let ok = ref true in
          for i = 0 to span - 1 do
            if get i <> get (i + p) then ok := false
          done;
          if !ok then
            Some { period = p; time_period = at 0 -. at p; last_at = at 0 }
          else try_p (p + 1)
        end
      end
    in
    try_p 1
  end

let cycles d ~end_time =
  Hashtbl.fold
    (fun prefix st acc ->
      match find_cycle st with
      | Some c
        when end_time -. c.last_at <= 4. *. Float.max c.time_period 1.0 ->
        (prefix, c) :: acc
      | _ -> acc)
    d.states []
  |> List.sort (fun (a, _) (b, _) -> Prefix.compare a b)

(* ------------------------------------------------------------------ *)
(* Classification                                                      *)
(* ------------------------------------------------------------------ *)

type verdict =
  | Converged of { at : float }
  | Oscillating of {
      period : int;
      time_period : float;
      prefixes : Prefix.t list;
    }
  | Censored of { events : int }

let default_budget = 60_000

let classify ?(budget = default_budget) net =
  let d = attach net in
  let stats = Network.run ~max_events:budget net in
  detach d;
  let verdict =
    if not stats.Network.exhausted then
      Converged { at = stats.Network.converged_at }
    else
      let end_time = Event_queue.now (Network.queue net) in
      match cycles d ~end_time with
      | [] -> Censored { events = stats.Network.events }
      | (_, c0) :: _ as cs ->
        Oscillating
          { period = c0.period;
            time_period = c0.time_period;
            prefixes = List.map fst cs }
  in
  (verdict, stats)

(* ------------------------------------------------------------------ *)
(* The stability report                                                *)
(* ------------------------------------------------------------------ *)

type case = {
  name : string;
  prefix : Prefix.t;
  build : unit -> Network.t;
  spec : pref_spec option;     (* for the static dispute-wheel check *)
  expect_divergence : bool;    (* documented expectation, pinned by tests *)
}

type row = {
  scenario : string;
  damping : bool;
  verdict : verdict;
  events : int;
  messages : int;
  decision_changes : int;
  withdrawals : int;           (* policy churn shows up as withdrawals *)
  suppressions : int;
  reuses : int;
  suppressed_at_end : int;     (* (speaker, peer) pairs still suppressed *)
  wheel : int list option;
}

type report = {
  budget : int;
  rows : row list;
}

(* Damping parameters tuned for policy churn: attribute changes and
   withdrawals a few simulated seconds apart must be able to cross the
   suppression threshold within the budget. *)
let gadget_damping =
  { Damping.half_life = 60.;
    suppress_threshold = 1500.;
    reuse_threshold = 700.;
    withdraw_penalty = 1000.;
    attr_change_penalty = 600.;
    max_penalty = 6000. }

let suppressed_at_end net prefix =
  let now = Event_queue.now (Network.queue net) in
  let asns = Network.asns net in
  List.fold_left
    (fun acc a ->
      let sp = Network.speaker net a in
      List.fold_left
        (fun acc b ->
          if Asn.equal a b then acc
          else if Speaker.suppressed sp ~now (Network.peer_of net b) prefix
          then acc + 1
          else acc)
        acc asns)
    0 asns

let run_case ~budget ~damping case =
  let net = case.build () in
  (match damping with None -> () | Some p -> Network.set_damping net (Some p));
  let verdict, stats = classify ~budget net in
  { scenario = case.name;
    damping = Option.is_some damping;
    verdict;
    events = stats.Network.events;
    messages = stats.Network.messages;
    decision_changes = Network.counter_total net "decision.changes";
    withdrawals = stats.Network.withdrawals;
    suppressions = Network.counter_total net "damping.suppressed";
    reuses = Network.counter_total net "damping.reused";
    suppressed_at_end = suppressed_at_end net case.prefix;
    wheel = Option.bind case.spec dispute_wheel }

let run_cases ?(budget = default_budget) ?(damping = gadget_damping) cases =
  { budget;
    rows =
      List.concat_map
        (fun c ->
          [ run_case ~budget ~damping:None c;
            run_case ~budget ~damping:(Some damping) c ])
        cases }

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let verdict_label = function
  | Converged _ -> "converged"
  | Oscillating _ -> "oscillating"
  | Censored _ -> "censored"

let censored = function Censored _ -> true | _ -> false

let row_to_snapshot r =
  let open Snapshot in
  let verdict_fields =
    match r.verdict with
    | Converged { at } ->
      [ ("converged_at", Float at); ("period", Null); ("time_period", Null);
        ("prefixes", List []) ]
    | Oscillating { period; time_period; prefixes } ->
      [ ("converged_at", Null);
        ("period", Int period);
        ("time_period", Float time_period);
        ("prefixes", List (List.map (fun p -> String (Prefix.to_string p)) prefixes)) ]
    | Censored { events } ->
      [ ("converged_at", Null); ("period", Null); ("time_period", Null);
        ("prefixes", List []); ("censored_events", Int events) ]
  in
  Obj
    ( [ ("scenario", String r.scenario);
        ("damping", Bool r.damping);
        ("verdict", String (verdict_label r.verdict));
        ("censored", Bool (censored r.verdict)) ]
    @ verdict_fields
    @ [ ("events", Int r.events);
        ("messages", Int r.messages);
        ("decision_changes", Int r.decision_changes);
        ("withdrawals", Int r.withdrawals);
        ("suppressions", Int r.suppressions);
        ("reuses", Int r.reuses);
        ("suppressed_at_end", Int r.suppressed_at_end);
        ("dispute_wheel",
         match r.wheel with
         | None -> Null
         | Some ns -> List (List.map (fun n -> Int n) ns)) ] )

let to_snapshot rep =
  Snapshot.Obj
    [ ("budget", Snapshot.Int rep.budget);
      ("rows", Snapshot.List (List.map row_to_snapshot rep.rows)) ]

let pp_verdict ppf = function
  | Converged { at } -> Format.fprintf ppf "converged at t=%.1f" at
  | Oscillating { period; time_period; prefixes } ->
    Format.fprintf ppf "OSCILLATING period=%d changes (%.1fs) prefixes=[%s]"
      period time_period
      (String.concat "; " (List.map Prefix.to_string prefixes))
  | Censored { events } ->
    Format.fprintf ppf "censored after %d events (no cycle found)" events

let pp_row ppf r =
  Format.fprintf ppf
    "%-16s damping=%-5b %a@,                 msgs=%d changes=%d withdrawals=%d suppressed=%d reused=%d suppressed_now=%d wheel=%s"
    r.scenario r.damping pp_verdict r.verdict r.messages r.decision_changes
    r.withdrawals r.suppressions r.reuses r.suppressed_at_end
    ( match r.wheel with
      | None -> "none"
      | Some ns -> "[" ^ String.concat "->" (List.map string_of_int ns) ^ "]" )

let pp_report ppf rep =
  Format.fprintf ppf "@[<v>stability report (budget %d events/run)@," rep.budget;
  List.iter (fun r -> Format.fprintf ppf "%a@," pp_row r) rep.rows;
  Format.fprintf ppf "@]"
