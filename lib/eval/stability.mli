(** The divergence lab: detect and classify policy-induced routing
    instability.

    "BGP Stability is Precarious" and the SPVP line of work
    (Griffin/Shepherd/Wilfong) show that essentially any change to the
    decision process — exactly what D-BGP exists to deploy — can cause
    permanent divergence.  This module makes that failure mode
    first-class: run a network under an event budget and report
    {!Converged}, {!Oscillating} (with a measured period and the
    affected prefixes), or {!Censored} (budget exhausted, no recurring
    cycle found).

    Soundness of the classification: at quiescence every speaker's
    Loc-RIB entry is a best response to its neighbors' advertisements,
    so a drained event queue {e is} a stable path assignment.  A gadget
    with no stable assignment can therefore never drain the queue; the
    online detector then looks for a recurring cycle in the per-prefix
    global routing-state digest fed by
    {!Dbgp_netsim.Network.set_change_feed}. *)

(** {1 Static dispute-wheel detection} *)

type pref_spec = {
  origin : int;
  prefs : (int * int list list) list;
      (** Per node: permitted AS-level paths to [origin] (own ASN first,
          origin last), most preferred first.  Unlisted paths are
          filtered. *)
}

val dispute_wheel : pref_spec -> int list option
(** The nodes of a dispute wheel in the preference structure, if one
    exists.  No wheel implies the policies are safe (convergence
    guaranteed under any activation order); a wheel is a divergence
    {e risk} — BAD GADGET diverges, DISAGREE merely admits two stable
    states. *)

(** {1 Gadget decision modules} *)

val spvp_protocol : Dbgp_types.Protocol_id.t

val spvp_module : ranked:int list list -> Dbgp_core.Decision_module.t
(** A ranked-preference (SPVP-style) decision module: [ranked] lists the
    permitted {e received} paths (neighbor's ASN first, origin last),
    most preferred first; import rejects everything else, selection is
    by rank. *)

val med_protocol : Dbgp_types.Protocol_id.t

val med_module :
  me:int ->
  cluster:int list ->
  igp:((int * int) * int) list ->
  Dbgp_core.Decision_module.t
(** The RFC 3345 construction: a route-reflector-style cluster member
    comparing MEDs only within one exit AS, breaking the survivor tie by
    per-router IGP cost ([igp] maps (exit router, exit AS) to cost).
    MED's partial order plus partial visibility (each member advertises
    only its best) admits permanent churn. *)

(** {1 Online oscillation detection} *)

type detector

val attach : Dbgp_netsim.Network.t -> detector
(** Subscribe to the network's Loc-RIB change feed and start
    accumulating per-prefix global-state digests. *)

val detach : detector -> unit

type cycle = {
  period : int;        (** in Loc-RIB change events for the prefix *)
  time_period : float; (** the same period in simulated seconds *)
  last_at : float;     (** when the prefix last changed *)
}

val cycles :
  detector -> end_time:float -> (Dbgp_types.Prefix.t * cycle) list
(** Prefixes whose recent digest sequence repeats with a verified period
    and whose churn was still live near [end_time]. *)

(** {1 Classification} *)

type verdict =
  | Converged of { at : float }
  | Oscillating of {
      period : int;
      time_period : float;
      prefixes : Dbgp_types.Prefix.t list;
    }
  | Censored of { events : int }

val default_budget : int

val classify :
  ?budget:int ->
  Dbgp_netsim.Network.t ->
  verdict * Dbgp_netsim.Network.stats
(** Run the network under [budget] events with a detector attached and
    classify the outcome. *)

(** {1 The stability report} *)

type case = {
  name : string;
  prefix : Dbgp_types.Prefix.t;
  build : unit -> Dbgp_netsim.Network.t;
  spec : pref_spec option;
  expect_divergence : bool;
}

type row = {
  scenario : string;
  damping : bool;
  verdict : verdict;
  events : int;
  messages : int;
  decision_changes : int;
  withdrawals : int;
  suppressions : int;
  reuses : int;
  suppressed_at_end : int;
  wheel : int list option;
}

type report = {
  budget : int;
  rows : row list;
}

val gadget_damping : Dbgp_bgp.Flap_damping.params
(** Damping parameters under which policy churn a few simulated seconds
    apart can reach the suppression threshold within a typical budget. *)

val run_case :
  budget:int -> damping:Dbgp_bgp.Flap_damping.params option -> case -> row

val run_cases :
  ?budget:int -> ?damping:Dbgp_bgp.Flap_damping.params -> case list -> report
(** Each case runs twice — damping off and on — answering "does flap
    damping mask or amplify policy oscillation?" per scenario. *)

val verdict_label : verdict -> string
val censored : verdict -> bool
val to_snapshot : report -> Dbgp_obs.Snapshot.t
(** The [BENCH_stability.json] schema. *)

val pp_verdict : Format.formatter -> verdict -> unit
val pp_row : Format.formatter -> row -> unit
val pp_report : Format.formatter -> report -> unit
