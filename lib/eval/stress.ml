open Dbgp_types
module Speaker = Dbgp_core.Speaker
module Peer = Dbgp_core.Peer

type result = {
  label : string;
  advertisements : int;
  peers : int;
  avg_adv_bytes : int;
  elapsed_s : float;
  prefixes_per_s : float;
}

let time f =
  (* Isolate arms from each other's garbage. *)
  Gc.compact ();
  let t0 = Unix.gettimeofday () in
  let x = f () in
  (x, Unix.gettimeofday () -. t0)

let mk_result label ~advertisements ~peers ~total_bytes elapsed_s =
  { label;
    advertisements;
    peers;
    avg_adv_bytes = (if advertisements = 0 then 0 else total_bytes / advertisements);
    elapsed_s;
    prefixes_per_s =
      (if elapsed_s > 0. then float_of_int advertisements /. elapsed_s else 0.) }

let run_quagga_equivalent ?(peers = 6) ~advertisements () =
  let s = Workload.spec ~advertisements () in
  let wire =
    Workload.generate_updates s
    |> List.map (fun u -> Dbgp_bgp.Message.encode (Dbgp_bgp.Message.Update u))
  in
  let total_bytes = List.fold_left (fun a m -> a + String.length m) 0 wire in
  (* The same RIB stages the D-BGP speaker uses, with plain-BGP attribute
     candidates as the route type. *)
  let rib_in = Dbgp_core.Adj_rib_in.create () in
  let loc =
    Dbgp_core.Loc_rib.create
      ~next_hop:(fun b -> Some b.Dbgp_bgp.Decision.from_peer)
      ()
  in
  let peer_of i =
    Peer.make
      ~asn:(Asn.of_int (65001 + (i mod peers)))
      ~addr:(Ipv4.of_octets 192 168 0 (1 + (i mod peers)))
  in
  let (), elapsed =
    time (fun () ->
        List.iteri
          (fun i msg ->
            match Dbgp_bgp.Message.decode msg with
            | Dbgp_bgp.Message.Update { attrs = Some attrs; nlri; _ } ->
              List.iter
                (fun prefix ->
                  let peer = peer_of i in
                  let cand =
                    { Dbgp_bgp.Decision.attrs;
                      from_peer = peer.Peer.addr;
                      from_asn =
                        ( match Dbgp_bgp.Attr.as_path_asns attrs.Dbgp_bgp.Attr.as_path with
                          | a :: _ -> a
                          | [] -> Asn.of_int 65000 );
                      ebgp = true }
                  in
                  Dbgp_core.Adj_rib_in.set rib_in ~peer prefix cand;
                  let cands =
                    List.map snd (Dbgp_core.Adj_rib_in.candidates rib_in prefix)
                  in
                  match Dbgp_bgp.Decision.best cands with
                  | Some best ->
                    Dbgp_core.Loc_rib.set loc prefix best
                  | None -> Dbgp_core.Loc_rib.remove loc prefix)
                nlri
            | _ -> ())
          wire)
  in
  mk_result "Quagga-equivalent (BGP-only)" ~advertisements ~peers ~total_bytes
    elapsed

let run_beagle ?(peers = 6) ?(payload_bytes = 0) ~advertisements () =
  let s = Workload.spec ~payload_bytes ~advertisements () in
  let wire = List.map Dbgp_core.Codec.encode (Workload.generate s) in
  let total_bytes = List.fold_left (fun a m -> a + String.length m) 0 wire in
  let speaker =
    Speaker.create
      (Speaker.config ~asn:(Asn.of_int 64512)
         ~addr:(Ipv4.of_octets 192 168 1 1) ())
  in
  let peer_of i =
    Peer.make
      ~asn:(Asn.of_int (65001 + (i mod peers)))
      ~addr:(Ipv4.of_octets 192 168 0 (1 + (i mod peers)))
  in
  for i = 0 to peers - 1 do
    Speaker.add_neighbor speaker
      (Speaker.neighbor ~relationship:Dbgp_bgp.Policy.To_peer (peer_of i))
  done;
  let label =
    if payload_bytes = 0 then "Beagle (BGP-only IAs)"
    else Printf.sprintf "Beagle (%d KB IAs)" (payload_bytes / 1024)
  in
  let (), elapsed =
    time (fun () ->
        List.iteri
          (fun i msg ->
            let ia = Dbgp_core.Codec.decode msg in
            let outbox =
              Speaker.receive speaker ~from:(peer_of i) (Speaker.Announce ia)
            in
            (* Re-serialize what the router disseminates — the cost the
               paper attributes Beagle's decay with IA size to. *)
            List.iter
              (fun (_, out) ->
                match out with
                | Speaker.Announce ia -> ignore (Dbgp_core.Codec.encode ia)
                | Speaker.Withdraw _ -> ())
              outbox)
          wire)
  in
  mk_result label ~advertisements ~peers ~total_bytes elapsed

let run_beagle_batched ?(peers = 6) ?(payload_bytes = 0) ?(batch = 32)
    ~advertisements () =
  let s = Workload.spec ~payload_bytes ~advertisements () in
  let wire = List.map Dbgp_core.Codec.encode (Workload.generate s) in
  let total_bytes = List.fold_left (fun a m -> a + String.length m) 0 wire in
  let speaker =
    Speaker.create
      (Speaker.config ~asn:(Asn.of_int 64512)
         ~addr:(Ipv4.of_octets 192 168 1 1) ())
  in
  let peer_of i =
    Peer.make
      ~asn:(Asn.of_int (65001 + (i mod peers)))
      ~addr:(Ipv4.of_octets 192 168 0 (1 + (i mod peers)))
  in
  for i = 0 to peers - 1 do
    Speaker.add_neighbor speaker
      (Speaker.neighbor ~relationship:Dbgp_bgp.Policy.To_peer (peer_of i))
  done;
  let emit_outbox outbox =
    List.iter
      (fun (_, out) ->
        match out with
        | Speaker.Announce ia -> ignore (Dbgp_core.Codec.encode ia)
        | Speaker.Withdraw _ -> ())
      outbox
  in
  let (), elapsed =
    time (fun () ->
        List.iteri
          (fun i msg ->
            let ia = Dbgp_core.Codec.decode msg in
            Speaker.ingest speaker ~from:(peer_of i) (Speaker.Announce ia);
            (* Drain once per [batch] arrivals — the MRAI-style receive
               path, where colliding prefixes share one decision run. *)
            if (i + 1) mod batch = 0 then emit_outbox (Speaker.flush speaker))
          wire;
        emit_outbox (Speaker.flush speaker))
  in
  let label =
    if payload_bytes = 0 then
      Printf.sprintf "Beagle batched/%d (BGP-only)" batch
    else
      Printf.sprintf "Beagle batched/%d (%d KB IAs)" batch (payload_bytes / 1024)
  in
  mk_result label ~advertisements ~peers ~total_bytes elapsed

(* ------------------- event-budget probe ------------------- *)

type budget_probe = {
  ases : int;
  budget : int;
  events_run : int;
  budget_exhausted : bool;
}

(* Drive a provider chain under a deliberately insufficient event budget
   to prove truncation is reported, then the same topology unbounded to
   prove a quiescent run is not flagged.  Exercises the
   {!Dbgp_netsim.Event_queue} budget-exhaustion signal end to end
   through [Network.run]. *)
let run_budget_probe ?(ases = 20) ?(budget = 10) () =
  let module Network = Dbgp_netsim.Network in
  let build () =
    let net = Network.create () in
    for i = 1 to ases do
      ignore (Harness.add_as net i)
    done;
    for i = 1 to ases - 1 do
      Harness.cust net i (i + 1)
    done;
    let origin = Asn.of_int 1 in
    Network.originate net origin
      (Dbgp_core.Ia.originate
         ~prefix:(Prefix.of_string "99.77.0.0/24")
         ~origin_asn:origin
         ~next_hop:(Network.speaker_addr origin) ());
    net
  in
  let bounded = Network.run ~max_events:budget (build ()) in
  let free = Network.run (build ()) in
  { ases;
    budget;
    events_run = bounded.Network.events;
    budget_exhausted =
      bounded.Network.exhausted && not free.Network.exhausted }

let pp_budget_probe ppf r =
  Format.fprintf ppf
    "budget probe: %d ASes, %d-event budget -> ran %d, exhausted=%b"
    r.ases r.budget r.events_run r.budget_exhausted

let suite ?(advertisements = 2_000) () =
  (* Every arm replays the same number of advertisements so RIB-size
     effects cancel and only the serialization cost differs. *)
  [ run_quagga_equivalent ~advertisements ();
    run_beagle ~advertisements ();
    run_beagle_batched ~advertisements ();
    run_beagle ~payload_bytes:(32 * 1024) ~advertisements ();
    run_beagle ~payload_bytes:(256 * 1024) ~advertisements () ]

let pp_result ppf r =
  Format.fprintf ppf "%-28s %8d advs  %6d B/adv  %8.2fs  %10.0f prefixes/s"
    r.label r.advertisements r.avg_adv_bytes r.elapsed_s r.prefixes_per_s
