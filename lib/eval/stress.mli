(** The Section 5 stress test: Beagle's processing overhead.

    Replays a synthetic advertisement trace (the RIPE-trace substitute)
    into a router under test and reports sustained prefixes/second:

    - the {e Quagga-equivalent} arm parses and selects plain BGP UPDATE
      messages (wire decode -> decision process -> RIB);
    - the {e Beagle} arm does the same through the full D-BGP pipeline
      (IA decode -> speaker receive -> IA factory), swept over IA
      payload sizes (0 / 32 KB / 256 KB in the paper).

    The paper's shape: BGP-only throughput is nearly identical across
    the two routers (40,700 vs 40,900 prefixes/s on their hardware) and
    Beagle's throughput decays with IA size due to serialization cost
    (7,073 prefixes/s at 32 KB, 926 at 256 KB). *)

type result = {
  label : string;
  advertisements : int;
  peers : int;
  avg_adv_bytes : int;
  elapsed_s : float;
  prefixes_per_s : float;
}

val run_quagga_equivalent : ?peers:int -> advertisements:int -> unit -> result
val run_beagle : ?peers:int -> ?payload_bytes:int -> advertisements:int -> unit -> result

val run_beagle_batched :
  ?peers:int -> ?payload_bytes:int -> ?batch:int -> advertisements:int ->
  unit -> result
(** The MRAI-style receive path: updates are only ingested into the
    speaker's dirty-prefix pipeline and a drain runs once per [batch]
    arrivals (default 32), so colliding prefixes share one decision
    run. *)

type budget_probe = {
  ases : int;
  budget : int;
  events_run : int;         (** events executed under the bounded run *)
  budget_exhausted : bool;
  (** the bounded run reported exhaustion AND the unbounded control run
      did not — the {!Dbgp_netsim.Event_queue} budget signal observed
      end to end *)
}

val run_budget_probe : ?ases:int -> ?budget:int -> unit -> budget_probe
(** Run a provider chain under a deliberately insufficient [budget] of
    simulator events, plus an unbounded control, and report whether
    truncation was correctly surfaced via [Network.stats.exhausted]. *)

val pp_budget_probe : Format.formatter -> budget_probe -> unit

val suite : ?advertisements:int -> unit -> result list
(** The paper's comparison: Quagga BGP-only, Beagle BGP-only (eager and
    batched), Beagle 32 KB IAs, Beagle 256 KB IAs, every arm replaying
    the same number of advertisements.  The default of 2,000 (the paper used 150,000/peer)
    keeps the benchmark under half a minute while preserving the
    comparison; scale up with [advertisements] for steadier rates. *)

val pp_result : Format.formatter -> result -> unit
