(* Persistent pool of worker domains for barrier-synchronized rounds.

   The sharded simulator runs thousands of short epochs; spawning a
   domain per epoch would dominate runtime and, worse, discard every
   domain-local cache (intern tables, codec encode/decode caches)
   between epochs.  The pool instead spawns [size - 1] long-lived
   domains once; member 0 is the calling domain itself, so a pool of
   size 1 degenerates to plain sequential execution with zero spawns.

   Each [run] is one round: all members execute [f member] in
   parallel, and [run] returns only after every member finished.  The
   mutex/condition round handshake doubles as the memory barrier the
   mailbox protocol relies on — writes made by any member during round
   [k] are visible to every member in round [k + 1].

   Exceptions: the first exception raised by any member (lowest member
   index wins, for determinism) is re-raised from [run] after the
   round completes; the pool stays usable. *)

type t = {
  size : int;
  mutex : Mutex.t;
  start : Condition.t;
  finished : Condition.t;
  mutable round : int;            (* incremented per run *)
  mutable job : (int -> unit) option;
  mutable remaining : int;        (* workers still running this round *)
  mutable failures : (int * exn) list;
  mutable stop : bool;
  mutable domains : unit Domain.t array;
}

let size t = t.size

let worker t member =
  let last = ref 0 in
  let continue = ref true in
  while !continue do
    Mutex.lock t.mutex;
    while t.round = !last && not t.stop do
      Condition.wait t.start t.mutex
    done;
    if t.stop then begin
      Mutex.unlock t.mutex;
      continue := false
    end
    else begin
      last := t.round;
      let job = Option.get t.job in
      Mutex.unlock t.mutex;
      let failure = match job member with () -> None | exception e -> Some e in
      Mutex.lock t.mutex;
      (match failure with
      | None -> ()
      | Some e -> t.failures <- (member, e) :: t.failures);
      t.remaining <- t.remaining - 1;
      if t.remaining = 0 then Condition.broadcast t.finished;
      Mutex.unlock t.mutex
    end
  done

let create ~size =
  if size < 1 then invalid_arg "Domain_pool.create: size must be >= 1";
  let t =
    {
      size;
      mutex = Mutex.create ();
      start = Condition.create ();
      finished = Condition.create ();
      round = 0;
      job = None;
      remaining = 0;
      failures = [];
      stop = false;
      domains = [||];
    }
  in
  t.domains <-
    Array.init (size - 1) (fun i -> Domain.spawn (fun () -> worker t (i + 1)));
  t

let run t f =
  if t.size = 1 then f 0
  else begin
    Mutex.lock t.mutex;
    t.job <- Some f;
    t.failures <- [];
    t.remaining <- t.size - 1;
    t.round <- t.round + 1;
    Condition.broadcast t.start;
    Mutex.unlock t.mutex;
    (* The caller is member 0. *)
    let own = match f 0 with () -> None | exception e -> Some e in
    Mutex.lock t.mutex;
    while t.remaining > 0 do
      Condition.wait t.finished t.mutex
    done;
    let failures =
      match own with
      | None -> t.failures
      | Some e -> (0, e) :: t.failures
    in
    t.job <- None;
    Mutex.unlock t.mutex;
    match List.sort (fun (a, _) (b, _) -> Int.compare a b) failures with
    | [] -> ()
    | (_, e) :: _ -> raise e
  end

let map t f =
  let results = Array.make t.size None in
  run t (fun m -> results.(m) <- Some (f m));
  Array.map Option.get results

let shutdown t =
  Mutex.lock t.mutex;
  t.stop <- true;
  Condition.broadcast t.start;
  Mutex.unlock t.mutex;
  Array.iter Domain.join t.domains;
  t.domains <- [||]
