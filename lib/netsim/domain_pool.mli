(** Persistent pool of worker domains for barrier-synchronized rounds.

    Spawns [size - 1] long-lived domains at creation; the caller is
    member 0.  Keeping domains alive across rounds preserves their
    domain-local caches (intern tables, codec caches) — the sharded
    simulator runs thousands of short epochs and respawning per epoch
    would throw the caches away each time.

    Every {!run} is a round executed by all members in parallel; its
    mutex handshake doubles as the memory barrier of the mailbox
    protocol: writes made during round [k] are visible to all members
    in round [k + 1]. *)

type t

val create : size:int -> t
(** Spawn [size - 1] workers.  A pool of size 1 spawns nothing and
    {!run} degenerates to a plain call.
    @raise Invalid_argument if [size < 1]. *)

val size : t -> int

val run : t -> (int -> unit) -> unit
(** [run t f] executes [f member] on every member ([0] on the calling
    domain, [1 .. size-1] on the workers) and returns when all have
    finished.  If members raise, the exception from the lowest member
    index is re-raised after the round completes; the pool remains
    usable. *)

val map : t -> (int -> 'a) -> 'a array
(** Like {!run}, collecting each member's result by index. *)

val shutdown : t -> unit
(** Stop and join all workers.  The pool must not be used afterwards.
    Idempotent. *)
