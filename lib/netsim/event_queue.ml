(* Array-backed binary min-heap ordered by (time, seq).  The previous
   implementation was a [Map.Make] over the same key, which allocated
   an O(log n) node spine per schedule *and* per pop; the heap touches
   one 3-field record per schedule and sifts in place.  [seq] preserves
   FIFO order among same-time events, so replay stays deterministic. *)

type entry = { time : float; seq : int; f : unit -> unit }

let nil = { time = neg_infinity; seq = -1; f = ignore }

type t = {
  mutable heap : entry array;
  mutable size : int;
  mutable clock : float;
  mutable seq : int;
  mutable exhausted : bool;
}

let create () =
  { heap = Array.make 256 nil; size = 0; clock = 0.; seq = 0;
    exhausted = false }

let now t = t.clock

(* e1 strictly before e2 in dequeue order. *)
let before e1 e2 =
  e1.time < e2.time || (e1.time = e2.time && e1.seq < e2.seq)

let grow t =
  let h = Array.make (2 * Array.length t.heap) nil in
  Array.blit t.heap 0 h 0 t.size;
  t.heap <- h

let schedule_at t ~time f =
  if time < t.clock then invalid_arg "Event_queue.schedule_at: time in the past"
  else begin
    if t.size = Array.length t.heap then grow t;
    let e = { time; seq = t.seq; f } in
    t.seq <- t.seq + 1;
    (* Sift up. *)
    let h = t.heap in
    let i = ref t.size in
    t.size <- t.size + 1;
    let continue = ref true in
    while !continue && !i > 0 do
      let parent = (!i - 1) / 2 in
      if before e h.(parent) then begin
        h.(!i) <- h.(parent);
        i := parent
      end
      else continue := false
    done;
    h.(!i) <- e
  end

let schedule t ~delay f =
  if delay < 0. then invalid_arg "Event_queue.schedule: negative delay"
  else schedule_at t ~time:(t.clock +. delay) f

let is_empty t = t.size = 0
let pending t = t.size

let pop t =
  let h = t.heap in
  let top = h.(0) in
  let n = t.size - 1 in
  t.size <- n;
  let e = h.(n) in
  h.(n) <- nil;
  if n > 0 then begin
    (* Sift the displaced last element down from the root. *)
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 in
      if l >= n then continue := false
      else begin
        let r = l + 1 in
        let c = if r < n && before h.(r) h.(l) then r else l in
        if before h.(c) e then begin
          h.(!i) <- h.(c);
          i := c
        end
        else continue := false
      end
    done;
    h.(!i) <- e
  end;
  top

let step t =
  if t.size = 0 then false
  else begin
    let e = pop t in
    t.clock <- e.time;
    e.f ();
    true
  end

let run ?(max_events = 10_000_000) t =
  let executed = ref 0 in
  while !executed < max_events && step t do
    incr executed
  done;
  t.exhausted <- !executed >= max_events && t.size > 0;
  !executed

let budget_exhausted t = t.exhausted

let peek_time t = if t.size = 0 then None else Some t.heap.(0).time

(* Epoch slice: execute while the head is strictly below [horizon].
   The barrier synchronizer calls this once per epoch; events at or
   past the horizon stay queued for a later epoch, and the clock is
   left wherever the last executed event put it (never advanced to the
   horizon, so a cross-partition arrival scheduled exactly at the
   horizon is still in this queue's future). *)
let run_until ?(max_events = max_int) t ~horizon =
  let executed = ref 0 in
  let continue = ref true in
  while !continue do
    if !executed >= max_events || t.size = 0 then continue := false
    else if t.heap.(0).time >= horizon then continue := false
    else begin
      ignore (step t);
      incr executed
    end
  done;
  t.exhausted <- !executed >= max_events && t.size > 0;
  !executed

(* Drain [src] into [dst], preserving [src]'s internal (time, seq)
   order among its own events: same-time entries from [src] are
   re-scheduled in their original sequence order and therefore receive
   increasing [dst] sequence numbers.  Used by tests to fold a
   reference queue into a live one; the sharded engine itself never
   merges queues (regions keep theirs for the whole run). *)
let merge ~into:dst src =
  let n = src.size in
  if n > 0 then begin
    let entries = Array.sub src.heap 0 n in
    Array.sort (fun a b -> if before a b then -1 else 1) entries;
    Array.iter
      (fun e ->
        let time = if e.time < dst.clock then dst.clock else e.time in
        schedule_at dst ~time e.f)
      entries;
    Array.fill src.heap 0 n nil;
    src.size <- 0
  end
