(** Discrete-event priority queue.

    Drives the network simulator: events are thunks scheduled at
    simulated timestamps, popped in (time, sequence) order so that
    simultaneous events run in scheduling order — deterministic replay
    for the whole test and benchmark suite. *)

type t

val create : unit -> t
val now : t -> float
val schedule : t -> delay:float -> (unit -> unit) -> unit
(** @raise Invalid_argument on negative delay. *)

val schedule_at : t -> time:float -> (unit -> unit) -> unit
(** @raise Invalid_argument if [time] is in the simulated past. *)

val is_empty : t -> bool
val pending : t -> int

val run : ?max_events:int -> t -> int
(** Pops and executes events until the queue drains or the budget is
    hit; returns the number executed. *)

val budget_exhausted : t -> bool
(** Whether the most recent {!run} stopped because [max_events] was
    reached while events were still pending — i.e. the run did NOT
    drain the queue and any "converged" reading of the result is
    suspect. *)

val step : t -> bool
(** Execute one event; [false] if the queue was empty. *)

(** {1 Epoch execution (sharded runs)} *)

val peek_time : t -> float option
(** Timestamp of the next event without executing it; [None] when
    empty.  Lets the barrier synchronizer decide whether a region has
    work inside the current epoch. *)

val run_until : ?max_events:int -> t -> horizon:float -> int
(** Pop and execute events whose time is strictly below [horizon];
    returns the number executed.  Events at or past the horizon remain
    queued.  The clock is left at the last executed event's time, never
    advanced to the horizon, so arrivals scheduled exactly at the
    horizon are still schedulable. *)

val merge : into:t -> t -> unit
(** [merge ~into:dst src] drains every pending event of [src] into
    [dst], preserving [src]'s relative (time, seq) order; [src] events
    in [dst]'s past are clamped to [dst]'s current clock.  [src] is
    left empty. *)
