(* Fault injection for the simulated control plane.

   A fault model owns a seeded PRNG and decides, per message, whether the
   message is lost, corrupted in flight, delivered twice, or delayed out
   of order, and how much latency jitter it picks up.  All fault types
   share one time window ([from]/[until]) so experiments can run a chaos
   phase and still assert clean reconvergence afterwards.  Per-link
   overrides shadow the global defaults.

   Determinism: all randomness comes from the seeded PRNG, drawn in event
   order, so the same seed and schedule reproduce the same run. *)

open Dbgp_types

type link_params = {
  loss : float;
  jitter : float;
  corrupt : float;
  duplicate : float;
  reorder : float;
}

let no_faults = { loss = 0.; jitter = 0.; corrupt = 0.; duplicate = 0.; reorder = 0. }

type t = {
  rng : Prng.t;
  mutable defaults : link_params;
  mutable from : float;          (* faults apply while from <= now < until *)
  mutable until : float;
  mutable reorder_window : float; (* max extra delay for a reordered message *)
  per_link : (int * int, link_params) Hashtbl.t;  (* undirected, a < b *)
  mutable dropped : int;
  mutable corrupted : int;
  mutable duplicated : int;
  mutable reordered : int;
}

let create ~seed () =
  { rng = Prng.create seed;
    defaults = no_faults;
    from = 0.;
    until = infinity;
    reorder_window = 0.5;
    per_link = Hashtbl.create 16;
    dropped = 0;
    corrupted = 0;
    duplicated = 0;
    reordered = 0 }

let key a b = if a < b then (a, b) else (b, a)

(* Probabilities live in the closed interval: 1.0 is a legitimate setting
   (a blackholed or fully-corrupting link), only values outside [0, 1]
   are configuration errors. *)
let check_p name p =
  if p < 0. || p > 1. then
    invalid_arg (name ^ ": probability must be in [0, 1]")

let set_window t ~from ~until =
  t.from <- from;
  t.until <- until

let set_loss ?(from = 0.) ?(until = infinity) t p =
  check_p "Fault_model.set_loss" p;
  t.defaults <- { t.defaults with loss = p };
  set_window t ~from ~until

let set_jitter t j =
  if j < 0. then invalid_arg "Fault_model.set_jitter: negative jitter";
  t.defaults <- { t.defaults with jitter = j }

let set_corruption t p =
  check_p "Fault_model.set_corruption" p;
  t.defaults <- { t.defaults with corrupt = p }

let set_duplicate t p =
  check_p "Fault_model.set_duplicate" p;
  t.defaults <- { t.defaults with duplicate = p }

let set_reorder ?window t p =
  check_p "Fault_model.set_reorder" p;
  ( match window with
    | None -> ()
    | Some w ->
      if w <= 0. then invalid_arg "Fault_model.set_reorder: window must be positive";
      t.reorder_window <- w );
  t.defaults <- { t.defaults with reorder = p }

let set_link t ~a ~b ?(loss = 0.) ?(jitter = 0.) ?(corrupt = 0.)
    ?(duplicate = 0.) ?(reorder = 0.) () =
  check_p "Fault_model.set_link" loss;
  check_p "Fault_model.set_link" corrupt;
  check_p "Fault_model.set_link" duplicate;
  check_p "Fault_model.set_link" reorder;
  if jitter < 0. then invalid_arg "Fault_model.set_link: negative jitter";
  Hashtbl.replace t.per_link (key a b) { loss; jitter; corrupt; duplicate; reorder }

let params t a b =
  match Hashtbl.find_opt t.per_link (key a b) with
  | Some p -> p
  | None -> t.defaults

let in_window t ~now = now >= t.from && now < t.until

(* Each predicate consumes one PRNG draw only when its fault is live on
   the link, keeping quiet phases free (and draw order stable when a new
   fault type is left disabled). *)
let hit t ~now p =
  p > 0. && in_window t ~now && Prng.float t.rng 1.0 < p

let drop t ~now a b =
  let h = hit t ~now (params t a b).loss in
  if h then t.dropped <- t.dropped + 1;
  h

let corrupt t ~now a b =
  let h = hit t ~now (params t a b).corrupt in
  if h then t.corrupted <- t.corrupted + 1;
  h

let duplicate t ~now a b =
  let h = hit t ~now (params t a b).duplicate in
  if h then t.duplicated <- t.duplicated + 1;
  h

(* Extra delay for a reordered message: 0 when delivery stays in order,
   uniform in (0, reorder_window] when the reorder draw fires. *)
let reorder_delay t ~now a b =
  if hit t ~now (params t a b).reorder then begin
    t.reordered <- t.reordered + 1;
    t.reorder_window -. Prng.float t.rng t.reorder_window
  end
  else 0.

(* Extra latency for a message on link a-b: uniform in [0, jitter). *)
let jitter t a b =
  let ({ jitter; _ } : link_params) = params t a b in
  if jitter <= 0. then 0. else Prng.float t.rng jitter

(* Wire-level damage to an encoded message: bit flips (the common case —
   they leave framing mostly intact and exercise body-level validation)
   or truncation (framing damage).  Deterministic given the PRNG state.
   The empty string has no bits to flip and passes through. *)
let mutate t s =
  let n = String.length s in
  if n = 0 then s
  else
    match Prng.int t.rng 4 with
    | 0 | 1 ->
      (* Flip a single bit. *)
      let b = Bytes.of_string s in
      let i = Prng.int t.rng n in
      Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl Prng.int t.rng 8)));
      Bytes.to_string b
    | 2 ->
      (* Flip a burst of up to 8 bits anywhere in the message. *)
      let b = Bytes.of_string s in
      let flips = 1 + Prng.int t.rng 8 in
      for _ = 1 to flips do
        let i = Prng.int t.rng n in
        Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl Prng.int t.rng 8)))
      done;
      Bytes.to_string b
    | _ ->
      (* Truncate to a random proper prefix (possibly empty). *)
      String.sub s 0 (Prng.int t.rng n)

let dropped t = t.dropped
let corrupted t = t.corrupted
let duplicated t = t.duplicated
let reordered t = t.reordered