(* Fault injection for the simulated control plane.

   A fault model owns a seeded PRNG and decides, per message, whether the
   message is lost and how much latency jitter it picks up.  Loss can be
   confined to a time window ([from]/[until]) so experiments can run a
   lossy chaos phase and still assert clean reconvergence afterwards.
   Per-link overrides shadow the global defaults.

   Determinism: all randomness comes from the seeded PRNG, drawn in event
   order, so the same seed and schedule reproduce the same run. *)

open Dbgp_types

type link_params = { loss : float; jitter : float }

type t = {
  rng : Prng.t;
  mutable loss : float;          (* default per-message loss probability *)
  mutable jitter : float;        (* default max added latency, seconds *)
  mutable loss_from : float;     (* loss applies while from <= now < until *)
  mutable loss_until : float;
  per_link : (int * int, link_params) Hashtbl.t;  (* undirected, a < b *)
  mutable dropped : int;
}

let create ~seed () =
  { rng = Prng.create seed;
    loss = 0.;
    jitter = 0.;
    loss_from = 0.;
    loss_until = infinity;
    per_link = Hashtbl.create 16;
    dropped = 0 }

let key a b = if a < b then (a, b) else (b, a)

let set_loss ?(from = 0.) ?(until = infinity) t p =
  if p < 0. || p >= 1. then
    invalid_arg "Fault_model.set_loss: probability must be in [0, 1)";
  t.loss <- p;
  t.loss_from <- from;
  t.loss_until <- until

let set_jitter t j =
  if j < 0. then invalid_arg "Fault_model.set_jitter: negative jitter";
  t.jitter <- j

let set_link t ~a ~b ?(loss = 0.) ?(jitter = 0.) () =
  if loss < 0. || loss >= 1. then
    invalid_arg "Fault_model.set_link: loss probability must be in [0, 1)";
  if jitter < 0. then invalid_arg "Fault_model.set_link: negative jitter";
  Hashtbl.replace t.per_link (key a b) { loss; jitter }

let params t a b =
  match Hashtbl.find_opt t.per_link (key a b) with
  | Some p -> p
  | None -> { loss = t.loss; jitter = t.jitter }

(* Should the message travelling a->b at [now] be lost?  Consumes one PRNG
   draw only when loss is live on the link, keeping quiet phases free. *)
let drop t ~now a b =
  let ({ loss; _ } : link_params) = params t a b in
  loss > 0.
  && now >= t.loss_from
  && now < t.loss_until
  &&
  let hit = Prng.float t.rng 1.0 < loss in
  if hit then t.dropped <- t.dropped + 1;
  hit

(* Extra latency for a message on link a-b: uniform in [0, jitter). *)
let jitter t a b =
  let ({ jitter; _ } : link_params) = params t a b in
  if jitter <= 0. then 0. else Prng.float t.rng jitter

let dropped t = t.dropped
