(* Single-producer mailbox for cross-partition deliveries.

   One mailbox exists per directed (source region, destination region)
   pair.  The owning source domain pushes during its epoch; the
   destination domain drains at the next barrier.  The epoch barrier
   (a Mutex/Condition round in [Domain_pool]) is the synchronization
   point: every push happens-before the barrier and every drain
   happens-after it, so the mailbox itself needs no lock — the
   single-producer/drain-after-barrier contract is the whole
   concurrency story.

   Determinism: entries carry the producer's push index, so the
   consumer can impose a total order on the union of its inbound
   mailboxes — (arrival time, source region, push index) — that
   depends only on simulation content, never on domain scheduling. *)

type 'a entry = { time : float; seq : int; payload : 'a }

type 'a t = { mutable entries : 'a entry list; mutable next_seq : int }

let create () = { entries = []; next_seq = 0 }

let push t ~time payload =
  t.entries <- { time; seq = t.next_seq; payload } :: t.entries;
  t.next_seq <- t.next_seq + 1

let is_empty t = t.entries = []
let length t = List.length t.entries

let min_time t =
  List.fold_left
    (fun acc e -> match acc with
      | Some m when m <= e.time -> acc
      | _ -> Some e.time)
    None t.entries

let drain t =
  let out = List.rev t.entries in
  t.entries <- [];
  List.map (fun e -> (e.time, e.seq, e.payload)) out
