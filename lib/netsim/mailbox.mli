(** Single-producer mailbox for cross-partition deliveries.

    One mailbox per directed (source region, destination region) pair.
    The source domain pushes during its epoch; the destination domain
    drains after the next barrier.  The barrier is the synchronization
    point (its mutex round establishes happens-before), so the mailbox
    itself is lock-free by contract: never push and drain the same
    mailbox concurrently.

    Entries carry the producer's monotonically increasing push index;
    the consumer sorts the union of its inbound mailboxes by (arrival
    time, source region, push index) to get a total order that depends
    only on simulation content, never on domain scheduling. *)

type 'a t

val create : unit -> 'a t

val push : 'a t -> time:float -> 'a -> unit
(** Producer side: append a payload arriving at simulated [time].
    Push order is preserved and recorded in the entry's index. *)

val drain : 'a t -> (float * int * 'a) list
(** Consumer side (after a barrier): all pending entries as
    [(time, push_index, payload)] in push order; the mailbox is left
    empty. *)

val is_empty : 'a t -> bool
val length : 'a t -> int

val min_time : 'a t -> float option
(** Earliest pending arrival time; [None] when empty.  Used by the
    epoch scheduler to pick the next conservative horizon. *)
