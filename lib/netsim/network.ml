open Dbgp_types
module Speaker = Dbgp_core.Speaker
module Peer = Dbgp_core.Peer
module Metrics = Dbgp_obs.Metrics
module Trace = Dbgp_obs.Trace
module Snapshot = Dbgp_obs.Snapshot

type stats = {
  messages : int;
  announce_bytes : int;
  withdrawals : int;
  dropped : int;
  events : int;
  converged_at : float;
  exhausted : bool;
}

(* Everything needed to re-create both directions of a link after a
   failure, so [recover_link] can restore exactly what [link] built. *)
type link_cfg = {
  c_latency : float;
  c_a : Asn.t;
  c_b : Asn.t;
  c_a_import : Dbgp_core.Filters.t;
  c_a_export : Dbgp_core.Filters.t;
  c_b_import : Dbgp_core.Filters.t;
  c_b_export : Dbgp_core.Filters.t;
  c_a_dbgp : bool;
  c_b_dbgp : bool;
  c_b_is : Dbgp_bgp.Policy.relationship;
}

(* One side of a link whose other endpoint lives in a different
   partition: everything needed to (re-)install the local neighbor
   entry, mirroring [link_cfg] for half of a cut edge. *)
type half_cfg = {
  hc_latency : float;
  hc_local : Asn.t;
  hc_remote : Asn.t;
  hc_import : Dbgp_core.Filters.t;
  hc_export : Dbgp_core.Filters.t;
  hc_remote_dbgp : bool;
  hc_remote_is : Dbgp_bgp.Policy.relationship;
  hc_same_island : bool;
}

type t = {
  q : Event_queue.t;
  lookup : Lookup_service.t;
  speakers : (int, Speaker.t) Hashtbl.t;     (* by ASN *)
  by_addr : (int, int) Hashtbl.t;            (* speaker addr -> ASN *)
  (* Cross-partition egress: messages to an ASN in [remote_addrs] are
     handed (with their computed arrival time) to the shard engine's
     hook instead of the local event queue. *)
  mutable remote :
    (from:Asn.t -> to_:Asn.t -> at:float -> Speaker.msg -> unit) option;
  remote_addrs : (int, int) Hashtbl.t;       (* peer addr -> remote ASN *)
  half_links : (int, half_cfg) Hashtbl.t;    (* by packed pair *)
  latencies : (int, float) Hashtbl.t;  (* by packed ASN pair, a < b; presence = link up *)
  links : (int, link_cfg) Hashtbl.t;   (* config for every link ever made *)
  mutable mrai : float;
  mutable wire_delivery : bool;
  (* Attribute-bucketed frame delivery at MRAI flush (opt-in, see
     {!set_batching}): prefixes sharing an attribute set leave in one
     multi-prefix frame instead of one message each. *)
  mutable batching : bool;
  mutable fault : Fault_model.t option;
  (* Adversarial egress interposition: a compromised AS rewrites (or
     silently drops) messages it sends, before they hit the wire.  The
     adversary layer installs this; [None] result = message suppressed. *)
  mutable interposer :
    (from:Asn.t -> to_:Asn.t -> Speaker.msg -> Speaker.msg option) option;
  mutable graceful_window : float option;    (* restart window; None = flush at once *)
  restart_gen : (int, int) Hashtbl.t;  (* invalidates superseded flush timers *)
  (* Open restart windows by packed link key: the absolute time the
     graceful flush will fire.  A link recovering before its deadline
     re-establishes with an incremental sync (both sides kept state);
     past it — or with no entry — only a full refresh is sound. *)
  restart_deadline : (int, float) Hashtbl.t;
  mutable sync_chunk : int;  (* prefixes examined per sync event *)
  (* Per (src, dst) directed pair: the latest pending message per prefix
     plus whether a flush is already scheduled. *)
  pending : (int, (Prefix.t, Speaker.msg) Hashtbl.t * bool ref) Hashtbl.t;
  (* Receive-side batching (MRAI mode): per-ASN flag marking an already
     scheduled pipeline drain, so a burst of arrivals buys one drain. *)
  drain_scheduled : (int, bool ref) Hashtbl.t;
  (* ASN -> shared Peer.t handed to speakers on every delivery. *)
  peer_memo : (int, Peer.t) Hashtbl.t;
  (* Network-level observability: message accounting lives in a metrics
     registry (the hot-path counters are cached), wire-level events go to
     the trace ring. *)
  obs : Metrics.t;
  trace : Trace.t;
  c_messages : Metrics.counter;
  c_announce_bytes : Metrics.counter;
  c_withdrawals : Metrics.counter;
  c_dropped : Metrics.counter;
  h_msg_bytes : Metrics.histogram;
}

let create () =
  let obs = Metrics.create () in
  { q = Event_queue.create ();
    lookup = Lookup_service.create ();
    speakers = Hashtbl.create 64;
    by_addr = Hashtbl.create 64;
    remote = None;
    remote_addrs = Hashtbl.create 16;
    half_links = Hashtbl.create 16;
    latencies = Hashtbl.create 64;
    links = Hashtbl.create 64;
    mrai = 0.;
    wire_delivery = false;
    batching = false;
    fault = None;
    interposer = None;
    graceful_window = None;
    restart_gen = Hashtbl.create 16;
    restart_deadline = Hashtbl.create 16;
    sync_chunk = 512;
    pending = Hashtbl.create 64;
    drain_scheduled = Hashtbl.create 64;
    peer_memo = Hashtbl.create 64;
    obs;
    trace = Trace.create ();
    c_messages = Metrics.counter obs "net.messages";
    c_announce_bytes = Metrics.counter obs "net.announce_bytes";
    c_withdrawals = Metrics.counter obs "net.withdrawals";
    c_dropped = Metrics.counter obs "net.dropped";
    h_msg_bytes = Metrics.histogram obs "net.msg_bytes" }

let lookup t = t.lookup
let queue t = t.q
let metrics t = t.obs
let trace t = t.trace

let speaker_addr a =
  let n = Asn.to_int a in
  Ipv4.of_octets 10 ((n lsr 16) land 0xFF) ((n lsr 8) land 0xFF) (n land 0xFF)

let add_speaker t s =
  let addr = Ipv4.to_int (Speaker.addr s) in
  if Hashtbl.mem t.by_addr addr then
    invalid_arg "Network.add_speaker: duplicate speaker address"
  else begin
    Hashtbl.replace t.speakers (Asn.to_int (Speaker.asn s)) s;
    Hashtbl.replace t.by_addr addr (Asn.to_int (Speaker.asn s));
    Hashtbl.remove t.peer_memo (Asn.to_int (Speaker.asn s))
  end

let speaker t a =
  match Hashtbl.find_opt t.speakers (Asn.to_int a) with
  | Some s -> s
  | None -> raise Not_found

(* One Peer.t per simulated speaker, built on first use: [peer_of] runs
   once per delivered message, and sharing the value also lets the
   receiving speaker's identity-first comparisons hit.  Invalidated
   when a speaker is (re-)registered under the ASN. *)
let peer_of t a =
  let key = Asn.to_int a in
  match Hashtbl.find_opt t.peer_memo key with
  | Some p -> p
  | None ->
    let s = speaker t a in
    let p = Peer.make ~asn:(Speaker.asn s) ~addr:(Speaker.addr s) in
    Hashtbl.replace t.peer_memo key p;
    p

let asn_of_addr t addr =
  Option.map Asn.of_int (Hashtbl.find_opt t.by_addr (Ipv4.to_int addr))

let set_remote_hook t f = t.remote <- f

(* Register an AS simulated by another partition: a shared Peer.t (so
   the local speakers' identity-first comparisons still hit) plus the
   reverse address mapping [dispatch] uses to route egress to the
   shard engine instead of dropping it. *)
let add_remote_peer t a =
  let key = Asn.to_int a in
  if not (Hashtbl.mem t.peer_memo key) then begin
    let addr = speaker_addr a in
    Hashtbl.replace t.peer_memo key (Peer.make ~asn:a ~addr);
    Hashtbl.replace t.remote_addrs (Ipv4.to_int addr) key
  end

(* ASN pairs are packed into a single int ((lo lsl 31) lor hi) so the
   per-message link and MRAI-batch lookups probe int-keyed tables
   instead of allocating and generic-hashing a tuple each time. *)
let pack_pair a b = (a lsl 31) lor b

let lat_key a b =
  let a = Asn.to_int a and b = Asn.to_int b in
  if a < b then pack_pair a b else pack_pair b a

let latency t a b =
  Option.value (Hashtbl.find_opt t.latencies (lat_key a b)) ~default:1.0

let link_up t a b = Hashtbl.mem t.latencies (lat_key a b)

let set_fault_model t f = t.fault <- Some f
let fault_model t = t.fault

let set_graceful_restart t w =
  ( match w with
    | Some w when w <= 0. ->
      invalid_arg "Network.set_graceful_restart: window must be positive"
    | _ -> () );
  t.graceful_window <- w

let set_damping t params =
  Hashtbl.iter (fun _ s -> Speaker.set_damping s params) t.speakers

let set_change_feed t feed =
  Hashtbl.iter
    (fun a s ->
      match feed with
      | None -> Speaker.set_change_hook s None
      | Some f ->
        let asn = Asn.of_int a in
        Speaker.set_change_hook s
          (Some
             (fun ~now prefix ->
               f ~asn ~prefix ~at:now
                 ~fingerprint:(Speaker.loc_fingerprint s prefix))))
    t.speakers


let prefix_of_msg = function
  | Speaker.Announce ia -> ia.Dbgp_core.Ia.prefix
  | Speaker.Withdraw p -> p

(* Encoded size of a message on the wire.  Withdrawals carry just the
   prefix (1 length octet + up to 4 address octets). *)
let msg_bytes m =
  match m with
  | Speaker.Announce ia -> Dbgp_core.Codec.size ia
  | Speaker.Withdraw _ -> 5

let is_withdraw = function
  | Speaker.Announce _ -> false
  | Speaker.Withdraw _ -> true

(* ------------- attribute-bucketed frames (opt-in, MRAI flush) -------------

   With {!set_batching} on, an MRAI flush leaves the wire as multi-prefix
   frames: announces are bucketed by attribute set ({!Dbgp_core.Ia.same_attrs})
   so each bucket ships one attribute block plus an NLRI list, and the
   flush's withdraws ship as one withdraw frame.  Singleton buckets keep
   the single-prefix path — and with batching off (the default) nothing
   here runs, so golden transcripts are untouched. *)

type frame =
  | Frame_routes of Dbgp_core.Ia.t list (* ≥2, pairwise same_attrs *)
  | Frame_withdraws of Prefix.t list    (* ≥2 *)

module Attr_buckets = Hashtbl.Make (struct
  type t = Dbgp_core.Ia.t

  let equal = Dbgp_core.Ia.same_attrs

  (* Prefix excluded: the bucket relation is attrs-only. *)
  let hash (ia : Dbgp_core.Ia.t) =
    let h1 = Hashtbl.hash ia.Dbgp_core.Ia.path_vector
    and h2 = Hashtbl.hash ia.Dbgp_core.Ia.membership
    and h3 = Hashtbl.hash ia.Dbgp_core.Ia.path_descriptors
    and h4 = Hashtbl.hash ia.Dbgp_core.Ia.island_descriptors in
    (((((h1 * 31) + h2) * 31) + h3) * 31) + h4
end)

let frame_prefixes = function
  | Frame_routes ias -> List.map (fun (ia : Dbgp_core.Ia.t) -> ia.Dbgp_core.Ia.prefix) ias
  | Frame_withdraws ps -> ps

let rec dispatch t ~from outbox =
  List.iter
    (fun ((peer : Peer.t), msg) ->
      match Hashtbl.find_opt t.by_addr (Ipv4.to_int peer.Peer.addr) with
      | None -> (
        (* Not simulated here — but possibly simulated by another
           partition.  Cross-partition sends bypass MRAI sender-side
           coalescing (each message ships individually with the MRAI
           interval added to its arrival delay, preserving the
           conservative lookahead the epoch barrier depends on) and see
           no fault model (cross-cut links are fault-free by the
           partitioner's pinning contract).  Receive-side batching at
           the destination still coalesces decision runs. *)
        match
          (t.remote, Hashtbl.find_opt t.remote_addrs (Ipv4.to_int peer.Peer.addr))
        with
        | Some hook, Some dst_asn ->
          let dst = Asn.of_int dst_asn in
          if not (Hashtbl.mem t.latencies (lat_key from dst)) then
            note_lost t ~from ~to_:dst msg
          else begin
            match
              match t.interposer with
              | None -> Some msg
              | Some f -> (
                match f ~from ~to_:dst msg with
                | Some m ->
                  if m != msg then
                    Metrics.incr (Metrics.counter t.obs "net.adversary.tampered");
                  Some m
                | None ->
                  Metrics.incr (Metrics.counter t.obs "net.adversary.dropped");
                  None )
            with
            | None -> ()
            | Some msg ->
              Trace.emit t.trace ~at:(Event_queue.now t.q)
                (Trace.Update_sent
                   { src = Asn.to_int from;
                     dst = dst_asn;
                     prefix = Prefix.to_string (prefix_of_msg msg);
                     bytes = msg_bytes msg;
                     withdraw = is_withdraw msg });
              let at =
                Event_queue.now t.q +. Float.max t.mrai 0.
                +. latency t from dst
              in
              hook ~from ~to_:dst ~at msg
          end
        | _ -> () (* neighbor not simulated anywhere; drop *) )
      | Some dst_asn ->
        let dst = Asn.of_int dst_asn in
        if not (Hashtbl.mem t.latencies (lat_key from dst)) then
          (* Link already down at send time: the message dies here, and
             the sender's Adj-RIB-Out must know (routes that change
             while a session is down are exactly what an incremental
             re-establish has to re-send). *)
          note_lost t ~from ~to_:dst msg
        else begin
          match
            match t.interposer with
            | None -> Some msg
            | Some f -> (
              match f ~from ~to_:dst msg with
              | Some m ->
                if m != msg then
                  Metrics.incr (Metrics.counter t.obs "net.adversary.tampered");
                Some m
              | None ->
                Metrics.incr (Metrics.counter t.obs "net.adversary.dropped");
                None )
          with
          | None -> () (* suppressed by the compromised sender *)
          | Some msg ->
          Trace.emit t.trace ~at:(Event_queue.now t.q)
            (Trace.Update_sent
               { src = Asn.to_int from;
                 dst = dst_asn;
                 prefix = Prefix.to_string (prefix_of_msg msg);
                 bytes = msg_bytes msg;
                 withdraw = is_withdraw msg });
          let jitter, reorder =
            match t.fault with
            | Some f ->
              ( Fault_model.jitter f (Asn.to_int from) dst_asn,
                Fault_model.reorder_delay f ~now:(Event_queue.now t.q)
                  (Asn.to_int from) dst_asn )
            | None -> (0., 0.)
          in
          let delay = latency t from dst +. jitter +. reorder in
          if t.mrai <= 0. then
            Event_queue.schedule t.q ~delay (fun () -> deliver t ~from ~to_:dst msg)
          else begin
            (* MRAI batching: keep only the latest state per prefix and
               flush the whole batch once per interval. *)
            let key = pack_pair (Asn.to_int from) dst_asn in
            let batch, scheduled =
              match Hashtbl.find_opt t.pending key with
              | Some entry -> entry
              | None ->
                let entry = (Hashtbl.create 8, ref false) in
                Hashtbl.replace t.pending key entry;
                entry
            in
            Hashtbl.replace batch (prefix_of_msg msg) msg;
            if not !scheduled then begin
              scheduled := true;
              Event_queue.schedule t.q ~delay:(t.mrai +. delay) (fun () ->
                  scheduled := false;
                  let msgs = Hashtbl.fold (fun _ m acc -> m :: acc) batch [] in
                  Hashtbl.reset batch;
                  Metrics.incr (Metrics.counter t.obs "net.mrai_flushes");
                  Metrics.incr ~by:(List.length msgs)
                    (Metrics.counter t.obs "net.mrai_batched");
                  Trace.emit t.trace ~at:(Event_queue.now t.q)
                    (Trace.Mrai_flush
                       { src = Asn.to_int from;
                         dst = dst_asn;
                         batched = List.length msgs });
                  if t.batching then deliver_batched t ~from ~to_:dst msgs
                  else List.iter (fun m -> deliver t ~from ~to_:dst m) msgs)
            end
          end
        end)
    outbox

and note_lost t ~from ~to_ msg =
  (* Delivery-failure feedback to the sender's Adj-RIB-Out: in this
     simulator the transport knows exactly which messages die, playing
     the role a TCP connection reset plays for a real speaker.  Without
     it the confirmed bits would claim the peer holds state it never
     received and an incremental sync would wrongly skip it. *)
  match Hashtbl.find_opt t.speakers (Asn.to_int from) with
  | Some s -> Speaker.note_undelivered s (peer_of t to_) (prefix_of_msg msg)
  | None -> ()

and deliver t ~from ~to_ msg =
  let now = Event_queue.now t.q in
  if not (Hashtbl.mem t.latencies (lat_key from to_)) then begin
    (* The link went down while the message was in flight. *)
    Metrics.incr t.c_dropped;
    note_lost t ~from ~to_ msg
  end
  else if
    match t.fault with
    | Some f -> Fault_model.drop f ~now (Asn.to_int from) (Asn.to_int to_)
    | None -> false
  then begin
    Metrics.incr t.c_dropped;
    note_lost t ~from ~to_ msg
  end
  else begin
    (* Duplicate delivery: the session layer hands the same message to
       the speaker twice (a retransmit).  The second copy draws its own
       corruption decision, as a real retransmit would. *)
    let dup =
      match t.fault with
      | Some f -> Fault_model.duplicate f ~now (Asn.to_int from) (Asn.to_int to_)
      | None -> false
    in
    deliver_once t ~now ~from ~to_ msg;
    if dup then deliver_once t ~now ~from ~to_ msg
  end

and deliver_once t ~now ~from ~to_ msg =
  let bytes = msg_bytes msg in
  Metrics.incr t.c_messages;
  Metrics.observe t.h_msg_bytes (float_of_int bytes);
  ( match msg with
    | Speaker.Announce _ -> Metrics.incr ~by:bytes t.c_announce_bytes
    | Speaker.Withdraw _ -> Metrics.incr t.c_withdrawals );
  Trace.emit t.trace ~at:now
    (Trace.Update_received
       { src = Asn.to_int from;
         dst = Asn.to_int to_;
         prefix = Prefix.to_string (prefix_of_msg msg);
         bytes;
         withdraw = is_withdraw msg });
  let s = speaker t to_ in
  (* With MRAI batching on, receipt only ingests (marks the prefix dirty
     in the speaker's pipeline); the decision process runs once per dirty
     prefix when the scheduled drain fires. *)
  let batched = t.mrai > 0. in
  let outbox =
    match (t.fault, msg) with
    | Some f, Speaker.Announce ia
      when Fault_model.corrupt f ~now (Asn.to_int from) (Asn.to_int to_) ->
      (* Wire-level corruption: instead of handing over the in-memory
         value, encode it, damage the bytes, and push them through the
         robust decode path — the receiver sees exactly what a damaged
         TCP stream would carry. *)
      let wire = Fault_model.mutate f (Dbgp_core.Codec.encode ia) in
      Metrics.incr (Metrics.counter t.obs "net.corruption.injected");
      let outcome, out =
        Speaker.receive_wire ~now ~defer:batched s ~from:(peer_of t from) wire
      in
      ( match outcome with
        | Speaker.Rx_accepted _ ->
          (* The damage hit bits the codec could absorb. *)
          Metrics.incr (Metrics.counter t.obs "net.corruption.survived")
        | Speaker.Rx_filtered | Speaker.Rx_withdrawn
        | Speaker.Rx_session_error -> () );
      out
    | Some f, Speaker.Withdraw p
      when Fault_model.corrupt f ~now (Asn.to_int from) (Asn.to_int to_) ->
      (* Withdraws cross the wire too: encode the prefix, damage the
         bytes, push them through the robust withdraw decode.  The full
         message surface — not just Announces — faces the fault model. *)
      let wire = Fault_model.mutate f (Dbgp_core.Codec.encode_withdraw p) in
      Metrics.incr (Metrics.counter t.obs "net.corruption.injected");
      let outcome, out =
        Speaker.receive_wire_withdraw ~now ~defer:batched s
          ~from:(peer_of t from) wire
      in
      ( match outcome with
        | Speaker.Rx_withdrawn
          when (match Dbgp_core.Codec.decode_withdraw_robust wire with
               | Ok (p', _) -> Prefix.compare p' p = 0
               | Error _ -> false) ->
          (* The damage hit bits the codec could absorb: the intended
             prefix still came through. *)
          Metrics.incr (Metrics.counter t.obs "net.corruption.survived")
        | _ -> () );
      out
    | _, Speaker.Announce ia when t.wire_delivery ->
      (* Wire-faithful delivery (opt-in, see {!set_wire_delivery}):
         encode the announcement — the sender-side cache makes repeats
         cheap — and hand the receiver the bytes through the robust
         decode path, where the receive-side memo recognises wire
         strings it has already decoded.  Clean bytes round-trip to an
         equal IA, so routing behavior is unchanged; only the
         serialization boundary becomes real. *)
      let wire = Dbgp_core.Codec.encode_cached ia in
      snd (Speaker.receive_wire ~now ~defer:batched s ~from:(peer_of t from) wire)
    | _ ->
      if batched then begin
        Speaker.ingest ~now s ~from:(peer_of t from) msg;
        []
      end
      else Speaker.receive ~now s ~from:(peer_of t from) msg
  in
  drain_reuse t to_ s;
  dispatch t ~from:to_ outbox;
  if batched then schedule_drain t to_ s

(* Bucket one MRAI flush into frames.  Per-prefix latest-state semantics
   are the pending table's (each prefix appears once); order across
   buckets follows first appearance in the flush. *)
and deliver_batched t ~from ~to_ msgs =
  let withdraws, announces =
    List.partition_map
      (function
        | Speaker.Withdraw p -> Either.Left p
        | Speaker.Announce ia -> Either.Right ia)
      msgs
  in
  let buckets =
    let tbl = Attr_buckets.create 16 in
    let order = ref [] in
    List.iter
      (fun (ia : Dbgp_core.Ia.t) ->
        match Attr_buckets.find_opt tbl ia with
        | Some cell -> cell := ia :: !cell
        | None ->
          let cell = ref [ ia ] in
          Attr_buckets.add tbl ia cell;
          order := cell :: !order)
      announces;
    List.rev_map (fun cell -> List.rev !cell) !order
  in
  ( match withdraws with
    | [] -> ()
    | [ p ] -> deliver t ~from ~to_ (Speaker.Withdraw p)
    | ps -> deliver_frame t ~from ~to_ (Frame_withdraws ps) );
  List.iter
    (function
      | [] -> ()
      | [ ia ] -> deliver t ~from ~to_ (Speaker.Announce ia)
      | ias -> deliver_frame t ~from ~to_ (Frame_routes ias))
    buckets

(* Frame counterpart of {!deliver}: same loss/drop/duplicate decisions,
   scoped to the whole frame (one wire message). *)
and deliver_frame t ~from ~to_ frame =
  let now = Event_queue.now t.q in
  let lose () =
    Metrics.incr t.c_dropped;
    match Hashtbl.find_opt t.speakers (Asn.to_int from) with
    | Some s ->
      let peer = peer_of t to_ in
      List.iter (Speaker.note_undelivered s peer) (frame_prefixes frame)
    | None -> ()
  in
  if not (Hashtbl.mem t.latencies (lat_key from to_)) then lose ()
  else if
    match t.fault with
    | Some f -> Fault_model.drop f ~now (Asn.to_int from) (Asn.to_int to_)
    | None -> false
  then lose ()
  else begin
    let dup =
      match t.fault with
      | Some f ->
        Fault_model.duplicate f ~now (Asn.to_int from) (Asn.to_int to_)
      | None -> false
    in
    deliver_frame_once t ~now ~from ~to_ frame;
    if dup then deliver_frame_once t ~now ~from ~to_ frame
  end

and deliver_frame_once t ~now ~from ~to_ frame =
  let clean, head_prefix, n =
    match frame with
    | Frame_routes ias ->
      ( Dbgp_core.Codec.encode_batch ias,
        (List.hd ias).Dbgp_core.Ia.prefix,
        List.length ias )
    | Frame_withdraws ps ->
      (Dbgp_core.Codec.encode_withdraw_batch ps, List.hd ps, List.length ps)
  in
  (* Frames always cross the wire as bytes, so the fault model corrupts
     them directly — a damaged attribute block takes the whole batch to
     treat-as-withdraw, a damaged NLRI entry loses only itself. *)
  let corrupted =
    match t.fault with
    | Some f when Fault_model.corrupt f ~now (Asn.to_int from) (Asn.to_int to_)
      ->
      Metrics.incr (Metrics.counter t.obs "net.corruption.injected");
      Some (Fault_model.mutate f clean)
    | _ -> None
  in
  let wire = Option.value corrupted ~default:clean in
  let bytes = String.length wire in
  Metrics.incr t.c_messages;
  Metrics.observe t.h_msg_bytes (float_of_int bytes);
  ( match frame with
    | Frame_routes _ -> Metrics.incr ~by:bytes t.c_announce_bytes
    | Frame_withdraws ps -> Metrics.incr ~by:(List.length ps) t.c_withdrawals );
  Metrics.incr (Metrics.counter t.obs "net.batch.frames");
  Metrics.incr ~by:(n - 1) (Metrics.counter t.obs "net.batch.saved");
  Metrics.observe
    (Metrics.histogram t.obs "net.batch.prefixes_per_frame")
    (float_of_int n);
  Trace.emit t.trace ~at:now
    (Trace.Update_received
       { src = Asn.to_int from;
         dst = Asn.to_int to_;
         prefix = Prefix.to_string head_prefix;
         bytes;
         withdraw = (match frame with Frame_withdraws _ -> true | _ -> false)
       });
  let s = speaker t to_ in
  let peer = peer_of t from in
  let batched = t.mrai > 0. in
  let outcome, outbox =
    match frame with
    | Frame_routes _ ->
      Speaker.receive_wire_batch ~now ~defer:batched s ~from:peer wire
    | Frame_withdraws _ ->
      Speaker.receive_wire_withdraw_batch ~now ~defer:batched s ~from:peer
        wire
  in
  ( match (corrupted, frame, outcome) with
    | Some _, Frame_routes _, Speaker.Rx_accepted _ ->
      (* The damage hit bits the codec could absorb. *)
      Metrics.incr (Metrics.counter t.obs "net.corruption.survived")
    | Some _, Frame_withdraws ps, Speaker.Rx_withdrawn
      when (match Dbgp_core.Codec.decode_withdraw_batch_robust wire with
           | Ok (ps', _) ->
             List.compare_lengths ps' ps = 0
             && List.for_all2 (fun a b -> Prefix.compare a b = 0) ps' ps
           | Error _ -> false) ->
      Metrics.incr (Metrics.counter t.obs "net.corruption.survived")
    | _ -> () );
  drain_reuse t to_ s;
  dispatch t ~from:to_ outbox;
  if batched then schedule_drain t to_ s

(* One pending drain per speaker: the first arrival in a batch schedules
   it, everything landing within the MRAI window coalesces into the same
   flush. *)
and schedule_drain t asn s =
  if Speaker.pending s > 0 then begin
    let flag =
      match Hashtbl.find_opt t.drain_scheduled (Asn.to_int asn) with
      | Some f -> f
      | None ->
        let f = ref false in
        Hashtbl.replace t.drain_scheduled (Asn.to_int asn) f;
        f
    in
    if not !flag then begin
      flag := true;
      Event_queue.schedule t.q ~delay:t.mrai (fun () ->
          flag := false;
          let outbox = Speaker.flush ~now:(Event_queue.now t.q) s in
          Metrics.incr (Metrics.counter t.obs "net.pipeline_drains");
          drain_reuse t asn s;
          dispatch t ~from:asn outbox;
          (* A drain can dirty further prefixes (e.g. a decision change
             marked by a concurrent ingest); keep draining until clean. *)
          schedule_drain t asn s)
    end
  end

(* Damping reuse obligations: when a speaker suppressed a route it hands
   us (prefix, time) pairs; re-run its decision process at each time so
   the route returns to service once its penalty has decayed. *)
and drain_reuse t asn s =
  List.iter
    (fun (prefix, at) ->
      let time = Float.max at (Event_queue.now t.q) in
      Event_queue.schedule_at t.q ~time (fun () ->
          let outbox =
            Speaker.reevaluate ~now:(Event_queue.now t.q) s prefix
          in
          drain_reuse t asn s;
          dispatch t ~from:asn outbox))
    (Speaker.take_reuse_events s)

let inverse : Dbgp_bgp.Policy.relationship -> Dbgp_bgp.Policy.relationship =
  function
  | Dbgp_bgp.Policy.To_customer -> Dbgp_bgp.Policy.To_provider
  | Dbgp_bgp.Policy.To_provider -> Dbgp_bgp.Policy.To_customer
  | Dbgp_bgp.Policy.To_peer -> Dbgp_bgp.Policy.To_peer

(* Bring a (possibly recovered) link up from its stored configuration:
   set the latency and (re-)install both neighbor entries. *)
let connect_link t cfg =
  let a = cfg.c_a and b = cfg.c_b in
  let sa = speaker t a and sb = speaker t b in
  Hashtbl.replace t.latencies (lat_key a b) cfg.c_latency;
  let same_island =
    match (Speaker.island_of sa, Speaker.island_of sb) with
    | Some ia, Some ib -> Island_id.equal ia ib
    | _ -> false
  in
  Speaker.add_neighbor sa
    (Speaker.neighbor ~import:cfg.c_a_import ~export:cfg.c_a_export
       ~dbgp_capable:cfg.c_b_dbgp ~same_island ~relationship:cfg.c_b_is
       (peer_of t b));
  Speaker.add_neighbor sb
    (Speaker.neighbor ~import:cfg.c_b_import ~export:cfg.c_b_export
       ~dbgp_capable:cfg.c_a_dbgp ~same_island
       ~relationship:(inverse cfg.c_b_is) (peer_of t a))

let link t ?(latency = 1.0) ?(a_import = Dbgp_core.Filters.accept)
    ?(a_export = Dbgp_core.Filters.accept)
    ?(b_import = Dbgp_core.Filters.accept)
    ?(b_export = Dbgp_core.Filters.accept) ?(a_dbgp = true) ?(b_dbgp = true)
    ~a ~b ~b_is () =
  if Asn.equal a b then invalid_arg "Network.link: cannot link an AS to itself";
  let cfg =
    { c_latency = latency;
      c_a = a;
      c_b = b;
      c_a_import = a_import;
      c_a_export = a_export;
      c_b_import = b_import;
      c_b_export = b_export;
      c_a_dbgp = a_dbgp;
      c_b_dbgp = b_dbgp;
      c_b_is = b_is }
  in
  Hashtbl.replace t.links (lat_key a b) cfg;
  connect_link t cfg

(* MRAI batches survive across link events as closures over the batch
   table; emptying the table makes an already-scheduled flush a no-op, so
   a failed link never delivers stale pre-failure state. *)
let clear_pending t a b =
  let clear src dst =
    match Hashtbl.find_opt t.pending (pack_pair (Asn.to_int src) (Asn.to_int dst)) with
    | Some (batch, _scheduled) ->
      (* Discarded batch contents were never delivered: tell the sender,
         so its Adj-RIB-Out confirmed bits stay truthful for the next
         incremental sync. *)
      ( match Hashtbl.find_opt t.speakers (Asn.to_int src) with
        | Some s ->
          Hashtbl.iter
            (fun prefix _ -> Speaker.note_undelivered s (peer_of t dst) prefix)
            batch
        | None -> () );
      Hashtbl.reset batch;
      Hashtbl.remove t.pending (pack_pair (Asn.to_int src) (Asn.to_int dst))
    | None -> ()
  in
  clear a b;
  clear b a

(* ------------------- cross-partition half links ------------------- *)

(* The local side of a cut edge: install latency, the remote peer and
   the local speaker's neighbor entry.  The remote region installs the
   mirror half from its own [half_cfg]. *)
let connect_half t cfg =
  let s = speaker t cfg.hc_local in
  add_remote_peer t cfg.hc_remote;
  Hashtbl.replace t.latencies (lat_key cfg.hc_local cfg.hc_remote) cfg.hc_latency;
  Speaker.add_neighbor s
    (Speaker.neighbor ~import:cfg.hc_import ~export:cfg.hc_export
       ~dbgp_capable:cfg.hc_remote_dbgp ~same_island:cfg.hc_same_island
       ~relationship:cfg.hc_remote_is (peer_of t cfg.hc_remote))

let half_link t ?(latency = 1.0) ?(import = Dbgp_core.Filters.accept)
    ?(export = Dbgp_core.Filters.accept) ?(remote_dbgp = true)
    ?(same_island = false) ~local ~remote ~remote_is () =
  if Asn.equal local remote then
    invalid_arg "Network.half_link: cannot link an AS to itself";
  let cfg =
    { hc_latency = latency;
      hc_local = local;
      hc_remote = remote;
      hc_import = import;
      hc_export = export;
      hc_remote_dbgp = remote_dbgp;
      hc_remote_is = remote_is;
      hc_same_island = same_island }
  in
  Hashtbl.replace t.half_links (lat_key local remote) cfg;
  connect_half t cfg

(* Session loss on a cut edge, local side only: the shard engine fires
   the same event at the same simulated time in the remote region, so
   both halves act in lockstep without any cross-domain call.  Cross
   links never use graceful restart (the restart window would need
   cross-region timers); failure flushes immediately. *)
let fail_half t local remote =
  Hashtbl.remove t.latencies (lat_key local remote);
  clear_pending t local remote;
  let s = speaker t local in
  let now = Event_queue.now t.q in
  let out = Speaker.peer_down ~now s (peer_of t remote) in
  Event_queue.schedule t.q ~delay:0. (fun () -> dispatch t ~from:local out)

let recover_half t local remote =
  match Hashtbl.find_opt t.half_links (lat_key local remote) with
  | None -> invalid_arg "Network.recover_half: half link was never configured"
  | Some cfg ->
    if not (Hashtbl.mem t.latencies (lat_key local remote)) then begin
      connect_half t cfg;
      (* Cross-partition recovery resynchronizes with a full route
         refresh (incremental sync would need the peer's restart
         window, which lives in another region). *)
      Event_queue.schedule t.q ~delay:0. (fun () ->
          dispatch t ~from:local
            (Speaker.refresh_peer (speaker t local) (peer_of t remote)))
    end

(* Ingest one cross-partition arrival, drained from a mailbox at an
   epoch boundary and scheduled at its precomputed arrival time.
   Returns the prefix to NACK back to the sending region when the
   message dies on a link that went down while it crossed the cut —
   the sender's Adj-RIB-Out confirmed bits must learn about the loss,
   and the only route back is the mailbox in the other direction.
   Cross links see no fault model (the partitioner pins faulty links
   intra-region), so no PRNG draw happens here. *)
let deliver_remote t ~from ~to_ msg =
  let now = Event_queue.now t.q in
  if not (Hashtbl.mem t.latencies (lat_key from to_)) then begin
    Metrics.incr t.c_dropped;
    Some (prefix_of_msg msg)
  end
  else begin
    deliver_once t ~now ~from ~to_ msg;
    None
  end

(* Apply a NACK from the region that dropped our message:
   [Speaker.note_undelivered] is time-independent, so it is sound to
   apply at mailbox-drain time, one epoch after the drop. *)
let apply_nack t ~local ~remote prefix =
  match Hashtbl.find_opt t.speakers (Asn.to_int local) with
  | Some s -> Speaker.note_undelivered s (peer_of t remote) prefix
  | None -> ()

let bump_restart_gen t key =
  let g = 1 + Option.value (Hashtbl.find_opt t.restart_gen key) ~default:0 in
  Hashtbl.replace t.restart_gen key g;
  g

let fail_link t a b =
  Hashtbl.remove t.latencies (lat_key a b);
  clear_pending t a b;
  let sa = speaker t a and sb = speaker t b in
  match t.graceful_window with
  | Some window ->
    (* Graceful restart: both sides retain the peer's routes as stale and
       keep forwarding; a timer closes the restart window and flushes
       whatever the (possibly returned) peer did not refresh. *)
    let now = Event_queue.now t.q in
    Speaker.peer_down_graceful ~now sa (peer_of t b);
    Speaker.peer_down_graceful ~now sb (peer_of t a);
    let gen = bump_restart_gen t (lat_key a b) in
    Hashtbl.replace t.restart_deadline (lat_key a b) (now +. window);
    Event_queue.schedule t.q ~delay:window (fun () ->
        if Hashtbl.find_opt t.restart_gen (lat_key a b) = Some gen then begin
          Hashtbl.remove t.restart_deadline (lat_key a b);
          let now = Event_queue.now t.q in
          let out_a = Speaker.flush_stale ~now sa (peer_of t b) in
          let out_b = Speaker.flush_stale ~now sb (peer_of t a) in
          drain_reuse t a sa;
          drain_reuse t b sb;
          dispatch t ~from:a out_a;
          dispatch t ~from:b out_b
        end)
  | None ->
    let now = Event_queue.now t.q in
    let out_a = Speaker.peer_down ~now sa (peer_of t b) in
    let out_b = Speaker.peer_down ~now sb (peer_of t a) in
    Event_queue.schedule t.q ~delay:0. (fun () -> dispatch t ~from:a out_a);
    Event_queue.schedule t.q ~delay:0. (fun () -> dispatch t ~from:b out_b)

(* Route-refresh both directions of a link (computed at execution time so
   it reflects the speakers' state when the event fires). *)
let refresh_link t a b =
  let sa = speaker t a and sb = speaker t b in
  Event_queue.schedule t.q ~delay:0. (fun () ->
      dispatch t ~from:a (Speaker.refresh_peer sa (peer_of t b)));
  Event_queue.schedule t.q ~delay:0. (fun () ->
      dispatch t ~from:b (Speaker.refresh_peer sb (peer_of t a)))

let set_sync_chunk t n =
  if n <= 0 then invalid_arg "Network.set_sync_chunk: chunk must be positive"
  else t.sync_chunk <- n

(* One direction of an incremental table transfer: chunked,
   self-rescheduling events walking the sender's Loc-RIB cursor.  Every
   step (and the trailing End-of-RIB) is guarded by the link's restart
   generation, so a new failure mid-transfer aborts it cleanly. *)
let sync_dir t ~gen src dst =
  let key = lat_key src dst in
  let live () =
    Hashtbl.find_opt t.restart_gen key = Some gen && Hashtbl.mem t.latencies key
  in
  let rec step cursor =
    Event_queue.schedule t.q ~delay:0. (fun () ->
        if live () then begin
          let s = speaker t src in
          let out, next =
            Speaker.sync_peer ~limit:t.sync_chunk ?cursor s (peer_of t dst)
          in
          dispatch t ~from:src out;
          match next with
          | Some _ as next -> step next
          | None ->
            (* End-of-RIB: once everything in flight has had time to
               land (link latency plus an MRAI flush), the receiver
               retains whatever is still stale — exactly the routes the
               transfer skipped as already delivered.  {!Speaker.end_of_rib}
               never drops routes, so a late (jittered) straggler is
               harmless. *)
            Event_queue.schedule t.q ~delay:(latency t src dst +. t.mrai)
              (fun () ->
                if live () then
                  ignore
                    (Speaker.end_of_rib ~now:(Event_queue.now t.q)
                       (speaker t dst) (peer_of t src)))
        end)
  in
  step None

let sync_link t a b =
  let gen =
    Option.value (Hashtbl.find_opt t.restart_gen (lat_key a b)) ~default:0
  in
  sync_dir t ~gen a b;
  sync_dir t ~gen b a

let recover_link t a b =
  match Hashtbl.find_opt t.links (lat_key a b) with
  | None -> invalid_arg "Network.recover_link: link was never configured"
  | Some cfg ->
    if not (Hashtbl.mem t.latencies (lat_key a b)) then begin
      connect_link t cfg;
      (* Re-establishing inside an open restart window stops the pending
         stale flush (RFC 4724's restart-timer stop on session
         re-establishment) and streams an incremental sync — both sides
         kept state, so only the delta travels.  Outside a window the
         peers' views may have diverged arbitrarily (stale state already
         flushed, or no graceful mode at all): fall back to a full
         route refresh. *)
      let within_window =
        match Hashtbl.find_opt t.restart_deadline (lat_key a b) with
        | Some deadline -> Event_queue.now t.q < deadline
        | None -> false
      in
      ignore (bump_restart_gen t (lat_key a b));
      Hashtbl.remove t.restart_deadline (lat_key a b);
      if within_window then sync_link t a b else refresh_link t a b
    end

(* Permanent administrative teardown, as opposed to [fail_link]'s
   session loss: the configuration is forgotten (no [recover_link]), and
   both speakers run {!Speaker.remove_neighbor} — erasing Adj-RIB-In,
   Adj-RIB-Out, stale marks, group membership and flap-damping state for
   the peer. *)
let unlink t a b =
  match Hashtbl.find_opt t.links (lat_key a b) with
  | None -> invalid_arg "Network.unlink: link was never configured"
  | Some _ ->
    Hashtbl.remove t.latencies (lat_key a b);
    Hashtbl.remove t.links (lat_key a b);
    clear_pending t a b;
    ignore (bump_restart_gen t (lat_key a b));
    let sa = speaker t a and sb = speaker t b in
    let now = Event_queue.now t.q in
    let out_a = Speaker.remove_neighbor ~now sa (peer_of t b) in
    let out_b = Speaker.remove_neighbor ~now sb (peer_of t a) in
    Event_queue.schedule t.q ~delay:0. (fun () -> dispatch t ~from:a out_a);
    Event_queue.schedule t.q ~delay:0. (fun () -> dispatch t ~from:b out_b)

let refresh_all t =
  Hashtbl.iter
    (fun key _ ->
      refresh_link t (Asn.of_int (key lsr 31)) (Asn.of_int (key land 0x7FFF_FFFF)))
    t.latencies

let schedule_flap t ~down_at ~up_at a b =
  if up_at <= down_at then
    invalid_arg "Network.schedule_flap: up_at must follow down_at";
  Event_queue.schedule_at t.q ~time:down_at (fun () -> fail_link t a b);
  Event_queue.schedule_at t.q ~time:up_at (fun () -> recover_link t a b)

let originate t a ia =
  Event_queue.schedule t.q ~delay:0. (fun () ->
      let s = speaker t a in
      let outbox = Speaker.originate ~now:(Event_queue.now t.q) s ia in
      dispatch t ~from:a outbox)

let inject t ~from ~to_ msg =
  Event_queue.schedule t.q ~delay:0. (fun () ->
      Metrics.incr t.c_messages;
      let s = speaker t to_ in
      let outbox =
        Speaker.receive ~now:(Event_queue.now t.q) s ~from msg
      in
      drain_reuse t (Speaker.asn s) s;
      dispatch t ~from:(Speaker.asn s) outbox)

let reevaluate t a prefix =
  Event_queue.schedule t.q ~delay:0. (fun () ->
      let s = speaker t a in
      let outbox = Speaker.reevaluate ~now:(Event_queue.now t.q) s prefix in
      drain_reuse t a s;
      dispatch t ~from:a outbox)

let withdraw_origin t a prefix =
  Event_queue.schedule t.q ~delay:0. (fun () ->
      let s = speaker t a in
      let outbox = Speaker.withdraw_origin ~now:(Event_queue.now t.q) s prefix in
      dispatch t ~from:a outbox)

let readvertise_all t a =
  Event_queue.schedule t.q ~delay:0. (fun () ->
      let s = speaker t a in
      let outbox = Speaker.readvertise_all ~now:(Event_queue.now t.q) s in
      dispatch t ~from:a outbox)

let set_interposer t f = t.interposer <- f

let set_mrai t v =
  if v < 0. then invalid_arg "Network.set_mrai: negative interval" else t.mrai <- v

let set_wire_delivery t v = t.wire_delivery <- v
let set_batching t v = t.batching <- v
let batching t = t.batching

(* Stats as of now; [events]/[exhausted] are the caller's because only
   it knows how many queue events this run accounted for (the sharded
   engine drives the queue itself across many epochs). *)
let stats_now t ~events ~exhausted =
  { messages = Metrics.count t.c_messages;
    announce_bytes = Metrics.count t.c_announce_bytes;
    withdrawals = Metrics.count t.c_withdrawals;
    dropped =
      Metrics.count t.c_dropped
      + (match t.fault with Some f -> Fault_model.dropped f | None -> 0);
    events;
    converged_at = Event_queue.now t.q;
    exhausted }

let run ?max_events t =
  let events = Event_queue.run ?max_events t.q in
  stats_now t ~events ~exhausted:(Event_queue.budget_exhausted t.q)

let asns t =
  Hashtbl.fold (fun a _ acc -> Asn.of_int a :: acc) t.speakers []
  |> List.sort Asn.compare

let stale_total t =
  Hashtbl.fold (fun _ s acc -> acc + Speaker.stale_count s) t.speakers 0

(* ------------------------- observability ------------------------- *)

(* Sum one named counter across every speaker's registry. *)
let counter_total t name =
  Hashtbl.fold
    (fun _ s acc ->
      match Metrics.find_counter (Speaker.metrics s) name with
      | Some c -> acc + Metrics.count c
      | None -> acc)
    t.speakers 0

(* Per-speaker convergence time: the simulation time of the last best-path
   change, for every speaker whose decision process changed state at least
   once.  The distribution of these is the network's convergence profile. *)
let convergence_times t =
  Hashtbl.fold
    (fun _ s acc ->
      let m = Speaker.metrics s in
      let changed =
        match Metrics.find_counter m "decision.changes" with
        | Some c -> Metrics.count c > 0
        | None -> false
      in
      if not changed then acc
      else
        match Metrics.find_gauge m "decision.last_change_at" with
        | Some g -> Metrics.value g :: acc
        | None -> acc)
    t.speakers []
  |> List.sort compare

let speaker_counter_names =
  [ "decision.runs"; "decision.changes"; "updates.received";
    "updates.duplicate"; "withdrawals.received"; "import.rejected";
    "damping.suppressed"; "damping.reused"; "restart.stale_marked";
    "restart.flushed"; "restart.retained"; "sync.sent"; "sync.skipped";
    "sync.withdrawn"; "errors.discard_attribute";
    "errors.treat_as_withdraw"; "errors.session_reset"; "errors.internal";
    "pipeline.dirty_marks"; "pipeline.runs_saved"; "pipeline.drains";
    "pipeline.export_cache.hits"; "pipeline.export_cache.misses" ]

let snapshot ?(recent_events = 0) t =
  let speaker_totals =
    List.filter_map
      (fun name ->
        match counter_total t name with
        | 0 -> None
        | v -> Some (name, Snapshot.Int v))
      speaker_counter_names
  in
  let fields =
    [ ("at", Snapshot.Float (Event_queue.now t.q));
      ("network", Snapshot.of_metrics t.obs);
      ( "speakers",
        Snapshot.Obj
          (("count", Snapshot.Int (Hashtbl.length t.speakers))
           :: speaker_totals) );
      ( "convergence",
        Snapshot.Obj (Snapshot.percentile_fields (convergence_times t)) ) ]
  in
  let fields =
    if recent_events > 0 then
      fields @ [ ("trace", Snapshot.of_trace ~last:recent_events t.trace) ]
    else fields
  in
  Snapshot.Obj fields
