(** The network simulator: our MiniNeXT substitute.

    Hosts one {!Dbgp_core.Speaker} per AS, delivers control-plane
    messages over configured links with latency through the shared
    {!Event_queue}, and accounts message counts and bytes.  The
    Figure-8 deployment experiments, the motivating-scenario tests and
    the rich-world reproduction all execute on this harness.

    Neighbor policy lives on the speakers (configure with
    {!Dbgp_core.Speaker.add_neighbor} or the {!link} convenience); the
    network only knows connectivity and latency.

    Fault injection: attach a {!Fault_model} for probabilistic message
    loss and latency jitter, schedule link flaps with {!schedule_flap},
    and opt into graceful restart ({!set_graceful_restart}) and
    route-flap damping ({!set_damping}) to study resilience. *)

type t

type stats = {
  messages : int;        (** control messages delivered *)
  announce_bytes : int;  (** encoded IA bytes carried *)
  withdrawals : int;
  dropped : int;         (** messages lost to faults or cut links *)
  events : int;          (** total simulator events executed *)
  converged_at : float;  (** simulated time the network went quiet *)
  exhausted : bool;
      (** the run stopped because it hit its [max_events] budget with
          work still queued — [converged_at] is a truncation point, not
          a quiescent state *)
}

val create : unit -> t
val lookup : t -> Lookup_service.t
val queue : t -> Event_queue.t

val speaker_addr : Dbgp_types.Asn.t -> Dbgp_types.Ipv4.t
(** Deterministic address for an AS's speaker: 10.0.0.0/8 carved by AS
    number. *)

val add_speaker : t -> Dbgp_core.Speaker.t -> unit
(** @raise Invalid_argument if a speaker with the same address exists. *)

val speaker : t -> Dbgp_types.Asn.t -> Dbgp_core.Speaker.t
(** @raise Not_found if the AS is not in the network. *)

val peer_of : t -> Dbgp_types.Asn.t -> Dbgp_core.Peer.t

val asn_of_addr : t -> Dbgp_types.Ipv4.t -> Dbgp_types.Asn.t option
(** Reverse lookup from a speaker address (as found in FIB next hops). *)

val link :
  t ->
  ?latency:float ->
  ?a_import:Dbgp_core.Filters.t ->
  ?a_export:Dbgp_core.Filters.t ->
  ?b_import:Dbgp_core.Filters.t ->
  ?b_export:Dbgp_core.Filters.t ->
  ?a_dbgp:bool ->
  ?b_dbgp:bool ->
  a:Dbgp_types.Asn.t ->
  b:Dbgp_types.Asn.t ->
  b_is:Dbgp_bgp.Policy.relationship ->
  unit ->
  unit
(** Connects two registered speakers. [b_is] is the relationship of [b]
    seen from [a] ([To_customer] = b is a's customer); the inverse side
    is derived.  [same_island] is inferred by comparing the speakers'
    configured islands.  The configuration is retained so the link can
    be restored by {!recover_link} after a failure.
    @raise Invalid_argument on a self-loop. *)

val link_up : t -> Dbgp_types.Asn.t -> Dbgp_types.Asn.t -> bool

val fail_link : t -> Dbgp_types.Asn.t -> Dbgp_types.Asn.t -> unit
(** Takes the link down.  Pending MRAI batches for the pair are discarded
    and in-flight messages are dropped on arrival.  Without graceful
    restart both speakers drop the session's routes and re-converge
    immediately; with it (see {!set_graceful_restart}) routes are
    retained as stale for the restart window and only the leftovers are
    flushed when it closes. *)

val recover_link : t -> Dbgp_types.Asn.t -> Dbgp_types.Asn.t -> unit
(** Brings a failed link back with its original configuration.  When the
    session re-establishes inside a still-open graceful-restart window,
    the pending stale flush is cancelled (RFC 4724's restart-timer stop)
    and both directions stream an incremental table transfer
    ({!sync_link}) — only routes whose advertised state differs from the
    peer's confirmed Adj-RIB-Out record travel.  Outside a window (no
    graceful mode, or the window expired and the stale routes were
    already flushed) it falls back to a full route refresh.  No-op if
    the link is already up.
    @raise Invalid_argument if the pair was never linked. *)

val sync_link : t -> Dbgp_types.Asn.t -> Dbgp_types.Asn.t -> unit
(** Schedules an incremental/streaming table transfer in both directions
    of an up link: chunked cursor walks over each sender's Loc-RIB
    (see {!set_sync_chunk}) batched through the normal MRAI/dispatch
    path, sending only routes whose advertised state differs from the
    confirmed Adj-RIB-Out record, followed by an End-of-RIB that clears
    the receiver's remaining stale marks without dropping routes.  A
    link failure mid-transfer aborts the remaining chunks. *)

val set_sync_chunk : t -> int -> unit
(** Loc-RIB routes examined per streaming-transfer event (default 512) —
    bounds per-event work so a million-prefix sync interleaves with
    normal traffic.  @raise Invalid_argument on a non-positive chunk. *)

val unlink : t -> Dbgp_types.Asn.t -> Dbgp_types.Asn.t -> unit
(** Permanent administrative teardown, as opposed to {!fail_link}'s
    session loss: the stored configuration is forgotten (the link cannot
    be {!recover_link}ed) and both speakers run
    {!Dbgp_core.Speaker.remove_neighbor}, leaving no Adj-RIB-In routes,
    Adj-RIB-Out state, stale marks, group membership or flap-damping
    memory for the peer.
    @raise Invalid_argument if the pair was never linked. *)

val schedule_flap :
  t -> down_at:float -> up_at:float ->
  Dbgp_types.Asn.t -> Dbgp_types.Asn.t -> unit
(** Schedules a {!fail_link} at [down_at] and the matching
    {!recover_link} at [up_at] (absolute simulation times).
    @raise Invalid_argument unless [down_at < up_at]. *)

val refresh_all : t -> unit
(** Schedules a route refresh in both directions of every up link —
    a recovery sweep after a lossy phase. *)

val set_fault_model : t -> Fault_model.t -> unit
(** Attach a fault model; its loss/jitter/corruption/duplicate/reorder
    decisions apply to every subsequently delivered message.  A corrupted
    announcement is encoded, bit-damaged by the model, and fed through
    {!Dbgp_core.Speaker.receive_wire} (the RFC 7606 path) instead of
    being delivered as an in-memory value; a duplicated message is handed
    to the receiving speaker twice; a reordered one picks up extra
    delivery delay. *)

val fault_model : t -> Fault_model.t option

val set_graceful_restart : t -> float option -> unit
(** Set the graceful-restart window (RFC 4724 style) used by
    {!fail_link}; [None] (the default) restores immediate flushing.
    @raise Invalid_argument on a non-positive window. *)

val set_damping : t -> Dbgp_bgp.Flap_damping.params option -> unit
(** Enable route-flap damping (RFC 2439) on every registered speaker.
    Reuse timers are serviced automatically through the event queue. *)

val set_change_feed :
  t ->
  (asn:Dbgp_types.Asn.t ->
  prefix:Dbgp_types.Prefix.t ->
  at:float ->
  fingerprint:int ->
  unit)
  option ->
  unit
(** Subscribe to every Loc-RIB change across the network: the callback
    fires (synchronously, from inside the deciding speaker's [process])
    each time any speaker's best route for a prefix changes, carrying the
    simulator timestamp and the speaker's new
    {!Dbgp_core.Speaker.loc_fingerprint} for that prefix.  The
    oscillation detector ({!Dbgp_eval.Stability}) is built on this feed.
    Only speakers registered at call time are wired; [None] unsubscribes.
    *)

val reevaluate : t -> Dbgp_types.Asn.t -> Dbgp_types.Prefix.t -> unit
(** Schedule a decision-process re-run for one prefix at one AS (delay
    0), redistributing any resulting updates.  Used by out-of-band
    control loops — e.g. the Wiser load-feedback gadget re-advertising
    after a cost change that no BGP message carried. *)

val set_mrai : t -> float -> unit
(** Minimum route-advertisement interval: with a positive MRAI, messages
    to each neighbor are batched per prefix and only the latest state is
    delivered every interval — BGP's standard churn dampener, and the
    "flexibility in choosing the rate at which to disseminate
    advertisements" Section 3.5 leans on.  Default 0 (immediate).

    A positive MRAI also batches on the receive side: arriving updates
    are only ingested into the speaker's dirty-prefix pipeline, and one
    drain per speaker per interval runs the decision process once per
    dirty prefix — however many updates arrived in between (the saving is
    visible as the speakers' [pipeline.runs_saved] counter).
    @raise Invalid_argument on negative values. *)

val set_wire_delivery : t -> bool -> unit
(** When enabled, clean announcements are delivered as encoded bytes
    through {!Dbgp_core.Speaker.receive_wire} instead of as in-memory
    values: the sender pays {!Dbgp_core.Codec.encode} (amortised by the
    encode cache) and the receiver pays {!Dbgp_core.Codec.decode_robust}
    (amortised by the decode memo).  Clean bytes round-trip to an equal
    IA, so routing outcomes are unchanged — this mode exists to make the
    serialization boundary real for wire-path benchmarks
    ({!Dbgp_eval.Perf_bench}).  Default off. *)

val set_batching : t -> bool -> unit
(** Attribute-bucketed frame delivery (default off).  With batching on
    and a positive MRAI, each MRAI flush partitions its messages into
    attribute buckets ({!Dbgp_core.Ia.same_attrs}): every bucket of two
    or more announces leaves as one {!Dbgp_core.Codec.encode_batch}
    frame — one attribute block plus an NLRI prefix list — and the
    flush's withdraws (two or more) leave as one withdraw frame.
    Frames always cross the wire as bytes through the robust batch
    decode, so the fault model corrupts real frames: a damaged
    attribute block takes the whole batch to treat-as-withdraw, a
    damaged NLRI entry is salvaged around.  Singleton buckets keep the
    single-prefix path, and with batching off nothing changes — golden
    transcripts are byte-identical.  Message savings are visible as
    [net.batch.frames] / [net.batch.saved] and the
    [net.batch.prefixes_per_frame] histogram.  No effect when MRAI is
    0 (there is no flush to bucket). *)

val batching : t -> bool
(** Whether attribute-bucketed frame delivery is enabled. *)

val originate : t -> Dbgp_types.Asn.t -> Dbgp_core.Ia.t -> unit
(** Locally originate a route at the AS and schedule its announcements. *)

val withdraw_origin : t -> Dbgp_types.Asn.t -> Dbgp_types.Prefix.t -> unit
(** Schedule {!Dbgp_core.Speaker.withdraw_origin} at the AS (delay 0),
    dispatching the resulting withdrawals — how a hijack is called off. *)

val readvertise_all : t -> Dbgp_types.Asn.t -> unit
(** Schedule {!Dbgp_core.Speaker.readvertise_all} at the AS (delay 0):
    re-derives every advertisement under the speaker's current export
    rule.  Announces what a freshly-leaking AS now exports, and withdraws
    the leaks once the rule is restored. *)

val set_interposer :
  t ->
  (from:Dbgp_types.Asn.t -> to_:Dbgp_types.Asn.t -> Dbgp_core.Speaker.msg ->
   Dbgp_core.Speaker.msg option) option ->
  unit
(** Install (or clear, with [None]) an adversarial egress interposition
    hook: every message is passed through it at send time, before MRAI
    batching and the wire.  Returning a different message models a
    compromised AS tampering with pass-through data it forwards (counted
    as [net.adversary.tampered]); returning [None] silently suppresses
    the message ([net.adversary.dropped]).  The hook sees all traffic —
    implementations gate on [from] to compromise specific ASes. *)

val inject : t -> from:Dbgp_core.Peer.t -> to_:Dbgp_types.Asn.t ->
  Dbgp_core.Speaker.msg -> unit
(** Deliver an arbitrary message as if [from] had sent it (attack and
    fault-injection tests). *)

val run : ?max_events:int -> t -> stats
(** Run to quiescence. *)

val stats_now : t -> events:int -> exhausted:bool -> stats
(** Current accounting without running anything — for callers (the
    sharded engine) that drive the event queue themselves and track
    event counts and budget exhaustion externally. *)

(** {1 Cross-partition execution (sharded runs)}

    A {!Dbgp_eval}-level shard engine splits one topology across
    several [Network.t] instances, one per region, each owned by one
    OCaml domain.  A cut peering edge becomes two {e half links}: each
    side installs its local speaker's neighbor entry, the latency, and
    a remote peer stub; egress to a remote AS is handed to the
    {!set_remote_hook} callback (with its precomputed arrival time)
    instead of the local event queue, and ingress arrives via
    {!deliver_remote} when the owning domain drains its mailboxes at
    an epoch boundary.

    Cross-cut semantics are deliberately restricted so that no shared
    state or cross-domain call exists: no fault model on cut links (the
    partitioner pins fault-carrying links intra-region), no
    sender-side MRAI coalescing (each message ships individually with
    the MRAI interval added to its arrival delay — preserving the
    conservative lookahead), no graceful restart across the cut, and
    recovery resynchronizes by full route refresh. *)

val set_remote_hook :
  t ->
  (from:Dbgp_types.Asn.t ->
  to_:Dbgp_types.Asn.t ->
  at:float ->
  Dbgp_core.Speaker.msg ->
  unit)
  option ->
  unit
(** Install the shard engine's egress callback.  [at] is the absolute
    simulated arrival time at the destination (send time + MRAI
    interval if any + link latency), always at least one lookahead
    ahead of the sending region's clock. *)

val add_remote_peer : t -> Dbgp_types.Asn.t -> unit
(** Register an AS simulated by another region: creates the shared
    {!Dbgp_core.Peer.t} stub (at {!speaker_addr}) and the reverse
    mapping that routes egress through the remote hook.  Idempotent.
    Implied by {!half_link}. *)

val half_link :
  t ->
  ?latency:float ->
  ?import:Dbgp_core.Filters.t ->
  ?export:Dbgp_core.Filters.t ->
  ?remote_dbgp:bool ->
  ?same_island:bool ->
  local:Dbgp_types.Asn.t ->
  remote:Dbgp_types.Asn.t ->
  remote_is:Dbgp_bgp.Policy.relationship ->
  unit ->
  unit
(** Install the local half of a cut edge: [import]/[export] are the
    local speaker's filters, [remote_is] the remote AS's relationship
    as seen locally.  The remote region must install the mirror half
    with the inverse relationship and identical latency.
    @raise Invalid_argument on a self-loop. *)

val fail_half : t -> Dbgp_types.Asn.t -> Dbgp_types.Asn.t -> unit
(** Session loss on a cut edge, local side only.  The shard engine
    schedules the same event at the same time in the remote region, so
    both halves act in lockstep.  Immediate flush (no graceful restart
    across the cut); pending MRAI batches toward the peer are
    discarded with sender notification. *)

val recover_half : t -> Dbgp_types.Asn.t -> Dbgp_types.Asn.t -> unit
(** Bring a failed half link back and schedule a full route refresh
    toward the remote peer.  No-op if already up.
    @raise Invalid_argument if the pair was never half-linked. *)

val deliver_remote :
  t ->
  from:Dbgp_types.Asn.t ->
  to_:Dbgp_types.Asn.t ->
  Dbgp_core.Speaker.msg ->
  Dbgp_types.Prefix.t option
(** Ingest one cross-partition arrival (called from an event scheduled
    at the arrival time carried by the mailbox entry).  Returns
    [Some prefix] when the half link was down at arrival and the
    message died — the shard engine must route that as a NACK back to
    the sending region, where {!apply_nack} repairs the sender's
    Adj-RIB-Out confirmed bits. *)

val apply_nack :
  t ->
  local:Dbgp_types.Asn.t ->
  remote:Dbgp_types.Asn.t ->
  Dbgp_types.Prefix.t ->
  unit
(** The sending-region side of a cross-cut drop: mark [prefix] as
    undelivered on [local]'s Adj-RIB-Out toward [remote].
    Time-independent, so sound to apply at mailbox-drain time, one
    epoch after the drop. *)

val asns : t -> Dbgp_types.Asn.t list

val stale_total : t -> int
(** Stale (graceful-restart retained) routes across all speakers —
    should be zero once every restart window has closed. *)

(** {1 Observability}

    The network owns a metrics registry ([net.messages],
    [net.announce_bytes], [net.withdrawals], [net.dropped],
    [net.mrai_flushes], [net.mrai_batched], [net.corruption.injected],
    [net.corruption.survived], and the [net.msg_bytes]
    histogram) and a wire-level event trace ({!Dbgp_obs.Trace}:
    update sent/received, MRAI flushes).  Each speaker additionally owns
    its own registry and trace (see {!Dbgp_core.Speaker.metrics}). *)

val metrics : t -> Dbgp_obs.Metrics.t
val trace : t -> Dbgp_obs.Trace.t

val counter_total : t -> string -> int
(** Sum of one named counter across every speaker's registry (0 when no
    speaker has it). *)

val convergence_times : t -> float list
(** Per-speaker time of the last best-path change, sorted ascending, for
    speakers whose decision process changed at least once — the raw
    distribution behind convergence-time percentiles. *)

val snapshot : ?recent_events:int -> t -> Dbgp_obs.Snapshot.t
(** Aggregate JSON-ready snapshot: simulation clock, the network
    registry, per-speaker counter totals, and convergence-time
    percentiles.  With [recent_events > 0] the last that many trace
    events are included under ["trace"]. *)

