(* Greedy min-cut partitioning of a peering graph into regions.

   The sharded simulator assigns each region to one OCaml domain, so a
   good partition (a) balances speaker counts, (b) cuts as few peering
   edges as possible (every cut edge turns deliveries into
   cross-domain mailbox traffic), and (c) cuts *slow* edges when it
   must cut — the conservative lookahead is the minimum latency over
   the cut, so a partition that severs only long-haul links lets
   epochs be long and barriers rare.

   The heuristic is island-aware: connected components (the "islands"
   of a partially-deployed protocol topology, or genuinely
   disconnected fragments) are never split unless a single component
   exceeds the balance target — a component that fits is placed whole,
   which makes its cut contribution zero.  Oversized components are
   split by greedy graph growing: grow a region from a seed by
   repeatedly absorbing the frontier node with the strongest pull
   (most edges into the region, then lowest connecting latency), so
   cheap tightly-coupled clusters coalesce and the eventual cut falls
   across the weakest coupling.

   Pinned edges are contracted before anything else runs (union-find):
   both endpoints land in the same region no matter what.  The fault
   injector pins every link it intends to flap so that fault state
   stays region-private. *)

type t = {
  nregions : int;
  region_of_node : (int, int) Hashtbl.t;
  members : int array array;
  cut : (int * int * float) array;
  lookahead : float;
  total_edges : int;
}

let regions t = t.nregions

let region_of t node =
  match Hashtbl.find_opt t.region_of_node node with
  | Some r -> r
  | None -> invalid_arg (Printf.sprintf "Partition.region_of: unknown node %d" node)

let members t r =
  if r < 0 || r >= t.nregions then invalid_arg "Partition.members: bad region"
  else t.members.(r)

let cut_edges t = t.cut
let lookahead t = t.lookahead

let cut_fraction t =
  if t.total_edges = 0 then 0.
  else float_of_int (Array.length t.cut) /. float_of_int t.total_edges

(* --- union-find over dense indices, for pinned-edge contraction --- *)

let rec uf_find parent i =
  let p = parent.(i) in
  if p = i then i
  else begin
    let root = uf_find parent p in
    parent.(i) <- root;
    root
  end

let uf_union parent a b =
  let ra = uf_find parent a and rb = uf_find parent b in
  if ra <> rb then parent.(max ra rb) <- min ra rb

let build ?(pinned = []) ~nodes ~edges ~regions:want () =
  if want < 1 then invalid_arg "Partition.build: regions must be >= 1";
  let nodes = Array.copy nodes in
  Array.sort Int.compare nodes;
  let n = Array.length nodes in
  if n = 0 then
    { nregions = 1; region_of_node = Hashtbl.create 1; members = [| [||] |];
      cut = [||]; lookahead = infinity; total_edges = 0 }
  else begin
    let idx = Hashtbl.create n in
    Array.iteri (fun i a -> Hashtbl.replace idx a i) nodes;
    let index a =
      match Hashtbl.find_opt idx a with
      | Some i -> i
      | None -> invalid_arg (Printf.sprintf "Partition.build: edge endpoint %d not in nodes" a)
    in
    (* Deduplicate edges into an undirected adjacency; parallel edges
       keep the minimum latency (the conservative one for lookahead). *)
    let edge_tbl : (int * int, float) Hashtbl.t = Hashtbl.create (Array.length edges) in
    Array.iter
      (fun (a, b, lat) ->
        if a <> b then begin
          let i = index a and j = index b in
          let key = (min i j, max i j) in
          match Hashtbl.find_opt edge_tbl key with
          | Some l when l <= lat -> ()
          | _ -> Hashtbl.replace edge_tbl key lat
        end)
      edges;
    let undirected =
      Hashtbl.fold (fun (i, j) lat acc -> (i, j, lat) :: acc) edge_tbl []
      |> List.sort compare |> Array.of_list
    in
    let adj = Array.make n [] in
    Array.iter
      (fun (i, j, lat) ->
        adj.(i) <- (j, lat) :: adj.(i);
        adj.(j) <- (i, lat) :: adj.(j))
      undirected;
    Array.iteri (fun i l -> adj.(i) <- List.sort compare l) adj;
    (* Contract pinned edges. *)
    let parent = Array.init n Fun.id in
    List.iter (fun (a, b) -> uf_union parent (index a) (index b)) pinned;
    (* Group indices into supernodes, then supernodes into connected
       components (an edge connects two supernodes if any member edge
       does). *)
    let group_root i = uf_find parent i in
    let comp = Array.make n (-1) in
    let next_comp = ref 0 in
    for i = 0 to n - 1 do
      if comp.(group_root i) = -1 && group_root i = i then begin
        (* BFS over the supernode-expanded graph from root i. *)
        let c = !next_comp in
        incr next_comp;
        let q = Queue.create () in
        Queue.push i q;
        comp.(i) <- c;
        while not (Queue.is_empty q) do
          let u = Queue.pop q in
          (* All members of u's pin-group, plus graph neighbours. *)
          for v = 0 to n - 1 do
            if group_root v = u && comp.(v) = -1 then begin
              comp.(v) <- c;
              Queue.push v q
            end
          done;
          List.iter
            (fun (v, _) ->
              let rv = group_root v in
              if comp.(rv) = -1 then begin
                comp.(rv) <- c;
                Queue.push rv q
              end;
              if comp.(v) = -1 then comp.(v) <- comp.(rv))
            adj.(u)
        done
      end
    done;
    (* Sweep up any member whose root was labelled after it was seen. *)
    for v = 0 to n - 1 do
      if comp.(v) = -1 then comp.(v) <- comp.(group_root v)
    done;
    let ncomp = !next_comp in
    let comp_members = Array.make ncomp [] in
    for v = n - 1 downto 0 do
      comp_members.(comp.(v)) <- v :: comp_members.(comp.(v))
    done;
    let want = min want n in
    let target = (n + want - 1) / want in
    let assignment = Array.make n (-1) in
    let region_size = Array.make want 0 in
    (* Smallest region first; ties to the lower index for determinism. *)
    let lightest () =
      let best = ref 0 in
      for r = 1 to want - 1 do
        if region_size.(r) < region_size.(!best) then best := r
      done;
      !best
    in
    (* Components largest-first: whole placement when they fit the
       balance target, greedy growth split when they do not. *)
    let order = Array.init ncomp Fun.id in
    Array.sort
      (fun a b ->
        match compare (List.length comp_members.(b)) (List.length comp_members.(a)) with
        | 0 -> Int.compare a b
        | c -> c)
      order;
    Array.iter
      (fun c ->
        let mem = comp_members.(c) in
        let size = List.length mem in
        if size <= target then begin
          let r = lightest () in
          List.iter (fun v -> assignment.(v) <- r) mem;
          region_size.(r) <- region_size.(r) + size
        end
        else begin
          (* Greedy graph growing inside the component, one pin-group
             at a time: absorb the frontier group with the most edges
             into the region, breaking ties toward the lowest
             connecting latency, then the lowest index. *)
          let in_comp = Array.make n false in
          List.iter (fun v -> in_comp.(v) <- true) mem;
          let group_of = Hashtbl.create 16 in
          List.iter
            (fun v ->
              let r = group_root v in
              Hashtbl.replace group_of r
                (v :: Option.value ~default:[] (Hashtbl.find_opt group_of r)))
            mem;
          let unassigned = ref size in
          let grow_one () =
            let r = lightest () in
            let room = ref (max 1 (target - region_size.(r))) in
            (* Seed: the unassigned group with the fewest external
               edges (a periphery node) — keeps the final cut away
               from dense cores.  Lowest index breaks ties. *)
            let seed = ref (-1) in
            let seed_deg = ref max_int in
            Hashtbl.iter
              (fun root members ->
                if assignment.(root) = -1 then begin
                  let deg =
                    List.fold_left
                      (fun acc v -> acc + List.length adj.(v))
                      0 members
                  in
                  if deg < !seed_deg || (deg = !seed_deg && root < !seed) || !seed = -1
                  then begin
                    seed := root;
                    seed_deg := deg
                  end
                end)
              group_of;
            let take root =
              let members = Hashtbl.find group_of root in
              List.iter
                (fun v ->
                  assignment.(v) <- r;
                  region_size.(r) <- region_size.(r) + 1;
                  decr unassigned;
                  decr room)
                members
            in
            take !seed;
            let continue = ref true in
            while !continue && !room > 0 && !unassigned > 0 do
              (* Frontier group with the strongest pull into r. *)
              let best = ref (-1) in
              let best_pull = ref 0 in
              let best_lat = ref infinity in
              Hashtbl.iter
                (fun root members ->
                  if assignment.(root) = -1 then begin
                    let pull = ref 0 and lat = ref infinity in
                    List.iter
                      (fun v ->
                        List.iter
                          (fun (u, l) ->
                            if in_comp.(u) && assignment.(u) = r then begin
                              incr pull;
                              if l < !lat then lat := l
                            end)
                          adj.(v))
                      members;
                    if
                      !pull > !best_pull
                      || (!pull = !best_pull && !pull > 0
                          && (!lat < !best_lat
                              || (!lat = !best_lat && root < !best)))
                    then begin
                      best := root;
                      best_pull := !pull;
                      best_lat := !lat
                    end
                  end)
                group_of;
              if !best = -1 then continue := false else take !best
            done
          in
          while !unassigned > 0 do
            grow_one ()
          done
        end)
      order;
    (* Compress away empty regions (possible when components < want). *)
    let remap = Array.make want (-1) in
    let nregions = ref 0 in
    for r = 0 to want - 1 do
      if region_size.(r) > 0 then begin
        remap.(r) <- !nregions;
        incr nregions
      end
    done;
    let nregions = !nregions in
    let region_of_node = Hashtbl.create n in
    let members_acc = Array.make nregions [] in
    for v = n - 1 downto 0 do
      let r = remap.(assignment.(v)) in
      Hashtbl.replace region_of_node nodes.(v) r;
      members_acc.(r) <- nodes.(v) :: members_acc.(r)
    done;
    let members = Array.map Array.of_list members_acc in
    let cut = ref [] in
    let lookahead = ref infinity in
    Array.iter
      (fun (i, j, lat) ->
        if remap.(assignment.(i)) <> remap.(assignment.(j)) then begin
          cut := (nodes.(i), nodes.(j), lat) :: !cut;
          if lat < !lookahead then lookahead := lat
        end)
      undirected;
    {
      nregions;
      region_of_node;
      members;
      cut = Array.of_list (List.rev !cut);
      lookahead = !lookahead;
      total_edges = Array.length undirected;
    }
  end
