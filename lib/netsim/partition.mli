(** Greedy min-cut partitioning of a peering graph into regions.

    Each region of a sharded simulation is owned by one OCaml domain,
    so the partitioner optimizes three things at once: balanced region
    sizes, few cut edges (every cut edge becomes cross-domain mailbox
    traffic), and a slow cut (the conservative lookahead is the
    minimum latency across the cut, so severing only long-haul links
    keeps epochs long and barriers rare).

    Island-aware: connected components are placed whole when they fit
    the balance target — an island contributes zero cut edges — and
    only oversized components are split, by greedy graph growing from
    a periphery seed.  Deterministic: equal inputs produce equal
    partitions (all tie-breaks are by index). *)

type t

val build :
  ?pinned:(int * int) list ->
  nodes:int array ->
  edges:(int * int * float) array ->
  regions:int ->
  unit ->
  t
(** [build ~nodes ~edges ~regions ()] partitions the undirected graph
    into at most [regions] non-empty regions.  [edges] entries are
    [(a, b, latency)]; parallel edges keep the minimum latency;
    self-loops are ignored.  [pinned] edges are contracted first: both
    endpoints always land in the same region (the fault injector pins
    links it intends to flap so fault state stays region-private).
    @raise Invalid_argument if [regions < 1] or an edge endpoint is
    not in [nodes]. *)

val regions : t -> int
(** Actual region count: at least 1, at most the requested count, and
    never more than the node count. *)

val region_of : t -> int -> int
(** Region index of a node.  @raise Invalid_argument for unknown nodes. *)

val members : t -> int -> int array
(** Sorted nodes of a region. *)

val cut_edges : t -> (int * int * float) array
(** Edges whose endpoints landed in different regions. *)

val lookahead : t -> float
(** Minimum latency over {!cut_edges}; [infinity] when nothing is cut
    (single region, or regions are unions of whole islands). *)

val cut_fraction : t -> float
(** Cut edges over total (deduplicated) edges; 0 for an empty graph. *)
