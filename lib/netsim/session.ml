module Fsm = Dbgp_bgp.Fsm
module Message = Dbgp_bgp.Message
module Metrics = Dbgp_obs.Metrics
module Trace = Dbgp_obs.Trace

type callbacks = {
  on_established : Message.open_msg -> unit;
  on_update : Message.update -> unit;
  on_down : unit -> unit;
}

let null_callbacks =
  { on_established = (fun _ -> ());
    on_update = (fun _ -> ());
    on_down = (fun () -> ()) }

type endpoint = {
  q : Event_queue.t;
  latency : float;
  mutable fsm : Fsm.t;
  mutable peer : endpoint option;
  mutable cbs : callbacks;
  mutable hold_gen : int;
  mutable keep_gen : int;
  mutable retry_gen : int;
  mutable retries : int;
  mutable bytes_sent : int;
  mutable messages_sent : int;
  obs : Metrics.t;
  trace : Trace.t;
}

let my_asn ep = Dbgp_types.Asn.to_int (Fsm.config ep.fsm).Fsm.my_asn

let peer_asn ep =
  match Fsm.peer_open ep.fsm with
  | Some (o : Message.open_msg) -> Dbgp_types.Asn.to_int o.my_asn
  | None -> 0

let rec handle ep ev =
  let before = Fsm.state ep.fsm in
  let fsm, actions = Fsm.handle ep.fsm ev in
  ep.fsm <- fsm;
  let after = Fsm.state fsm in
  if after <> before then begin
    Metrics.incr (Metrics.counter ep.obs "fsm.transitions");
    if after = Fsm.Established then
      Metrics.incr (Metrics.counter ep.obs "fsm.established");
    Trace.emit ep.trace ~at:(Event_queue.now ep.q)
      (Trace.Session_state
         { asn = my_asn ep; peer = peer_asn ep; state = Fsm.state_name after })
  end;
  List.iter (perform ep) actions

and perform ep = function
  | Fsm.Send msg ->
    let wire = Message.encode msg in
    ep.bytes_sent <- ep.bytes_sent + String.length wire;
    ep.messages_sent <- ep.messages_sent + 1;
    Metrics.observe
      (Metrics.histogram ep.obs "session.send_bytes")
      (float_of_int (String.length wire));
    ( match ep.peer with
      | None -> ()
      | Some peer ->
        Event_queue.schedule ep.q ~delay:ep.latency (fun () ->
            handle peer (Fsm.Recv (Message.decode wire))) )
  | Fsm.Connect_tcp ->
    (* Simplified transport: after one latency, both sides observe the
       connection — each accepts it only while connecting or idle (the
       passive side of a reconnect), so a simultaneous open cannot
       double-fire. *)
    let deliver side =
      match Fsm.state side.fsm with
      | Fsm.Connect | Fsm.Idle -> handle side Fsm.Tcp_established
      | _ -> ()
    in
    Event_queue.schedule ep.q ~delay:ep.latency (fun () ->
        deliver ep;
        Option.iter deliver ep.peer)
  | Fsm.Close_tcp -> ()
  | Fsm.Session_up o -> ep.cbs.on_established o
  | Fsm.Session_down -> ep.cbs.on_down ()
  | Fsm.Deliver_update u -> ep.cbs.on_update u
  | Fsm.Start_hold_timer h ->
    ep.hold_gen <- ep.hold_gen + 1;
    let gen = ep.hold_gen in
    Event_queue.schedule ep.q ~delay:(float_of_int h) (fun () ->
        if ep.hold_gen = gen then handle ep Fsm.Hold_timer_expired)
  | Fsm.Start_keepalive_timer k ->
    ep.keep_gen <- ep.keep_gen + 1;
    let gen = ep.keep_gen in
    Event_queue.schedule ep.q ~delay:(float_of_int (max 1 k)) (fun () ->
        if ep.keep_gen = gen then handle ep Fsm.Keepalive_timer_expired)
  | Fsm.Start_connect_retry_timer d ->
    ep.retry_gen <- ep.retry_gen + 1;
    ep.retries <- ep.retries + 1;
    let gen = ep.retry_gen in
    Event_queue.schedule ep.q ~delay:d (fun () ->
        if ep.retry_gen = gen && Fsm.state ep.fsm = Fsm.Idle then
          handle ep Fsm.Connect_retry_expired)
  | Fsm.Stop_connect_retry_timer -> ep.retry_gen <- ep.retry_gen + 1

let create q ?(latency = 1.0) ?retry ~a ~b () =
  let mk ?retry cfg =
    { q; latency; fsm = Fsm.create ?retry cfg; peer = None;
      cbs = null_callbacks; hold_gen = 0; keep_gen = 0; retry_gen = 0;
      retries = 0; bytes_sent = 0; messages_sent = 0;
      obs = Metrics.create (); trace = Trace.create () }
  in
  (* Offset b's jitter seed so the two sides don't retry in lock-step. *)
  let retry_b =
    Option.map (fun (r : Fsm.retry) -> { r with Fsm.seed = r.Fsm.seed + 1 })
      retry
  in
  let ea = mk ?retry a and eb = mk ?retry:retry_b b in
  ea.peer <- Some eb;
  eb.peer <- Some ea;
  (ea, eb)

let set_callbacks ep cbs = ep.cbs <- cbs
let start ep = handle ep Fsm.Manual_start
let stop ep = handle ep Fsm.Manual_stop

let drop_connection ep =
  (* Guard inside the closure: a side already back in Idle when the
     failure lands has no connection to lose and must not see a spurious
     Tcp_failed (which would burn a retry attempt). *)
  let fail side =
    Event_queue.schedule ep.q ~delay:0. (fun () ->
        if Fsm.state side.fsm <> Fsm.Idle then handle side Fsm.Tcp_failed)
  in
  fail ep;
  Option.iter fail ep.peer

let state ep = Fsm.state ep.fsm

let send_update ep u =
  if Fsm.state ep.fsm <> Fsm.Established then
    invalid_arg "Session.send_update: session not established"
  else perform ep (Fsm.Send (Message.Update u))

let send_ia ep ia = send_update ep (Dbgp_core.Legacy.to_update ia)

let bytes_sent ep = ep.bytes_sent
let messages_sent ep = ep.messages_sent
let retry_count ep = ep.retries
let metrics ep = ep.obs
let trace ep = ep.trace
