(** BGP peering sessions driven by the real FSM over the event queue.

    The {!Network} harness abstracts sessions away to focus on IA
    semantics; this module runs the full session machinery instead —
    {!Dbgp_bgp.Fsm} states, encoded {!Dbgp_bgp.Message}s on the wire,
    hold and keepalive timers, TCP failure — so session dynamics
    (establishment, resets and the re-advertisement storms Section 3.5
    worries about) can be exercised and measured.

    IAs ride in UPDATE messages via {!Dbgp_core.Legacy}, i.e. exactly
    the transitional optional-transitive encoding. *)

type endpoint

type callbacks = {
  on_established : Dbgp_bgp.Message.open_msg -> unit;
      (** peer's OPEN, post-capability exchange *)
  on_update : Dbgp_bgp.Message.update -> unit;
  on_down : unit -> unit;
}

val null_callbacks : callbacks

val create :
  Event_queue.t ->
  ?latency:float ->
  ?retry:Dbgp_bgp.Fsm.retry ->
  a:Dbgp_bgp.Fsm.config ->
  b:Dbgp_bgp.Fsm.config ->
  unit ->
  endpoint * endpoint
(** A point-to-point session; both endpoints must {!start} for the
    handshake to complete (standard BGP: both sides are configured).
    With [retry], TCP failures re-enter Connect after an exponential
    backoff instead of staying Idle; the second endpoint's jitter seed
    is offset so the two sides do not retry in lock-step. *)

val set_callbacks : endpoint -> callbacks -> unit
val start : endpoint -> unit
val stop : endpoint -> unit
(** Administrative shutdown: sends CEASE, tears the session down. *)

val drop_connection : endpoint -> unit
(** Simulate transport failure on this endpoint's side: both ends see
    TCP fail, unless already back in Idle by the time it lands. *)

val state : endpoint -> Dbgp_bgp.Fsm.state

val send_update : endpoint -> Dbgp_bgp.Message.update -> unit
(** @raise Invalid_argument unless the session is established. *)

val send_ia : endpoint -> Dbgp_core.Ia.t -> unit
(** [send_update] with the {!Dbgp_core.Legacy} encoding. *)

val bytes_sent : endpoint -> int
val messages_sent : endpoint -> int

val retry_count : endpoint -> int
(** Connect-retry timers armed on this endpoint so far. *)

val metrics : endpoint -> Dbgp_obs.Metrics.t
(** Per-endpoint registry: [fsm.transitions], [fsm.established] counters
    and the [session.send_bytes] histogram. *)

val trace : endpoint -> Dbgp_obs.Trace.t
(** Per-endpoint trace of {!Dbgp_obs.Trace.Session_state} events, one per
    FSM state change. *)
