(* Sharded simulation engine: one topology partitioned into regions,
   one OCaml domain per region, synchronized conservatively.

   Execution alternates drain and run phases on an adaptive epoch
   grid.  Let L be the lookahead: the minimum latency over cut edges,
   plus the MRAI interval when one is configured (cross-partition
   sends skip sender-side coalescing and instead add the full MRAI
   interval to their arrival delay, so L is a true lower bound on
   "send now, arrive when").  Each epoch the engine computes the
   global minimum next-event time T over all region queues and all
   pending mailbox entries, sets the horizon H = T + L, and executes
   two barrier rounds: first every region drains its inbound mailboxes
   — scheduling each recorded arrival into its own event queue — then
   every region executes its events with time < H.  (The barrier
   between the rounds is what lets the mailboxes stay lock-free, and
   what makes the drain schedule independent of the domain count.)
   Any message sent by an event at time t < H
   arrives at t + L' with L' >= L, hence at or after H: no region can
   receive an arrival in its executed past.  That is the whole
   correctness argument, and it holds for every domain count.

   Determinism: T and H are functions of global simulation state only;
   regions execute sequentially and deterministically within a domain;
   mailbox drains impose the total order (arrival time, source region,
   push index).  Consequently which *domain* executes a region affects
   nothing — transcripts are byte-identical between 1-domain and
   N-domain runs of the same partitioned schedule.  Domain-local
   caches (intern tables, codec caches, wire metrics) only change hit
   rates, never results. *)

open Dbgp_types
module Speaker = Dbgp_core.Speaker
module Metrics = Dbgp_obs.Metrics

type cross =
  | Deliver of { from : int; to_ : int; msg : Speaker.msg }
  | Nack of { local : int; remote : int; prefix : Prefix.t }

type link_decl = {
  l_a : int;
  l_b : int;
  l_latency : float;
  l_a_import : Dbgp_core.Filters.t;
  l_a_export : Dbgp_core.Filters.t;
  l_b_import : Dbgp_core.Filters.t;
  l_b_export : Dbgp_core.Filters.t;
  l_a_dbgp : bool;
  l_b_dbgp : bool;
  l_b_is : Dbgp_bgp.Policy.relationship;
}

type built = {
  part : Partition.t;
  nets : Network.t array;
  (* outboxes.(src).(dst): pushed by src's domain during its epoch,
     drained by dst's domain after the barrier. *)
  outboxes : cross Mailbox.t array array;
  (* Per-region transcript: (time, per-region seq, line), newest
     first.  Written only by the owning domain; merged on the main
     domain after the run. *)
  logs : (float * int * string) list ref array;
  log_seq : int array;
  mutable transcript_on : bool;
  (* Per-domain wire-codec registries, merged in at the end of every
     run (each member can only read its own domain's DLS). *)
  wire : Metrics.t;
}

type t = {
  mrai : float;
  wire_delivery : bool;
  want_regions : int;
  make_speaker : int -> Speaker.t;
  mutable decl_nodes : int list;          (* reversed *)
  mutable decl_links : link_decl list;    (* reversed *)
  mutable decl_pinned : (int * int) list;
  mutable want_transcript : bool;
  mutable built : built option;
}

type stats = {
  net : Network.stats;
  epochs : int;
  domains : int;
  regions : int;
  cut_edges : int;
  lookahead : float;
}

let create ?(mrai = 0.) ?(wire_delivery = false) ?(regions = 2) ~make_speaker
    () =
  if mrai < 0. then invalid_arg "Shard.create: negative MRAI";
  if regions < 1 then invalid_arg "Shard.create: regions must be >= 1";
  {
    mrai;
    wire_delivery;
    want_regions = regions;
    make_speaker;
    decl_nodes = [];
    decl_links = [];
    decl_pinned = [];
    want_transcript = false;
    built = None;
  }

let check_declaring t op =
  if t.built <> None then
    invalid_arg (Printf.sprintf "Shard.%s: topology already built" op)

let require_built t op =
  match t.built with
  | Some b -> b
  | None -> invalid_arg (Printf.sprintf "Shard.%s: call Shard.build first" op)

let add_as t asn =
  check_declaring t "add_as";
  t.decl_nodes <- asn :: t.decl_nodes

let link t ?(latency = 1.0) ?(pinned = false)
    ?(a_import = Dbgp_core.Filters.accept)
    ?(a_export = Dbgp_core.Filters.accept)
    ?(b_import = Dbgp_core.Filters.accept)
    ?(b_export = Dbgp_core.Filters.accept) ?(a_dbgp = true) ?(b_dbgp = true)
    ~a ~b ~b_is () =
  check_declaring t "link";
  if latency <= 0. then invalid_arg "Shard.link: latency must be positive";
  if pinned then t.decl_pinned <- (a, b) :: t.decl_pinned;
  t.decl_links <-
    { l_a = a; l_b = b; l_latency = latency; l_a_import = a_import;
      l_a_export = a_export; l_b_import = b_import; l_b_export = b_export;
      l_a_dbgp = a_dbgp; l_b_dbgp = b_dbgp; l_b_is = b_is }
    :: t.decl_links

let inverse : Dbgp_bgp.Policy.relationship -> Dbgp_bgp.Policy.relationship =
  function
  | Dbgp_bgp.Policy.To_customer -> Dbgp_bgp.Policy.To_provider
  | Dbgp_bgp.Policy.To_provider -> Dbgp_bgp.Policy.To_customer
  | Dbgp_bgp.Policy.To_peer -> Dbgp_bgp.Policy.To_peer

let record b r ~at line =
  if b.transcript_on then begin
    b.logs.(r) := (at, b.log_seq.(r), line) :: !(b.logs.(r));
    b.log_seq.(r) <- b.log_seq.(r) + 1
  end

let msg_enc = function
  | Speaker.Announce ia -> "A" ^ Dbgp_core.Codec.encode ia
  | Speaker.Withdraw p -> "W" ^ Prefix.to_string p

let wire_transcript b =
  b.transcript_on <- true;
  Array.iteri
    (fun i net ->
      Network.set_change_feed net
        (Some
           (fun ~asn ~prefix ~at ~fingerprint ->
             record b i ~at
               (Printf.sprintf "C %d %s %d" (Asn.to_int asn)
                  (Prefix.to_string prefix) fingerprint))))
    b.nets

let build t =
  check_declaring t "build";
  let nodes = Array.of_list (List.rev t.decl_nodes) in
  let links = List.rev t.decl_links in
  let edges =
    Array.of_list (List.map (fun l -> (l.l_a, l.l_b, l.l_latency)) links)
  in
  let part =
    Partition.build ~pinned:t.decl_pinned ~nodes ~edges
      ~regions:t.want_regions ()
  in
  let nregions = Partition.regions part in
  let nets = Array.init nregions (fun _ -> Network.create ()) in
  Array.iter
    (fun net ->
      Network.set_mrai net t.mrai;
      Network.set_wire_delivery net t.wire_delivery)
    nets;
  let speakers = Hashtbl.create (Array.length nodes) in
  Array.iter
    (fun a ->
      let s = t.make_speaker a in
      if
        Ipv4.to_int (Speaker.addr s)
        <> Ipv4.to_int (Network.speaker_addr (Asn.of_int a))
      then
        invalid_arg
          "Shard.build: make_speaker must use Network.speaker_addr \
           (remote peer stubs are derived from it)";
      Hashtbl.replace speakers a s;
      Network.add_speaker nets.(Partition.region_of part a) s)
    nodes;
  List.iter
    (fun l ->
      let ra = Partition.region_of part l.l_a
      and rb = Partition.region_of part l.l_b in
      let a = Asn.of_int l.l_a and b = Asn.of_int l.l_b in
      if ra = rb then
        Network.link nets.(ra) ~latency:l.l_latency ~a_import:l.l_a_import
          ~a_export:l.l_a_export ~b_import:l.l_b_import
          ~b_export:l.l_b_export ~a_dbgp:l.l_a_dbgp ~b_dbgp:l.l_b_dbgp ~a ~b
          ~b_is:l.l_b_is ()
      else begin
        let sa = Hashtbl.find speakers l.l_a
        and sb = Hashtbl.find speakers l.l_b in
        let same_island =
          match (Speaker.island_of sa, Speaker.island_of sb) with
          | Some ia, Some ib -> Island_id.equal ia ib
          | _ -> false
        in
        Network.half_link nets.(ra) ~latency:l.l_latency
          ~import:l.l_a_import ~export:l.l_a_export ~remote_dbgp:l.l_b_dbgp
          ~same_island ~local:a ~remote:b ~remote_is:l.l_b_is ();
        Network.half_link nets.(rb) ~latency:l.l_latency
          ~import:l.l_b_import ~export:l.l_b_export ~remote_dbgp:l.l_a_dbgp
          ~same_island ~local:b ~remote:a ~remote_is:(inverse l.l_b_is) ()
      end)
    links;
  let outboxes =
    Array.init nregions (fun _ -> Array.init nregions (fun _ -> Mailbox.create ()))
  in
  let b =
    {
      part;
      nets;
      outboxes;
      logs = Array.init nregions (fun _ -> ref []);
      log_seq = Array.make nregions 0;
      transcript_on = false;
      wire = Metrics.create ();
    }
  in
  Array.iteri
    (fun i net ->
      Network.set_remote_hook net
        (Some
           (fun ~from ~to_ ~at msg ->
             let dst = Partition.region_of part (Asn.to_int to_) in
             Mailbox.push outboxes.(i).(dst) ~time:at
               (Deliver { from = Asn.to_int from; to_ = Asn.to_int to_; msg }))))
    nets;
  if t.want_transcript then wire_transcript b;
  t.built <- Some b

(* ------------------------------ queries ------------------------------ *)

let partition t = (require_built t "partition").part
let regions t = Partition.regions (require_built t "regions").part
let region_of t a = Partition.region_of (require_built t "region_of").part a
let network t r = (require_built t "network").nets.(r)

let lookahead t =
  let b = require_built t "lookahead" in
  let base = Partition.lookahead b.part in
  if base = infinity then infinity else base +. t.mrai

let speaker t a =
  let b = require_built t "speaker" in
  Network.speaker b.nets.(Partition.region_of b.part a) (Asn.of_int a)

let speakers t =
  let b = require_built t "speakers" in
  Array.to_list
    (Array.map
       (fun net -> List.map (fun a -> (Asn.to_int a, Network.speaker net a)) (Network.asns net))
       b.nets)
  |> List.concat
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

(* ------------------------------ workload ----------------------------- *)

let net_of t op a =
  let b = require_built t op in
  b.nets.(Partition.region_of b.part a)

(* Workload injections accept an absolute time so seeded churn can be
   spread over the simulated clock; [at <= now] executes immediately. *)
let inject net ~at f =
  if at <= Event_queue.now (Network.queue net) then f ()
  else Event_queue.schedule_at (Network.queue net) ~time:at f

let originate ?(at = 0.) t a ia =
  let net = net_of t "originate" a in
  inject net ~at (fun () -> Network.originate net (Asn.of_int a) ia)

let withdraw_origin ?(at = 0.) t a prefix =
  let net = net_of t "withdraw_origin" a in
  inject net ~at (fun () -> Network.withdraw_origin net (Asn.of_int a) prefix)

let set_damping t params =
  Array.iter (fun net -> Network.set_damping net params)
    (require_built t "set_damping").nets

let schedule_cross t op ~at a b ~intra ~half =
  let bt = require_built t op in
  let ra = Partition.region_of bt.part a
  and rb = Partition.region_of bt.part b in
  let aa = Asn.of_int a and ab = Asn.of_int b in
  if ra = rb then
    Event_queue.schedule_at (Network.queue bt.nets.(ra)) ~time:at (fun () ->
        intra bt.nets.(ra) aa ab)
  else begin
    (* Both halves fire at the same simulated time, each in its own
       region — lockstep without any cross-domain call. *)
    Event_queue.schedule_at (Network.queue bt.nets.(ra)) ~time:at (fun () ->
        half bt.nets.(ra) aa ab);
    Event_queue.schedule_at (Network.queue bt.nets.(rb)) ~time:at (fun () ->
        half bt.nets.(rb) ab aa)
  end

let schedule_fail t ~at a b =
  schedule_cross t "schedule_fail" ~at a b ~intra:Network.fail_link
    ~half:Network.fail_half

let schedule_recover t ~at a b =
  schedule_cross t "schedule_recover" ~at a b ~intra:Network.recover_link
    ~half:Network.recover_half

let fault_models t ~seed =
  let b = require_built t "fault_models" in
  let master = Prng.create seed in
  let streams = Prng.split_n master (Array.length b.nets) in
  Array.mapi
    (fun i rng ->
      let f =
        Fault_model.create ~seed:(Int64.to_int (Prng.bits64 rng) land max_int) ()
      in
      Network.set_fault_model b.nets.(i) f;
      f)
    streams

(* ----------------------------- transcript ---------------------------- *)

let enable_transcript t =
  t.want_transcript <- true;
  match t.built with
  | Some b when not b.transcript_on -> wire_transcript b
  | _ -> ()

let transcript_lines t =
  let b = require_built t "transcript_lines" in
  let entries = ref [] in
  Array.iteri
    (fun r log ->
      List.iter (fun (at, seq, line) -> entries := (at, r, seq, line) :: !entries) !log)
    b.logs;
  let entries =
    List.sort
      (fun (t1, r1, s1, _) (t2, r2, s2, _) ->
        match Float.compare t1 t2 with
        | 0 -> ( match Int.compare r1 r2 with 0 -> Int.compare s1 s2 | c -> c)
        | c -> c)
      !entries
  in
  List.map
    (fun (at, r, _, line) -> Printf.sprintf "%.6f %d %s" at r line)
    entries

let transcript_digest t =
  let buf = Buffer.create 4096 in
  List.iter
    (fun line ->
      Buffer.add_string buf line;
      Buffer.add_char buf '\n')
    (transcript_lines t);
  Digest.to_hex (Digest.string (Buffer.contents buf))

let transcript_length t =
  let b = require_built t "transcript_length" in
  Array.fold_left (fun acc log -> acc + List.length !log) 0 b.logs

(* ------------------------------ execution ---------------------------- *)

(* Drain region [r]'s inbound mailboxes: impose the (arrival time,
   source region, push index) total order, apply NACKs immediately
   (they are time-independent sender-side bookkeeping) and schedule
   deliveries at their recorded arrival times.  Runs on [r]'s owning
   domain, after the barrier that makes the producers' pushes visible. *)
let drain b r =
  let nregions = Array.length b.nets in
  let entries = ref [] in
  for src = 0 to nregions - 1 do
    if src <> r then
      List.iter
        (fun (time, seq, payload) -> entries := (time, src, seq, payload) :: !entries)
        (Mailbox.drain b.outboxes.(src).(r))
  done;
  let entries =
    List.sort
      (fun (t1, r1, s1, _) (t2, r2, s2, _) ->
        match Float.compare t1 t2 with
        | 0 -> ( match Int.compare r1 r2 with 0 -> Int.compare s1 s2 | c -> c)
        | c -> c)
      !entries
  in
  let net = b.nets.(r) in
  let q = Network.queue net in
  List.iter
    (fun (time, _src, _seq, payload) ->
      match payload with
      | Nack { local; remote; prefix } ->
        record b r ~at:time
          (Printf.sprintf "N %d %d %s" local remote (Prefix.to_string prefix));
        Network.apply_nack net ~local:(Asn.of_int local)
          ~remote:(Asn.of_int remote) prefix
      | Deliver { from; to_; msg } ->
        Event_queue.schedule_at q ~time (fun () ->
            record b r ~at:time
              (Printf.sprintf "X %d>%d %s" from to_ (msg_enc msg));
            match
              Network.deliver_remote net ~from:(Asn.of_int from)
                ~to_:(Asn.of_int to_) msg
            with
            | None -> ()
            | Some prefix ->
              (* The half link died while the message crossed the cut:
                 NACK the sender's region so its Adj-RIB-Out learns. *)
              let sr = Partition.region_of b.part from in
              Mailbox.push b.outboxes.(r).(sr) ~time:(Event_queue.now q)
                (Nack { local = from; remote = to_; prefix })))
    entries

let run ?(max_events = 10_000_000) ?(domains = 1) t =
  if domains < 1 then invalid_arg "Shard.run: domains must be >= 1";
  let b = require_built t "run" in
  let nregions = Array.length b.nets in
  let size = min domains nregions in
  let la = lookahead t in
  let pool = Domain_pool.create ~size in
  let region_events = Array.make nregions 0 in
  let epochs = ref 0 in
  let exhausted = ref false in
  Fun.protect ~finally:(fun () -> Domain_pool.shutdown pool) @@ fun () ->
  let continue = ref true in
  while !continue do
    (* Global minimum next-event time across queues and mailboxes;
       computed from simulation state only, hence identical for every
       domain count. *)
    let tmin = ref infinity in
    Array.iter
      (fun net ->
        match Event_queue.peek_time (Network.queue net) with
        | Some tm when tm < !tmin -> tmin := tm
        | _ -> ())
      b.nets;
    Array.iter
      (Array.iter (fun mb ->
           match Mailbox.min_time mb with
           | Some tm when tm < !tmin -> tmin := tm
           | _ -> ()))
      b.outboxes;
    if !tmin = infinity then continue := false
    else begin
      let total = Array.fold_left ( + ) 0 region_events in
      if total >= max_events then begin
        exhausted := true;
        continue := false
      end
      else begin
        incr epochs;
        let budget = max_events - total in
        let horizon = if la = infinity then infinity else !tmin +. la in
        (* Two barrier rounds per epoch, with a static region->member
           assignment (r mod size — cache affinity for the domain-local
           intern and codec caches).  The drain/run split is load-
           bearing twice over: every drain must complete before any run
           starts, (1) so nobody pushes into a mailbox while its
           consumer drains it (the mailboxes are lock-free by the
           barrier contract), and (2) so the epoch at which a region
           ingests a neighbour's pushes is a function of the epoch
           schedule alone — with drain and run fused, a single domain
           would run region 0 before draining region 1, feeding region
           1 the current epoch's pushes where an N-domain run feeds it
           the previous epoch's, and same-time events would interleave
           differently. *)
        Domain_pool.run pool (fun m ->
            let i = ref m in
            while !i < nregions do
              drain b !i;
              i := !i + size
            done);
        Domain_pool.run pool (fun m ->
            let i = ref m in
            while !i < nregions do
              region_events.(!i) <-
                region_events.(!i)
                + Event_queue.run_until ~max_events:budget
                    (Network.queue b.nets.(!i)) ~horizon;
              i := !i + size
            done)
      end
    end
  done;
  (* Fold each member's domain-local wire-codec registry into the
     engine's merged view: only the owning domain can read its DLS, so
     each member copies into its own slot and the barrier publishes
     the slots to the main domain. *)
  let wire_parts = Array.init size (fun _ -> Metrics.create ()) in
  Domain_pool.run pool (fun m ->
      Metrics.merge_into ~into:wire_parts.(m) (Dbgp_core.Codec.wire_metrics ()));
  Array.iter (fun p -> Metrics.merge_into ~into:b.wire p) wire_parts;
  let per =
    Array.mapi
      (fun i net -> Network.stats_now net ~events:region_events.(i) ~exhausted:false)
      b.nets
  in
  let net =
    Array.fold_left
      (fun (acc : Network.stats) (s : Network.stats) ->
        {
          Network.messages = acc.Network.messages + s.Network.messages;
          announce_bytes = acc.Network.announce_bytes + s.Network.announce_bytes;
          withdrawals = acc.Network.withdrawals + s.Network.withdrawals;
          dropped = acc.Network.dropped + s.Network.dropped;
          events = acc.Network.events + s.Network.events;
          converged_at = Float.max acc.Network.converged_at s.Network.converged_at;
          exhausted = acc.Network.exhausted || s.Network.exhausted;
        })
      {
        Network.messages = 0;
        announce_bytes = 0;
        withdrawals = 0;
        dropped = 0;
        events = 0;
        converged_at = 0.;
        exhausted = !exhausted;
      }
      per
  in
  {
    net;
    epochs = !epochs;
    domains = size;
    regions = nregions;
    cut_edges = Array.length (Partition.cut_edges b.part);
    lookahead = la;
  }

(* --------------------------- observability --------------------------- *)

let metrics t =
  let b = require_built t "metrics" in
  let into = Metrics.create () in
  Array.iter (fun net -> Metrics.merge_into ~into (Network.metrics net)) b.nets;
  Metrics.merge_into ~into b.wire;
  into

let counter_total t name =
  let b = require_built t "counter_total" in
  Array.fold_left (fun acc net -> acc + Network.counter_total net name) 0 b.nets

let stale_total t =
  let b = require_built t "stale_total" in
  Array.fold_left (fun acc net -> acc + Network.stale_total net) 0 b.nets
