(** Sharded simulation: one topology partitioned into regions, one
    OCaml domain per region, synchronized conservatively at epoch
    barriers.

    Build flow: {!create} with a speaker factory, declare the topology
    with {!add_as} and {!link}, then {!build} — which partitions the
    peering graph ({!Partition}), constructs one {!Network} per region
    (cut edges become {!Network.half_link} pairs) and wires the
    cross-partition mailboxes.  After building, declare workload
    ({!originate}, {!schedule_fail}, …) and {!run}.

    Correctness: the lookahead L is the minimum latency over cut edges
    plus the MRAI interval (cross-partition sends skip sender-side
    coalescing, so L lower-bounds every send-to-arrival distance).
    Each epoch executes events strictly below the horizon
    [T + L] where T is the global minimum next-event time; any message
    sent inside the window arrives at or after the horizon, so no
    region ever receives an arrival in its executed past.

    Determinism: horizons, mailbox drain order ((arrival time, source
    region, push index)) and per-region execution depend only on
    simulation state — never on which domain runs which region — so
    transcripts are byte-identical between 1-domain and N-domain runs
    of the same partitioned schedule. *)

type t

type stats = {
  net : Network.stats;  (** merged across regions; [events] summed,
                            [converged_at] is the max *)
  epochs : int;         (** barrier rounds executed *)
  domains : int;        (** actual domain count used *)
  regions : int;
  cut_edges : int;
  lookahead : float;
}

val create :
  ?mrai:float ->
  ?wire_delivery:bool ->
  ?regions:int ->
  make_speaker:(int -> Dbgp_core.Speaker.t) ->
  unit ->
  t
(** [make_speaker asn] must create the speaker at
    {!Network.speaker_addr} (checked at {!build}) — remote peer stubs
    are derived from that address.  [regions] defaults to 2.
    @raise Invalid_argument on a negative MRAI or [regions < 1]. *)

(** {1 Topology declaration} (before {!build}) *)

val add_as : t -> int -> unit

val link :
  t ->
  ?latency:float ->
  ?pinned:bool ->
  ?a_import:Dbgp_core.Filters.t ->
  ?a_export:Dbgp_core.Filters.t ->
  ?b_import:Dbgp_core.Filters.t ->
  ?b_export:Dbgp_core.Filters.t ->
  ?a_dbgp:bool ->
  ?b_dbgp:bool ->
  a:int ->
  b:int ->
  b_is:Dbgp_bgp.Policy.relationship ->
  unit ->
  unit
(** Mirrors {!Network.link}.  [pinned] forces both endpoints into the
    same region — required for links carrying fault-model parameters
    or graceful-restart windows, whose state must stay region-private.
    @raise Invalid_argument on a non-positive latency. *)

val build : t -> unit
(** Partition and construct the per-region networks.  Declaration
    calls raise after this; everything below requires it. *)

(** {1 Queries} *)

val partition : t -> Partition.t
val regions : t -> int
val region_of : t -> int -> int
val network : t -> int -> Network.t
(** The region's network (by region index, not ASN). *)

val lookahead : t -> float
(** {!Partition.lookahead} plus the MRAI interval; [infinity] when no
    edge is cut. *)

val speaker : t -> int -> Dbgp_core.Speaker.t
val speakers : t -> (int * Dbgp_core.Speaker.t) list
(** All speakers across regions, sorted by ASN. *)

(** {1 Workload} *)

val originate : ?at:float -> t -> int -> Dbgp_core.Ia.t -> unit
(** [at] (default 0, i.e. immediately) schedules the injection at an
    absolute simulated time on the owning region's queue. *)

val withdraw_origin : ?at:float -> t -> int -> Dbgp_types.Prefix.t -> unit
(** Same [at] semantics as {!originate}. *)

val set_damping : t -> Dbgp_bgp.Flap_damping.params option -> unit

val schedule_fail : t -> at:float -> int -> int -> unit
(** Fail a link at an absolute time.  Intra-region links use
    {!Network.fail_link}; cut links fire {!Network.fail_half} at the
    same simulated time in both regions (lockstep, no cross-domain
    call). *)

val schedule_recover : t -> at:float -> int -> int -> unit

val fault_models : t -> seed:int -> Fault_model.t array
(** Create and attach one fault model per region, seeded from
    {!Dbgp_types.Prng.split_n} of [seed] — independent deterministic
    streams.  Callers must set per-link parameters only on intra-region
    (pinned) links: cut links are fault-free by contract, and
    region-local PRNG draw order is what keeps runs reproducible. *)

(** {1 Determinism transcript} *)

val enable_transcript : t -> unit
(** Record per-region logs: every Loc-RIB change ([C] lines, via the
    change feed), every cross-partition delivery ([X]) and NACK ([N]).
    Callable before or after {!build}. *)

val transcript_lines : t -> string list
(** The merged transcript, ordered by (time, region, per-region
    sequence), one ["%.6f region payload"] line per entry.  For
    diagnosing oracle divergence; {!transcript_digest} hashes exactly
    these lines. *)

val transcript_digest : t -> string
(** MD5 over the merged transcript, ordered by (time, region,
    per-region sequence) — the byte-identity oracle: equal digests
    between a 1-domain and an N-domain run of the same schedule. *)

val transcript_length : t -> int
(** Total recorded transcript entries. *)

(** {1 Execution} *)

val run : ?max_events:int -> ?domains:int -> t -> stats
(** Run to quiescence (all queues and mailboxes empty) or until the
    global event budget is hit ([stats.net.exhausted]).  [domains]
    (default 1, capped at the region count) selects the worker pool
    size; regions are statically assigned round-robin.  Safe to call
    once per shard.
    @raise Invalid_argument if [domains < 1]. *)

(** {1 Observability} *)

val metrics : t -> Dbgp_obs.Metrics.t
(** Fresh registry merging every region's network registry plus the
    per-domain wire-codec registries collected at the end of {!run}. *)

val counter_total : t -> string -> int
(** {!Network.counter_total} summed across regions. *)

val stale_total : t -> int
