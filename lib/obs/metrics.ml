type counter = { mutable n : int }
type gauge = { mutable v : float }

let nbuckets = 64

type histogram = {
  bucket : int array;
  mutable observed : int;
  mutable sum : float;
  mutable max : float;
}

type t = {
  cs : (string, counter) Hashtbl.t;
  gs : (string, gauge) Hashtbl.t;
  hs : (string, histogram) Hashtbl.t;
}

let create () =
  { cs = Hashtbl.create 16; gs = Hashtbl.create 16; hs = Hashtbl.create 8 }

let intern tbl name mk =
  match Hashtbl.find_opt tbl name with
  | Some x -> x
  | None ->
    let x = mk () in
    Hashtbl.replace tbl name x;
    x

let counter t name = intern t.cs name (fun () -> { n = 0 })

let incr ?(by = 1) c =
  if by < 0 then invalid_arg "Metrics.incr: negative increment"
  else c.n <- c.n + by

let count c = c.n

let gauge t name = intern t.gs name (fun () -> { v = 0. })
let set g v = g.v <- v
let value g = g.v

let bucket_of v =
  if Float.is_nan v || v < 1.0 then 0
  else
    let rec go i ub =
      if v < ub || i >= nbuckets - 1 then i else go (i + 1) (ub *. 2.)
    in
    go 1 2.0

let bucket_upper i =
  if i < 0 || i >= nbuckets then invalid_arg "Metrics.bucket_upper: bad index"
  else if i = nbuckets - 1 then Float.infinity
  else 2. ** float_of_int i

let histogram t name =
  intern t.hs name (fun () ->
      { bucket = Array.make nbuckets 0; observed = 0; sum = 0.; max = 0. })

let observe h v =
  let i = bucket_of v in
  h.bucket.(i) <- h.bucket.(i) + 1;
  h.observed <- h.observed + 1;
  h.sum <- h.sum +. v;
  if v > h.max then h.max <- v

let observations h = h.observed
let hist_sum h = h.sum
let hist_max h = h.max
let buckets h = Array.copy h.bucket

let quantile h q =
  if q < 0. || q > 1. then invalid_arg "Metrics.quantile: q outside [0, 1]"
  else if h.observed = 0 then 0.
  else begin
    let rank = Float.max 1. (Float.round (q *. float_of_int h.observed)) in
    let rec go i seen =
      let seen = seen + h.bucket.(i) in
      if float_of_int seen >= rank || i = nbuckets - 1 then bucket_upper i
      else go (i + 1) seen
    in
    go 0 0
  end

(* Zero every instrument in place.  Identity is preserved: handles
   obtained before the reset (the hot-path cached counters all over the
   tree) keep working and observe the zeroed state — which is exactly
   what makes an explicit reset safe to call between test suites. *)
let reset t =
  Hashtbl.iter (fun _ c -> c.n <- 0) t.cs;
  Hashtbl.iter (fun _ g -> g.v <- 0.) t.gs;
  Hashtbl.iter
    (fun _ h ->
      Array.fill h.bucket 0 nbuckets 0;
      h.observed <- 0;
      h.sum <- 0.;
      h.max <- 0.)
    t.hs

(* Fold [src] into [dst]: counters add, gauges keep the maximum (the
   only merge that is independent of merge order — last-change-at
   gauges want it anyway), histograms add bucket-wise.  Used to merge
   per-region registries of a sharded run into one snapshot. *)
let merge_into ~into:dst src =
  Hashtbl.iter
    (fun name (c : counter) ->
      let d = counter dst name in
      d.n <- d.n + c.n)
    src.cs;
  Hashtbl.iter
    (fun name (g : gauge) ->
      let d = gauge dst name in
      if g.v > d.v then d.v <- g.v)
    src.gs;
  Hashtbl.iter
    (fun name (h : histogram) ->
      let d = histogram dst name in
      for i = 0 to nbuckets - 1 do
        d.bucket.(i) <- d.bucket.(i) + h.bucket.(i)
      done;
      d.observed <- d.observed + h.observed;
      d.sum <- d.sum +. h.sum;
      if h.max > d.max then d.max <- h.max)
    src.hs

let sorted_bindings tbl f =
  Hashtbl.fold (fun k v acc -> (k, f v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let counters t = sorted_bindings t.cs (fun c -> c.n)
let gauges t = sorted_bindings t.gs (fun g -> g.v)
let histograms t = sorted_bindings t.hs Fun.id
let find_counter t name = Hashtbl.find_opt t.cs name
let find_gauge t name = Hashtbl.find_opt t.gs name
