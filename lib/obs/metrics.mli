(** Zero-dependency metrics registry.

    Three instrument kinds, all named by dot-separated strings
    (e.g. ["decision.runs"]):

    - counters: monotonically increasing integers;
    - gauges: last-written floats (e.g. ["decision.last_change_at"]);
    - histograms: fixed log-scale buckets — bucket 0 holds values below 1,
      bucket [i] holds values in [[2^(i-1), 2^i)] — so observation cost is
      O(log value) with no allocation after creation.

    Instruments are created on first use and live for the registry's
    lifetime; looking one up again returns the same instrument.  The
    registry is deliberately dependency-free (stdlib only) so every layer
    of the tree — wire, bgp, core, netsim, eval — can emit into it. *)

type t
type counter
type gauge
type histogram

val create : unit -> t

(** {1 Counters} *)

val counter : t -> string -> counter
(** Get or create the named counter. *)

val incr : ?by:int -> counter -> unit
(** Add [by] (default 1) to the counter.
    @raise Invalid_argument on a negative increment. *)

val count : counter -> int

(** {1 Gauges} *)

val gauge : t -> string -> gauge
val set : gauge -> float -> unit
val value : gauge -> float

(** {1 Histograms} *)

val nbuckets : int
(** Fixed bucket count; the last bucket absorbs everything above
    [2^(nbuckets - 2)]. *)

val bucket_of : float -> int
(** The bucket index a value falls into: 0 for values below 1 (and NaN),
    otherwise the [i] with [2^(i-1) <= v < 2^i], capped at
    [nbuckets - 1]. *)

val bucket_upper : int -> float
(** Exclusive upper bound of a bucket: 1 for bucket 0, [2^i] for bucket
    [i], [infinity] for the last. *)

val histogram : t -> string -> histogram
val observe : histogram -> float -> unit
val observations : histogram -> int
val hist_sum : histogram -> float
val hist_max : histogram -> float
(** Largest value observed so far; 0 before any observation. *)

val buckets : histogram -> int array
(** A copy of the per-bucket observation counts. *)

val quantile : histogram -> float -> float
(** Upper bound of the bucket containing the [q]-quantile observation
    (conservative: the true value is at most this).  0 for an empty
    histogram.  @raise Invalid_argument unless [0 <= q <= 1]. *)

(** {1 Lifecycle} *)

val reset : t -> unit
(** Zero every instrument in place.  Instrument identity is preserved:
    handles obtained before the reset keep working and read the zeroed
    state.  Test suites sharing a long-lived registry (e.g. the wire
    codec's) call this in their setup so earlier suites' counts cannot
    bleed in. *)

val merge_into : into:t -> t -> unit
(** [merge_into ~into src] folds [src] into [into]: counters add,
    gauges keep the maximum, histograms add bucket-wise (sum/max/count
    included).  Merge order therefore never changes the result — the
    property the sharded simulator relies on when folding per-region
    registries into one snapshot. *)

(** {1 Enumeration (snapshots)} *)

val counters : t -> (string * int) list
(** Name-sorted. *)

val gauges : t -> (string * float) list
val histograms : t -> (string * histogram) list
val find_counter : t -> string -> counter option
val find_gauge : t -> string -> gauge option
