type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let float_repr f =
  if Float.is_nan f || f = Float.infinity || f = Float.neg_infinity then "null"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%.12g" f

(* [indent < 0] means compact. *)
let rec render b indent level = function
  | Null -> Buffer.add_string b "null"
  | Bool v -> Buffer.add_string b (if v then "true" else "false")
  | Int n -> Buffer.add_string b (string_of_int n)
  | Float f -> Buffer.add_string b (float_repr f)
  | String s ->
    Buffer.add_char b '"';
    Buffer.add_string b (escape s);
    Buffer.add_char b '"'
  | List items ->
    render_seq b indent level '[' ']' (fun b level item ->
        render b indent level item)
      items
  | Obj fields ->
    render_seq b indent level '{' '}' (fun b level (k, v) ->
        Buffer.add_char b '"';
        Buffer.add_string b (escape k);
        Buffer.add_string b (if indent < 0 then "\":" else "\": ");
        render b indent level v)
      fields

and render_seq : 'a. Buffer.t -> int -> int -> char -> char ->
    (Buffer.t -> int -> 'a -> unit) -> 'a list -> unit =
 fun b indent level open_c close_c render_item items ->
  Buffer.add_char b open_c;
  if items <> [] then begin
    let pad level =
      if indent >= 0 then begin
        Buffer.add_char b '\n';
        Buffer.add_string b (String.make (indent * level) ' ')
      end
    in
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_char b ',';
        pad (level + 1);
        render_item b (level + 1) item)
      items;
    pad level
  end;
  Buffer.add_char b close_c

let to_json v =
  let b = Buffer.create 256 in
  render b (-1) 0 v;
  Buffer.contents b

let to_json_pretty v =
  let b = Buffer.create 256 in
  render b 2 0 v;
  Buffer.add_char b '\n';
  Buffer.contents b

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let of_metrics m =
  let hist (h : Metrics.histogram) =
    Obj
      [ ("count", Int (Metrics.observations h));
        ("sum", Float (Metrics.hist_sum h));
        ("max", Float (Metrics.hist_max h));
        ("p50", Float (Metrics.quantile h 0.5));
        ("p90", Float (Metrics.quantile h 0.9));
        ("p99", Float (Metrics.quantile h 0.99)) ]
  in
  Obj
    [ ("counters", Obj (List.map (fun (k, v) -> (k, Int v)) (Metrics.counters m)));
      ("gauges", Obj (List.map (fun (k, v) -> (k, Float v)) (Metrics.gauges m)));
      ("histograms", Obj (List.map (fun (k, h) -> (k, hist h)) (Metrics.histograms m))) ]

let event_fields : Trace.event -> (string * t) list = function
  | Trace.Session_state { asn; peer; state } ->
    [ ("asn", Int asn); ("peer", Int peer); ("state", String state) ]
  | Trace.Update_sent { src; dst; prefix; bytes; withdraw }
  | Trace.Update_received { src; dst; prefix; bytes; withdraw } ->
    [ ("src", Int src); ("dst", Int dst); ("prefix", String prefix);
      ("bytes", Int bytes); ("withdraw", Bool withdraw) ]
  | Trace.Decision_run { asn; prefix; changed; best_via } ->
    [ ("asn", Int asn); ("prefix", String prefix); ("changed", Bool changed);
      ("best_via", match best_via with Some a -> Int a | None -> Null) ]
  | Trace.Mrai_flush { src; dst; batched } ->
    [ ("src", Int src); ("dst", Int dst); ("batched", Int batched) ]
  | Trace.Damping_suppress { asn; peer; prefix; reuse_at } ->
    [ ("asn", Int asn); ("peer", Int peer); ("prefix", String prefix);
      ("reuse_at", Float reuse_at) ]
  | Trace.Damping_reuse { asn; prefix } ->
    [ ("asn", Int asn); ("prefix", String prefix) ]
  | Trace.Restart_phase { asn; peer; phase; routes } ->
    [ ("asn", Int asn); ("peer", Int peer); ("phase", String phase);
      ("routes", Int routes) ]
  | Trace.Import_rejected { asn; peer; prefix } ->
    [ ("asn", Int asn); ("peer", Int peer); ("prefix", String prefix) ]
  | Trace.Rx_error { asn; peer; cls; stage; reason } ->
    [ ("asn", Int asn); ("peer", Int peer); ("cls", String cls);
      ("stage", String stage); ("reason", String reason) ]

let of_trace ?last tr =
  let entries = Trace.entries tr in
  let entries =
    match last with
    | None -> entries
    | Some n ->
      let drop = max 0 (List.length entries - n) in
      List.filteri (fun i _ -> i >= drop) entries
  in
  Obj
    [ ("emitted", Int (Trace.emitted tr));
      ("overwritten", Int (Trace.overwritten tr));
      ("events",
       List
         (List.map
            (fun (e : Trace.entry) ->
              Obj
                (("at", Float e.Trace.at)
                 :: ("type", String (Trace.label e.Trace.event))
                 :: event_fields e.Trace.event))
            entries)) ]

let percentile xs q =
  if q < 0. || q > 1. then invalid_arg "Snapshot.percentile: q outside [0, 1]"
  else
    match xs with
    | [] -> Float.nan
    | xs ->
      let a = Array.of_list xs in
      Array.sort Float.compare a;
      let n = Array.length a in
      let pos = q *. float_of_int (n - 1) in
      let lo = int_of_float (Float.floor pos) in
      let hi = min (n - 1) (lo + 1) in
      let frac = pos -. float_of_int lo in
      a.(lo) +. (frac *. (a.(hi) -. a.(lo)))

let percentile_fields xs =
  let p q = Float (percentile xs q) in
  [ ("count", Int (List.length xs));
    ("p50", p 0.5);
    ("p90", p 0.9);
    ("p99", p 0.99);
    ("max", p 1.0) ]
