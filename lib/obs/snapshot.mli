(** JSON snapshots of registries and traces.

    A tiny JSON tree plus a renderer — no external dependency — so the
    simulator can export its internals ([dbgp-sim stats],
    [BENCH_obs.json]) and tests can assert on snapshot shape.  Non-finite
    floats render as [null]; everything else is standard JSON. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_json : t -> string
(** Compact, single-line. *)

val to_json_pretty : t -> string
(** Two-space indentation, trailing newline. *)

val member : string -> t -> t option
(** Field lookup in an [Obj]; [None] elsewhere. *)

val of_metrics : Metrics.t -> t
(** [{"counters": {..}, "gauges": {..}, "histograms": {name:
    {"count","sum","max","p50","p90","p99"}}}].  Instruments appear in
    name order. *)

val of_trace : ?last:int -> Trace.t -> t
(** [{"emitted","overwritten","events":[..]}] with at most [last]
    (default all retained) most-recent events, oldest first.  Each event
    is an object with ["at"], ["type"] (see {!Trace.label}) and the
    event's own fields. *)

val percentile : float list -> float -> float
(** Exact percentile with linear interpolation between order statistics;
    [nan] on an empty list.  @raise Invalid_argument unless
    [0 <= q <= 1]. *)

val percentile_fields : float list -> (string * t) list
(** [["count"; "p50"; "p90"; "p99"; "max"]] fields ready to wrap in an
    [Obj] — the standard convergence-time summary. *)
