type event =
  | Session_state of { asn : int; peer : int; state : string }
  | Update_sent of { src : int; dst : int; prefix : string; bytes : int; withdraw : bool }
  | Update_received of { src : int; dst : int; prefix : string; bytes : int; withdraw : bool }
  | Decision_run of { asn : int; prefix : string; changed : bool; best_via : int option }
  | Mrai_flush of { src : int; dst : int; batched : int }
  | Damping_suppress of { asn : int; peer : int; prefix : string; reuse_at : float }
  | Damping_reuse of { asn : int; prefix : string }
  | Restart_phase of { asn : int; peer : int; phase : string; routes : int }
  | Import_rejected of { asn : int; peer : int; prefix : string }
  | Rx_error of { asn : int; peer : int; cls : string; stage : string; reason : string }

type entry = { at : float; event : event }

type t = {
  cap : int;
  (* Grown geometrically up to [cap] as events arrive, so the many
     mostly-quiet speakers of an Internet-scale run don't each pay the
     full ring up front. *)
  mutable buf : entry option array;
  mutable total : int;  (* events ever emitted; write cursor = total mod cap *)
}

let create ?(capacity = 1024) () =
  if capacity <= 0 then invalid_arg "Trace.create: capacity must be positive"
  else { cap = capacity; buf = [||]; total = 0 }

let capacity t = t.cap

let emit t ~at event =
  let len = Array.length t.buf in
  if len < t.cap && t.total >= len then begin
    (* Doubling keeps the write cursor in bounds: growth fires exactly
       when [total = len], and the new length exceeds [total]. *)
    let nlen = min t.cap (max 16 (2 * len)) in
    let nbuf = Array.make nlen None in
    Array.blit t.buf 0 nbuf 0 len;
    t.buf <- nbuf
  end;
  t.buf.(t.total mod t.cap) <- Some { at; event };
  t.total <- t.total + 1

let entries t =
  let kept = min t.total t.cap in
  let first = t.total - kept in
  List.init kept (fun i ->
      match t.buf.((first + i) mod t.cap) with
      | Some e -> e
      | None -> assert false)

let emitted t = t.total
let overwritten t = max 0 (t.total - t.cap)

let clear t =
  Array.fill t.buf 0 (Array.length t.buf) None;
  t.total <- 0

let label = function
  | Session_state _ -> "session_state"
  | Update_sent _ -> "update_sent"
  | Update_received _ -> "update_received"
  | Decision_run _ -> "decision_run"
  | Mrai_flush _ -> "mrai_flush"
  | Damping_suppress _ -> "damping_suppress"
  | Damping_reuse _ -> "damping_reuse"
  | Restart_phase _ -> "restart_phase"
  | Import_rejected _ -> "import_rejected"
  | Rx_error _ -> "rx_error"
