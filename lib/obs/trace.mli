(** Structured event tracing: a bounded ring buffer of typed events.

    Emission is O(1) and never fails; once the buffer is full the oldest
    entries are overwritten (and counted in {!overwritten}), so a trace
    can stay attached to a long simulation without growing.  ASNs are
    carried as plain ints and prefixes as strings to keep this library
    free of dependencies on the rest of the tree. *)

type event =
  | Session_state of { asn : int; peer : int; state : string }
      (** A BGP FSM transition landed in [state] ({!Dbgp_bgp.Fsm} names).
          [peer] is 0 until the peer's OPEN has been seen. *)
  | Update_sent of { src : int; dst : int; prefix : string; bytes : int; withdraw : bool }
  | Update_received of { src : int; dst : int; prefix : string; bytes : int; withdraw : bool }
  | Decision_run of { asn : int; prefix : string; changed : bool; best_via : int option }
      (** A decision-process run that changed the best path; [best_via]
          is [None] when the route was withdrawn or locally originated. *)
  | Mrai_flush of { src : int; dst : int; batched : int }
      (** An MRAI batch of [batched] per-prefix messages was delivered. *)
  | Damping_suppress of { asn : int; peer : int; prefix : string; reuse_at : float }
  | Damping_reuse of { asn : int; prefix : string }
  | Restart_phase of { asn : int; peer : int; phase : string; routes : int }
      (** Graceful restart: [phase] is ["stale-marked"] when routes are
          retained, ["flushed"] when the window closes. *)
  | Import_rejected of { asn : int; peer : int; prefix : string }
  | Rx_error of { asn : int; peer : int; cls : string; stage : string; reason : string }
      (** An RFC 7606-style error verdict on a received advertisement:
          [cls] is the error class ([discard_attribute],
          [treat_as_withdraw], [session_reset]), [stage] where decoding
          or validation failed. *)

type entry = { at : float; event : event }

type t

val create : ?capacity:int -> unit -> t
(** Default capacity 1024.  @raise Invalid_argument if non-positive. *)

val capacity : t -> int
val emit : t -> at:float -> event -> unit

val entries : t -> entry list
(** Retained entries, oldest first (at most [capacity] of them). *)

val emitted : t -> int
(** Total events ever emitted, including overwritten ones. *)

val overwritten : t -> int
val clear : t -> unit

val label : event -> string
(** Stable snake_case tag, e.g. ["update_sent"] — the ["type"] field of
    the JSON rendering. *)
