open Dbgp_types
module Ia = Dbgp_core.Ia
module Value = Dbgp_core.Value
module Dm = Dbgp_core.Decision_module

let protocol = Protocol_id.bgpsec
let field_attest = "bgpsec-attest"

type attestation = { signer : Asn.t; mac : string }

type pki = Asn.t -> string option

let fnv1a64 s =
  let prime = 0x100000001b3L and basis = 0xcbf29ce484222325L in
  let h = ref basis in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h prime)
    s;
  !h

let mac ~secret ~prefix ~signer ~path =
  let msg =
    Printf.sprintf "%s|%s|%d|%s" secret (Prefix.to_string prefix)
      (Asn.to_int signer)
      (String.concat "," (List.map Asn.to_string path))
  in
  (* Two rounds with distinct suffixes to widen the toy MAC to 128 bits. *)
  Printf.sprintf "%016Lx%016Lx" (fnv1a64 msg) (fnv1a64 (msg ^ "#2"))

let attestation_to_value a =
  Value.Pair (Value.Asn a.signer, Value.Bytes a.mac)

let attestation_of_value = function
  | Value.Pair (Value.Asn signer, Value.Bytes mac) -> Some { signer; mac }
  | _ -> None

let attestations ia =
  match Ia.find_path_descriptor ~proto:protocol ~field:field_attest ia with
  | Some (Value.List vs) -> List.filter_map attestation_of_value vs
  | _ -> []

let set_attestations chain ia =
  Ia.set_path_descriptor ~owners:[ protocol ] ~field:field_attest
    (Value.List (List.map attestation_to_value chain))
    ia

let sign_origin ~secret ~me ia =
  let m = mac ~secret ~prefix:ia.Ia.prefix ~signer:me ~path:[] in
  set_attestations [ { signer = me; mac = m } ] ia

type status = Full | Partial of Asn.t list | Broken of Asn.t

let verify ~pki ia =
  let chain = attestations ia in
  let find_mac a =
    List.find_map
      (fun at -> if Asn.equal at.signer a then Some at.mac else None)
      chain
  in
  (* Path ASes from the origin outward; islands abstract their interior
     away and cannot participate from outside. *)
  let path_asns = List.rev (Ia.asns_on_path ia) in
  let rec walk seen missing = function
    | [] -> if missing = [] then Full else Partial (List.rev missing)
    | a :: rest -> (
      match (find_mac a, pki a) with
      | Some m, Some secret ->
        (* [seen] is kept origin-first, matching the path each signer saw. *)
        let expect = mac ~secret ~prefix:ia.Ia.prefix ~signer:a ~path:seen in
        if String.equal m expect then walk (seen @ [ a ]) missing rest
        else Broken a
      | Some _, None -> Broken a (* claims participation but no key known *)
      | None, _ -> walk (seen @ [ a ]) (a :: missing) rest )
  in
  let has_islands =
    List.exists
      (function Path_elem.Island _ -> true | _ -> false)
      ia.Ia.path_vector
  in
  match walk [] [] path_asns with
  | Full when has_islands -> Partial []
  | st -> st

type config = {
  me : Asn.t;
  secret : string;
  pki : pki;
  require_full : bool;
  authorized : (Prefix.t -> Asn.t -> bool) option;
}

(* The origin AS an attestation chain vouches for: the far end of the
   path vector.  [None] when the path is empty or ends in an island
   abstraction (no concrete origin AS to authorize). *)
let origin_asn ia =
  match List.rev (Ia.asns_on_path ia) with o :: _ -> Some o | [] -> None

let status_rank = function
  | Full -> 2
  | Partial _ -> 1
  | Broken _ -> 0

let decision_module cfg =
  let bgp = Dm.bgp () in
  let origin_ok ia =
    (* ROA-style origin authorization — the critical fix's actual fix.
       Attestations alone cannot stop a hijacker who signs the victim's
       prefix with its own perfectly valid key; the route-origin check
       rejects any announcement whose claimed origin is not authorized
       for the prefix (sub-prefixes included, since authorization is
       checked against the announced prefix itself). *)
    match cfg.authorized with
    | None -> true
    | Some auth -> (
      match origin_asn ia with
      | Some o -> auth ia.Ia.prefix o
      | None -> false (* no concrete origin to authorize: reject *) )
  in
  let import_filter ia =
    if not (origin_ok ia) then None
    else
      match verify ~pki:cfg.pki ia with
      | Broken _ -> None
      | Full -> Some ia
      | Partial _ -> if cfg.require_full then None else Some ia
  in
  let select ~prefix cands =
    (* Prefer better-attested candidates, then fall back to BGP rules. *)
    let by_status =
      List.sort
        (fun a b ->
          Int.compare
            (status_rank (verify ~pki:cfg.pki b.Dm.ia))
            (status_rank (verify ~pki:cfg.pki a.Dm.ia)))
        cands
    in
    match by_status with
    | [] -> None
    | best :: _ ->
      let best_rank = status_rank (verify ~pki:cfg.pki best.Dm.ia) in
      let tier =
        List.filter
          (fun c -> status_rank (verify ~pki:cfg.pki c.Dm.ia) = best_rank)
          by_status
      in
      bgp.Dm.select ~prefix tier
  in
  let contribute ~me ia =
    let path = List.rev (Ia.asns_on_path ia) in
    let m = mac ~secret:cfg.secret ~prefix:ia.Ia.prefix ~signer:me ~path in
    set_attestations (attestations ia @ [ { signer = me; mac = m } ]) ia
  in
  { Dm.protocol; import_filter; export_filter = Dbgp_core.Filters.accept;
    select; contribute }

let drop_attestations : Dbgp_core.Filters.t =
 fun ia -> Some (Ia.remove_protocol protocol ia)
