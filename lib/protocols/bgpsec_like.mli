(** A BGPSec-like critical fix: attested path announcements.

    Each participating AS appends a keyed attestation over (prefix,
    itself, the path it received); a verifier holding the key registry
    can check the chain hop by hop.  Because real BGPSec requires an
    unbroken chain of participation starting at the destination, D-BGP
    cannot accelerate its incremental benefits (Section 3.5) — but IAs
    still carry attestations across gulfs, and islands can optionally
    drop them before insecure neighbors (Section 3.2).

    Cryptography is replaced by a keyed 64-bit FNV-1a MAC: the point of
    this module is the control-plane mechanics (what is signed, where
    attestations ride in IAs, how chains break at gulfs), not
    cryptographic strength. *)

val protocol : Dbgp_types.Protocol_id.t

val field_attest : string
(** Path descriptor: the attestation chain, origin's first. *)

type attestation = { signer : Dbgp_types.Asn.t; mac : string }

type pki = Dbgp_types.Asn.t -> string option
(** Key lookup — the stand-in for the RPKI. *)

val mac :
  secret:string ->
  prefix:Dbgp_types.Prefix.t ->
  signer:Dbgp_types.Asn.t ->
  path:Dbgp_types.Asn.t list ->
  string

val sign_origin :
  secret:string -> me:Dbgp_types.Asn.t -> Dbgp_core.Ia.t -> Dbgp_core.Ia.t
(** Attach the destination's own attestation at origination time. *)

val attestations : Dbgp_core.Ia.t -> attestation list

(** Chain status, judged against the full path vector. *)
type status =
  | Full                              (** every AS on the path attested *)
  | Partial of Dbgp_types.Asn.t list  (** verified chain, but these ASes
                                          did not participate *)
  | Broken of Dbgp_types.Asn.t       (** this AS's attestation fails *)

val verify : pki:pki -> Dbgp_core.Ia.t -> status
(** Island path-vector entries are treated as non-participating (their
    interior is not attestable from outside). *)

type config = {
  me : Dbgp_types.Asn.t;
  secret : string;
  pki : pki;
  require_full : bool;
  (** true: reject candidates without a full chain (secure-island
      interior behaviour); false: prefer better-attested paths but accept
      any (border behaviour). *)
  authorized : (Dbgp_types.Prefix.t -> Dbgp_types.Asn.t -> bool) option;
  (** ROA-style route-origin authorization — [authorized prefix asn] says
      whether [asn] may originate [prefix].  Attestation chains alone
      cannot stop an origin hijack (the hijacker signs the victim's
      prefix with its own valid key and verifies [Full]); with this set,
      the import filter rejects any candidate whose claimed origin — the
      far end of the path vector — is not authorized for the announced
      prefix, covering sub-prefix hijacks too.  [None] disables the
      check. *)
}

val origin_asn : Dbgp_core.Ia.t -> Dbgp_types.Asn.t option
(** The claimed origin: the far end of the path vector ([None] for an
    empty path or one ending in an island abstraction). *)

val decision_module : config -> Dbgp_core.Decision_module.t
val drop_attestations : Dbgp_core.Filters.t
(** Export filter for islands that strip attestations toward insecure
    neighbors. *)
