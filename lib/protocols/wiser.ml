open Dbgp_types
module Ia = Dbgp_core.Ia
module Value = Dbgp_core.Value
module Dm = Dbgp_core.Decision_module

let protocol = Protocol_id.wiser
let field_cost = "wiser-cost"
let field_portal = "wiser-portal"
let service = "wiser"

type config = {
  my_island : Island_id.t;
  internal_cost : int;
  portal : Ipv4.t;
  io : Portal_io.t;
}

type t = {
  cfg : config;
  received : (int, int * int) Hashtbl.t;   (* portal -> (sum, count) of raw costs *)
  mutable advertised : int * int;          (* (sum, count) of costs I advertise *)
  factors : (int, float) Hashtbl.t;
  (* Load feedback (the divergence-lab gadget): downstream observers
     post the demand they send through this egress at its portal; the
     egress folds [demand * demand_sensitivity] into the cost it
     advertises.  With a high enough sensitivity the cost signal chases
     the traffic it attracts — a control loop through the out-of-band
     gossip channel rather than through BGP messages. *)
  mutable demand : int;
  mutable demand_sensitivity : int;
}

let create cfg =
  { cfg; received = Hashtbl.create 8; advertised = (0, 0);
    factors = Hashtbl.create 8; demand = 0; demand_sensitivity = 0 }

let cost_of ia =
  Option.bind (Ia.find_path_descriptor ~proto:protocol ~field:field_cost ia)
    Value.as_int

let upstream_portal ~my_island ia =
  (* Walk the path vector front (nearest) to back; the first island that
     advertises a Wiser portal and is not mine is the upstream island we
     must scale against. *)
  let portal_of island =
    Option.bind
      (Ia.find_island_descriptor ~island ~proto:protocol ~field:field_portal ia)
      Value.as_addr
  in
  let island_of_elem = function
    | Path_elem.Island i -> Some i
    | Path_elem.As a -> Ia.island_of_asn ia a
    | Path_elem.As_set _ -> None
  in
  List.find_map
    (fun elem ->
      match island_of_elem elem with
      | Some i when not (Island_id.equal i my_island) -> portal_of i
      | _ -> None)
    ia.Ia.path_vector

let scaling_factor t ~portal =
  Option.value (Hashtbl.find_opt t.factors (Ipv4.to_int portal)) ~default:1.0

let observed_portals t =
  Hashtbl.fold (fun p _ acc -> Ipv4.of_int p :: acc) t.received []
  |> List.sort Ipv4.compare

let record_received t portal cost =
  let key = Ipv4.to_int portal in
  let sum, count = Option.value (Hashtbl.find_opt t.received key) ~default:(0, 0) in
  Hashtbl.replace t.received key (sum + cost, count + 1)

let clamp lo hi x = Float.max lo (Float.min hi x)

let exchange_costs t =
  let sum, count = t.advertised in
  t.cfg.io.Portal_io.post ~portal:t.cfg.portal ~service ~key:"totals"
    (Value.Pair (Value.Int sum, Value.Int count));
  if count > 0 then begin
    let my_avg = float_of_int sum /. float_of_int count in
    (* The received table tells us which upstream portals to consult; the
       scaling factor compares the averages both sides report. *)
    Hashtbl.iter
      (fun portal_int _observed ->
        match
          t.cfg.io.Portal_io.fetch ~portal:(Ipv4.of_int portal_int) ~service
            ~key:"totals"
        with
        | Some (Value.Pair (Value.Int their_sum, Value.Int their_count))
          when their_count > 0 && their_sum > 0 ->
          let their_avg = float_of_int their_sum /. float_of_int their_count in
          Hashtbl.replace t.factors portal_int
            (clamp 0.01 100. (my_avg /. their_avg))
        | _ -> ())
      t.received
  end

let import_filter t ia =
  match cost_of ia with
  | None -> Some ia
  | Some cost -> (
    match upstream_portal ~my_island:t.cfg.my_island ia with
    | None -> Some ia
    | Some portal ->
      record_received t portal cost;
      let f = scaling_factor t ~portal in
      let scaled = int_of_float (Float.round (float_of_int cost *. f)) in
      Some
        (Ia.set_path_descriptor ~owners:[ protocol ] ~field:field_cost
           (Value.Int scaled) ia) )

let effective_cost c =
  match cost_of c.Dm.ia with None -> max_int | Some v -> v

let select ~prefix:_ cands =
  let better a b =
    match Int.compare (effective_cost b) (effective_cost a) with
    | 0 -> (
      match
        Int.compare (Dm.candidate_path_length b) (Dm.candidate_path_length a)
      with
      | 0 -> Dm.compare_tiebreak a b
      | c -> c )
    | c -> c
  in
  match cands with
  | [] -> None
  | c :: rest ->
    Some
      (List.fold_left (fun acc x -> if better x acc > 0 then x else acc) c rest)

let set_demand_sensitivity t s = t.demand_sensitivity <- s
let demand t = t.demand

let post_demand t ~portal d =
  t.cfg.io.Portal_io.post ~portal ~service ~key:"demand" (Value.Int d)

let poll_demand t =
  let fetched =
    match
      t.cfg.io.Portal_io.fetch ~portal:t.cfg.portal ~service ~key:"demand"
    with
    | Some (Value.Int d) -> d
    | _ -> 0
  in
  let changed = fetched * t.demand_sensitivity <> t.demand * t.demand_sensitivity in
  t.demand <- fetched;
  changed

let contribute t ~me:_ ia =
  let base = Option.value (cost_of ia) ~default:0 in
  let cost = base + t.cfg.internal_cost + (t.demand * t.demand_sensitivity) in
  let sum, count = t.advertised in
  t.advertised <- (sum + cost, count + 1);
  ia
  |> Ia.set_path_descriptor ~owners:[ protocol ] ~field:field_cost
       (Value.Int cost)
  |> Ia.add_island_descriptor ~island:t.cfg.my_island ~proto:protocol
       ~field:field_portal (Value.Addr t.cfg.portal)

let decision_module t =
  { Dm.protocol;
    import_filter = import_filter t;
    export_filter = Dbgp_core.Filters.accept;
    select;
    contribute = contribute t }
