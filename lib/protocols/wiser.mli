(** Wiser deployed over D-BGP (critical fix; Mahajan et al., NSDI '07).

    Wiser fixes BGP's inability to let ASes limit ingress traffic by
    disseminating a path cost in advertisements.  Upgraded ASes add
    their internal cost before selecting the lowest-cost path.  To stop
    cheating, islands periodically exchange the total costs of paths
    they receive from each other and scale a neighbor island's costs to
    be comparable with their own (Sections 2.2 and 3.4).

    Across a gulf the exchange happens out-of-band: each island's IA
    carries an island descriptor naming a cost-exchange portal, and
    downstream islands post/fetch totals there (Figure 8 uses the lookup
    service as both islands' portals). *)

val protocol : Dbgp_types.Protocol_id.t

val field_cost : string
(** Path descriptor carrying the accumulated path cost. *)

val field_portal : string
(** Island descriptor naming the island's cost-exchange portal. *)

val service : string
(** Lookup-service name under which portals converse. *)

type config = {
  my_island : Dbgp_types.Island_id.t;
  internal_cost : int;  (** cost this AS adds to paths it selects *)
  portal : Dbgp_types.Ipv4.t;  (** my island's cost-exchange portal address *)
  io : Portal_io.t;
}

type t

val create : config -> t

val decision_module : t -> Dbgp_core.Decision_module.t
(** Import: scales incoming costs by the factor learned for the upstream
    island's portal (1.0 until an exchange has happened — the "guess"
    of Section 3.4) and records the observation.  Select: lowest scaled
    cost, then shortest path.  Contribute: adds [internal_cost] and
    attaches the portal descriptor. *)

val cost_of : Dbgp_core.Ia.t -> int option
(** The advertised path cost, if any. *)

val upstream_portal :
  my_island:Dbgp_types.Island_id.t -> Dbgp_core.Ia.t -> Dbgp_types.Ipv4.t option
(** The cost-exchange portal of the nearest Wiser island on the path
    that is not mine. *)

val exchange_costs : t -> unit
(** One round of the periodic out-of-band exchange: posts my totals at my
    portal and refreshes scaling factors from every portal observed in
    received IAs.  The scaling factor for a neighbor island is
    (average cost I see locally) / (average cost they report), clamped
    to a sane range. *)

val scaling_factor : t -> portal:Dbgp_types.Ipv4.t -> float
(** Current factor for a neighbor portal (1.0 when unknown). *)

(** {1 Load feedback}

    The divergence-lab gadget ({!Dbgp_eval.Stability}): downstream
    observers post the demand they currently route through an egress at
    that egress's portal; a load-sensitive egress folds
    [demand * sensitivity] into the cost it advertises.  When the
    sensitivity is large relative to the static cost gap between two
    egresses, the advertised costs chase the traffic they attract and
    the island's egress choice oscillates — a control loop closed
    through the out-of-band gossip channel, invisible to any BGP-message
    analysis. *)

val set_demand_sensitivity : t -> int -> unit
(** Cost added per unit of posted demand (default 0 = classic Wiser). *)

val demand : t -> int
(** Demand last observed by {!poll_demand}. *)

val post_demand : t -> portal:Dbgp_types.Ipv4.t -> int -> unit
(** Post an observed demand figure at [portal] (an egress's portal). *)

val poll_demand : t -> bool
(** Fetch the demand posted at my own portal and adopt it; [true] when
    the adopted value changes the cost this instance would advertise
    (i.e. the caller should re-run the decision process and
    re-advertise). *)

val observed_portals : t -> Dbgp_types.Ipv4.t list
